module seamlesstune

go 1.22
