// Transfer: cross-tenant knowledge transfer (§V-B). Tenant A tunes a
// PageRank workload; when tenant B submits a workload with a similar
// resource profile, the service fingerprints it from a few probe runs,
// finds A's history in the multi-tenant store, and warm-starts B's tuning
// from it. A dissimilar workload is refused (negative-transfer guard).
//
//	go run ./examples/transfer
package main

import (
	"context"
	"fmt"
	"log"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/confspace"
	"seamlesstune/internal/core"
	"seamlesstune/internal/history"
	"seamlesstune/internal/stat"
	"seamlesstune/internal/transfer"
	"seamlesstune/internal/workload"
)

func main() {
	svc, err := core.NewService(
		core.WithSeed(11),
		core.WithSparkSpace(confspace.SparkSubspace(12)),
		core.WithBudgets(8, 20),
	)
	if err != nil {
		log.Fatal(err)
	}
	it, err2 := cloud.DefaultCatalog().Lookup("nimbus/h1.4xlarge")
	if err2 != nil {
		log.Fatal(err2)
	}
	cluster := cloud.ClusterSpec{Instance: it, Count: 4}

	// Tenant A tunes PageRank from scratch. Every execution lands in the
	// provider's history store.
	fmt.Println("tenant A tunes pagerank (cold start)...")
	a, err := svc.TuneDISC(context.Background(), core.Registration{
		Tenant: "tenant-a", Workload: workload.PageRank{}, InputBytes: 8 << 30,
	}, cluster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  best %.1fs in %d runs (warm-started: %v)\n",
		a.Session.Best.Runtime, len(a.Session.Trials), a.WarmStarted)

	// Tenant B submits the same workload type on a bigger graph. The
	// service recognizes the similar profile and transfers A's knowledge.
	fmt.Println("\ntenant B tunes pagerank at 12GB...")
	b, err := svc.TuneDISC(context.Background(), core.Registration{
		Tenant: "tenant-b", Workload: workload.PageRank{}, InputBytes: 12 << 30,
	}, cluster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  best %.1fs in %d runs\n", b.Session.Best.Runtime, len(b.Session.Trials))
	if b.WarmStarted {
		fmt.Printf("  warm-started from %s (similarity %.2f)\n", b.Source, b.Similarity)
	} else {
		fmt.Println("  no acceptable source found; cold start")
	}

	// Tenant C runs Wordcount — a very different profile. The similarity
	// gate refuses the transfer rather than risking negative transfer.
	fmt.Println("\ntenant C tunes wordcount (dissimilar profile)...")
	c, err := svc.TuneDISC(context.Background(), core.Registration{
		Tenant: "tenant-c", Workload: workload.Wordcount{}, InputBytes: 8 << 30,
	}, cluster)
	if err != nil {
		log.Fatal(err)
	}
	if c.WarmStarted {
		fmt.Printf("  warm-started from %s (similarity %.2f)\n", c.Source, c.Similarity)
	} else {
		fmt.Println("  transfer refused (negative-transfer guard): tuned cold")
	}

	// AROMA's alternative (Lama & Zhou): cluster the historical workloads,
	// classify the newcomer with an SVM, and reuse the matched cluster's
	// best configuration outright.
	fmt.Println("\nAROMA view of the same history:")
	records := map[history.WorkloadKey][]history.Record{}
	for _, key := range svc.Store().Workloads() {
		records[key] = svc.Store().Query(history.Filter{Tenant: key.Tenant, Workload: key.Workload})
	}
	aroma, err := transfer.TrainAroma(records, 2, svc.SparkSpace(), 5, stat.NewRNG(3))
	if err != nil {
		log.Fatal(err)
	}
	for cl := 0; cl < aroma.Clusters(); cl++ {
		fmt.Printf("  cluster %d: %v\n", cl, aroma.Members(cl))
	}
	newFP, err := transfer.FingerprintOf(transfer.WellConfigured(
		svc.Store().Query(history.Filter{Tenant: "tenant-b", Workload: "pagerank"})))
	if err == nil {
		if cfg, cl, ok := aroma.Recommend(newFP); ok {
			fmt.Printf("  tenant-b/pagerank classified into cluster %d; reuse suggests %d executors x %d cores\n",
				cl, cfg.Int(confspace.ParamExecutorInstances), cfg.Int(confspace.ParamExecutorCores))
		}
	}

	// Show the fingerprints behind the decision.
	fmt.Println("\nworkload fingerprints in the provider store:")
	for _, key := range svc.Store().Workloads() {
		recs := svc.Store().Query(history.Filter{Tenant: key.Tenant, Workload: key.Workload})
		fp, err := transfer.FingerprintOf(recs)
		if err != nil {
			continue
		}
		fmt.Printf("  %-22s shuffle/input=%.2f spill/input=%.2f gc=%.2f s/GB=%.1f stages=%.0f\n",
			key.String(), fp.ShufflePerInput, fp.SpillPerInput, fp.GCFrac, fp.SecondsPerGB, fp.StageDepth)
	}
}
