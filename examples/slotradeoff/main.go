// SLO trade-off: the §IV-D question — "do I need the results quickly no
// matter the cost, or am I willing to wait?" The example sweeps cluster
// choices for a Sort workload, builds the runtime/cost Pareto frontier,
// and picks configurations for a deadline-driven and a budget-driven SLO.
//
//	go run ./examples/slotradeoff
package main

import (
	"fmt"
	"log"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/confspace"
	"seamlesstune/internal/slo"
	"seamlesstune/internal/spark"
	"seamlesstune/internal/stat"
	"seamlesstune/internal/tuner"
	"seamlesstune/internal/workload"
)

func main() {
	catalog := cloud.DefaultCatalog()
	space := confspace.SparkSpace()
	w := workload.Sort{}
	size := int64(16) << 30

	// Candidate clusters from 2 small nodes to 12 big ones.
	candidates := []struct {
		key   string
		count int
	}{
		{"nimbus/g5.large", 2},
		{"nimbus/g5.xlarge", 4},
		{"nimbus/c5.2xlarge", 4},
		{"nimbus/g5.2xlarge", 8},
		{"nimbus/r5.2xlarge", 8},
		{"nimbus/h1.4xlarge", 4},
		{"nimbus/h1.4xlarge", 12},
	}

	rng := stat.NewRNG(5)
	var points []slo.Point
	fmt.Println("cluster candidates for sort @16GB:")
	for _, c := range candidates {
		it, err := catalog.Lookup(c.key)
		if err != nil {
			log.Fatal(err)
		}
		spec := cloud.ClusterSpec{Instance: it, Count: c.count}
		cfg := referenceFor(space, spec)
		res := spark.Run(w.Job(size), spark.FromConfig(space, cfg), spec, cloud.Unit(), stat.Fork(rng))
		if res.Failed {
			fmt.Printf("  %-24s FAILED: %s\n", spec, res.Reason)
			continue
		}
		points = append(points, slo.Point{Label: spec.String(), RuntimeS: res.RuntimeS, CostUSD: res.CostUSD})
		fmt.Printf("  %-24s runtime %7.1fs  cost $%.3f\n", spec, res.RuntimeS, res.CostUSD)
	}

	frontier := slo.ParetoFrontier(points)
	fmt.Println("\nPareto frontier (no point is both slower and pricier):")
	for _, p := range frontier {
		fmt.Printf("  %-24s %7.1fs  $%.3f\n", p.Label, p.RuntimeS, p.CostUSD)
	}

	if p, ok := slo.PickForDeadline(frontier, 120); ok {
		fmt.Printf("\nSLO 'results within 2 minutes':   %s ($%.3f per run)\n", p.Label, p.CostUSD)
	} else {
		fmt.Println("\nSLO 'results within 2 minutes':   unsatisfiable with these candidates")
	}
	if p, ok := slo.PickForBudget(frontier, 0.10); ok {
		fmt.Printf("SLO 'at most $0.10 per run':      %s (%.1fs per run)\n", p.Label, p.RuntimeS)
	} else {
		fmt.Println("SLO 'at most $0.10 per run':      unsatisfiable with these candidates")
	}

	// The same tuners can optimize for dollars instead of seconds
	// (tuner.RunFor with a cost scorer) — the user's §IV-D choice made
	// explicit. Tuning the *cloud* configuration is where the objectives
	// genuinely diverge: speed wants big clusters, cost wants small ones.
	cloudSpace, err := confspace.CloudSpace(catalog, 2, 12)
	if err != nil {
		log.Fatal(err)
	}
	obj := func(cfg confspace.Config) tuner.Measurement {
		spec, err := confspace.ClusterFromConfig(catalog, cloudSpace, cfg)
		if err != nil {
			return tuner.Measurement{Failed: true}
		}
		conf := spark.FromConfig(space, referenceFor(space, spec))
		res := spark.Run(w.Job(size), conf, spec, cloud.Unit(), stat.Fork(rng))
		return tuner.Measurement{Runtime: res.RuntimeS, Cost: res.CostUSD, Failed: res.Failed}
	}
	describe := func(r tuner.Result) string {
		spec, _ := confspace.ClusterFromConfig(catalog, cloudSpace, r.Best.Config)
		return spec.String()
	}
	fast, err := tuner.RunFor(tuner.NewBayesOpt(cloudSpace), obj, 15, stat.NewRNG(7), tuner.MinimizeRuntime)
	if err != nil {
		log.Fatal(err)
	}
	cheap, err := tuner.RunFor(tuner.NewBayesOpt(cloudSpace), obj, 15, stat.NewRNG(7), tuner.MinimizeCost)
	if err != nil {
		log.Fatal(err)
	}
	blend, err := tuner.RunFor(tuner.NewBayesOpt(cloudSpace), obj, 15, stat.NewRNG(7), tuner.MinimizeCostDelay(1.0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntuning the cloud configuration for different objectives (15 runs each):")
	fmt.Printf("  minimize runtime:       %-24s %7.1fs  $%.4f/run\n", describe(fast), fast.Best.Runtime, fast.Best.Cost)
	fmt.Printf("  minimize cost:          %-24s %7.1fs  $%.4f/run\n", describe(cheap), cheap.Best.Runtime, cheap.Best.Cost)
	fmt.Printf("  cost + $1/h of waiting: %-24s %7.1fs  $%.4f/run\n", describe(blend), blend.Best.Runtime, blend.Best.Cost)

	// Amortization: is it worth tuning at all for a job that runs 90
	// times before re-tuning (the paper's 3-month exemplar)?
	ledger := slo.Ledger{TuningCostUSD: 12.0, OldRunCostUSD: 0.45, NewRunCostUSD: 0.12}
	if n, err := ledger.RunsToAmortize(); err == nil {
		fmt.Printf("\ntuning bill $%.2f amortizes after %d runs; net after 90 runs: $%.2f\n",
			ledger.TuningCostUSD, n, ledger.NetSavingAfter(90))
	}
}

// referenceFor scales Spark defaults to a cluster (executors by cores,
// parallelism 2x total cores).
func referenceFor(space *confspace.Space, spec cloud.ClusterSpec) confspace.Config {
	cfg := space.Default()
	coresPer := 4
	if spec.Instance.VCPUs < 4 {
		coresPer = spec.Instance.VCPUs
	}
	cfg[confspace.ParamExecutorCores] = float64(coresPer)
	cfg[confspace.ParamExecutorInstances] = float64(spec.TotalCores() / coresPer)
	p, _ := space.Param(confspace.ParamExecutorMemoryMB)
	cfg[confspace.ParamExecutorMemoryMB] = p.Clamp(spec.Instance.MemoryGB * 1024 * 0.4)
	cfg[confspace.ParamDriverMemoryMB] = 4096
	pp, _ := space.Param(confspace.ParamDefaultParallelism)
	cfg[confspace.ParamDefaultParallelism] = pp.Clamp(float64(2 * spec.TotalCores()))
	cfg[confspace.ParamShufflePartitions] = pp.Clamp(float64(2 * spec.TotalCores()))
	return cfg
}
