// Whatif: the Starfish-style question "given the profile of job A under
// configuration c1, what will the performance of the job be with
// configuration c2 and input y?" (§II-B) — answered without executing
// anything, and checked against reality. The example also shows the
// engine's documented blind spot: iterative, cache-bound workloads.
//
//	go run ./examples/whatif
package main

import (
	"fmt"
	"log"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/confspace"
	"seamlesstune/internal/spark"
	"seamlesstune/internal/stat"
	"seamlesstune/internal/whatif"
	"seamlesstune/internal/workload"
)

func main() {
	it, err := cloud.DefaultCatalog().Lookup("nimbus/h1.4xlarge")
	if err != nil {
		log.Fatal(err)
	}
	cluster := cloud.ClusterSpec{Instance: it, Count: 4}
	space := confspace.SparkSpace()
	size := int64(8) << 30

	// Profile one Sort run under a sensible configuration c1.
	c1 := space.Default()
	c1[confspace.ParamExecutorInstances] = 8
	c1[confspace.ParamExecutorCores] = 8
	c1[confspace.ParamExecutorMemoryMB] = 16384
	c1[confspace.ParamDriverMemoryMB] = 4096
	c1[confspace.ParamDefaultParallelism] = 128
	conf1 := spark.FromConfig(space, c1)

	w := workload.Sort{}
	profiled := spark.Run(w.Job(size), conf1, cluster, cloud.Unit(), stat.NewRNG(1))
	profile, err := whatif.NewProfile(conf1, cluster, size, profiled)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled: sort @8GB under c1 -> %.1fs\n\n", profiled.RuntimeS)

	ask := func(label string, mutate func(confspace.Config), sizeQ int64) {
		c2 := c1.Clone()
		mutate(c2)
		conf2 := spark.FromConfig(space, c2)
		ans, err := profile.Predict(whatif.Question{Conf: conf2, Cluster: cluster, InputBytes: sizeQ})
		if err != nil {
			fmt.Printf("  %-36s prediction failed: %v\n", label, err)
			return
		}
		actual := spark.Run(w.Job(sizeQ), conf2, cluster, cloud.Unit(), stat.NewRNG(2))
		fmt.Printf("  %-36s predicted %7.1fs   actual %7.1fs\n", label, ans.RuntimeS, actual.RuntimeS)
	}

	fmt.Println("what-if questions about sort (no executions needed for the predictions):")
	ask("same config, 32GB input?", func(confspace.Config) {}, 32<<30)
	ask("half the executors?", func(c confspace.Config) {
		c[confspace.ParamExecutorInstances] = 4
	}, size)
	ask("parallelism 16 instead of 128?", func(c confspace.Config) {
		c[confspace.ParamDefaultParallelism] = 16
	}, size)

	// The blind spot: profile PageRank the same way and ask about a
	// memory-starved configuration — the engine cannot see the cache
	// cliff, so it badly underestimates.
	pr := workload.PageRank{}
	prRun := spark.Run(pr.Job(size), conf1, cluster, cloud.Unit(), stat.NewRNG(3))
	prProfile, err := whatif.NewProfile(conf1, cluster, size, prRun)
	if err != nil {
		log.Fatal(err)
	}
	tiny := c1.Clone()
	tiny[confspace.ParamExecutorMemoryMB] = 2048
	tiny[confspace.ParamMemoryFraction] = 0.3
	conf2 := spark.FromConfig(space, tiny)
	ans, err := prProfile.Predict(whatif.Question{Conf: conf2, Cluster: cluster, InputBytes: size})
	if err != nil {
		log.Fatal(err)
	}
	actual := spark.Run(pr.Job(size), conf2, cluster, cloud.Unit(), stat.NewRNG(4))
	fmt.Printf("\nthe Starfish limitation (§II-B) on iterative pagerank:\n")
	fmt.Printf("  memory-starved config:               predicted %7.1fs   actual %7.1fs\n",
		ans.RuntimeS, actual.RuntimeS)
	fmt.Println("  (the profile-scaling model cannot see the cache-capacity cliff)")
}
