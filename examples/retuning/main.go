// Retuning: the Table-I scenario as a managed workload. A tenant's
// PageRank job runs in production while its input grows DS1 → DS2 → DS3;
// the service's adaptive detector notices the change from runtimes alone
// and re-tunes automatically — the paper's principle 2 (resilience to
// dynamic workload changes).
//
//	go run ./examples/retuning
package main

import (
	"context"
	"fmt"
	"log"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/confspace"
	"seamlesstune/internal/core"
	"seamlesstune/internal/workload"
)

func main() {
	svc, err := core.NewService(
		core.WithSeed(7),
		core.WithSparkSpace(confspace.SparkSubspace(12)),
		core.WithBudgets(8, 20),
	)
	if err != nil {
		log.Fatal(err)
	}

	// The Table-I cluster: four storage-optimized 16-vCPU nodes.
	it, err := cloud.DefaultCatalog().Lookup("nimbus/h1.4xlarge")
	if err != nil {
		log.Fatal(err)
	}
	cluster := cloud.ClusterSpec{Instance: it, Count: 4}

	reg := core.Registration{
		Tenant:     "analytics-team",
		Workload:   workload.PageRank{},
		InputBytes: 8 << 30, // DS1
	}

	// Initial stage-2 tuning on DS1.
	dc, err := svc.TuneDISC(context.Background(), reg, cluster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial tuning on DS1 (8GB): best %.1fs in %d runs\n",
		dc.Session.Best.Runtime, len(dc.Session.Trials))

	// Production under management.
	m := svc.Manage(reg, cluster, dc.Config, core.WithRetuneBudget(12))
	phase := func(name string, runs int) {
		var sum float64
		var n int
		retuned := false
		for i := 0; i < runs; i++ {
			rep := m.RunOnce()
			if !rep.Record.Failed {
				sum += rep.Record.RuntimeS
				n++
			}
			if rep.Retuned {
				retuned = true
				fmt.Printf("  [%s] run %d: detector fired -> re-tuned automatically\n", name, i+1)
			}
		}
		avg := 0.0
		if n > 0 {
			avg = sum / float64(n)
		}
		fmt.Printf("  [%s] %d runs, mean runtime %.1fs, retuned=%v (total retunes so far: %d)\n",
			name, runs, avg, retuned, m.Retunes())
	}

	fmt.Println("\nphase DS1: stable production")
	phase("DS1", 15)

	fmt.Println("\nphase DS2: input grows to 11GB — nobody tells the service")
	m.SetInput(11 << 30)
	phase("DS2", 20)

	fmt.Println("\nphase DS3: input grows to 32GB")
	m.SetInput(32 << 30)
	phase("DS3", 20)

	fmt.Printf("\ntotal production runs: %d, automatic re-tunings: %d\n", m.Runs(), m.Retunes())
	fmt.Println("(Table I quantifies exactly these re-tuning savings: run `go run ./cmd/experiments -run T1`)")
}
