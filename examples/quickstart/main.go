// Quickstart: tune a Wordcount workload end to end with the seamless
// tuning service — the user supplies only the workload, an input size and
// an objective; the service picks the cluster (stage 1) and the Spark
// configuration (stage 2).
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/core"
	"seamlesstune/internal/slo"
	"seamlesstune/internal/workload"
)

func main() {
	// The service is what a cloud provider would operate: it owns the
	// instance catalog, the execution-history store and the tuning
	// budgets.
	svc, err := core.NewService(
		core.WithSeed(42),
		core.WithSparkSpace(confspace.SparkSubspace(12)), // tune the 12 most important knobs
		core.WithBudgets(10, 25),                         // stage-1 and stage-2 execution budgets
	)
	if err != nil {
		log.Fatal(err)
	}

	// A tenant registers a workload with a high-level objective — no
	// cluster shapes, no Spark knobs.
	reg := core.Registration{
		Tenant:     "quickstart-tenant",
		Workload:   workload.PageRank{},
		InputBytes: 8 << 30, // an 8 GB web graph
		Objective:  slo.Objective{WithinPctOfOptimal: 0.25},
	}

	res, err := svc.TunePipeline(context.Background(), reg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== seamless tuning pipeline (Fig. 1) ===")
	fmt.Printf("stage 1 chose cluster:   %s (%d candidate runs)\n",
		res.Cloud.Cluster, len(res.Cloud.Session.Trials))
	fmt.Printf("stage 2 tuned Spark:     %d runs, best %.1fs\n",
		len(res.DISC.Session.Trials), res.TunedRuntimeS)
	fmt.Printf("scaled defaults runtime: %.1fs\n", res.DefaultRuntimeS)
	fmt.Printf("improvement:             %.0f%%\n", res.Improvement()*100)
	fmt.Printf("total tuning bill:       $%.2f (carried by the provider)\n", res.TuningCostUSD)

	fmt.Println("\nchosen configuration (excerpt):")
	for _, name := range []string{
		confspace.ParamExecutorInstances,
		confspace.ParamExecutorCores,
		confspace.ParamExecutorMemoryMB,
		confspace.ParamDefaultParallelism,
	} {
		fmt.Printf("  %-28s = %d\n", name, res.DISC.Config.Int(name))
	}

	// The SLO report: how close is this tenant to the best any tenant
	// ever achieved on this workload type?
	rep, err := svc.Effectiveness(reg.Tenant, reg.Workload.Name())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSLO effectiveness: %.1f s/GB achieved vs %.1f s/GB best known (gap %.0f%%)\n",
		rep.BestOwn, rep.BestKnown, rep.Effectiveness*100)
}
