package telemetry

import (
	"testing"
	"time"

	"seamlesstune/internal/obs"
)

// benchRegistry builds a registry shaped like a live tuneserve process:
// a handful of counters and gauges, labeled vecs, and sketched
// histograms — the families one Poll must gather and fold.
func benchRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Counter("jobs_finished_total", "b").Add(100)
	r.Counter("events_published_total", "b").Add(5000)
	r.Gauge("jobs_queue_depth", "b").Set(3)
	r.Gauge("jobs_workers", "b").Set(4)
	sub := r.CounterVec("jobs_submitted_total", "b", "tenant")
	for _, tn := range []string{"acme", "beta", "gamma"} {
		sub.With(tn).Add(10)
	}
	h := r.HistogramSketched("wal_fsync_seconds", "b", obs.ExpBuckets(1e-5, 2, 16))
	for i := 0; i < 512; i++ {
		h.Observe(0.001 * float64(i%7+1))
	}
	lat := r.HistogramVecSketched("http_request_seconds", "b", obs.ExpBuckets(1e-4, 2, 14), "route")
	for _, rt := range []string{"/v1/jobs", "/v1/query", "/healthz"} {
		for i := 0; i < 64; i++ {
			lat.With(rt).Observe(0.0005 * float64(i%5+1))
		}
	}
	return r
}

// BenchmarkTelemetrySnapshot is the per-interval sampling cost: one
// registry gather folded into every rollup tier. At the default 1s
// interval this runs once per second — the paper-facing budget is
// <1% of one BenchmarkBayesOptStep (recorded side by side in
// BENCH_telemetry.json by `make bench-telemetry`).
func BenchmarkTelemetrySnapshot(b *testing.B) {
	s := NewStore(Config{Registry: benchRegistry(), Interval: time.Second, Retention: 24 * time.Hour})
	ts := base
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Poll(ts)
		ts = ts.Add(time.Second)
	}
}

// populatedStore polls `span` of 1s history into a fresh store.
func populatedStore(b *testing.B, span time.Duration) (*Store, time.Time) {
	b.Helper()
	s := NewStore(Config{Registry: benchRegistry(), Interval: time.Second, Retention: 24 * time.Hour})
	end := base.Add(span)
	for ts := base; ts.Before(end); ts = ts.Add(time.Second) {
		s.Poll(ts)
	}
	return s, end
}

// BenchmarkTelemetryRangeQuery measures /v1/query latency over 1h and
// 24h of history at dashboard-shaped steps (~240 points per range).
func BenchmarkTelemetryRangeQuery(b *testing.B) {
	cases := []struct {
		name string
		span time.Duration
		step time.Duration
	}{
		{"1h", time.Hour, 15 * time.Second},
		{"24h", 24 * time.Hour, 6 * time.Minute},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			s, end := populatedStore(b, c.span)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := s.Query("wal_fsync_seconds:p99", nil, end.Add(-c.span), end, c.step)
				if len(res) == 0 {
					b.Fatal("query returned nothing")
				}
			}
		})
	}
}

// BenchmarkAlertEval is the per-interval alert engine cost: the full
// default rule set (thresholds plus two multi-window burn rates)
// evaluated against an hour of history.
func BenchmarkAlertEval(b *testing.B) {
	s, end := populatedStore(b, time.Hour)
	eng, err := NewEngine(s, DefaultRules())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Eval(end)
	}
}
