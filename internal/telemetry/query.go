package telemetry

import "time"

// Point is one step-aligned window of a query result. T is the window
// start in unix milliseconds; the aggregates cover every underlying
// sample whose bucket start falls inside [T, T+step).
type Point struct {
	T     int64   `json:"t"`
	Avg   float64 `json:"avg"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Last  float64 `json:"last"`
	Count int64   `json:"count"`
}

// SeriesResult is one matched series with its windowed points.
type SeriesResult struct {
	Metric string            `json:"metric"`
	Labels map[string]string `json:"labels,omitempty"`
	Points []Point           `json:"points"`
}

// matchLabels reports whether the series labels satisfy every matcher
// (exact equality; a matcher on an absent label fails).
func matchLabels(labels map[string]string, match map[string]string) bool {
	for k, v := range match {
		if labels[k] != v {
			return false
		}
	}
	return true
}

// pickTier chooses the tier to serve a query from: the finest tier
// whose bucket width does not exceed step AND whose retention still
// covers `from`. When no such tier reaches back to `from`, the tier
// retaining the most history serves a coarser (or truncated) result —
// long-range queries fall back to the rollup tiers rather than
// answering only the raw window.
func pickTier(sr *series, fromNS int64, stepNS int64) int {
	// Finest step-aligned tier covering the range wins outright.
	for i := 0; i < len(sr.tiers); i++ {
		if sr.tiers[i].width > stepNS {
			continue
		}
		if oldest, ok := sr.tiers[i].oldestStart(); ok && oldest <= fromNS {
			return i
		}
	}
	// No tier retains back to `from`. The coarsest tier with data
	// reaches furthest — but bucket starts are width-aligned, so a finer
	// tier whose first bucket falls inside the coarsest's first window
	// holds the same full history at better resolution; prefer the
	// finest such tier.
	chosen, coarseEnd := -1, int64(0)
	for i := len(sr.tiers) - 1; i >= 0; i-- {
		oldest, ok := sr.tiers[i].oldestStart()
		if !ok {
			continue
		}
		if chosen == -1 {
			chosen, coarseEnd = i, oldest+sr.tiers[i].width
		} else if oldest < coarseEnd {
			chosen = i
		}
	}
	if chosen < 0 {
		return 0 // empty series: any tier yields no points
	}
	return chosen
}

// Query returns the matched series for metric over [from, to], windowed
// at step. Matchers are exact label equality. Series with no samples in
// range are omitted; a nil return means nothing matched.
func (s *Store) Query(metric string, match map[string]string, from, to time.Time, step time.Duration) []SeriesResult {
	if step <= 0 {
		step = s.interval
	}
	stepNS := int64(step)
	fromNS, toNS := from.UnixNano(), to.UnixNano()
	if toNS < fromNS {
		return nil
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	var out []SeriesResult
	for _, sr := range s.byMetric[metric] {
		if !matchLabels(sr.labels, match) {
			continue
		}
		t := &sr.tiers[pickTier(sr, fromNS, stepNS)]
		var pts []Point
		var cur Agg
		var curT int64 = -1
		flush := func() {
			if curT >= 0 && cur.Count > 0 {
				pts = append(pts, Point{
					T: curT / int64(time.Millisecond), Avg: cur.Avg(),
					Min: cur.Min, Max: cur.Max, Last: cur.Last, Count: cur.Count,
				})
			}
		}
		// Step windows are anchored at `from` rounded down to the step.
		anchor := fromNS - fromNS%stepNS
		t.each(func(b bucket) {
			if b.start < anchor || b.start > toNS {
				return
			}
			w := anchor + (b.start-anchor)/stepNS*stepNS
			if w != curT {
				flush()
				cur, curT = Agg{}, w
			}
			cur.Merge(b.agg)
		})
		flush()
		if len(pts) > 0 {
			out = append(out, SeriesResult{Metric: sr.metric, Labels: sr.labels, Points: pts})
		}
	}
	return out
}

// Aggregate merges every retained bucket of the matched series over
// [from, to] into one Agg — the alert engine's window primitive. The
// finest tier covering `from` serves the window so short windows see
// raw resolution.
func (s *Store) Aggregate(metric string, match map[string]string, from, to time.Time) Agg {
	fromNS, toNS := from.UnixNano(), to.UnixNano()
	s.mu.Lock()
	defer s.mu.Unlock()
	var total Agg
	for _, sr := range s.byMetric[metric] {
		if !matchLabels(sr.labels, match) {
			continue
		}
		// Width ≤ any window: pass the raw tier width as step so
		// pickTier only falls coarser when retention requires it.
		t := &sr.tiers[pickTier(sr, fromNS, int64(sr.tiers[len(sr.tiers)-1].width))]
		t.each(func(b bucket) {
			if b.start+t.width <= fromNS || b.start > toNS {
				return
			}
			total.Merge(b.agg)
		})
	}
	return total
}
