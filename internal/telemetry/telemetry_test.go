package telemetry

import (
	"testing"
	"time"

	"seamlesstune/internal/obs"
)

// base is the fake-clock epoch for the tests: an arbitrary instant far
// from zero so bucket alignment sees realistic unix-nano values.
var base = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

// prng is a tiny deterministic value source (splitmix-style) so the
// property tests exercise varied sample values without math/rand noise
// in the fixtures. Values are integers below 1e6: integer float64 sums
// this small are exact, so aggregate equality checks hold bit for bit
// regardless of addition order.
type prng uint64

func (p *prng) next() float64 {
	*p += 0x9e3779b97f4a7c15
	z := uint64(*p)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return float64((z ^ (z >> 31)) % 1_000_000)
}

func TestCounterBecomesRate(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("requests_total", "test counter")
	s := NewStore(Config{Registry: reg, Interval: time.Second})

	// 5 req/s for 10 polls: every sample after the first reads 5.
	for i := 0; i < 10; i++ {
		c.Add(5)
		s.Poll(base.Add(time.Duration(i) * time.Second))
	}
	res := s.Query("requests_total", nil, base, base.Add(10*time.Second), time.Second)
	if len(res) != 1 {
		t.Fatalf("got %d series, want 1", len(res))
	}
	// The first poll records no sample (no delta yet), so 9 points.
	if got := len(res[0].Points); got != 9 {
		t.Fatalf("got %d points, want 9", got)
	}
	for _, p := range res[0].Points {
		if p.Avg != 5 {
			t.Errorf("rate at t=%d = %v, want 5", p.T, p.Avg)
		}
	}
}

func TestCounterResetRestartsFromZero(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewStore(Config{Registry: reg, Interval: time.Second})

	// Registry counters cannot go backwards, so simulate the reset by
	// swapping in a fresh registry where the same counter restarts low —
	// exactly what an embedded-registry restart looks like to the store.
	c1 := reg.Counter("c", "h")
	c1.Add(100)
	s.Poll(base)
	c1.Add(10)
	s.Poll(base.Add(time.Second)) // delta 10 -> rate 10

	reg2 := obs.NewRegistry()
	c2 := reg2.Counter("c", "h")
	c2.Add(3)
	s.reg = reg2
	s.Poll(base.Add(2 * time.Second)) // 3 < 110: reset, delta = 3

	res := s.Query("c", nil, base, base.Add(3*time.Second), time.Second)
	if len(res) != 1 || len(res[0].Points) != 2 {
		t.Fatalf("unexpected result shape: %+v", res)
	}
	if res[0].Points[0].Avg != 10 {
		t.Errorf("pre-reset rate = %v, want 10", res[0].Points[0].Avg)
	}
	if res[0].Points[1].Avg != 3 {
		t.Errorf("post-reset rate = %v, want 3 (restart from zero)", res[0].Points[1].Avg)
	}
}

func TestHistogramDerivedSeries(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.HistogramSketched("lat_seconds", "test", obs.ExpBuckets(0.001, 2, 10))
	s := NewStore(Config{Registry: reg, Interval: time.Second})

	s.Poll(base)
	for i := 0; i < 100; i++ {
		h.Observe(0.010)
	}
	s.Poll(base.Add(time.Second))

	to := base.Add(2 * time.Second)
	if res := s.Query("lat_seconds:rate", nil, base, to, time.Second); len(res) != 1 ||
		len(res[0].Points) != 1 || res[0].Points[0].Avg != 100 {
		t.Errorf("rate series wrong: %+v", res)
	}
	res := s.Query("lat_seconds:avg", nil, base, to, time.Second)
	if len(res) != 1 || len(res[0].Points) != 1 {
		t.Fatalf("avg series wrong: %+v", res)
	}
	if avg := res[0].Points[0].Avg; avg < 0.0099 || avg > 0.0101 {
		t.Errorf("avg = %v, want ~0.010", avg)
	}
	for _, q := range []string{"p50", "p90", "p99"} {
		res := s.Query("lat_seconds:"+q, nil, base, to, time.Second)
		if len(res) != 1 || len(res[0].Points) == 0 {
			t.Errorf("missing quantile series %s", q)
		}
	}
}

// TestRollupOfRollupsEqualsRollupOfRaw pins the lossless-composition
// property: merging the raw buckets inside a mid window reproduces the
// mid bucket, and merging mid buckets inside a top window reproduces
// the top bucket. Min/max/count/last compose exactly for any values;
// the fixture uses integer samples so Sum is exact too (float addition
// of small integers is associative), making the check bit for bit.
func TestRollupOfRollupsEqualsRollupOfRaw(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("v", "test gauge")
	s := NewStore(Config{Registry: reg, Interval: time.Second, Retention: time.Hour})

	rng := prng(42)
	for i := 0; i < 400; i++ {
		g.Set(rng.next())
		s.Poll(base.Add(time.Duration(i) * time.Second))
	}

	sr := s.series["v"]
	if sr == nil {
		t.Fatal("series missing")
	}
	// For each adjacent tier pair, every sealed coarse bucket must equal
	// the merge of the finer buckets covering its window.
	for level := 1; level < len(sr.tiers); level++ {
		coarse, fine := &sr.tiers[level], &sr.tiers[level-1]
		checked := 0
		coarse.each(func(cb bucket) {
			// Only windows fully covered by the finer tier's retention.
			fineOldest, ok := fine.oldestStart()
			if !ok || cb.start < fineOldest {
				return
			}
			var merged Agg
			found := 0
			fine.each(func(fb bucket) {
				if fb.start >= cb.start && fb.start < cb.start+coarse.width {
					merged.Merge(fb.agg)
					found++
				}
			})
			if found == 0 {
				return
			}
			if merged != cb.agg {
				t.Errorf("tier %d bucket @%d: rollup-of-rollups %+v != direct %+v",
					level, cb.start, merged, cb.agg)
			}
			checked++
		})
		if checked == 0 {
			t.Errorf("tier %d: no comparable buckets — fixture too short", level)
		}
	}
}

// TestRetentionLeavesNoInterTierGaps drives enough polls to evict from
// every ring and then asserts the union of tier windows still covers a
// contiguous interval ending at the newest sample: eviction from a fine
// tier may only shed history the coarser tier still retains.
func TestRetentionLeavesNoInterTierGaps(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("v", "test gauge")
	// Retention 2m at a 1s interval: raw/mid/top retain 2m each with
	// caps 121/13/3 — 400 polls wrap every ring multiple times.
	s := NewStore(Config{Registry: reg, Interval: time.Second, Retention: 2 * time.Minute})
	rng := prng(7)
	last := base
	for i := 0; i < 400; i++ {
		g.Set(rng.next())
		last = base.Add(time.Duration(i) * time.Second)
		s.Poll(last)
	}

	sr := s.series["v"]
	// Collect every retained window [start, start+width).
	type span struct{ start, end int64 }
	var spans []span
	for i := range sr.tiers {
		ti := &sr.tiers[i]
		ti.each(func(b bucket) {
			spans = append(spans, span{b.start, b.start + ti.width})
		})
	}
	if len(spans) == 0 {
		t.Fatal("nothing retained")
	}
	// Union must be one contiguous interval reaching the last sample.
	oldest, newest := spans[0].start, spans[0].end
	for _, sp := range spans {
		if sp.start < oldest {
			oldest = sp.start
		}
		if sp.end > newest {
			newest = sp.end
		}
	}
	if lastNS := last.UnixNano(); newest <= lastNS {
		t.Fatalf("coverage ends at %d, before last sample %d", newest, lastNS)
	}
	// Walk forward: at every point of [oldest, newest) some span covers.
	for cur := oldest; cur < newest; {
		advanced := false
		for _, sp := range spans {
			if sp.start <= cur && cur < sp.end {
				cur = sp.end
				advanced = true
				break
			}
		}
		if !advanced {
			t.Fatalf("coverage gap at %d (%s after oldest)",
				cur, time.Duration(cur-oldest))
		}
	}
	// And the coarsest tier must retain roughly its configured window.
	if got, ok := sr.tiers[2].oldestStart(); ok {
		if age := last.UnixNano() - got; age < int64(time.Minute) {
			t.Errorf("top tier retains only %s, want ~2m", time.Duration(age))
		}
	}
}

func TestQueryLabelsAndStepWindows(t *testing.T) {
	reg := obs.NewRegistry()
	vec := reg.GaugeVec("depth", "test", "tenant")
	a, b := vec.With("acme"), vec.With("beta")
	s := NewStore(Config{Registry: reg, Interval: time.Second})

	for i := 0; i < 10; i++ {
		a.Set(float64(i))
		b.Set(float64(100 + i))
		s.Poll(base.Add(time.Duration(i) * time.Second))
	}

	// Label matcher narrows to one series.
	res := s.Query("depth", map[string]string{"tenant": "acme"}, base, base.Add(10*time.Second), time.Second)
	if len(res) != 1 || res[0].Labels["tenant"] != "acme" {
		t.Fatalf("matcher failed: %+v", res)
	}
	// No matcher returns both.
	if res := s.Query("depth", nil, base, base.Add(10*time.Second), time.Second); len(res) != 2 {
		t.Fatalf("got %d series, want 2", len(res))
	}
	// A 5s step folds 10 raw samples into 2 windows of 5.
	res = s.Query("depth", map[string]string{"tenant": "acme"}, base, base.Add(9*time.Second), 5*time.Second)
	if len(res) != 1 || len(res[0].Points) != 2 {
		t.Fatalf("step windows wrong: %+v", res)
	}
	p := res[0].Points[0]
	if p.Count != 5 || p.Min != 0 || p.Max != 4 || p.Avg != 2 {
		t.Errorf("first window = %+v, want count=5 min=0 max=4 avg=2", p)
	}
	// A matcher on an absent label matches nothing.
	if res := s.Query("depth", map[string]string{"zone": "x"}, base, base.Add(10*time.Second), time.Second); res != nil {
		t.Errorf("absent-label matcher matched: %+v", res)
	}
}

// TestQueryCoarseStepWindows checks that a coarse-step query folds raw
// history into full-width windows.
func TestQueryCoarseStepWindows(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("v", "test")
	s := NewStore(Config{Registry: reg, Interval: time.Second, Retention: time.Hour})
	for i := 0; i < 300; i++ {
		g.Set(float64(i))
		s.Poll(base.Add(time.Duration(i) * time.Second))
	}
	res := s.Query("v", nil, base, base.Add(300*time.Second), time.Minute)
	if len(res) != 1 {
		t.Fatalf("got %d series", len(res))
	}
	pts := res[0].Points
	if len(pts) < 4 || len(pts) > 6 {
		t.Fatalf("got %d 1m windows over 5m, want ~5", len(pts))
	}
	// Full minute windows hold 60 samples each.
	if pts[1].Count != 60 {
		t.Errorf("window count = %d, want 60", pts[1].Count)
	}
}

func TestStatsAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("a_total", "h").Inc()
	reg.Gauge("b", "h").Set(1)
	s := NewStore(Config{Registry: reg, Interval: time.Second})
	s.Poll(base)
	s.Poll(base.Add(time.Second))

	st := s.Stats()
	if st.Series != 2 {
		t.Errorf("Series = %d, want 2", st.Series)
	}
	if st.Samples == 0 {
		t.Error("Samples = 0")
	}
	if st.IntervalS != 1 {
		t.Errorf("IntervalS = %v", st.IntervalS)
	}
	names := s.Metrics()
	if len(names) != 2 || names[0] != "a_total" || names[1] != "b" {
		t.Errorf("Metrics() = %v", names)
	}
}

func TestStartStopSamplesInBackground(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("v", "h")
	g.Set(3)
	s := NewStore(Config{Registry: reg, Interval: 5 * time.Millisecond})
	s.Start()
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Samples == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	s.Stop()
	if s.Stats().Samples == 0 {
		t.Fatal("background sampler recorded nothing")
	}
}
