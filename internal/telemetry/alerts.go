package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"seamlesstune/internal/obs"
)

// AlertState is one rule's lifecycle position.
type AlertState string

const (
	// StateInactive: the condition does not hold.
	StateInactive AlertState = "inactive"
	// StatePending: the condition holds but has not yet held For long.
	StatePending AlertState = "pending"
	// StateFiring: the condition held For long; an alert event was
	// emitted and the rule stays firing until the condition stays false
	// continuously for ResolveAfter (flap damping).
	StateFiring AlertState = "firing"
)

// Duration is a time.Duration that unmarshals from JSON strings like
// "5m" or "1h30m" (and bare numbers as nanoseconds, json.Marshal's
// native encoding of time.Duration).
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*d = Duration(n)
	return nil
}

// MarshalJSON implements json.Marshaler: the human-readable form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Rule is one declarative alert. Two kinds:
//
//   - "threshold": the window-averaged value of Metric (filtered by
//     Labels) compared against Value with Op. Window defaults to the
//     store interval (latest sample).
//   - "burn_rate": SRE multi-window multi-burn-rate SLO alerting over a
//     pair of counter-rate series. The error ratio BadMetric/TotalMetric
//     is measured over ShortWindow and LongWindow; the burn rate is
//     ratio / (1 - Objective); the condition holds when burn > Factor
//     on BOTH windows — the short window gates on "still happening",
//     the long window on "material budget spend".
type Rule struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`               // "threshold" | "burn_rate"
	Severity string `json:"severity,omitempty"` // "warn" | "critical" (default warn)

	// Threshold fields.
	Metric string            `json:"metric,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	Op     string            `json:"op,omitempty"` // ">" | "<" (default ">")
	Value  float64           `json:"value,omitempty"`
	Window Duration          `json:"window,omitempty"`

	// Burn-rate fields.
	BadMetric   string   `json:"badMetric,omitempty"`
	TotalMetric string   `json:"totalMetric,omitempty"`
	Objective   float64  `json:"objective,omitempty"` // e.g. 0.99
	ShortWindow Duration `json:"shortWindow,omitempty"`
	LongWindow  Duration `json:"longWindow,omitempty"`
	Factor      float64  `json:"factor,omitempty"`

	// Lifecycle. For is how long the condition must hold before firing
	// (0 = fire on first observation). ResolveAfter is how long the
	// condition must stay false before a firing alert resolves
	// (0 = max(For, 1m) — hysteresis against flapping).
	For          Duration `json:"for,omitempty"`
	ResolveAfter Duration `json:"resolveAfter,omitempty"`
}

// validate normalizes defaults and rejects malformed rules.
func (r *Rule) validate() error {
	if r.Name == "" {
		return fmt.Errorf("alert rule missing name")
	}
	if r.Severity == "" {
		r.Severity = "warn"
	}
	if r.Severity != "warn" && r.Severity != "critical" {
		return fmt.Errorf("alert %q: severity %q (want warn|critical)", r.Name, r.Severity)
	}
	switch r.Kind {
	case "threshold":
		if r.Metric == "" {
			return fmt.Errorf("alert %q: threshold rule missing metric", r.Name)
		}
		if r.Op == "" {
			r.Op = ">"
		}
		if r.Op != ">" && r.Op != "<" {
			return fmt.Errorf("alert %q: op %q (want > or <)", r.Name, r.Op)
		}
	case "burn_rate":
		if r.BadMetric == "" || r.TotalMetric == "" {
			return fmt.Errorf("alert %q: burn_rate rule needs badMetric and totalMetric", r.Name)
		}
		if r.Objective <= 0 || r.Objective >= 1 {
			return fmt.Errorf("alert %q: objective %v (want 0 < o < 1)", r.Name, r.Objective)
		}
		if r.ShortWindow <= 0 || r.LongWindow <= 0 || r.ShortWindow > r.LongWindow {
			return fmt.Errorf("alert %q: want 0 < shortWindow <= longWindow", r.Name)
		}
		if r.Factor <= 0 {
			return fmt.Errorf("alert %q: factor %v (want > 0)", r.Name, r.Factor)
		}
	default:
		return fmt.Errorf("alert %q: kind %q (want threshold|burn_rate)", r.Name, r.Kind)
	}
	if r.ResolveAfter <= 0 {
		r.ResolveAfter = r.For
		if r.ResolveAfter < Duration(time.Minute) {
			r.ResolveAfter = Duration(time.Minute)
		}
	}
	return nil
}

// AlertStatus is one rule's externally visible state (/v1/alerts).
type AlertStatus struct {
	Name     string     `json:"name"`
	Severity string     `json:"severity"`
	Kind     string     `json:"kind"`
	State    AlertState `json:"state"`
	// SinceNS is when the rule entered its current state (unix ns).
	SinceNS int64 `json:"sinceNS,omitempty"`
	// Value is the last observed value the condition was judged on
	// (metric average for thresholds, the smaller window burn rate for
	// burn_rate rules).
	Value float64 `json:"value"`
	// Detail renders the rule condition human-readably.
	Detail string `json:"detail,omitempty"`
}

// ruleState is the engine's per-rule book-keeping.
type ruleState struct {
	rule  Rule
	state AlertState
	since time.Time // entered current state
	// lastTrue is the most recent instant the condition held — a firing
	// rule resolves only when now-lastTrue >= ResolveAfter.
	lastTrue time.Time
	value    float64
}

// Engine evaluates alert rules against a telemetry store on every
// sample. Wire with store.OnSample(engine.Eval); alerts surface as
// events through SetSink and as statuses through Alerts.
type Engine struct {
	store *Store

	mu    sync.Mutex
	rules []*ruleState
	sink  func(obs.Event)
	// silent suppresses event emission (history replay in Rearm).
	silent bool
	evals  uint64
}

// NewEngine builds an engine over the store with the given rules.
// Invalid rules are rejected as an error listing every problem.
func NewEngine(store *Store, rules []Rule) (*Engine, error) {
	e := &Engine{store: store}
	var errs []string
	for _, r := range rules {
		r := r
		if err := r.validate(); err != nil {
			errs = append(errs, err.Error())
			continue
		}
		e.rules = append(e.rules, &ruleState{rule: r, state: StateInactive})
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("%s", strings.Join(errs, "; "))
	}
	return e, nil
}

// SetSink installs fn to receive alert transition events (nil removes).
func (e *Engine) SetSink(fn func(obs.Event)) {
	e.mu.Lock()
	e.sink = fn
	e.mu.Unlock()
}

// condition evaluates the rule at ts, returning whether it holds and
// the observed value.
func (e *Engine) condition(r Rule, ts time.Time) (bool, float64) {
	switch r.Kind {
	case "threshold":
		w := time.Duration(r.Window)
		if w <= 0 {
			w = e.store.Interval()
		}
		agg := e.store.Aggregate(r.Metric, r.Labels, ts.Add(-w), ts)
		if agg.Count == 0 {
			return false, 0
		}
		v := agg.Avg()
		if r.Op == "<" {
			return v < r.Value, v
		}
		return v > r.Value, v
	case "burn_rate":
		short := e.burn(r, ts, time.Duration(r.ShortWindow))
		long := e.burn(r, ts, time.Duration(r.LongWindow))
		// Report the tighter (short-window) burn; it is what pages clear
		// fastest on.
		return short > r.Factor && long > r.Factor, short
	}
	return false, 0
}

// burn computes the window burn rate: the bad/total event ratio over
// the window divided by the SLO error budget (1 - objective). Rate
// series sampled on a fixed grid make sums-of-rates a faithful stand-in
// for event counts: the interval factors cancel in the ratio.
func (e *Engine) burn(r Rule, ts time.Time, window time.Duration) float64 {
	from := ts.Add(-window)
	bad := e.store.Aggregate(r.BadMetric, r.Labels, from, ts)
	total := e.store.Aggregate(r.TotalMetric, r.Labels, from, ts)
	if total.Sum <= 0 {
		return 0
	}
	ratio := bad.Sum / total.Sum
	return ratio / (1 - r.Objective)
}

// Eval evaluates every rule at ts, advancing lifecycle states and
// emitting alert events on firing/resolved transitions. It is the
// store's OnSample hook.
func (e *Engine) Eval(ts time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.evals++
	for _, rs := range e.rules {
		holds, v := e.condition(rs.rule, ts)
		rs.value = v
		if holds {
			rs.lastTrue = ts
		}
		switch rs.state {
		case StateInactive:
			if holds {
				rs.state, rs.since = StatePending, ts
				if rs.rule.For <= 0 {
					rs.state = StateFiring
					e.emitLocked(rs, "firing", ts)
				}
			}
		case StatePending:
			if !holds {
				rs.state, rs.since = StateInactive, ts
			} else if ts.Sub(rs.since) >= time.Duration(rs.rule.For) {
				rs.state, rs.since = StateFiring, ts
				e.emitLocked(rs, "firing", ts)
			}
		case StateFiring:
			// Resolve only after the condition has been false
			// continuously for ResolveAfter: brief recoveries inside the
			// hysteresis window keep the alert firing without event
			// churn (flap damping).
			if !holds && ts.Sub(rs.lastTrue) >= time.Duration(rs.rule.ResolveAfter) {
				rs.state, rs.since = StateInactive, ts
				e.emitLocked(rs, "resolved", ts)
			}
		}
	}
}

// emitLocked publishes one transition event (caller holds e.mu).
func (e *Engine) emitLocked(rs *ruleState, state string, ts time.Time) {
	if e.sink == nil || e.silent {
		return
	}
	sev := rs.rule.Severity
	if state == "resolved" {
		sev = "ok"
	}
	e.sink(obs.Event{
		Type:     obs.EventAlert,
		TimeNS:   ts.UnixNano(),
		Alert:    rs.rule.Name,
		State:    state,
		Value:    rs.value,
		Severity: sev,
		Detail:   ruleDetail(rs.rule),
	})
}

// ruleDetail renders the rule condition for event/status consumers.
func ruleDetail(r Rule) string {
	switch r.Kind {
	case "threshold":
		return fmt.Sprintf("%s %s %g over %s", r.Metric, r.Op, r.Value,
			time.Duration(r.Window))
	case "burn_rate":
		return fmt.Sprintf("%s/%s burn > %gx of %.3g-objective budget over %s and %s",
			r.BadMetric, r.TotalMetric, r.Factor, r.Objective,
			time.Duration(r.ShortWindow), time.Duration(r.LongWindow))
	}
	return ""
}

// Alerts returns every rule's status, firing first, then pending, then
// inactive, name-ordered within each state.
func (e *Engine) Alerts() []AlertStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]AlertStatus, 0, len(e.rules))
	for _, rs := range e.rules {
		st := AlertStatus{
			Name:     rs.rule.Name,
			Severity: rs.rule.Severity,
			Kind:     rs.rule.Kind,
			State:    rs.state,
			Value:    rs.value,
			Detail:   ruleDetail(rs.rule),
		}
		if !rs.since.IsZero() {
			st.SinceNS = rs.since.UnixNano()
		}
		out = append(out, st)
	}
	rank := map[AlertState]int{StateFiring: 0, StatePending: 1, StateInactive: 2}
	sort.Slice(out, func(i, j int) bool {
		if rank[out[i].State] != rank[out[j].State] {
			return rank[out[i].State] < rank[out[j].State]
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Firing returns how many rules are currently firing.
func (e *Engine) Firing() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, rs := range e.rules {
		if rs.state == StateFiring {
			n++
		}
	}
	return n
}

// Rearm replays restored telemetry history through the rules without
// emitting transition events, then emits a single firing event for each
// rule that ends the replay firing — so a restart inside an incident
// re-pages once instead of replaying the whole flap history. Call after
// Restore and before Start.
func (e *Engine) Rearm(from, to time.Time, step time.Duration) {
	if step <= 0 || !to.After(from) {
		return
	}
	e.mu.Lock()
	e.silent = true
	e.mu.Unlock()
	for ts := from; !ts.After(to); ts = ts.Add(step) {
		e.Eval(ts)
	}
	e.mu.Lock()
	e.silent = false
	for _, rs := range e.rules {
		if rs.state == StateFiring {
			e.emitLocked(rs, "firing", to)
		}
	}
	e.mu.Unlock()
}

// DefaultRules is the built-in rule set: telemetry self-monitoring,
// storage pressure, and the two-tier SLO burn policy (page at 14.4x on
// 5m/1h, ticket at 6x on 30m/6h — the SRE workbook defaults).
func DefaultRules() []Rule {
	return []Rule{
		{
			Name: "telemetry-event-loss", Kind: "threshold", Severity: "warn",
			Metric: "events_dropped_total", Op: ">", Value: 0,
			Window: Duration(time.Minute), For: Duration(30 * time.Second),
		},
		{
			Name: "storage-sink-loss", Kind: "threshold", Severity: "warn",
			Metric: "storage_events_dropped_total", Op: ">", Value: 0,
			Window: Duration(time.Minute), For: Duration(30 * time.Second),
		},
		{
			Name: "fsync-p99-high", Kind: "threshold", Severity: "warn",
			Metric: "wal_fsync_seconds:p99", Op: ">", Value: 0.05,
			Window: Duration(time.Minute), For: Duration(time.Minute),
		},
		{
			Name: "job-queue-backlog", Kind: "threshold", Severity: "warn",
			Metric: "jobs_queue_depth", Op: ">", Value: 32,
			Window: Duration(time.Minute), For: Duration(2 * time.Minute),
		},
		{
			Name: "slo-burn-page", Kind: "burn_rate", Severity: "critical",
			BadMetric: "slo_violations_total", TotalMetric: "slo_checks_total",
			Objective: 0.99, Factor: 14.4,
			ShortWindow: Duration(5 * time.Minute), LongWindow: Duration(time.Hour),
			For: Duration(time.Minute),
		},
		{
			Name: "slo-burn-ticket", Kind: "burn_rate", Severity: "warn",
			BadMetric: "slo_violations_total", TotalMetric: "slo_checks_total",
			Objective: 0.99, Factor: 6,
			ShortWindow: Duration(30 * time.Minute), LongWindow: Duration(6 * time.Hour),
			For: Duration(5 * time.Minute),
		},
	}
}

// LoadRules reads a JSON rules file: either a bare array of rules or
// an object {"rules": [...]}. An empty path returns DefaultRules.
func LoadRules(path string) ([]Rule, error) {
	if path == "" {
		return DefaultRules(), nil
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var arr []Rule
	if err := json.Unmarshal(b, &arr); err == nil {
		return arr, nil
	}
	var obj struct {
		Rules []Rule `json:"rules"`
	}
	if err := json.Unmarshal(b, &obj); err != nil {
		return nil, fmt.Errorf("alert rules %s: %w", path, err)
	}
	return obj.Rules, nil
}
