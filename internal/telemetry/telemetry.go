// Package telemetry is the durable metrics time-series tier of the
// tuning service: a zero-dependency embedded store that periodically
// snapshots an obs metrics registry into fixed-interval samples, holds
// them in ring-buffered in-memory series with tiered downsampling
// rollups, and (optionally) persists sealed rollup buckets through the
// storage tier so history survives crash and restart.
//
// The sampling model:
//
//   - Counters become rates: each poll records the monotonic delta since
//     the previous poll divided by the elapsed time, so a counter series
//     reads in events-per-second. A counter reset (an embedded registry
//     restarting) is treated as a restart from zero.
//   - Gauges record their instantaneous value.
//   - Histograms contribute derived series: "<name>:rate" (observation
//     throughput), "<name>:avg" (mean observed value over the poll
//     interval, delta-sum over delta-count), and — for sketched
//     families — "<name>:p50" / ":p90" / ":p99" gauges from the
//     registry's quantile sketches.
//
// Every sample lands in all rollup tiers at once: the raw tier at the
// poll interval, a mid tier at 10x, and a top tier at 60x (1s → 10s →
// 1m at the default interval). A tier bucket keeps min / max / sum /
// count / last, so rollups compose losslessly: aggregating a run of
// finer buckets yields exactly the coarser bucket covering them (the
// property tests pin this bit for bit). Each tier is a ring with its
// own retention — short and fine near now, long and coarse into the
// past — and the coarser tier always retains at least as long, so the
// union of tiers covers a contiguous window ending at the present.
//
// Sealed mid- and top-tier buckets are handed to the persist hook as
// compact batched blocks; Restore replays recovered blocks back into
// the rings at startup. Only buckets whose window has closed are ever
// persisted, so a crash loses at most the currently-open window per
// tier — the torn tail.
package telemetry

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"seamlesstune/internal/obs"
)

// Tier multipliers over the base interval: raw, 10x, 60x.
var tierMultipliers = [3]int64{1, 10, 60}

// Config parameterizes a Store.
type Config struct {
	// Registry is the metrics registry to sample (nil = obs.Default()).
	Registry *obs.Registry
	// Interval is the raw sampling period (0 = 1s).
	Interval time.Duration
	// Retention bounds the top (coarsest) tier's history (0 = 24h). The
	// mid tier retains min(1h, Retention) and the raw tier
	// min(10m, mid retention); coarser tiers never retain less than
	// finer ones, so tier windows nest and coverage stays contiguous.
	Retention time.Duration
	// Now supplies the clock (tests); nil = time.Now.
	Now func() time.Time
}

// Store is the embedded time-series store. Construct with NewStore;
// safe for concurrent use.
type Store struct {
	reg      *obs.Registry
	interval time.Duration
	now      func() time.Time

	// widths[i] and caps[i] are tier i's bucket width and ring capacity.
	widths [3]time.Duration
	caps   [3]int

	mu        sync.Mutex
	series    map[string]*series   // key: metric + "\xff" + label values
	byMetric  map[string][]*series // metric name -> its series
	lastPoll  time.Time
	samples   uint64 // raw samples recorded across all series
	persisted uint64 // blocks handed to the persist hook
	restored  int    // buckets restored from recovered blocks

	persist  func(block []byte) error
	onSample []func(ts time.Time)

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// sampleKind selects how a raw registry reading becomes a sample value.
type sampleKind uint8

const (
	kindGauge sampleKind = iota // instantaneous value
	kindRate                    // monotonic delta / elapsed seconds
	kindAvg                     // delta-sum / delta-count (histograms)
)

// series is one stored time series: a metric name (possibly with a
// derived suffix such as ":p99"), its label set, and one ring per tier.
type series struct {
	metric string
	labels map[string]string

	tiers [3]tier

	// delta state for kindRate / kindAvg series.
	kind      sampleKind
	lastRaw   float64 // previous counter value (rate) or sum (avg)
	lastCount float64 // previous count (avg)
	lastTS    time.Time
	hasLast   bool
}

// Agg is the lossless per-bucket aggregate. Merging Aggs in time order
// reproduces exactly the Agg a single pass over the same samples would
// build.
type Agg struct {
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Sum   float64 `json:"sum"`
	Count int64   `json:"count"`
	Last  float64 `json:"last"`
}

// observe folds one sample into the aggregate.
func (a *Agg) observe(v float64) {
	if a.Count == 0 || v < a.Min {
		a.Min = v
	}
	if a.Count == 0 || v > a.Max {
		a.Max = v
	}
	a.Sum += v
	a.Count++
	a.Last = v
}

// Merge folds a later aggregate into a (b's samples follow a's in time).
func (a *Agg) Merge(b Agg) {
	if b.Count == 0 {
		return
	}
	if a.Count == 0 {
		*a = b
		return
	}
	if b.Min < a.Min {
		a.Min = b.Min
	}
	if b.Max > a.Max {
		a.Max = b.Max
	}
	a.Sum += b.Sum
	a.Count += b.Count
	a.Last = b.Last
}

// Avg returns the mean sample value (0 when empty).
func (a Agg) Avg() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / float64(a.Count)
}

// bucket is one sealed or open rollup window.
type bucket struct {
	start int64 // window start, unix nanoseconds, aligned to the tier width
	agg   Agg
}

// tier is one downsampling level: the open bucket plus a ring of sealed
// ones, newest last.
type tier struct {
	width  int64 // ns
	buf    []bucket
	head   int // ring slot of the oldest sealed bucket
	n      int // sealed buckets held
	cur    bucket
	curSet bool
}

// observe folds a sample; when the sample opens a new window the
// previous bucket seals and is returned (for persistence).
func (t *tier) observe(tsNS int64, v float64) (sealed bucket, didSeal bool) {
	aligned := tsNS - tsNS%t.width
	if !t.curSet {
		t.cur = bucket{start: aligned}
		t.cur.agg.observe(v)
		t.curSet = true
		return bucket{}, false
	}
	if aligned <= t.cur.start {
		// Same window (or clock skew backwards): fold in place.
		t.cur.agg.observe(v)
		return bucket{}, false
	}
	sealed = t.cur
	t.push(t.cur)
	t.cur = bucket{start: aligned}
	t.cur.agg.observe(v)
	return sealed, true
}

// push appends a sealed bucket, evicting the oldest when full. Buckets
// with the same start as the ring's newest merge instead of duplicating
// the window (the restore-then-resume path).
func (t *tier) push(b bucket) {
	if t.n > 0 {
		newest := &t.buf[(t.head+t.n-1)%len(t.buf)]
		if newest.start == b.start {
			newest.agg.Merge(b.agg)
			return
		}
	}
	if t.n == len(t.buf) {
		t.buf[t.head] = b
		t.head = (t.head + 1) % len(t.buf)
		return
	}
	t.buf[(t.head+t.n)%len(t.buf)] = b
	t.n++
}

// each calls fn over the sealed buckets oldest-first, then the open one.
func (t *tier) each(fn func(b bucket)) {
	for i := 0; i < t.n; i++ {
		fn(t.buf[(t.head+i)%len(t.buf)])
	}
	if t.curSet {
		fn(t.cur)
	}
}

// oldestStart returns the start of the earliest retained window (sealed
// or open) and whether the tier holds anything.
func (t *tier) oldestStart() (int64, bool) {
	if t.n > 0 {
		return t.buf[t.head].start, true
	}
	if t.curSet {
		return t.cur.start, true
	}
	return 0, false
}

// NewStore builds a store with the configured geometry. Call Start for
// background sampling, or drive Poll manually (tests, custom loops).
func NewStore(cfg Config) *Store {
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Retention <= 0 {
		cfg.Retention = 24 * time.Hour
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Store{
		reg:      cfg.Registry,
		interval: cfg.Interval,
		now:      cfg.Now,
		series:   make(map[string]*series),
		byMetric: make(map[string][]*series),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	// Tier retentions nest: top = Retention, mid = min(1h, top),
	// raw = min(10m, mid). Capacities are windows-per-retention.
	topRet := cfg.Retention
	midRet := time.Hour
	if midRet > topRet {
		midRet = topRet
	}
	rawRet := 10 * time.Minute
	if rawRet > midRet {
		rawRet = midRet
	}
	rets := [3]time.Duration{rawRet, midRet, topRet}
	for i, mult := range tierMultipliers {
		s.widths[i] = cfg.Interval * time.Duration(mult)
		c := int(rets[i]/s.widths[i]) + 1
		if c < 2 {
			c = 2
		}
		s.caps[i] = c
	}
	return s
}

// Interval returns the raw sampling period.
func (s *Store) Interval() time.Duration { return s.interval }

// TierWidths returns each tier's bucket width, finest first.
func (s *Store) TierWidths() []time.Duration { return s.widths[:] }

// SetPersist installs fn to receive sealed-rollup blocks (nil removes
// it). Blocks are produced outside the store lock, at most one per
// poll; fn should enqueue asynchronously and may drop under pressure —
// the in-memory rings stay authoritative for the process lifetime.
func (s *Store) SetPersist(fn func(block []byte) error) {
	s.mu.Lock()
	s.persist = fn
	s.mu.Unlock()
}

// OnSample registers fn to run after every poll (the alert engine's
// evaluation hook). Hooks run outside the store lock, on the polling
// goroutine, in registration order.
func (s *Store) OnSample(fn func(ts time.Time)) {
	s.mu.Lock()
	s.onSample = append(s.onSample, fn)
	s.mu.Unlock()
}

// Start launches the background sampler at the configured interval.
// Subsequent calls are no-ops.
func (s *Store) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(s.done)
		ticker := time.NewTicker(s.interval)
		defer ticker.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-ticker.C:
				s.Poll(s.now())
			}
		}
	}()
}

// Stop halts the background sampler and waits for it to exit.
// Idempotent; safe without a prior Start.
func (s *Store) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	if s.started.Load() {
		<-s.done
	}
}

// seriesKey builds the map key for (metric, label values in family
// order). Label values cannot contain \xff in practice (they are
// tenant/route/phase names); a collision would only merge histories.
func seriesKey(metric string, labelVals []string) string {
	if len(labelVals) == 0 {
		return metric
	}
	return metric + "\xff" + strings.Join(labelVals, "\xff")
}

// getSeries finds or creates the series.
func (s *Store) getSeries(metric string, labelNames, labelVals []string, kind sampleKind) *series {
	key := seriesKey(metric, labelVals)
	if sr, ok := s.series[key]; ok {
		return sr
	}
	sr := &series{metric: metric, kind: kind}
	if len(labelNames) > 0 {
		sr.labels = make(map[string]string, len(labelNames))
		for i, n := range labelNames {
			if i < len(labelVals) {
				sr.labels[n] = labelVals[i]
			}
		}
	}
	for i := range sr.tiers {
		sr.tiers[i] = tier{width: int64(s.widths[i]), buf: make([]bucket, s.caps[i])}
	}
	s.series[key] = sr
	s.byMetric[metric] = append(s.byMetric[metric], sr)
	return sr
}

// Poll takes one sample of the registry at ts, folding every family
// into the rollup tiers, and hands sealed mid/top-tier buckets to the
// persist hook. Manual calls compose with Start only if the caller
// guarantees monotone timestamps.
func (s *Store) Poll(ts time.Time) {
	snap := s.reg.Gather()
	tsNS := ts.UnixNano()

	s.mu.Lock()
	var sealed []sealedBucket
	// record folds one reading. For kindRate, raw is the counter value;
	// for kindAvg, raw is the histogram sum and count the sample count.
	record := func(metric string, labelNames, labelVals []string, kind sampleKind, raw, count float64) {
		sr := s.getSeries(metric, labelNames, labelVals, kind)
		value := raw
		switch kind {
		case kindRate:
			prev, prevTS, ok := sr.lastRaw, sr.lastTS, sr.hasLast
			sr.lastRaw, sr.lastTS, sr.hasLast = raw, ts, true
			if !ok {
				return // first observation: no delta yet
			}
			dt := ts.Sub(prevTS).Seconds()
			if dt <= 0 {
				return
			}
			delta := raw - prev
			if delta < 0 {
				delta = raw // counter reset: restart from zero
			}
			value = delta / dt
		case kindAvg:
			prevSum, prevCount, ok := sr.lastRaw, sr.lastCount, sr.hasLast
			sr.lastRaw, sr.lastCount, sr.lastTS, sr.hasLast = raw, count, ts, true
			if !ok {
				return
			}
			dc := count - prevCount
			if dc <= 0 {
				return // no new observations this interval (or reset)
			}
			value = (raw - prevSum) / dc
		}
		s.samples++
		for i := range sr.tiers {
			if b, ok := sr.tiers[i].observe(tsNS, value); ok && i > 0 {
				// Raw buckets stay in memory only; sealed mid/top
				// buckets are the durable rollup stream.
				sealed = append(sealed, sealedBucket{
					Metric: sr.metric, Labels: sr.labels,
					WidthNS: int64(s.widths[i]), Start: b.start, Agg: b.agg,
				})
			}
		}
	}

	for _, f := range snap.Families {
		for _, ss := range f.Series {
			switch f.Kind {
			case "counter":
				record(f.Name, f.Labels, ss.LabelValues, kindRate, ss.Value, 0)
			case "gauge":
				record(f.Name, f.Labels, ss.LabelValues, kindGauge, ss.Value, 0)
			case "histogram":
				record(f.Name+":rate", f.Labels, ss.LabelValues, kindRate, float64(ss.Count), 0)
				record(f.Name+":avg", f.Labels, ss.LabelValues, kindAvg, ss.Sum, float64(ss.Count))
				for _, q := range [...]string{"p50", "p90", "p99"} {
					if v, ok := ss.Quantiles[q]; ok {
						record(f.Name+":"+q, f.Labels, ss.LabelValues, kindGauge, v, 0)
					}
				}
			}
		}
	}
	s.lastPoll = ts
	persist := s.persist
	hooks := s.onSample
	if len(sealed) > 0 && persist != nil {
		s.persisted++
	}
	s.mu.Unlock()

	if len(sealed) > 0 && persist != nil {
		persist(encodeBlock(sealed))
	}
	for _, fn := range hooks {
		fn(ts)
	}
}

// Stats is a point-in-time summary of the store.
type Stats struct {
	Series     int     `json:"series"`
	Samples    uint64  `json:"samples"`
	Blocks     uint64  `json:"blocks,omitempty"`
	Restored   int     `json:"restoredBuckets,omitempty"`
	IntervalS  float64 `json:"intervalS"`
	LastPollNS int64   `json:"lastPollNS,omitempty"`
}

// Stats summarizes the store.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Series:    len(s.series),
		Samples:   s.samples,
		Blocks:    s.persisted,
		Restored:  s.restored,
		IntervalS: s.interval.Seconds(),
	}
	if !s.lastPoll.IsZero() {
		st.LastPollNS = s.lastPoll.UnixNano()
	}
	return st
}

// Metrics lists the stored metric names, sorted — the discovery surface
// behind /v1/query's error hint.
func (s *Store) Metrics() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.byMetric))
	for m := range s.byMetric {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
