package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"seamlesstune/internal/obs"
)

// alertFixture wires a store + engine over a private registry with an
// event-recording sink, driven by a fake clock.
type alertFixture struct {
	reg    *obs.Registry
	store  *Store
	engine *Engine
	events []obs.Event
	t      time.Time
}

func newAlertFixture(t *testing.T, rules []Rule) *alertFixture {
	t.Helper()
	f := &alertFixture{reg: obs.NewRegistry(), t: base}
	f.store = NewStore(Config{Registry: f.reg, Interval: time.Second})
	eng, err := NewEngine(f.store, rules)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetSink(func(e obs.Event) { f.events = append(f.events, e) })
	f.store.OnSample(eng.Eval)
	f.engine = eng
	return f
}

// tick advances the fake clock one interval and polls (which also runs
// the engine via the OnSample hook).
func (f *alertFixture) tick() {
	f.store.Poll(f.t)
	f.t = f.t.Add(time.Second)
}

func (f *alertFixture) state(name string) AlertState {
	for _, a := range f.engine.Alerts() {
		if a.Name == name {
			return a.State
		}
	}
	return ""
}

func TestThresholdLifecycle(t *testing.T) {
	f := newAlertFixture(t, []Rule{{
		Name: "hot", Kind: "threshold", Metric: "v", Op: ">", Value: 10,
		Window: Duration(time.Second),
		For:    Duration(3 * time.Second), ResolveAfter: Duration(4 * time.Second),
	}})
	g := f.reg.Gauge("v", "test")

	g.Set(1)
	f.tick()
	f.tick()
	if got := f.state("hot"); got != StateInactive {
		t.Fatalf("below threshold: state = %s, want inactive", got)
	}

	g.Set(50) // condition starts holding
	f.tick()
	if got := f.state("hot"); got != StatePending {
		t.Fatalf("first breach: state = %s, want pending", got)
	}
	f.tick()
	f.tick()
	f.tick() // held >= For
	if got := f.state("hot"); got != StateFiring {
		t.Fatalf("after For: state = %s, want firing", got)
	}
	if len(f.events) != 1 || f.events[0].State != "firing" || f.events[0].Alert != "hot" {
		t.Fatalf("firing event not emitted exactly once: %+v", f.events)
	}
	if f.events[0].Severity != "warn" {
		t.Errorf("severity = %q, want warn (default)", f.events[0].Severity)
	}

	g.Set(1) // condition clears
	f.tick()
	if got := f.state("hot"); got != StateFiring {
		t.Fatalf("inside ResolveAfter: state = %s, want still firing", got)
	}
	f.tick()
	f.tick()
	f.tick()
	f.tick() // false continuously >= ResolveAfter
	if got := f.state("hot"); got != StateInactive {
		t.Fatalf("after ResolveAfter: state = %s, want inactive", got)
	}
	if len(f.events) != 2 || f.events[1].State != "resolved" {
		t.Fatalf("resolved event missing: %+v", f.events)
	}
	if f.events[1].Severity != "ok" {
		t.Errorf("resolved severity = %q, want ok", f.events[1].Severity)
	}
}

// TestPendingRetreatsWithoutFiring: a breach shorter than For never
// emits anything.
func TestPendingRetreatsWithoutFiring(t *testing.T) {
	f := newAlertFixture(t, []Rule{{
		Name: "hot", Kind: "threshold", Metric: "v", Value: 10,
		Window: Duration(time.Second), For: Duration(5 * time.Second),
	}})
	g := f.reg.Gauge("v", "test")
	g.Set(50)
	f.tick()
	f.tick()
	if got := f.state("hot"); got != StatePending {
		t.Fatalf("state = %s, want pending", got)
	}
	g.Set(1)
	// Two ticks: the 1s window spanning the boundary still averages the
	// old high sample on the first tick after the recovery.
	f.tick()
	f.tick()
	if got := f.state("hot"); got != StateInactive {
		t.Fatalf("state = %s, want inactive", got)
	}
	if len(f.events) != 0 {
		t.Fatalf("short breach emitted events: %+v", f.events)
	}
}

// TestFlapDampingHysteresis: a condition oscillating faster than
// ResolveAfter keeps the alert firing with no extra events — one firing
// event for the whole flappy episode, one resolved at the true end.
func TestFlapDampingHysteresis(t *testing.T) {
	f := newAlertFixture(t, []Rule{{
		Name: "flappy", Kind: "threshold", Metric: "v", Value: 10,
		Window: Duration(time.Second), For: 0, ResolveAfter: Duration(3 * time.Second),
	}})
	g := f.reg.Gauge("v", "test")

	g.Set(50)
	f.tick() // For=0: fires immediately
	if got := f.state("flappy"); got != StateFiring {
		t.Fatalf("state = %s, want firing", got)
	}
	// Oscillate: 2 ticks false, 1 true, repeatedly — never 3 consecutive
	// false ticks, so the alert must hold.
	for cycle := 0; cycle < 5; cycle++ {
		g.Set(1)
		f.tick()
		f.tick()
		g.Set(50)
		f.tick()
	}
	if got := f.state("flappy"); got != StateFiring {
		t.Fatalf("flapping resolved the alert: state = %s", got)
	}
	if len(f.events) != 1 {
		t.Fatalf("flapping churned events: %d emitted, want 1", len(f.events))
	}
	// Now clear for good.
	g.Set(1)
	for i := 0; i < 4; i++ {
		f.tick()
	}
	if got := f.state("flappy"); got != StateInactive {
		t.Fatalf("state = %s, want inactive after sustained recovery", got)
	}
	if len(f.events) != 2 || f.events[1].State != "resolved" {
		t.Fatalf("events = %+v, want exactly firing+resolved", f.events)
	}
}

// TestBurnRateBothWindowsMustBurn seeds an SLO-violation episode and
// checks the two-window gate: a short spike alone does not page; a
// sustained burn crossing both windows does.
func TestBurnRateBothWindowsMustBurn(t *testing.T) {
	f := newAlertFixture(t, []Rule{{
		Name: "burn", Kind: "burn_rate", Severity: "critical",
		BadMetric: "bad_total", TotalMetric: "ok_total",
		Objective: 0.99, Factor: 10,
		ShortWindow: Duration(10 * time.Second), LongWindow: Duration(60 * time.Second),
		For: Duration(2 * time.Second),
	}})
	bad := f.reg.Counter("bad_total", "violations")
	total := f.reg.Counter("ok_total", "checks")

	// 60s of clean traffic: 10 checks/s, no violations.
	for i := 0; i < 60; i++ {
		total.Add(10)
		f.tick()
	}
	if got := f.state("burn"); got != StateInactive {
		t.Fatalf("clean traffic: state = %s", got)
	}

	// A 5s spike at 50% violations: short-window burn = 0.5/0.01 = 50 >
	// 10, but the 60s window dilutes it to ~4 — must NOT fire.
	for i := 0; i < 5; i++ {
		total.Add(10)
		bad.Add(5)
		f.tick()
	}
	if got := f.state("burn"); got == StateFiring {
		t.Fatal("short spike alone paged despite healthy long window")
	}

	// Sustain the violation ratio until the long window burns too.
	fired := false
	for i := 0; i < 90; i++ {
		total.Add(10)
		bad.Add(5)
		f.tick()
		if f.state("burn") == StateFiring {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("sustained 50% violation ratio never fired the burn-rate page")
	}
	if len(f.events) != 1 || f.events[0].Alert != "burn" || f.events[0].Severity != "critical" {
		t.Fatalf("events = %+v", f.events)
	}
	// The reported value is the short-window burn: ~0.5/0.01 = 50.
	if v := f.events[0].Value; v < 20 || v > 60 {
		t.Errorf("reported burn = %v, want ~50", v)
	}
}

// TestRearmReplaysSilently: replaying restored history emits nothing
// mid-replay and exactly one firing event per still-firing rule at the
// end — a restart inside an incident re-pages once.
func TestRearmReplaysSilently(t *testing.T) {
	f := newAlertFixture(t, []Rule{{
		Name: "hot", Kind: "threshold", Metric: "v", Value: 10,
		Window: Duration(time.Minute), For: Duration(2 * time.Second),
	}})
	g := f.reg.Gauge("v", "test")
	// Build history with the engine detached (as after Restore: buckets
	// exist, engine state is cold). Events during these polls go through
	// Eval, so detach the sink first and reset states after.
	f.engine.SetSink(nil)
	g.Set(50)
	for i := 0; i < 30; i++ {
		f.tick()
	}
	// Fresh engine over the same store: the restart.
	eng2, err := NewEngine(f.store, []Rule{{
		Name: "hot", Kind: "threshold", Metric: "v", Value: 10,
		Window: Duration(time.Minute), For: Duration(2 * time.Second),
	}})
	if err != nil {
		t.Fatal(err)
	}
	var replayed []obs.Event
	eng2.SetSink(func(e obs.Event) { replayed = append(replayed, e) })
	eng2.Rearm(base, f.t, time.Second)
	if eng2.Firing() != 1 {
		t.Fatalf("Firing() = %d after rearm, want 1", eng2.Firing())
	}
	if len(replayed) != 1 || replayed[0].State != "firing" {
		t.Fatalf("rearm emitted %+v, want exactly one firing event", replayed)
	}
}

func TestRuleValidation(t *testing.T) {
	bad := []Rule{
		{Kind: "threshold", Metric: "v"},                      // no name
		{Name: "a", Kind: "nope"},                             // bad kind
		{Name: "b", Kind: "threshold"},                        // no metric
		{Name: "c", Kind: "threshold", Metric: "v", Op: ">="}, // bad op
		{Name: "d", Kind: "burn_rate", BadMetric: "x"},        // no total
		{Name: "e", Kind: "burn_rate", BadMetric: "x", TotalMetric: "y", Objective: 2,
			ShortWindow: 1, LongWindow: 2, Factor: 1}, // objective out of range
		{Name: "f", Kind: "threshold", Metric: "v", Severity: "page"}, // bad severity
	}
	for _, r := range bad {
		if _, err := NewEngine(NewStore(Config{Registry: obs.NewRegistry()}), []Rule{r}); err == nil {
			t.Errorf("rule %+v validated, want error", r)
		}
	}
	// The error lists every problem, not just the first.
	_, err := NewEngine(NewStore(Config{Registry: obs.NewRegistry()}), bad[:2])
	if err == nil {
		t.Fatal("want error")
	}
	if len(err.Error()) < 20 {
		t.Errorf("error %q seems to cover one problem only", err)
	}
}

func TestDefaultRulesValidate(t *testing.T) {
	eng, err := NewEngine(NewStore(Config{Registry: obs.NewRegistry()}), DefaultRules())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(eng.Alerts()); got != len(DefaultRules()) {
		t.Fatalf("engine holds %d rules, want %d", got, len(DefaultRules()))
	}
}

func TestLoadRules(t *testing.T) {
	// Empty path: defaults.
	rules, err := LoadRules("")
	if err != nil || len(rules) == 0 {
		t.Fatalf("LoadRules(\"\") = %d rules, err %v", len(rules), err)
	}
	dir := t.TempDir()

	bare := filepath.Join(dir, "bare.json")
	os.WriteFile(bare, []byte(`[{"name":"x","kind":"threshold","metric":"v","value":1,"window":"30s","for":"1m"}]`), 0o644)
	rules, err = LoadRules(bare)
	if err != nil || len(rules) != 1 || rules[0].Name != "x" {
		t.Fatalf("bare array: %+v, err %v", rules, err)
	}
	if time.Duration(rules[0].Window) != 30*time.Second {
		t.Errorf("window = %v, want 30s", time.Duration(rules[0].Window))
	}

	wrapped := filepath.Join(dir, "wrapped.json")
	os.WriteFile(wrapped, []byte(`{"rules":[{"name":"y","kind":"burn_rate","badMetric":"b","totalMetric":"t","objective":0.999,"factor":6,"shortWindow":"5m","longWindow":"1h"}]}`), 0o644)
	rules, err = LoadRules(wrapped)
	if err != nil || len(rules) != 1 || rules[0].Name != "y" {
		t.Fatalf("wrapped object: %+v, err %v", rules, err)
	}

	if _, err := LoadRules(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file: want error")
	}
	badPath := filepath.Join(dir, "bad.json")
	os.WriteFile(badPath, []byte("{nope"), 0o644)
	if _, err := LoadRules(badPath); err == nil {
		t.Error("malformed file: want error")
	}
}

func TestDurationJSONRoundTrip(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"1h30m"`), &d); err != nil || time.Duration(d) != 90*time.Minute {
		t.Fatalf("string form: %v err %v", time.Duration(d), err)
	}
	if err := json.Unmarshal([]byte(`5000000000`), &d); err != nil || time.Duration(d) != 5*time.Second {
		t.Fatalf("numeric form: %v err %v", time.Duration(d), err)
	}
	b, _ := json.Marshal(Duration(90 * time.Minute))
	if string(b) != `"1h30m0s"` {
		t.Errorf("marshal = %s", b)
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &d); err == nil {
		t.Error("bogus duration: want error")
	}
}

func TestAlertsOrdering(t *testing.T) {
	f := newAlertFixture(t, []Rule{
		{Name: "zz-firing", Kind: "threshold", Metric: "v", Value: 10, For: 0,
			Window: Duration(time.Second)},
		{Name: "aa-quiet", Kind: "threshold", Metric: "v", Value: 1e9,
			Window: Duration(time.Second)},
	})
	g := f.reg.Gauge("v", "test")
	g.Set(50)
	f.tick()
	got := f.engine.Alerts()
	if got[0].Name != "zz-firing" || got[0].State != StateFiring {
		t.Fatalf("firing rule not sorted first: %+v", got)
	}
	if f.engine.Firing() != 1 {
		t.Errorf("Firing() = %d, want 1", f.engine.Firing())
	}
}
