package telemetry

import (
	"encoding/json"
	"time"
)

// sealedBucket is the durable form of one closed rollup window. Blocks
// are JSON arrays of these — small (one poll seals at most one mid and
// one top bucket per series), self-describing, and stable across
// versions, which matters more than byte compactness for an embedded
// store whose WAL already batches and compacts.
type sealedBucket struct {
	Metric  string            `json:"m"`
	Labels  map[string]string `json:"l,omitempty"`
	WidthNS int64             `json:"w"`
	Start   int64             `json:"s"`
	Agg     Agg               `json:"a"`
}

// encodeBlock serializes sealed buckets into one persistable block.
func encodeBlock(bs []sealedBucket) []byte {
	b, err := json.Marshal(bs)
	if err != nil {
		return nil // unreachable: sealedBucket has no unmarshalable fields
	}
	return b
}

// Restore replays recovered rollup blocks (oldest first, as the storage
// tier returns them) into the in-memory rings. Unknown tier widths —
// from a process restarted with a different -telemetry-interval — are
// skipped: mixing widths inside a ring would corrupt the rollup
// algebra. Call before Start, and before SetPersist to avoid re-writing
// restored history.
func (s *Store) Restore(blocks [][]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, blk := range blocks {
		var bs []sealedBucket
		if err := json.Unmarshal(blk, &bs); err != nil {
			continue // torn or foreign block: the WAL tail may be ragged
		}
		for _, sb := range bs {
			ti := -1
			for i, w := range s.widths {
				if int64(w) == sb.WidthNS {
					ti = i
					break
				}
			}
			if ti <= 0 {
				continue // unknown width, or raw tier (never persisted)
			}
			names, vals := labelPairs(sb.Labels)
			sr := s.getSeries(sb.Metric, names, vals, kindGauge)
			sr.tiers[ti].push(bucket{start: sb.Start, agg: sb.Agg})
			s.restored++
		}
	}
}

// PersistedState dumps every sealed mid/top-tier bucket as blocks — the
// storage tier's compaction snapshot source, so a compacted WAL still
// reconstructs full history. One block per series keeps individual
// records well under the WAL record size bound.
func (s *Store) PersistedState() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out [][]byte
	for _, srs := range s.byMetric {
		for _, sr := range srs {
			var bs []sealedBucket
			for i := 1; i < len(sr.tiers); i++ {
				t := &sr.tiers[i]
				for j := 0; j < t.n; j++ {
					b := t.buf[(t.head+j)%len(t.buf)]
					bs = append(bs, sealedBucket{
						Metric: sr.metric, Labels: sr.labels,
						WidthNS: t.width, Start: b.start, Agg: b.agg,
					})
				}
			}
			if len(bs) > 0 {
				out = append(out, encodeBlock(bs))
			}
		}
	}
	return out
}

// labelPairs splits a label map into sorted parallel name/value slices
// matching the registry's family ordering (obs sorts label names at
// family registration, so map iteration order must be normalized the
// same way).
func labelPairs(m map[string]string) (names, vals []string) {
	if len(m) == 0 {
		return nil, nil
	}
	names = make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	// insertion sort: label sets are tiny (1-3 entries)
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	vals = make([]string, len(names))
	for i, n := range names {
		vals[i] = m[n]
	}
	return names, vals
}

// OldestRetained returns the earliest timestamp any tier still covers
// for the metric (zero time when the metric is unknown).
func (s *Store) OldestRetained(metric string) time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	var oldest int64 = -1
	for _, sr := range s.byMetric[metric] {
		for i := range sr.tiers {
			if st, ok := sr.tiers[i].oldestStart(); ok && (oldest < 0 || st < oldest) {
				oldest = st
			}
		}
	}
	if oldest < 0 {
		return time.Time{}
	}
	return time.Unix(0, oldest)
}
