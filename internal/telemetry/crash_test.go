package telemetry

import (
	"reflect"
	"testing"
	"time"

	"seamlesstune/internal/history"
	"seamlesstune/internal/obs"
	"seamlesstune/internal/storage"
)

// openWAL opens a wal backend on dir with automatic compaction off (the
// compaction path is exercised explicitly below) and runs Recover.
func openWAL(t *testing.T, dir string) (storage.Backend, [][]byte) {
	t.Helper()
	b, err := storage.Open(storage.Config{Backend: "wal", DataDir: dir, CompactSegments: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recover(&history.Store{}); err != nil {
		t.Fatal(err)
	}
	return b, b.RecoveredTelemetry()
}

// TestKillAndRestartServesHistory is the durability acceptance bar for
// the telemetry tier: a WAL-backed store whose process dies without
// shutdown (the backend is abandoned, never closed) restarts with its
// sealed rollup history intact — queries answer pre-crash points, the
// tiers hold the same buckets, the only loss is the open (torn-tail)
// windows, and the alert engine re-arms into the incident.
func TestKillAndRestartServesHistory(t *testing.T) {
	dir := t.TempDir()
	b1, rec := openWAL(t, dir)
	if len(rec) != 0 {
		t.Fatalf("fresh dir recovered %d blocks", len(rec))
	}

	reg := obs.NewRegistry()
	g := reg.Gauge("load", "test gauge")
	src := NewStore(Config{Registry: reg, Interval: time.Second, Retention: time.Hour})
	src.SetPersist(b1.AppendTelemetry)

	rng := prng(99)
	var last time.Time
	for i := 0; i < 200; i++ {
		// Keep the gauge high so the re-armed alert finds an incident.
		g.Set(100 + rng.next())
		last = base.Add(time.Duration(i) * time.Second)
		src.Poll(last)
	}
	preCrash := decodeAll(t, src.PersistedState())
	if len(preCrash) == 0 {
		t.Fatal("no sealed state before the crash")
	}
	// Barrier: AppendTelemetry is asynchronous; a sync makes everything
	// acknowledged so far durable. A real crash would lose at most the
	// unsynced tail on top of the open windows.
	if err := b1.FlushEvents(nil); err != nil {
		t.Fatal(err)
	}
	// Crash: b1 is abandoned, never closed.

	b2, rec2 := openWAL(t, dir)
	defer b2.Close()
	if len(rec2) == 0 {
		t.Fatal("restart recovered no telemetry blocks")
	}
	if b2.Stats().RecoveredTelemetry != len(rec2) {
		t.Errorf("Stats.RecoveredTelemetry = %d, want %d", b2.Stats().RecoveredTelemetry, len(rec2))
	}
	dst := NewStore(Config{Registry: obs.NewRegistry(), Interval: time.Second, Retention: time.Hour})
	dst.Restore(rec2)

	got := decodeAll(t, dst.PersistedState())
	if !reflect.DeepEqual(got, preCrash) {
		t.Fatalf("restored %d buckets != pre-crash %d sealed buckets", len(got), len(preCrash))
	}

	// The restarted server answers range queries over pre-crash history
	// with no gaps beyond the torn tail: consecutive mid-tier windows.
	res := dst.Query("load", nil, base, last, 10*time.Second)
	if len(res) != 1 || len(res[0].Points) < 15 {
		t.Fatalf("query after restart: %+v", res)
	}
	pts := res[0].Points
	for i := 1; i < len(pts); i++ {
		if pts[i].T-pts[i-1].T != 10_000 {
			t.Fatalf("gap between windows %d and %d: %dms apart", i-1, i, pts[i].T-pts[i-1].T)
		}
	}

	// Alert re-arm: the gauge was high for the whole run, so a threshold
	// rule replayed over the restored window must come back firing, with
	// exactly one re-page.
	eng, err := NewEngine(dst, []Rule{{
		Name: "overload", Kind: "threshold", Metric: "load", Op: ">", Value: 50,
		Window: Duration(time.Minute), For: Duration(10 * time.Second),
	}})
	if err != nil {
		t.Fatal(err)
	}
	var events []obs.Event
	eng.SetSink(func(e obs.Event) { events = append(events, e) })
	eng.Rearm(base, last, time.Minute)
	if eng.Firing() != 1 {
		t.Fatalf("alert did not re-arm: Firing() = %d", eng.Firing())
	}
	if len(events) != 1 || events[0].State != "firing" {
		t.Fatalf("rearm events = %+v, want one firing", events)
	}
}

// TestTelemetrySurvivesCompaction: a WAL compaction folds telemetry
// records into the snapshot via the SetTelemetrySource hook, and a
// subsequent recovery still reconstructs full rollup history.
func TestTelemetrySurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	b1, _ := openWAL(t, dir)

	reg := obs.NewRegistry()
	g := reg.Gauge("load", "test gauge")
	src := NewStore(Config{Registry: reg, Interval: time.Second, Retention: time.Hour})
	src.SetPersist(b1.AppendTelemetry)
	b1.SetTelemetrySource(src.PersistedState)

	rng := prng(5)
	for i := 0; i < 150; i++ {
		g.Set(rng.next())
		src.Poll(base.Add(time.Duration(i) * time.Second))
	}
	want := decodeAll(t, src.PersistedState())
	if err := b1.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := b1.Close(); err != nil {
		t.Fatal(err)
	}

	b2, rec := openWAL(t, dir)
	defer b2.Close()
	if len(rec) == 0 {
		t.Fatal("post-compaction recovery found no telemetry")
	}
	dst := NewStore(Config{Registry: obs.NewRegistry(), Interval: time.Second, Retention: time.Hour})
	dst.Restore(rec)
	got := decodeAll(t, dst.PersistedState())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-compaction state: %d buckets, want %d", len(got), len(want))
	}
}

// TestRestartWithDifferentIntervalSkipsForeignWidths: rollups persisted
// at one -telemetry-interval don't corrupt a store restarted with
// another; they are skipped, not misfiled.
func TestRestartWithDifferentIntervalSkipsForeignWidths(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("v", "test")
	src := NewStore(Config{Registry: reg, Interval: time.Second})
	var blocks [][]byte
	src.SetPersist(func(b []byte) error {
		blocks = append(blocks, append([]byte(nil), b...))
		return nil
	})
	for i := 0; i < 100; i++ {
		g.Set(float64(i))
		src.Poll(base.Add(time.Duration(i) * time.Second))
	}
	if len(blocks) == 0 {
		t.Fatal("nothing persisted")
	}
	dst := NewStore(Config{Registry: obs.NewRegistry(), Interval: 2 * time.Second})
	dst.Restore(blocks)
	if got := dst.Stats().Restored; got != 0 {
		t.Fatalf("restored %d buckets across an interval change, want 0", got)
	}
}
