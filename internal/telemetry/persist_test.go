package telemetry

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"
	"time"

	"seamlesstune/internal/obs"
)

// decodeAll flattens persisted blocks into a sorted bucket list so two
// stores' durable state can be compared structurally.
func decodeAll(t *testing.T, blocks [][]byte) []sealedBucket {
	t.Helper()
	var out []sealedBucket
	for _, blk := range blocks {
		var bs []sealedBucket
		if err := json.Unmarshal(blk, &bs); err != nil {
			t.Fatalf("undecodable block: %v", err)
		}
		out = append(out, bs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Metric != out[j].Metric {
			return out[i].Metric < out[j].Metric
		}
		if out[i].WidthNS != out[j].WidthNS {
			return out[i].WidthNS < out[j].WidthNS
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// TestPersistRestoreRoundTrip streams sealed blocks from one store into
// a fresh one and checks the durable state is reproduced exactly: the
// restored store's PersistedState decodes to the same buckets.
func TestPersistRestoreRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("v", "test")
	c := reg.Counter("n_total", "test")
	src := NewStore(Config{Registry: reg, Interval: time.Second, Retention: time.Hour})

	var blocks [][]byte
	src.SetPersist(func(b []byte) error {
		blocks = append(blocks, append([]byte(nil), b...))
		return nil
	})
	rng := prng(3)
	for i := 0; i < 200; i++ {
		g.Set(rng.next())
		c.Add(2)
		src.Poll(base.Add(time.Duration(i) * time.Second))
	}
	if len(blocks) == 0 {
		t.Fatal("no blocks persisted over 200 polls")
	}

	dst := NewStore(Config{Registry: obs.NewRegistry(), Interval: time.Second, Retention: time.Hour})
	dst.Restore(blocks)
	if dst.Stats().Restored == 0 {
		t.Fatal("Restore counted nothing")
	}

	want := decodeAll(t, src.PersistedState())
	got := decodeAll(t, dst.PersistedState())
	if len(want) == 0 {
		t.Fatal("source has no sealed state")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored state diverged: %d buckets vs %d", len(got), len(want))
	}

	// Queries over sealed history answer identically at rollup steps.
	from, to := base, base.Add(200*time.Second)
	qw := src.Query("v", nil, from, to, 10*time.Second)
	qg := dst.Query("v", nil, from, to, 10*time.Second)
	// The source also holds the raw tier; force both onto the mid tier by
	// comparing only windows the restored store has (the open mid/top
	// windows never persisted).
	if len(qg) != 1 || len(qw) != 1 {
		t.Fatalf("query shape: src=%d dst=%d series", len(qw), len(qg))
	}
	if len(qg[0].Points) == 0 {
		t.Fatal("restored store answers no points")
	}
	for i, p := range qg[0].Points {
		if i >= len(qw[0].Points) {
			break
		}
		if p != qw[0].Points[i] {
			t.Errorf("point %d: restored %+v != source %+v", i, p, qw[0].Points[i])
		}
	}
}

func TestRestoreSkipsTornAndForeignBlocks(t *testing.T) {
	s := NewStore(Config{Registry: obs.NewRegistry(), Interval: time.Second})
	good := encodeBlock([]sealedBucket{{
		Metric: "v", WidthNS: int64(10 * time.Second), Start: base.UnixNano(),
		Agg: Agg{Min: 1, Max: 2, Sum: 3, Count: 2, Last: 2},
	}})
	s.Restore([][]byte{
		[]byte("{torn"), // ragged WAL tail
		[]byte(`[{"m":"x","w":12345,"s":1,"a":{}}]`),                         // unknown tier width
		[]byte(`[{"m":"x","w":` + "1000000000" + `,"s":1,"a":{"count":1}}]`), // raw tier: never persisted, never restored
		good,
	})
	if got := s.Stats().Restored; got != 1 {
		t.Fatalf("Restored = %d, want 1 (only the well-formed mid-tier bucket)", got)
	}
}

// TestRestoreThenResumeMergesOpenWindow pins the restart seam: a bucket
// restored for window W merges with samples the resumed process seals
// into the same window instead of duplicating it.
func TestRestoreThenResumeMergesOpenWindow(t *testing.T) {
	var ti tier
	ti = tier{width: int64(10 * time.Second), buf: make([]bucket, 8)}
	w0 := base.UnixNano() - base.UnixNano()%ti.width
	ti.push(bucket{start: w0, agg: Agg{Min: 1, Max: 1, Sum: 2, Count: 2, Last: 1}})
	// The resumed process seals the same window again (it re-entered W
	// before the window closed).
	ti.push(bucket{start: w0, agg: Agg{Min: 3, Max: 4, Sum: 7, Count: 2, Last: 4}})
	if ti.n != 1 {
		t.Fatalf("same-start push duplicated the window: n=%d", ti.n)
	}
	got := ti.buf[ti.head].agg
	want := Agg{Min: 1, Max: 4, Sum: 9, Count: 4, Last: 4}
	if got != want {
		t.Fatalf("merged agg = %+v, want %+v", got, want)
	}
}

func TestOldestRetained(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("v", "test")
	s := NewStore(Config{Registry: reg, Interval: time.Second})
	if !s.OldestRetained("v").IsZero() {
		t.Error("unknown metric should report zero time")
	}
	g.Set(1)
	s.Poll(base)
	s.Poll(base.Add(time.Second))
	got := s.OldestRetained("v")
	if got.IsZero() || got.After(base) {
		t.Errorf("OldestRetained = %v, want <= %v", got, base)
	}
}
