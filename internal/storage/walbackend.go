package storage

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"seamlesstune/internal/history"
	"seamlesstune/internal/obs"
	"seamlesstune/internal/wal"
)

// Storage-tier metrics (the WAL's own append/fsync families live in
// internal/wal).
var (
	mRecords = obs.Default().Counter("storage_records_total",
		"History records appended to the storage backend.")
	mEvents = obs.Default().Counter("storage_events_total",
		"Telemetry events appended to the storage backend.")
	mCompactions = obs.Default().Counter("storage_compactions_total",
		"Completed compactions (cold segments folded into a snapshot).")
	mRecoveredRecords = obs.Default().Gauge("storage_recovered_records",
		"History records recovered at the last startup.")
	mRecoverySeconds = obs.Default().Gauge("storage_recovery_seconds",
		"Wall-clock time of the last startup recovery.")
	// Persist-sink loss is first-class telemetry: the alert engine's
	// default rules watch these to flag observability degradation.
	mEventsDropped = obs.Default().Counter("storage_events_dropped_total",
		"Telemetry events shed at the storage append queue bound.")
	mTelemetry = obs.Default().Counter("storage_telemetry_blocks_total",
		"Telemetry rollup blocks appended to the storage backend.")
	mTelemetryDropped = obs.Default().Counter("storage_telemetry_dropped_total",
		"Telemetry rollup blocks shed at the storage append queue bound.")
)

// walBackend persists history records and telemetry events as O(1)
// appends to a segmented write-ahead log, with snapshot-record
// compaction bounding disk usage and recovery time.
type walBackend struct {
	cfg Config
	log *wal.Log

	records          atomic.Int64
	events           atomic.Int64
	errors           atomic.Int64
	eventsDropped    atomic.Int64
	telemetry        atomic.Int64
	telemetryDropped atomic.Int64
	compactions      atomic.Int64
	lastCompact      atomic.Int64

	// mu guards the recovery-bound fields; compactMu serializes Compact
	// itself — the admin endpoint and the background compactor may invoke
	// it concurrently, and an overlapped fold could append an older
	// snapshot after a newer one, regressing the recovered event tail.
	mu             sync.Mutex
	compactMu      sync.Mutex
	store          *history.Store
	recovered      recoveryInfo
	compactStarted bool
	recoveredTel   [][]byte
	telSource      func() [][]byte

	ring *eventRing

	bufPool sync.Pool

	stopCompact chan struct{}
	compactDone chan struct{}
	closeOnce   sync.Once
}

type recoveryInfo struct {
	records   int
	events    int
	telemetry int
	seconds   float64
}

// walSnapshot is the payload of a compaction snapshot record: the whole
// history through MaxSeq plus the retained tail of the event stream.
// Records replayed after a snapshot supersede it; records before it are
// already folded in.
//
// A history too large for one WAL record is chunked: Part/Parts frame a
// run of consecutive snapshot records, each carrying a slice of the
// history (ascending, with the event tail on the last part) and all
// sharing MaxSeq. Replay applies a chunked snapshot only once every part
// has arrived; an incomplete run — the crash window of an interrupted
// compaction — is discarded, which loses nothing because the folded
// segments are only removed after the final part is durable. Zero values
// (absent fields) mean the legacy single-record form.
type walSnapshot struct {
	MaxSeq  int              `json:"maxSeq"`
	Records []history.Record `json:"records"`
	Events  []obs.Event      `json:"events,omitempty"`
	// Telemetry is the full sealed-rollup dump of the telemetry store at
	// compaction time (base64-encoded blocks); it rides the final part
	// alongside Events.
	Telemetry [][]byte `json:"telemetry,omitempty"`
	Part      int      `json:"part,omitempty"`
	Parts     int      `json:"parts,omitempty"`
}

// walSnapshotWire is walSnapshot's encode-side twin: records are
// pre-marshaled so chunking can budget bytes without marshaling twice.
type walSnapshotWire struct {
	MaxSeq    int               `json:"maxSeq"`
	Records   []json.RawMessage `json:"records"`
	Events    []obs.Event       `json:"events,omitempty"`
	Telemetry [][]byte          `json:"telemetry,omitempty"`
	Part      int               `json:"part,omitempty"`
	Parts     int               `json:"parts,omitempty"`
}

// snapshotChunkBytes is the target payload size of one snapshot chunk —
// comfortably under wal.MaxRecordBytes so framing and JSON overhead can
// never push a chunk past the write-side bound. Variable for tests.
var snapshotChunkBytes = 8 << 20

func openWAL(cfg Config) (Backend, error) {
	if cfg.CompactSegments == 0 {
		cfg.CompactSegments = 4
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = 15 * time.Second
	}
	if cfg.EventRetention <= 0 {
		cfg.EventRetention = 4096
	}
	l, err := wal.Open(cfg.DataDir, wal.Options{
		SegmentBytes:  cfg.SegmentBytes,
		FsyncInterval: cfg.FsyncInterval,
		NoSync:        cfg.NoSync,
	})
	if err != nil {
		return nil, fmt.Errorf("storage: opening wal %s: %w", cfg.DataDir, err)
	}
	w := &walBackend{
		cfg:         cfg,
		log:         l,
		ring:        newEventRing(cfg.EventRetention),
		stopCompact: make(chan struct{}),
		compactDone: make(chan struct{}),
	}
	w.bufPool.New = func() any { b := make([]byte, 0, 512); return &b }
	return w, nil
}

func (w *walBackend) Name() string { return "wal" }

// Recover replays the WAL — latest snapshot plus every live segment —
// into st. Torn tails are tolerated (only unacknowledged bytes are ever
// lost); records that appear both in a snapshot and in a surviving
// segment (the crash window between snapshot append and tail deletion)
// deduplicate by sequence number, so recovery is idempotent.
func (w *walBackend) Recover(st *history.Store) ([]obs.Event, error) {
	start := time.Now()
	recs := make(map[int]history.Record)
	maxSnapSeq := -1
	var events []obs.Event
	var telemetry [][]byte
	// applySnap folds one complete snapshot: it replaces the replayed
	// records with the snapshot's, keeping only newer records already
	// replayed (defensive — they can only exist if appends raced the
	// snapshot into earlier segments), and resets the event and
	// telemetry tails.
	applySnap := func(snap *walSnapshot) {
		kept := make(map[int]history.Record, len(snap.Records))
		for _, r := range snap.Records {
			kept[r.Seq] = r
		}
		for seq, r := range recs {
			if seq > snap.MaxSeq {
				kept[seq] = r
			}
		}
		recs = kept
		maxSnapSeq = snap.MaxSeq
		events = append(events[:0], snap.Events...)
		telemetry = append(telemetry[:0], snap.Telemetry...)
	}
	// pending assembles a chunked snapshot across consecutive parts; it
	// is applied only when complete, so a compaction that crashed mid-
	// chunk leaves the pre-fold records (still on disk) authoritative.
	var pending *walSnapshot
	_, err := wal.Replay(w.cfg.DataDir, func(_ uint64, typ byte, payload []byte) error {
		switch typ {
		case recHistory:
			var r history.Record
			if json.Unmarshal(payload, &r) != nil {
				w.errors.Add(1) // checksummed but undecodable: count, skip
				return nil
			}
			if r.Seq > maxSnapSeq {
				if _, dup := recs[r.Seq]; !dup {
					recs[r.Seq] = r
				}
			}
		case recEvent:
			var e obs.Event
			if json.Unmarshal(payload, &e) != nil {
				w.errors.Add(1)
				return nil
			}
			events = append(events, e)
		case recTelemetry:
			// Replay may reuse the payload buffer across records: copy.
			telemetry = append(telemetry, append([]byte(nil), payload...))
		case recSnapshot:
			var snap walSnapshot
			if json.Unmarshal(payload, &snap) != nil {
				w.errors.Add(1)
				pending = nil
				return nil
			}
			if snap.Parts <= 1 {
				pending = nil
				applySnap(&snap)
				return nil
			}
			// One part of a chunked snapshot: extend the pending run if
			// it is the expected next part, otherwise abandon the run
			// (the pre-fold records are still in the surviving segments).
			switch {
			case snap.Part == 1:
				pending = &snap
			case pending != nil && snap.Part == pending.Part+1 &&
				snap.Parts == pending.Parts && snap.MaxSeq == pending.MaxSeq:
				pending.Part = snap.Part
				pending.Records = append(pending.Records, snap.Records...)
				if len(snap.Events) > 0 {
					pending.Events = snap.Events
				}
			default:
				pending = nil
				w.errors.Add(1)
			}
			if pending != nil && pending.Part == pending.Parts {
				applySnap(pending)
				pending = nil
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("storage: replaying wal %s: %w", w.cfg.DataDir, err)
	}
	ordered := make([]history.Record, 0, len(recs))
	for _, r := range recs {
		ordered = append(ordered, r)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Seq < ordered[j].Seq })
	st.Reset(ordered)
	// Seed the retention ring so the next compaction snapshot carries the
	// recovered event tail forward instead of dropping it.
	for _, e := range events {
		w.ring.push(e)
	}
	w.mu.Lock()
	w.store = st
	w.recoveredTel = telemetry
	w.recovered = recoveryInfo{
		records:   len(ordered),
		events:    len(events),
		telemetry: len(telemetry),
		seconds:   time.Since(start).Seconds(),
	}
	w.mu.Unlock()
	mRecoveredRecords.Set(float64(len(ordered)))
	mRecoverySeconds.Set(w.recovered.seconds)
	if w.cfg.CompactSegments > 0 {
		w.mu.Lock()
		w.compactStarted = true
		w.mu.Unlock()
		go w.compactLoop()
	}
	return events, nil
}

// AppendRecord durably appends one history record: a buffered JSON
// encode plus a group-committed fsync shared with concurrent appends.
func (w *walBackend) AppendRecord(r history.Record) error {
	payload, err := json.Marshal(r)
	if err != nil {
		w.errors.Add(1)
		return err
	}
	if err := w.log.Append(recHistory, payload); err != nil {
		w.errors.Add(1)
		return err
	}
	w.records.Add(1)
	mRecords.Inc()
	return nil
}

// AppendEvent appends one telemetry event asynchronously: it rides the
// next group commit and is shed (counted) at the queue bound rather than
// stalling the publish hot path.
func (w *walBackend) AppendEvent(e obs.Event) error {
	bp := w.bufPool.Get().(*[]byte)
	buf := e.AppendJSONL((*bp)[:0])
	err := w.log.AppendAsync(recEvent, buf)
	*bp = buf
	w.bufPool.Put(bp)
	if err != nil {
		w.eventsDropped.Add(1)
		mEventsDropped.Inc()
		return err
	}
	w.ring.push(e)
	w.events.Add(1)
	mEvents.Inc()
	return nil
}

// AppendTelemetry appends one rollup block asynchronously, shedding
// (counted) at the queue bound like AppendEvent does.
func (w *walBackend) AppendTelemetry(block []byte) error {
	if err := w.log.AppendAsync(recTelemetry, block); err != nil {
		w.telemetryDropped.Add(1)
		mTelemetryDropped.Inc()
		return err
	}
	w.telemetry.Add(1)
	mTelemetry.Inc()
	return nil
}

// RecoveredTelemetry returns the rollup blocks the last Recover found.
func (w *walBackend) RecoveredTelemetry() [][]byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.recoveredTel
}

// SetTelemetrySource installs the compaction-time rollup dump hook.
func (w *walBackend) SetTelemetrySource(fn func() [][]byte) {
	w.mu.Lock()
	w.telSource = fn
	w.mu.Unlock()
}

// FlushEvents syncs the log; the events themselves were appended as they
// were published. When the configuration also names an events file
// (-events-out alongside -data-dir), the passed ring is additionally written
// there as JSONL — the flag is honored, not silently ignored.
func (w *walBackend) FlushEvents(events []obs.Event) error {
	if err := w.log.Sync(); err != nil {
		return err
	}
	if w.cfg.EventsPath == "" {
		return nil
	}
	return writeEventsFile(w.cfg.EventsPath, events)
}

// Saturated reports the WAL queue's admission state.
func (w *walBackend) Saturated() (bool, time.Duration) {
	return w.log.Saturated(), time.Second
}

// Compact folds all sealed segments into a snapshot — the full history
// plus the retained event tail, chunked into as many records as its size
// requires — then deletes them, bounding disk usage and recovery time.
// Crash-safe at every step: the folded segments are removed only after
// every chunk has appended durably, and until then replay deduplicates
// against (or, for an incomplete chunk run, discards) the snapshot.
// Concurrent invocations serialize.
func (w *walBackend) Compact() error {
	w.compactMu.Lock()
	defer w.compactMu.Unlock()
	w.mu.Lock()
	st := w.store
	w.mu.Unlock()
	if st == nil {
		return fmt.Errorf("storage: compact before recover")
	}
	sealedThrough, err := w.log.Rotate()
	if err != nil {
		return err
	}
	records := st.Query(history.Filter{})
	maxSeq := -1
	raw := make([]json.RawMessage, len(records))
	for i, r := range records {
		if r.Seq > maxSeq {
			maxSeq = r.Seq
		}
		if raw[i], err = json.Marshal(r); err != nil {
			return err
		}
	}
	// Chunk by byte budget so no snapshot record outgrows the WAL's
	// write-side bound; the event tail rides the final chunk.
	chunks := [][]json.RawMessage{nil}
	chunkBytes := 0
	for _, rm := range raw {
		last := len(chunks) - 1
		if len(chunks[last]) > 0 && chunkBytes+len(rm) > snapshotChunkBytes {
			chunks = append(chunks, nil)
			last++
			chunkBytes = 0
		}
		chunks[last] = append(chunks[last], rm)
		chunkBytes += len(rm) + 1
	}
	parts := len(chunks)
	for i, c := range chunks {
		snap := walSnapshotWire{MaxSeq: maxSeq, Records: c, Part: i + 1, Parts: parts}
		if parts == 1 {
			snap.Part, snap.Parts = 0, 0 // legacy single-record form
		}
		if i == parts-1 {
			snap.Events = w.ring.snapshot()
			w.mu.Lock()
			src := w.telSource
			w.mu.Unlock()
			if src != nil {
				// The rollup dump replaces every recTelemetry record in the
				// folded segments: replay applies the snapshot's blocks and
				// then any blocks appended after it.
				snap.Telemetry = src()
			}
		}
		payload, err := json.Marshal(snap)
		if err != nil {
			return err
		}
		if err := w.log.Append(recSnapshot, payload); err != nil {
			return err
		}
	}
	if err := w.log.RemoveThrough(sealedThrough); err != nil {
		return err
	}
	w.compactions.Add(1)
	w.lastCompact.Store(time.Now().Unix())
	mCompactions.Inc()
	return nil
}

// compactLoop is the background compactor: it folds once the sealed
// segment count crosses the configured threshold.
func (w *walBackend) compactLoop() {
	defer close(w.compactDone)
	ticker := time.NewTicker(w.cfg.CompactEvery)
	defer ticker.Stop()
	for {
		select {
		case <-w.stopCompact:
			return
		case <-ticker.C:
			if w.log.Stats().SealedSegments >= w.cfg.CompactSegments {
				if err := w.Compact(); err != nil {
					w.errors.Add(1)
				}
			}
		}
	}
}

func (w *walBackend) Stats() Stats {
	ls := w.log.Stats()
	w.mu.Lock()
	rec := w.recovered
	started := w.store != nil
	w.mu.Unlock()
	st := Stats{
		Backend:            "wal",
		Dir:                w.cfg.DataDir,
		Records:            w.records.Load(),
		Events:             w.events.Load(),
		Errors:             w.errors.Load(),
		EventsDropped:      w.eventsDropped.Load(),
		TelemetryBlocks:    w.telemetry.Load(),
		TelemetryDropped:   w.telemetryDropped.Load(),
		Segments:           ls.Segments,
		SealedSegments:     ls.SealedSegments,
		ActiveSegment:      ls.ActiveIndex,
		DiskBytes:          ls.DiskBytes,
		QueueDepth:         ls.QueueDepth,
		QueueCap:           ls.QueueCap,
		Saturated:          ls.Saturated,
		Fsyncs:             ls.Fsyncs,
		Compactions:        w.compactions.Load(),
		LastCompactionUnix: w.lastCompact.Load(),
	}
	if started {
		st.RecoveredRecords = rec.records
		st.RecoveredEvents = rec.events
		st.RecoveredTelemetry = rec.telemetry
		st.RecoverySeconds = rec.seconds
	}
	return st
}

// Close stops the compactor and flushes and closes the log. Idempotent
// and safe for concurrent callers; only the first call reports the
// close error.
func (w *walBackend) Close() error {
	var err error
	w.closeOnce.Do(func() {
		w.mu.Lock()
		started := w.compactStarted
		w.mu.Unlock()
		close(w.stopCompact)
		if started {
			<-w.compactDone
		}
		err = w.log.Close()
	})
	return err
}

// eventRing retains the most recent events for compaction snapshots.
type eventRing struct {
	mu  sync.Mutex
	buf []obs.Event
	n   uint64
}

func newEventRing(capacity int) *eventRing {
	return &eventRing{buf: make([]obs.Event, capacity)}
}

func (r *eventRing) push(e obs.Event) {
	r.mu.Lock()
	r.buf[r.n%uint64(len(r.buf))] = e
	r.n++
	r.mu.Unlock()
}

func (r *eventRing) snapshot() []obs.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	size := uint64(len(r.buf))
	first := uint64(0)
	if r.n > size {
		first = r.n - size
	}
	out := make([]obs.Event, 0, r.n-first)
	for i := first; i < r.n; i++ {
		out = append(out, r.buf[i%size])
	}
	return out
}
