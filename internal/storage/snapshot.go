package storage

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"seamlesstune/internal/history"
	"seamlesstune/internal/obs"
	"seamlesstune/internal/wal"
)

// snapshotBackend is the legacy persistence strategy: the whole history
// store rewritten as one JSON snapshot via temp-and-rename, coalescing
// bursts of appends into one save, plus a shutdown-time events.jsonl
// flush. The state file's bytes are identical to what the service wrote
// before the storage tier existed; the difference is durability — the
// temp file is fsynced before the rename and the parent directory after
// it, so a crash right after "save returned" can no longer lose or tear
// the snapshot.
type snapshotBackend struct {
	cfg Config

	records atomic.Int64
	errors  atomic.Int64

	mu    sync.Mutex
	store *history.Store

	// dirty coalesces persistence requests (capacity 1 — marking an
	// already-dirty store is a no-op); the persister goroutine saves.
	dirty       chan struct{}
	persistDone chan struct{}
	closeOnce   sync.Once
}

func newSnapshotBackend(cfg Config) *snapshotBackend {
	b := &snapshotBackend{
		cfg:         cfg,
		dirty:       make(chan struct{}, 1),
		persistDone: make(chan struct{}),
	}
	if cfg.StatePath != "" {
		go b.persistLoop()
	} else {
		close(b.persistDone)
	}
	return b
}

func (b *snapshotBackend) Name() string { return "snapshot" }

// Recover loads the snapshot file if it exists. Events are not
// recovered: the legacy contract flushes the ring at shutdown for
// offline analysis, not for replay.
func (b *snapshotBackend) Recover(st *history.Store) ([]obs.Event, error) {
	b.mu.Lock()
	b.store = st
	b.mu.Unlock()
	if b.cfg.StatePath == "" {
		return nil, nil
	}
	if _, err := os.Stat(b.cfg.StatePath); err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	if err := st.LoadFile(b.cfg.StatePath); err != nil {
		return nil, err
	}
	return nil, nil
}

// AppendRecord marks the store dirty; the persister goroutine rewrites
// the snapshot off the request path. The record itself is already in the
// store — this backend persists state, not a log.
func (b *snapshotBackend) AppendRecord(history.Record) error {
	b.records.Add(1)
	if b.cfg.StatePath == "" {
		return nil
	}
	select {
	case b.dirty <- struct{}{}:
	default: // already dirty; the pending save will cover this change
	}
	return nil
}

// AppendEvent is a no-op: the legacy contract persists events only via
// the shutdown flush.
func (b *snapshotBackend) AppendEvent(obs.Event) error { return nil }

// FlushEvents durably writes the retained event ring to EventsPath as
// JSONL via temp-fsync-rename.
func (b *snapshotBackend) FlushEvents(events []obs.Event) error {
	if b.cfg.EventsPath == "" {
		return nil
	}
	return writeEventsFile(b.cfg.EventsPath, events)
}

// writeEventsFile durably writes events to path as JSONL: temp file,
// fsync, rename, parent-directory fsync — a crash at any point leaves
// either the old file or the new one, both complete.
func writeEventsFile(path string, events []obs.Event) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = obs.WriteEventsJSONL(f, events)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return wal.SyncDir(filepath.Dir(path))
}

// AppendTelemetry discards: the legacy contract has no rollup history.
func (b *snapshotBackend) AppendTelemetry([]byte) error { return nil }

// RecoveredTelemetry is always empty for the snapshot backend.
func (b *snapshotBackend) RecoveredTelemetry() [][]byte { return nil }

// SetTelemetrySource is a no-op: nothing here compacts rollups.
func (b *snapshotBackend) SetTelemetrySource(func() [][]byte) {}

// Saturated never sheds: snapshot writes are already coalesced.
func (b *snapshotBackend) Saturated() (bool, time.Duration) { return false, 0 }

// Compact forces a synchronous snapshot save.
func (b *snapshotBackend) Compact() error {
	if b.cfg.StatePath == "" {
		return nil
	}
	return b.persist()
}

func (b *snapshotBackend) Stats() Stats {
	return Stats{
		Backend: "snapshot",
		Path:    b.cfg.StatePath,
		Records: b.records.Load(),
		Errors:  b.errors.Load(),
	}
}

// Close stops the persister and writes a final snapshot — a record may
// have marked the store dirty after the last coalesced save.
func (b *snapshotBackend) Close() error {
	var err error
	b.closeOnce.Do(func() {
		if b.cfg.StatePath == "" {
			return
		}
		close(b.dirty)
		<-b.persistDone
		err = b.persist()
	})
	return err
}

// persistLoop serializes saves off the request path. Bursts of completed
// jobs coalesce into one save instead of rewriting the file per tune.
func (b *snapshotBackend) persistLoop() {
	for range b.dirty {
		if err := b.persist(); err != nil {
			b.errors.Add(1)
		}
	}
	close(b.persistDone)
}

// persist writes the store to a temporary file, fsyncs it, renames it
// into place, and fsyncs the parent directory — a crash at any point
// leaves either the old snapshot or the new one, both complete.
func (b *snapshotBackend) persist() error {
	b.mu.Lock()
	st := b.store
	b.mu.Unlock()
	if st == nil {
		return nil
	}
	tmp := b.cfg.StatePath + ".tmp"
	if err := st.SaveFile(tmp); err != nil {
		return err
	}
	if err := os.Rename(tmp, b.cfg.StatePath); err != nil {
		return err
	}
	return wal.SyncDir(filepath.Dir(b.cfg.StatePath))
}

// memoryBackend persists nothing.
type memoryBackend struct{}

func (memoryBackend) Name() string                                { return "memory" }
func (memoryBackend) Recover(*history.Store) ([]obs.Event, error) { return nil, nil }
func (memoryBackend) AppendRecord(history.Record) error           { return nil }
func (memoryBackend) AppendEvent(obs.Event) error                 { return nil }
func (memoryBackend) FlushEvents([]obs.Event) error               { return nil }
func (memoryBackend) AppendTelemetry([]byte) error                { return nil }
func (memoryBackend) RecoveredTelemetry() [][]byte                { return nil }
func (memoryBackend) SetTelemetrySource(func() [][]byte)          {}
func (memoryBackend) Saturated() (bool, time.Duration)            { return false, 0 }
func (memoryBackend) Compact() error                              { return nil }
func (memoryBackend) Stats() Stats                                { return Stats{Backend: "memory"} }
func (memoryBackend) Close() error                                { return nil }
