package storage_test

import (
	"context"
	"reflect"
	"testing"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/core"
	"seamlesstune/internal/history"
	"seamlesstune/internal/storage"
	"seamlesstune/internal/workload"
)

// TestKillAndRestartEquivalence is the durability acceptance bar: a
// WAL-backed service killed mid-session (no graceful shutdown) and
// restarted recovers a history store whose replayed trajectories are
// DeepEqual to an uninterrupted run's — and tuning continued on the
// recovered store stays bit-identical too, because the determinism
// contract derives every session's randomness from stable keys, not
// from process lifetime.
func TestKillAndRestartEquivalence(t *testing.T) {
	ctx := context.Background()
	opts := func() []core.Option {
		return []core.Option{
			core.WithSeed(7),
			core.WithSparkSpace(confspace.SparkSubspace(8)),
			core.WithBudgets(5, 8),
		}
	}
	regA := core.Registration{Tenant: "acme", Workload: workload.Wordcount{}, InputBytes: 2 << 30}
	regB := core.Registration{Tenant: "beta", Workload: workload.Sort{}, InputBytes: 1 << 30}

	// The uninterrupted reference: both sessions in one process.
	ref, err := core.NewService(opts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.TunePipeline(ctx, regA); err != nil {
		t.Fatal(err)
	}
	midWant := ref.Store().Query(history.Filter{})
	if _, err := ref.TunePipeline(ctx, regB); err != nil {
		t.Fatal(err)
	}
	finalWant := ref.Store().Query(history.Filter{})

	// The WAL-backed run: session A, then a kill — the backend is
	// abandoned, never closed. Real fsyncs: every acknowledged append is
	// on disk.
	dir := t.TempDir()
	b1, err := storage.Open(storage.Config{Backend: "wal", DataDir: dir, CompactSegments: -1})
	if err != nil {
		t.Fatal(err)
	}
	svc1, err := core.NewService(append(opts(), core.WithStorage(b1))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc1.TunePipeline(ctx, regA); err != nil {
		t.Fatal(err)
	}
	// Crash here: no svc1/b1 shutdown. Restart against the same dir.
	b2, err := storage.Open(storage.Config{Backend: "wal", DataDir: dir, CompactSegments: -1})
	if err != nil {
		t.Fatal(err)
	}
	svc2, err := core.NewService(append(opts(), core.WithStorage(b2))...)
	if err != nil {
		t.Fatal(err)
	}
	got := svc2.Store().Query(history.Filter{})
	if !reflect.DeepEqual(got, midWant) {
		t.Fatalf("recovered store diverged from uninterrupted run: %d records, want %d", len(got), len(midWant))
	}
	if b2.Stats().RecoveredRecords != len(midWant) {
		t.Errorf("RecoveredRecords = %d, want %d", b2.Stats().RecoveredRecords, len(midWant))
	}

	// Tuning continues on the recovered store, identically.
	if _, err := svc2.TunePipeline(ctx, regB); err != nil {
		t.Fatal(err)
	}
	if got := svc2.Store().Query(history.Filter{}); !reflect.DeepEqual(got, finalWant) {
		t.Fatalf("post-recovery tuning diverged: %d records, want %d", len(got), len(finalWant))
	}
	b1.Close()
	if err := b2.Close(); err != nil {
		t.Fatal(err)
	}

	// And one more restart round-trips the combined history.
	b3, err := storage.Open(storage.Config{Backend: "wal", DataDir: dir, CompactSegments: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer b3.Close()
	st := &history.Store{}
	if _, err := b3.Recover(st); err != nil {
		t.Fatal(err)
	}
	if got := st.Query(history.Filter{}); !reflect.DeepEqual(got, finalWant) {
		t.Fatalf("final recovery diverged: %d records, want %d", len(got), len(finalWant))
	}
}
