// Package storage is the durable persistence tier behind the tuning
// service: a pluggable backend interface over the execution-history
// store and the telemetry event stream, with three implementations.
//
//   - "wal": a segmented write-ahead log (internal/wal). History records
//     and events append O(1) with group-committed fsyncs; a background
//     compactor folds cold segments into snapshot records, bounding disk
//     and recovery time; startup replays snapshot + live segments,
//     tolerating torn tails. This is the production backend.
//   - "snapshot": the legacy temp-and-rename whole-store JSON snapshot
//     (now with the fsyncs the original lacked), kept for equivalence —
//     its on-disk state file is byte-identical to what the service wrote
//     before the WAL tier existed.
//   - "memory": nothing persists; every call is a no-op.
//
// The determinism contract (stat.DeriveSeed, schedule-independent
// replay) makes recovery testable end to end: a store recovered from the
// WAL after a crash reproduces the uninterrupted run's trajectories bit
// for bit.
package storage

import (
	"fmt"
	"time"

	"seamlesstune/internal/history"
	"seamlesstune/internal/obs"
)

// Record types in the WAL framing (type 0 is the log's own no-op).
const (
	recHistory   byte = 1
	recEvent     byte = 2
	recSnapshot  byte = 3
	recTelemetry byte = 4
)

// Backend is one persistence strategy for the history store and the
// event stream. Implementations are safe for concurrent use.
type Backend interface {
	// Name identifies the backend ("wal", "snapshot", "memory").
	Name() string
	// Recover loads persisted state into st, replacing its contents, and
	// returns the persisted telemetry events that survived (oldest
	// first). It must be called once, before any append.
	Recover(st *history.Store) ([]obs.Event, error)
	// AppendRecord persists one history record. For the WAL backend the
	// call returns once the record's group commit has fsynced; for the
	// snapshot backend it schedules a coalesced asynchronous snapshot.
	AppendRecord(r history.Record) error
	// AppendEvent persists one telemetry event. Never blocks the hot
	// path: the WAL backend enqueues asynchronously and drops (counted)
	// at the queue bound; the snapshot backend retains events only via
	// FlushEvents at shutdown.
	AppendEvent(e obs.Event) error
	// FlushEvents is the shutdown hook: the caller passes the retained
	// event ring. The snapshot backend writes it as events.jsonl; the
	// WAL backend — whose events are already on disk — syncs, and also
	// writes the ring when an events path is configured alongside the
	// data directory.
	FlushEvents(events []obs.Event) error
	// AppendTelemetry persists one opaque telemetry rollup block (sealed
	// downsampled buckets from internal/telemetry). Like AppendEvent it
	// never blocks the hot path: the WAL backend enqueues asynchronously
	// and drops (counted) at the queue bound; the other backends discard.
	AppendTelemetry(block []byte) error
	// RecoveredTelemetry returns the rollup blocks that survived the last
	// Recover, oldest first. The slices are owned by the caller.
	RecoveredTelemetry() [][]byte
	// SetTelemetrySource installs the compaction hook that dumps the full
	// sealed-rollup state (telemetry.Store.PersistedState), so a
	// compacted WAL still reconstructs telemetry history. Nil removes it.
	SetTelemetrySource(fn func() [][]byte)
	// Saturated reports whether appends are backed up, and a suggested
	// client retry delay — the admission-control probe the job engine
	// sheds load on.
	Saturated() (bool, time.Duration)
	// Compact folds cold state (WAL: snapshot + drop sealed segments;
	// snapshot: force a synchronous save). Safe to call at any time.
	Compact() error
	// Stats summarizes the backend for /healthz and tunectl storage.
	Stats() Stats
	// Close flushes and releases the backend.
	Close() error
}

// Stats is a point-in-time summary of a backend.
type Stats struct {
	Backend string `json:"backend"`
	// Dir or Path locates the persisted state.
	Dir  string `json:"dir,omitempty"`
	Path string `json:"path,omitempty"`
	// Records and Events count appends accepted this process; Errors
	// appends that failed; EventsDropped events shed at the queue bound.
	Records       int64 `json:"records"`
	Events        int64 `json:"events"`
	Errors        int64 `json:"errors,omitempty"`
	EventsDropped int64 `json:"eventsDropped,omitempty"`
	// TelemetryBlocks counts rollup blocks appended this process;
	// TelemetryDropped blocks shed at the queue bound.
	TelemetryBlocks  int64 `json:"telemetryBlocks,omitempty"`
	TelemetryDropped int64 `json:"telemetryDropped,omitempty"`
	// WAL-backend geometry.
	Segments       int    `json:"segments,omitempty"`
	SealedSegments int    `json:"sealedSegments,omitempty"`
	ActiveSegment  uint64 `json:"activeSegment,omitempty"`
	DiskBytes      int64  `json:"diskBytes,omitempty"`
	QueueDepth     int    `json:"queueDepth,omitempty"`
	QueueCap       int    `json:"queueCap,omitempty"`
	Saturated      bool   `json:"saturated,omitempty"`
	Fsyncs         uint64 `json:"fsyncs,omitempty"`
	// Compactions counts completed folds; LastCompactionUnix the wall
	// clock of the most recent one (0 = never).
	Compactions        int64 `json:"compactions,omitempty"`
	LastCompactionUnix int64 `json:"lastCompactionUnix,omitempty"`
	// Recovery facts from the last Recover call.
	RecoveredRecords   int     `json:"recoveredRecords,omitempty"`
	RecoveredEvents    int     `json:"recoveredEvents,omitempty"`
	RecoveredTelemetry int     `json:"recoveredTelemetry,omitempty"`
	RecoverySeconds    float64 `json:"recoverySeconds,omitempty"`
}

// Config selects and parameterizes a backend.
type Config struct {
	// Backend is "wal", "snapshot", "memory", or "" for automatic
	// resolution: wal when DataDir is set, snapshot when StatePath or
	// EventsPath is, memory otherwise.
	Backend string
	// DataDir is the WAL directory (wal backend).
	DataDir string
	// StatePath is the snapshot backend's history file. EventsPath is
	// the shutdown event flush — written by the snapshot backend and,
	// when set alongside DataDir, by the wal backend too.
	StatePath  string
	EventsPath string
	// FsyncInterval bounds the WAL group-commit window (0 = 2ms).
	FsyncInterval time.Duration
	// SegmentBytes is the WAL segment roll threshold (0 = 8 MiB).
	SegmentBytes int64
	// CompactSegments is how many sealed segments trigger a background
	// compaction (0 = 4; negative disables automatic compaction).
	CompactSegments int
	// CompactEvery is the background compactor's poll interval
	// (0 = 15s).
	CompactEvery time.Duration
	// EventRetention bounds how many recent events a WAL compaction
	// snapshot retains (0 = 4096).
	EventRetention int
	// NoSync skips fsyncs (tests and benchmarks only).
	NoSync bool
}

// Resolve returns the effective backend name.
func (c Config) Resolve() string {
	if c.Backend != "" {
		return c.Backend
	}
	if c.DataDir != "" {
		return "wal"
	}
	if c.StatePath != "" || c.EventsPath != "" {
		return "snapshot"
	}
	return "memory"
}

// Open constructs the configured backend.
func Open(cfg Config) (Backend, error) {
	switch cfg.Resolve() {
	case "wal":
		if cfg.DataDir == "" {
			return nil, fmt.Errorf("storage: wal backend requires a data directory")
		}
		return openWAL(cfg)
	case "snapshot":
		if cfg.StatePath == "" && cfg.EventsPath == "" {
			return nil, fmt.Errorf("storage: snapshot backend requires a state or events path")
		}
		return newSnapshotBackend(cfg), nil
	case "memory":
		return memoryBackend{}, nil
	default:
		return nil, fmt.Errorf("storage: unknown backend %q (accepted: wal, snapshot, memory)", cfg.Backend)
	}
}

// Backends lists the accepted backend names.
func Backends() []string { return []string{"wal", "snapshot", "memory"} }
