package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/history"
	"seamlesstune/internal/obs"
)

func testRecord(i int) history.Record {
	return history.Record{
		Tenant:     "acme",
		Workload:   "wordcount",
		InputBytes: int64(i) << 20,
		Cluster:    "4x nimbus/h1.4xlarge",
		Config:     confspace.Config{"spark.executor.memory": float64(1024 * (1 + i%8))},
		RuntimeS:   100 + float64(i),
		CostUSD:    0.1 * float64(i),
		Metrics:    history.Metrics{Executors: 4, Stages: 3},
	}
}

func openTestWAL(t *testing.T, dir string) Backend {
	t.Helper()
	b, err := Open(Config{Backend: "wal", DataDir: dir, NoSync: true, CompactSegments: -1})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// appendThrough recovers st through b, hooks it, and appends n records,
// returning the store's contents.
func appendThrough(t *testing.T, b Backend, n int) []history.Record {
	t.Helper()
	st := &history.Store{}
	if _, err := b.Recover(st); err != nil {
		t.Fatal(err)
	}
	st.SetPersist(func(r history.Record) {
		if err := b.AppendRecord(r); err != nil {
			t.Errorf("AppendRecord: %v", err)
		}
	})
	for i := 0; i < n; i++ {
		st.Append(testRecord(i))
	}
	return st.Query(history.Filter{})
}

func TestResolve(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{}, "memory"},
		{Config{DataDir: "/x"}, "wal"},
		{Config{StatePath: "/x.json"}, "snapshot"},
		{Config{EventsPath: "/e.jsonl"}, "snapshot"},
		{Config{Backend: "memory", DataDir: "/x"}, "memory"},
	}
	for _, c := range cases {
		if got := c.cfg.Resolve(); got != c.want {
			t.Errorf("Resolve(%+v) = %q, want %q", c.cfg, got, c.want)
		}
	}
	if _, err := Open(Config{Backend: "bogus"}); err == nil {
		t.Error("unknown backend accepted")
	}
	if _, err := Open(Config{Backend: "wal"}); err == nil {
		t.Error("wal backend without data dir accepted")
	}
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b := openTestWAL(t, dir)
	want := appendThrough(t, b, 50)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b2 := openTestWAL(t, dir)
	defer b2.Close()
	st2 := &history.Store{}
	if _, err := b2.Recover(st2); err != nil {
		t.Fatal(err)
	}
	got := st2.Query(history.Filter{})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %d records != appended %d records", len(got), len(want))
	}
	// Sequence numbering continues where the crash left off.
	next := st2.Append(testRecord(99))
	if next.Seq != want[len(want)-1].Seq+1 {
		t.Errorf("post-recovery Seq = %d, want %d", next.Seq, want[len(want)-1].Seq+1)
	}
}

// TestWALCrashRecovery abandons the backend without Close — the crash —
// and verifies acknowledged appends survive: every record acked by the
// group commit is replayed bit for bit.
func TestWALCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	b, err := Open(Config{Backend: "wal", DataDir: dir, CompactSegments: -1}) // real fsyncs: acks mean durable
	if err != nil {
		t.Fatal(err)
	}
	want := appendThrough(t, b, 25)
	// No Close: simulate a crash. Acknowledged appends were fsynced.
	b2 := openTestWAL(t, dir)
	defer b2.Close()
	st2 := &history.Store{}
	if _, err := b2.Recover(st2); err != nil {
		t.Fatal(err)
	}
	if got := st2.Query(history.Filter{}); !reflect.DeepEqual(got, want) {
		t.Fatalf("crash recovery lost or altered records: got %d, want %d", len(got), len(want))
	}
	b.Close() // release the abandoned writer's goroutine
}

func TestWALEventsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b := openTestWAL(t, dir)
	st := &history.Store{}
	if _, err := b.Recover(st); err != nil {
		t.Fatal(err)
	}
	want := []obs.Event{
		{Seq: 1, TimeNS: 111, Type: obs.EventSessionStart, Session: "job-1", Tenant: "acme", Workload: "wordcount"},
		{Seq: 2, TimeNS: 222, Type: obs.EventTrial, Session: "job-1", Trial: 3, RuntimeS: 12.5, Objective: 12.5},
		{Seq: 3, TimeNS: 333, Type: obs.EventSessionEnd, Session: "job-1", Detail: "done"},
	}
	for _, e := range want {
		if err := b.AppendEvent(e); err != nil {
			t.Fatalf("AppendEvent: %v", err)
		}
	}
	if err := b.FlushEvents(nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2 := openTestWAL(t, dir)
	defer b2.Close()
	got, err := b2.Recover(&history.Store{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered events = %+v, want %+v", got, want)
	}
}

// TestWALCompaction folds segments into a snapshot record and verifies
// recovery equivalence before and after, plus disk reclamation.
func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	b, err := Open(Config{Backend: "wal", DataDir: dir, NoSync: true, CompactSegments: -1, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	st := &history.Store{}
	if _, err := b.Recover(st); err != nil {
		t.Fatal(err)
	}
	st.SetPersist(func(r history.Record) { b.AppendRecord(r) })
	for i := 0; i < 100; i++ {
		st.Append(testRecord(i))
	}
	for i := 0; i < 5; i++ {
		b.AppendEvent(obs.Event{Seq: uint64(i + 1), Type: obs.EventTrial, Trial: i + 1})
	}
	want := st.Query(history.Filter{})
	preSegments := b.Stats().Segments
	if preSegments < 3 {
		t.Fatalf("test needs rolled segments, have %d", preSegments)
	}
	if err := b.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	cs := b.Stats()
	if cs.Compactions != 1 || cs.LastCompactionUnix == 0 {
		t.Errorf("compaction stats = %+v", cs)
	}
	if cs.Segments >= preSegments {
		t.Errorf("compaction did not reclaim segments: %d -> %d", preSegments, cs.Segments)
	}
	// Appends after the fold land after the snapshot record.
	st.Append(testRecord(100))
	want = append(want, st.Query(history.Filter{})[len(want)])
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b2 := openTestWAL(t, dir)
	defer b2.Close()
	st2 := &history.Store{}
	events, err := b2.Recover(st2)
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Query(history.Filter{}); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-compaction recovery: got %d records, want %d", len(got), len(want))
	}
	if len(events) != 5 {
		t.Errorf("compaction snapshot retained %d events, want 5", len(events))
	}
	if b2.Stats().RecoveredRecords != len(want) {
		t.Errorf("RecoveredRecords = %d, want %d", b2.Stats().RecoveredRecords, len(want))
	}
}

// TestWALCompactionCrashWindow exercises the crash between the snapshot
// append and the tail deletion: both the snapshot and the pre-fold
// segments exist, and recovery must deduplicate rather than double.
func TestWALCompactionCrashWindow(t *testing.T) {
	dir := t.TempDir()
	b, err := Open(Config{Backend: "wal", DataDir: dir, NoSync: true, CompactSegments: -1})
	if err != nil {
		t.Fatal(err)
	}
	want := appendThrough(t, b, 20)
	// Rotate + snapshot, but crash before RemoveThrough: simulate by
	// copying the sealed segments aside, compacting, then restoring them.
	wb := b.(*walBackend)
	segs, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	saved := map[string][]byte{}
	for _, e := range segs {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		saved[e.Name()] = data
	}
	if err := wb.Compact(); err != nil {
		t.Fatal(err)
	}
	// Restore the deleted pre-compaction segments: the on-disk state now
	// holds every record twice (raw + folded into the snapshot).
	for name, data := range saved {
		path := filepath.Join(dir, name)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2 := openTestWAL(t, dir)
	defer b2.Close()
	st2 := &history.Store{}
	if _, err := b2.Recover(st2); err != nil {
		t.Fatal(err)
	}
	if got := st2.Query(history.Filter{}); !reflect.DeepEqual(got, want) {
		t.Fatalf("crash-window recovery: got %d records, want %d (no duplicates)", len(got), len(want))
	}
}

// TestSnapshotByteIdentity holds the snapshot backend to its compatibility
// contract: the state file it writes is byte-identical to the legacy
// Save output (the fsyncs change durability, not bytes).
func TestSnapshotByteIdentity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	b, err := Open(Config{Backend: "snapshot", StatePath: path})
	if err != nil {
		t.Fatal(err)
	}
	st := &history.Store{}
	if _, err := b.Recover(st); err != nil {
		t.Fatal(err)
	}
	st.SetPersist(func(r history.Record) { b.AppendRecord(r) })
	for i := 0; i < 10; i++ {
		st.Append(testRecord(i))
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var legacy bytes.Buffer
	if err := st.Save(&legacy); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, legacy.Bytes()) {
		t.Fatalf("snapshot backend state file diverged from legacy Save output:\n got %d bytes\nwant %d bytes", len(got), legacy.Len())
	}

	// And it loads back.
	b2, err := Open(Config{Backend: "snapshot", StatePath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	st2 := &history.Store{}
	if _, err := b2.Recover(st2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st2.Query(history.Filter{}), st.Query(history.Filter{})) {
		t.Fatal("snapshot reload diverged")
	}
}

func TestSnapshotFlushEventsDurable(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "events.jsonl")
	b, err := Open(Config{Backend: "snapshot", EventsPath: events})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recover(&history.Store{}); err != nil {
		t.Fatal(err)
	}
	if err := b.FlushEvents([]obs.Event{{Seq: 1, TimeNS: 1, Type: obs.EventTrial, Trial: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"type":"trial"`)) {
		t.Fatalf("flushed events = %q", data)
	}
	if _, err := os.Stat(events + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind after flush")
	}
}

func TestMemoryBackendNoops(t *testing.T) {
	b, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "memory" {
		t.Fatalf("Name = %q", b.Name())
	}
	if _, err := b.Recover(&history.Store{}); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendRecord(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendEvent(obs.Event{}); err != nil {
		t.Fatal(err)
	}
	if sat, _ := b.Saturated(); sat {
		t.Error("memory backend saturated")
	}
	if err := b.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALBackpressureSurface: Saturated reflects the log's queue and
// suggests a positive retry delay.
func TestWALBackpressureSurface(t *testing.T) {
	dir := t.TempDir()
	b := openTestWAL(t, dir)
	defer b.Close()
	sat, retry := b.Saturated()
	if sat {
		t.Error("fresh backend saturated")
	}
	if retry <= 0 || retry > time.Minute {
		t.Errorf("retry hint = %v", retry)
	}
}

// TestCompactBeforeRecoverRejected: compaction needs the recovered store.
func TestCompactBeforeRecoverRejected(t *testing.T) {
	b := openTestWAL(t, t.TempDir())
	defer b.Close()
	if err := b.Compact(); err == nil {
		t.Error("Compact before Recover accepted")
	}
}
