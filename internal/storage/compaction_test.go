package storage

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"seamlesstune/internal/history"
	"seamlesstune/internal/obs"
	"seamlesstune/internal/wal"
)

// countSnapshots replays dir and counts snapshot records.
func countSnapshots(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	_, err := wal.Replay(dir, func(_ uint64, typ byte, _ []byte) error {
		if typ == recSnapshot {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestCompactionChunksLargeSnapshot forces the compactor over its chunk
// budget and verifies the snapshot splits into multiple records that
// reassemble on recovery — the path that keeps compaction working (and
// safe) once the folded history outgrows one WAL record.
func TestCompactionChunksLargeSnapshot(t *testing.T) {
	old := snapshotChunkBytes
	snapshotChunkBytes = 256 // a few records per chunk
	defer func() { snapshotChunkBytes = old }()

	dir := t.TempDir()
	b := openTestWAL(t, dir)
	want := appendThrough(t, b, 40)
	b.AppendEvent(obs.Event{Seq: 1, Type: obs.EventTrial, Trial: 1})
	if err := b.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if n := countSnapshots(t, dir); n < 2 {
		t.Fatalf("snapshot written as %d record(s), want chunks", n)
	}

	b2 := openTestWAL(t, dir)
	defer b2.Close()
	st := &history.Store{}
	events, err := b2.Recover(st)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Query(history.Filter{}); !reflect.DeepEqual(got, want) {
		t.Fatalf("chunked snapshot recovery: got %d records, want %d", len(got), len(want))
	}
	if len(events) != 1 {
		t.Errorf("recovered %d events from the final chunk, want 1", len(events))
	}
}

// TestIncompleteSnapshotChunkRunDiscarded simulates a crash between
// chunk appends: replay must fall back to the raw records (still on
// disk — RemoveThrough only runs after the final chunk), not apply a
// partial fold that would drop everything past the last arrived chunk.
func TestIncompleteSnapshotChunkRunDiscarded(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	var want []history.Record
	for i := 0; i < 10; i++ {
		r := testRecord(i)
		r.Seq = i
		payload, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(recHistory, payload); err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	// Part 1 of 2 folds seq<=9 but carries only the first half; part 2
	// never arrived.
	part1, err := json.Marshal(walSnapshot{MaxSeq: 9, Records: want[:5], Part: 1, Parts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(recSnapshot, part1); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	b := openTestWAL(t, dir)
	defer b.Close()
	st := &history.Store{}
	if _, err := b.Recover(st); err != nil {
		t.Fatal(err)
	}
	if got := st.Query(history.Filter{}); !reflect.DeepEqual(got, want) {
		t.Fatalf("partial chunk run: recovered %d records, want all %d raw records", len(got), len(want))
	}
}

// TestCompactConcurrent runs overlapping Compact calls against live
// appends; serialization must keep every invocation safe and recovery
// complete. Run under -race.
func TestCompactConcurrent(t *testing.T) {
	dir := t.TempDir()
	b := openTestWAL(t, dir)
	st := &history.Store{}
	if _, err := b.Recover(st); err != nil {
		t.Fatal(err)
	}
	st.SetPersist(func(r history.Record) {
		if err := b.AppendRecord(r); err != nil {
			t.Errorf("AppendRecord: %v", err)
		}
	})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if err := b.Compact(); err != nil {
					t.Errorf("Compact: %v", err)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		st.Append(testRecord(i))
	}
	wg.Wait()
	want := st.Query(history.Filter{})
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b2 := openTestWAL(t, dir)
	defer b2.Close()
	st2 := &history.Store{}
	if _, err := b2.Recover(st2); err != nil {
		t.Fatal(err)
	}
	if got := st2.Query(history.Filter{}); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovery after concurrent compactions: got %d records, want %d", len(got), len(want))
	}
}

// TestWALCloseConcurrent: concurrent Close calls must coalesce, not
// double-close the compactor's stop channel and panic.
func TestWALCloseConcurrent(t *testing.T) {
	b, err := Open(Config{Backend: "wal", DataDir: t.TempDir(), NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recover(&history.Store{}); err != nil { // starts the compactor
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := b.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	wg.Wait()
}

// TestWALFlushEventsWritesEventsPath: with -events set alongside
// -data-dir, the wal backend writes the passed ring at shutdown instead
// of silently ignoring the flag.
func TestWALFlushEventsWritesEventsPath(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "events.jsonl")
	b, err := Open(Config{Backend: "wal", DataDir: filepath.Join(dir, "wal"), EventsPath: events, NoSync: true, CompactSegments: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recover(&history.Store{}); err != nil {
		t.Fatal(err)
	}
	if err := b.FlushEvents([]obs.Event{{Seq: 1, TimeNS: 1, Type: obs.EventTrial, Trial: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"type":"trial"`)) {
		t.Fatalf("flushed events = %q", data)
	}
}
