package tuner

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/learn"
)

// DAC implements Yu et al.'s datasize-aware configuration tuning, the
// system behind the paper's "30-89X with 41 parameters" citation. Unlike
// the direct genetic tuner, DAC spends its execution budget building a
// *performance model* — a forest trained on (configuration, input-size)
// samples, many of them at cheap reduced input sizes — and then runs the
// genetic search against the model, executing only a handful of validation
// runs at the full size. The paper's criticism (§II-B) is the model-build
// cost; DAC answers with hierarchical small-size sampling.

// SizedObjective executes a configuration at a chosen input size.
type SizedObjective func(cfg confspace.Config, sizeBytes int64) Measurement

// DACConfig tunes the DAC session.
type DACConfig struct {
	Space *confspace.Space
	// TargetSize is the production input size to optimize for.
	TargetSize int64
	// SampleFractions are the input-size fractions used for model
	// training (default 0.25, 0.5, 1.0 — the hierarchical sizes).
	SampleFractions []float64
	// TrainRuns is the number of model-training executions (default 30).
	TrainRuns int
	// ValidateRuns is the number of top model candidates executed at full
	// size for validation (default 5).
	ValidateRuns int
	// Generations of the genetic search against the model (default 30).
	Generations int
	// PopSize of the genetic search (default 40).
	PopSize int
}

func (c DACConfig) withDefaults() DACConfig {
	if len(c.SampleFractions) == 0 {
		c.SampleFractions = []float64{0.25, 0.5, 1.0}
	}
	if c.TrainRuns <= 0 {
		c.TrainRuns = 30
	}
	if c.ValidateRuns <= 0 {
		c.ValidateRuns = 5
	}
	if c.Generations <= 0 {
		c.Generations = 30
	}
	if c.PopSize <= 0 {
		c.PopSize = 40
	}
	return c
}

// DACResult reports a DAC session.
type DACResult struct {
	// Best is the best validated configuration and its full-size runtime.
	Best Trial
	// Found is false when every validation run failed.
	Found bool
	// TrainRuns and ValidateRuns count the executions actually spent.
	TrainRuns    int
	ValidateRuns int
	// TotalCost is the dollar bill of all executions.
	TotalCost float64
	// ModelMAPE is the model's error on its own validation executions —
	// the accuracy the paper says black-box models struggle with.
	ModelMAPE float64
}

// ErrDACConfig reports an unusable DAC configuration.
var ErrDACConfig = errors.New("tuner: invalid DAC configuration")

// RunDAC executes a full DAC session against the sized objective.
func RunDAC(cfg DACConfig, obj SizedObjective, rng *rand.Rand) (DACResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Space == nil || cfg.TargetSize <= 0 {
		return DACResult{}, fmt.Errorf("%w: need a space and a positive target size", ErrDACConfig)
	}

	var out DACResult
	// Phase 1: hierarchical sampling. Stratified configurations, cycled
	// over the size fractions (small sizes dominate, making training
	// cheaper than full-size search).
	var xs [][]float64
	var ys []float64
	samples := cfg.Space.LatinHypercube(rng, cfg.TrainRuns)
	for i, c := range samples {
		frac := cfg.SampleFractions[i%len(cfg.SampleFractions)]
		size := int64(float64(cfg.TargetSize) * frac)
		if size < 1 {
			size = 1
		}
		m := obj(c, size)
		out.TrainRuns++
		out.TotalCost += m.Cost
		y := m.Runtime
		if m.Failed {
			y = math.Max(4*y, 3600)
		}
		xs = append(xs, append(cfg.Space.Encode(c), math.Log(frac)))
		ys = append(ys, math.Log(math.Max(y, 1e-6)))
	}
	forest, err := learn.FitForest(learn.ForestConfig{Trees: 50}, xs, ys, rng)
	if err != nil {
		return DACResult{}, err
	}
	predict := func(c confspace.Config) float64 {
		return forest.Predict(append(cfg.Space.Encode(c), 0 /* log(1.0) */))
	}

	// Phase 2: genetic search against the model (no executions).
	pop := cfg.Space.LatinHypercube(rng, cfg.PopSize)
	pop = append(pop, cfg.Space.Default())
	for g := 0; g < cfg.Generations; g++ {
		sort.Slice(pop, func(i, j int) bool { return predict(pop[i]) < predict(pop[j]) })
		elite := len(pop) / 4
		if elite < 2 {
			elite = 2
		}
		next := make([]confspace.Config, 0, len(pop))
		next = append(next, pop[:elite]...)
		for len(next) < len(pop) {
			a := pop[rng.Intn(elite)]
			b := pop[rng.Intn(elite)]
			child := cfg.Space.Crossover(rng, a, b)
			if rng.Float64() < 0.9 {
				child = cfg.Space.Neighbor(rng, child, 0.1, 0.15)
			}
			next = append(next, child)
		}
		pop = next
	}
	sort.Slice(pop, func(i, j int) bool { return predict(pop[i]) < predict(pop[j]) })

	// Phase 3: validate the model's top candidates at full size.
	best := math.Inf(1)
	var mapeSum float64
	var mapeN int
	for i := 0; i < cfg.ValidateRuns && i < len(pop); i++ {
		c := pop[i]
		m := obj(c, cfg.TargetSize)
		out.ValidateRuns++
		out.TotalCost += m.Cost
		if m.Failed {
			continue
		}
		pred := math.Exp(predict(c))
		mapeSum += math.Abs(pred-m.Runtime) / m.Runtime
		mapeN++
		if m.Runtime < best {
			best = m.Runtime
			out.Best = Trial{Config: c.Clone(), Measurement: m, Objective: m.Runtime}
			out.Found = true
		}
	}
	if mapeN > 0 {
		out.ModelMAPE = mapeSum / float64(mapeN)
	}
	return out, nil
}
