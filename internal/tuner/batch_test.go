package tuner

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/stat"
)

// seededBowl makes bowl a SeededObjective: the deterministic surface
// plus seed-derived noise and a crash region, so batch sessions exercise
// penalization and per-candidate seed derivation.
func seededBowl(s *confspace.Space) SeededObjective {
	base := bowl(s)
	return func(cfg confspace.Config, seed int64) Measurement {
		m := base(cfg)
		rng := stat.NewRNG(seed)
		m.Runtime *= 1 + 0.05*rng.Float64()
		if cfg.Float("a") > 0.95 && cfg.Bool("e") {
			m.Failed = true
		}
		return m
	}
}

// sequentialReference replays the exact RunForContext loop over a
// SeededObjective — the ground truth RunBatch must reproduce.
func sequentialReference(t Tuner, obj SeededObjective, budget int, rng *rand.Rand, baseSeed int64) Result {
	res := Result{}
	best := math.Inf(1)
	worstSuccess := 0.0
	for i := 0; i < budget; i++ {
		cfg := t.Next(rng)
		m := obj(cfg, CandidateSeed(baseSeed, cfg))
		trial := Trial{Index: i, Config: cfg, Measurement: m}
		var v float64
		if !m.Failed {
			v = m.Runtime
		}
		trial.Objective = penalizeScore(m, v, worstSuccess)
		res.Trials = append(res.Trials, trial)
		res.TotalCost += m.Cost
		if !m.Failed {
			if v > worstSuccess {
				worstSuccess = v
			}
			if v < best {
				best = v
				res.Best = trial
				res.Found = true
			}
		}
		res.BestSoFar = append(res.BestSoFar, best)
		t.Observe(trial)
	}
	return res
}

func batchTuners(s *confspace.Space) map[string]func() Tuner {
	return map[string]func() Tuner{
		"random":     func() Tuner { return NewRandomSearch(s) },
		"latin":      func() Tuner { return NewLatinSearch(s, 0) },
		"genetic":    func() Tuner { return NewGenetic(s) },
		"bestconfig": func() Tuner { return NewBestConfig(s) },
	}
}

// RunBatch must reproduce the sequential trajectory exactly: same
// proposals, same measurements, same best-so-far curve — batching is a
// throughput change, not a semantic one.
func TestRunBatchMatchesSequential(t *testing.T) {
	s := benchSpace(t)
	obj := seededBowl(s)
	for name, mk := range batchTuners(s) {
		for _, seed := range []int64{1, 17} {
			want := sequentialReference(mk(), obj, 60, stat.NewRNG(seed), 99)
			got, err := RunBatch(context.Background(), mk(), obj, 60, stat.NewRNG(seed), BatchOptions{Workers: 4, Seed: 99})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !reflect.DeepEqual(got.Trials, want.Trials) {
				t.Fatalf("%s seed %d: batch trials diverge from sequential", name, seed)
			}
			if !reflect.DeepEqual(got.BestSoFar, want.BestSoFar) {
				t.Fatalf("%s seed %d: best-so-far curves diverge", name, seed)
			}
		}
	}
}

// Worker count must never change the result.
func TestRunBatchWorkerInvariance(t *testing.T) {
	s := benchSpace(t)
	obj := seededBowl(s)
	for name, mk := range batchTuners(s) {
		var ref Result
		for i, workers := range []int{1, 2, 8, 32} {
			got, err := RunBatch(context.Background(), mk(), obj, 50, stat.NewRNG(5), BatchOptions{Workers: workers, Seed: 7})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if i == 0 {
				ref = got
				continue
			}
			if !reflect.DeepEqual(got.Trials, ref.Trials) {
				t.Fatalf("%s: %d workers changed the trials", name, workers)
			}
		}
	}
}

// Repeated configurations must receive identical evaluation seeds
// (content-derived), and distinct configurations distinct ones.
func TestCandidateSeedContentDerived(t *testing.T) {
	s := benchSpace(t)
	cfg := s.Default()
	if CandidateSeed(1, cfg) != CandidateSeed(1, cfg.Clone()) {
		t.Fatal("equal configs derived different seeds")
	}
	other := cfg.Clone()
	other["a"] = cfg["a"] + 0.25
	if CandidateSeed(1, cfg) == CandidateSeed(1, other) {
		t.Fatal("different configs collided")
	}
	if CandidateSeed(1, cfg) == CandidateSeed(2, cfg) {
		t.Fatal("base seed ignored")
	}
}

// EvaluateBatch must preserve input order for any worker count.
func TestEvaluateBatchOrdering(t *testing.T) {
	s := benchSpace(t)
	rng := stat.NewRNG(3)
	cfgs := make([]confspace.Config, 40)
	for i := range cfgs {
		cfgs[i] = s.Random(rng)
	}
	obj := func(cfg confspace.Config, seed int64) Measurement {
		return Measurement{Runtime: float64(seed)}
	}
	want := EvaluateBatch(obj, cfgs, 11, 1)
	for _, w := range []int{0, 2, 7, 64} {
		got := EvaluateBatch(obj, cfgs, 11, w)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d reordered results", w)
		}
	}
}

// A plain Tuner without ProposeBatch still runs (batch-of-one).
func TestRunBatchPlainTunerFallback(t *testing.T) {
	s := benchSpace(t)
	obj := seededBowl(s)
	res, err := RunBatch(context.Background(), NewHillClimb(s), obj, 20, stat.NewRNG(2), BatchOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 20 || !res.Found {
		t.Fatalf("unexpected result: %d trials, found=%v", len(res.Trials), res.Found)
	}
}

func TestRunBatchBudgetAndCancel(t *testing.T) {
	s := benchSpace(t)
	obj := seededBowl(s)
	if _, err := RunBatch(context.Background(), NewRandomSearch(s), obj, 0, stat.NewRNG(1), BatchOptions{}); err != ErrNoBudget {
		t.Fatalf("want ErrNoBudget, got %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunBatch(ctx, NewRandomSearch(s), obj, 10, stat.NewRNG(1), BatchOptions{})
	if err == nil {
		t.Fatal("expected context error")
	}
	if len(res.Trials) != 0 {
		t.Fatalf("expected no trials after pre-cancelled context, got %d", len(res.Trials))
	}
}
