package tuner

import (
	"errors"
	"math"
	"testing"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/stat"
)

// sizedBowl scales the bowl objective linearly with size, with the
// optimum independent of size — a friendly case for DAC's small-size
// training.
func sizedBowl(s *confspace.Space) SizedObjective {
	base := bowl(s)
	return func(cfg confspace.Config, size int64) Measurement {
		m := base(cfg)
		scale := float64(size) / float64(1<<30)
		m.Runtime *= scale
		m.Cost = m.Runtime * 0.01
		return m
	}
}

func TestRunDACFindsGoodConfig(t *testing.T) {
	s := benchSpace(t)
	obj := sizedBowl(s)
	res, err := RunDAC(DACConfig{Space: s, TargetSize: 1 << 30, TrainRuns: 40, ValidateRuns: 5}, obj, stat.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("DAC found nothing")
	}
	if res.TrainRuns != 40 || res.ValidateRuns != 5 {
		t.Errorf("runs = %d/%d", res.TrainRuns, res.ValidateRuns)
	}
	// The default scores ~47; DAC should land near the optimum (~10).
	if res.Best.Runtime > 20 {
		t.Errorf("DAC best %.1f, want near 10", res.Best.Runtime)
	}
	if res.ModelMAPE < 0 || math.IsNaN(res.ModelMAPE) {
		t.Errorf("model MAPE = %v", res.ModelMAPE)
	}
	if res.TotalCost <= 0 {
		t.Error("cost not accounted")
	}
}

func TestRunDACTrainingIsCheaperThanFullSize(t *testing.T) {
	// Training samples run mostly at reduced sizes, so the training bill
	// must be well below TrainRuns full-size executions.
	s := benchSpace(t)
	var fullCost float64
	obj := func(cfg confspace.Config, size int64) Measurement {
		m := sizedBowl(s)(cfg, size)
		if size == 1<<30 {
			fullCost += m.Cost
		}
		return m
	}
	res, err := RunDAC(DACConfig{Space: s, TargetSize: 1 << 30, TrainRuns: 30, ValidateRuns: 3}, obj, stat.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("DAC found nothing")
	}
	// The training bill must stay below what the same number of full-size
	// runs would have cost: with fractions {.25, .5, 1} and cost linear in
	// size, training averages ~58% of full-size cost.
	fullEquivalent := fullCost / float64(res.ValidateRuns) * float64(res.TrainRuns)
	trainingCost := res.TotalCost - fullCost
	if trainingCost >= fullEquivalent*0.8 {
		t.Errorf("training bill $%.3f not clearly below %d full-size runs $%.3f",
			trainingCost, res.TrainRuns, fullEquivalent)
	}
}

func TestRunDACErrors(t *testing.T) {
	s := benchSpace(t)
	if _, err := RunDAC(DACConfig{}, sizedBowl(s), stat.NewRNG(1)); !errors.Is(err, ErrDACConfig) {
		t.Errorf("err = %v", err)
	}
	if _, err := RunDAC(DACConfig{Space: s}, sizedBowl(s), stat.NewRNG(1)); !errors.Is(err, ErrDACConfig) {
		t.Errorf("err = %v", err)
	}
}

func TestRunDACAllValidationsFail(t *testing.T) {
	s := benchSpace(t)
	obj := func(cfg confspace.Config, size int64) Measurement {
		if size == 1<<30 {
			return Measurement{Runtime: 1, Failed: true} // full size always crashes
		}
		return sizedBowl(s)(cfg, size)
	}
	res, err := RunDAC(DACConfig{Space: s, TargetSize: 1 << 30, TrainRuns: 12, ValidateRuns: 3}, obj, stat.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("Found with all validations failed")
	}
}
