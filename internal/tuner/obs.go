package tuner

import (
	"time"

	"seamlesstune/internal/gp"
	"seamlesstune/internal/obs"
)

// Tuner- and model-layer metrics. The gp_* families are fed through the
// timing hooks of internal/gp, installed here (the tuner package
// accompanies every GP use in the tuning service and the experiments),
// so the model substrate itself stays observability-free.
var (
	mSessions = obs.Default().CounterVec("tuner_sessions_total",
		"Tuning sessions started, by strategy.", "tuner")
	mTrials = obs.Default().CounterVec("tuner_trials_total",
		"Configuration evaluations, by strategy.", "tuner")
	mTrialSeconds = obs.Default().HistogramSketched("tuner_trial_seconds",
		"Wall time per evaluation: propose + execute + observe.",
		obs.ExpBuckets(1e-5, 4, 12))
	mAcqSeconds = obs.Default().HistogramSketched("tuner_acq_seconds",
		"Wall time of one BayesOpt acquisition: candidate pool, batched posterior, EI argmax.",
		obs.ExpBuckets(1e-6, 4, 12))
	mDecisions = obs.Default().CounterVec("tuner_decisions_total",
		"Explained EI-guided proposals (decision records), by surrogate backend.", "surrogate")
	mDecisionEI = obs.Default().HistogramSketched("tuner_decision_ei",
		"Chosen candidate's expected improvement (log-objective units) per decision record.",
		obs.ExpBuckets(1e-6, 4, 14))

	mGPFitSeconds = obs.Default().HistogramSketched("gp_fit_seconds",
		"Wall time of GP model fits (hyper-grid or additive sweeps included).",
		obs.ExpBuckets(1e-6, 4, 13))
	mGPPredictSeconds = obs.Default().HistogramSketched("gp_predict_seconds",
		"Wall time of GP posterior queries (single or batched).",
		obs.ExpBuckets(1e-7, 4, 13))
	mGPFitPoints = obs.Default().Histogram("gp_fit_points",
		"Training-set size at fit time.", obs.ExpBuckets(1, 2, 11))
)

func init() {
	gp.SetHooks(gp.Hooks{
		Fit: func(points int, d time.Duration) {
			mGPFitSeconds.Observe(d.Seconds())
			mGPFitPoints.Observe(float64(points))
		},
		Predict: func(_ int, d time.Duration) {
			mGPPredictSeconds.Observe(d.Seconds())
		},
	})
}

// acqTimed is implemented by tuners that time their acquisition step
// (BayesOpt); sessions attach the value to the per-trial span.
type acqTimed interface {
	lastAcqSeconds() float64
}
