package tuner

import (
	"math"
	"math/rand"

	"seamlesstune/internal/confspace"
)

// BestConfig implements Zhu et al.'s strategy: divide-and-diverge sampling
// (stratified coverage of the full space) followed by recursive
// bound-and-search, which repeatedly shrinks the numeric bounds around
// the best configuration found so far and re-samples inside the bounded
// subspace. If a round fails to improve, the search diverges again from
// the full space.
type BestConfig struct {
	Space *confspace.Space
	// RoundSamples is the number of samples per DDS round (default 32).
	RoundSamples int
	// Shrink is the subspace width multiplier per bound step (default 0.5).
	Shrink float64

	pending  []confspace.Config
	current  *confspace.Space
	frac     float64
	best     confspace.Config
	bestVal  float64
	roundTop float64 // best value seen in the current round
}

var _ Tuner = (*BestConfig)(nil)

// NewBestConfig returns a divide-and-diverge / bound-and-search tuner.
func NewBestConfig(space *confspace.Space) *BestConfig {
	return &BestConfig{Space: space, bestVal: math.Inf(1), roundTop: math.Inf(1), frac: 1}
}

// Name implements Tuner.
func (*BestConfig) Name() string { return "bestconfig" }

func (t *BestConfig) roundSamples() int {
	if t.RoundSamples > 0 {
		return t.RoundSamples
	}
	return 32
}

func (t *BestConfig) shrink() float64 {
	if t.Shrink > 0 && t.Shrink < 1 {
		return t.Shrink
	}
	return 0.5
}

// Next implements Tuner.
func (t *BestConfig) Next(rng *rand.Rand) confspace.Config {
	if len(t.pending) == 0 {
		t.nextRound(rng)
	}
	cfg := t.pending[0]
	t.pending = t.pending[1:]
	return cfg
}

func (t *BestConfig) nextRound(rng *rand.Rand) {
	space := t.current
	if space == nil {
		space = t.Space
	}
	if t.best != nil {
		if t.roundTop <= t.bestVal {
			// The last bounded round improved (or matched): bound tighter
			// around the new best.
			t.frac *= t.shrink()
		} else {
			// No improvement: diverge back to the full space.
			t.frac = 1
		}
		if t.frac < 0.02 {
			t.frac = 1 // fully converged locally; diverge
		}
		if t.frac < 1 {
			space = t.Space.SubspaceAround(t.best, t.frac)
		} else {
			space = t.Space
		}
	}
	t.current = space
	t.roundTop = math.Inf(1)
	t.pending = space.DivideAndDiverge(rng, t.roundSamples(), 1)
}

// Observe implements Tuner.
func (t *BestConfig) Observe(tr Trial) {
	if tr.Objective < t.roundTop {
		t.roundTop = tr.Objective
	}
	if tr.Objective < t.bestVal {
		t.bestVal = tr.Objective
		t.best = tr.Config.Clone()
	}
}
