package tuner_test

import (
	"fmt"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/stat"
	"seamlesstune/internal/tuner"
)

// ExampleRun tunes a toy two-knob objective with Bayesian optimization.
func ExampleRun() {
	space := confspace.MustSpace(
		confspace.IntParam("executors", 1, 16, 2),
		confspace.FloatParam("memFraction", 0.2, 0.9, 0.6),
	)
	// A synthetic runtime: more executors help, the memory sweet spot is
	// around 0.7.
	objective := func(cfg confspace.Config) tuner.Measurement {
		e := float64(cfg.Int("executors"))
		m := cfg.Float("memFraction")
		rt := 100/e + 50*(m-0.7)*(m-0.7)
		return tuner.Measurement{Runtime: rt, Cost: rt * 0.01}
	}

	res, err := tuner.Run(tuner.NewBayesOpt(space), objective, 25, stat.NewRNG(1))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("found=%v executors=%d within25=%v\n",
		res.Found, res.Best.Config.Int("executors"), res.Best.Runtime < 9)
	// Output:
	// found=true executors=16 within25=true
}

// ExampleRunFor optimizes dollar cost instead of runtime.
func ExampleRunFor() {
	space := confspace.MustSpace(confspace.IntParam("nodes", 1, 8, 2))
	// Runtime improves with nodes, but the fixed per-run overhead makes
	// big clusters cost more in node-seconds.
	objective := func(cfg confspace.Config) tuner.Measurement {
		n := float64(cfg.Int("nodes"))
		rt := 120/n + 10
		return tuner.Measurement{Runtime: rt, Cost: rt * n * 0.01}
	}
	// A Latin-hypercube design covers all eight node counts in eight runs.
	fast, _ := tuner.RunFor(tuner.NewLatinSearch(space, 8), objective, 8, stat.NewRNG(2), tuner.MinimizeRuntime)
	cheap, _ := tuner.RunFor(tuner.NewLatinSearch(space, 8), objective, 8, stat.NewRNG(2), tuner.MinimizeCost)
	fmt.Printf("fastest picks more nodes than cheapest: %v (cheapest uses %d)\n",
		fast.Best.Config.Int("nodes") > cheap.Best.Config.Int("nodes"),
		cheap.Best.Config.Int("nodes"))
	// Output:
	// fastest picks more nodes than cheapest: true (cheapest uses 1)
}
