package tuner

import (
	"math"
	"strconv"
	"strings"

	"seamlesstune/internal/gp"
)

// DecisionTopK is how many leading candidates a DecisionRecord carries.
// Enough to see whether the acquisition surface is peaked or flat,
// small enough to render on one event line.
const DecisionTopK = 5

// CandidateScore is one acquisition candidate's view of the posterior:
// its EI rank, the predicted log-objective (mean ± std), and expected
// improvement decomposed into the exploitation and exploration terms
// (Exploit + Explore == EI exactly; see gp.ExpectedImprovementParts).
type CandidateScore struct {
	// Rank is the 1-based EI rank within the scored pool.
	Rank int
	// Index is the candidate's position in the acquisition pool — the
	// order candidates were drawn, which is deterministic per seed.
	Index   int
	Mean    float64
	Std     float64
	EI      float64
	Exploit float64
	Explore float64
}

// DecisionRecord explains one modelled acquisition step: which
// candidates the expected-improvement argmax favored and why. The tuner
// emits one per EI-guided proposal (init-phase and degenerate random
// proposals carry no model opinion and record nothing).
//
// Records are delivered through DecisionHook synchronously on the
// session goroutine. TopK aliases a buffer the tuner reuses on the next
// Next call — hooks must copy it if they keep it.
type DecisionRecord struct {
	// Observations is the training-set size behind the posterior.
	Observations int
	// Candidates is the size of the scored acquisition pool.
	Candidates int
	// Surrogate names the active posterior backend ("gp", "rffgp", ...).
	Surrogate string
	// Incumbent is the best observed model target (log-objective) the
	// improvement is measured against.
	Incumbent float64
	// AcqSeconds is the wall time of this acquisition step.
	AcqSeconds float64
	// Chosen is the proposed candidate — TopK[0], since the argmax and
	// the top-k selection break ties identically (lowest index wins).
	Chosen CandidateScore
	// TopK holds the DecisionTopK best candidates by EI, rank order.
	TopK []CandidateScore
}

// DecisionHook observes DecisionRecords. A nil hook costs one branch per
// proposal and nothing else: record assembly is skipped entirely, so
// trajectories are bit-identical with or without a hook installed — the
// hook path never touches the session RNG.
type DecisionHook func(DecisionRecord)

// DecisionRecorder is implemented by tuners that can explain their
// proposals. Telemetry layers type-assert against it so plain tuners
// (random, genetic) opt out implicitly.
type DecisionRecorder interface {
	SetDecisionHook(DecisionHook)
}

// SetDecisionHook implements DecisionRecorder.
func (t *BayesOpt) SetDecisionHook(h DecisionHook) { t.DecisionHook = h }

// SetDecisionHook implements DecisionRecorder: the hook survives inner
// rebuilds on subspace changes.
func (t *PrunedBayesOpt) SetDecisionHook(h DecisionHook) {
	t.decisionHook = h
	if t.inner != nil {
		t.inner.DecisionHook = h
	}
}

// ModelTarget maps a raw objective to the surrogate's training target —
// log-objective with the same floor absorb applies. Diagnostics use it
// to score predictions in the space the model actually works in.
func ModelTarget(objective float64) float64 {
	return math.Log(math.Max(objective, 1e-6))
}

// recordDecision assembles the decision record for the proposal at
// bestIdx and delivers it to the hook. Only called with a non-nil hook;
// everything it touches is scratch reused across calls, so the steady
// state allocates nothing.
func (t *BayesOpt) recordDecision(means, stds, eis []float64, best float64, bestIdx int) {
	// Partial selection of the top k by EI: insertion into a fixed-size
	// array, strict > so the lowest index wins ties — the same tie policy
	// as the argmax, which guarantees topBuf[0] is the chosen candidate.
	k := DecisionTopK
	if k > len(eis) {
		k = len(eis)
	}
	top := t.topBuf[:0]
	for i, ei := range eis {
		pos := len(top)
		for pos > 0 && ei > top[pos-1].EI {
			pos--
		}
		if pos >= k {
			continue
		}
		if len(top) < k {
			top = append(top, CandidateScore{})
		}
		copy(top[pos+1:], top[pos:])
		top[pos] = CandidateScore{Index: i, EI: ei}
	}
	for r := range top {
		i := top[r].Index
		exploit, explore := gp.ExpectedImprovementParts(means[i], stds[i], best)
		top[r].Rank = r + 1
		top[r].Mean = means[i]
		top[r].Std = stds[i]
		top[r].Exploit = exploit
		top[r].Explore = explore
	}
	t.topBuf = top

	rec := DecisionRecord{
		Observations: len(t.xs),
		Candidates:   len(eis),
		Surrogate:    t.model.Name(),
		Incumbent:    best,
		AcqSeconds:   t.lastAcqSec,
		Chosen:       top[0],
		TopK:         top,
	}
	if rec.Chosen.Index != bestIdx {
		// Unreachable while the tie policies match; keep the proposal
		// truthful if they ever drift.
		rec.Chosen = CandidateScore{Index: bestIdx, Mean: means[bestIdx], Std: stds[bestIdx], EI: eis[bestIdx]}
		rec.Chosen.Exploit, rec.Chosen.Explore = gp.ExpectedImprovementParts(means[bestIdx], stds[bestIdx], best)
	}
	mDecisions.With(rec.Surrogate).Inc()
	mDecisionEI.Observe(rec.Chosen.EI)
	t.DecisionHook(rec)
}

// TopKString renders the leading candidates as
// "rank:ei(exploit+explore)" pairs, comma-separated — the compact wire
// form carried on decide events.
func (r DecisionRecord) TopKString() string {
	var b strings.Builder
	for i, c := range r.TopK {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c.Rank))
		b.WriteByte(':')
		b.WriteString(strconv.FormatFloat(c.EI, 'g', 4, 64))
		b.WriteByte('(')
		b.WriteString(strconv.FormatFloat(c.Exploit, 'g', 3, 64))
		b.WriteByte('+')
		b.WriteString(strconv.FormatFloat(c.Explore, 'g', 3, 64))
		b.WriteByte(')')
	}
	return b.String()
}
