package tuner

import (
	"context"
	"errors"
	"math"
	"testing"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/stat"
)

// benchSpace is a 6-parameter space with one categorical and one boolean.
func benchSpace(t testing.TB) *confspace.Space {
	t.Helper()
	s, err := confspace.NewSpace(
		confspace.FloatParam("a", 0, 1, 0.1),
		confspace.FloatParam("b", 0, 1, 0.9),
		confspace.IntParam("c", 1, 64, 4),
		confspace.LogIntParam("d", 8, 1024, 16),
		confspace.BoolParam("e", false),
		confspace.CatParam("f", 0, "x", "y", "z"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// bowl is a smooth multi-modal objective with optimum near a=0.7, b=0.3,
// c=32, d=256, e=true, f=z. Minimum value ~10.
func bowl(s *confspace.Space) Objective {
	return func(cfg confspace.Config) Measurement {
		a, b := cfg.Float("a"), cfg.Float("b")
		c := float64(cfg.Int("c"))
		d := float64(cfg.Int("d"))
		v := 10.0
		v += 40 * (a - 0.7) * (a - 0.7)
		v += 40 * (b - 0.3) * (b - 0.3)
		v += 20 * math.Abs(math.Log2(c/32)) / 5
		v += 15 * math.Abs(math.Log2(d/256)) / 7
		if !cfg.Bool("e") {
			v += 5
		}
		if s.ChoiceValue(cfg, "f") != "z" {
			v += 3
		}
		return Measurement{Runtime: v, Cost: v * 0.01}
	}
}

func allTuners(s *confspace.Space) []Tuner {
	return []Tuner{
		NewRandomSearch(s),
		NewLatinSearch(s, 0),
		NewHillClimb(s),
		NewBayesOpt(s),
		NewGenetic(s),
		NewBestConfig(s),
		NewTreeSearch(s),
		NewQLearn(s),
	}
}

func TestAllTunersProposeValidConfigs(t *testing.T) {
	s := benchSpace(t)
	obj := bowl(s)
	for _, tn := range allTuners(s) {
		t.Run(tn.Name(), func(t *testing.T) {
			rng := stat.NewRNG(1)
			for i := 0; i < 40; i++ {
				cfg := tn.Next(rng)
				if err := s.Validate(cfg); err != nil {
					t.Fatalf("step %d: invalid config: %v", i, err)
				}
				m := obj(cfg)
				tn.Observe(Trial{Index: i, Config: cfg, Measurement: m, Objective: m.Runtime})
			}
		})
	}
}

func TestRunSessionMechanics(t *testing.T) {
	s := benchSpace(t)
	rng := stat.NewRNG(2)
	res, err := Run(NewRandomSearch(s), bowl(s), 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 30 || len(res.BestSoFar) != 30 {
		t.Fatalf("trials = %d, trajectory = %d", len(res.Trials), len(res.BestSoFar))
	}
	if !res.Found {
		t.Fatal("no successful run found")
	}
	// Trajectory is monotone non-increasing.
	for i := 1; i < len(res.BestSoFar); i++ {
		if res.BestSoFar[i] > res.BestSoFar[i-1] {
			t.Fatalf("trajectory increased at %d", i)
		}
	}
	if res.Best.Runtime != res.BestSoFar[len(res.BestSoFar)-1] {
		t.Error("Best does not match final trajectory value")
	}
	if res.TotalCost <= 0 {
		t.Error("TotalCost not accumulated")
	}
}

func TestRunContextCancellation(t *testing.T) {
	s := benchSpace(t)
	ctx, cancel := context.WithCancel(context.Background())
	evals := 0
	obj := func(cfg confspace.Config) Measurement {
		evals++
		if evals == 5 {
			cancel()
		}
		return bowl(s)(cfg)
	}
	res, err := RunContext(ctx, NewRandomSearch(s), obj, 30, stat.NewRNG(3))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if evals != 5 {
		t.Errorf("evaluations after cancel = %d, want 5", evals)
	}
	// The partial result reflects the completed trials.
	if len(res.Trials) != 5 || len(res.BestSoFar) != 5 {
		t.Errorf("partial result has %d trials, %d trajectory points", len(res.Trials), len(res.BestSoFar))
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	s := benchSpace(t)
	a, err := Run(NewRandomSearch(s), bowl(s), 20, stat.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), NewRandomSearch(s), bowl(s), 20, stat.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Runtime != b.Best.Runtime || len(a.Trials) != len(b.Trials) {
		t.Errorf("Run and RunContext diverged: %v vs %v", a.Best, b.Best)
	}
}

func TestRunRejectsZeroBudget(t *testing.T) {
	s := benchSpace(t)
	if _, err := Run(NewRandomSearch(s), bowl(s), 0, stat.NewRNG(1)); !errors.Is(err, ErrNoBudget) {
		t.Errorf("err = %v", err)
	}
}

func TestRunPenalizesFailures(t *testing.T) {
	s := benchSpace(t)
	// Configs with a > 0.5 crash.
	obj := func(cfg confspace.Config) Measurement {
		if cfg.Float("a") > 0.5 {
			return Measurement{Runtime: 30, Failed: true}
		}
		return Measurement{Runtime: 100 - 50*cfg.Float("a")}
	}
	rng := stat.NewRNG(3)
	res, err := Run(NewRandomSearch(s), obj, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Trials {
		if tr.Failed && tr.Objective < 3600 {
			t.Fatalf("failed trial objective %v not penalized", tr.Objective)
		}
	}
	if res.Best.Failed {
		t.Error("best trial is a failed run")
	}
	if res.Best.Config.Float("a") > 0.5 {
		t.Error("best config is in the crash region")
	}
}

func TestRunAllFailures(t *testing.T) {
	s := benchSpace(t)
	obj := func(confspace.Config) Measurement { return Measurement{Runtime: 1, Failed: true} }
	res, err := Run(NewRandomSearch(s), obj, 10, stat.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("Found = true with all failures")
	}
	if !math.IsInf(res.BestSoFar[9], 1) {
		t.Error("trajectory should stay +Inf")
	}
}

func TestExecutionsToReach(t *testing.T) {
	r := Result{BestSoFar: []float64{math.Inf(1), 50, 30, 30, 10}}
	if got := r.ExecutionsToReach(35); got != 3 {
		t.Errorf("ExecutionsToReach(35) = %d, want 3", got)
	}
	if got := r.ExecutionsToReach(5); got != -1 {
		t.Errorf("ExecutionsToReach(5) = %d, want -1", got)
	}
}

// runTuner runs a tuner on the bowl and returns the best runtime found.
func runTuner(t *testing.T, tn Tuner, s *confspace.Space, budget int, seed int64) float64 {
	t.Helper()
	res, err := Run(tn, bowl(s), budget, stat.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("%s found nothing", tn.Name())
	}
	return res.Best.Runtime
}

func TestModelBasedTunersBeatRandomOnAverage(t *testing.T) {
	s := benchSpace(t)
	const budget = 60
	seeds := []int64{1, 2, 3, 4, 5}
	mean := func(f func(seed int64) float64) float64 {
		sum := 0.0
		for _, sd := range seeds {
			sum += f(sd)
		}
		return sum / float64(len(seeds))
	}
	randomMean := mean(func(sd int64) float64 { return runTuner(t, NewRandomSearch(s), s, budget, sd) })
	boMean := mean(func(sd int64) float64 { return runTuner(t, NewBayesOpt(s), s, budget, sd) })
	bcMean := mean(func(sd int64) float64 { return runTuner(t, NewBestConfig(s), s, budget, sd) })
	if boMean >= randomMean {
		t.Errorf("bayesopt mean %v not below random mean %v", boMean, randomMean)
	}
	if bcMean >= randomMean*1.05 {
		t.Errorf("bestconfig mean %v not competitive with random mean %v", bcMean, randomMean)
	}
}

func TestAllTunersImproveOverDefault(t *testing.T) {
	s := benchSpace(t)
	defVal := bowl(s)(s.Default()).Runtime
	for _, tn := range allTuners(s) {
		t.Run(tn.Name(), func(t *testing.T) {
			best := runTuner(t, tn, s, 80, 7)
			if best >= defVal {
				t.Errorf("%s best %v did not improve on default %v", tn.Name(), best, defVal)
			}
		})
	}
}

func TestBayesOptWarmStart(t *testing.T) {
	s := benchSpace(t)
	obj := bowl(s)
	// Build warm-start trials near the optimum.
	var warm []Trial
	rng := stat.NewRNG(8)
	for i := 0; i < 15; i++ {
		cfg := s.Default()
		cfg["a"] = 0.7 + 0.05*rng.NormFloat64()
		cfg["b"] = 0.3 + 0.05*rng.NormFloat64()
		cfg = s.Clamp(cfg)
		m := obj(cfg)
		warm = append(warm, Trial{Config: cfg, Measurement: m, Objective: m.Runtime})
	}
	seeds := []int64{11, 12, 13}
	meanBest := func(mk func() *BayesOpt) float64 {
		sum := 0.0
		for _, sd := range seeds {
			res, err := Run(mk(), obj, 12, stat.NewRNG(sd))
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Best.Runtime
		}
		return sum / float64(len(seeds))
	}
	cold := meanBest(func() *BayesOpt { return NewBayesOpt(s) })
	warmed := meanBest(func() *BayesOpt {
		b := NewBayesOpt(s)
		b.WarmStart = warm
		b.InitSamples = 1 // warm observations replace most of the init design
		return b
	})
	if warmed >= cold {
		t.Errorf("warm-start mean %v not below cold-start mean %v", warmed, cold)
	}
}

func TestGeneticGenerations(t *testing.T) {
	s := benchSpace(t)
	g := NewGenetic(s)
	g.PopSize = 8
	if _, err := Run(g, bowl(s), 30, stat.NewRNG(9)); err != nil {
		t.Fatal(err)
	}
	if g.Generation() < 2 {
		t.Errorf("generations = %d, want >= 2 after 30 evals of pop 8", g.Generation())
	}
}

func TestHillClimbRestartsAfterPatience(t *testing.T) {
	s := benchSpace(t)
	hc := NewHillClimb(s)
	hc.Patience = 3
	rng := stat.NewRNG(10)
	// Feed constant observations: never improves after the first, so
	// restarts must kick in without panicking.
	for i := 0; i < 20; i++ {
		cfg := hc.Next(rng)
		if err := s.Validate(cfg); err != nil {
			t.Fatal(err)
		}
		hc.Observe(Trial{Index: i, Config: cfg, Objective: 100})
	}
}

func TestBayesOptModelPredict(t *testing.T) {
	s := benchSpace(t)
	b := NewBayesOpt(s)
	if _, _, ok := b.ModelPredict(s.Default()); ok {
		t.Error("ModelPredict ok before any data")
	}
	if _, err := Run(b, bowl(s), 20, stat.NewRNG(11)); err != nil {
		t.Fatal(err)
	}
	mean, std, ok := b.ModelPredict(s.Default())
	if !ok || math.IsNaN(mean) || std < 0 {
		t.Errorf("ModelPredict = (%v, %v, %v)", mean, std, ok)
	}
}

func TestErnestModel(t *testing.T) {
	// Ground truth: 10 + 80·s/m + 2·log(m) + 0.5·m; optimum machine count
	// balances parallelism against per-machine overhead.
	truth := func(m, s float64) float64 {
		return 10 + 80*s/m + 2*math.Log(m+1) + 0.5*m
	}
	var samples []ErnestSample
	for _, m := range []float64{1, 2, 4, 8} {
		for _, s := range []float64{0.125, 0.25, 0.5} {
			samples = append(samples, ErnestSample{Machines: m, Scale: s, Runtime: truth(m, s)})
		}
	}
	model, err := FitErnest(samples)
	if err != nil {
		t.Fatal(err)
	}
	// Extrapolate to full scale.
	for _, m := range []float64{4, 8, 16} {
		pred := model.Predict(m, 1)
		want := truth(m, 1)
		if math.Abs(pred-want)/want > 0.25 {
			t.Errorf("Predict(%v, 1) = %v, want ~%v", m, pred, want)
		}
	}
	best, _ := model.BestMachines(1, 32)
	trueBest, trueT := 1, math.Inf(1)
	for n := 1; n <= 32; n++ {
		if v := truth(float64(n), 1); v < trueT {
			trueBest, trueT = n, v
		}
	}
	if best < trueBest/2 || best > trueBest*2 {
		t.Errorf("BestMachines = %d, truth = %d", best, trueBest)
	}
	for _, w := range model.Weights() {
		if w < 0 {
			t.Errorf("negative weight %v", w)
		}
	}
}

func TestErnestBudgetConstraint(t *testing.T) {
	samples := []ErnestSample{
		{1, 0.25, 100}, {2, 0.25, 60}, {4, 0.5, 70}, {8, 0.5, 50}, {8, 1, 80},
	}
	model, err := FitErnest(samples)
	if err != nil {
		t.Fatal(err)
	}
	n, rt, ok := model.BestMachinesUnderBudget(1, 16, 1.0, 1000)
	if !ok || n < 1 || rt <= 0 {
		t.Errorf("unconstrained-ish budget: (%d, %v, %v)", n, rt, ok)
	}
	// Impossible budget.
	if _, _, ok := model.BestMachinesUnderBudget(1, 16, 1000, 0.0001); ok {
		t.Error("impossible budget accepted")
	}
}

func TestErnestTooFewSamples(t *testing.T) {
	if _, err := FitErnest([]ErnestSample{{1, 1, 1}}); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("err = %v", err)
	}
}

func TestSessionDeterminism(t *testing.T) {
	s := benchSpace(t)
	for _, mk := range []func() Tuner{
		func() Tuner { return NewBayesOpt(s) },
		func() Tuner { return NewGenetic(s) },
		func() Tuner { return NewBestConfig(s) },
	} {
		a, err := Run(mk(), bowl(s), 25, stat.NewRNG(42))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(mk(), bowl(s), 25, stat.NewRNG(42))
		if err != nil {
			t.Fatal(err)
		}
		if a.Best.Runtime != b.Best.Runtime {
			t.Errorf("%s not deterministic: %v vs %v", mk().Name(), a.Best.Runtime, b.Best.Runtime)
		}
	}
}

func TestBayesOptEIStopping(t *testing.T) {
	s := benchSpace(t)
	bo := NewBayesOpt(s)
	bo.StopEIFrac = 0.10
	res, err := Run(bo, bowl(s), 200, stat.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("EI stopping never triggered in 200 runs")
	}
	if len(res.Trials) >= 200 {
		t.Errorf("stopped flag set but full budget used (%d trials)", len(res.Trials))
	}
	if len(res.Trials) < 5 {
		t.Errorf("stopped suspiciously early: %d trials", len(res.Trials))
	}
	// The found value should be decent — well below the ~47 default —
	// even if the convergence estimate was optimistic.
	if res.Best.Runtime > 25 {
		t.Errorf("early-stopped best %v too far from optimum ~10", res.Best.Runtime)
	}
}

func TestStoppingDisabledByDefault(t *testing.T) {
	s := benchSpace(t)
	res, err := Run(NewBayesOpt(s), bowl(s), 30, stat.NewRNG(22))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped || len(res.Trials) != 30 {
		t.Errorf("default BayesOpt stopped early: %d trials, stopped=%v", len(res.Trials), res.Stopped)
	}
}

func TestRunForCostObjective(t *testing.T) {
	s := benchSpace(t)
	// Cost anti-correlates with runtime here: the cheapest region is NOT
	// the fastest, so the two objectives must pick different configs.
	obj := func(cfg confspace.Config) Measurement {
		rt := bowl(s)(cfg).Runtime
		return Measurement{Runtime: rt, Cost: 100 / rt}
	}
	fast, err := RunFor(NewBayesOpt(s), obj, 40, stat.NewRNG(31), MinimizeRuntime)
	if err != nil {
		t.Fatal(err)
	}
	cheap, err := RunFor(NewBayesOpt(s), obj, 40, stat.NewRNG(31), MinimizeCost)
	if err != nil {
		t.Fatal(err)
	}
	if !fast.Found || !cheap.Found {
		t.Fatal("sessions found nothing")
	}
	if cheap.Best.Cost >= fast.Best.Cost {
		t.Errorf("cost-objective best $%.2f not below runtime-objective $%.2f",
			cheap.Best.Cost, fast.Best.Cost)
	}
	if fast.Best.Runtime >= cheap.Best.Runtime {
		t.Errorf("runtime-objective best %.1fs not below cost-objective %.1fs",
			fast.Best.Runtime, cheap.Best.Runtime)
	}
}

func TestMinimizeCostDelay(t *testing.T) {
	score := MinimizeCostDelay(36) // a dollar per 100 seconds of waiting
	m := Measurement{Runtime: 100, Cost: 2}
	if got := score(m); math.Abs(got-3) > 1e-12 {
		t.Errorf("blend = %v, want 3", got)
	}
}

func TestRunForNilScorerDefaults(t *testing.T) {
	s := benchSpace(t)
	res, err := RunFor(NewRandomSearch(s), bowl(s), 10, stat.NewRNG(32), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Objective != res.Best.Runtime {
		t.Error("nil scorer did not default to runtime")
	}
}
