package tuner

import (
	"math/rand"
	"sort"

	"seamlesstune/internal/confspace"
)

// Genetic is a DAC-style genetic algorithm: a population of
// configurations evolves by elitist selection, uniform crossover and
// per-gene mutation. (DAC evolves against a learned model; here each
// individual is evaluated directly against the objective, which makes the
// sample-efficiency comparison of experiment C2 honest.)
type Genetic struct {
	Space *confspace.Space
	// PopSize is the population size (default 20).
	PopSize int
	// EliteFrac is the surviving fraction per generation (default 0.25).
	EliteFrac float64
	// MutRate is the per-gene mutation probability (default 0.1).
	MutRate float64
	// MutScale is the unit-cube mutation step (default 0.15).
	MutScale float64

	population []confspace.Config
	fitness    []float64
	cursor     int
	generation int
}

var _ Tuner = (*Genetic)(nil)

// NewGenetic returns a genetic tuner over space.
func NewGenetic(space *confspace.Space) *Genetic {
	return &Genetic{Space: space}
}

// Name implements Tuner.
func (*Genetic) Name() string { return "genetic" }

func (t *Genetic) popSize() int {
	if t.PopSize > 0 {
		return t.PopSize
	}
	return 20
}

func (t *Genetic) eliteCount() int {
	f := t.EliteFrac
	if f <= 0 || f >= 1 {
		f = 0.25
	}
	n := int(f * float64(t.popSize()))
	if n < 2 {
		n = 2
	}
	return n
}

// Next implements Tuner.
func (t *Genetic) Next(rng *rand.Rand) confspace.Config {
	if t.population == nil {
		t.seed(rng)
	}
	if t.cursor >= len(t.population) {
		t.breed(rng)
	}
	return t.population[t.cursor]
}

// Observe implements Tuner.
func (t *Genetic) Observe(tr Trial) {
	if t.cursor < len(t.fitness) {
		t.fitness[t.cursor] = tr.Objective
		t.cursor++
	}
}

func (t *Genetic) seed(rng *rand.Rand) {
	n := t.popSize()
	t.population = make([]confspace.Config, 0, n)
	// Include the default configuration; fill the rest with LHS coverage.
	t.population = append(t.population, t.Space.Default())
	t.population = append(t.population, t.Space.LatinHypercube(rng, n-1)...)
	t.fitness = make([]float64, len(t.population))
	t.cursor = 0
}

func (t *Genetic) breed(rng *rand.Rand) {
	n := len(t.population)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return t.fitness[order[a]] < t.fitness[order[b]] })

	elite := t.eliteCount()
	next := make([]confspace.Config, 0, n)
	for i := 0; i < elite; i++ {
		next = append(next, t.population[order[i]].Clone())
	}
	mutRate := t.MutRate
	if mutRate <= 0 {
		mutRate = 0.1
	}
	mutScale := t.MutScale
	if mutScale <= 0 {
		mutScale = 0.15
	}
	for len(next) < n {
		a := t.population[order[rng.Intn(elite)]]
		b := t.population[order[rng.Intn(elite)]]
		child := t.Space.Crossover(rng, a, b)
		if rng.Float64() < 0.9 {
			child = t.Space.Neighbor(rng, child, mutRate, mutScale)
		}
		next = append(next, child)
	}
	t.population = next
	t.fitness = make([]float64, n)
	t.cursor = 0
	t.generation++
}

// Generation returns the number of completed generations.
func (t *Genetic) Generation() int { return t.generation }
