package tuner

import (
	"fmt"
	"math/rand"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/sensitivity"
)

// PrunedBayesOpt is significance-aware Bayesian optimization: a BayesOpt
// tuner that runs inside a pruned view of the configuration space. A
// sensitivity.Analyzer watches every observation (warm-start history
// included), and once the knob importances converge the search collapses
// onto a confspace.Subspace over the significant knobs — pinning the rest
// to the best-known configuration — so the surrogate fits and the
// acquisition argmax run at the reduced dimension. If a pruned knob's
// importance later resurges, the subspace re-expands mid-session and the
// inner tuner is rebuilt by replaying every full-space observation into
// the new view.
//
// The wrapper leaves BayesOpt itself untouched: sessions that do not opt
// into pruning construct a plain BayesOpt and keep bit-identical
// trajectories.
type PrunedBayesOpt struct {
	Space *confspace.Space
	// InitSamples, Candidates, WarmStart, StopEIFrac, Surrogate and
	// SurrogateSeed mirror the BayesOpt fields and are handed to every
	// inner tuner the wrapper builds.
	InitSamples   int
	Candidates    int
	WarmStart     []Trial
	StopEIFrac    float64
	Surrogate     string
	SurrogateSeed int64
	// Prune configures the sensitivity analyzer (zero value = defaults).
	Prune sensitivity.Config
	// Hook, when set, observes every analysis round with the trial count
	// at which it ran. Telemetry layers use it to publish pruning events;
	// it runs synchronously on the session goroutine.
	Hook func(trial int, dec sensitivity.Decision)

	// decisionHook is installed on every inner tuner (SetDecisionHook),
	// surviving the rebuilds a subspace change triggers.
	decisionHook DecisionHook

	inner    *BayesOpt
	analyzer *sensitivity.Analyzer
	sub      *confspace.Subspace // nil while the full space is active
	seen     []Trial             // full-space observations, replayed on rebuild
	best     Trial
	hasBest  bool
	trials   int
}

var _ Tuner = (*PrunedBayesOpt)(nil)
var _ Stopper = (*PrunedBayesOpt)(nil)

// NewPrunedBayesOpt returns a pruning Bayesian-optimization tuner over
// space.
func NewPrunedBayesOpt(space *confspace.Space) *PrunedBayesOpt {
	return &PrunedBayesOpt{Space: space}
}

// Name implements Tuner.
func (*PrunedBayesOpt) Name() string { return "bayesopt+prune" }

// ensure lazily builds the analyzer and the first (full-space) inner
// tuner, absorbing any warm-start history into both.
func (t *PrunedBayesOpt) ensure() {
	if t.analyzer == nil {
		t.analyzer = sensitivity.New(t.Space, t.Prune)
	}
	if t.inner == nil {
		t.inner = t.newInner(t.Space)
	}
	if len(t.WarmStart) > 0 {
		ws := t.WarmStart
		t.WarmStart = nil
		for _, tr := range ws {
			t.absorb(tr)
		}
		// Warm-start history may already be enough to prune before the
		// first proposal.
		t.maybeReplan()
	}
}

// newInner builds a BayesOpt over space (the full space or the current
// projection) with the wrapper's knobs.
func (t *PrunedBayesOpt) newInner(space *confspace.Space) *BayesOpt {
	return &BayesOpt{
		Space:         space,
		InitSamples:   t.InitSamples,
		Candidates:    t.Candidates,
		StopEIFrac:    t.StopEIFrac,
		Surrogate:     t.Surrogate,
		SurrogateSeed: t.SurrogateSeed,
		DecisionHook:  t.decisionHook,
	}
}

// Next implements Tuner: the inner tuner proposes in its (possibly
// projected) space, and proposals lift back to full configurations.
func (t *PrunedBayesOpt) Next(rng *rand.Rand) confspace.Config {
	t.ensure()
	cfg := t.inner.Next(rng)
	if t.sub != nil {
		return t.sub.Lift(cfg)
	}
	return cfg
}

// Observe implements Tuner.
func (t *PrunedBayesOpt) Observe(tr Trial) {
	t.ensure()
	t.absorb(tr)
	t.trials++
	t.maybeReplan()
}

// absorb records a full-space observation everywhere it matters: the
// replay log, the analyzer, the best-known tracker, and (projected) the
// inner tuner.
func (t *PrunedBayesOpt) absorb(tr Trial) {
	t.seen = append(t.seen, tr)
	t.analyzer.Observe(tr.Config, tr.Objective)
	if !tr.Failed && (!t.hasBest || tr.Objective < t.best.Objective) {
		t.best, t.hasBest = tr, true
	}
	t.inner.Observe(t.project(tr))
}

// project restricts a trial to the active view for the inner tuner.
func (t *PrunedBayesOpt) project(tr Trial) Trial {
	if t.sub == nil {
		return tr
	}
	out := tr
	out.Config = t.sub.Project(tr.Config)
	return out
}

// maybeReplan runs the sensitivity analysis when due and rebuilds the
// inner tuner on any adopted active-set change.
func (t *PrunedBayesOpt) maybeReplan() {
	if !t.analyzer.Due() {
		return
	}
	dec := t.analyzer.Evaluate()
	if dec.Changed {
		t.rebuild(dec)
	}
	if t.Hook != nil {
		t.Hook(t.trials, dec)
	}
}

// rebuild installs the analyzer's active set: pruned knobs pin to the
// best-known successful configuration (defaults before any success), a
// fresh inner tuner spans the projected space, and the full observation
// log replays into it so no information is lost across the switch.
func (t *PrunedBayesOpt) rebuild(dec sensitivity.Decision) {
	var pins confspace.Config
	if t.hasBest {
		pins = t.best.Config
	}
	sub, err := confspace.NewSubspace(t.Space, dec.Active, pins)
	if err != nil {
		// Active sets come from the analyzer over the same space, so this
		// is unreachable; degrade to the current view rather than panic.
		return
	}
	t.sub = sub
	t.inner = t.newInner(sub.Space())
	for _, tr := range t.seen {
		t.inner.Observe(t.project(tr))
	}
}

// ShouldStop implements Stopper by delegating to the inner tuner's
// CherryPick convergence rule.
func (t *PrunedBayesOpt) ShouldStop() bool {
	return t.inner != nil && t.inner.ShouldStop()
}

// lastAcqSeconds implements acqTimed.
func (t *PrunedBayesOpt) lastAcqSeconds() float64 {
	if t.inner == nil {
		return 0
	}
	return t.inner.lastAcqSeconds()
}

// ModelPredict exposes the inner posterior at a full-space configuration
// (projected into the active view first), for SLO estimation.
func (t *PrunedBayesOpt) ModelPredict(cfg confspace.Config) (mean, std float64, ok bool) {
	if t.inner == nil {
		return 0, 0, false
	}
	if t.sub != nil {
		cfg = t.sub.Project(cfg)
	}
	return t.inner.ModelPredict(cfg)
}

// ActiveDims returns the current search dimension and the full dimension.
func (t *PrunedBayesOpt) ActiveDims() (active, total int) {
	if t.sub != nil {
		return t.sub.Dim(), t.Space.Dim()
	}
	return t.Space.Dim(), t.Space.Dim()
}

// Subspace returns the current projection (nil while the full space is
// active).
func (t *PrunedBayesOpt) Subspace() *confspace.Subspace { return t.sub }

// LastDecision returns the analyzer's most recent outcome.
func (t *PrunedBayesOpt) LastDecision() (sensitivity.Decision, bool) {
	if t.analyzer == nil {
		return sensitivity.Decision{}, false
	}
	return t.analyzer.LastDecision()
}

// Describe renders the current search view for logs.
func (t *PrunedBayesOpt) Describe() string {
	a, total := t.ActiveDims()
	return fmt.Sprintf("%d/%d dims active", a, total)
}
