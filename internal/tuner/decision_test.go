package tuner

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"seamlesstune/internal/gp"
	"seamlesstune/internal/sensitivity"
	"seamlesstune/internal/stat"
)

// runTrace runs the tuner for n steps against obj and returns the
// proposal/observation trace.
func runTrace(t *testing.T, tn Tuner, obj Objective, n int, seed int64) []string {
	t.Helper()
	rng := stat.NewRNG(seed)
	trace := make([]string, 0, n)
	for i := 0; i < n; i++ {
		cfg := tn.Next(rng)
		m := obj(cfg)
		trace = append(trace, fmt.Sprintf("%v|%.17g", cfg, m.Runtime))
		tn.Observe(Trial{Index: i, Config: cfg, Measurement: m, Objective: m.Runtime})
	}
	return trace
}

// Installing a decision hook must not perturb the search: the hook path
// never touches the session RNG, so trajectories are bit-identical with
// and without one.
func TestDecisionHookTrajectoryBitIdentical(t *testing.T) {
	for _, seed := range []int64{1, 5, 11} {
		s := benchSpace(t)
		plain := NewBayesOpt(s)
		hooked := NewBayesOpt(s)
		hooks := 0
		hooked.SetDecisionHook(func(DecisionRecord) { hooks++ })
		want := runTrace(t, plain, bowl(s), 20, seed)
		got := runTrace(t, hooked, bowl(s), 20, seed)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d iter %d diverged with hook installed:\n  got  %s\n  want %s", seed, i, got[i], want[i])
			}
		}
		if hooks == 0 {
			t.Fatalf("seed %d: hook never fired over 20 trials", seed)
		}
	}
}

// The record must be internally consistent: chosen is rank 1 and
// TopK[0], ranks ascend, EIs descend, ties break toward the lower pool
// index, and each candidate's Exploit+Explore reproduces its EI exactly
// (same float operations as the acquisition argmax).
func TestDecisionRecordConsistency(t *testing.T) {
	s := benchSpace(t)
	bo := NewBayesOpt(s)
	var recs []DecisionRecord
	bo.SetDecisionHook(func(r DecisionRecord) {
		// TopK aliases tuner scratch; deep-copy before retaining.
		r.TopK = append([]CandidateScore(nil), r.TopK...)
		recs = append(recs, r)
	})
	runTrace(t, bo, bowl(s), 25, 7)
	if len(recs) == 0 {
		t.Fatal("no decision records emitted")
	}
	for n, r := range recs {
		if r.Chosen.Rank != 1 {
			t.Errorf("record %d: chosen rank %d, want 1", n, r.Chosen.Rank)
		}
		if len(r.TopK) == 0 || r.TopK[0] != r.Chosen {
			t.Errorf("record %d: chosen %+v is not TopK[0] %+v", n, r.Chosen, r.TopK)
		}
		if len(r.TopK) > DecisionTopK {
			t.Errorf("record %d: %d topK entries, cap is %d", n, len(r.TopK), DecisionTopK)
		}
		if r.Surrogate == "" || r.Candidates == 0 || r.Observations == 0 {
			t.Errorf("record %d: missing provenance %+v", n, r)
		}
		for i, c := range r.TopK {
			if c.Rank != i+1 {
				t.Errorf("record %d topK[%d]: rank %d, want %d", n, i, c.Rank, i+1)
			}
			if i > 0 {
				prev := r.TopK[i-1]
				if c.EI > prev.EI {
					t.Errorf("record %d topK[%d]: EI %g above rank %d's %g", n, i, c.EI, i, prev.EI)
				}
				if c.EI == prev.EI && c.Index < prev.Index {
					t.Errorf("record %d topK[%d]: tie broke toward higher index (%d before %d)", n, i, prev.Index, c.Index)
				}
			}
			if got := c.Exploit + c.Explore; got != c.EI {
				t.Errorf("record %d topK[%d]: exploit %g + explore %g = %g, want EI %g", n, i, c.Exploit, c.Explore, got, c.EI)
			}
			if want := gp.ExpectedImprovement(c.Mean, c.Std, r.Incumbent); c.EI != want {
				t.Errorf("record %d topK[%d]: EI %g, recomputed %g from mean/std/incumbent", n, i, c.EI, want)
			}
		}
	}
}

// The pruned wrapper forwards the hook into every inner tuner it builds,
// including rebuilds after a subspace change.
func TestPrunedBayesOptForwardsDecisionHook(t *testing.T) {
	s := benchSpace(t)
	pb := NewPrunedBayesOpt(s)
	pb.Prune = sensitivity.Config{Seed: stat.DeriveSeed(3, "prune"), MinSamples: 12, Every: 4, StableRounds: 1}
	var surrogates []string
	rebuilt := false
	pb.Hook = func(trial int, dec sensitivity.Decision) {
		if dec.Changed {
			rebuilt = true
		}
	}
	pb.SetDecisionHook(func(r DecisionRecord) { surrogates = append(surrogates, r.Surrogate) })
	before := 0
	rng := stat.NewRNG(3)
	obj := bowl(s)
	for i := 0; i < 40; i++ {
		cfg := pb.Next(rng)
		m := obj(cfg)
		pb.Observe(Trial{Index: i, Config: cfg, Measurement: m, Objective: m.Runtime})
		if !rebuilt {
			before = len(surrogates)
		}
	}
	if !rebuilt {
		t.Skip("pruning never converged in 40 trials; rebuild path not exercised")
	}
	if len(surrogates) <= before {
		t.Fatalf("no decision records after the subspace rebuild (%d before, %d total)", before, len(surrogates))
	}
	for _, name := range surrogates {
		if name == "" {
			t.Fatal("record with empty surrogate name")
		}
	}
}

func TestModelTarget(t *testing.T) {
	if got, want := ModelTarget(math.E), 1.0; math.Abs(got-want) > 1e-15 {
		t.Errorf("ModelTarget(e) = %g, want 1", got)
	}
	// The floor keeps failed/zero objectives finite, matching absorb.
	if got, want := ModelTarget(0), math.Log(1e-6); got != want {
		t.Errorf("ModelTarget(0) = %g, want %g", got, want)
	}
	if got := ModelTarget(-5); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("ModelTarget(-5) = %g, want finite", got)
	}
}

func TestTopKString(t *testing.T) {
	r := DecisionRecord{TopK: []CandidateScore{
		{Rank: 1, EI: 0.05, Exploit: 0.03, Explore: 0.02},
		{Rank: 2, EI: 0.04, Exploit: 0.01, Explore: 0.03},
	}}
	got := r.TopKString()
	if want := "1:0.05(0.03+0.02),2:0.04(0.01+0.03)"; got != want {
		t.Errorf("TopKString() = %q, want %q", got, want)
	}
	if (DecisionRecord{}).TopKString() != "" {
		t.Error("empty record should render as empty string")
	}
	if n := strings.Count(got, ","); n != 1 {
		t.Errorf("separator count = %d, want 1", n)
	}
}

// gp.ExpectedImprovementParts edge cases: degenerate std attributes
// everything to exploitation.
func TestExpectedImprovementPartsDegenerate(t *testing.T) {
	if ex, er := gp.ExpectedImprovementParts(1.0, 0, 3.0); ex != 2.0 || er != 0 {
		t.Errorf("zero std below incumbent: got (%g,%g), want (2,0)", ex, er)
	}
	if ex, er := gp.ExpectedImprovementParts(5.0, 0, 3.0); ex != 0 || er != 0 {
		t.Errorf("zero std above incumbent: got (%g,%g), want (0,0)", ex, er)
	}
	if ex, er := gp.ExpectedImprovementParts(5.0, -1, 3.0); ex != 0 || er != 0 {
		t.Errorf("negative std: got (%g,%g), want (0,0)", ex, er)
	}
}
