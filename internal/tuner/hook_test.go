package tuner

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"seamlesstune/internal/confspace"
)

// TestTrialHook checks that a context-carried hook sees every completed
// trial, in order, with the session's running best — the contract the
// core telemetry layer builds on.
func TestTrialHook(t *testing.T) {
	s := benchSpace(t)
	obj := bowl(s)
	var trials []Trial
	var bests []float64
	ctx := WithTrialHook(context.Background(), func(tr Trial, best float64) {
		trials = append(trials, tr)
		bests = append(bests, best)
	})
	const budget = 12
	res, err := RunContext(ctx, NewRandomSearch(s), obj, budget, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != budget {
		t.Fatalf("hook saw %d trials, want %d", len(trials), budget)
	}
	for i, tr := range trials {
		if tr.Index != i {
			t.Errorf("trial %d: index %d", i, tr.Index)
		}
		if bests[i] != res.BestSoFar[i] {
			t.Errorf("trial %d: hook best %v != trajectory %v", i, bests[i], res.BestSoFar[i])
		}
		if i > 0 && bests[i] > bests[i-1] {
			t.Errorf("best-so-far not monotone at trial %d: %v > %v", i, bests[i], bests[i-1])
		}
	}
}

// TestTrialHookFailedTrials: hooks see failed trials too, with best
// remaining +Inf until the first success.
func TestTrialHookFailedTrials(t *testing.T) {
	s := benchSpace(t)
	objFn := bowl(s)
	n := 0
	mixed := func(cfg confspace.Config) Measurement {
		n++
		if n <= 3 {
			return Measurement{Runtime: 5, Failed: true}
		}
		return objFn(cfg)
	}
	var bests []float64
	ctx := WithTrialHook(context.Background(), func(tr Trial, best float64) {
		bests = append(bests, best)
	})
	if _, err := RunContext(ctx, NewRandomSearch(s), mixed, 6, rand.New(rand.NewSource(2))); err != nil {
		t.Fatal(err)
	}
	if len(bests) != 6 {
		t.Fatalf("hook saw %d trials, want 6", len(bests))
	}
	for i := 0; i < 3; i++ {
		if !math.IsInf(bests[i], 1) {
			t.Errorf("trial %d (failed): best = %v, want +Inf", i, bests[i])
		}
	}
	for i := 3; i < 6; i++ {
		if math.IsInf(bests[i], 1) {
			t.Errorf("trial %d (success): best still +Inf", i)
		}
	}
}

// TestTrialHookFromEmptyContext: no hook, no call.
func TestTrialHookFromEmptyContext(t *testing.T) {
	if h := TrialHookFrom(context.Background()); h != nil {
		t.Error("hook from empty context should be nil")
	}
}
