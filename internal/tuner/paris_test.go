package tuner

import (
	"errors"
	"math"
	"testing"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/stat"
)

// synthSecPerGB is a synthetic ground-truth performance law: CPU-bound
// workloads love fast cores; memory-bound ones love memory per core.
func synthSecPerGB(fp ParisFingerprint, it cloud.InstanceType) float64 {
	cpuBound := fp.GCFrac < 0.05
	base := 10.0 / it.CPUFactor / math.Sqrt(float64(it.VCPUs))
	if cpuBound {
		return base
	}
	return base * 8 / it.MemoryPerCore()
}

func parisBank(t *testing.T) ([]ParisSample, []cloud.InstanceType) {
	t.Helper()
	types := cloud.DefaultCatalog().ByProvider(cloud.Nimbus)
	fps := []ParisFingerprint{
		{SecPerGBSmall: 10, SecPerGBLarge: 3, ShufflePerInput: 0.1, GCFrac: 0.01},
		{SecPerGBSmall: 40, SecPerGBLarge: 9, ShufflePerInput: 1.5, GCFrac: 0.02},
		{SecPerGBSmall: 80, SecPerGBLarge: 30, ShufflePerInput: 6, SpillPerInput: 1, GCFrac: 0.2},
		{SecPerGBSmall: 25, SecPerGBLarge: 8, ShufflePerInput: 0.4, GCFrac: 0.15},
	}
	var bank []ParisSample
	for _, fp := range fps {
		for _, it := range types {
			bank = append(bank, ParisSample{Fingerprint: fp, VM: it, SecPerGB: synthSecPerGB(fp, it)})
		}
	}
	return bank, types
}

func TestTrainParisAndPredict(t *testing.T) {
	bank, types := parisBank(t)
	m, err := TrainParis(bank, stat.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	// A new memory-hungry workload: the model should rank memory-family
	// VMs above compute-family ones.
	fp := ParisFingerprint{SecPerGBSmall: 70, SecPerGBLarge: 25, ShufflePerInput: 5, SpillPerInput: 0.8, GCFrac: 0.18}
	var mem, cmp cloud.InstanceType
	for _, it := range types {
		if it.Family == cloud.Memory && it.VCPUs == 8 {
			mem = it
		}
		if it.Family == cloud.Compute && it.VCPUs == 8 {
			cmp = it
		}
	}
	pm := m.PredictSecPerGB(fp, mem)
	pc := m.PredictSecPerGB(fp, cmp)
	if pm >= pc {
		t.Errorf("memory VM predicted %.2f, compute VM %.2f; want memory faster for memory-bound workload", pm, pc)
	}
	best, err := m.BestVM(fp, types)
	if err != nil {
		t.Fatal(err)
	}
	truthBest := types[0]
	truthT := math.Inf(1)
	for _, it := range types {
		if v := synthSecPerGB(fp, it); v < truthT {
			truthBest, truthT = it, v
		}
	}
	if best.VM.Family != truthBest.Family {
		t.Errorf("BestVM family = %v, truth = %v", best.VM.Family, truthBest.Family)
	}
}

func TestParisMetricObjective(t *testing.T) {
	bank, types := parisBank(t)
	m, err := TrainParis(bank, stat.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	fp := bank[0].Fingerprint
	fast, err := m.BestVM(fp, types)
	if err != nil {
		t.Fatal(err)
	}
	cheap, err := m.BestVMForMetric(fp, types, func(sec float64, it cloud.InstanceType) float64 {
		return sec * it.PricePerHour // cost objective
	})
	if err != nil {
		t.Fatal(err)
	}
	if cheap.VM.PricePerHour > fast.VM.PricePerHour {
		t.Errorf("cost-objective pick ($%.3f/h) pricier than speed pick ($%.3f/h)",
			cheap.VM.PricePerHour, fast.VM.PricePerHour)
	}
	// Nil metric falls back to BestVM.
	same, err := m.BestVMForMetric(fp, types, nil)
	if err != nil || same.VM.String() != fast.VM.String() {
		t.Errorf("nil metric pick = %v, want %v", same.VM, fast.VM)
	}
}

func TestTrainParisErrors(t *testing.T) {
	if _, err := TrainParis(nil, stat.NewRNG(1)); !errors.Is(err, ErrTooFewProfiles) {
		t.Errorf("err = %v", err)
	}
}

func TestBestVMErrors(t *testing.T) {
	bank, _ := parisBank(t)
	m, err := TrainParis(bank, stat.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.BestVM(ParisFingerprint{}, nil); err == nil {
		t.Error("empty candidates accepted")
	}
	if _, err := m.BestVMForMetric(ParisFingerprint{}, nil, nil); err == nil {
		t.Error("empty candidates accepted")
	}
}

func TestReferenceVMs(t *testing.T) {
	types := cloud.DefaultCatalog().ByProvider(cloud.Nimbus)
	small, large, err := ReferenceVMs(types)
	if err != nil {
		t.Fatal(err)
	}
	if small.Family != cloud.General || large.Family != cloud.General {
		t.Errorf("references = %v, %v; want general-purpose pair", small, large)
	}
	if small.PricePerHour >= large.PricePerHour {
		t.Errorf("small ($%.3f) not cheaper than large ($%.3f)", small.PricePerHour, large.PricePerHour)
	}
	if _, _, err := ReferenceVMs(types[:1]); err == nil {
		t.Error("single candidate accepted")
	}
}
