package tuner

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/gp"
	"seamlesstune/internal/surrogate"
)

// eiWorkers bounds the acquisition worker pool in BayesOpt.Next. It
// defaults to GOMAXPROCS; it is a variable (not a constant) so tests can
// pin it to 1 and to many workers and prove the results byte-identical.
// Workers write expected improvement into disjoint index ranges and the
// argmax is a single sequential scan, so the chosen candidate never
// depends on scheduling.
var eiWorkers = runtime.GOMAXPROCS(0)

// BayesOpt is CherryPick-style Bayesian optimization: a Gaussian process
// with a Matérn-5/2 kernel models log-runtime over the (unit-encoded)
// space, and the next configuration maximizes expected improvement over a
// random candidate pool. The first InitSamples evaluations come from a
// Latin-hypercube design.
type BayesOpt struct {
	Space *confspace.Space
	// InitSamples seeds the model before EI kicks in (default 2+dim/4,
	// at least 3 — CherryPick starts from a handful of samples).
	InitSamples int
	// Candidates is the EI candidate-pool size (default 500).
	Candidates int
	// WarmStart optionally pre-seeds the model with (config, runtime)
	// observations transferred from a similar workload (§V-B).
	WarmStart []Trial
	// StopEIFrac enables CherryPick's convergence rule: stop when the
	// best expected improvement falls below this fraction of the current
	// optimum (CherryPick uses 0.10). 0 disables early stopping.
	StopEIFrac float64
	// Surrogate selects the posterior backend by surrogate registry name:
	// "gp" (exact GP, the default — empty means the same), "rffgp"
	// (random-feature GP approximation), or "forest" (random forest).
	// Unknown names leave the tuner modelless, degrading every proposal to
	// a random draw; layered callers (core, tuneserve, tunectl) validate
	// names before a session starts.
	Surrogate string
	// SurrogateSeed drives the stochastic surrogate backends (random-
	// feature draws, forest resampling). Layered callers derive it from
	// the session seed — stat.DeriveSeed(seed, "surrogate") — so
	// trajectories replay bit-for-bit. The exact GP ignores it.
	SurrogateSeed int64
	// DecisionHook, when set, receives a DecisionRecord for every
	// EI-guided proposal, synchronously on the session goroutine. The
	// hook observes the decision after it is made and never touches the
	// RNG, so installing it cannot change a trajectory.
	DecisionHook DecisionHook

	pendingInit []confspace.Config
	xs          [][]float64
	ys          []float64 // log-runtime
	model       surrogate.Model
	dirty       bool
	lastMaxEI   float64
	eiValid     bool
	// lastAcqSec is the wall time of the most recent acquisition step
	// (candidate pool, batched posterior, EI argmax); 0 for init-phase
	// proposals. Exposed to sessions through the acqTimed interface.
	lastAcqSec float64

	// Reused acquisition buffers: candidate pool, flat unit-cube encodings
	// (with per-candidate views), and expected-improvement values. They are
	// scratch space overwritten on every Next call.
	candBuf []confspace.Config
	encFlat []float64
	encView [][]float64
	eiBuf   []float64
	// topBuf is the DecisionRecord top-k scratch, reused per decision.
	topBuf []CandidateScore
}

var _ Tuner = (*BayesOpt)(nil)
var _ Stopper = (*BayesOpt)(nil)

// NewBayesOpt returns a Bayesian-optimization tuner over space.
func NewBayesOpt(space *confspace.Space) *BayesOpt {
	return &BayesOpt{Space: space}
}

// Name implements Tuner.
func (*BayesOpt) Name() string { return "bayesopt" }

func (t *BayesOpt) initSamples() int {
	if t.InitSamples > 0 {
		return t.InitSamples
	}
	n := 2 + t.Space.Dim()/4
	if n < 3 {
		n = 3
	}
	return n
}

func (t *BayesOpt) candidates() int {
	if t.Candidates > 0 {
		return t.Candidates
	}
	return 500
}

// Next implements Tuner.
func (t *BayesOpt) Next(rng *rand.Rand) confspace.Config {
	t.lastAcqSec = 0
	// Absorb warm-start observations once.
	if len(t.WarmStart) > 0 {
		for _, tr := range t.WarmStart {
			t.absorb(tr)
		}
		t.WarmStart = nil
	}
	if len(t.xs) < t.initSamples() {
		if len(t.pendingInit) == 0 {
			t.pendingInit = t.Space.LatinHypercube(rng, t.initSamples())
		}
		cfg := t.pendingInit[0]
		t.pendingInit = t.pendingInit[1:]
		return cfg
	}
	t.refit()
	if t.model == nil || !t.model.Fitted() {
		return t.Space.Random(rng)
	}
	acqStart := time.Now()
	best, _ := minOf(t.ys)
	n := t.candidates()

	// Draw the whole candidate pool up front. The model never touches the
	// RNG, so consuming all draws first is the exact draw sequence of the
	// old draw-predict-score loop.
	if cap(t.candBuf) < n {
		t.candBuf = make([]confspace.Config, n)
	}
	cands := t.candBuf[:n]
	for i := range cands {
		cands[i] = t.Space.Random(rng)
	}

	// Encode into one reused flat buffer with per-candidate views.
	dim := t.Space.Dim()
	if cap(t.encFlat) < n*dim {
		t.encFlat = make([]float64, n*dim)
		t.encView = make([][]float64, n)
	}
	flat, views := t.encFlat[:n*dim], t.encView[:n]
	for i, cfg := range cands {
		views[i] = t.Space.EncodeInto(cfg, flat[i*dim:(i+1)*dim:(i+1)*dim])
	}

	means, stds := t.model.PredictBatch(views)

	// Score expected improvement across a bounded worker pool. Each worker
	// owns a disjoint index range of eiBuf, so the fill is race-free and
	// the values are identical regardless of worker count.
	if cap(t.eiBuf) < n {
		t.eiBuf = make([]float64, n)
	}
	eis := t.eiBuf[:n]
	workers := eiWorkers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := range eis {
			eis[i] = gp.ExpectedImprovement(means[i], stds[i], best)
		}
	} else {
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					eis[i] = gp.ExpectedImprovement(means[i], stds[i], best)
				}
			}(lo, hi)
		}
		wg.Wait()
	}

	// Deterministic argmax: a strict > scan keeps the lowest candidate
	// index among ties — the same winner as the old sequential loop,
	// byte-identical regardless of GOMAXPROCS.
	bestEI, bestIdx := math.Inf(-1), -1
	for i, ei := range eis {
		if ei > bestEI {
			bestEI, bestIdx = ei, i
		}
	}
	t.lastMaxEI, t.eiValid = bestEI, true
	t.lastAcqSec = time.Since(acqStart).Seconds()
	mAcqSeconds.Observe(t.lastAcqSec)
	if bestIdx < 0 {
		return t.Space.Random(rng)
	}
	if t.DecisionHook != nil {
		t.recordDecision(means, stds, eis, best, bestIdx)
	}
	return cands[bestIdx]
}

// lastAcqSeconds implements acqTimed.
func (t *BayesOpt) lastAcqSeconds() float64 { return t.lastAcqSec }

// ShouldStop implements Stopper: with StopEIFrac set, the search stops
// once the best expected improvement (in multiplicative runtime terms —
// the model works on log-runtime) drops below the fraction, CherryPick's
// "EI < 10%" rule.
func (t *BayesOpt) ShouldStop() bool {
	if t.StopEIFrac <= 0 || !t.eiValid {
		return false
	}
	// Give the model a few EI-guided evaluations before trusting its
	// convergence estimate — a freshly initialized posterior can look
	// deceptively flat.
	if len(t.xs) < t.initSamples()+5 {
		return false
	}
	threshold := -math.Log(1 - t.StopEIFrac)
	return t.lastMaxEI < threshold
}

// Observe implements Tuner.
func (t *BayesOpt) Observe(tr Trial) { t.absorb(tr) }

func (t *BayesOpt) absorb(tr Trial) {
	t.xs = append(t.xs, t.Space.Encode(tr.Config))
	t.ys = append(t.ys, math.Log(math.Max(tr.Objective, 1e-6)))
	t.dirty = true
}

func (t *BayesOpt) refit() {
	if !t.dirty || len(t.xs) == 0 {
		return
	}
	if t.model == nil {
		m, err := surrogate.New(surrogate.Config{Kind: t.Surrogate, Seed: t.SurrogateSeed})
		if err != nil {
			// Unknown backend names are rejected by layered validation; a
			// tuner driven directly with one degrades to random proposals.
			t.dirty = false
			return
		}
		t.model = m
	}
	// The observation log is append-only, so backends with an incremental
	// path (the persistent grid GP, the RFF running Grams) absorb only the
	// new rows; everything else refits from scratch. Either way the model
	// keeps its previous posterior when fitting fails — a failed refit
	// degrades to stale predictions, never to no predictions.
	if ext, ok := t.model.(surrogate.Extender); !ok || !ext.Extend(t.xs, t.ys) {
		_ = t.model.Fit(t.xs, t.ys)
	}
	t.dirty = false
}

// ModelPredict exposes the current posterior (log-runtime mean and std)
// at cfg, for SLO estimation and diagnostics. It reports ok=false before
// the model exists.
func (t *BayesOpt) ModelPredict(cfg confspace.Config) (mean, std float64, ok bool) {
	t.refit()
	if t.model == nil || !t.model.Fitted() {
		return 0, 0, false
	}
	m, s := t.model.Predict(t.Space.Encode(cfg))
	return m, s, true
}

func minOf(xs []float64) (float64, int) {
	best, idx := math.Inf(1), -1
	for i, x := range xs {
		if x < best {
			best, idx = x, i
		}
	}
	return best, idx
}
