package tuner

import (
	"math"
	"math/rand"

	"seamlesstune/internal/confspace"
)

// HillClimb is a modified hill climber in the spirit of MROnline: walk
// from the default configuration by single-parameter moves, accept
// improvements, and restart from a random point after a streak of
// rejected moves (the modification that lets it escape local optima).
type HillClimb struct {
	Space *confspace.Space
	// StepScale is the unit-cube mutation scale (default 0.15).
	StepScale float64
	// Patience is the number of consecutive non-improving moves before a
	// random restart (default 12).
	Patience int

	current   confspace.Config
	best      float64
	rejects   int
	proposed  confspace.Config
	evaluated int
}

var _ Tuner = (*HillClimb)(nil)

// NewHillClimb returns a hill climber starting at the space's defaults.
func NewHillClimb(space *confspace.Space) *HillClimb {
	return &HillClimb{Space: space, StepScale: 0.15, Patience: 12, best: math.Inf(1)}
}

// Name implements Tuner.
func (*HillClimb) Name() string { return "hillclimb" }

// Next implements Tuner.
func (t *HillClimb) Next(rng *rand.Rand) confspace.Config {
	if t.evaluated == 0 {
		// First evaluation measures the starting point itself.
		t.proposed = t.Space.Default()
		return t.proposed
	}
	if t.rejects >= t.patience() {
		t.rejects = 0
		t.proposed = t.Space.Random(rng)
		return t.proposed
	}
	base := t.current
	if base == nil {
		base = t.Space.Default()
	}
	t.proposed = t.Space.Neighbor(rng, base, 1.0/float64(t.Space.Dim()), t.stepScale())
	return t.proposed
}

// Observe implements Tuner.
func (t *HillClimb) Observe(tr Trial) {
	t.evaluated++
	if tr.Objective < t.best {
		t.best = tr.Objective
		t.current = tr.Config.Clone()
		t.rejects = 0
		return
	}
	t.rejects++
}

func (t *HillClimb) stepScale() float64 {
	if t.StepScale <= 0 {
		return 0.15
	}
	return t.StepScale
}

func (t *HillClimb) patience() int {
	if t.Patience <= 0 {
		return 12
	}
	return t.Patience
}
