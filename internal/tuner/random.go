package tuner

import (
	"math/rand"

	"seamlesstune/internal/confspace"
)

// RandomSearch samples the space uniformly — the baseline every surveyed
// system is compared against, and the method behind Table I's
// 100-random-configurations protocol.
type RandomSearch struct {
	Space *confspace.Space
}

var _ Tuner = (*RandomSearch)(nil)

// NewRandomSearch returns a uniform random tuner over space.
func NewRandomSearch(space *confspace.Space) *RandomSearch {
	return &RandomSearch{Space: space}
}

// Name implements Tuner.
func (*RandomSearch) Name() string { return "random" }

// Next implements Tuner.
func (t *RandomSearch) Next(rng *rand.Rand) confspace.Config {
	return t.Space.Random(rng)
}

// Observe implements Tuner.
func (*RandomSearch) Observe(Trial) {}

// LatinSearch samples with Latin-hypercube stratification, refreshing the
// design whenever it is exhausted. Slightly better space coverage than
// uniform sampling at equal cost.
type LatinSearch struct {
	Space *confspace.Space
	// Block is the stratification block size (default 20).
	Block int

	pending []confspace.Config
}

var _ Tuner = (*LatinSearch)(nil)

// NewLatinSearch returns an LHS tuner over space.
func NewLatinSearch(space *confspace.Space, block int) *LatinSearch {
	if block <= 0 {
		block = 20
	}
	return &LatinSearch{Space: space, Block: block}
}

// Name implements Tuner.
func (*LatinSearch) Name() string { return "latin" }

// Next implements Tuner.
func (t *LatinSearch) Next(rng *rand.Rand) confspace.Config {
	if len(t.pending) == 0 {
		t.pending = t.Space.LatinHypercube(rng, t.Block)
	}
	cfg := t.pending[0]
	t.pending = t.pending[1:]
	return cfg
}

// Observe implements Tuner.
func (*LatinSearch) Observe(Trial) {}
