package tuner

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/learn"
)

// Paris implements Yadwadkar et al.'s VM-selection system: an offline
// phase profiles a bank of benchmark workloads on every VM type and
// trains a random-forest performance model; online, a new workload runs
// on just two reference VM types, and the model predicts its performance
// on every other type from that fingerprint — data-efficient cloud
// configuration at the cost of an offline benchmarking investment
// (paper §II-A).

// ParisFingerprint characterizes a workload from its two reference runs,
// the online data PARIS collects.
type ParisFingerprint struct {
	// SecPerGBSmall and SecPerGBLarge are scale-normalized runtimes on
	// the small and large reference VM types.
	SecPerGBSmall float64
	SecPerGBLarge float64
	// ShufflePerInput, SpillPerInput and GCFrac are utilization-style
	// counters from the reference runs.
	ShufflePerInput float64
	SpillPerInput   float64
	GCFrac          float64
}

func (f ParisFingerprint) vector() []float64 {
	return []float64{
		math.Log1p(f.SecPerGBSmall),
		math.Log1p(f.SecPerGBLarge),
		math.Log1p(f.ShufflePerInput),
		math.Log1p(f.SpillPerInput),
		f.GCFrac * 5,
	}
}

// vmFeatures encodes an instance type for the model.
func vmFeatures(it cloud.InstanceType) []float64 {
	return []float64{
		math.Log2(float64(it.VCPUs)),
		math.Log2(it.MemoryPerCore()),
		math.Log2(it.DiskMBps/float64(it.VCPUs) + 1),
		math.Log2(it.NetworkMBps/float64(it.VCPUs) + 1),
		it.CPUFactor,
	}
}

// ParisSample is one offline observation: a benchmark workload's
// fingerprint, a VM type, and the achieved normalized runtime there.
type ParisSample struct {
	Fingerprint ParisFingerprint
	VM          cloud.InstanceType
	SecPerGB    float64
}

// ParisModel predicts normalized runtime for (workload fingerprint, VM).
type ParisModel struct {
	forest *learn.Forest
}

// ErrTooFewProfiles is returned when the offline bank is too small to
// train on.
var ErrTooFewProfiles = errors.New("tuner: paris needs at least 8 offline samples")

// TrainParis fits the random-forest model on the offline bank.
func TrainParis(samples []ParisSample, rng *rand.Rand) (*ParisModel, error) {
	if len(samples) < 8 {
		return nil, fmt.Errorf("%w: got %d", ErrTooFewProfiles, len(samples))
	}
	xs := make([][]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = append(s.Fingerprint.vector(), vmFeatures(s.VM)...)
		ys[i] = math.Log(math.Max(s.SecPerGB, 1e-9))
	}
	forest, err := learn.FitForest(learn.ForestConfig{Trees: 60}, xs, ys, rng)
	if err != nil {
		return nil, err
	}
	return &ParisModel{forest: forest}, nil
}

// PredictSecPerGB estimates the workload's normalized runtime on a VM.
func (m *ParisModel) PredictSecPerGB(fp ParisFingerprint, vm cloud.InstanceType) float64 {
	x := append(fp.vector(), vmFeatures(vm)...)
	return math.Exp(m.forest.Predict(x))
}

// ParisChoice is a ranked VM recommendation.
type ParisChoice struct {
	VM                cloud.InstanceType
	PredictedSecPerGB float64
}

// BestVM returns the candidate with the lowest predicted runtime.
func (m *ParisModel) BestVM(fp ParisFingerprint, candidates []cloud.InstanceType) (ParisChoice, error) {
	if len(candidates) == 0 {
		return ParisChoice{}, errors.New("tuner: paris has no candidate VMs")
	}
	best := ParisChoice{PredictedSecPerGB: math.Inf(1)}
	for _, vm := range candidates {
		if p := m.PredictSecPerGB(fp, vm); p < best.PredictedSecPerGB {
			best = ParisChoice{VM: vm, PredictedSecPerGB: p}
		}
	}
	return best, nil
}

// BestVMForMetric returns the candidate minimizing a user-defined metric
// of (predicted seconds/GB, instance) — PARIS's headline feature of
// optimizing arbitrary user objectives, e.g. cost = price × runtime.
func (m *ParisModel) BestVMForMetric(fp ParisFingerprint, candidates []cloud.InstanceType, metric func(secPerGB float64, vm cloud.InstanceType) float64) (ParisChoice, error) {
	if len(candidates) == 0 {
		return ParisChoice{}, errors.New("tuner: paris has no candidate VMs")
	}
	if metric == nil {
		return m.BestVM(fp, candidates)
	}
	best := ParisChoice{PredictedSecPerGB: math.Inf(1)}
	bestScore := math.Inf(1)
	for _, vm := range candidates {
		p := m.PredictSecPerGB(fp, vm)
		if score := metric(p, vm); score < bestScore {
			bestScore = score
			best = ParisChoice{VM: vm, PredictedSecPerGB: p}
		}
	}
	return best, nil
}

// ReferenceVMs picks PARIS's two reference types from a candidate list:
// the cheapest and the most expensive general-purpose boxes (falling back
// to global extremes).
func ReferenceVMs(candidates []cloud.InstanceType) (small, large cloud.InstanceType, err error) {
	if len(candidates) < 2 {
		return small, large, errors.New("tuner: paris needs at least two candidate VMs")
	}
	pick := func(want cloud.Family) (cloud.InstanceType, cloud.InstanceType, bool) {
		var lo, hi cloud.InstanceType
		found := false
		for _, it := range candidates {
			if it.Family != want {
				continue
			}
			if !found {
				lo, hi, found = it, it, true
				continue
			}
			if it.PricePerHour < lo.PricePerHour {
				lo = it
			}
			if it.PricePerHour > hi.PricePerHour {
				hi = it
			}
		}
		return lo, hi, found && lo.Name != hi.Name
	}
	if lo, hi, ok := pick(cloud.General); ok {
		return lo, hi, nil
	}
	lo, hi := candidates[0], candidates[0]
	for _, it := range candidates {
		if it.PricePerHour < lo.PricePerHour {
			lo = it
		}
		if it.PricePerHour > hi.PricePerHour {
			hi = it
		}
	}
	if lo.String() == hi.String() {
		return small, large, errors.New("tuner: candidates have identical prices")
	}
	return lo, hi, nil
}
