package tuner

import (
	"math"
	"math/rand"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/learn"
)

// TreeSearch follows Wang et al.: fit a regression-tree ensemble on the
// observed (configuration, runtime) samples, then pick the candidate with
// the best predicted runtime from a large random pool, with an ε chance
// of pure exploration. The first InitSamples evaluations are stratified.
type TreeSearch struct {
	Space *confspace.Space
	// InitSamples seeds the model (default 10).
	InitSamples int
	// Candidates is the prediction pool size (default 800).
	Candidates int
	// Epsilon is the exploration probability (default 0.15).
	Epsilon float64
	// Trees is the ensemble size (default 25).
	Trees int

	pendingInit []confspace.Config
	xs          [][]float64
	ys          []float64
	forest      *learn.Forest
	dirty       bool
}

var _ Tuner = (*TreeSearch)(nil)

// NewTreeSearch returns a regression-tree tuner over space.
func NewTreeSearch(space *confspace.Space) *TreeSearch {
	return &TreeSearch{Space: space}
}

// Name implements Tuner.
func (*TreeSearch) Name() string { return "rtree" }

func (t *TreeSearch) initSamples() int {
	if t.InitSamples > 0 {
		return t.InitSamples
	}
	return 10
}

// Next implements Tuner.
func (t *TreeSearch) Next(rng *rand.Rand) confspace.Config {
	if len(t.xs) < t.initSamples() {
		if len(t.pendingInit) == 0 {
			t.pendingInit = t.Space.LatinHypercube(rng, t.initSamples())
		}
		cfg := t.pendingInit[0]
		t.pendingInit = t.pendingInit[1:]
		return cfg
	}
	eps := t.Epsilon
	if eps <= 0 {
		eps = 0.15
	}
	if rng.Float64() < eps {
		return t.Space.Random(rng)
	}
	t.refit(rng)
	if t.forest == nil {
		return t.Space.Random(rng)
	}
	pool := t.Candidates
	if pool <= 0 {
		pool = 800
	}
	var bestCfg confspace.Config
	bestScore := math.Inf(1)
	for i := 0; i < pool; i++ {
		cfg := t.Space.Random(rng)
		mean, spread := t.forest.PredictWithSpread(t.Space.Encode(cfg))
		// Mild optimism: prefer candidates the ensemble disagrees about.
		score := mean - 0.3*spread
		if score < bestScore {
			bestScore, bestCfg = score, cfg
		}
	}
	if bestCfg == nil {
		return t.Space.Random(rng)
	}
	return bestCfg
}

// Observe implements Tuner.
func (t *TreeSearch) Observe(tr Trial) {
	t.xs = append(t.xs, t.Space.Encode(tr.Config))
	t.ys = append(t.ys, math.Log(math.Max(tr.Objective, 1e-6)))
	t.dirty = true
}

func (t *TreeSearch) refit(rng *rand.Rand) {
	if !t.dirty {
		return
	}
	trees := t.Trees
	if trees <= 0 {
		trees = 25
	}
	forest, err := learn.FitForest(learn.ForestConfig{Trees: trees}, t.xs, t.ys, rng)
	if err == nil {
		t.forest = forest
	}
	t.dirty = false
}
