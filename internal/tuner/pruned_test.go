package tuner

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/sensitivity"
)

// prunedTestSpace is a wide space where only three knobs move the
// objective; the rest is noise the pruning tier should discard.
func prunedTestSpace(dim int) *confspace.Space {
	params := make([]confspace.Param, dim)
	for i := range params {
		params[i] = confspace.FloatParam(fmt.Sprintf("k%02d", i), 0, 1, 0.5)
	}
	return confspace.MustSpace(params...)
}

func prunedObjective(rng *rand.Rand) Objective {
	return func(cfg confspace.Config) Measurement {
		rt := 120 - 50*cfg["k00"] - 30*cfg["k01"]*cfg["k01"] - 10*cfg["k02"] + rng.NormFloat64()
		return Measurement{Runtime: rt, Cost: rt / 3600}
	}
}

func TestPrunedBayesOptPrunesAndKeepsQuality(t *testing.T) {
	space := prunedTestSpace(20)
	var events []sensitivity.Decision
	pt := NewPrunedBayesOpt(space)
	pt.Prune = sensitivity.Config{Seed: 9, Every: 8, MinSamples: 24, MinActive: 4, TopK: 6}
	pt.Hook = func(trial int, dec sensitivity.Decision) {
		if trial <= 0 {
			t.Errorf("hook fired with trial count %d", trial)
		}
		events = append(events, dec)
	}
	rng := rand.New(rand.NewSource(41))
	res, err := Run(pt, prunedObjective(rand.New(rand.NewSource(8))), 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no successful trial")
	}
	active, total := pt.ActiveDims()
	if total != 20 {
		t.Fatalf("total dims %d, want 20", total)
	}
	if active >= total {
		t.Fatalf("session never pruned: %d/%d dims active", active, total)
	}
	if pt.Subspace() == nil {
		t.Fatal("Subspace() nil after pruning")
	}
	got := map[string]bool{}
	for _, n := range pt.Subspace().ActiveNames() {
		got[n] = true
	}
	for _, sig := range []string{"k00", "k01"} {
		if !got[sig] {
			t.Errorf("dominant knob %s pruned; active = %v", sig, pt.Subspace().ActiveNames())
		}
	}
	if len(events) == 0 {
		t.Fatal("prune hook never fired")
	}
	if dec, ok := pt.LastDecision(); !ok || dec.Samples == 0 {
		t.Fatalf("LastDecision() = %+v, %v", dec, ok)
	}
	// Proposals after pruning still span the full space (pins included)
	// and the best config beats the default's expected ~76s runtime.
	if len(res.Best.Config) != space.Dim() {
		t.Fatalf("best config has %d entries, want full-space %d", len(res.Best.Config), space.Dim())
	}
	if res.Best.Objective > 76 {
		t.Errorf("best runtime %.1f did not improve on the default region", res.Best.Objective)
	}
}

// TestPrunedBayesOptDeterministic replays a session twice with identical
// seeds and requires identical trajectories and pruning decisions.
func TestPrunedBayesOptDeterministic(t *testing.T) {
	space := prunedTestSpace(16)
	run := func() (Result, []string) {
		pt := NewPrunedBayesOpt(space)
		pt.Prune = sensitivity.Config{Seed: 3, Every: 6, MinSamples: 18}
		pt.Surrogate = "gp"
		res, err := Run(pt, prunedObjective(rand.New(rand.NewSource(5))), 40, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatal(err)
		}
		var active []string
		if s := pt.Subspace(); s != nil {
			active = s.ActiveNames()
		}
		return res, active
	}
	res1, act1 := run()
	res2, act2 := run()
	if !reflect.DeepEqual(act1, act2) {
		t.Fatalf("active sets diverged: %v vs %v", act1, act2)
	}
	if len(res1.Trials) != len(res2.Trials) {
		t.Fatalf("trial counts diverged: %d vs %d", len(res1.Trials), len(res2.Trials))
	}
	for i := range res1.Trials {
		if res1.Trials[i].Config.Canonical() != res2.Trials[i].Config.Canonical() {
			t.Fatalf("trial %d config diverged", i)
		}
		if res1.Trials[i].Objective != res2.Trials[i].Objective {
			t.Fatalf("trial %d objective diverged", i)
		}
	}
}

// TestPrunedBayesOptWarmStartBootstrapsPruning feeds enough warm-start
// history that the analyzer can prune before the first proposal.
func TestPrunedBayesOptWarmStartBootstrapsPruning(t *testing.T) {
	space := prunedTestSpace(14)
	hist := rand.New(rand.NewSource(23))
	obj := prunedObjective(rand.New(rand.NewSource(2)))
	var warm []Trial
	for i := 0; i < 40; i++ {
		cfg := space.Random(hist)
		m := obj(cfg)
		warm = append(warm, Trial{Index: i, Config: cfg, Measurement: m, Objective: m.Runtime})
	}
	pt := NewPrunedBayesOpt(space)
	pt.WarmStart = warm
	pt.Prune = sensitivity.Config{Seed: 7, Every: 10, MinSamples: 20, TopK: 5}
	cfg := pt.Next(rand.New(rand.NewSource(1)))
	if len(cfg) != space.Dim() {
		t.Fatalf("proposal has %d entries, want %d", len(cfg), space.Dim())
	}
	// Two evaluations' worth of history: with agreeing proposals the
	// warm-started analyzer may or may not shrink immediately (one
	// evaluation runs at ensure time), but the analyzer must have absorbed
	// every warm-start sample.
	if pt.analyzer.Samples() != 40 {
		t.Fatalf("analyzer absorbed %d samples, want 40", pt.analyzer.Samples())
	}
	// Keep observing: pruning must engage within a modest budget.
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 30 && pt.Subspace() == nil; i++ {
		c := pt.Next(rng)
		m := obj(c)
		pt.Observe(Trial{Index: i, Config: c, Measurement: m, Objective: m.Runtime})
	}
	if pt.Subspace() == nil {
		t.Fatal("warm-started session never pruned")
	}
	// Pins come from the best-known configuration once one exists.
	best := pt.best.Config
	for _, name := range pt.Subspace().PrunedNames() {
		if got := pt.Subspace().Pins()[name]; got != best[name] {
			t.Fatalf("pin %s = %v, want best-known %v", name, got, best[name])
		}
	}
}

// TestPrunedBayesOptFallbackUnpruned checks the wrapper behaves like a
// plain BayesOpt when the analyzer never reaches its sample floor.
func TestPrunedBayesOptFallbackUnpruned(t *testing.T) {
	space := prunedTestSpace(8)
	pt := NewPrunedBayesOpt(space)
	pt.Prune = sensitivity.Config{MinSamples: 1000}
	res, err := Run(pt, prunedObjective(rand.New(rand.NewSource(4))), 15, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no successful trial")
	}
	if pt.Subspace() != nil {
		t.Fatal("pruned despite MinSamples floor")
	}
	if active, total := pt.ActiveDims(); active != total {
		t.Fatalf("ActiveDims() = %d/%d, want full", active, total)
	}
	if _, _, ok := pt.ModelPredict(space.Default()); !ok {
		t.Error("ModelPredict unavailable after 15 trials")
	}
}
