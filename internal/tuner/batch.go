package tuner

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/stat"
)

// SeededObjective executes a configuration with an explicit evaluation
// seed. The seed fully determines the execution's randomness (the
// simulator draws from stat.NewRNG(seed)), which is what makes batch
// evaluation order-independent and lets a memoization cache
// (internal/simcache) serve revisited configurations bit-identically.
type SeededObjective func(cfg confspace.Config, seed int64) Measurement

// BatchProposer is the optional Tuner extension for strategies that hold
// a natural candidate pool: random/LHS designs, genetic populations,
// BestConfig's divide-and-diverge rounds. ProposeBatch returns up to max
// candidates that may be evaluated concurrently; the session then calls
// Observe once per candidate, in the returned order, before asking for
// the next batch. A tuner's ProposeBatch must propose exactly the
// sequence its Next would — batch execution changes throughput, never
// the search trajectory.
type BatchProposer interface {
	Tuner
	ProposeBatch(rng *rand.Rand, max int) []confspace.Config
}

// CandidateSeed derives the deterministic evaluation seed of one
// candidate from the session's base seed and the configuration content.
// Content-derived seeds mean a configuration proposed twice (a genetic
// elite, a revisited default, two tenants probing the same point) is
// evaluated with the same randomness — the same Measurement — making it
// a guaranteed cache hit rather than a fresh noisy sample.
func CandidateSeed(base int64, cfg confspace.Config) int64 {
	return stat.DeriveSeed(base, "eval", cfg.Canonical())
}

// EvaluateBatch evaluates every configuration on a bounded worker pool
// and returns measurements in input order. Results are deterministic for
// any worker count: candidate i always runs with CandidateSeed(baseSeed,
// cfgs[i]) and lands in slot i. workers <= 0 means GOMAXPROCS.
func EvaluateBatch(obj SeededObjective, cfgs []confspace.Config, baseSeed int64, workers int) []Measurement {
	out := make([]Measurement, len(cfgs))
	if len(cfgs) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	if workers == 1 {
		for i, cfg := range cfgs {
			out[i] = obj(cfg, CandidateSeed(baseSeed, cfg))
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cfgs) {
					return
				}
				out[i] = obj(cfgs[i], CandidateSeed(baseSeed, cfgs[i]))
			}
		}()
	}
	wg.Wait()
	return out
}

// BatchOptions configures a batch-parallel tuning session.
type BatchOptions struct {
	// Workers bounds the evaluation pool (<= 0 means GOMAXPROCS).
	Workers int
	// Seed is the base seed per-candidate evaluation seeds derive from.
	Seed int64
	// Score maps successful measurements to the minimized scalar
	// (default MinimizeRuntime).
	Score Scorer
}

// RunBatch drives a tuner for exactly budget evaluations, evaluating
// each proposal batch on the worker pool. BatchProposer tuners evaluate
// whole candidate pools concurrently; plain Tuners degrade to
// batch-of-one (still correct, no speedup). Observations are fed back
// in proposal order with the same penalization as RunForContext, so the
// search trajectory — trials, best-so-far curve, stopping — is
// identical for every worker count, and identical to a sequential
// session over the same SeededObjective. Cancellation is checked
// between batches; recorded trials are always complete observations.
func RunBatch(ctx context.Context, t Tuner, obj SeededObjective, budget int, rng *rand.Rand, opts BatchOptions) (Result, error) {
	if budget <= 0 {
		return Result{}, ErrNoBudget
	}
	score := opts.Score
	if score == nil {
		score = MinimizeRuntime
	}
	name := t.Name()
	mSessions.With(name).Inc()
	trials := mTrials.With(name)
	res := Result{BestSoFar: make([]float64, 0, budget)}
	best := math.Inf(1)
	worstSuccess := 0.0
	bp, _ := t.(BatchProposer)
	for len(res.Trials) < budget {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		remaining := budget - len(res.Trials)
		var cfgs []confspace.Config
		if bp != nil {
			cfgs = bp.ProposeBatch(rng, remaining)
		}
		if len(cfgs) == 0 {
			cfgs = []confspace.Config{t.Next(rng)}
		}
		if len(cfgs) > remaining {
			cfgs = cfgs[:remaining]
		}
		ms := EvaluateBatch(obj, cfgs, opts.Seed, opts.Workers)
		stopped := false
		for i, m := range ms {
			trial := Trial{Index: len(res.Trials), Config: cfgs[i], Measurement: m}
			var v float64
			if !m.Failed {
				v = score(m)
			}
			trial.Objective = penalizeScore(m, v, worstSuccess)
			res.Trials = append(res.Trials, trial)
			res.TotalCost += m.Cost
			if !m.Failed {
				if v > worstSuccess {
					worstSuccess = v
				}
				if v < best {
					best = v
					res.Best = trial
					res.Found = true
				}
			}
			res.BestSoFar = append(res.BestSoFar, best)
			t.Observe(trial)
			trials.Inc()
			if s, ok := t.(Stopper); ok && s.ShouldStop() {
				stopped = true
				break
			}
		}
		if stopped {
			res.Stopped = true
			break
		}
	}
	return res, nil
}

// ProposeBatch implements BatchProposer: uniform sampling has no state,
// so a batch is max independent draws — the same draws max Next calls
// would make.
func (t *RandomSearch) ProposeBatch(rng *rand.Rand, max int) []confspace.Config {
	if max < 1 {
		max = 1
	}
	out := make([]confspace.Config, max)
	for i := range out {
		out[i] = t.Space.Random(rng)
	}
	return out
}

// ProposeBatch implements BatchProposer: the remainder of the current
// Latin-hypercube block (refreshed when exhausted).
func (t *LatinSearch) ProposeBatch(rng *rand.Rand, max int) []confspace.Config {
	if len(t.pending) == 0 {
		t.pending = t.Space.LatinHypercube(rng, t.Block)
	}
	n := len(t.pending)
	if max >= 1 && max < n {
		n = max
	}
	out := t.pending[:n:n]
	t.pending = t.pending[n:]
	return out
}

// ProposeBatch implements BatchProposer: the unevaluated remainder of
// the current generation. The generation boundary is preserved — the
// next breeding step still sees every fitness — so the evolution matches
// sequential Next/Observe exactly.
func (t *Genetic) ProposeBatch(rng *rand.Rand, max int) []confspace.Config {
	if t.population == nil {
		t.seed(rng)
	}
	if t.cursor >= len(t.population) {
		t.breed(rng)
	}
	end := len(t.population)
	if max >= 1 && t.cursor+max < end {
		end = t.cursor + max
	}
	return t.population[t.cursor:end:end]
}

// ProposeBatch implements BatchProposer: the remainder of the current
// divide-and-diverge round. Rounds stay atomic, so bound-and-search
// decisions see the full round's observations as in sequential mode.
func (t *BestConfig) ProposeBatch(rng *rand.Rand, max int) []confspace.Config {
	if len(t.pending) == 0 {
		t.nextRound(rng)
	}
	n := len(t.pending)
	if max >= 1 && max < n {
		n = max
	}
	out := t.pending[:n:n]
	t.pending = t.pending[n:]
	return out
}
