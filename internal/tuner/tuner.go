// Package tuner implements the configuration-tuning strategies the paper
// surveys, behind one Tuner interface: uniform random search, hill
// climbing (MROnline), Bayesian optimization with expected improvement
// (CherryPick), a genetic algorithm over a performance model (DAC),
// divide-and-diverge sampling with recursive bound-and-search
// (BestConfig), regression-tree guided search (Wang et al.), tabular
// Q-learning (Bu et al.), and Ernest's analytic cloud-scaling model.
//
// A Session drives any Tuner against an Objective for a fixed execution
// budget, penalizing crashed runs the way production tuning must (a crash
// is a very bad observation, not a missing one) and recording the
// best-so-far trajectory that the paper's efficiency arguments (§IV-C)
// are about.
package tuner

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"time"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/obs"
)

// Measurement is the outcome of executing one configuration.
type Measurement struct {
	// Runtime is the observed runtime in seconds (time wasted, for failed
	// runs).
	Runtime float64
	// Cost is the dollar cost of the execution.
	Cost float64
	// Failed marks crashed executions.
	Failed bool
}

// Objective executes a configuration and reports the measurement. In the
// experiments it wraps the Spark simulator; in a real deployment it would
// wrap a cluster submission.
type Objective func(cfg confspace.Config) Measurement

// Trial is one evaluated configuration within a session.
type Trial struct {
	Index  int
	Config confspace.Config
	Measurement
	// Objective is the penalized runtime the tuner optimizes: equal to
	// Runtime for successful runs, a large penalty for failures.
	Objective float64
}

// Tuner proposes configurations sequentially and learns from outcomes.
// Implementations are stateful and single-session; create a fresh value
// per tuning session.
type Tuner interface {
	// Name identifies the strategy (e.g. "bayesopt").
	Name() string
	// Next proposes the next configuration to evaluate.
	Next(rng *rand.Rand) confspace.Config
	// Observe reports the outcome of a proposed configuration.
	Observe(t Trial)
}

// Stopper is an optional Tuner extension: a tuner that can decide it has
// converged (e.g. CherryPick stops when the best expected improvement
// falls below 10% of the current optimum). Run consults it after every
// observation.
type Stopper interface {
	// ShouldStop reports that further evaluations are unlikely to pay off.
	ShouldStop() bool
}

// ErrNoBudget is returned by Run for non-positive budgets.
var ErrNoBudget = errors.New("tuner: budget must be positive")

// Result reports a completed tuning session.
type Result struct {
	// Best is the best successful trial (zero Trial if every run failed).
	Best Trial
	// Found reports whether any run succeeded.
	Found bool
	// Trials holds every evaluation in order.
	Trials []Trial
	// BestSoFar[i] is the best successful runtime observed in trials
	// [0..i]; +Inf until the first success.
	BestSoFar []float64
	// TotalCost sums the dollar cost of all trials (the tuning bill the
	// paper wants bounded and offloaded, §IV-C).
	TotalCost float64
	// Stopped reports that the tuner converged (Stopper) before the
	// budget was exhausted.
	Stopped bool
}

// ExecutionsToReach returns the number of executions needed before the
// best-so-far runtime dropped to at most target, or -1 if never.
func (r Result) ExecutionsToReach(target float64) int {
	for i, b := range r.BestSoFar {
		if b <= target {
			return i + 1
		}
	}
	return -1
}

// Scorer maps a successful measurement to the scalar a session minimizes.
// It lets the same tuners optimize the §IV-D trade-offs: runtime when the
// user needs results fast, dollar cost when they can wait, or any blend.
type Scorer func(m Measurement) float64

// MinimizeRuntime is the default scorer.
func MinimizeRuntime(m Measurement) float64 { return m.Runtime }

// MinimizeCost optimizes the per-run dollar bill.
func MinimizeCost(m Measurement) float64 { return m.Cost }

// MinimizeCostDelay returns a scorer for the weighted blend
// cost + dollarPerHour/3600 × runtime — the "how much is my waiting time
// worth" objective.
func MinimizeCostDelay(dollarPerHour float64) Scorer {
	return func(m Measurement) float64 { return m.Cost + dollarPerHour/3600*m.Runtime }
}

// TrialHook observes completed trials as a session runs: it is called
// after the tuner's own Observe with the finished trial and the best
// objective seen so far in the session (+Inf until the first success).
// Hooks run synchronously on the session goroutine — they must be cheap
// and non-blocking (the telemetry layer publishes to a drop-not-block
// event bus).
type TrialHook func(t Trial, bestSoFar float64)

type trialHookCtxKey struct{}

// WithTrialHook returns ctx carrying a hook that RunForContext invokes
// for every completed trial. Layered callers (core's session telemetry)
// use this to watch trials without owning the tuning loop.
func WithTrialHook(ctx context.Context, h TrialHook) context.Context {
	return context.WithValue(ctx, trialHookCtxKey{}, h)
}

// TrialHookFrom returns the hook carried by ctx, or nil.
func TrialHookFrom(ctx context.Context) TrialHook {
	if h, ok := ctx.Value(trialHookCtxKey{}).(TrialHook); ok {
		return h
	}
	return nil
}

// Run drives t against obj for exactly budget evaluations, minimizing
// runtime.
func Run(t Tuner, obj Objective, budget int, rng *rand.Rand) (Result, error) {
	return RunFor(t, obj, budget, rng, MinimizeRuntime)
}

// RunContext is Run with cancellation: the session stops between
// evaluations when ctx is done, returning the partial result alongside
// the context's error.
func RunContext(ctx context.Context, t Tuner, obj Objective, budget int, rng *rand.Rand) (Result, error) {
	return RunForContext(ctx, t, obj, budget, rng, MinimizeRuntime)
}

// RunFor drives t against obj for exactly budget evaluations, minimizing
// the given scorer. Result.Best and the trajectory are in scorer units.
func RunFor(t Tuner, obj Objective, budget int, rng *rand.Rand, score Scorer) (Result, error) {
	return RunForContext(context.Background(), t, obj, budget, rng, score)
}

// RunForContext is RunFor with cancellation. Cancellation is checked
// before every evaluation — a single execution is never interrupted, so
// each recorded trial is a complete observation.
//
// Sessions are instrumented: trial counts and wall times feed the
// tuner_* metric families, and when the context (or the ambient trace)
// carries an obs.Trace, every iteration records a span carrying the
// penalized objective, the best cost so far, and — for acquisition-timed
// tuners like BayesOpt — the time spent in the EI argmax.
func RunForContext(ctx context.Context, t Tuner, obj Objective, budget int, rng *rand.Rand, score Scorer) (Result, error) {
	if budget <= 0 {
		return Result{}, ErrNoBudget
	}
	if score == nil {
		score = MinimizeRuntime
	}
	name := t.Name()
	tr := obs.FromContext(ctx)
	hook := TrialHookFrom(ctx)
	mSessions.With(name).Inc()
	trials := mTrials.With(name)
	res := Result{BestSoFar: make([]float64, 0, budget)}
	best := math.Inf(1)
	worstSuccess := 0.0
	for i := 0; i < budget; i++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		sp := tr.Start(name, "tuner")
		start := time.Now()
		cfg := t.Next(rng)
		m := obj(cfg)
		trial := Trial{Index: i, Config: cfg, Measurement: m}
		var v float64
		if !m.Failed {
			v = score(m)
		}
		trial.Objective = penalizeScore(m, v, worstSuccess)
		res.Trials = append(res.Trials, trial)
		res.TotalCost += m.Cost
		if !m.Failed {
			if v > worstSuccess {
				worstSuccess = v
			}
			if v < best {
				best = v
				res.Best = trial
				res.Found = true
			}
		}
		res.BestSoFar = append(res.BestSoFar, best)
		t.Observe(trial)
		if hook != nil {
			hook(trial, best)
		}
		mTrialSeconds.Observe(time.Since(start).Seconds())
		trials.Inc()
		sp.Num("trial", float64(i))
		sp.Num("objective", trial.Objective)
		sp.Num("best_so_far", best)
		if m.Failed {
			sp.Str("failed", "true")
		}
		if at, ok := t.(acqTimed); ok {
			sp.Num("acq_s", at.lastAcqSeconds())
		}
		sp.End()
		if s, ok := t.(Stopper); ok && s.ShouldStop() {
			res.Stopped = true
			break
		}
	}
	return res, nil
}

// penalizeScore converts a measurement into the scalar tuners minimize:
// failed runs count as several times the worst success seen so far, so
// models learn to avoid crash regions without the penalty dwarfing all
// structure.
func penalizeScore(m Measurement, score, worstSuccess float64) float64 {
	if !m.Failed {
		return score
	}
	p := 3 * worstSuccess
	if p < 3600 {
		p = 3600
	}
	return p
}
