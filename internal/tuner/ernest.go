package tuner

import (
	"errors"
	"fmt"
	"math"

	"seamlesstune/internal/learn"
)

// ErnestModel is Venkataraman et al.'s analytic cloud-scaling model:
// runtime(m, s) = w0 + w1·s/m + w2·log m + w3·m, with non-negative
// weights fit by NNLS on a few small-scale training runs. It predicts how
// a job scales with machine count, which is what stage 1 of the tuning
// pipeline (Fig. 1) needs to size a cluster.
//
// The paper notes Ernest adapts poorly to workloads without the
// machine-learning job structure (§II-A); the model inherits that: it has
// no terms for memory cliffs or shuffle contention.
type ErnestModel struct {
	weights []float64
}

// ErnestSample is one training observation: runtime at a machine count
// and input-scale fraction.
type ErnestSample struct {
	Machines float64
	Scale    float64 // input fraction in (0, 1]
	Runtime  float64
}

// ErrTooFewSamples is returned when fewer samples than model terms are
// provided.
var ErrTooFewSamples = errors.New("tuner: ernest needs at least 4 samples")

// FitErnest fits the model by non-negative least squares.
func FitErnest(samples []ErnestSample) (*ErnestModel, error) {
	if len(samples) < 4 {
		return nil, fmt.Errorf("%w: got %d", ErrTooFewSamples, len(samples))
	}
	a := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		a[i] = learn.ErnestFeatures(s.Machines, s.Scale)
		y[i] = s.Runtime
	}
	w, err := learn.NNLS(a, y, 0)
	if err != nil {
		return nil, err
	}
	return &ErnestModel{weights: w}, nil
}

// Predict returns the modelled runtime at the given machine count and
// input scale.
func (m *ErnestModel) Predict(machines, scale float64) float64 {
	f := learn.ErnestFeatures(machines, scale)
	sum := 0.0
	for i, w := range m.weights {
		if i < len(f) {
			sum += w * f[i]
		}
	}
	return sum
}

// BestMachines returns the machine count in [lo, hi] minimizing predicted
// runtime at full scale, and that predicted runtime.
func (m *ErnestModel) BestMachines(lo, hi int) (int, float64) {
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	best, bestT := lo, math.Inf(1)
	for n := lo; n <= hi; n++ {
		if t := m.Predict(float64(n), 1); t < bestT {
			best, bestT = n, t
		}
	}
	return best, bestT
}

// BestMachinesUnderBudget returns the machine count minimizing predicted
// runtime subject to a cost bound: pricePerMachineHour·machines·runtime
// must not exceed budgetUSD. It returns ok=false when no count satisfies
// the bound.
func (m *ErnestModel) BestMachinesUnderBudget(lo, hi int, pricePerMachineHour, budgetUSD float64) (int, float64, bool) {
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	best, bestT, ok := 0, math.Inf(1), false
	for n := lo; n <= hi; n++ {
		t := m.Predict(float64(n), 1)
		cost := pricePerMachineHour * float64(n) * t / 3600
		if cost <= budgetUSD && t < bestT {
			best, bestT, ok = n, t, true
		}
	}
	return best, bestT, ok
}

// Weights returns a copy of the fitted weights [w0, w1, w2, w3].
func (m *ErnestModel) Weights() []float64 {
	return append([]float64(nil), m.weights...)
}
