package tuner

import (
	"fmt"
	"testing"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/stat"
)

// traceBayesOpt runs a full BayesOpt search and returns every proposed
// configuration rendered to a canonical string, so two runs can be
// compared byte for byte.
func traceBayesOpt(t *testing.T, seed int64, iters int) []string {
	t.Helper()
	s := benchSpace(t)
	obj := bowl(s)
	bo := NewBayesOpt(s)
	bo.Candidates = 120
	rng := stat.NewRNG(seed)
	trace := make([]string, 0, iters)
	for i := 0; i < iters; i++ {
		cfg := bo.Next(rng)
		trace = append(trace, fmt.Sprintf("%v|%.17g", s.Encode(cfg), bo.lastMaxEI))
		m := obj(cfg)
		bo.Observe(Trial{Config: cfg, Objective: m.Runtime})
	}
	return trace
}

// The parallel acquisition path must be byte-identical to single-threaded
// execution: workers fill disjoint ranges and the argmax is a sequential
// scan, so worker count can never change the proposed configuration.
func TestBayesOptParallelAcquisitionDeterministic(t *testing.T) {
	orig := eiWorkers
	defer func() { eiWorkers = orig }()
	for _, seed := range []int64{1, 7, 42} {
		eiWorkers = 1
		serial := traceBayesOpt(t, seed, 14)
		for _, w := range []int{2, 8, 64} {
			eiWorkers = w
			got := traceBayesOpt(t, seed, 14)
			if len(got) != len(serial) {
				t.Fatalf("seed %d workers %d: trace length %d != %d", seed, w, len(got), len(serial))
			}
			for i := range serial {
				if got[i] != serial[i] {
					t.Errorf("seed %d workers %d iter %d:\n  parallel %s\n  serial   %s",
						seed, w, i, got[i], serial[i])
				}
			}
		}
	}
}

// The incremental refit path must propose exactly what a from-scratch
// hyperparameter sweep would: force full refits by discarding the
// surrogate before every step and compare traces.
func TestBayesOptIncrementalRefitMatchesFromScratch(t *testing.T) {
	s := benchSpace(t)
	obj := bowl(s)
	run := func(resetModel bool) []string {
		bo := NewBayesOpt(s)
		bo.Candidates = 120
		rng := stat.NewRNG(3)
		var trace []string
		for i := 0; i < 14; i++ {
			if resetModel {
				bo.model = nil
				if len(bo.xs) > 0 {
					bo.dirty = true
				}
			}
			cfg := bo.Next(rng)
			trace = append(trace, fmt.Sprintf("%v", s.Encode(cfg)))
			m := obj(cfg)
			bo.Observe(Trial{Config: cfg, Objective: m.Runtime})
		}
		return trace
	}
	inc, scratch := run(false), run(true)
	for i := range scratch {
		if inc[i] != scratch[i] {
			t.Errorf("iter %d: incremental %s != from-scratch %s", i, inc[i], scratch[i])
		}
	}
}

// Reused acquisition buffers must not corrupt previously returned
// configurations across Next calls.
func TestBayesOptReturnedConfigsSurviveBufferReuse(t *testing.T) {
	s := benchSpace(t)
	obj := bowl(s)
	bo := NewBayesOpt(s)
	bo.Candidates = 60
	rng := stat.NewRNG(9)
	var cfgs []confspace.Config
	var snaps []string
	for i := 0; i < 10; i++ {
		cfg := bo.Next(rng)
		cfgs = append(cfgs, cfg)
		snaps = append(snaps, fmt.Sprintf("%v", s.Encode(cfg)))
		bo.Observe(Trial{Config: cfg, Objective: obj(cfg).Runtime})
	}
	for i, cfg := range cfgs {
		if got := fmt.Sprintf("%v", s.Encode(cfg)); got != snaps[i] {
			t.Errorf("config from iteration %d mutated by later Next calls: %s != %s", i, got, snaps[i])
		}
	}
}
