package tuner

import (
	"math"
	"math/rand"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/learn"
)

// QLearn adapts Bu et al.'s reinforcement-learning configuration tuner:
// the agent walks the space by single-parameter increase/decrease actions,
// the state is the current runtime's band relative to the best seen, and
// the reward is the relative runtime change. It was designed for small
// spaces (8 parameters, ~25 executions) and degrades in larger ones —
// exactly the scaling limitation §II-B points out.
type QLearn struct {
	Space *confspace.Space
	// Step is the unit-cube move per action (default 0.15).
	Step float64
	// Bands is the number of runtime-band states (default 5).
	Bands int

	agent    *learn.QLearner
	current  confspace.Config
	lastRun  float64
	best     float64
	state    int
	action   int
	started  bool
	proposed confspace.Config
}

var _ Tuner = (*QLearn)(nil)

// NewQLearn returns a Q-learning tuner over space.
func NewQLearn(space *confspace.Space) *QLearn {
	return &QLearn{Space: space, best: math.Inf(1)}
}

// Name implements Tuner.
func (*QLearn) Name() string { return "qlearn" }

func (t *QLearn) bands() int {
	if t.Bands > 0 {
		return t.Bands
	}
	return 5
}

func (t *QLearn) step() float64 {
	if t.Step > 0 {
		return t.Step
	}
	return 0.15
}

// actions: 2 per parameter (decrease, increase).
func (t *QLearn) numActions() int { return 2 * t.Space.Dim() }

// Next implements Tuner.
func (t *QLearn) Next(rng *rand.Rand) confspace.Config {
	if !t.started {
		t.agent = learn.NewQLearner(t.bands(), t.numActions(), 0.4, 0.6, 0.25)
		t.current = t.Space.Default()
		t.proposed = t.current
		t.started = true
		return t.proposed
	}
	t.action = t.agent.Choose(t.state, rng)
	t.proposed = t.apply(t.current, t.action, rng)
	return t.proposed
}

// apply performs one action: move parameter (action/2) down or up by the
// step in unit coordinates (flipping booleans, rotating categoricals).
func (t *QLearn) apply(cfg confspace.Config, action int, rng *rand.Rand) confspace.Config {
	params := t.Space.Params()
	p := params[(action/2)%len(params)]
	up := action%2 == 1
	out := cfg.Clone()
	switch p.Kind {
	case confspace.KindBool:
		if out[p.Name] >= 0.5 {
			out[p.Name] = 0
		} else {
			out[p.Name] = 1
		}
	case confspace.KindCategorical:
		n := float64(len(p.Choices))
		if up {
			out[p.Name] = math.Mod(out[p.Name]+1, n)
		} else {
			out[p.Name] = math.Mod(out[p.Name]-1+n, n)
		}
	default:
		u := p.Unit(out[p.Name])
		if up {
			u += t.step()
		} else {
			u -= t.step()
		}
		out[p.Name] = p.FromUnit(u)
		if out[p.Name] == cfg[p.Name] && p.Kind == confspace.KindInt {
			// Force movement on coarse integer grids.
			if up && out[p.Name] < p.Max {
				out[p.Name]++
			} else if !up && out[p.Name] > p.Min {
				out[p.Name]--
			}
		}
	}
	return t.Space.Clamp(out)
}

// Observe implements Tuner.
func (t *QLearn) Observe(tr Trial) {
	if t.lastRun == 0 {
		// First observation establishes the baseline.
		t.lastRun = tr.Objective
		t.best = tr.Objective
		t.current = tr.Config.Clone()
		t.state = t.bandOf(tr.Objective)
		return
	}
	reward := (t.lastRun - tr.Objective) / math.Max(t.lastRun, 1e-9)
	next := t.bandOf(tr.Objective)
	t.agent.Update(t.state, t.action, reward, next)
	t.state = next
	// Greedy walk: move only on improvement (Bu et al. keep the better
	// configuration as the new state).
	if tr.Objective <= t.lastRun {
		t.current = tr.Config.Clone()
		t.lastRun = tr.Objective
	}
	if tr.Objective < t.best {
		t.best = tr.Objective
	}
}

// bandOf maps a runtime to a state band by its ratio to the best seen.
func (t *QLearn) bandOf(runtime float64) int {
	if math.IsInf(t.best, 1) || t.best <= 0 {
		return 0
	}
	ratio := runtime / t.best
	switch {
	case ratio <= 1.05:
		return 0
	case ratio <= 1.25:
		return 1
	case ratio <= 1.6:
		return 2
	case ratio <= 2.5:
		return 3
	default:
		return t.bands() - 1
	}
}
