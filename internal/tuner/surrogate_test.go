package tuner

import (
	"fmt"
	"strings"
	"testing"

	"seamlesstune/internal/stat"
	"seamlesstune/internal/surrogate"
)

// goldenBayesOpt holds full proposal traces captured from the tuner
// before the surrogate interface existed (hard-wired HyperFitter/GP),
// over benchSpace+bowl with Candidates=120. Each line is the unit-cube
// encoding of the proposed configuration and the observed objective at
// %.17g. The default "gp" surrogate path must reproduce them bit for
// bit — the redesign's central compatibility guarantee.
var goldenBayesOpt = map[int64][]string{
	5: {
		"[0.993128522293382 0.9526448084757466 0.5555555555555556 0.8041938028685156 0 0.5]|40.503104399001096",
		"[0.26794827649917613 0.48964730378407223 0.8412698412698413 0.5420594094785864 1 0.5]|27.508336245264807",
		"[0.5065397490756834 0.2334223852556935 0 0.1000628168772989 1 1]|40.887721360035869",
		"[0.3374323070854277 0.5870616381017345 0.8888888888888888 0.6161261364691936 1 0.5]|26.358342364508648",
		"[0.5662657095007283 0.4673795751246907 0.9841269841269841 0.7999875488838754 1 0.5]|20.030678517942704",
		"[0.6550378881110078 0.07592591220449219 0.8888888888888888 0.9251047758523424 1 0.5]|21.583077513234681",
		"[0.9515427571512163 0.30470704889885725 0.8253968253968254 0.7885194646918876 1 0.5]|19.557024673728279",
		"[0.9895588036220956 0.14213101138225717 0.9047619047619048 0.8839074390286423 1 0]|23.326926584544143",
		"[0.86181071087544 0.4426385614922588 0.9047619047619048 0.6763870886036912 1 1]|15.861541980884482",
		"[0.9347958141728067 0.1795102276584027 0.8253968253968254 0.44704043099213814 1 1]|19.706235451336482",
		"[0.9283448521489462 0.8489987779927309 0.8571428571428571 0.16713214306318747 1 1]|35.474383612053984",
		"[0.8999645453640177 0.3583458662078888 0.9682539682539683 0.8377408778077543 1 1]|17.40421507462559",
		"[0.8148433928275418 0.09039312845207102 0.8412698412698413 0.7190604287910642 1 1]|15.376132545284168",
		"[0.05898369525286837 0.08739273394420904 0.38095238095238093 0.9344423736213604 1 1]|32.971075232191211",
		"[0.814815526374595 0.22843319702298745 0.9365079365079365 0.9415124357021477 1 1]|17.768139699081612",
		"[0.7992541590911723 0.33592789872238915 0.8095238095238095 0.7946060606030104 1 1]|14.45225214746389",
	},
	11: {
		"[0.03049248833369245 0.9729356901346278 0.8888888888888888 0.9949058382560598 1 1]|53.584171965597292",
		"[0.9386569741722158 0.03802299894958164 0.015873015873015872 0.664435955882704 1 0]|34.771310392061494",
		"[0.6016431686247223 0.594932380655622 0.4126984126984127 0.04598972784105184 0 0.5]|32.871256805511166",
		"[0.6236402387462009 0.4071649522582321 0.2222222222222222 0.1000628168772989 0 0.5]|32.278386683942017",
		"[0.9750114144959804 0.4768993583338994 0.30158730158730157 0.2982089773214771 0 0]|31.230425118195118",
		"[0.048823019193938104 0.029424246215706183 0.2857142857142857 0.024275000206044693 0 0]|51.248158612126183",
		"[0.923638405345824 0.7287849816466448 0.14285714285714285 0.19890248896839435 0 0]|41.797863873463818",
		"[0.7415273290373866 0.4890096330140934 0.3968253968253968 0.40469857345210597 0 0]|25.340014657103822",
		"[0.9621257075049217 0.5115019510578629 0.5238095238095238 0.6068467876347979 0 0]|24.499153738214638",
		"[0.860464902122449 0.355194287393993 0.4444444444444444 0.489466393528871 0 0]|23.09218159780627",
		"[0.6777081476911627 0.061118254609760635 0.47619047619047616 0.7583341471627724 0 0]|21.146397850010217",
		"[0.6592064093079275 0.21299590453735065 0.6666666666666666 0.7378438466679554 0 0]|20.427784191295054",
		"[0.43730820545032517 0.45217370447841576 0.9523809523809523 0.820209569485878 0 0]|26.998359788590513",
		"[0.8024662250863395 0.20898110252423374 0.7142857142857143 0.8856674778337662 0 0.5]|23.416324956694766",
		"[0.8250277183653079 0.09842672691962667 0.7142857142857143 0.5286342454487274 0 0]|25.129568447981633",
		"[0.6584167258048041 0.6891484416880086 0.015873015873015872 0.9949058382560598 0 0]|44.335928993995111",
	},
}

// The default (and explicit "gp") surrogate path must be bit-identical
// to the pre-interface tuner.
func TestBayesOptDefaultPathMatchesPreInterfaceGolden(t *testing.T) {
	for _, kind := range []string{"", "gp"} {
		for seed, want := range goldenBayesOpt {
			s := benchSpace(t)
			obj := bowl(s)
			bo := NewBayesOpt(s)
			bo.Candidates = 120
			bo.Surrogate = kind
			// SurrogateSeed must be inert for the exact GP: derive one the
			// way layered callers do and expect no trace change.
			bo.SurrogateSeed = stat.DeriveSeed(seed, "surrogate")
			rng := stat.NewRNG(seed)
			for i, w := range want {
				cfg := bo.Next(rng)
				m := obj(cfg)
				got := fmt.Sprintf("%v|%.17g", s.Encode(cfg), m.Runtime)
				if got != w {
					t.Fatalf("surrogate %q seed %d iter %d:\n  got  %s\n  want %s", kind, seed, i, got, w)
				}
				bo.Observe(Trial{Index: i, Config: cfg, Measurement: m, Objective: m.Runtime})
			}
		}
	}
}

// traceBayesOptSurrogate runs a full search with the named surrogate and
// returns the canonical per-iteration trace.
func traceBayesOptSurrogate(t *testing.T, kind string, seed int64, iters int) []string {
	t.Helper()
	s := benchSpace(t)
	obj := bowl(s)
	bo := NewBayesOpt(s)
	bo.Candidates = 120
	bo.Surrogate = kind
	bo.SurrogateSeed = stat.DeriveSeed(seed, "surrogate")
	rng := stat.NewRNG(seed)
	trace := make([]string, 0, iters)
	for i := 0; i < iters; i++ {
		cfg := bo.Next(rng)
		m := obj(cfg)
		trace = append(trace, fmt.Sprintf("%v|%.17g", s.Encode(cfg), m.Runtime))
		bo.Observe(Trial{Index: i, Config: cfg, Measurement: m, Objective: m.Runtime})
	}
	return trace
}

// Stochastic surrogates must be pure functions of (seed, data): reruns
// and different acquisition worker counts produce byte-identical traces.
func TestBayesOptSurrogatesDeterministicAcrossRerunsAndWorkers(t *testing.T) {
	orig := eiWorkers
	defer func() { eiWorkers = orig }()
	for _, kind := range []string{"rffgp", "forest"} {
		eiWorkers = 1
		base := traceBayesOptSurrogate(t, kind, 7, 12)
		rerun := traceBayesOptSurrogate(t, kind, 7, 12)
		for i := range base {
			if base[i] != rerun[i] {
				t.Fatalf("%s rerun iter %d: %s != %s", kind, i, rerun[i], base[i])
			}
		}
		for _, w := range []int{2, 8, 64} {
			eiWorkers = w
			got := traceBayesOptSurrogate(t, kind, 7, 12)
			for i := range base {
				if got[i] != base[i] {
					t.Fatalf("%s workers %d iter %d: %s != %s", kind, w, i, got[i], base[i])
				}
			}
		}
	}
}

// Different surrogate seeds must actually change the stochastic
// backends' trajectories (the seed is load-bearing, not decorative).
func TestBayesOptSurrogateSeedMatters(t *testing.T) {
	for _, kind := range []string{"rffgp", "forest"} {
		s := benchSpace(t)
		obj := bowl(s)
		run := func(sseed int64) string {
			bo := NewBayesOpt(s)
			bo.Candidates = 120
			bo.Surrogate = kind
			bo.SurrogateSeed = sseed
			rng := stat.NewRNG(3)
			var b strings.Builder
			for i := 0; i < 12; i++ {
				cfg := bo.Next(rng)
				m := obj(cfg)
				fmt.Fprintf(&b, "%v\n", s.Encode(cfg))
				bo.Observe(Trial{Index: i, Config: cfg, Measurement: m, Objective: m.Runtime})
			}
			return b.String()
		}
		if run(1) == run(2) {
			t.Errorf("%s: traces identical under different surrogate seeds", kind)
		}
	}
}

// Every backend must actually optimize: after a modest budget the best
// observed objective should land deep in the bowl, far below the ~35-40
// a typical random draw scores. The runs are fully seeded, so the
// assertion is deterministic.
func TestBayesOptSurrogatesOptimizeBowl(t *testing.T) {
	for _, kind := range surrogate.Names() {
		s := benchSpace(t)
		obj := bowl(s)
		bo := NewBayesOpt(s)
		bo.Candidates = 200
		bo.Surrogate = kind
		bo.SurrogateSeed = stat.DeriveSeed(1, "surrogate")
		res, err := Run(bo, obj, 24, stat.NewRNG(1))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !res.Found {
			t.Fatalf("%s: no successful trial", kind)
		}
		if res.Best.Objective > 22 {
			t.Errorf("%s: best objective %.3f, want well under a typical random draw (~35)",
				kind, res.Best.Objective)
		}
	}
}

// An unknown surrogate name must not wedge the tuner: proposals degrade
// to random draws and the session still completes.
func TestBayesOptUnknownSurrogateDegradesToRandom(t *testing.T) {
	s := benchSpace(t)
	obj := bowl(s)
	bo := NewBayesOpt(s)
	bo.Candidates = 50
	bo.Surrogate = "bogus"
	res, err := Run(bo, obj, 10, stat.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || len(res.Trials) != 10 {
		t.Fatalf("degraded session incomplete: found=%v trials=%d", res.Found, len(res.Trials))
	}
	if _, _, ok := bo.ModelPredict(res.Best.Config); ok {
		t.Error("ModelPredict reported a posterior despite an unknown surrogate")
	}
}
