// Package gp implements Gaussian-process regression for configuration
// tuning: squared-exponential and Matérn-5/2 kernels (the latter is what
// CherryPick uses for cloud configuration search), Duvenaud-style additive
// kernels for interpretability (paper §V-A), marginal-likelihood
// hyperparameter fitting, and the expected-improvement / UCB acquisition
// functions Bayesian-optimization tuners need.
//
// Inputs are expected in unit-cube encoding (confspace.Space.Encode).
package gp

import (
	"math"
)

// Kernel is a positive-definite covariance function over unit-cube points.
type Kernel interface {
	// Eval returns k(x, y).
	Eval(x, y []float64) float64
}

// SE is the squared-exponential (RBF) kernel with a shared length scale.
type SE struct {
	Variance    float64
	LengthScale float64
}

var _ Kernel = SE{}

// Eval implements Kernel.
func (k SE) Eval(x, y []float64) float64 {
	return k.evalSq(sqDist(x, y))
}

// evalSq implements sqDistKernel: SE covariance as a function of squared
// distance alone, so a precomputed distance matrix can be reused across
// every (length scale, noise) combination of a hyperparameter grid.
func (k SE) evalSq(d2 float64) float64 {
	l := k.LengthScale
	if l <= 0 {
		l = 0.5
	}
	return k.variance() * math.Exp(-d2/(2*l*l))
}

func (k SE) variance() float64 {
	if k.Variance <= 0 {
		return 1
	}
	return k.Variance
}

// Matern52 is the Matérn kernel with ν = 5/2 — CherryPick's choice,
// because configuration-response surfaces are less smooth than the SE
// kernel assumes.
type Matern52 struct {
	Variance    float64
	LengthScale float64
}

var _ Kernel = Matern52{}

// Eval implements Kernel.
func (k Matern52) Eval(x, y []float64) float64 {
	return k.evalSq(sqDist(x, y))
}

// evalSq implements sqDistKernel.
func (k Matern52) evalSq(d2 float64) float64 {
	l := k.LengthScale
	if l <= 0 {
		l = 0.5
	}
	v := k.Variance
	if v <= 0 {
		v = 1
	}
	r := math.Sqrt(d2) / l
	s5 := math.Sqrt(5) * r
	return v * (1 + s5 + 5*r*r/3) * math.Exp(-s5)
}

// sqDistKernel is implemented by stationary kernels whose covariance
// depends only on the squared distance between points. The fast fit path
// computes the pairwise distance matrix once per training set and reuses
// it across the whole hyperparameter grid through this interface.
type sqDistKernel interface {
	Kernel
	evalSq(d2 float64) float64
}

var (
	_ sqDistKernel = SE{}
	_ sqDistKernel = Matern52{}
)

// AdditiveSE is a first-order additive kernel (Duvenaud et al.):
// k(x,y) = Σ_d v_d · exp(-(x_d-y_d)²/(2·l_d²)). Because each dimension
// contributes an separately-weighted term, the fitted per-dimension
// variances v_d expose how much each configuration parameter influences
// the response — the interpretability the paper asks for in §V-A.
type AdditiveSE struct {
	Variances    []float64
	LengthScales []float64
}

var _ Kernel = (*AdditiveSE)(nil)

// NewAdditiveSE returns an additive kernel over dim dimensions with unit
// variances and length scale 0.3.
func NewAdditiveSE(dim int) *AdditiveSE {
	k := &AdditiveSE{
		Variances:    make([]float64, dim),
		LengthScales: make([]float64, dim),
	}
	for d := 0; d < dim; d++ {
		k.Variances[d] = 1.0 / float64(dim)
		k.LengthScales[d] = 0.3
	}
	return k
}

// Eval implements Kernel.
func (k *AdditiveSE) Eval(x, y []float64) float64 {
	sum := 0.0
	n := len(k.Variances)
	if len(x) < n {
		n = len(x)
	}
	if len(y) < n {
		n = len(y)
	}
	for d := 0; d < n; d++ {
		l := k.LengthScales[d]
		if l <= 0 {
			l = 0.3
		}
		diff := x[d] - y[d]
		sum += k.Variances[d] * math.Exp(-diff*diff/(2*l*l))
	}
	return sum
}

// Clone returns a deep copy. The coordinate sweeps in FitAdditive mutate
// one shared kernel in place; fitted GPs snapshot a clone so a captured
// best candidate cannot be invalidated by later mutations.
func (k *AdditiveSE) Clone() *AdditiveSE {
	return &AdditiveSE{
		Variances:    append([]float64(nil), k.Variances...),
		LengthScales: append([]float64(nil), k.LengthScales...),
	}
}

// cloneKernel snapshots a kernel for use by a fitted model. Value kernels
// (SE, Matern52) are already immutable copies; pointer kernels are deep
// copied.
func cloneKernel(k Kernel) Kernel {
	if a, ok := k.(*AdditiveSE); ok {
		return a.Clone()
	}
	return k
}

// kernelsEqual reports whether two kernels have identical parameters. It
// is deliberately conservative: unknown kernel types compare unequal, which
// only disables fast-path reuse, never correctness.
func kernelsEqual(a, b Kernel) bool {
	switch ka := a.(type) {
	case SE:
		kb, ok := b.(SE)
		return ok && ka == kb
	case Matern52:
		kb, ok := b.(Matern52)
		return ok && ka == kb
	case *AdditiveSE:
		kb, ok := b.(*AdditiveSE)
		return ok && floatsEqual(ka.Variances, kb.Variances) && floatsEqual(ka.LengthScales, kb.LengthScales)
	default:
		return false
	}
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// Sensitivity returns the normalized per-dimension variance shares, the
// interpretable output of the additive decomposition. Shares sum to 1
// (or are all zero for a degenerate kernel).
func (k *AdditiveSE) Sensitivity() []float64 {
	out := make([]float64, len(k.Variances))
	total := 0.0
	for _, v := range k.Variances {
		total += v
	}
	if total <= 0 {
		return out
	}
	for d, v := range k.Variances {
		out[d] = v / total
	}
	return out
}

// SensitivityOn returns normalized per-dimension *functional* variance
// shares evaluated on a sample: each component's contribution is its
// kernel variance scaled by how much the component actually varies over
// the data, v_d · (1 − mean k_d(x_i, x_j)/v_d). A dimension fitted with a
// huge length scale (a near-constant component) scores ~0 even if its
// variance parameter is large — a sharper influence measure than raw
// variances.
func (k *AdditiveSE) SensitivityOn(xs [][]float64) []float64 {
	dim := len(k.Variances)
	out := make([]float64, dim)
	if len(xs) < 2 {
		return k.Sensitivity()
	}
	total := 0.0
	for d := 0; d < dim; d++ {
		l := k.LengthScales[d]
		if l <= 0 {
			l = 0.3
		}
		sum, n := 0.0, 0
		for i := 0; i < len(xs); i++ {
			if d >= len(xs[i]) {
				continue
			}
			for j := i + 1; j < len(xs); j++ {
				diff := xs[i][d] - xs[j][d]
				sum += math.Exp(-diff * diff / (2 * l * l))
				n++
			}
		}
		if n == 0 {
			continue
		}
		wiggle := 1 - sum/float64(n)
		out[d] = k.Variances[d] * wiggle
		total += out[d]
	}
	if total <= 0 {
		return out
	}
	for d := range out {
		out[d] /= total
	}
	return out
}

func sqDist(x, y []float64) float64 {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		d := x[i] - y[i]
		sum += d * d
	}
	return sum
}
