package gp

import (
	"math"
	"testing"

	"seamlesstune/internal/linalg"
	"seamlesstune/internal/stat"
)

// naiveFit is the retained reference implementation of GP fitting: build
// the kernel matrix entry by entry with Kernel.Eval and refactorize from
// scratch. The optimized paths (distance-cache fits, incremental extends)
// are pinned against it.
func naiveFit(kernel Kernel, noise float64, xs [][]float64, ys []float64) (*GP, error) {
	g := New(kernel, noise)
	n := len(xs)
	own := make([][]float64, n)
	for i, x := range xs {
		own[i] = append([]float64(nil), x...)
	}
	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := kernel.Eval(own[i], own[j])
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	if err := g.fitPrebuilt(own, ys, k); err != nil {
		return nil, err
	}
	return g, nil
}

func sample(seed int64, n, dim int) ([][]float64, []float64) {
	r := stat.NewRNG(seed)
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := make([]float64, dim)
		for d := range x {
			x[d] = r.Float64()
		}
		xs[i] = x
		ys[i] = 20*math.Sin(3*x[0]) + 5*x[dim-1] + r.NormFloat64()
	}
	return xs, ys
}

const tol = 1e-9

func TestFitMatchesNaiveReference(t *testing.T) {
	xs, ys := sample(1, 40, 3)
	for _, k := range []Kernel{
		SE{Variance: 1, LengthScale: 0.4},
		Matern52{Variance: 1, LengthScale: 0.4},
	} {
		fast := New(k, 0.1)
		if err := fast.Fit(xs, ys); err != nil {
			t.Fatal(err)
		}
		ref, err := naiveFit(k, 0.1, xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fast.lml-ref.lml) > tol {
			t.Errorf("%T: lml %v != naive %v", k, fast.lml, ref.lml)
		}
		q := []float64{0.3, 0.6, 0.9}
		fm, fs := fast.Predict(q)
		rm, rs := ref.Predict(q)
		if math.Abs(fm-rm) > tol || math.Abs(fs-rs) > tol {
			t.Errorf("%T: Predict (%v,%v) != naive (%v,%v)", k, fm, fs, rm, rs)
		}
	}
}

// Property: refitting with appended rows via the incremental fast path
// equals a from-scratch fit of the full sample.
func TestFitExtendFastPathMatchesFullRefit(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		xs, ys := sample(seed, 50, 4)
		k := Matern52{Variance: 1, LengthScale: 0.3}

		inc := New(k, 0.08)
		if err := inc.Fit(xs[:35], ys[:35]); err != nil {
			t.Fatal(err)
		}
		// Grow in two uneven steps to exercise multi-row extension.
		for _, cut := range []int{41, 50} {
			if err := inc.Fit(xs[:cut], ys[:cut]); err != nil {
				t.Fatal(err)
			}
		}
		full := New(k, 0.08)
		if err := full.Fit(xs, ys); err != nil {
			t.Fatal(err)
		}
		if inc.N() != full.N() {
			t.Fatalf("seed %d: inc has %d points, full %d", seed, inc.N(), full.N())
		}
		if math.Abs(inc.lml-full.lml) > tol {
			t.Errorf("seed %d: incremental lml %v != full %v", seed, inc.lml, full.lml)
		}
		r := stat.NewRNG(seed + 100)
		for i := 0; i < 20; i++ {
			q := []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}
			im, is := inc.Predict(q)
			fm, fs := full.Predict(q)
			if math.Abs(im-fm) > tol || math.Abs(is-fs) > tol {
				t.Fatalf("seed %d: Predict diverges: (%v,%v) vs (%v,%v)", seed, im, is, fm, fs)
			}
		}
	}
}

func TestFitExtendRejectsChangedPrefixOrKernel(t *testing.T) {
	xs, ys := sample(7, 20, 2)
	g := New(SE{Variance: 1, LengthScale: 0.3}, 0.1)
	if err := g.Fit(xs[:10], ys[:10]); err != nil {
		t.Fatal(err)
	}
	// Changed prefix: full refit must still produce a consistent model.
	changed := make([][]float64, 12)
	copy(changed, xs[:12])
	changed[0] = []float64{0.123, 0.456}
	if err := g.Fit(changed, ys[:12]); err != nil {
		t.Fatal(err)
	}
	ref, err := naiveFit(SE{Variance: 1, LengthScale: 0.3}, 0.1, changed, ys[:12])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.lml-ref.lml) > tol {
		t.Errorf("refit after prefix change: lml %v != %v", g.lml, ref.lml)
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	xs, ys := sample(11, 45, 4)
	for _, k := range []Kernel{
		SE{Variance: 1, LengthScale: 0.25},
		Matern52{Variance: 1, LengthScale: 0.25},
		NewAdditiveSE(4),
	} {
		g := New(k, 0.1)
		if err := g.Fit(xs, ys); err != nil {
			t.Fatal(err)
		}
		qs, _ := sample(12, 30, 4)
		means, stds := g.PredictBatch(qs)
		if len(means) != len(qs) || len(stds) != len(qs) {
			t.Fatalf("batch sizes %d/%d, want %d", len(means), len(stds), len(qs))
		}
		for j, q := range qs {
			m, s := g.Predict(q)
			if math.Abs(means[j]-m) > tol || math.Abs(stds[j]-s) > tol {
				t.Fatalf("%T query %d: batch (%v,%v) != single (%v,%v)", k, j, means[j], stds[j], m, s)
			}
		}
	}
}

func TestPredictBatchUnfitted(t *testing.T) {
	g := New(SE{}, 0.1)
	means, stds := g.PredictBatch([][]float64{{0.1}, {0.9}})
	for j := range means {
		if means[j] != 0 || !math.IsInf(stds[j], 1) {
			t.Errorf("unfitted batch predict = (%v, %v)", means[j], stds[j])
		}
	}
}

// HyperFitter's incremental grid refits must match one-shot FitWithHypers
// exactly, across several appended batches.
func TestHyperFitterMatchesOneShot(t *testing.T) {
	xs, ys := sample(21, 60, 3)
	for _, kind := range []KernelKind{KindSE, KindMatern52} {
		h := NewHyperFitter(kind)
		for _, cut := range []int{20, 21, 35, 60} {
			inc, err := h.Fit(xs[:cut], ys[:cut])
			if err != nil {
				t.Fatal(err)
			}
			ref, err := FitWithHypers(kind, xs[:cut], ys[:cut])
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(inc.lml-ref.lml) > tol {
				t.Errorf("kind %v cut %d: incremental lml %v != one-shot %v", kind, cut, inc.lml, ref.lml)
			}
			if !kernelsEqual(inc.fitKernel, ref.fitKernel) || inc.noise != ref.noise {
				t.Errorf("kind %v cut %d: selected hypers differ: %+v/%v vs %+v/%v",
					kind, cut, inc.fitKernel, inc.noise, ref.fitKernel, ref.noise)
			}
			q := []float64{0.2, 0.5, 0.8}
			im, is := inc.Predict(q)
			rm, rs := ref.Predict(q)
			if math.Abs(im-rm) > tol || math.Abs(is-rs) > tol {
				t.Errorf("kind %v cut %d: Predict (%v,%v) != (%v,%v)", kind, cut, im, is, rm, rs)
			}
		}
		// A non-appending change resets the fitter rather than corrupting it.
		perturbed := make([][]float64, 30)
		for i := range perturbed {
			perturbed[i] = append([]float64(nil), xs[i]...)
		}
		perturbed[3][0] = 0.999
		inc, err := h.Fit(perturbed, ys[:30])
		if err != nil {
			t.Fatal(err)
		}
		ref, err := FitWithHypers(kind, perturbed, ys[:30])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(inc.lml-ref.lml) > tol {
			t.Errorf("kind %v after reset: lml %v != %v", kind, inc.lml, ref.lml)
		}
	}
}

// Regression for the FitAdditive aliasing bug: a fitted GP used to share
// the live *AdditiveSE being mutated by the coordinate sweep, so a
// captured fit's predictions changed under it. Fits now snapshot the
// kernel.
func TestFittedGPUnaffectedByLaterKernelMutation(t *testing.T) {
	xs, ys := sample(31, 30, 3)
	k := NewAdditiveSE(3)
	g := New(k, 0.1)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	q := []float64{0.4, 0.1, 0.7}
	m0, s0 := g.Predict(q)
	// Sweep-style mutation of the shared kernel after the fit.
	k.Variances[0] *= 50
	k.LengthScales[1] = 9
	m1, s1 := g.Predict(q)
	if m0 != m1 || s0 != s1 {
		t.Errorf("prediction changed under kernel mutation: (%v,%v) -> (%v,%v)", m0, s0, m1, s1)
	}
	bm, bs := g.PredictBatch([][]float64{q})
	if bm[0] != m0 || bs[0] != s0 {
		t.Errorf("batch prediction uses mutated kernel: (%v,%v)", bm[0], bs[0])
	}
}

func TestFitAdditiveMatchesNaiveSweep(t *testing.T) {
	// The cached-term sweep must reproduce the naive implementation's
	// selected hyperparameters and likelihood on a small instance.
	xs, ys := sample(41, 25, 3)
	g, err := FitAdditive(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := naiveFitAdditive(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.lml-ref.lml) > tol {
		t.Errorf("additive lml %v != naive %v", g.lml, ref.lml)
	}
	gk := g.Kernel().(*AdditiveSE)
	rk := ref.Kernel().(*AdditiveSE)
	if !floatsEqual(gk.Variances, rk.Variances) || !floatsEqual(gk.LengthScales, rk.LengthScales) {
		t.Errorf("additive hypers diverge: %+v vs %+v", gk, rk)
	}
}

// naiveFitAdditive is the retained reference coordinate sweep: every
// candidate rebuilds the kernel matrix from scratch through Kernel.Eval.
func naiveFitAdditive(xs [][]float64, ys []float64, sweeps int) (*GP, error) {
	dim := len(xs[0])
	kernel := NewAdditiveSE(dim)
	for d := range kernel.Variances {
		kernel.Variances[d] = 0.05 / float64(dim)
	}
	g := New(kernel, 0.1)
	fit := func() error {
		own := make([][]float64, len(xs))
		for i, x := range xs {
			own[i] = append([]float64(nil), x...)
		}
		n := len(own)
		k := linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := kernel.Eval(own[i], own[j])
				k.Set(i, j, v)
				k.Set(j, i, v)
			}
		}
		return g.fitPrebuilt(own, ys, k)
	}
	if err := fit(); err != nil {
		return nil, err
	}
	if sweeps <= 0 {
		sweeps = 2
	}
	vScales := []float64{0.05, 0.2, 0.5, 1, 2, 5, 20}
	lengths := []float64{0.15, 0.3, 0.6, 1.5, 4}
	for s := 0; s < sweeps; s++ {
		for d := 0; d < dim; d++ {
			bestV, bestL, bestLML := kernel.Variances[d], kernel.LengthScales[d], g.lml
			origV := kernel.Variances[d]
			for _, m := range vScales {
				for _, l := range lengths {
					kernel.Variances[d] = origV * m
					kernel.LengthScales[d] = l
					if err := fit(); err != nil {
						continue
					}
					if g.lml > bestLML {
						bestLML = g.lml
						bestV, bestL = kernel.Variances[d], kernel.LengthScales[d]
					}
				}
			}
			kernel.Variances[d], kernel.LengthScales[d] = bestV, bestL
			if err := fit(); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}
