package gp

import (
	"fmt"

	"seamlesstune/internal/stat"
)

// AdditiveModel is a first-order additive regression model
// f(x) = μ + Σ_d f_d(x_d), fit by backfitting one-dimensional GP
// smoothers. It realizes the interpretability goal of §V-A concretely:
// each component's variance over the data is the parameter's main-effect
// influence, with no way for one dimension's term to absorb another's
// structure (the degeneracy a jointly-fit additive kernel suffers from).
type AdditiveModel struct {
	mean      float64
	smoothers []*GP
	// shifts[d] centres component d so the intercept stays in mean.
	shifts []float64
	// compVar[d] is the variance of f_d over the training sample.
	compVar []float64
}

// FitAdditiveModel backfits an additive model: in each round and for each
// dimension, a 1-D GP smoother is re-fit to the partial residuals of all
// other components. rounds <= 0 uses 3.
func FitAdditiveModel(xs [][]float64, ys []float64, rounds int) (*AdditiveModel, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("%w: %d xs, %d ys", ErrNoData, len(xs), len(ys))
	}
	if rounds <= 0 {
		rounds = 3
	}
	n := len(xs)
	dim := len(xs[0])
	m := &AdditiveModel{
		mean:      stat.Mean(ys),
		smoothers: make([]*GP, dim),
		shifts:    make([]float64, dim),
		compVar:   make([]float64, dim),
	}
	// fitted[d][i] is component d's current value at sample i.
	fitted := make([][]float64, dim)
	for d := range fitted {
		fitted[d] = make([]float64, n)
	}
	resid := make([]float64, n)

	cols := make([][][]float64, dim)
	for d := 0; d < dim; d++ {
		col := make([][]float64, n)
		for i := range col {
			v := 0.0
			if d < len(xs[i]) {
				v = xs[i][d]
			}
			col[i] = []float64{v}
		}
		cols[d] = col
	}

	for r := 0; r < rounds; r++ {
		for d := 0; d < dim; d++ {
			// Partial residual: y - mean - sum of other components.
			for i := range resid {
				resid[i] = ys[i] - m.mean
				for od := 0; od < dim; od++ {
					if od != d {
						resid[i] -= fitted[od][i]
					}
				}
			}
			g, err := FitWithHypers(KindSE, cols[d], resid)
			if err != nil {
				return nil, err
			}
			m.smoothers[d] = g
			// Centre the component so the intercept stays in mean.
			var w stat.Welford
			for i := range fitted[d] {
				pred, _ := g.Predict(cols[d][i])
				fitted[d][i] = pred
				w.Add(pred)
			}
			shift := w.Mean()
			m.shifts[d] = shift
			for i := range fitted[d] {
				fitted[d][i] -= shift
			}
		}
	}
	for d := 0; d < dim; d++ {
		var w stat.Welford
		for i := 0; i < n; i++ {
			w.Add(fitted[d][i])
		}
		m.compVar[d] = w.Variance()
	}
	return m, nil
}

// Predict evaluates the additive model at x.
func (m *AdditiveModel) Predict(x []float64) float64 {
	out := m.mean
	for d, g := range m.smoothers {
		if g == nil {
			continue
		}
		v := 0.0
		if d < len(x) {
			v = x[d]
		}
		pred, _ := g.Predict([]float64{v})
		out += pred - m.shifts[d]
	}
	return out
}

// Sensitivity returns normalized main-effect shares: each component's
// variance over the training sample, as a fraction of the total.
func (m *AdditiveModel) Sensitivity() []float64 {
	out := make([]float64, len(m.compVar))
	total := 0.0
	for _, v := range m.compVar {
		total += v
	}
	if total <= 0 {
		return out
	}
	for d, v := range m.compVar {
		out[d] = v / total
	}
	return out
}
