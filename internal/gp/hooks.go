package gp

import (
	"sync/atomic"
	"time"
)

// Hooks receives timing callbacks from the GP entry points, so an
// observability layer can meter model fitting and prediction without gp
// depending on it. Callbacks run synchronously on the calling goroutine
// and must be cheap and concurrency-safe.
type Hooks struct {
	// Fit is called after every model fit (GP.Fit, HyperFitter.Fit,
	// FitAdditive) with the training-set size and the wall time spent.
	Fit func(points int, d time.Duration)
	// Predict is called after every posterior query (GP.Predict,
	// GP.PredictBatch) with the number of query points and the wall time.
	Predict func(points int, d time.Duration)
}

// hooksPtr holds the installed hooks; nil means disabled, in which case
// the entry points skip timing entirely.
var hooksPtr atomic.Pointer[Hooks]

// SetHooks installs (or, with the zero Hooks, removes) the process-wide
// timing hooks. Safe to call concurrently with model use.
func SetHooks(h Hooks) {
	if h.Fit == nil && h.Predict == nil {
		hooksPtr.Store(nil)
		return
	}
	hooksPtr.Store(&h)
}

// Fit trains the GP on (xs, ys); see fit for semantics.
func (g *GP) Fit(xs [][]float64, ys []float64) error {
	h := hooksPtr.Load()
	if h == nil || h.Fit == nil {
		return g.fit(xs, ys)
	}
	start := time.Now()
	err := g.fit(xs, ys)
	h.Fit(len(xs), time.Since(start))
	return err
}

// Predict returns the posterior at x; see predict for semantics.
func (g *GP) Predict(x []float64) (mean, std float64) {
	h := hooksPtr.Load()
	if h == nil || h.Predict == nil {
		return g.predict(x)
	}
	start := time.Now()
	mean, std = g.predict(x)
	h.Predict(1, time.Since(start))
	return mean, std
}

// PredictBatch returns the posterior at every query point; see
// predictBatch for semantics.
func (g *GP) PredictBatch(xs [][]float64) (means, stds []float64) {
	h := hooksPtr.Load()
	if h == nil || h.Predict == nil {
		return g.predictBatch(xs)
	}
	start := time.Now()
	means, stds = g.predictBatch(xs)
	h.Predict(len(xs), time.Since(start))
	return means, stds
}

// FitAdditive fits an additive-SE GP with a coordinate sweep; see
// fitAdditive for semantics.
func FitAdditive(xs [][]float64, ys []float64, sweeps int) (*GP, error) {
	h := hooksPtr.Load()
	if h == nil || h.Fit == nil {
		return fitAdditive(xs, ys, sweeps)
	}
	start := time.Now()
	g, err := fitAdditive(xs, ys, sweeps)
	h.Fit(len(xs), time.Since(start))
	return g, err
}

// Fit selects hyperparameters over the accumulated sample; see fit for
// semantics.
func (h *HyperFitter) Fit(xs [][]float64, ys []float64) (*GP, error) {
	hk := hooksPtr.Load()
	if hk == nil || hk.Fit == nil {
		return h.fit(xs, ys)
	}
	start := time.Now()
	g, err := h.fit(xs, ys)
	hk.Fit(len(xs), time.Since(start))
	return g, err
}
