package gp

import (
	"fmt"
	"math"
	"time"

	"seamlesstune/internal/linalg"
	"seamlesstune/internal/stat"
)

// RFF approximates a stationary-kernel GP with random Fourier features
// (Rahimi & Recht): the kernel is replaced by the inner product of D
// random cosine features, turning the O(n³) exact fit into Bayesian
// linear regression over D weights — O(n·D²) to fit, O(D²) per posterior
// query, independent of the history size n. Hyperparameters (length
// scale, noise) are selected by grid-search marginal likelihood over the
// same grid as HyperFitter, evaluated through the Woodbury identity so
// the grid sweep also never touches an n×n system.
//
// The feature frequencies are drawn once, at the first fit, from the
// kernel's spectral density (a multivariate t with 5 degrees of freedom
// for Matérn-5/2, a Gaussian for SE) using the construction seed — two
// RFFs with the same seed and data produce bit-identical posteriors.
// Successive fits that only append observations update the running
// feature Gram incrementally, so a tuning loop pays O(Δn·D²) per refit.
// Not safe for concurrent use.
type RFF struct {
	// Features is the number of random features D (default 128). Larger D
	// tracks the exact GP more closely at quadratic cost in D.
	Features int
	// LengthScales and Noises override the hyperparameter grids (defaults:
	// the shared hyperLengthScales / hyperNoises grids). Override before
	// the first Fit; equivalence tests pin both to a single value.
	LengthScales []float64
	Noises       []float64

	kind KernelKind
	seed int64

	dim int
	w0  [][]float64 // D base frequency rows at unit length scale
	ph  []float64   // D phases in [0, 2π)

	// Canonical copies of the training sample, for appended-prefix
	// detection and running target moments.
	xs          [][]float64
	ys          []float64
	sumY, sumYY float64

	// Per-length-scale sufficient statistics, accumulated row by row:
	// the feature Gram ΦᵀΦ (upper triangle), Φᵀy (raw targets) and Φᵀ1.
	stats []*rffStats

	// Selected model (grid winner of the last fit).
	li          int
	noise       float64
	yMean, yStd float64
	mu          []float64
	chol        *linalg.Cholesky
	lml         float64

	// Scratch buffers reused across rows and queries.
	dotBuf []float64
	phiBuf []float64
}

type rffStats struct {
	g  *linalg.Matrix // ΦᵀΦ, upper triangle maintained
	fy []float64      // Φᵀy in raw target units
	f1 []float64      // Φᵀ1
}

// NewRFF returns an empty random-feature approximation of the kernel
// family, with features drawn deterministically from seed at first fit.
func NewRFF(kind KernelKind, seed int64) *RFF {
	return &RFF{kind: kind, seed: seed}
}

func (r *RFF) features() int {
	if r.Features > 0 {
		return r.Features
	}
	return 128
}

func (r *RFF) lengthScales() []float64 {
	if len(r.LengthScales) > 0 {
		return r.LengthScales
	}
	return hyperLengthScales
}

func (r *RFF) noises() []float64 {
	if len(r.Noises) > 0 {
		return r.Noises
	}
	return hyperNoises
}

// drawFeatures samples the base frequencies and phases from the kernel's
// spectral density at unit length scale. For Matérn-5/2 the spectral
// measure is a multivariate t with 5 degrees of freedom, sampled as
// z·sqrt(ν/q) with z ~ N(0, I) and q ~ χ²_ν; for SE it is N(0, I).
func (r *RFF) drawFeatures(dim int) {
	d := r.features()
	rng := stat.NewRNG(r.seed)
	r.dim = dim
	r.w0 = make([][]float64, d)
	r.ph = make([]float64, d)
	for j := 0; j < d; j++ {
		w := make([]float64, dim)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		if r.kind == KindMatern52 {
			q := 0.0
			for k := 0; k < 5; k++ {
				g := rng.NormFloat64()
				q += g * g
			}
			if q < 1e-12 {
				q = 1e-12
			}
			s := math.Sqrt(5 / q)
			for i := range w {
				w[i] *= s
			}
		}
		r.w0[j] = w
		r.ph[j] = 2 * math.Pi * rng.Float64()
	}
	r.dotBuf = make([]float64, d)
	r.phiBuf = make([]float64, d)
}

// Reset drops the accumulated sample, statistics, and selected model,
// forcing the next Fit to rebuild from scratch. The drawn features
// survive — they depend only on seed and dimension.
func (r *RFF) Reset() { r.reset() }

// reset drops the accumulated sample and statistics (the drawn features
// survive — they depend only on seed and dimension).
func (r *RFF) reset() {
	r.xs, r.ys = nil, nil
	r.sumY, r.sumYY = 0, 0
	r.stats = nil
	r.chol, r.mu = nil, nil
}

// sync reconciles the canonical sample with (xs, ys): appended rows are
// kept for absorption, anything else resets the accumulated state.
func (r *RFF) sync(xs [][]float64, ys []float64) {
	appended := len(xs) >= len(r.xs)
	if appended {
		for i, prev := range r.xs {
			if r.ys[i] != ys[i] || !floatsEqual(prev, xs[i]) {
				appended = false
				break
			}
		}
	}
	if !appended {
		r.reset()
	}
}

// fit trains the approximation on (xs, ys), reusing accumulated per-row
// statistics when the sample only grew by appended rows.
func (r *RFF) fit(xs [][]float64, ys []float64) error {
	if len(xs) == 0 || len(xs) != len(ys) {
		return fmt.Errorf("%w: %d xs, %d ys", ErrNoData, len(xs), len(ys))
	}
	dim := len(xs[0])
	if r.w0 == nil || r.dim != dim {
		r.reset()
		r.drawFeatures(dim)
	}
	r.sync(xs, ys)
	if r.stats == nil {
		d := r.features()
		ls := r.lengthScales()
		r.stats = make([]*rffStats, len(ls))
		for i := range r.stats {
			r.stats[i] = &rffStats{
				g:  linalg.NewMatrix(d, d),
				fy: make([]float64, d),
				f1: make([]float64, d),
			}
		}
	}
	old := len(r.xs)
	if len(xs) == old && r.chol != nil {
		return nil // unchanged sample: the selected model is still current
	}
	for i := old; i < len(xs); i++ {
		r.absorbRow(xs[i], ys[i])
	}
	return r.selectModel()
}

// absorbRow folds one observation into every length scale's statistics.
// Full fits and incremental extensions share this single code path, so
// fitting n rows at once is bit-identical to fitting them one at a time.
func (r *RFF) absorbRow(x []float64, y float64) {
	own := append([]float64(nil), x...)
	r.xs = append(r.xs, own)
	r.ys = append(r.ys, y)
	r.sumY += y
	r.sumYY += y * y
	d := r.features()
	scale := math.Sqrt(2 / float64(d))
	dots := r.dotBuf
	for j, w := range r.w0 {
		dots[j] = linalg.Dot(w, own)
	}
	phi := r.phiBuf
	for li, l := range r.lengthScales() {
		st := r.stats[li]
		for j := range phi {
			phi[j] = scale * math.Cos(dots[j]/l+r.ph[j])
		}
		for i, pi := range phi {
			row := st.g.RowView(i)
			for j := i; j < d; j++ {
				row[j] += pi * phi[j]
			}
			st.fy[i] += pi * y
			st.f1[i] += pi
		}
	}
}

// selectModel sweeps the hyperparameter grid over the accumulated
// statistics and keeps the marginal-likelihood winner. The likelihood of
// the n observations is evaluated through the Woodbury identity, so each
// grid cell costs one D×D Cholesky — never an n×n system.
func (r *RFF) selectModel() error {
	n := len(r.xs)
	d := r.features()
	yMean := r.sumY / float64(n)
	variance := r.sumYY/float64(n) - yMean*yMean
	if variance < 0 {
		variance = 0
	}
	yStd := math.Sqrt(variance)
	if yStd <= 1e-12 {
		yStd = 1
	}
	// Standardized-target sufficient statistics shared across the grid.
	ytyN := (r.sumYY - 2*yMean*r.sumY + float64(n)*yMean*yMean) / (yStd * yStd)

	bestLML := math.Inf(-1)
	found := false
	bn := make([]float64, d)
	for li := range r.lengthScales() {
		st := r.stats[li]
		for i := 0; i < d; i++ {
			bn[i] = (st.fy[i] - yMean*st.f1[i]) / yStd
		}
		for _, nz := range r.noises() {
			a := linalg.NewMatrix(d, d)
			for i := 0; i < d; i++ {
				src := st.g.RowView(i)
				row := a.RowView(i)
				for j := i; j < d; j++ {
					row[j] = src[j]
					a.RowView(j)[i] = src[j]
				}
				row[i] += nz * nz
			}
			chol, err := linalg.NewCholesky(a)
			if err != nil {
				continue
			}
			mu, err := chol.SolveVec(bn)
			if err != nil {
				continue
			}
			resid := ytyN - linalg.Dot(bn, mu)
			if resid < 0 {
				resid = 0
			}
			// log|C| = log|A| + 2(n−D)·log σn with C = ΦΦᵀ + σn²Iₙ.
			lml := -0.5 * (resid/(nz*nz) + chol.LogDet() +
				2*float64(n-d)*math.Log(nz) + float64(n)*math.Log(2*math.Pi))
			if lml > bestLML {
				bestLML = lml
				r.li = li
				r.noise = nz
				r.mu = mu
				r.chol = chol
				r.lml = lml
				found = true
			}
		}
	}
	r.yMean, r.yStd = yMean, yStd
	if !found {
		r.chol, r.mu = nil, nil
		return fmt.Errorf("gp: no rff hyperparameter combination produced a valid fit")
	}
	return nil
}

// Fitted reports whether a fit has succeeded.
func (r *RFF) Fitted() bool { return r.chol != nil }

// N returns the number of absorbed training points.
func (r *RFF) N() int { return len(r.xs) }

// LogMarginalLikelihood returns the approximate LML of the selected model
// (0 if unfitted).
func (r *RFF) LogMarginalLikelihood() float64 { return r.lml }

// featurize writes the selected-length-scale feature vector of x into dst.
func (r *RFF) featurize(x []float64, dst []float64) {
	l := r.lengthScales()[r.li]
	scale := math.Sqrt(2 / float64(r.features()))
	for j, w := range r.w0 {
		dst[j] = scale * math.Cos(linalg.Dot(w, x)/l+r.ph[j])
	}
}

// predict returns the posterior mean and standard deviation at x in the
// original target units. An unfitted RFF predicts (0, +Inf).
func (r *RFF) predict(x []float64) (mean, std float64) {
	if !r.Fitted() {
		return 0, math.Inf(1)
	}
	phi := r.phiBuf
	r.featurize(x, phi)
	mu := linalg.Dot(phi, r.mu)
	v, err := r.chol.SolveForward(phi)
	if err != nil {
		return r.yMean, r.yStd
	}
	nv := r.noise * r.noise
	variance := nv*linalg.Dot(v, v) + nv
	return mu*r.yStd + r.yMean, math.Sqrt(variance) * r.yStd
}

// predictBatch returns the posterior at a pool of query points: one D×m
// feature block and one batched triangular solve, bit-identical to
// calling predict per point.
func (r *RFF) predictBatch(xs [][]float64) (means, stds []float64) {
	m := len(xs)
	means = make([]float64, m)
	stds = make([]float64, m)
	if !r.Fitted() {
		for j := range stds {
			stds[j] = math.Inf(1)
		}
		return means, stds
	}
	d := r.features()
	phis := linalg.NewMatrix(d, m)
	col := r.phiBuf
	for j, x := range xs {
		r.featurize(x, col)
		for i, p := range col {
			phis.RowView(i)[j] = p
		}
	}
	for i, w := range r.mu {
		row := phis.RowView(i)
		for j, p := range row {
			means[j] += p * w
		}
	}
	v, err := r.chol.SolveForwardBatch(phis)
	if err != nil {
		for j := range means {
			means[j], stds[j] = r.yMean, r.yStd
		}
		return means, stds
	}
	ss := make([]float64, m)
	for i := 0; i < d; i++ {
		row := v.RowView(i)
		for j, w := range row {
			ss[j] += w * w
		}
	}
	nv := r.noise * r.noise
	for j := range means {
		variance := nv*ss[j] + nv
		means[j] = means[j]*r.yStd + r.yMean
		stds[j] = math.Sqrt(variance) * r.yStd
	}
	return means, stds
}

// Fit trains the approximation on (xs, ys); see fit for semantics. Like
// the exact entry points, fits report through the installed Hooks.
func (r *RFF) Fit(xs [][]float64, ys []float64) error {
	h := hooksPtr.Load()
	if h == nil || h.Fit == nil {
		return r.fit(xs, ys)
	}
	start := time.Now()
	err := r.fit(xs, ys)
	h.Fit(len(xs), time.Since(start))
	return err
}

// Predict returns the posterior at x; see predict for semantics.
func (r *RFF) Predict(x []float64) (mean, std float64) {
	h := hooksPtr.Load()
	if h == nil || h.Predict == nil {
		return r.predict(x)
	}
	start := time.Now()
	mean, std = r.predict(x)
	h.Predict(1, time.Since(start))
	return mean, std
}

// PredictBatch returns the posterior at every query point; see
// predictBatch for semantics.
func (r *RFF) PredictBatch(xs [][]float64) (means, stds []float64) {
	h := hooksPtr.Load()
	if h == nil || h.Predict == nil {
		return r.predictBatch(xs)
	}
	start := time.Now()
	means, stds = r.predictBatch(xs)
	h.Predict(len(xs), time.Since(start))
	return means, stds
}
