package gp

import (
	"errors"
	"math"
	"testing"

	"seamlesstune/internal/stat"
)

func TestKernelsBasicProperties(t *testing.T) {
	kernels := []Kernel{
		SE{Variance: 1, LengthScale: 0.3},
		Matern52{Variance: 1, LengthScale: 0.3},
		NewAdditiveSE(3),
	}
	r := stat.NewRNG(1)
	for _, k := range kernels {
		for i := 0; i < 100; i++ {
			x := []float64{r.Float64(), r.Float64(), r.Float64()}
			y := []float64{r.Float64(), r.Float64(), r.Float64()}
			kxy, kyx := k.Eval(x, y), k.Eval(y, x)
			if math.Abs(kxy-kyx) > 1e-12 {
				t.Fatalf("%T not symmetric", k)
			}
			if k.Eval(x, x) < kxy-1e-12 {
				t.Fatalf("%T: k(x,x) < k(x,y)", k)
			}
			if kxy < 0 {
				t.Fatalf("%T negative covariance", k)
			}
		}
	}
}

func TestKernelDecay(t *testing.T) {
	// Covariance decreases with distance.
	for _, k := range []Kernel{SE{Variance: 1, LengthScale: 0.3}, Matern52{Variance: 1, LengthScale: 0.3}} {
		near := k.Eval([]float64{0.5}, []float64{0.55})
		far := k.Eval([]float64{0.5}, []float64{0.95})
		if near <= far {
			t.Errorf("%T: near %v <= far %v", k, near, far)
		}
	}
}

func TestZeroValueKernelDefaults(t *testing.T) {
	// Zero-valued fields fall back to usable defaults instead of NaN.
	if v := (SE{}).Eval([]float64{0.1}, []float64{0.2}); math.IsNaN(v) || v <= 0 {
		t.Errorf("zero SE eval = %v", v)
	}
	if v := (Matern52{}).Eval([]float64{0.1}, []float64{0.2}); math.IsNaN(v) || v <= 0 {
		t.Errorf("zero Matern52 eval = %v", v)
	}
}

func TestGPInterpolates(t *testing.T) {
	xs := [][]float64{{0.1}, {0.3}, {0.5}, {0.7}, {0.9}}
	ys := []float64{10, 14, 20, 26, 30}
	g := New(SE{Variance: 1, LengthScale: 0.3}, 0.01)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		mean, _ := g.Predict(x)
		if math.Abs(mean-ys[i]) > 0.5 {
			t.Errorf("Predict(%v) = %v, want ~%v", x, mean, ys[i])
		}
	}
	// Uncertainty grows away from data.
	_, sNear := g.Predict([]float64{0.5})
	_, sFar := g.Predict([]float64{2.5})
	if sFar <= sNear {
		t.Errorf("std far %v <= std near %v", sFar, sNear)
	}
}

func TestGPUnfitted(t *testing.T) {
	g := New(SE{}, 0.1)
	if g.Fitted() {
		t.Fatal("unfitted GP claims fitted")
	}
	mean, std := g.Predict([]float64{0.5})
	if mean != 0 || !math.IsInf(std, 1) {
		t.Errorf("unfitted Predict = (%v, %v)", mean, std)
	}
}

func TestGPFitErrors(t *testing.T) {
	g := New(SE{}, 0.1)
	if err := g.Fit(nil, nil); !errors.Is(err, ErrNoData) {
		t.Errorf("empty fit err = %v", err)
	}
	if err := g.Fit([][]float64{{1}}, []float64{1, 2}); !errors.Is(err, ErrNoData) {
		t.Errorf("mismatched fit err = %v", err)
	}
}

func TestGPConstantTargets(t *testing.T) {
	xs := [][]float64{{0.1}, {0.5}, {0.9}}
	ys := []float64{7, 7, 7}
	g := New(SE{Variance: 1, LengthScale: 0.3}, 0.05)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	mean, _ := g.Predict([]float64{0.5})
	if math.Abs(mean-7) > 0.1 {
		t.Errorf("constant-target mean = %v, want ~7", mean)
	}
}

func TestFitWithHypersRecoverstructure(t *testing.T) {
	// Noisy samples of a smooth 2-d function.
	r := stat.NewRNG(2)
	f := func(x []float64) float64 { return 100 + 30*math.Sin(3*x[0]) + 20*x[1]*x[1] }
	var xs [][]float64
	var ys []float64
	for i := 0; i < 60; i++ {
		x := []float64{r.Float64(), r.Float64()}
		xs = append(xs, x)
		ys = append(ys, f(x)+r.NormFloat64())
	}
	for _, kind := range []KernelKind{KindSE, KindMatern52} {
		g, err := FitWithHypers(kind, xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		// Held-out accuracy.
		var se, base float64
		mean := stat.Mean(ys)
		for i := 0; i < 50; i++ {
			x := []float64{r.Float64(), r.Float64()}
			pred, _ := g.Predict(x)
			se += (pred - f(x)) * (pred - f(x))
			base += (mean - f(x)) * (mean - f(x))
		}
		if se >= base*0.3 {
			t.Errorf("kind %v: GP MSE %v not clearly below baseline %v", kind, se/50, base/50)
		}
	}
}

func TestFitWithHypersErrors(t *testing.T) {
	if _, err := FitWithHypers(KindSE, nil, nil); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v", err)
	}
}

func TestFitAdditiveIdentifiesInfluentialDims(t *testing.T) {
	// Target depends strongly on dim 0, weakly on dim 1, not on dim 2.
	r := stat.NewRNG(3)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 80; i++ {
		x := []float64{r.Float64(), r.Float64(), r.Float64()}
		xs = append(xs, x)
		ys = append(ys, 50*math.Sin(4*x[0])+5*x[1]+0*x[2]+0.5*r.NormFloat64())
	}
	g, err := FitAdditive(xs, ys, 3)
	if err != nil {
		t.Fatal(err)
	}
	k, ok := g.Kernel().(*AdditiveSE)
	if !ok {
		t.Fatalf("kernel type %T", g.Kernel())
	}
	sens := k.Sensitivity()
	if len(sens) != 3 {
		t.Fatalf("sensitivity dims = %d", len(sens))
	}
	if sens[0] <= sens[2] {
		t.Errorf("influential dim 0 (%v) not above inert dim 2 (%v); full: %v", sens[0], sens[2], sens)
	}
	total := sens[0] + sens[1] + sens[2]
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("sensitivities sum to %v", total)
	}
}

func TestAdditiveSensitivityDegenerate(t *testing.T) {
	k := &AdditiveSE{Variances: []float64{0, 0}, LengthScales: []float64{1, 1}}
	s := k.Sensitivity()
	if s[0] != 0 || s[1] != 0 {
		t.Errorf("degenerate sensitivity = %v", s)
	}
}

func TestExpectedImprovement(t *testing.T) {
	// Better mean and more uncertainty both increase EI.
	base := ExpectedImprovement(10, 1, 10)
	better := ExpectedImprovement(8, 1, 10)
	if better <= base {
		t.Errorf("EI(better mean) %v <= EI(equal) %v", better, base)
	}
	narrow := ExpectedImprovement(10, 0.1, 10)
	wide := ExpectedImprovement(10, 3, 10)
	if wide <= narrow {
		t.Errorf("EI(wide) %v <= EI(narrow) %v", wide, narrow)
	}
	// Deterministic cases.
	if got := ExpectedImprovement(8, 0, 10); got != 2 {
		t.Errorf("EI zero-std improving = %v, want 2", got)
	}
	if got := ExpectedImprovement(12, 0, 10); got != 0 {
		t.Errorf("EI zero-std worse = %v, want 0", got)
	}
}

func TestLCB(t *testing.T) {
	if got := LCB(10, 2, 1.5); got != 7 {
		t.Errorf("LCB = %v, want 7", got)
	}
}

func TestGPDimensionMismatchTolerated(t *testing.T) {
	// Shorter query vectors are evaluated over the common prefix rather
	// than panicking.
	g := New(SE{Variance: 1, LengthScale: 0.3}, 0.05)
	if err := g.Fit([][]float64{{0.1, 0.2}, {0.8, 0.9}}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	mean, std := g.Predict([]float64{0.5})
	if math.IsNaN(mean) || math.IsNaN(std) {
		t.Error("prefix query produced NaN")
	}
}
