package gp

import (
	"math"
	"testing"

	"seamlesstune/internal/stat"
)

// rffSample draws a smooth test function over the unit cube: a sum of a
// quadratic bowl and a low-frequency sinusoid, with a little seeded noise.
func rffSample(seed int64, n, dim int) (xs [][]float64, ys []float64) {
	rng := stat.NewRNG(seed)
	for i := 0; i < n; i++ {
		x := make([]float64, dim)
		for d := range x {
			x[d] = rng.Float64()
		}
		y := 0.0
		for d, v := range x {
			y += (v - 0.5) * (v - 0.5)
			y += 0.3 * math.Sin(2*math.Pi*v*float64(d+1)/float64(dim))
		}
		y += 0.05 * rng.NormFloat64()
		xs = append(xs, x)
		ys = append(ys, y)
	}
	return xs, ys
}

// With hyperparameters pinned to a single grid cell and a generous
// feature count, the RFF posterior must track the exact GP posterior
// closely on a small sample — the approximation-quality contract the
// surrogate tier rests on.
func TestRFFMatchesExactGPPosterior(t *testing.T) {
	const (
		n, dim = 40, 3
		l, nz  = 0.4, 0.15
	)
	xs, ys := rffSample(1, n, dim)
	exact := New(Matern52{Variance: 1, LengthScale: l}, nz)
	if err := exact.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	rff := NewRFF(KindMatern52, 99)
	rff.Features = 2048
	rff.LengthScales = []float64{l}
	rff.Noises = []float64{nz}
	if err := rff.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	qs, _ := rffSample(2, 60, dim)
	var meanErr, stdErr, meanScale float64
	for _, q := range qs {
		em, es := exact.Predict(q)
		am, as := rff.Predict(q)
		meanErr += (em - am) * (em - am)
		stdErr += (es - as) * (es - as)
		meanScale += em * em
	}
	meanRMS := math.Sqrt(meanErr / float64(len(qs)))
	stdRMS := math.Sqrt(stdErr / float64(len(qs)))
	// The targets span roughly ±1; demand posterior means within a few
	// percent of that scale and stds similarly close.
	if meanRMS > 0.08 {
		t.Errorf("posterior mean RMS divergence %.4f vs exact GP (scale %.3f)",
			meanRMS, math.Sqrt(meanScale/float64(len(qs))))
	}
	if stdRMS > 0.08 {
		t.Errorf("posterior std RMS divergence %.4f vs exact GP", stdRMS)
	}
}

// Incremental extension shares the absorption code path with full fits,
// so growing the sample row by row must be bit-identical to one fit over
// the final sample — including the grid-selected hyperparameters.
func TestRFFIncrementalExtendMatchesFromScratch(t *testing.T) {
	xs, ys := rffSample(3, 50, 4)
	inc := NewRFF(KindMatern52, 7)
	for i := 10; i <= len(xs); i += 5 {
		if err := inc.Fit(xs[:i], ys[:i]); err != nil {
			t.Fatal(err)
		}
	}
	scratch := NewRFF(KindMatern52, 7)
	if err := scratch.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	qs, _ := rffSample(4, 25, 4)
	im, is := inc.PredictBatch(qs)
	sm, ss := scratch.PredictBatch(qs)
	for j := range qs {
		if im[j] != sm[j] || is[j] != ss[j] {
			t.Fatalf("query %d: incremental (%v, %v) != from-scratch (%v, %v)",
				j, im[j], is[j], sm[j], ss[j])
		}
	}
	if inc.LogMarginalLikelihood() != scratch.LogMarginalLikelihood() {
		t.Error("incremental LML diverges from from-scratch LML")
	}
}

// A Reset rebuilds the accumulated statistics from scratch over the same
// seed-deterministic features, so the refreshed posterior is identical
// when rows re-arrive in the same order.
func TestRFFResetRefitIdentical(t *testing.T) {
	xs, ys := rffSample(5, 30, 3)
	r := NewRFF(KindMatern52, 11)
	if err := r.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	qs, _ := rffSample(6, 10, 3)
	bm, bs := r.PredictBatch(qs)
	r.Reset()
	if r.Fitted() {
		t.Fatal("Fitted after Reset")
	}
	if err := r.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	am, as := r.PredictBatch(qs)
	for j := range qs {
		if bm[j] != am[j] || bs[j] != as[j] {
			t.Fatalf("query %d changed across Reset+Fit: (%v, %v) != (%v, %v)",
				j, am[j], as[j], bm[j], bs[j])
		}
	}
}

// Two RFFs with the same seed are bit-identical; different seeds draw
// different features and must differ.
func TestRFFSeedDeterminism(t *testing.T) {
	xs, ys := rffSample(8, 35, 3)
	qs, _ := rffSample(9, 15, 3)
	fit := func(seed int64) ([]float64, []float64) {
		r := NewRFF(KindMatern52, seed)
		if err := r.Fit(xs, ys); err != nil {
			t.Fatal(err)
		}
		return r.PredictBatch(qs)
	}
	m1, s1 := fit(42)
	m2, s2 := fit(42)
	for j := range qs {
		if m1[j] != m2[j] || s1[j] != s2[j] {
			t.Fatalf("same seed diverged at query %d", j)
		}
	}
	m3, _ := fit(43)
	same := true
	for j := range qs {
		if m1[j] != m3[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical posteriors")
	}
}

// PredictBatch must be bit-identical to per-point Predict.
func TestRFFPredictBatchMatchesPredict(t *testing.T) {
	xs, ys := rffSample(10, 30, 4)
	r := NewRFF(KindMatern52, 5)
	if err := r.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	qs, _ := rffSample(11, 20, 4)
	bm, bs := r.PredictBatch(qs)
	for j, q := range qs {
		m, s := r.Predict(q)
		if m != bm[j] || s != bs[j] {
			t.Fatalf("query %d: batch (%v, %v) != single (%v, %v)", j, bm[j], bs[j], m, s)
		}
	}
}

// Unfitted and error behavior mirrors the exact GP.
func TestRFFUnfittedAndErrors(t *testing.T) {
	r := NewRFF(KindMatern52, 1)
	if r.Fitted() {
		t.Error("zero RFF claims fitted")
	}
	if m, s := r.Predict([]float64{0.5}); m != 0 || !math.IsInf(s, 1) {
		t.Errorf("unfitted Predict = (%v, %v), want (0, +Inf)", m, s)
	}
	if err := r.Fit(nil, nil); err == nil {
		t.Error("empty fit did not error")
	}
	if err := r.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched fit did not error")
	}
}
