package gp

import (
	"errors"
	"math"
	"testing"

	"seamlesstune/internal/stat"
)

// additiveSample draws noisy samples of f(x) = 40·sin(3x0) + 10·x1 + 0·x2.
func additiveSample(n int, seed int64) ([][]float64, []float64) {
	r := stat.NewRNG(seed)
	var xs [][]float64
	var ys []float64
	for i := 0; i < n; i++ {
		x := []float64{r.Float64(), r.Float64(), r.Float64()}
		xs = append(xs, x)
		ys = append(ys, 40*math.Sin(3*x[0])+10*x[1]+0.3*r.NormFloat64())
	}
	return xs, ys
}

func TestFitAdditiveModelPredicts(t *testing.T) {
	xs, ys := additiveSample(100, 1)
	m, err := FitAdditiveModel(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Held-out error well below the variance baseline.
	r := stat.NewRNG(2)
	var se, base float64
	mean := stat.Mean(ys)
	truth := func(x []float64) float64 { return 40*math.Sin(3*x[0]) + 10*x[1] }
	for i := 0; i < 80; i++ {
		x := []float64{r.Float64(), r.Float64(), r.Float64()}
		p := m.Predict(x)
		se += (p - truth(x)) * (p - truth(x))
		base += (mean - truth(x)) * (mean - truth(x))
	}
	if se >= base*0.2 {
		t.Errorf("additive model MSE %.2f not clearly below baseline %.2f", se/80, base/80)
	}
}

func TestAdditiveModelSensitivityRanking(t *testing.T) {
	xs, ys := additiveSample(120, 3)
	m, err := FitAdditiveModel(xs, ys, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Sensitivity()
	if len(s) != 3 {
		t.Fatalf("sensitivity dims = %d", len(s))
	}
	// dim0 (strong sinusoid) > dim1 (mild linear) > dim2 (inert).
	if !(s[0] > s[1] && s[1] > s[2]) {
		t.Errorf("sensitivity ordering wrong: %v", s)
	}
	sum := s[0] + s[1] + s[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("sensitivities sum to %v", sum)
	}
}

func TestFitAdditiveModelErrors(t *testing.T) {
	if _, err := FitAdditiveModel(nil, nil, 1); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v", err)
	}
	if _, err := FitAdditiveModel([][]float64{{1}}, []float64{1, 2}, 1); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v", err)
	}
}

func TestAdditiveModelShortQueryVector(t *testing.T) {
	xs, ys := additiveSample(40, 4)
	m, err := FitAdditiveModel(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Missing trailing dimensions are treated as zero, not a panic.
	if p := m.Predict([]float64{0.5}); math.IsNaN(p) {
		t.Error("short query produced NaN")
	}
}

func TestSensitivityOnFlattensLongLengthScales(t *testing.T) {
	// A dimension fit with a huge length scale contributes almost no
	// functional variance even with a large variance parameter.
	k := &AdditiveSE{
		Variances:    []float64{1, 1},
		LengthScales: []float64{0.1, 50},
	}
	r := stat.NewRNG(5)
	var xs [][]float64
	for i := 0; i < 60; i++ {
		xs = append(xs, []float64{r.Float64(), r.Float64()})
	}
	s := k.SensitivityOn(xs)
	if s[0] <= s[1] {
		t.Errorf("short-scale dim share %v not above flat dim %v", s[0], s[1])
	}
	if s[1] > 0.05 {
		t.Errorf("flat dim share %v, want near zero", s[1])
	}
	// Degenerate: fewer than two points falls back to variance shares.
	fallback := k.SensitivityOn(xs[:1])
	if math.Abs(fallback[0]-0.5) > 1e-9 {
		t.Errorf("fallback shares = %v", fallback)
	}
}

func TestGPAccessors(t *testing.T) {
	g := New(SE{Variance: 1, LengthScale: 0.3}, 0.05)
	if g.N() != 0 || g.LogMarginalLikelihood() != 0 {
		t.Error("zero-state accessors wrong")
	}
	xs := [][]float64{{0.1}, {0.5}, {0.9}}
	if err := g.Fit(xs, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 {
		t.Errorf("N = %d", g.N())
	}
	if g.LogMarginalLikelihood() >= 0 {
		t.Errorf("LML = %v, want negative for 3 noisy points", g.LogMarginalLikelihood())
	}
	// Non-positive noise gets a jitter default.
	if g2 := New(SE{}, -1); g2.noise <= 0 {
		t.Error("negative noise not defaulted")
	}
}
