package gp

import (
	"errors"
	"fmt"
	"math"

	"seamlesstune/internal/linalg"
	"seamlesstune/internal/stat"
)

// ErrNoData is returned when Fit is called with an empty or mismatched
// sample.
var ErrNoData = errors.New("gp: empty or mismatched training data")

// GP is a Gaussian-process regressor. Construct with New; the zero value
// is not usable. Targets are standardized internally so kernels can assume
// zero-mean unit-variance observations.
type GP struct {
	kernel Kernel
	noise  float64

	xs    [][]float64
	yMean float64
	yStd  float64
	chol  *linalg.Cholesky
	alpha []float64
	lml   float64
}

// New returns a GP with the given kernel and observation-noise standard
// deviation (in standardized target units). Non-positive noise gets a
// small jitter.
func New(kernel Kernel, noise float64) *GP {
	if noise <= 0 {
		noise = 1e-3
	}
	return &GP{kernel: kernel, noise: noise}
}

// Kernel returns the kernel in use.
func (g *GP) Kernel() Kernel { return g.kernel }

// N returns the number of training points.
func (g *GP) N() int { return len(g.xs) }

// Fit trains the GP on (xs, ys). It copies the inputs. Fitting fails only
// on empty/mismatched data or a numerically broken kernel.
func (g *GP) Fit(xs [][]float64, ys []float64) error {
	if len(xs) == 0 || len(xs) != len(ys) {
		return fmt.Errorf("%w: %d xs, %d ys", ErrNoData, len(xs), len(ys))
	}
	n := len(xs)
	g.xs = make([][]float64, n)
	for i, x := range xs {
		g.xs[i] = append([]float64(nil), x...)
	}
	g.yMean = stat.Mean(ys)
	g.yStd = stat.Std(ys)
	if g.yStd <= 1e-12 {
		g.yStd = 1
	}
	yn := make([]float64, n)
	for i, y := range ys {
		yn[i] = (y - g.yMean) / g.yStd
	}

	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := g.kernel.Eval(g.xs[i], g.xs[j])
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	k = linalg.AddDiagonal(k, g.noise*g.noise+1e-8)
	chol, err := linalg.NewCholesky(k)
	if err != nil {
		return fmt.Errorf("gp: kernel matrix not SPD: %w", err)
	}
	alpha, err := chol.SolveVec(yn)
	if err != nil {
		return err
	}
	g.chol = chol
	g.alpha = alpha

	// Log marginal likelihood of the standardized targets.
	g.lml = -0.5*linalg.Dot(yn, alpha) - 0.5*chol.LogDet() - float64(n)/2*math.Log(2*math.Pi)
	return nil
}

// Fitted reports whether Fit has succeeded.
func (g *GP) Fitted() bool { return g.chol != nil }

// LogMarginalLikelihood returns the LML of the last Fit (0 if unfitted).
func (g *GP) LogMarginalLikelihood() float64 { return g.lml }

// Predict returns the posterior mean and standard deviation at x, in the
// original target units. An unfitted GP predicts (0, +Inf).
func (g *GP) Predict(x []float64) (mean, std float64) {
	if !g.Fitted() {
		return 0, math.Inf(1)
	}
	n := len(g.xs)
	kx := make([]float64, n)
	for i := range g.xs {
		kx[i] = g.kernel.Eval(g.xs[i], x)
	}
	mu := linalg.Dot(kx, g.alpha)
	v, err := g.chol.SolveForward(kx)
	if err != nil {
		return g.yMean, g.yStd
	}
	variance := g.kernel.Eval(x, x) + g.noise*g.noise - linalg.Dot(v, v)
	if variance < 0 {
		variance = 0
	}
	return mu*g.yStd + g.yMean, math.Sqrt(variance) * g.yStd
}

// FitWithHypers fits isotropic kernel hyperparameters (length scale,
// variance and noise) by maximizing marginal likelihood over a log-space
// grid, then trains the GP with the best combination. kind selects the
// base kernel family.
type KernelKind int

// Kernel families for FitWithHypers.
const (
	KindSE KernelKind = iota
	KindMatern52
)

// FitWithHypers selects hyperparameters by grid-search marginal
// likelihood and fits the returned GP. It tries every combination from
// small fixed grids — cheap at tuning-sample sizes (tens to hundreds of
// points).
func FitWithHypers(kind KernelKind, xs [][]float64, ys []float64) (*GP, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("%w: %d xs, %d ys", ErrNoData, len(xs), len(ys))
	}
	lengthScales := []float64{0.05, 0.1, 0.2, 0.4, 0.8, 1.6}
	noises := []float64{0.01, 0.05, 0.15, 0.4}
	var best *GP
	bestLML := math.Inf(-1)
	for _, l := range lengthScales {
		for _, nz := range noises {
			var k Kernel
			if kind == KindMatern52 {
				k = Matern52{Variance: 1, LengthScale: l}
			} else {
				k = SE{Variance: 1, LengthScale: l}
			}
			g := New(k, nz)
			if err := g.Fit(xs, ys); err != nil {
				continue
			}
			if g.lml > bestLML {
				bestLML = g.lml
				best = g
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("gp: no hyperparameter combination produced a valid fit")
	}
	return best, nil
}

// FitAdditive fits an additive-SE GP by coordinate-wise marginal-
// likelihood search over per-dimension variances, starting from uniform
// shares. It returns the fitted GP; the kernel's Sensitivity exposes the
// per-parameter influence decomposition.
func FitAdditive(xs [][]float64, ys []float64, sweeps int) (*GP, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("%w: %d xs, %d ys", ErrNoData, len(xs), len(ys))
	}
	dim := len(xs[0])
	kernel := NewAdditiveSE(dim)
	// Start deliberately underfit (tiny per-dimension variances): the
	// marginal likelihood then rewards growing exactly the dimensions
	// that explain the response, which is what makes the decomposition
	// interpretable.
	for d := range kernel.Variances {
		kernel.Variances[d] = 0.05 / float64(dim)
	}
	g := New(kernel, 0.1)
	if err := g.Fit(xs, ys); err != nil {
		return nil, err
	}
	if sweeps <= 0 {
		sweeps = 2
	}
	vScales := []float64{0.05, 0.2, 0.5, 1, 2, 5, 20}
	lengths := []float64{0.15, 0.3, 0.6, 1.5, 4}
	for s := 0; s < sweeps; s++ {
		for d := 0; d < dim; d++ {
			bestV, bestL, bestLML := kernel.Variances[d], kernel.LengthScales[d], g.lml
			origV := kernel.Variances[d]
			for _, m := range vScales {
				for _, l := range lengths {
					kernel.Variances[d] = origV * m
					kernel.LengthScales[d] = l
					if err := g.Fit(xs, ys); err != nil {
						continue
					}
					if g.lml > bestLML {
						bestLML = g.lml
						bestV, bestL = kernel.Variances[d], kernel.LengthScales[d]
					}
				}
			}
			kernel.Variances[d], kernel.LengthScales[d] = bestV, bestL
			if err := g.Fit(xs, ys); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// ExpectedImprovement returns EI for minimization at a point with
// posterior (mean, std), relative to the best observed value. Zero std
// yields max(best-mean, 0).
func ExpectedImprovement(mean, std, best float64) float64 {
	if std <= 0 {
		if mean < best {
			return best - mean
		}
		return 0
	}
	z := (best - mean) / std
	return (best-mean)*stat.NormalCDF(z) + std*stat.NormalPDF(z)
}

// LCB returns the lower confidence bound mean - beta·std (minimization:
// smaller is more promising).
func LCB(mean, std, beta float64) float64 { return mean - beta*std }
