package gp

import (
	"errors"
	"fmt"
	"math"

	"seamlesstune/internal/linalg"
	"seamlesstune/internal/stat"
)

// ErrNoData is returned when Fit is called with an empty or mismatched
// sample.
var ErrNoData = errors.New("gp: empty or mismatched training data")

// nugget is the unconditional jitter added to the kernel diagonal on top
// of the observation noise.
const nugget = 1e-8

// GP is a Gaussian-process regressor. Construct with New; the zero value
// is not usable. Targets are standardized internally so kernels can assume
// zero-mean unit-variance observations.
type GP struct {
	kernel Kernel
	noise  float64

	xs    [][]float64
	yMean float64
	yStd  float64
	chol  *linalg.Cholesky
	alpha []float64
	lml   float64
	// fitKernel snapshots the kernel parameters of the last successful
	// Fit (a deep copy for pointer kernels). Predictions use it, so
	// mutating a shared kernel after fitting — the FitAdditive coordinate
	// sweep does exactly that — cannot invalidate a captured fit.
	fitKernel Kernel
}

// New returns a GP with the given kernel and observation-noise standard
// deviation (in standardized target units). Non-positive noise gets a
// small jitter.
func New(kernel Kernel, noise float64) *GP {
	if noise <= 0 {
		noise = 1e-3
	}
	return &GP{kernel: kernel, noise: noise}
}

// Kernel returns the kernel in use.
func (g *GP) Kernel() Kernel { return g.kernel }

// N returns the number of training points.
func (g *GP) N() int { return len(g.xs) }

// fit trains the GP on (xs, ys). It copies the inputs. Fitting fails only
// on empty/mismatched data or a numerically broken kernel.
//
// Fast path: when the kernel parameters are unchanged since the last fit
// and xs extends the previous training set by appended rows, the existing
// Cholesky factor is grown one row at a time in O(n²) per row instead of
// refactorized in O(n³). The incremental arithmetic is exactly the last
// rows of a full factorization, so the fitted model is bit-identical.
func (g *GP) fit(xs [][]float64, ys []float64) error {
	if len(xs) == 0 || len(xs) != len(ys) {
		return fmt.Errorf("%w: %d xs, %d ys", ErrNoData, len(xs), len(ys))
	}
	if g.tryExtend(xs, ys) {
		return nil
	}
	own := make([][]float64, len(xs))
	for i, x := range xs {
		own[i] = append([]float64(nil), x...)
	}
	return g.fitPrebuilt(own, ys, buildKernelMatrix(g.kernel, own))
}

// tryExtend attempts the incremental-refit fast path; it reports whether
// the fit was completed. On any internal failure the GP is left unfitted
// so a full Fit retry starts clean.
func (g *GP) tryExtend(xs [][]float64, ys []float64) bool {
	if g.chol == nil || len(xs) <= len(g.xs) || !kernelsEqual(g.kernel, g.fitKernel) {
		return false
	}
	for i, prev := range g.xs {
		if !floatsEqual(prev, xs[i]) {
			return false
		}
	}
	diag := g.noise*g.noise + nugget
	for r := len(g.xs); r < len(xs); r++ {
		x := append([]float64(nil), xs[r]...)
		col := make([]float64, r+1)
		for i, xi := range g.xs {
			col[i] = g.kernel.Eval(xi, x)
		}
		col[r] = g.kernel.Eval(x, x) + diag
		if err := g.chol.Extend(col); err != nil {
			// Partially extended state is unusable: drop the factor so the
			// caller's full refit (or the next Fit) rebuilds from scratch.
			g.chol = nil
			return false
		}
		g.xs = append(g.xs, x)
	}
	return g.refreshTargets(ys) == nil
}

// fitPrebuilt completes a fit from an already-built (noise-free) kernel
// matrix. It takes ownership of xs and k.
func (g *GP) fitPrebuilt(xs [][]float64, ys []float64, k *linalg.Matrix) error {
	n := len(xs)
	diag := g.noise*g.noise + nugget
	for i := 0; i < n; i++ {
		k.Add(i, i, diag)
	}
	chol, err := linalg.NewCholesky(k)
	if err != nil {
		return fmt.Errorf("gp: kernel matrix not SPD: %w", err)
	}
	g.xs = xs
	g.chol = chol
	return g.refreshTargets(ys)
}

// refreshTargets (re)standardizes the targets against the current
// factorization and recomputes alpha and the log marginal likelihood.
func (g *GP) refreshTargets(ys []float64) error {
	n := len(g.xs)
	g.yMean = stat.Mean(ys)
	g.yStd = stat.Std(ys)
	if g.yStd <= 1e-12 {
		g.yStd = 1
	}
	yn := make([]float64, n)
	for i, y := range ys {
		yn[i] = (y - g.yMean) / g.yStd
	}
	alpha, err := g.chol.SolveVec(yn)
	if err != nil {
		g.chol = nil
		return err
	}
	g.alpha = alpha
	g.fitKernel = cloneKernel(g.kernel)
	// Log marginal likelihood of the standardized targets.
	g.lml = -0.5*linalg.Dot(yn, alpha) - 0.5*g.chol.LogDet() - float64(n)/2*math.Log(2*math.Pi)
	return nil
}

// buildKernelMatrix evaluates the symmetric kernel matrix over xs,
// dispatching stationary kernels through their squared-distance form.
func buildKernelMatrix(k Kernel, xs [][]float64) *linalg.Matrix {
	n := len(xs)
	m := linalg.NewMatrix(n, n)
	if sk, ok := k.(sqDistKernel); ok {
		for i := 0; i < n; i++ {
			row := m.RowView(i)
			for j := i; j < n; j++ {
				row[j] = sk.evalSq(sqDist(xs[i], xs[j]))
			}
		}
	} else {
		for i := 0; i < n; i++ {
			row := m.RowView(i)
			for j := i; j < n; j++ {
				row[j] = k.Eval(xs[i], xs[j])
			}
		}
	}
	// Mirror the strict upper triangle.
	for i := 1; i < n; i++ {
		row := m.RowView(i)
		for j := 0; j < i; j++ {
			row[j] = m.RowView(j)[i]
		}
	}
	return m
}

// transformDistMatrix builds the kernel matrix from a precomputed pairwise
// squared-distance matrix — the 24 grid fits of FitWithHypers share one
// distance build this way.
func transformDistMatrix(sk sqDistKernel, d2 *linalg.Matrix) *linalg.Matrix {
	n := d2.Rows()
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		di := d2.RowView(i)
		row := m.RowView(i)
		for j := i; j < n; j++ {
			row[j] = sk.evalSq(di[j])
		}
	}
	for i := 1; i < n; i++ {
		row := m.RowView(i)
		for j := 0; j < i; j++ {
			row[j] = m.RowView(j)[i]
		}
	}
	return m
}

// Fitted reports whether Fit has succeeded.
func (g *GP) Fitted() bool { return g.chol != nil }

// LogMarginalLikelihood returns the LML of the last Fit (0 if unfitted).
func (g *GP) LogMarginalLikelihood() float64 { return g.lml }

// predict returns the posterior mean and standard deviation at x, in the
// original target units. An unfitted GP predicts (0, +Inf).
func (g *GP) predict(x []float64) (mean, std float64) {
	if !g.Fitted() {
		return 0, math.Inf(1)
	}
	n := len(g.xs)
	kx := make([]float64, n)
	for i := range g.xs {
		kx[i] = g.fitKernel.Eval(g.xs[i], x)
	}
	mu := linalg.Dot(kx, g.alpha)
	v, err := g.chol.SolveForward(kx)
	if err != nil {
		return g.yMean, g.yStd
	}
	variance := g.fitKernel.Eval(x, x) + g.noise*g.noise - linalg.Dot(v, v)
	if variance < 0 {
		variance = 0
	}
	return mu*g.yStd + g.yMean, math.Sqrt(variance) * g.yStd
}

// predictBatch returns the posterior means and standard deviations at a
// whole pool of query points at once: one n×m kernel block, one batched
// triangular solve. The results are bit-identical to calling Predict per
// point, at a fraction of the cost — the acquisition scoring hot path.
func (g *GP) predictBatch(xs [][]float64) (means, stds []float64) {
	m := len(xs)
	means = make([]float64, m)
	stds = make([]float64, m)
	if !g.Fitted() {
		for j := range stds {
			stds[j] = math.Inf(1)
		}
		return means, stds
	}
	n := len(g.xs)
	kstar := linalg.NewMatrix(n, m)
	for i := 0; i < n; i++ {
		row := kstar.RowView(i)
		xi := g.xs[i]
		for j, q := range xs {
			row[j] = g.fitKernel.Eval(xi, q)
		}
	}
	// mu = Kstarᵀ·alpha, accumulated row-major (ascending training index,
	// matching Predict's Dot order).
	for i, a := range g.alpha {
		row := kstar.RowView(i)
		for j, v := range row {
			means[j] += v * a
		}
	}
	v, err := g.chol.SolveForwardBatch(kstar)
	if err != nil {
		for j := range means {
			means[j], stds[j] = g.yMean, g.yStd
		}
		return means, stds
	}
	ss := make([]float64, m)
	for i := 0; i < n; i++ {
		row := v.RowView(i)
		for j, w := range row {
			ss[j] += w * w
		}
	}
	noiseVar := g.noise * g.noise
	for j, q := range xs {
		variance := g.fitKernel.Eval(q, q) + noiseVar - ss[j]
		if variance < 0 {
			variance = 0
		}
		means[j] = means[j]*g.yStd + g.yMean
		stds[j] = math.Sqrt(variance) * g.yStd
	}
	return means, stds
}

// KernelKind selects the base kernel family for hyperparameter fitting.
type KernelKind int

// Kernel families for FitWithHypers.
const (
	KindSE KernelKind = iota
	KindMatern52
)

// hyperLengthScales and hyperNoises are the marginal-likelihood grid.
var (
	hyperLengthScales = []float64{0.05, 0.1, 0.2, 0.4, 0.8, 1.6}
	hyperNoises       = []float64{0.01, 0.05, 0.15, 0.4}
)

// HyperFitter performs grid-search marginal-likelihood fitting like
// FitWithHypers, but persists the per-combination models between calls:
// when successive Fit calls only append observations (the Bayesian-
// optimization loop), every grid model is extended incrementally in O(n²)
// per new row instead of refit in O(n³), and the pairwise distance matrix
// is computed once and shared across the entire grid. Results are
// bit-identical to one-shot FitWithHypers. Not safe for concurrent use.
type HyperFitter struct {
	kind KernelKind
	xs   [][]float64
	d2   *linalg.Matrix
	gps  []*GP
}

// NewHyperFitter returns an empty incremental fitter for the kernel family.
func NewHyperFitter(kind KernelKind) *HyperFitter {
	return &HyperFitter{kind: kind}
}

// fit selects hyperparameters by grid-search marginal likelihood over the
// accumulated sample and returns the best-fit GP. The returned GP is owned
// by the fitter and remains valid (read-only) until the next Fit call.
func (h *HyperFitter) fit(xs [][]float64, ys []float64) (*GP, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("%w: %d xs, %d ys", ErrNoData, len(xs), len(ys))
	}
	h.sync(xs)
	if h.gps == nil {
		h.gps = make([]*GP, len(hyperLengthScales)*len(hyperNoises))
	}
	var best *GP
	bestLML := math.Inf(-1)
	idx := 0
	for _, l := range hyperLengthScales {
		// The kernel matrix depends on the length scale but not the noise
		// (noise only shifts the diagonal, which fitPrebuilt adds to its
		// own copy), so one transform serves all noise levels. Built
		// lazily: rounds where every model extends incrementally skip it.
		var kl *linalg.Matrix
		kbase := func(sk sqDistKernel) *linalg.Matrix {
			if kl == nil {
				kl = transformDistMatrix(sk, h.d2)
			}
			return kl.Clone()
		}
		for _, nz := range hyperNoises {
			g := h.gps[idx]
			if g == nil {
				var k Kernel
				if h.kind == KindMatern52 {
					k = Matern52{Variance: 1, LengthScale: l}
				} else {
					k = SE{Variance: 1, LengthScale: l}
				}
				g = New(k, nz)
				h.gps[idx] = g
			}
			idx++
			if err := h.fitOne(g, ys, kbase); err != nil {
				continue
			}
			if g.lml > bestLML {
				bestLML = g.lml
				best = g
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("gp: no hyperparameter combination produced a valid fit")
	}
	return best, nil
}

// fitOne fits or incrementally extends one grid model against the synced
// training set. kbase supplies a private copy of the length scale's shared
// kernel matrix for the full-fit path.
func (h *HyperFitter) fitOne(g *GP, ys []float64, kbase func(sqDistKernel) *linalg.Matrix) error {
	n := len(h.xs)
	if g.chol != nil && g.N() <= n && h.extendOne(g, ys) {
		return nil
	}
	return g.fitPrebuilt(h.xs[:n:n], ys, kbase(g.kernel.(sqDistKernel)))
}

// extendOne grows g's factorization with the rows beyond its current
// sample, reading kernel values off the shared distance matrix.
func (h *HyperFitter) extendOne(g *GP, ys []float64) bool {
	sk := g.kernel.(sqDistKernel)
	n := len(h.xs)
	diag := g.noise*g.noise + nugget
	for r := g.N(); r < n; r++ {
		dr := h.d2.RowView(r)
		col := make([]float64, r+1)
		for i := 0; i < r; i++ {
			col[i] = sk.evalSq(dr[i])
		}
		col[r] = sk.evalSq(dr[r]) + diag
		if err := g.chol.Extend(col); err != nil {
			g.chol = nil
			return false
		}
	}
	g.xs = h.xs[:n:n]
	return g.refreshTargets(ys) == nil
}

// sync reconciles the fitter's canonical training copy and distance matrix
// with xs. Appended rows extend both incrementally; any other change
// resets the fitter (a different prefix means every cached factorization
// is invalid).
func (h *HyperFitter) sync(xs [][]float64) {
	appended := len(xs) >= len(h.xs)
	if appended {
		for i, prev := range h.xs {
			if !floatsEqual(prev, xs[i]) {
				appended = false
				break
			}
		}
	}
	if !appended {
		h.xs = nil
		h.d2 = nil
		h.gps = nil
	}
	old := len(h.xs)
	if len(xs) == old {
		return
	}
	for _, x := range xs[old:] {
		h.xs = append(h.xs, append([]float64(nil), x...))
	}
	n := len(h.xs)
	d2 := linalg.NewMatrix(n, n)
	for i := 0; i < old; i++ {
		copy(d2.RowView(i)[:old], h.d2.RowView(i))
	}
	for i := old; i < n; i++ {
		row := d2.RowView(i)
		for j := 0; j <= i; j++ {
			row[j] = sqDist(h.xs[i], h.xs[j])
		}
	}
	// Mirror so RowView(i) carries the full row for both fits and extends.
	for i := 0; i < n; i++ {
		row := d2.RowView(i)
		for j := i + 1; j < n; j++ {
			row[j] = d2.RowView(j)[i]
		}
	}
	h.d2 = d2
}

// FitWithHypers selects hyperparameters by grid-search marginal
// likelihood and fits the returned GP. It tries every combination from
// small fixed grids — cheap at tuning-sample sizes (tens to hundreds of
// points). Callers that refit a growing sample repeatedly should hold a
// HyperFitter instead and get incremental refits.
func FitWithHypers(kind KernelKind, xs [][]float64, ys []float64) (*GP, error) {
	return NewHyperFitter(kind).Fit(xs, ys)
}

// fitAdditive fits an additive-SE GP by coordinate-wise marginal-
// likelihood search over per-dimension variances, starting from uniform
// shares. It returns the fitted GP; the kernel's Sensitivity exposes the
// per-parameter influence decomposition.
//
// The sweep caches one squared-difference matrix and one term matrix per
// dimension: changing dimension d's hyperparameters re-exponentiates only
// that dimension's term, so each candidate costs O(n²·dim) additions plus
// O(n²) exp calls instead of O(n²·dim) exp calls.
func fitAdditive(xs [][]float64, ys []float64, sweeps int) (*GP, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("%w: %d xs, %d ys", ErrNoData, len(xs), len(ys))
	}
	dim := len(xs[0])
	own := make([][]float64, len(xs))
	for i, x := range xs {
		own[i] = append([]float64(nil), x...)
	}
	kernel := NewAdditiveSE(dim)
	// Start deliberately underfit (tiny per-dimension variances): the
	// marginal likelihood then rewards growing exactly the dimensions
	// that explain the response, which is what makes the decomposition
	// interpretable.
	for d := range kernel.Variances {
		kernel.Variances[d] = 0.05 / float64(dim)
	}
	cache := newAdditiveCache(own, dim)
	g := New(kernel, 0.1)
	fit := func() error {
		return g.fitPrebuilt(own, ys, cache.kernelMatrix(kernel))
	}
	if err := fit(); err != nil {
		return nil, err
	}
	if sweeps <= 0 {
		sweeps = 2
	}
	vScales := []float64{0.05, 0.2, 0.5, 1, 2, 5, 20}
	lengths := []float64{0.15, 0.3, 0.6, 1.5, 4}
	for s := 0; s < sweeps; s++ {
		for d := 0; d < dim; d++ {
			bestV, bestL, bestLML := kernel.Variances[d], kernel.LengthScales[d], g.lml
			origV := kernel.Variances[d]
			for _, m := range vScales {
				for _, l := range lengths {
					kernel.Variances[d] = origV * m
					kernel.LengthScales[d] = l
					if err := fit(); err != nil {
						continue
					}
					if g.lml > bestLML {
						bestLML = g.lml
						bestV, bestL = kernel.Variances[d], kernel.LengthScales[d]
					}
				}
			}
			kernel.Variances[d], kernel.LengthScales[d] = bestV, bestL
			if err := fit(); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// additiveCache holds per-dimension squared-difference matrices and the
// current per-dimension term matrices v_d·exp(-Δ²/(2l_d²)) for an
// additive-SE coordinate sweep.
type additiveCache struct {
	n     int
	diffs []*linalg.Matrix // squared per-dimension differences (+Inf where a row lacks the dimension)
	terms []*linalg.Matrix // term matrices for the snapshot parameters below
	vs    []float64
	ls    []float64
}

func newAdditiveCache(xs [][]float64, dim int) *additiveCache {
	n := len(xs)
	c := &additiveCache{
		n:     n,
		diffs: make([]*linalg.Matrix, dim),
		terms: make([]*linalg.Matrix, dim),
		vs:    make([]float64, dim),
		ls:    make([]float64, dim),
	}
	for d := 0; d < dim; d++ {
		m := linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			row := m.RowView(i)
			for j := 0; j < n; j++ {
				if d >= len(xs[i]) || d >= len(xs[j]) {
					// AdditiveSE.Eval skips dimensions a point lacks; an
					// infinite distance makes the term exp(-Inf) = 0.
					row[j] = math.Inf(1)
					continue
				}
				diff := xs[i][d] - xs[j][d]
				row[j] = diff * diff
			}
		}
		c.diffs[d] = m
		c.vs[d] = math.NaN() // force first materialization
	}
	return c
}

// kernelMatrix returns a freshly allocated kernel matrix for the kernel's
// current parameters, re-exponentiating only the dimensions whose
// parameters changed since the previous call. Terms are summed in
// dimension order, matching AdditiveSE.Eval bit for bit.
func (c *additiveCache) kernelMatrix(k *AdditiveSE) *linalg.Matrix {
	n := c.n
	out := linalg.NewMatrix(n, n)
	for d := range c.diffs {
		v, l := k.Variances[d], k.LengthScales[d]
		if l <= 0 {
			l = 0.3
		}
		if c.terms[d] == nil || v != c.vs[d] || l != c.ls[d] {
			t := c.terms[d]
			if t == nil {
				t = linalg.NewMatrix(n, n)
				c.terms[d] = t
			}
			twoL2 := 2 * l * l
			for i := 0; i < n; i++ {
				drow := c.diffs[d].RowView(i)
				trow := t.RowView(i)
				for j := i; j < n; j++ {
					// Division (not multiply-by-reciprocal) matches
					// AdditiveSE.Eval bit for bit.
					trow[j] = v * math.Exp(-drow[j]/twoL2)
				}
			}
			for i := 1; i < n; i++ {
				trow := t.RowView(i)
				for j := 0; j < i; j++ {
					trow[j] = c.terms[d].RowView(j)[i]
				}
			}
			c.vs[d], c.ls[d] = v, l
		}
		t := c.terms[d]
		for i := 0; i < n; i++ {
			orow := out.RowView(i)
			trow := t.RowView(i)
			for j, tv := range trow {
				orow[j] += tv
			}
		}
	}
	return out
}

// ExpectedImprovement returns EI for minimization at a point with
// posterior (mean, std), relative to the best observed value. Zero std
// yields max(best-mean, 0).
func ExpectedImprovement(mean, std, best float64) float64 {
	if std <= 0 {
		if mean < best {
			return best - mean
		}
		return 0
	}
	z := (best - mean) / std
	return (best-mean)*stat.NormalCDF(z) + std*stat.NormalPDF(z)
}

// ExpectedImprovementParts splits EI into its exploitation term
// (best-mean)·Φ(z) — improvement the posterior mean already promises —
// and its exploration term std·φ(z) — improvement bought by posterior
// uncertainty. The parts sum exactly to ExpectedImprovement; zero std
// attributes everything to exploitation, matching its degenerate case.
func ExpectedImprovementParts(mean, std, best float64) (exploit, explore float64) {
	if std <= 0 {
		if mean < best {
			return best - mean, 0
		}
		return 0, 0
	}
	z := (best - mean) / std
	return (best - mean) * stat.NormalCDF(z), std * stat.NormalPDF(z)
}

// LCB returns the lower confidence bound mean - beta·std (minimization:
// smaller is more promising).
func LCB(mean, std, beta float64) float64 { return mean - beta*std }
