package spark_test

import (
	"math"
	"testing"
	"testing/quick"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/confspace"
	"seamlesstune/internal/spark"
	"seamlesstune/internal/stat"
	"seamlesstune/internal/workload"
)

// Property: any random configuration on any workload yields a finite,
// positive runtime and non-negative cost — success or failure alike.
func TestRunAlwaysWellFormedProperty(t *testing.T) {
	space := confspace.SparkSpace()
	cluster := func() cloud.ClusterSpec {
		it, _ := cloud.DefaultCatalog().Lookup("nimbus/g5.2xlarge")
		return cloud.ClusterSpec{Instance: it, Count: 4}
	}()
	workloads := workload.All()
	f := func(seed int64) bool {
		rng := stat.NewRNG(seed)
		cfg := space.Random(rng)
		w := workloads[rng.Intn(len(workloads))]
		res := spark.Run(w.Job(2<<30), spark.FromConfig(space, cfg), cluster, cloud.Unit(), rng)
		if math.IsNaN(res.RuntimeS) || math.IsInf(res.RuntimeS, 0) || res.RuntimeS <= 0 {
			return false
		}
		if res.CostUSD < 0 || math.IsNaN(res.CostUSD) {
			return false
		}
		if !res.Failed && res.Executors <= 0 {
			return false
		}
		for _, sm := range res.Stages {
			if sm.DurationS < 0 || math.IsNaN(sm.DurationS) {
				return false
			}
			if sm.CacheHitFrac < 0 || sm.CacheHitFrac > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: ablating mechanisms never makes a successful run slower —
// each ablation removes a cost.
func TestAblationsOnlyRemoveCostProperty(t *testing.T) {
	space := confspace.SparkSpace()
	it, _ := cloud.DefaultCatalog().Lookup("nimbus/h1.4xlarge")
	cluster := cloud.ClusterSpec{Instance: it, Count: 4}
	job := workload.PageRank{Iterations: 3}.Job(4 << 30)
	f := func(seed int64) bool {
		rng := stat.NewRNG(seed)
		cfg := space.Random(rng)
		conf := spark.FromConfig(space, cfg)
		base := spark.RunWith(job, conf, cluster, cloud.Unit(), spark.RunOpts{Ablate: spark.Ablate{NoNoise: true}}, stat.NewRNG(seed))
		if base.Failed {
			return true // crash regions are exempt: ablations don't fix OOMs
		}
		for _, ab := range []spark.Ablate{
			{NoNoise: true, NoGC: true},
			{NoNoise: true, NoSpill: true},
			{NoNoise: true, NoCacheLimit: true},
		} {
			res := spark.RunWith(job, conf, cluster, cloud.Unit(), spark.RunOpts{Ablate: ab}, stat.NewRNG(seed))
			if res.Failed {
				continue
			}
			if res.RuntimeS > base.RuntimeS*1.01 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
