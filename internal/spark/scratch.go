package spark

import (
	"container/heap"
	"math"
	"sync"
)

// runScratch carries every per-run buffer the simulator needs, so a
// steady-state RunWith allocates only the Result it hands back to the
// caller. Scratches are pooled; runWith acquires one, runs, and returns
// it. All buffers indexed by stage ID rely on Validate's guarantee that
// stage IDs equal their positions.
type runScratch struct {
	state runState

	// Per-stage-ID buffers, sized to the job's stage count per run.
	done     []bool
	metricAt []int32
	cached   []cacheEntry
	shuffleW []int64 // compressed shuffle bytes written, by stage ID

	// Wave-scoped buffers.
	wave     []stageWork
	combined []float64
	sorted   []float64
	slots    slotHeap

	// stageDurs[id] is the reusable task-duration buffer of stage id.
	stageDurs [][]float64
}

var scratchPool = sync.Pool{New: func() any { return &runScratch{} }}

// reset sizes the per-stage buffers for a job with n stages and clears
// the carried-over state.
func (sc *runScratch) reset(n int) {
	if cap(sc.done) < n {
		sc.done = make([]bool, n)
		sc.metricAt = make([]int32, n)
		sc.cached = make([]cacheEntry, n)
		sc.shuffleW = make([]int64, n)
		sc.stageDurs = make([][]float64, n)
	}
	sc.done = sc.done[:n]
	sc.metricAt = sc.metricAt[:n]
	sc.cached = sc.cached[:n]
	sc.shuffleW = sc.shuffleW[:n]
	sc.stageDurs = sc.stageDurs[:n]
	for i := 0; i < n; i++ {
		sc.done[i] = false
		sc.metricAt[i] = 0
		sc.cached[i] = cacheEntry{}
		sc.shuffleW[i] = 0
	}
	// Drop stage pointers retained past the wave slice's length so a
	// pooled scratch cannot keep a finished job alive.
	full := sc.wave[:cap(sc.wave)]
	for i := range full {
		full[i] = stageWork{}
	}
	sc.wave = sc.wave[:0]
	sc.state = runState{scratch: sc}
}

// durationsFor returns stage id's task-duration buffer resized to n.
func (sc *runScratch) durationsFor(id, n int) []float64 {
	buf := sc.stageDurs[id]
	if cap(buf) < n {
		buf = make([]float64, n)
		sc.stageDurs[id] = buf
	}
	return buf[:n]
}

// combineWaveInto is combineWave writing into a reused buffer. The
// merge order is identical to combineWave (append order for FIFO,
// round-robin for FAIR), so the scheduled makespan is bit-identical.
func combineWaveInto(dst []float64, wave []stageWork, fair bool) []float64 {
	if len(wave) == 1 {
		return wave[0].durations
	}
	total := 0
	for _, w := range wave {
		total += len(w.durations)
	}
	dst = dst[:0]
	if !fair {
		for _, w := range wave {
			dst = append(dst, w.durations...)
		}
		return dst
	}
	for i := 0; len(dst) < total; i++ {
		for _, w := range wave {
			if i < len(w.durations) {
				dst = append(dst, w.durations[i])
			}
		}
	}
	return dst
}

// listScheduleInto is listSchedule with a caller-owned slot heap, so the
// hot loop schedules without allocating. Identical arithmetic, identical
// makespan.
func listScheduleInto(durations []float64, slots int, buf *slotHeap) float64 {
	if len(durations) == 0 {
		return 0
	}
	if slots <= 0 {
		return math.Inf(1)
	}
	if slots > len(durations) {
		slots = len(durations)
	}
	h := (*buf)[:0]
	for i := 0; i < slots; i++ {
		h = append(h, 0)
	}
	*buf = h
	heap.Init(buf)
	h = *buf
	for _, d := range durations {
		free := h[0]
		h[0] = free + d
		heap.Fix(buf, 0)
	}
	makespan := 0.0
	for _, t := range h {
		if t > makespan {
			makespan = t
		}
	}
	return makespan
}
