package spark

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"seamlesstune/internal/stat"
)

// Property: list scheduling satisfies the classical bounds —
// makespan >= max duration, makespan >= total/slots, and (Graham)
// makespan <= total/slots + max duration.
func TestListScheduleBoundsProperty(t *testing.T) {
	f := func(seed int64, rawSlots uint8) bool {
		rng := stat.NewRNG(seed)
		slots := int(rawSlots%32) + 1
		n := rng.Intn(200) + 1
		durations := make([]float64, n)
		total, maxDur := 0.0, 0.0
		for i := range durations {
			durations[i] = rng.Float64()*10 + 0.01
			total += durations[i]
			if durations[i] > maxDur {
				maxDur = durations[i]
			}
		}
		m := listSchedule(durations, slots)
		lower := math.Max(maxDur, total/float64(slots))
		upper := total/float64(slots) + maxDur
		return m >= lower-1e-9 && m <= upper+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: more slots never increases the makespan.
func TestListScheduleMonotoneInSlotsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stat.NewRNG(seed)
		n := rng.Intn(100) + 2
		durations := make([]float64, n)
		for i := range durations {
			durations[i] = rng.Float64() * 5
		}
		prev := math.Inf(1)
		for slots := 1; slots <= 16; slots *= 2 {
			m := listSchedule(durations, slots)
			if m > prev+1e-9 {
				return false
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestListScheduleEdgeCases(t *testing.T) {
	if got := listSchedule(nil, 4); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := listSchedule([]float64{1, 2}, 0); !math.IsInf(got, 1) {
		t.Errorf("zero slots = %v, want +Inf", got)
	}
}

// Property: combineWave preserves the multiset of durations in both
// scheduler modes.
func TestCombineWavePreservesDurationsProperty(t *testing.T) {
	f := func(seed int64, fair bool) bool {
		rng := stat.NewRNG(seed)
		nStages := rng.Intn(4) + 1
		var wave []stageWork
		var all []float64
		for s := 0; s < nStages; s++ {
			n := rng.Intn(20)
			durs := make([]float64, n)
			for i := range durs {
				durs[i] = rng.Float64()
			}
			all = append(all, durs...)
			wave = append(wave, stageWork{durations: durs})
		}
		got := combineWave(wave, fair)
		if len(got) != len(all) {
			return false
		}
		a := append([]float64(nil), all...)
		b := append([]float64(nil), got...)
		sort.Float64s(a)
		sort.Float64s(b)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
