package spark

import (
	"testing"

	"seamlesstune/internal/confspace"
)

func TestDefaultConf(t *testing.T) {
	c := DefaultConf()
	if c.ExecutorMemoryMB != 1024 || c.ExecutorCores != 1 || c.ExecutorInstances != 2 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if c.Codec != LZ4 || c.Serializer != JavaSerializer {
		t.Errorf("default codec/serializer wrong: %v/%v", c.Codec, c.Serializer)
	}
	if !c.ShuffleCompress || c.RDDCompress {
		t.Error("default compression flags wrong")
	}
	if c.MemoryFraction != 0.6 || c.StorageFraction != 0.5 {
		t.Errorf("default memory fractions wrong: %v/%v", c.MemoryFraction, c.StorageFraction)
	}
}

func TestFromConfigDecodesChoices(t *testing.T) {
	s := confspace.SparkSpace()
	cfg := s.Default()
	cfg[confspace.ParamCompressionCodec] = 3 // zstd
	cfg[confspace.ParamSerializer] = 1       // kryo
	cfg[confspace.ParamSchedulerMode] = 1    // FAIR
	c := FromConfig(s, cfg)
	if c.Codec != Zstd {
		t.Errorf("codec = %v, want zstd", c.Codec)
	}
	if c.Serializer != KryoSerializer {
		t.Errorf("serializer = %v, want kryo", c.Serializer)
	}
	if !c.SchedulerFair {
		t.Error("scheduler mode not decoded")
	}
}

func TestFromConfigSubspaceKeepsDefaults(t *testing.T) {
	// A 4-parameter subspace must still produce a complete Conf.
	sub := confspace.SparkSubspace(4)
	cfg := sub.Default()
	cfg[confspace.ParamExecutorCores] = 8
	c := FromConfig(sub, cfg)
	if c.ExecutorCores != 8 {
		t.Errorf("tuned param lost: cores = %d", c.ExecutorCores)
	}
	if c.ShufflePartitions != 200 {
		t.Errorf("untuned param should default: shuffle partitions = %d", c.ShufflePartitions)
	}
}

func TestContainerMemoryMB(t *testing.T) {
	// Small heap: the 384 MB overhead floor applies.
	c := Conf{ExecutorMemoryMB: 1000, MemoryOverheadFactor: 0.1}
	if got := c.ContainerMemoryMB(); got != 1384 {
		t.Errorf("ContainerMemoryMB = %d, want 1384", got)
	}
	c.OffHeapEnabled = true
	c.OffHeapSizeMB = 500
	if got := c.ContainerMemoryMB(); got != 1884 {
		t.Errorf("with offheap = %d, want 1884", got)
	}
	// Large heap: the factor dominates the floor.
	c = Conf{ExecutorMemoryMB: 10000, MemoryOverheadFactor: 0.1}
	if got := c.OverheadMB(); got != 1000 {
		t.Errorf("OverheadMB = %v, want 1000", got)
	}
}

func TestSlotsPerExecutor(t *testing.T) {
	c := Conf{ExecutorCores: 4, TaskCPUs: 2}
	if got := c.SlotsPerExecutor(); got != 2 {
		t.Errorf("SlotsPerExecutor = %d, want 2", got)
	}
	c.TaskCPUs = 0
	if got := c.SlotsPerExecutor(); got != 0 {
		t.Errorf("zero task cpus should yield 0 slots, got %d", got)
	}
}

func TestRequestedExecutors(t *testing.T) {
	c := Conf{ExecutorInstances: 4, DynAllocMaxExecutors: 32}
	if got := c.RequestedExecutors(); got != 4 {
		t.Errorf("static = %d, want 4", got)
	}
	c.DynAllocEnabled = true
	if got := c.RequestedExecutors(); got != 32 {
		t.Errorf("dynamic = %d, want 32", got)
	}
}

func TestCodecSerializerStrings(t *testing.T) {
	if LZ4.String() != "lz4" || Zstd.String() != "zstd" || Codec(99).String() != "unknown" {
		t.Error("Codec.String wrong")
	}
	if JavaSerializer.String() != "java" || KryoSerializer.String() != "kryo" {
		t.Error("Serializer.String wrong")
	}
}
