package spark

import (
	"math"
	"math/rand"
	"sort"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/obs"
	"seamlesstune/internal/stat"
)

// Failure reasons reported in Result.Reason.
const (
	ReasonBadJob          = "malformed job"
	ReasonBadCluster      = "invalid cluster"
	ReasonNoSlots         = "executor cores smaller than task cpus"
	ReasonNoExecutors     = "cannot allocate any executor on the cluster"
	ReasonDriverOOM       = "driver out of memory"
	ReasonKryoOverflow    = "kryo serialization buffer overflow"
	ReasonContainerKilled = "executor container killed (memory overhead exceeded)"
	ReasonTaskOOM         = "task failed repeatedly with out-of-memory"
)

// stragglerSigma is the lognormal scale of inherent task-duration noise.
const stragglerSigma = 0.12

// Ablate disables individual simulator mechanisms — for ablation studies
// that attribute experimental results to the mechanisms that produce them
// (experiment A1 in DESIGN.md). Production runs leave all fields false.
type Ablate struct {
	// NoGC removes JVM garbage-collection overhead.
	NoGC bool
	// NoSpill gives tasks unlimited execution memory (no spill cliff).
	NoSpill bool
	// NoCacheLimit gives storage memory unlimited capacity (no cache
	// cliff, no recomputation).
	NoCacheLimit bool
	// NoSkew makes all partitions equal-sized.
	NoSkew bool
	// NoNoise removes straggler noise (deterministic task durations).
	NoNoise bool
}

// RunOpts carries optional environment behaviours beyond interference.
type RunOpts struct {
	// ExecutorMTBFHours injects executor failures with the given mean
	// time between failures per executor (0 disables). Lost executors
	// re-run their in-flight tasks, lose their cached partitions, and —
	// without the external shuffle service — force parents' shuffle
	// files to be regenerated.
	ExecutorMTBFHours float64
	// Ablate selectively disables simulator mechanisms (A1 ablations).
	Ablate Ablate
	// Trace, when enabled, records a span per execution and per stage
	// (wall time of the simulation work, with the simulated metrics as
	// span arguments). When disabled, the process-wide ambient trace is
	// consulted instead (see obs.SetAmbient).
	Trace obs.Trace
}

// Run simulates one execution of job under conf on the given cluster and
// interference conditions, drawing all randomness from rng. It never
// returns an error: misconfigurations surface the way they do in
// production, as failed or pathologically slow runs (Result.Failed).
func Run(job *Job, conf Conf, cluster cloud.ClusterSpec, factors cloud.Factors, rng *rand.Rand) Result {
	return RunWith(job, conf, cluster, factors, RunOpts{}, rng)
}

// RunWith is Run with explicit environment options. Every execution —
// including ones rejected before any stage runs — is counted in the
// spark_* metric families and, when a trace is active, recorded as a
// "run" span.
func RunWith(job *Job, conf Conf, cluster cloud.ClusterSpec, factors cloud.Factors, opts RunOpts, rng *rand.Rand) Result {
	if !opts.Trace.Enabled() {
		opts.Trace = obs.Ambient()
	}
	sp := opts.Trace.Start("spark-run", "spark")
	res := runWith(job, conf, cluster, factors, opts, rng)
	observeRun(&sp, &res)
	return res
}

// runWith is the uninstrumented simulation. It is the pooled fast path:
// per-job invariants come from the shared jobPlan, and every per-run
// buffer comes from a pooled runScratch, so a steady-state run allocates
// only the Result it returns. It is bit-identical to the retained naive
// path (naive.go), enforced by the equivalence tests in equiv_test.go.
func runWith(job *Job, conf Conf, cluster cloud.ClusterSpec, factors cloud.Factors, opts RunOpts, rng *rand.Rand) Result {
	plan := planOf(job)
	if plan.err != nil {
		return Result{Failed: true, Reason: ReasonBadJob}
	}
	if err := cluster.Validate(); err != nil {
		return Result{Failed: true, Reason: ReasonBadCluster}
	}
	if factors == (cloud.Factors{}) {
		factors = cloud.Unit()
	}

	alloc, failReason := allocate(conf, cluster)
	if failReason != "" {
		// Allocation failures surface quickly (resource manager rejects).
		return Result{Failed: true, Reason: failReason, RuntimeS: 15, CostUSD: cluster.CostOf(15)}
	}

	// Kryo buffer must fit the largest record of any stage.
	if conf.Serializer == KryoSerializer && plan.maxRecordMB > float64(conf.KryoBufferMaxMB) {
		t := 20.0
		return Result{Failed: true, Reason: ReasonKryoOverflow, RuntimeS: t, CostUSD: cluster.CostOf(t)}
	}

	// Driver heap must hold bookkeeping, collected results and broadcasts.
	if plan.driverNeed > float64(conf.DriverMemoryMB) {
		t := 10.0
		return Result{Failed: true, Reason: ReasonDriverOOM, RuntimeS: t, CostUSD: cluster.CostOf(t)}
	}

	// Native shuffle buffers and JVM bookkeeping live in the overhead
	// region; pressure there slows stages (page-cache thrash, occasional
	// container restarts). Enabling off-heap memory with a tiny region
	// kills containers outright.
	if conf.OffHeapEnabled && conf.OffHeapSizeMB < 128 {
		t := 30.0
		return Result{Failed: true, Reason: ReasonContainerKilled, RuntimeS: t, CostUSD: cluster.CostOf(t)}
	}
	needOverheadMB := 256 + 0.25*float64(conf.ReducerMaxInFlightMB*conf.ShuffleConnsPerPeer) +
		0.02*float64(conf.ExecutorMemoryMB)
	containerPressure := stat.Clamp((needOverheadMB-conf.OverheadMB())/needOverheadMB, 0, 0.6)

	sc := scratchPool.Get().(*runScratch)
	sc.reset(len(job.Stages))
	sim := &sc.state
	sim.job, sim.conf, sim.cluster, sim.factors = job, conf, cluster, factors
	sim.rng, sim.opts, sim.alloc = rng, opts, alloc
	sim.containerPressure = containerPressure
	sim.cached = sc.cached
	sim.trace = opts.Trace
	sim.plan = plan
	res := sim.run()
	sim.job, sim.rng, sim.plan = nil, nil, nil // no stale references while pooled
	scratchPool.Put(sc)
	return res
}

// EstimateAllocation reports how many executors and task slots a
// configuration would obtain on a cluster, without running anything —
// the resource-manager arithmetic external models (e.g. a What-If
// engine) need. ok is false when nothing can be allocated.
func EstimateAllocation(conf Conf, cluster cloud.ClusterSpec) (executors, slots int, ok bool) {
	alloc, fail := allocate(conf, cluster)
	if fail != "" {
		return 0, 0, false
	}
	return alloc.executors, alloc.slotsTotal, true
}

// allocation describes how executors were bin-packed onto the cluster.
type allocation struct {
	executors    int
	slotsPer     int
	slotsTotal   int
	execsPerNode float64
	nodesUsed    int
}

// allocate bin-packs requested executors onto the cluster's nodes by
// cores and by container memory, mirroring a YARN-style resource manager.
func allocate(conf Conf, cluster cloud.ClusterSpec) (allocation, string) {
	slotsPer := conf.SlotsPerExecutor()
	if slotsPer <= 0 {
		return allocation{}, ReasonNoSlots
	}
	nodeMemMB := cluster.Instance.MemoryGB*1024 - 1024 // reserve for OS/daemons
	containerMB := float64(conf.ContainerMemoryMB())
	perNodeByMem := int(nodeMemMB / containerMB)
	perNodeByCores := cluster.Instance.VCPUs / conf.ExecutorCores
	perNode := minInt(perNodeByMem, perNodeByCores)
	if perNode <= 0 {
		return allocation{}, ReasonNoExecutors
	}
	executors := minInt(conf.RequestedExecutors(), perNode*cluster.Count)
	if executors <= 0 {
		return allocation{}, ReasonNoExecutors
	}
	nodesUsed := minInt(cluster.Count, executors)
	return allocation{
		executors:    executors,
		slotsPer:     slotsPer,
		slotsTotal:   executors * slotsPer,
		execsPerNode: float64(executors) / float64(cluster.Count),
		nodesUsed:    nodesUsed,
	}, ""
}

type cacheEntry struct {
	sizeMB float64
	frac   float64 // fraction resident in storage memory
}

type runState struct {
	job     *Job
	conf    Conf
	cluster cloud.ClusterSpec
	factors cloud.Factors
	rng     *rand.Rand
	opts    RunOpts
	alloc   allocation

	containerPressure float64
	// cached is indexed by stage ID (a zero entry means "not admitted";
	// its zero frac reads exactly like the old map's missing key).
	cached        []cacheEntry
	storageUsedMB float64
	trace         obs.Trace

	scratch *runScratch
	plan    *jobPlan

	res Result
}

// coreSpeed returns effective baseline-seconds-per-second of one core:
// >1 means faster than baseline.
func (s *runState) coreSpeed() float64 {
	return s.cluster.Instance.CPUFactor / s.factors.CPU
}

// storageCapMB returns the cluster-wide storage-memory capacity.
func (s *runState) storageCapMB() float64 {
	perExec := float64(s.conf.ExecutorMemoryMB) * s.conf.MemoryFraction * s.conf.StorageFraction
	return perExec * float64(s.alloc.executors)
}

// execMemPerTaskMB returns the execution memory one task can use,
// accounting for memory already pinned by cached RDDs (unified memory
// manager semantics: storage above the protected region is evictable,
// below it is not).
func (s *runState) execMemPerTaskMB() float64 {
	unifiedPerExec := float64(s.conf.ExecutorMemoryMB) * s.conf.MemoryFraction
	protectedPerExec := unifiedPerExec * s.conf.StorageFraction
	cachePerExec := s.storageUsedMB / float64(s.alloc.executors)
	pinned := math.Min(cachePerExec, protectedPerExec)
	execAvail := unifiedPerExec - pinned
	if s.conf.OffHeapEnabled {
		execAvail += float64(s.conf.OffHeapSizeMB)
	}
	if execAvail < 0 {
		execAvail = 0
	}
	return execAvail / float64(s.alloc.slotsPer)
}

// heapUtil estimates executor heap utilization for the GC model.
func (s *runState) heapUtil(taskWorkingMB float64) float64 {
	heap := float64(s.conf.ExecutorMemoryMB)
	cachePerExec := s.storageUsedMB / float64(s.alloc.executors)
	inUse := cachePerExec + taskWorkingMB*float64(s.alloc.slotsPer) + 0.12*heap // runtime overhead
	return inUse / heap
}

// stageWork is one prepared stage: its task durations and driver-side
// overheads, ready for wave scheduling.
type stageWork struct {
	stage      *Stage
	sm         StageMetrics
	durations  []float64
	overhead   float64 // broadcast + dispatch + collect
	failReason string
}

func (s *runState) run() Result {
	conf, alloc, sc := s.conf, s.alloc, s.scratch
	s.res.Executors = alloc.executors
	s.res.SlotsTotal = alloc.slotsTotal
	// Stages escapes with the Result, so it is the one per-run allocation
	// the fast path keeps (sized exactly once here).
	s.res.Stages = make([]StageMetrics, 0, len(s.job.Stages))

	// Application submit and executor launch (staggered container starts).
	clock := 2.0 + 0.08*float64(alloc.executors)
	if conf.DynAllocEnabled {
		clock += 1.5 // allocation manager ramp-up
	}

	pressureMult := 1 + 0.5*s.containerPressure

	// The DAG scheduler submits every stage whose parents have finished;
	// independent stages share the executor slots within a wave (Fig. 2's
	// driver behaviour). done/metricAt index by stage ID (== position).
	doneCount := 0
	for doneCount < len(s.job.Stages) && !s.res.Failed {
		wave := sc.wave[:0]
		for i := range s.job.Stages {
			stage := &s.job.Stages[i]
			if sc.done[stage.ID] {
				continue
			}
			ready := true
			for _, d := range stage.Deps {
				if !sc.done[d] {
					ready = false
					break
				}
			}
			if ready {
				// The stage span measures the wall time spent simulating the
				// stage; the simulated metrics travel as span arguments.
				ssp := s.trace.Start(stage.Name, "spark-stage")
				w := s.prepareStage(stage)
				ssp.Num("stage_id", float64(stage.ID))
				ssp.Num("tasks", float64(w.sm.Tasks))
				ssp.Num("spill_mb", float64(w.sm.SpillBytes)/mb)
				ssp.Num("gc_s", w.sm.GCSeconds)
				if w.failReason != "" {
					ssp.Str("failed", w.failReason)
				}
				ssp.End()
				wave = append(wave, w)
			}
		}
		sc.wave = wave[:0] // keep grown capacity for the next iteration
		if len(wave) == 0 {
			// Unreachable for validated jobs; guard against live-lock.
			s.res.Failed = true
			s.res.Reason = ReasonBadJob
			break
		}

		combined := combineWaveInto(sc.combined, wave, conf.SchedulerFair)
		if len(wave) > 1 {
			sc.combined = combined
		}
		waveMakespan := listScheduleInto(combined, alloc.slotsTotal, &sc.slots) * pressureMult
		overheads := 0.0
		failReason := ""
		for _, w := range wave {
			overheads += w.overhead
			own := listScheduleInto(w.durations, alloc.slotsTotal, &sc.slots) * pressureMult
			w.sm.DurationS = own + w.overhead
			if w.failReason != "" && failReason == "" {
				failReason = w.failReason
			}
			sc.metricAt[w.stage.ID] = int32(len(s.res.Stages))
			s.res.Stages = append(s.res.Stages, w.sm)
			sc.shuffleW[w.stage.ID] = w.sm.ShuffleWrite
			s.res.TotalSpillBytes += w.sm.SpillBytes
			s.res.TotalShuffleRead += w.sm.ShuffleRead
			s.res.TotalShuffleWrite += w.sm.ShuffleWrite
			s.res.TotalGCSeconds += w.sm.GCSeconds
			sc.done[w.stage.ID] = true
			doneCount++
		}
		clock += waveMakespan + overheads
		if failReason != "" {
			s.res.Failed = true
			s.res.Reason = failReason
			break
		}
		for _, w := range wave {
			if w.stage.CacheOutput {
				s.admitCache(w.stage)
			}
		}

		// Executor churn: with an MTBF configured, a lost executor
		// re-runs its share of the wave, loses its cached partitions,
		// and (without the external shuffle service) forces upstream
		// shuffle files to be regenerated.
		if s.opts.ExecutorMTBFHours > 0 && waveMakespan > 0 {
			lossP := 1 - math.Exp(-float64(alloc.executors)*waveMakespan/3600/s.opts.ExecutorMTBFHours)
			if s.rng.Float64() < lossP {
				s.res.ExecutorsLost++
				share := 1 / float64(alloc.executors)
				penalty := 10 + waveMakespan*share
				if !conf.ShuffleService {
					penalty += waveMakespan * share // regenerate shuffle files
				}
				clock += penalty
				for id := range s.cached {
					s.cached[id].frac *= 1 - share
				}
				// Attribute the penalty to the last stage of the wave.
				if len(wave) > 0 {
					idx := sc.metricAt[wave[len(wave)-1].stage.ID]
					s.res.Stages[idx].DurationS += penalty
				}
			}
		}
	}

	s.res.RuntimeS = clock
	s.res.CostUSD = s.cluster.CostOf(clock)
	return s.res
}

// combineWave merges the task durations of concurrently running stages.
// FIFO submits stage task sets head-of-line in stage order; FAIR
// interleaves them round-robin so no stage starves.
func combineWave(wave []stageWork, fair bool) []float64 {
	if len(wave) == 1 {
		return wave[0].durations
	}
	total := 0
	for _, w := range wave {
		total += len(w.durations)
	}
	out := make([]float64, 0, total)
	if !fair {
		for _, w := range wave {
			out = append(out, w.durations...)
		}
		return out
	}
	for i := 0; len(out) < total; i++ {
		for _, w := range wave {
			if i < len(w.durations) {
				out = append(out, w.durations[i])
			}
		}
	}
	return out
}

// admitCache places a stage's output RDD into storage memory, possibly
// partially when capacity is short.
func (s *runState) admitCache(stage *Stage) {
	sizeMB := float64(stage.CacheBytes) / mb
	if s.conf.RDDCompress {
		prof := codecTable(s.conf.Codec)
		sizeMB *= prof.ratio
	}
	avail := s.storageCapMB() - s.storageUsedMB
	frac := 1.0
	if sizeMB > 0 && !s.opts.Ablate.NoCacheLimit {
		frac = stat.Clamp(avail/sizeMB, 0, 1)
	}
	s.cached[stage.ID] = cacheEntry{sizeMB: sizeMB, frac: frac}
	s.storageUsedMB += sizeMB * frac
}

// prepareStage computes a stage's per-task durations and driver-side
// overheads. The caller schedules the tasks (possibly merged with other
// ready stages) onto the executor slots. Task counts and skew weights
// come from the shared jobPlan; the durations buffer comes from the
// pooled scratch (per stage ID, so it stays valid for the whole wave).
func (s *runState) prepareStage(stage *Stage) stageWork {
	conf, alloc, inst := s.conf, s.alloc, s.cluster.Instance
	n := s.plan.taskCount(stage, &s.conf)
	sm := StageMetrics{ID: stage.ID, Name: stage.Name, Tasks: n, InputBytes: stage.InputBytes}

	// Per-node resource rates under interference, shared by the tasks
	// concurrently resident on a node.
	concurrentPerNode := math.Max(1, float64(minInt(n, alloc.slotsTotal))/float64(s.cluster.Count))
	diskPerTask := inst.DiskMBps / s.factors.Disk / concurrentPerNode
	netPerTask := inst.NetworkMBps / s.factors.Net / concurrentPerNode

	coreSpeed := s.coreSpeed()
	// Multi-core tasks get imperfect intra-task parallel speedup.
	taskSpeed := coreSpeed * (1 + 0.6*float64(conf.TaskCPUs-1))

	serCPU, serSize := serializerProfile(conf.Serializer)
	codec := codecTable(conf.Codec)
	ratioMul, cpuMul := blockSizeFactor(conf.CompressionBlockKB)
	cRatio, cCPU, dCPU := codec.ratio*ratioMul, codec.compressS*cpuMul, codec.decompress*cpuMul

	execMemPerTask := s.execMemPerTaskMB()

	// OOM region: the per-task execution share cannot cover the stage's
	// non-spillable floor. Tasks fail deterministically; after
	// TaskMaxFailures attempts the stage (and job) fails.
	if stage.HardMemMB > 0 && execMemPerTask < stage.HardMemMB {
		attempts := maxInt(conf.TaskMaxFailures, 1)
		// Each attempt burns a partial task's work before dying.
		waste := 6.0 * float64(attempts)
		sm.DurationS = waste
		sm.FailedTasks = attempts
		return stageWork{stage: stage, sm: sm, overhead: waste, failReason: ReasonTaskOOM}
	}

	// Broadcast distribution to every executor at stage start.
	broadcast := 0.0
	if stage.BroadcastMB > 0 {
		bMB := stage.BroadcastMB
		cpu := 0.0
		if conf.BroadcastCompress {
			cpu += stage.BroadcastMB * (cCPU + dCPU) / coreSpeed
			bMB *= cRatio
		}
		blocks := math.Ceil(bMB / float64(maxInt(conf.BroadcastBlockMB, 1)))
		perExecNet := inst.NetworkMBps / s.factors.Net / math.Max(1, alloc.execsPerNode)
		// Torrent broadcast: executors fetch in a tree, depth log2(execs).
		depth := math.Log2(float64(alloc.executors) + 1)
		broadcast = bMB/perExecNet*depth + 0.002*blocks + cpu
	}

	// Shuffle input for this stage: compressed bytes written by parents.
	// shuffleW is indexed by stage ID and summed in dep order — the same
	// float-summation order as the naive O(S²) scan over res.Stages.
	var fetchTotalMB float64
	for _, d := range stage.Deps {
		fetchTotalMB += float64(s.scratch.shuffleW[d]) / mb
	}

	// Map-side input and locality.
	inputPerTaskMB := s.plan.stages[stage.ID].inputBytesF / mb / float64(n)
	pNonLocal := math.Max(0, 1-float64(alloc.nodesUsed)/float64(s.cluster.Count))

	// Shuffle write volumes per task.
	writePerTaskMB := s.plan.stages[stage.ID].shuffleWriteF / mb / float64(n) * serSize
	writeDiskMB := writePerTaskMB
	writeCPU := writePerTaskMB * serCPU / coreSpeed
	if conf.ShuffleCompress && writePerTaskMB > 0 {
		writeCPU += writePerTaskMB * cCPU / coreSpeed
		writeDiskMB *= cRatio
	}
	// Sort-based shuffle pays a merge-sort CPU cost; the bypass path
	// (few partitions) instead pays per-file overhead.
	downstreamParts := float64(maxInt(conf.ShufflePartitions, conf.DefaultParallelism))
	sortCPU := 0.0
	if stage.ShuffleWriteBytes > 0 {
		if int(downstreamParts) <= conf.ShuffleBypassMerge {
			sortCPU = 0.0001 * downstreamParts / coreSpeed // file handles
		} else {
			sortCPU = writePerTaskMB * 0.004 / coreSpeed
		}
	}
	fileFactor := fileBufferFactor(conf.ShuffleFileBufferKB)
	inFlight := inFlightFactor(conf.ReducerMaxInFlightMB, conf.ShuffleConnsPerPeer)

	// Cached-input parameters. A zero cached[] entry has frac 0, which
	// reads exactly like the old map's missing key.
	var cacheFrac float64
	var cachedCompressed bool
	if stage.ReadsCachedFrom >= 0 && stage.ReadsCachedFrom < len(s.cached) {
		cacheFrac = s.cached[stage.ReadsCachedFrom].frac
		cachedCompressed = s.conf.RDDCompress
		sm.CacheHitFrac = cacheFrac
	}

	recordsPerTask := s.plan.stages[stage.ID].recordsF / float64(n)
	workingMBBase := recordsPerTask * stage.MemPerRecordBytes / mb
	gcFrac := gcFraction(s.heapUtil(math.Min(workingMBBase, execMemPerTask)), float64(conf.ExecutorMemoryMB), alloc.slotsPer, conf.GCThreads)
	if s.opts.Ablate.NoGC {
		gcFrac = 0
	}

	// nil skew means uniform: every weight is exactly 1, and multiplying
	// by the constant 1.0 is bit-identical to the naive all-ones slice.
	var skew []float64
	if !s.opts.Ablate.NoSkew {
		skew = s.plan.skewWeights(s.job, stage, n)
	}
	durations := s.scratch.durationsFor(stage.ID, n)
	var spillBytes int64
	var gcSeconds float64

	for i := 0; i < n; i++ {
		w := 1.0
		if skew != nil {
			w = skew[i]
		}
		records := recordsPerTask * w
		dur := 0.0

		// 1. Input read (map stages).
		if inputPerTaskMB > 0 {
			localRead := inputPerTaskMB * w / diskPerTask
			if s.rng.Float64() < pNonLocal {
				remoteRead := inputPerTaskMB * w / (netPerTask * 0.9)
				waited := conf.LocalityWaitS + localRead
				dur += math.Min(waited, remoteRead)
			} else {
				dur += localRead
			}
		}

		// 2. Shuffle fetch (reduce stages).
		if fetchTotalMB > 0 {
			fetchMB := fetchTotalMB / float64(n) * w
			dur += fetchMB / (netPerTask * inFlight)
			dur += fetchMB / (diskPerTask * 2) // mapper-side disk reads
			uncompressed := fetchMB
			if conf.ShuffleCompress {
				uncompressed = fetchMB / cRatio
				dur += uncompressed * dCPU / coreSpeed
			}
			dur += uncompressed * serCPU / coreSpeed // deserialization
			sm.ShuffleRead += int64(fetchMB * mb)
		}

		// 3. Cached input: hits read from memory (cheap, maybe
		// decompressed), misses recompute from lineage.
		if stage.ReadsCachedFrom >= 0 {
			hit := records * cacheFrac
			miss := records - hit
			if cachedCompressed && hit > 0 {
				hitMB := hit * stage.MemPerRecordBytes / mb
				dur += hitMB * dCPU / coreSpeed
			}
			if miss > 0 {
				dur += miss * stage.RecomputePerRecord / taskSpeed
			}
		}

		// 4. Compute with GC overhead.
		compute := records * stage.ComputePerRecord / taskSpeed
		gc := compute * gcFrac
		dur += compute + gc
		gcSeconds += gc

		// 5. Spill when the working set exceeds the execution share.
		workingMB := records * stage.MemPerRecordBytes / mb
		if workingMB > execMemPerTask && execMemPerTask > 0 && !s.opts.Ablate.NoSpill {
			over := workingMB - execMemPerTask
			passes := 1 + math.Floor(over/execMemPerTask)
			spillMB := over * (1 + 0.5*math.Min(passes, 3)) // write + merge reread
			diskMB := spillMB
			if conf.ShuffleSpillCompress {
				dur += spillMB * (cCPU + dCPU) / coreSpeed
				diskMB *= cRatio
			}
			dur += 2 * diskMB / diskPerTask
			spillBytes += int64(diskMB * mb)
		}

		// 6. Shuffle write.
		if writePerTaskMB > 0 {
			dur += writeCPU*w + sortCPU*w
			dur += writeDiskMB * w / (diskPerTask * fileFactor)
			sm.ShuffleWrite += int64(writeDiskMB * w * mb)
		}

		// 7. Inherent straggler noise.
		noise := 1.0
		if !s.opts.Ablate.NoNoise {
			noise = stat.Lognormal(s.rng, -stragglerSigma*stragglerSigma/2, stragglerSigma)
		}
		durations[i] = dur * noise
	}

	// Speculative execution caps the straggler tail: clones of slow tasks
	// launch once the configured quantile of tasks has finished.
	if conf.Speculation && n >= 4 {
		sorted := append(s.scratch.sorted[:0], durations...)
		s.scratch.sorted = sorted
		sort.Float64s(sorted)
		q := stat.Quantile(sorted, conf.SpeculationQuantile)
		limit := q*conf.SpeculationMultiplier + 0.5
		for i := range durations {
			if durations[i] > limit {
				durations[i] = limit
			}
		}
	}

	// Driver-side task dispatch and stage bookkeeping.
	dispatch := float64(n) * 0.002 / float64(maxInt(conf.DriverCores, 1))
	overhead := 0.08 + dispatch
	if conf.SchedulerFair {
		overhead += float64(n) * 0.0002 // fair-share bookkeeping
	}
	// Aggressive heartbeats add driver load (second-order).
	overhead += float64(alloc.executors) * 0.0005 * (30 / float64(maxInt(conf.HeartbeatIntervalS, 1)))

	// Result collection back to the driver.
	collect := 0.0
	if stage.CollectMB > 0 {
		driverNet := inst.NetworkMBps / s.factors.Net
		collect = stage.CollectMB / driverNet
	}

	sm.SpillBytes = spillBytes
	// Convert aggregate per-task GC seconds into wall-clock time spent
	// collecting, assuming full slot occupancy.
	sm.GCSeconds = gcSeconds / math.Max(1, float64(alloc.slotsTotal))
	return stageWork{
		stage:     stage,
		sm:        sm,
		durations: durations,
		overhead:  broadcast + overhead + collect,
	}
}
