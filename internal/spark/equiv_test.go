package spark

import (
	"math/rand"
	"reflect"
	"testing"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/confspace"
	"seamlesstune/internal/stat"
)

// randomEquivJob builds a random but Validate-clean job: IDs equal
// positions, deps point backwards, cache reads reference cached stages.
func randomEquivJob(rng *rand.Rand) *Job {
	names := []string{"alpha", "beta", "gamma", "delta"}
	nStages := 1 + rng.Intn(6)
	job := &Job{
		Name:         names[rng.Intn(len(names))],
		Workload:     "equiv",
		DriverNeedMB: 64 + float64(rng.Intn(512)),
	}
	cachedIDs := []int{}
	for i := 0; i < nStages; i++ {
		st := Stage{
			ID:                i,
			Name:              "s",
			Partitions:        PartitionSource(rng.Intn(3)),
			Records:           int64(1+rng.Intn(2000)) * 10000,
			ComputePerRecord:  float64(1+rng.Intn(8)) * 1e-6,
			MemPerRecordBytes: float64(10 + rng.Intn(400)),
			MaxRecordMB:       float64(1 + rng.Intn(4)),
			ReadsCachedFrom:   -1,
		}
		if i == 0 || rng.Intn(2) == 0 {
			st.InputBytes = int64(1+rng.Intn(4096)) << 20
			job.InputBytes += st.InputBytes
		}
		// Deps: previous stage plus occasionally one extra earlier stage.
		if i > 0 {
			st.Deps = append(st.Deps, i-1)
			if i > 1 && rng.Intn(3) == 0 {
				st.Deps = append(st.Deps, rng.Intn(i-1))
			}
		}
		if rng.Intn(2) == 0 {
			st.ShuffleWriteBytes = int64(1+rng.Intn(2048)) << 20
		}
		if rng.Intn(3) == 0 {
			st.SkewAlpha = 1.1 + rng.Float64()*2
		}
		if rng.Intn(4) == 0 {
			st.BroadcastMB = float64(1 + rng.Intn(256))
		}
		if rng.Intn(5) == 0 {
			st.CollectMB = float64(1 + rng.Intn(64))
		}
		if rng.Intn(6) == 0 {
			st.HardMemMB = float64(64 + rng.Intn(8192))
		}
		if rng.Intn(3) == 0 {
			st.CacheOutput = true
			st.CacheBytes = int64(1+rng.Intn(1024)) << 20
			cachedIDs = append(cachedIDs, i)
		}
		if len(cachedIDs) > 0 && rng.Intn(3) == 0 {
			from := cachedIDs[rng.Intn(len(cachedIDs))]
			if from < i {
				st.ReadsCachedFrom = from
				st.RecomputePerRecord = float64(1+rng.Intn(5)) * 1e-6
			}
		}
		job.Stages = append(job.Stages, st)
	}
	return job
}

// equivOpts is the set of RunOpts variants the equivalence property
// cycles through: plain, executor churn, and each ablation.
var equivOpts = []RunOpts{
	{},
	{ExecutorMTBFHours: 1.5},
	{Ablate: Ablate{NoSkew: true}},
	{Ablate: Ablate{NoGC: true, NoSpill: true}},
	{Ablate: Ablate{NoCacheLimit: true, NoNoise: true}},
	{ExecutorMTBFHours: 0.5, Ablate: Ablate{NoSkew: true, NoNoise: true}},
}

// TestPooledMatchesNaiveProperty is the tentpole's correctness contract:
// the pooled fast path must be bit-identical to the retained naive
// simulator across randomized jobs, configurations, clusters, seeds and
// run options. reflect.DeepEqual over the full Result (every stage
// metric, every float) — not approximate comparison.
func TestPooledMatchesNaiveProperty(t *testing.T) {
	space := confspace.SparkSpace()
	g5, err := cloud.DefaultCatalog().Lookup("nimbus/g5.xlarge")
	if err != nil {
		t.Fatal(err)
	}
	h1, err := cloud.DefaultCatalog().Lookup("nimbus/h1.4xlarge")
	if err != nil {
		t.Fatal(err)
	}
	clusters := []cloud.ClusterSpec{
		{Instance: g5, Count: 4},
		{Instance: h1, Count: 4},
		{Instance: g5, Count: 10},
	}
	for seed := int64(0); seed < 300; seed++ {
		rng := stat.NewRNG(seed)
		job := randomEquivJob(rng)
		conf := FromConfig(space, space.Random(rng))
		cluster := clusters[rng.Intn(len(clusters))]
		factors := cloud.Factors{CPU: 1 + rng.Float64(), Net: 1 + rng.Float64(), Disk: 1 + rng.Float64()}
		opts := equivOpts[int(seed)%len(equivOpts)]

		got := runWith(job, conf, cluster, factors, opts, stat.NewRNG(seed))
		want := runWithNaive(job, conf, cluster, factors, opts, stat.NewRNG(seed))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: pooled and naive results differ\npooled: %+v\nnaive:  %+v", seed, got, want)
		}
		// Re-run the pooled path: a reused scratch must not leak state
		// between runs.
		again := runWith(job, conf, cluster, factors, opts, stat.NewRNG(seed))
		if !reflect.DeepEqual(again, want) {
			t.Fatalf("seed %d: pooled result changed on reuse\nfirst: %+v\nagain: %+v", seed, want, again)
		}
	}
}

// TestPooledMatchesNaiveFailurePaths pins the early-return gates
// (validation, allocation, Kryo, driver OOM, off-heap) to the naive
// semantics, including the synthetic runtimes they report.
func TestPooledMatchesNaiveFailurePaths(t *testing.T) {
	cluster := testCluster(t)
	cases := []struct {
		name string
		job  *Job
		conf Conf
	}{
		{"invalid job", &Job{Name: "bad", Stages: []Stage{{ID: 1}}}, reasonable()},
		{"empty job", &Job{Name: "empty"}, reasonable()},
		{"kryo overflow", func() *Job { j := scanJob(1024); j.Stages[0].MaxRecordMB = 1 << 16; return j }(), func() Conf {
			c := reasonable()
			c.Serializer = KryoSerializer
			c.KryoBufferMaxMB = 64
			return c
		}()},
		{"driver oom", func() *Job { j := scanJob(256); j.DriverNeedMB = 1 << 20; return j }(), reasonable()},
		{"tiny offheap", scanJob(256), func() Conf {
			c := reasonable()
			c.OffHeapEnabled = true
			c.OffHeapSizeMB = 16
			return c
		}()},
		{"no slots", scanJob(256), func() Conf {
			c := reasonable()
			c.TaskCPUs = c.ExecutorCores + 1
			return c
		}()},
	}
	for _, tc := range cases {
		got := runWith(tc.job, tc.conf, cluster, cloud.Unit(), RunOpts{}, stat.NewRNG(7))
		want := runWithNaive(tc.job, tc.conf, cluster, cloud.Unit(), RunOpts{}, stat.NewRNG(7))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: pooled %+v, naive %+v", tc.name, got, want)
		}
	}
}

// TestPlanHoistsAreDeterministic is the satellite determinism test for
// the hoisted skewMultipliers/numTasks: the plan's computed-once values
// must equal the naive per-run recomputation, and two fresh *Job values
// with equal content must share one plan (fingerprint keying).
func TestPlanHoistsAreDeterministic(t *testing.T) {
	rng := stat.NewRNG(42)
	for trial := 0; trial < 50; trial++ {
		seed := rng.Int63()
		job := randomEquivJob(stat.NewRNG(seed))
		clone := randomEquivJob(stat.NewRNG(seed))
		if planOf(job) != planOf(clone) {
			t.Fatalf("trial %d: equal-content jobs did not share a plan", trial)
		}
		plan := planOf(job)
		conf := reasonable()
		naive := naiveState{job: job, conf: conf}
		for i := range job.Stages {
			st := &job.Stages[i]
			n := plan.taskCount(st, &conf)
			if got := naive.numTasks(st); got != n {
				t.Fatalf("trial %d stage %d: taskCount %d, naive numTasks %d", trial, i, n, got)
			}
			w := plan.skewWeights(job, st, n)
			wantW := naive.skewMultipliers(st, n)
			if w == nil {
				for _, x := range wantW {
					if x != 1 {
						t.Fatalf("trial %d stage %d: plan says uniform, naive weight %v", trial, i, x)
					}
				}
				continue
			}
			if !reflect.DeepEqual(w, wantW) {
				t.Fatalf("trial %d stage %d: skew weights differ", trial, i)
			}
			// Cached weights must be identical (not just equal) on re-ask.
			if again := plan.skewWeights(job, st, n); &again[0] != &w[0] {
				t.Fatalf("trial %d stage %d: skew weights recomputed instead of cached", trial, i)
			}
		}
	}
}

// TestFingerprintSensitivity: any field change moves the fingerprint.
func TestFingerprintSensitivity(t *testing.T) {
	base := shuffleJob(512, 128)
	fp := base.Fingerprint()
	mutations := []func(*Job){
		func(j *Job) { j.Name = "agg2" },
		func(j *Job) { j.InputBytes++ },
		func(j *Job) { j.DriverNeedMB++ },
		func(j *Job) { j.Stages[0].Records++ },
		func(j *Job) { j.Stages[0].SkewAlpha = 1.5 },
		func(j *Job) { j.Stages[1].Deps = nil },
		func(j *Job) { j.Stages[1].CacheOutput = true },
		func(j *Job) { j.Stages = j.Stages[:1] },
	}
	for i, mut := range mutations {
		j := shuffleJob(512, 128)
		mut(j)
		if j.Fingerprint() == fp {
			t.Errorf("mutation %d did not change the fingerprint", i)
		}
	}
	if shuffleJob(512, 128).Fingerprint() != fp {
		t.Error("fingerprint not stable across rebuilds")
	}
}
