package spark

import (
	"testing"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/stat"
)

// branchJob builds two independent scan stages feeding one join stage —
// the driver can run the scans concurrently.
func branchJob(perBranchMB int64) *Job {
	return &Job{
		Name: "branch", Workload: "branch", InputBytes: 2 * perBranchMB << 20,
		DriverNeedMB: 256,
		Stages: []Stage{
			{
				ID: 0, Name: "scan-a", Partitions: FromInputSplits,
				InputBytes: perBranchMB << 20, Records: perBranchMB * 10000,
				ComputePerRecord: 2e-6, MemPerRecordBytes: 20,
				ShuffleWriteBytes: perBranchMB << 19,
				ReadsCachedFrom:   -1, MaxRecordMB: 1,
			},
			{
				ID: 1, Name: "scan-b", Partitions: FromInputSplits,
				InputBytes: perBranchMB << 20, Records: perBranchMB * 10000,
				ComputePerRecord: 2e-6, MemPerRecordBytes: 20,
				ShuffleWriteBytes: perBranchMB << 19,
				ReadsCachedFrom:   -1, MaxRecordMB: 1,
			},
			{
				ID: 2, Name: "join", Deps: []int{0, 1}, Partitions: FromParallelism,
				Records: perBranchMB * 5000, ComputePerRecord: 3e-6,
				MemPerRecordBytes: 150, ReadsCachedFrom: -1, MaxRecordMB: 1,
			},
		},
	}
}

// serialJob is the same work as branchJob but with an artificial
// dependency forcing the scans to run one after another.
func serialJob(perBranchMB int64) *Job {
	j := branchJob(perBranchMB)
	j.Stages[1].Deps = []int{0}
	return j
}

func TestIndependentStagesRunConcurrently(t *testing.T) {
	// With far more tasks than slots both orderings saturate the cluster
	// and take similar time; with few fat tasks, running the branches
	// concurrently must beat serializing them.
	conf := reasonable()
	conf.MaxPartitionBytesMB = 512 // few fat input tasks per scan
	cluster := testCluster(t)
	par := Run(branchJob(4096), conf, cluster, cloud.Unit(), stat.NewRNG(1))
	ser := Run(serialJob(4096), conf, cluster, cloud.Unit(), stat.NewRNG(1))
	if par.Failed || ser.Failed {
		t.Fatalf("unexpected failure: %v / %v", par.Reason, ser.Reason)
	}
	if par.RuntimeS >= ser.RuntimeS {
		t.Errorf("concurrent branches (%.1fs) not faster than serialized (%.1fs)", par.RuntimeS, ser.RuntimeS)
	}
}

func TestWaveMetricsCoverAllStages(t *testing.T) {
	res := Run(branchJob(1024), reasonable(), testCluster(t), cloud.Unit(), stat.NewRNG(2))
	if res.Failed {
		t.Fatal(res.Reason)
	}
	if len(res.Stages) != 3 {
		t.Fatalf("stage metrics = %d, want 3", len(res.Stages))
	}
	seen := map[int]bool{}
	for _, sm := range res.Stages {
		seen[sm.ID] = true
		if sm.DurationS <= 0 {
			t.Errorf("stage %d duration %v", sm.ID, sm.DurationS)
		}
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Errorf("missing stage metrics: %v", seen)
	}
}

func TestFairVsFIFOBothComplete(t *testing.T) {
	conf := reasonable()
	fifo := Run(branchJob(2048), conf, testCluster(t), cloud.Unit(), stat.NewRNG(3))
	conf.SchedulerFair = true
	fair := Run(branchJob(2048), conf, testCluster(t), cloud.Unit(), stat.NewRNG(3))
	if fifo.Failed || fair.Failed {
		t.Fatalf("unexpected failure: %v / %v", fifo.Reason, fair.Reason)
	}
	// Total work is identical; makespans should be within 25%.
	ratio := fair.RuntimeS / fifo.RuntimeS
	if ratio < 0.75 || ratio > 1.35 {
		t.Errorf("fair/fifo ratio = %.2f, want near 1", ratio)
	}
}

func TestExecutorFailureInjection(t *testing.T) {
	conf := reasonable()
	job := scanJob(8192)
	cluster := testCluster(t)
	// Without churn: no losses.
	clean := RunWith(job, conf, cluster, cloud.Unit(), RunOpts{}, stat.NewRNG(4))
	if clean.ExecutorsLost != 0 {
		t.Fatalf("losses without MTBF: %d", clean.ExecutorsLost)
	}
	// Aggressive churn: losses occur and runs slow down on average.
	var lostTotal int
	var cleanSum, churnSum float64
	for seed := int64(0); seed < 12; seed++ {
		c := RunWith(job, conf, cluster, cloud.Unit(), RunOpts{}, stat.NewRNG(100+seed))
		f := RunWith(job, conf, cluster, cloud.Unit(), RunOpts{ExecutorMTBFHours: 0.02}, stat.NewRNG(100+seed))
		if f.Failed || c.Failed {
			t.Fatalf("unexpected failure: %v / %v", f.Reason, c.Reason)
		}
		lostTotal += f.ExecutorsLost
		cleanSum += c.RuntimeS
		churnSum += f.RuntimeS
	}
	if lostTotal == 0 {
		t.Fatal("no executor losses under 72-second MTBF")
	}
	if churnSum <= cleanSum {
		t.Errorf("churn mean %.1f not above clean mean %.1f", churnSum/12, cleanSum/12)
	}
}

func TestShuffleServiceSoftensChurn(t *testing.T) {
	// The external shuffle service preserves shuffle files across
	// executor loss; with heavy churn it should help on average.
	job := shuffleJob(4096, 2048)
	cluster := testCluster(t)
	opts := RunOpts{ExecutorMTBFHours: 0.01}
	var with, without float64
	for seed := int64(0); seed < 16; seed++ {
		c := reasonable()
		c.ShuffleService = false
		without += RunWith(job, c, cluster, cloud.Unit(), opts, stat.NewRNG(200+seed)).RuntimeS
		c.ShuffleService = true
		with += RunWith(job, c, cluster, cloud.Unit(), opts, stat.NewRNG(200+seed)).RuntimeS
	}
	if with >= without {
		t.Errorf("shuffle service mean %.1f not below no-service mean %.1f", with/16, without/16)
	}
}

func TestChurnDegradesCacheHits(t *testing.T) {
	// An iterative job under churn loses cached partitions.
	stages := []Stage{{
		ID: 0, Name: "build", Partitions: FromInputSplits,
		InputBytes: 1 << 30, Records: 5e6, ComputePerRecord: 2e-6,
		MemPerRecordBytes: 60, CacheOutput: true, CacheBytes: 2 << 30,
		ReadsCachedFrom: -1, MaxRecordMB: 1,
	}}
	for i := 1; i <= 6; i++ {
		stages = append(stages, Stage{
			ID: i, Name: "iter", Deps: []int{i - 1}, Partitions: FromParallelism,
			Records: 5e6, ComputePerRecord: 1e-6, MemPerRecordBytes: 60,
			ShuffleWriteBytes: 64 << 20,
			ReadsCachedFrom:   0, RecomputePerRecord: 4e-6, MaxRecordMB: 1,
		})
	}
	job := &Job{Name: "iter", Workload: "iter", InputBytes: 1 << 30, DriverNeedMB: 256, Stages: stages}
	conf := reasonable()
	res := RunWith(job, conf, testCluster(t), cloud.Unit(), RunOpts{ExecutorMTBFHours: 0.01}, stat.NewRNG(7))
	if res.Failed {
		t.Fatal(res.Reason)
	}
	if res.ExecutorsLost == 0 {
		t.Skip("no loss drawn for this seed")
	}
	last := res.Stages[len(res.Stages)-1]
	if last.CacheHitFrac >= 1 {
		t.Errorf("cache hit frac %.2f after %d executor losses, want < 1", last.CacheHitFrac, res.ExecutorsLost)
	}
}
