// Package spark implements a discrete-event simulator of a Spark-like
// DISC system, faithful to the architecture of Fig. 2 in the paper: a
// driver turns a job's RDD lineage into a DAG of stages, each stage into a
// set of tasks over partitions, and tasks are scheduled onto executor
// slots spread across a provisioned cluster.
//
// The simulator's purpose is to expose a realistic configuration→runtime
// response surface, with the mechanisms that make real Spark tuning hard:
// executor sizing versus instance shapes (bin packing), a unified memory
// manager with spill and OOM cliffs, sort-based shuffle with compression
// trade-offs, GC pressure, data skew, stragglers and speculative
// execution, locality wait, per-task scheduling overhead, and co-location
// interference. Misconfigurations degrade runtime by one to two orders of
// magnitude or crash outright — matching the 12×/89× observations the
// paper cites.
package spark

import (
	"seamlesstune/internal/confspace"
)

// Codec identifies a shuffle/RDD compression codec.
type Codec int

// Supported codecs. Ratios and CPU costs follow their real-world ordering:
// snappy fastest/lightest, zstd smallest/most CPU.
const (
	LZ4 Codec = iota
	LZF
	Snappy
	Zstd
)

// String implements fmt.Stringer.
func (c Codec) String() string {
	switch c {
	case LZ4:
		return confspace.CodecLZ4
	case LZF:
		return confspace.CodecLZF
	case Snappy:
		return confspace.CodecSnappy
	case Zstd:
		return confspace.CodecZstd
	default:
		return "unknown"
	}
}

// Serializer identifies the object serializer.
type Serializer int

// Supported serializers: Java (default, slow) and Kryo (fast, needs a
// large-enough buffer).
const (
	JavaSerializer Serializer = iota
	KryoSerializer
)

// String implements fmt.Stringer.
func (s Serializer) String() string {
	if s == KryoSerializer {
		return confspace.SerializerKryo
	}
	return confspace.SerializerJava
}

// Conf is the typed Spark configuration consumed by the simulator —
// the decoded form of the 41-parameter confspace.SparkSpace.
type Conf struct {
	ExecutorInstances    int
	ExecutorCores        int
	ExecutorMemoryMB     int
	MemoryOverheadFactor float64
	DriverMemoryMB       int
	DriverCores          int
	DefaultParallelism   int
	ShufflePartitions    int
	MemoryFraction       float64
	StorageFraction      float64

	ShuffleCompress      bool
	ShuffleSpillCompress bool
	RDDCompress          bool
	BroadcastCompress    bool
	Codec                Codec
	CompressionBlockKB   int

	Serializer      Serializer
	KryoBufferMaxMB int

	ReducerMaxInFlightMB int
	ShuffleFileBufferKB  int
	ShuffleBypassMerge   int
	ShuffleConnsPerPeer  int
	ShuffleService       bool

	LocalityWaitS         float64
	Speculation           bool
	SpeculationMultiplier float64
	SpeculationQuantile   float64

	TaskCPUs        int
	TaskMaxFailures int
	SchedulerFair   bool

	BroadcastBlockMB     int
	NetworkTimeoutS      int
	HeartbeatIntervalS   int
	MemoryMapThresholdMB int

	DynAllocEnabled      bool
	DynAllocMaxExecutors int

	MaxPartitionBytesMB int

	OffHeapEnabled bool
	OffHeapSizeMB  int

	PeriodicGCIntervalMin int
	GCThreads             int
}

// DefaultConf returns the simulator's view of Spark's documented defaults.
func DefaultConf() Conf {
	return FromConfig(confspace.SparkSpace(), confspace.SparkSpace().Default())
}

// FromConfig decodes a confspace configuration drawn from (a subspace of)
// the Spark space into a typed Conf. Parameters absent from cfg keep the
// full space's defaults, so tuners may search low-dimensional subspaces.
func FromConfig(s *confspace.Space, cfg confspace.Config) Conf {
	full := confspace.SparkSpace()
	merged := full.Default()
	for k, v := range cfg {
		if _, err := full.Param(k); err == nil {
			merged[k] = v
		}
	}
	codec := LZ4
	switch full.ChoiceValue(merged, confspace.ParamCompressionCodec) {
	case confspace.CodecLZF:
		codec = LZF
	case confspace.CodecSnappy:
		codec = Snappy
	case confspace.CodecZstd:
		codec = Zstd
	}
	ser := JavaSerializer
	if full.ChoiceValue(merged, confspace.ParamSerializer) == confspace.SerializerKryo {
		ser = KryoSerializer
	}
	return Conf{
		ExecutorInstances:    merged.Int(confspace.ParamExecutorInstances),
		ExecutorCores:        merged.Int(confspace.ParamExecutorCores),
		ExecutorMemoryMB:     merged.Int(confspace.ParamExecutorMemoryMB),
		MemoryOverheadFactor: merged.Float(confspace.ParamMemoryOverheadFactor),
		DriverMemoryMB:       merged.Int(confspace.ParamDriverMemoryMB),
		DriverCores:          merged.Int(confspace.ParamDriverCores),
		DefaultParallelism:   merged.Int(confspace.ParamDefaultParallelism),
		ShufflePartitions:    merged.Int(confspace.ParamShufflePartitions),
		MemoryFraction:       merged.Float(confspace.ParamMemoryFraction),
		StorageFraction:      merged.Float(confspace.ParamStorageFraction),

		ShuffleCompress:      merged.Bool(confspace.ParamShuffleCompress),
		ShuffleSpillCompress: merged.Bool(confspace.ParamShuffleSpillCompress),
		RDDCompress:          merged.Bool(confspace.ParamRDDCompress),
		BroadcastCompress:    merged.Bool(confspace.ParamBroadcastCompress),
		Codec:                codec,
		CompressionBlockKB:   merged.Int(confspace.ParamCompressionBlockKB),

		Serializer:      ser,
		KryoBufferMaxMB: merged.Int(confspace.ParamKryoBufferMaxMB),

		ReducerMaxInFlightMB: merged.Int(confspace.ParamReducerMaxInFlightMB),
		ShuffleFileBufferKB:  merged.Int(confspace.ParamShuffleFileBufferKB),
		ShuffleBypassMerge:   merged.Int(confspace.ParamShuffleBypassMerge),
		ShuffleConnsPerPeer:  merged.Int(confspace.ParamShuffleConnsPerPeer),
		ShuffleService:       merged.Bool(confspace.ParamShuffleServiceEnabled),

		LocalityWaitS:         merged.Float(confspace.ParamLocalityWait),
		Speculation:           merged.Bool(confspace.ParamSpeculation),
		SpeculationMultiplier: merged.Float(confspace.ParamSpeculationMultiplier),
		SpeculationQuantile:   merged.Float(confspace.ParamSpeculationQuantile),

		TaskCPUs:        merged.Int(confspace.ParamTaskCPUs),
		TaskMaxFailures: merged.Int(confspace.ParamTaskMaxFailures),
		SchedulerFair:   full.ChoiceValue(merged, confspace.ParamSchedulerMode) == "FAIR",

		BroadcastBlockMB:     merged.Int(confspace.ParamBroadcastBlockMB),
		NetworkTimeoutS:      merged.Int(confspace.ParamNetworkTimeout),
		HeartbeatIntervalS:   merged.Int(confspace.ParamHeartbeatInterval),
		MemoryMapThresholdMB: merged.Int(confspace.ParamMemoryMapThresholdMB),

		DynAllocEnabled:      merged.Bool(confspace.ParamDynAllocEnabled),
		DynAllocMaxExecutors: merged.Int(confspace.ParamDynAllocMaxExecutors),

		MaxPartitionBytesMB: merged.Int(confspace.ParamMaxPartitionBytesMB),

		OffHeapEnabled: merged.Bool(confspace.ParamOffHeapEnabled),
		OffHeapSizeMB:  merged.Int(confspace.ParamOffHeapSizeMB),

		PeriodicGCIntervalMin: merged.Int(confspace.ParamPeriodicGCIntervalMin),
		GCThreads:             merged.Int(confspace.ParamGCThreads),
	}
}

// minOverheadMB is the resource-manager floor on executor memory overhead
// (YARN uses 384 MB).
const minOverheadMB = 384

// OverheadMB returns the executor's memory-overhead region: the configured
// factor of the heap, floored at the resource manager's minimum.
func (c Conf) OverheadMB() float64 {
	m := float64(c.ExecutorMemoryMB) * c.MemoryOverheadFactor
	if m < minOverheadMB {
		m = minOverheadMB
	}
	return m
}

// ContainerMemoryMB returns the total memory footprint of one executor
// container: heap plus overhead plus any off-heap region. This is what the
// resource manager bin-packs onto nodes.
func (c Conf) ContainerMemoryMB() int {
	m := float64(c.ExecutorMemoryMB) + c.OverheadMB()
	if c.OffHeapEnabled {
		m += float64(c.OffHeapSizeMB)
	}
	return int(m)
}

// SlotsPerExecutor returns the number of concurrent tasks one executor
// runs (cores / task.cpus, at least zero).
func (c Conf) SlotsPerExecutor() int {
	if c.TaskCPUs <= 0 {
		return 0
	}
	return c.ExecutorCores / c.TaskCPUs
}

// RequestedExecutors returns the executor count the application asks for,
// honouring dynamic allocation.
func (c Conf) RequestedExecutors() int {
	if c.DynAllocEnabled {
		return c.DynAllocMaxExecutors
	}
	return c.ExecutorInstances
}
