package spark_test

import (
	"testing"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/confspace"
	"seamlesstune/internal/spark"
	"seamlesstune/internal/stat"
	"seamlesstune/internal/workload"
)

// scaledRun executes a workload on n nodes with a configuration sized to
// the cluster, averaging over a few seeds.
func scaledRun(t *testing.T, w workload.Workload, sizeGB, nodes int) float64 {
	t.Helper()
	it, err := cloud.DefaultCatalog().Lookup("nimbus/g5.2xlarge")
	if err != nil {
		t.Fatal(err)
	}
	cluster := cloud.ClusterSpec{Instance: it, Count: nodes}
	space := confspace.SparkSpace()
	cfg := space.Default()
	cfg[confspace.ParamExecutorCores] = 4
	cfg[confspace.ParamExecutorInstances] = float64(2 * nodes)
	cfg[confspace.ParamExecutorMemoryMB] = 12288
	cfg[confspace.ParamDriverMemoryMB] = 4096
	p, _ := space.Param(confspace.ParamDefaultParallelism)
	cfg[confspace.ParamDefaultParallelism] = p.Clamp(float64(16 * nodes))
	conf := spark.FromConfig(space, cfg)
	job := w.Job(int64(sizeGB) << 30)
	// Skew realizations change with partition counts and straggler noise
	// varies per run; ablate both so the test isolates the scaling law.
	opts := spark.RunOpts{Ablate: spark.Ablate{NoSkew: true, NoNoise: true}}
	res := spark.RunWith(job, conf, cluster, cloud.Unit(), opts, stat.NewRNG(100))
	if res.Failed {
		t.Fatalf("%s on %d nodes failed: %s", w.Name(), nodes, res.Reason)
	}
	return res.RuntimeS
}

// The simulator must reproduce the qualitative scaling laws real DISC
// systems obey — the laws Ernest's model is built on.

func TestScalingSpeedupIsSublinear(t *testing.T) {
	// Doubling the cluster helps, but never by a full 2x (coordination,
	// stragglers, per-task overheads).
	for _, w := range []workload.Workload{workload.Sort{}, workload.Wordcount{}} {
		t2 := scaledRun(t, w, 16, 2)
		t4 := scaledRun(t, w, 16, 4)
		t8 := scaledRun(t, w, 16, 8)
		if t4 >= t2 || t8 >= t4 {
			t.Errorf("%s: no speedup from scale: %.1f / %.1f / %.1f", w.Name(), t2, t4, t8)
		}
		if s := t2 / t4; s >= 2.05 {
			t.Errorf("%s: 2->4 nodes speedup %.2f, want sublinear", w.Name(), s)
		}
		if s := t4 / t8; s >= 2.05 {
			t.Errorf("%s: 4->8 nodes speedup %.2f, want sublinear", w.Name(), s)
		}
	}
}

func TestScalingDiminishingReturns(t *testing.T) {
	// The marginal speedup of each doubling shrinks (Amdahl-style): the
	// serial fraction (driver overheads, stage barriers) grows relatively.
	w := workload.Wordcount{}
	t2 := scaledRun(t, w, 8, 2)
	t4 := scaledRun(t, w, 8, 4)
	t8 := scaledRun(t, w, 8, 8)
	t16 := scaledRun(t, w, 8, 16)
	first := t2 / t4
	last := t8 / t16
	if last >= first {
		t.Errorf("marginal speedups should shrink: 2->4 gave %.2fx, 8->16 gave %.2fx", first, last)
	}
}

func TestScalingRuntimeRoughlyLinearInData(t *testing.T) {
	// For a streaming scan, 4x the input on the same cluster costs ~4x
	// the time (within generous bounds).
	w := workload.Wordcount{}
	small := scaledRun(t, w, 4, 4)
	big := scaledRun(t, w, 16, 4)
	ratio := big / small
	if ratio < 2.5 || ratio > 6 {
		t.Errorf("4x data runtime ratio = %.2f, want roughly linear", ratio)
	}
}

func TestScalingShuffleHeavyScalesWorse(t *testing.T) {
	// Sort (full-data shuffle) benefits less from extra nodes than the
	// embarrassingly parallel Wordcount at the same scale step.
	wcSpeedup := scaledRun(t, workload.Wordcount{}, 16, 4) / scaledRun(t, workload.Wordcount{}, 16, 16)
	sortSpeedup := scaledRun(t, workload.Sort{}, 16, 4) / scaledRun(t, workload.Sort{}, 16, 16)
	if sortSpeedup >= wcSpeedup*1.15 {
		t.Errorf("sort speedup %.2fx clearly above wordcount %.2fx; shuffle should pay a coordination tax",
			sortSpeedup, wcSpeedup)
	}
}
