package spark

import (
	"errors"
	"fmt"
)

// PartitionSource selects how a stage's task count is derived, mirroring
// Spark: input stages follow the input-split size, RDD-level shuffles
// follow spark.default.parallelism, and SQL/aggregation shuffles follow
// spark.sql.shuffle.partitions.
type PartitionSource int

// Partition sources.
const (
	FromInputSplits PartitionSource = iota
	FromParallelism
	FromShufflePartitions
)

// Stage describes one stage of a job's physical plan (one node of the DAG
// of Fig. 2). All data volumes are pre-resolved by the workload builder.
type Stage struct {
	ID   int
	Name string

	// Deps lists parent stage IDs whose shuffle output this stage reads.
	Deps []int

	// Partitions selects the task-count rule.
	Partitions PartitionSource

	// InputBytes is external input read by this stage (input stages only).
	InputBytes int64
	// Records processed by the stage in total.
	Records int64

	// ComputePerRecord is CPU seconds per record on a baseline core.
	ComputePerRecord float64
	// MemPerRecordBytes is working memory per record held during the task
	// (hash/aggregation structures); drives spill.
	MemPerRecordBytes float64
	// HardMemMB is the non-spillable per-task memory floor; a task whose
	// execution-memory share is below this OOMs.
	HardMemMB float64
	// MaxRecordMB bounds the largest serialized record; Kryo needs a
	// buffer at least this large.
	MaxRecordMB float64

	// ShuffleWriteBytes is the uncompressed shuffle output of the stage.
	ShuffleWriteBytes int64

	// SkewAlpha shapes partition-size skew (Pareto tail index). 0 means
	// uniform partitions; smaller positive values mean heavier skew.
	SkewAlpha float64

	// CacheOutput marks the stage's RDD to be cached for later stages.
	CacheOutput bool
	// CacheBytes is the in-memory size of the cached RDD (uncompressed).
	CacheBytes int64
	// ReadsCachedFrom is the stage ID of a cached RDD consumed by this
	// stage, or -1. A cache miss forces recomputation.
	ReadsCachedFrom int
	// RecomputePerRecord is CPU seconds per record to regenerate a missing
	// cached partition from lineage.
	RecomputePerRecord float64

	// BroadcastMB is broadcast data shipped to every executor at stage
	// start (e.g. a model or dimension table).
	BroadcastMB float64

	// CollectMB is the result volume returned to the driver at stage end.
	CollectMB float64
}

// Job is a physical execution plan: stages in topological order, plus
// driver-side requirements.
type Job struct {
	Name string
	// Workload identifies the workload type that built this job
	// (for history records; e.g. "pagerank").
	Workload string
	// InputBytes is the job's total external input (for reporting).
	InputBytes int64
	Stages     []Stage
	// DriverNeedMB is the driver heap needed for bookkeeping plus
	// collected results; exceeding driver memory fails the job.
	DriverNeedMB float64
}

// ErrBadJob reports a malformed physical plan.
var ErrBadJob = errors.New("spark: malformed job")

// Validate checks the DAG: IDs match positions, dependencies point
// backwards (topological order), cache references are declared.
func (j *Job) Validate() error {
	if len(j.Stages) == 0 {
		return fmt.Errorf("%w: no stages", ErrBadJob)
	}
	cached := make(map[int]bool)
	for i, s := range j.Stages {
		if s.ID != i {
			return fmt.Errorf("%w: stage %d has ID %d", ErrBadJob, i, s.ID)
		}
		for _, d := range s.Deps {
			if d < 0 || d >= i {
				return fmt.Errorf("%w: stage %d depends on %d (not topological)", ErrBadJob, i, d)
			}
		}
		if s.ReadsCachedFrom >= 0 {
			if !cached[s.ReadsCachedFrom] {
				return fmt.Errorf("%w: stage %d reads cache of %d which is not cached", ErrBadJob, i, s.ReadsCachedFrom)
			}
		}
		if s.Records < 0 || s.InputBytes < 0 || s.ShuffleWriteBytes < 0 {
			return fmt.Errorf("%w: stage %d has negative volumes", ErrBadJob, i)
		}
		if s.CacheOutput {
			cached[s.ID] = true
		}
	}
	return nil
}

// TotalShuffleBytes sums uncompressed shuffle output across stages.
func (j *Job) TotalShuffleBytes() int64 {
	var sum int64
	for _, s := range j.Stages {
		sum += s.ShuffleWriteBytes
	}
	return sum
}

// StageMetrics reports what one stage did during a run.
type StageMetrics struct {
	ID           int
	Name         string
	Tasks        int
	DurationS    float64
	InputBytes   int64 // external input read by the stage
	ShuffleRead  int64 // compressed bytes fetched over the network
	ShuffleWrite int64 // compressed bytes written by the map side
	SpillBytes   int64
	GCSeconds    float64
	CacheHitFrac float64 // fraction of cached input served from memory
	FailedTasks  int
}

// Result reports one simulated execution.
type Result struct {
	// RuntimeS is the job makespan in simulated seconds. For failed runs
	// it covers the time spent before the failure.
	RuntimeS float64
	// CostUSD is the cluster rental cost of the run.
	CostUSD float64
	// Failed marks runs that crashed (OOM, allocation failure, ...).
	Failed bool
	Reason string
	Stages []StageMetrics

	// Aggregates across stages.
	TotalSpillBytes   int64
	TotalShuffleRead  int64
	TotalShuffleWrite int64
	TotalGCSeconds    float64
	// Executors actually launched after bin-packing onto the cluster.
	Executors int
	// SlotsTotal is the cluster-wide concurrent task capacity.
	SlotsTotal int
	// ExecutorsLost counts executor failures injected during the run
	// (RunOpts.ExecutorMTBFHours).
	ExecutorsLost int
}

// String summarizes the result on one line.
func (r Result) String() string {
	if r.Failed {
		return fmt.Sprintf("FAILED after %.1fs: %s", r.RuntimeS, r.Reason)
	}
	return fmt.Sprintf("ok runtime=%.1fs cost=$%.4f execs=%d spill=%dMB gc=%.1fs",
		r.RuntimeS, r.CostUSD, r.Executors, r.TotalSpillBytes>>20, r.TotalGCSeconds)
}
