package spark

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/stat"
)

// This file retains the pre-optimization simulator verbatim. The pooled
// fast path in run.go must stay bit-identical to it — equivalence and
// property tests (equiv_test.go) run both implementations on randomized
// jobs, configurations and seeds and require exactly equal Results. The
// naive path allocates freshly on every call and recomputes every
// per-job invariant, so it is also the allocation baseline the
// BenchmarkRunWithNaive numbers in BENCH_sim.json come from.
//
// Do not "fix" or optimize this file: it is the reference semantics.

// runWithNaive is the retained reference simulation.
func runWithNaive(job *Job, conf Conf, cluster cloud.ClusterSpec, factors cloud.Factors, opts RunOpts, rng *rand.Rand) Result {
	if err := job.Validate(); err != nil {
		return Result{Failed: true, Reason: ReasonBadJob}
	}
	if err := cluster.Validate(); err != nil {
		return Result{Failed: true, Reason: ReasonBadCluster}
	}
	if factors == (cloud.Factors{}) {
		factors = cloud.Unit()
	}

	alloc, failReason := allocate(conf, cluster)
	if failReason != "" {
		return Result{Failed: true, Reason: failReason, RuntimeS: 15, CostUSD: cluster.CostOf(15)}
	}

	if conf.Serializer == KryoSerializer {
		for _, s := range job.Stages {
			if s.MaxRecordMB > float64(conf.KryoBufferMaxMB) {
				t := 20.0
				return Result{Failed: true, Reason: ReasonKryoOverflow, RuntimeS: t, CostUSD: cluster.CostOf(t)}
			}
		}
	}

	driverNeed := job.DriverNeedMB
	for _, s := range job.Stages {
		driverNeed += s.BroadcastMB
	}
	if driverNeed > float64(conf.DriverMemoryMB) {
		t := 10.0
		return Result{Failed: true, Reason: ReasonDriverOOM, RuntimeS: t, CostUSD: cluster.CostOf(t)}
	}

	if conf.OffHeapEnabled && conf.OffHeapSizeMB < 128 {
		t := 30.0
		return Result{Failed: true, Reason: ReasonContainerKilled, RuntimeS: t, CostUSD: cluster.CostOf(t)}
	}
	needOverheadMB := 256 + 0.25*float64(conf.ReducerMaxInFlightMB*conf.ShuffleConnsPerPeer) +
		0.02*float64(conf.ExecutorMemoryMB)
	containerPressure := stat.Clamp((needOverheadMB-conf.OverheadMB())/needOverheadMB, 0, 0.6)

	sim := &naiveState{
		job: job, conf: conf, cluster: cluster, factors: factors, rng: rng,
		opts: opts, alloc: alloc, containerPressure: containerPressure,
		cached: make(map[int]cacheEntry),
	}
	return sim.run()
}

// naiveState is the retained reference of the pre-optimization runState.
type naiveState struct {
	job     *Job
	conf    Conf
	cluster cloud.ClusterSpec
	factors cloud.Factors
	rng     *rand.Rand
	opts    RunOpts
	alloc   allocation

	containerPressure float64
	cached            map[int]cacheEntry
	storageUsedMB     float64

	res Result
}

func (s *naiveState) coreSpeed() float64 {
	return s.cluster.Instance.CPUFactor / s.factors.CPU
}

func (s *naiveState) storageCapMB() float64 {
	perExec := float64(s.conf.ExecutorMemoryMB) * s.conf.MemoryFraction * s.conf.StorageFraction
	return perExec * float64(s.alloc.executors)
}

func (s *naiveState) execMemPerTaskMB() float64 {
	unifiedPerExec := float64(s.conf.ExecutorMemoryMB) * s.conf.MemoryFraction
	protectedPerExec := unifiedPerExec * s.conf.StorageFraction
	cachePerExec := s.storageUsedMB / float64(s.alloc.executors)
	pinned := math.Min(cachePerExec, protectedPerExec)
	execAvail := unifiedPerExec - pinned
	if s.conf.OffHeapEnabled {
		execAvail += float64(s.conf.OffHeapSizeMB)
	}
	if execAvail < 0 {
		execAvail = 0
	}
	return execAvail / float64(s.alloc.slotsPer)
}

func (s *naiveState) heapUtil(taskWorkingMB float64) float64 {
	heap := float64(s.conf.ExecutorMemoryMB)
	cachePerExec := s.storageUsedMB / float64(s.alloc.executors)
	inUse := cachePerExec + taskWorkingMB*float64(s.alloc.slotsPer) + 0.12*heap
	return inUse / heap
}

func (s *naiveState) run() Result {
	conf, alloc := s.conf, s.alloc
	s.res.Executors = alloc.executors
	s.res.SlotsTotal = alloc.slotsTotal

	clock := 2.0 + 0.08*float64(alloc.executors)
	if conf.DynAllocEnabled {
		clock += 1.5
	}

	pressureMult := 1 + 0.5*s.containerPressure

	done := make(map[int]bool, len(s.job.Stages))
	metricAt := make(map[int]int, len(s.job.Stages))
	for len(done) < len(s.job.Stages) && !s.res.Failed {
		var wave []stageWork
		for i := range s.job.Stages {
			stage := &s.job.Stages[i]
			if done[stage.ID] {
				continue
			}
			ready := true
			for _, d := range stage.Deps {
				if !done[d] {
					ready = false
					break
				}
			}
			if ready {
				wave = append(wave, s.prepareStage(stage))
			}
		}
		if len(wave) == 0 {
			s.res.Failed = true
			s.res.Reason = ReasonBadJob
			break
		}

		combined := combineWave(wave, conf.SchedulerFair)
		waveMakespan := listSchedule(combined, alloc.slotsTotal) * pressureMult
		overheads := 0.0
		failReason := ""
		for _, w := range wave {
			overheads += w.overhead
			own := listSchedule(w.durations, alloc.slotsTotal) * pressureMult
			w.sm.DurationS = own + w.overhead
			if w.failReason != "" && failReason == "" {
				failReason = w.failReason
			}
			metricAt[w.stage.ID] = len(s.res.Stages)
			s.res.Stages = append(s.res.Stages, w.sm)
			s.res.TotalSpillBytes += w.sm.SpillBytes
			s.res.TotalShuffleRead += w.sm.ShuffleRead
			s.res.TotalShuffleWrite += w.sm.ShuffleWrite
			s.res.TotalGCSeconds += w.sm.GCSeconds
			done[w.stage.ID] = true
		}
		clock += waveMakespan + overheads
		if failReason != "" {
			s.res.Failed = true
			s.res.Reason = failReason
			break
		}
		for _, w := range wave {
			if w.stage.CacheOutput {
				s.admitCache(w.stage)
			}
		}

		if s.opts.ExecutorMTBFHours > 0 && waveMakespan > 0 {
			lossP := 1 - math.Exp(-float64(alloc.executors)*waveMakespan/3600/s.opts.ExecutorMTBFHours)
			if s.rng.Float64() < lossP {
				s.res.ExecutorsLost++
				share := 1 / float64(alloc.executors)
				penalty := 10 + waveMakespan*share
				if !conf.ShuffleService {
					penalty += waveMakespan * share
				}
				clock += penalty
				for id, e := range s.cached {
					e.frac *= 1 - share
					s.cached[id] = e
				}
				if len(wave) > 0 {
					idx := metricAt[wave[len(wave)-1].stage.ID]
					s.res.Stages[idx].DurationS += penalty
				}
			}
		}
	}

	s.res.RuntimeS = clock
	s.res.CostUSD = s.cluster.CostOf(clock)
	return s.res
}

func (s *naiveState) admitCache(stage *Stage) {
	sizeMB := float64(stage.CacheBytes) / mb
	if s.conf.RDDCompress {
		prof := codecTable(s.conf.Codec)
		sizeMB *= prof.ratio
	}
	avail := s.storageCapMB() - s.storageUsedMB
	frac := 1.0
	if sizeMB > 0 && !s.opts.Ablate.NoCacheLimit {
		frac = stat.Clamp(avail/sizeMB, 0, 1)
	}
	s.cached[stage.ID] = cacheEntry{sizeMB: sizeMB, frac: frac}
	s.storageUsedMB += sizeMB * frac
}

func (s *naiveState) numTasks(stage *Stage) int {
	switch stage.Partitions {
	case FromInputSplits:
		splits := int(math.Ceil(float64(stage.InputBytes) / (float64(s.conf.MaxPartitionBytesMB) * mb)))
		return maxInt(splits, 1)
	case FromShufflePartitions:
		return maxInt(s.conf.ShufflePartitions, 1)
	default:
		return maxInt(s.conf.DefaultParallelism, 1)
	}
}

func (s *naiveState) skewMultipliers(stage *Stage, n int) []float64 {
	w := make([]float64, n)
	if stage.SkewAlpha <= 0 || s.opts.Ablate.NoSkew {
		for i := range w {
			w[i] = 1
		}
		return w
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d/%d", s.job.Name, stage.ID, n)
	skewRNG := stat.NewRNG(int64(h.Sum64()))
	sum := 0.0
	for i := range w {
		w[i] = stat.Pareto(skewRNG, 1, stage.SkewAlpha)
		sum += w[i]
	}
	scale := float64(n) / sum
	for i := range w {
		w[i] *= scale
	}
	return w
}

func (s *naiveState) prepareStage(stage *Stage) stageWork {
	conf, alloc, inst := s.conf, s.alloc, s.cluster.Instance
	n := s.numTasks(stage)
	sm := StageMetrics{ID: stage.ID, Name: stage.Name, Tasks: n, InputBytes: stage.InputBytes}

	concurrentPerNode := math.Max(1, float64(minInt(n, alloc.slotsTotal))/float64(s.cluster.Count))
	diskPerTask := inst.DiskMBps / s.factors.Disk / concurrentPerNode
	netPerTask := inst.NetworkMBps / s.factors.Net / concurrentPerNode

	coreSpeed := s.coreSpeed()
	taskSpeed := coreSpeed * (1 + 0.6*float64(conf.TaskCPUs-1))

	serCPU, serSize := serializerProfile(conf.Serializer)
	codec := codecTable(conf.Codec)
	ratioMul, cpuMul := blockSizeFactor(conf.CompressionBlockKB)
	cRatio, cCPU, dCPU := codec.ratio*ratioMul, codec.compressS*cpuMul, codec.decompress*cpuMul

	execMemPerTask := s.execMemPerTaskMB()

	if stage.HardMemMB > 0 && execMemPerTask < stage.HardMemMB {
		attempts := maxInt(conf.TaskMaxFailures, 1)
		waste := 6.0 * float64(attempts)
		sm.DurationS = waste
		sm.FailedTasks = attempts
		return stageWork{stage: stage, sm: sm, overhead: waste, failReason: ReasonTaskOOM}
	}

	broadcast := 0.0
	if stage.BroadcastMB > 0 {
		bMB := stage.BroadcastMB
		cpu := 0.0
		if conf.BroadcastCompress {
			cpu += stage.BroadcastMB * (cCPU + dCPU) / coreSpeed
			bMB *= cRatio
		}
		blocks := math.Ceil(bMB / float64(maxInt(conf.BroadcastBlockMB, 1)))
		perExecNet := inst.NetworkMBps / s.factors.Net / math.Max(1, alloc.execsPerNode)
		depth := math.Log2(float64(alloc.executors) + 1)
		broadcast = bMB/perExecNet*depth + 0.002*blocks + cpu
	}

	var fetchTotalMB float64
	for _, d := range stage.Deps {
		for _, m := range s.res.Stages {
			if m.ID == d {
				fetchTotalMB += float64(m.ShuffleWrite) / mb
			}
		}
	}

	inputPerTaskMB := float64(stage.InputBytes) / mb / float64(n)
	pNonLocal := math.Max(0, 1-float64(alloc.nodesUsed)/float64(s.cluster.Count))

	writePerTaskMB := float64(stage.ShuffleWriteBytes) / mb / float64(n) * serSize
	writeDiskMB := writePerTaskMB
	writeCPU := writePerTaskMB * serCPU / coreSpeed
	if conf.ShuffleCompress && writePerTaskMB > 0 {
		writeCPU += writePerTaskMB * cCPU / coreSpeed
		writeDiskMB *= cRatio
	}
	downstreamParts := float64(maxInt(conf.ShufflePartitions, conf.DefaultParallelism))
	sortCPU := 0.0
	if stage.ShuffleWriteBytes > 0 {
		if int(downstreamParts) <= conf.ShuffleBypassMerge {
			sortCPU = 0.0001 * downstreamParts / coreSpeed
		} else {
			sortCPU = writePerTaskMB * 0.004 / coreSpeed
		}
	}
	fileFactor := fileBufferFactor(conf.ShuffleFileBufferKB)
	inFlight := inFlightFactor(conf.ReducerMaxInFlightMB, conf.ShuffleConnsPerPeer)

	var cacheFrac float64
	var cachedCompressed bool
	if stage.ReadsCachedFrom >= 0 {
		e, ok := s.cached[stage.ReadsCachedFrom]
		if ok {
			cacheFrac = e.frac
		}
		cachedCompressed = s.conf.RDDCompress
		sm.CacheHitFrac = cacheFrac
	}

	recordsPerTask := float64(stage.Records) / float64(n)
	workingMBBase := recordsPerTask * stage.MemPerRecordBytes / mb
	gcFrac := gcFraction(s.heapUtil(math.Min(workingMBBase, execMemPerTask)), float64(conf.ExecutorMemoryMB), alloc.slotsPer, conf.GCThreads)
	if s.opts.Ablate.NoGC {
		gcFrac = 0
	}

	skew := s.skewMultipliers(stage, n)
	durations := make([]float64, n)
	var spillBytes int64
	var gcSeconds float64

	for i := 0; i < n; i++ {
		w := skew[i]
		records := recordsPerTask * w
		dur := 0.0

		if inputPerTaskMB > 0 {
			localRead := inputPerTaskMB * w / diskPerTask
			if s.rng.Float64() < pNonLocal {
				remoteRead := inputPerTaskMB * w / (netPerTask * 0.9)
				waited := conf.LocalityWaitS + localRead
				dur += math.Min(waited, remoteRead)
			} else {
				dur += localRead
			}
		}

		if fetchTotalMB > 0 {
			fetchMB := fetchTotalMB / float64(n) * w
			dur += fetchMB / (netPerTask * inFlight)
			dur += fetchMB / (diskPerTask * 2)
			uncompressed := fetchMB
			if conf.ShuffleCompress {
				uncompressed = fetchMB / cRatio
				dur += uncompressed * dCPU / coreSpeed
			}
			dur += uncompressed * serCPU / coreSpeed
			sm.ShuffleRead += int64(fetchMB * mb)
		}

		if stage.ReadsCachedFrom >= 0 {
			hit := records * cacheFrac
			miss := records - hit
			if cachedCompressed && hit > 0 {
				hitMB := hit * stage.MemPerRecordBytes / mb
				dur += hitMB * dCPU / coreSpeed
			}
			if miss > 0 {
				dur += miss * stage.RecomputePerRecord / taskSpeed
			}
		}

		compute := records * stage.ComputePerRecord / taskSpeed
		gc := compute * gcFrac
		dur += compute + gc
		gcSeconds += gc

		workingMB := records * stage.MemPerRecordBytes / mb
		if workingMB > execMemPerTask && execMemPerTask > 0 && !s.opts.Ablate.NoSpill {
			over := workingMB - execMemPerTask
			passes := 1 + math.Floor(over/execMemPerTask)
			spillMB := over * (1 + 0.5*math.Min(passes, 3))
			diskMB := spillMB
			if conf.ShuffleSpillCompress {
				dur += spillMB * (cCPU + dCPU) / coreSpeed
				diskMB *= cRatio
			}
			dur += 2 * diskMB / diskPerTask
			spillBytes += int64(diskMB * mb)
		}

		if writePerTaskMB > 0 {
			dur += writeCPU*w + sortCPU*w
			dur += writeDiskMB * w / (diskPerTask * fileFactor)
			sm.ShuffleWrite += int64(writeDiskMB * w * mb)
		}

		noise := 1.0
		if !s.opts.Ablate.NoNoise {
			noise = stat.Lognormal(s.rng, -stragglerSigma*stragglerSigma/2, stragglerSigma)
		}
		durations[i] = dur * noise
	}

	if conf.Speculation && n >= 4 {
		sorted := append([]float64(nil), durations...)
		sort.Float64s(sorted)
		q := stat.Quantile(sorted, conf.SpeculationQuantile)
		limit := q*conf.SpeculationMultiplier + 0.5
		for i := range durations {
			if durations[i] > limit {
				durations[i] = limit
			}
		}
	}

	dispatch := float64(n) * 0.002 / float64(maxInt(conf.DriverCores, 1))
	overhead := 0.08 + dispatch
	if conf.SchedulerFair {
		overhead += float64(n) * 0.0002
	}
	overhead += float64(alloc.executors) * 0.0005 * (30 / float64(maxInt(conf.HeartbeatIntervalS, 1)))

	collect := 0.0
	if stage.CollectMB > 0 {
		driverNet := inst.NetworkMBps / s.factors.Net
		collect = stage.CollectMB / driverNet
	}

	sm.SpillBytes = spillBytes
	sm.GCSeconds = gcSeconds / math.Max(1, float64(alloc.slotsTotal))
	return stageWork{
		stage:     stage,
		sm:        sm,
		durations: durations,
		overhead:  broadcast + overhead + collect,
	}
}
