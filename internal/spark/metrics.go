package spark

import "seamlesstune/internal/obs"

// Simulator-layer metrics. Every simulated execution feeds these, so
// /metrics exposes the aggregate behaviour of the cluster substrate
// (failure mix, spill and GC pressure) across all tenants and sessions.
var (
	mRuns = obs.Default().Counter("spark_runs_total",
		"Simulated Spark application executions.")
	mRunFailures = obs.Default().CounterVec("spark_run_failures_total",
		"Simulated executions that failed, by failure reason.", "reason")
	mRunSimSeconds = obs.Default().Histogram("spark_run_sim_seconds",
		"Simulated application runtime in seconds.",
		obs.ExpBuckets(4, 2, 12)) // 4s .. ~4.5h
	mStages = obs.Default().Counter("spark_stages_total",
		"Simulated stages executed.")
	mTasks = obs.Default().Counter("spark_tasks_total",
		"Simulated tasks executed.")
	mSpillBytes = obs.Default().Counter("spark_spill_bytes_total",
		"Bytes spilled to disk across all simulated executions.")
	mGCSeconds = obs.Default().Counter("spark_gc_seconds_total",
		"Wall-clock seconds lost to JVM garbage collection (simulated).")
	mExecutorsLost = obs.Default().Counter("spark_executors_lost_total",
		"Executors lost to injected failures.")
)

// observeRun records one completed simulation into the metrics above and
// annotates the surrounding span.
func observeRun(sp *obs.SpanHandle, res *Result) {
	mRuns.Inc()
	mRunSimSeconds.Observe(res.RuntimeS)
	if res.Failed {
		mRunFailures.With(res.Reason).Inc()
	}
	var tasks int
	for i := range res.Stages {
		tasks += res.Stages[i].Tasks
	}
	mStages.Add(float64(len(res.Stages)))
	mTasks.Add(float64(tasks))
	mSpillBytes.Add(float64(res.TotalSpillBytes))
	mGCSeconds.Add(res.TotalGCSeconds)
	if res.ExecutorsLost > 0 {
		mExecutorsLost.Add(float64(res.ExecutorsLost))
	}
	sp.Num("sim_runtime_s", res.RuntimeS)
	sp.Num("stages", float64(len(res.Stages)))
	sp.Num("tasks", float64(tasks))
	sp.Num("executors", float64(res.Executors))
	if res.Failed {
		sp.Str("failed", res.Reason)
	}
	sp.End()
}
