package spark_test

import (
	"fmt"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/confspace"
	"seamlesstune/internal/spark"
	"seamlesstune/internal/stat"
	"seamlesstune/internal/workload"
)

// ExampleRun executes a Wordcount job on a simulated four-node cluster.
func ExampleRun() {
	instance, err := cloud.DefaultCatalog().Lookup("nimbus/g5.2xlarge")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	cluster := cloud.ClusterSpec{Instance: instance, Count: 4}

	// A configuration sized to the cluster: 8 executors of 4 cores.
	space := confspace.SparkSpace()
	cfg := space.Default()
	cfg[confspace.ParamExecutorInstances] = 8
	cfg[confspace.ParamExecutorCores] = 4
	cfg[confspace.ParamExecutorMemoryMB] = 8192
	cfg[confspace.ParamDriverMemoryMB] = 4096
	cfg[confspace.ParamDefaultParallelism] = 64

	job := workload.Wordcount{}.Job(4 << 30) // 4 GB of text
	res := spark.Run(job, spark.FromConfig(space, cfg), cluster, cloud.Unit(), stat.NewRNG(1))

	fmt.Printf("failed=%v stages=%d executors=%d ranUnderAMinute=%v\n",
		res.Failed, len(res.Stages), res.Executors, res.RuntimeS < 60)
	// Output:
	// failed=false stages=2 executors=8 ranUnderAMinute=true
}

// ExampleRun_crash shows a misconfiguration surfacing the way it does in
// production: as a failed run, not an error.
func ExampleRun_crash() {
	instance, _ := cloud.DefaultCatalog().Lookup("nimbus/g5.large")
	cluster := cloud.ClusterSpec{Instance: instance, Count: 2}

	space := confspace.SparkSpace()
	cfg := space.Default()
	// A 32 GB executor heap cannot fit on an 8 GB node.
	cfg[confspace.ParamExecutorMemoryMB] = 32768

	job := workload.Wordcount{}.Job(1 << 30)
	res := spark.Run(job, spark.FromConfig(space, cfg), cluster, cloud.Unit(), stat.NewRNG(1))
	fmt.Printf("failed=%v reason=%q\n", res.Failed, res.Reason)
	// Output:
	// failed=true reason="cannot allocate any executor on the cluster"
}
