package spark

import (
	"strings"
	"testing"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/stat"
)

// testCluster returns 4× a general-purpose 4-vCPU/16GB node.
func testCluster(t *testing.T) cloud.ClusterSpec {
	t.Helper()
	it, err := cloud.DefaultCatalog().Lookup("nimbus/g5.xlarge")
	if err != nil {
		t.Fatal(err)
	}
	return cloud.ClusterSpec{Instance: it, Count: 4}
}

// bigCluster returns 4× h1.4xlarge (16 vCPU / 256 GB), the Table-I setup.
func bigCluster(t *testing.T) cloud.ClusterSpec {
	t.Helper()
	it, err := cloud.DefaultCatalog().Lookup("nimbus/h1.4xlarge")
	if err != nil {
		t.Fatal(err)
	}
	return cloud.ClusterSpec{Instance: it, Count: 4}
}

// scanJob is a single map-heavy stage over the given input.
func scanJob(inputMB int64) *Job {
	return &Job{
		Name: "scan", Workload: "scan", InputBytes: inputMB << 20,
		DriverNeedMB: 256,
		Stages: []Stage{{
			ID: 0, Name: "map", Partitions: FromInputSplits,
			InputBytes: inputMB << 20, Records: inputMB * 10000,
			ComputePerRecord: 2e-6, MemPerRecordBytes: 20,
			ReadsCachedFrom: -1, MaxRecordMB: 1,
		}},
	}
}

// shuffleJob is map → reduce with a configurable shuffle volume.
func shuffleJob(inputMB, shuffleMB int64) *Job {
	return &Job{
		Name: "agg", Workload: "agg", InputBytes: inputMB << 20,
		DriverNeedMB: 256,
		Stages: []Stage{
			{
				ID: 0, Name: "map", Partitions: FromInputSplits,
				InputBytes: inputMB << 20, Records: inputMB * 10000,
				ComputePerRecord: 2e-6, MemPerRecordBytes: 40,
				ShuffleWriteBytes: shuffleMB << 20,
				ReadsCachedFrom:   -1, MaxRecordMB: 1,
			},
			{
				ID: 1, Name: "reduce", Deps: []int{0}, Partitions: FromParallelism,
				Records: shuffleMB * 5000, ComputePerRecord: 3e-6,
				MemPerRecordBytes: 400, ReadsCachedFrom: -1, MaxRecordMB: 1,
			},
		},
	}
}

// reasonable is a mid-range configuration that should run cleanly on the
// test cluster.
func reasonable() Conf {
	c := DefaultConf()
	c.ExecutorInstances = 4
	c.ExecutorCores = 4
	c.ExecutorMemoryMB = 8192
	c.DriverMemoryMB = 4096
	c.DefaultParallelism = 64
	c.ShufflePartitions = 64
	return c
}

func TestRunSucceedsOnReasonableConfig(t *testing.T) {
	r := stat.NewRNG(1)
	res := Run(shuffleJob(2048, 512), reasonable(), testCluster(t), cloud.Unit(), r)
	if res.Failed {
		t.Fatalf("reasonable config failed: %s", res.Reason)
	}
	if res.RuntimeS <= 0 || res.CostUSD <= 0 {
		t.Errorf("degenerate result: %+v", res)
	}
	if len(res.Stages) != 2 {
		t.Fatalf("stage metrics = %d, want 2", len(res.Stages))
	}
	if res.TotalShuffleWrite == 0 || res.TotalShuffleRead == 0 {
		t.Error("shuffle volumes not tracked")
	}
	if res.Executors != 4 {
		t.Errorf("executors = %d, want 4", res.Executors)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	a := Run(shuffleJob(1024, 256), reasonable(), testCluster(t), cloud.Unit(), stat.NewRNG(7))
	b := Run(shuffleJob(1024, 256), reasonable(), testCluster(t), cloud.Unit(), stat.NewRNG(7))
	if a.RuntimeS != b.RuntimeS || a.TotalSpillBytes != b.TotalSpillBytes {
		t.Errorf("same seed, different results: %v vs %v", a.RuntimeS, b.RuntimeS)
	}
}

func TestMoreDataTakesLonger(t *testing.T) {
	small := Run(scanJob(1024), reasonable(), testCluster(t), cloud.Unit(), stat.NewRNG(2))
	large := Run(scanJob(8192), reasonable(), testCluster(t), cloud.Unit(), stat.NewRNG(2))
	if small.Failed || large.Failed {
		t.Fatalf("unexpected failure: %v / %v", small.Reason, large.Reason)
	}
	if large.RuntimeS <= small.RuntimeS*2 {
		t.Errorf("8x data: runtime %v vs %v, want clearly longer", large.RuntimeS, small.RuntimeS)
	}
}

func TestBiggerClusterIsFaster(t *testing.T) {
	conf := reasonable()
	conf.ExecutorInstances = 16
	small := testCluster(t)
	big := small.Resize(16)
	job := shuffleJob(8192, 2048)
	rs := Run(job, conf, small, cloud.Unit(), stat.NewRNG(3))
	rb := Run(job, conf, big, cloud.Unit(), stat.NewRNG(3))
	if rs.Failed || rb.Failed {
		t.Fatalf("unexpected failure: %v / %v", rs.Reason, rb.Reason)
	}
	if rb.RuntimeS >= rs.RuntimeS {
		t.Errorf("16 nodes (%vs) not faster than 4 nodes (%vs)", rb.RuntimeS, rs.RuntimeS)
	}
}

func TestUnderProvisionedMemorySpills(t *testing.T) {
	job := shuffleJob(4096, 2048)
	good := reasonable()
	tight := reasonable()
	tight.ExecutorMemoryMB = 1024 // tiny heap → heavy spill
	tight.DefaultParallelism = 16 // few, fat partitions
	rGood := Run(job, good, testCluster(t), cloud.Unit(), stat.NewRNG(4))
	rTight := Run(job, tight, testCluster(t), cloud.Unit(), stat.NewRNG(4))
	if rGood.Failed || rTight.Failed {
		t.Fatalf("unexpected failure: %v / %v", rGood.Reason, rTight.Reason)
	}
	if rTight.TotalSpillBytes <= rGood.TotalSpillBytes {
		t.Errorf("tight memory spill %d <= good %d", rTight.TotalSpillBytes, rGood.TotalSpillBytes)
	}
	if rTight.RuntimeS <= rGood.RuntimeS {
		t.Errorf("spilling config (%vs) not slower than good (%vs)", rTight.RuntimeS, rGood.RuntimeS)
	}
}

func TestExecutorAllocationCappedByNode(t *testing.T) {
	conf := reasonable()
	conf.ExecutorInstances = 48
	conf.ExecutorCores = 4
	// 4 nodes × 4 vCPUs → at most 4 executors of 4 cores.
	res := Run(scanJob(512), conf, testCluster(t), cloud.Unit(), stat.NewRNG(5))
	if res.Failed {
		t.Fatal(res.Reason)
	}
	if res.Executors != 4 {
		t.Errorf("executors = %d, want capped at 4", res.Executors)
	}
}

func TestAllocationFailures(t *testing.T) {
	tests := []struct {
		name   string
		mut    func(*Conf)
		reason string
	}{
		{"cores below task cpus", func(c *Conf) { c.ExecutorCores = 1; c.TaskCPUs = 2 }, ReasonNoSlots},
		{"container exceeds node", func(c *Conf) { c.ExecutorMemoryMB = 32768 }, ReasonNoExecutors},
		{"driver OOM", func(c *Conf) { c.DriverMemoryMB = 1024 }, ReasonDriverOOM},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			conf := reasonable()
			tt.mut(&conf)
			job := scanJob(512)
			job.DriverNeedMB = 2048
			res := Run(job, conf, testCluster(t), cloud.Unit(), stat.NewRNG(6))
			if !res.Failed || res.Reason != tt.reason {
				t.Errorf("result = %+v, want failure %q", res, tt.reason)
			}
		})
	}
}

func TestKryoBufferOverflow(t *testing.T) {
	conf := reasonable()
	conf.Serializer = KryoSerializer
	conf.KryoBufferMaxMB = 8
	job := scanJob(512)
	job.Stages[0].MaxRecordMB = 32
	res := Run(job, conf, testCluster(t), cloud.Unit(), stat.NewRNG(7))
	if !res.Failed || res.Reason != ReasonKryoOverflow {
		t.Errorf("result = %v, want kryo overflow", res)
	}
	// A big-enough buffer succeeds.
	conf.KryoBufferMaxMB = 64
	res = Run(job, conf, testCluster(t), cloud.Unit(), stat.NewRNG(7))
	if res.Failed {
		t.Errorf("large buffer still failed: %s", res.Reason)
	}
}

func TestTaskOOMRegion(t *testing.T) {
	conf := reasonable()
	conf.ExecutorMemoryMB = 2048
	conf.MemoryFraction = 0.3
	conf.ExecutorCores = 4 // 4 slots share a ~600MB pool
	job := scanJob(512)
	job.Stages[0].HardMemMB = 512
	res := Run(job, conf, testCluster(t), cloud.Unit(), stat.NewRNG(8))
	if !res.Failed || res.Reason != ReasonTaskOOM {
		t.Errorf("result = %v, want task OOM", res)
	}
	if res.Stages[0].FailedTasks == 0 {
		t.Error("failed tasks not recorded")
	}
}

func TestContainerKillOnTinyOffHeap(t *testing.T) {
	conf := reasonable()
	conf.OffHeapEnabled = true
	conf.OffHeapSizeMB = 32 // far too small once enabled
	res := Run(scanJob(512), conf, testCluster(t), cloud.Unit(), stat.NewRNG(9))
	if !res.Failed || res.Reason != ReasonContainerKilled {
		t.Errorf("result = %v, want container kill", res)
	}
}

func TestOverheadPressureSlowsStages(t *testing.T) {
	// An undersized overhead region (relative to big in-flight windows on
	// a large heap) slows the run without killing it.
	job := shuffleJob(2048, 1024)
	comfy := reasonable()
	comfy.MemoryOverheadFactor = 0.30
	tight := reasonable()
	tight.MemoryOverheadFactor = 0.05
	tight.ReducerMaxInFlightMB = 128
	tight.ShuffleConnsPerPeer = 5
	rComfy := Run(job, comfy, testCluster(t), cloud.Unit(), stat.NewRNG(9))
	rTight := Run(job, tight, testCluster(t), cloud.Unit(), stat.NewRNG(9))
	if rComfy.Failed || rTight.Failed {
		t.Fatalf("unexpected failure: %v / %v", rComfy.Reason, rTight.Reason)
	}
	if rTight.RuntimeS <= rComfy.RuntimeS {
		t.Errorf("overhead pressure did not slow run: %v vs %v", rTight.RuntimeS, rComfy.RuntimeS)
	}
}

func TestCachingSpeedsUpIterations(t *testing.T) {
	// Iterative job: build graph, cache it, 5 iterations read the cache.
	iterJob := func(cacheMB int64) *Job {
		stages := []Stage{{
			ID: 0, Name: "build", Partitions: FromInputSplits,
			InputBytes: 1 << 30, Records: 5e6, ComputePerRecord: 2e-6,
			MemPerRecordBytes: 60, CacheOutput: true, CacheBytes: cacheMB << 20,
			ReadsCachedFrom: -1, MaxRecordMB: 1,
		}}
		for i := 1; i <= 5; i++ {
			stages = append(stages, Stage{
				ID: i, Name: "iter", Deps: []int{i - 1}, Partitions: FromParallelism,
				Records: 5e6, ComputePerRecord: 1e-6, MemPerRecordBytes: 60,
				ShuffleWriteBytes: 64 << 20,
				ReadsCachedFrom:   0, RecomputePerRecord: 4e-6, MaxRecordMB: 1,
			})
		}
		return &Job{Name: "iter", Workload: "iter", InputBytes: 1 << 30, DriverNeedMB: 256, Stages: stages}
	}

	fits := reasonable()
	fits.ExecutorMemoryMB = 16384
	fits.MemoryFraction = 0.8
	fits.ExecutorInstances = 3 // 3×16GB containers fit (node has 16GB-1GB... adjust)
	fits.ExecutorMemoryMB = 8192
	tiny := reasonable()
	tiny.ExecutorMemoryMB = 2048
	tiny.MemoryFraction = 0.3
	tiny.StorageFraction = 0.2

	big := bigCluster(t)
	rFits := Run(iterJob(4096), fits, big, cloud.Unit(), stat.NewRNG(10))
	rTiny := Run(iterJob(4096), tiny, big, cloud.Unit(), stat.NewRNG(10))
	if rFits.Failed || rTiny.Failed {
		t.Fatalf("unexpected failure: %v / %v", rFits.Reason, rTiny.Reason)
	}
	if rFits.Stages[1].CacheHitFrac <= rTiny.Stages[1].CacheHitFrac {
		t.Errorf("cache hit frac %v (big mem) <= %v (tiny mem)",
			rFits.Stages[1].CacheHitFrac, rTiny.Stages[1].CacheHitFrac)
	}
	if rFits.RuntimeS >= rTiny.RuntimeS {
		t.Errorf("cached run (%vs) not faster than cache-starved (%vs)", rFits.RuntimeS, rTiny.RuntimeS)
	}
}

func TestCompressionTradeoff(t *testing.T) {
	// Shuffle-heavy job: compression should reduce bytes moved.
	job := shuffleJob(2048, 4096)
	on := reasonable()
	on.ShuffleCompress = true
	off := reasonable()
	off.ShuffleCompress = false
	rOn := Run(job, on, testCluster(t), cloud.Unit(), stat.NewRNG(11))
	rOff := Run(job, off, testCluster(t), cloud.Unit(), stat.NewRNG(11))
	if rOn.Failed || rOff.Failed {
		t.Fatalf("unexpected failure: %v / %v", rOn.Reason, rOff.Reason)
	}
	if rOn.TotalShuffleWrite >= rOff.TotalShuffleWrite {
		t.Errorf("compressed shuffle bytes %d >= uncompressed %d", rOn.TotalShuffleWrite, rOff.TotalShuffleWrite)
	}
}

func TestInterferenceSlowsRuns(t *testing.T) {
	job := shuffleJob(2048, 512)
	conf := reasonable()
	calm := Run(job, conf, testCluster(t), cloud.Unit(), stat.NewRNG(12))
	noisy := Run(job, conf, testCluster(t), cloud.Factors{CPU: 1.4, Net: 1.4, Disk: 1.4}, stat.NewRNG(12))
	if noisy.RuntimeS <= calm.RuntimeS {
		t.Errorf("interference did not slow the run: %v vs %v", noisy.RuntimeS, calm.RuntimeS)
	}
}

func TestSpeculationTrimsTail(t *testing.T) {
	job := scanJob(4096)
	job.Stages[0].SkewAlpha = 1.2 // heavy skew → long tail
	off := reasonable()
	on := reasonable()
	on.Speculation = true
	on.SpeculationQuantile = 0.75
	on.SpeculationMultiplier = 1.5
	// Average over seeds: speculation should help under heavy skew.
	var sumOff, sumOn float64
	for seed := int64(0); seed < 10; seed++ {
		sumOff += Run(job, off, testCluster(t), cloud.Unit(), stat.NewRNG(100+seed)).RuntimeS
		sumOn += Run(job, on, testCluster(t), cloud.Unit(), stat.NewRNG(100+seed)).RuntimeS
	}
	if sumOn >= sumOff {
		t.Errorf("speculation mean runtime %v >= no-speculation %v", sumOn/10, sumOff/10)
	}
}

func TestParallelismSweetSpot(t *testing.T) {
	// Too few partitions underutilize slots; far too many drown in
	// dispatch overhead. A mid value should beat both extremes.
	job := shuffleJob(4096, 1024)
	runWith := func(par int) float64 {
		c := reasonable()
		c.DefaultParallelism = par
		c.DriverCores = 1
		res := Run(job, c, testCluster(t), cloud.Unit(), stat.NewRNG(13))
		if res.Failed {
			t.Fatalf("parallelism %d failed: %s", par, res.Reason)
		}
		return res.RuntimeS
	}
	few := runWith(2)
	mid := runWith(64)
	if mid >= few {
		t.Errorf("mid parallelism (%v) not faster than 2 partitions (%v)", mid, few)
	}
}

func TestResultString(t *testing.T) {
	ok := Result{RuntimeS: 12.3, CostUSD: 0.5, Executors: 3}
	if !strings.Contains(ok.String(), "runtime=12.3s") {
		t.Errorf("String = %q", ok.String())
	}
	bad := Result{Failed: true, Reason: "x", RuntimeS: 1}
	if !strings.Contains(bad.String(), "FAILED") {
		t.Errorf("String = %q", bad.String())
	}
}

func TestJobValidate(t *testing.T) {
	tests := []struct {
		name string
		job  *Job
		ok   bool
	}{
		{"empty", &Job{}, false},
		{"bad id", &Job{Stages: []Stage{{ID: 1, ReadsCachedFrom: -1}}}, false},
		{"forward dep", &Job{Stages: []Stage{{ID: 0, Deps: []int{0}, ReadsCachedFrom: -1}}}, false},
		{"uncached read", &Job{Stages: []Stage{
			{ID: 0, ReadsCachedFrom: -1},
			{ID: 1, Deps: []int{0}, ReadsCachedFrom: 0},
		}}, false},
		{"negative volume", &Job{Stages: []Stage{{ID: 0, Records: -1, ReadsCachedFrom: -1}}}, false},
		{"valid", scanJob(10), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.job.Validate()
			if tt.ok && err != nil {
				t.Errorf("Validate = %v", err)
			}
			if !tt.ok && err == nil {
				t.Error("Validate = nil, want error")
			}
		})
	}
}

func TestTotalShuffleBytes(t *testing.T) {
	job := shuffleJob(100, 50)
	if got := job.TotalShuffleBytes(); got != 50<<20 {
		t.Errorf("TotalShuffleBytes = %d, want %d", got, 50<<20)
	}
}
