package spark

// Benchmarks comparing the pooled fast path (runWith) against the frozen
// naive reference (runWithNaive) on a PageRank-shaped job. These are the
// allocation-budget benchmarks behind `make bench-sim`; the equivalence
// tests in equiv_test.go guarantee the two paths are bit-identical, so
// any gap measured here is pure overhead.

import (
	"fmt"
	"testing"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/stat"
)

// benchSimJob mirrors the iterative, cache-bound PageRank plan from
// internal/workload at 8 GB input (the shape is inlined here because
// workload imports spark, so the workload builders cannot be used from
// in-package tests).
func benchSimJob() *Job {
	const (
		size     = int64(8) << 30
		edges    = int64(320e6)
		vertices = int64(16e6)
		iters    = 8
	)
	stages := []Stage{
		{
			ID: 0, Name: "parse-edges", Partitions: FromInputSplits,
			InputBytes: size, Records: edges,
			ComputePerRecord: 0.9e-6, MemPerRecordBytes: 28,
			ShuffleWriteBytes: size + size/10,
			ReadsCachedFrom:   -1, MaxRecordMB: 2,
		},
		{
			ID: 1, Name: "build-adjacency", Deps: []int{0}, Partitions: FromParallelism,
			Records:          vertices,
			ComputePerRecord: 3e-6, MemPerRecordBytes: 420,
			CacheOutput: true, CacheBytes: size + size*6/10,
			ReadsCachedFrom: -1, MaxRecordMB: 4,
			SkewAlpha: 1.4,
		},
	}
	for i := 0; i < iters; i++ {
		id := 2 + i
		stages = append(stages, Stage{
			ID: id, Name: fmt.Sprintf("iteration-%d", i+1), Deps: []int{id - 1},
			Partitions:       FromParallelism,
			Records:          edges,
			ComputePerRecord: 1.1e-6, MemPerRecordBytes: 34,
			ShuffleWriteBytes:  edges * 14,
			ReadsCachedFrom:    1,
			RecomputePerRecord: 5.5e-6,
			MaxRecordMB:        2,
			SkewAlpha:          1.4,
		})
	}
	last := len(stages)
	stages = append(stages, Stage{
		ID: last, Name: "top-ranks", Deps: []int{last - 1}, Partitions: FromParallelism,
		Records:          vertices,
		ComputePerRecord: 0.8e-6, MemPerRecordBytes: 24,
		ReadsCachedFrom: -1, MaxRecordMB: 1,
		CollectMB: 4,
	})
	return &Job{
		Name:         "bench-pagerank",
		Workload:     "pagerank",
		InputBytes:   size,
		DriverNeedMB: 300,
		Stages:       stages,
	}
}

func benchSimCluster(b *testing.B) cloud.ClusterSpec {
	b.Helper()
	it, err := cloud.DefaultCatalog().Lookup("nimbus/h1.4xlarge")
	if err != nil {
		b.Fatal(err)
	}
	return cloud.ClusterSpec{Instance: it, Count: 4}
}

func benchSimConf() Conf {
	c := DefaultConf()
	c.ExecutorInstances = 8
	c.ExecutorCores = 8
	c.ExecutorMemoryMB = 16384
	c.DriverMemoryMB = 4096
	c.DefaultParallelism = 128
	return c
}

// BenchmarkSimRunPooled measures steady-state runWith: the job plan is
// already in the plan registry and the scratch pool is warm, so per-run
// allocations are just the Result's stage slice.
func BenchmarkSimRunPooled(b *testing.B) {
	b.ReportAllocs()
	job, conf, cluster := benchSimJob(), benchSimConf(), benchSimCluster(b)
	rng := stat.NewRNG(1)
	if res := runWith(job, conf, cluster, cloud.Unit(), RunOpts{}, rng); res.Failed {
		b.Fatal(res.Reason)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runWith(job, conf, cluster, cloud.Unit(), RunOpts{}, rng)
		if res.Failed {
			b.Fatal(res.Reason)
		}
	}
}

// BenchmarkSimRunNaive measures the frozen reference implementation on
// the identical job, configuration and cluster.
func BenchmarkSimRunNaive(b *testing.B) {
	b.ReportAllocs()
	job, conf, cluster := benchSimJob(), benchSimConf(), benchSimCluster(b)
	rng := stat.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runWithNaive(job, conf, cluster, cloud.Unit(), RunOpts{}, rng)
		if res.Failed {
			b.Fatal(res.Reason)
		}
	}
}
