package spark

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"seamlesstune/internal/stat"
)

// jobPlan is the computed-once snapshot of a job's run-invariant
// quantities. The simulator previously recomputed all of these on every
// run — validation walked the DAG with a scratch map, the Kryo and
// driver-memory gates re-summed stage fields, and skewMultipliers
// re-hashed and re-drew the Pareto weights for every stage of every run.
// For immutable jobs all of that is a pure function of the job content,
// so it is computed once per job fingerprint and shared.
//
// Plans are keyed by a structural fingerprint rather than by *Job
// pointer because workload builders construct a fresh *Job per call:
// two jobs with equal content share one plan. The skew weights stored
// here are a deterministic function of (job name, stage, task count) —
// a counter-derived stream independent of the caller's RNG (see
// skewWeights) — which is exactly why hoisting them cannot perturb the
// run's random draws.
type jobPlan struct {
	fp uint64
	// err is the memoized Validate result.
	err error
	// driverNeed is DriverNeedMB plus every stage's BroadcastMB, summed
	// in stage order (same float rounding as the naive per-run loop).
	driverNeed float64
	// maxRecordMB is the largest MaxRecordMB across stages (the Kryo
	// buffer gate).
	maxRecordMB float64
	// stages holds per-stage float conversions of the volume fields.
	stages []stagePlan

	// skew caches skewKey -> []float64 weight slices (immutable once
	// stored). skewN bounds the cache so adversarial conf sweeps over
	// partition counts cannot grow it without bound.
	skew  sync.Map
	skewN atomic.Int64
}

// stagePlan holds a stage's precomputed float invariants.
type stagePlan struct {
	inputBytesF   float64
	recordsF      float64
	shuffleWriteF float64
	uniform       bool // SkewAlpha <= 0: weights are all ones
}

// skewKey identifies one cached skew-weight slice: weights depend only
// on the stage and the task count (the job is fixed per plan).
type skewKey struct {
	stage int32
	n     int32
}

// maxSkewEntriesPerPlan bounds each plan's skew cache. Beyond it,
// weights are computed per run (correct, just unpooled).
const maxSkewEntriesPerPlan = 1024

// maxPlans bounds the process-wide plan registry; overflowing clears it
// (plans are cheap to rebuild).
const maxPlans = 512

var (
	planMu   sync.RWMutex
	planByFP = make(map[uint64]*jobPlan)
)

// planOf returns the shared plan for a job, building it on first sight
// of the job's fingerprint.
func planOf(job *Job) *jobPlan {
	fp := job.Fingerprint()
	planMu.RLock()
	p := planByFP[fp]
	planMu.RUnlock()
	if p != nil {
		return p
	}
	p = buildPlan(job, fp)
	planMu.Lock()
	if exist, ok := planByFP[fp]; ok {
		planMu.Unlock()
		return exist
	}
	if len(planByFP) >= maxPlans {
		planByFP = make(map[uint64]*jobPlan)
	}
	planByFP[fp] = p
	planMu.Unlock()
	return p
}

// buildPlan computes every run-invariant quantity of the job.
func buildPlan(job *Job, fp uint64) *jobPlan {
	p := &jobPlan{fp: fp, err: job.Validate()}
	p.driverNeed = job.DriverNeedMB
	p.stages = make([]stagePlan, len(job.Stages))
	for i := range job.Stages {
		s := &job.Stages[i]
		p.driverNeed += s.BroadcastMB
		if s.MaxRecordMB > p.maxRecordMB {
			p.maxRecordMB = s.MaxRecordMB
		}
		p.stages[i] = stagePlan{
			inputBytesF:   float64(s.InputBytes),
			recordsF:      float64(s.Records),
			shuffleWriteF: float64(s.ShuffleWriteBytes),
			uniform:       s.SkewAlpha <= 0,
		}
	}
	return p
}

// skewWeights returns the cached per-task partition weights for (stage,
// n), computing and storing them on first use. A nil slice means
// "uniform": every weight is exactly 1. The weights are drawn from a
// stream seeded by hashing (job name, stage ID, n) — a counter-derived
// stream detached from the run's RNG, so the same job always sees the
// same skewed partitions no matter which run, goroutine, or pooled
// buffer asks (bit-identical to the naive per-run computation).
func (p *jobPlan) skewWeights(job *Job, stage *Stage, n int) []float64 {
	if stage.ID < len(p.stages) && p.stages[stage.ID].uniform {
		return nil
	}
	key := skewKey{stage: int32(stage.ID), n: int32(n)}
	if v, ok := p.skew.Load(key); ok {
		return v.([]float64)
	}
	w := computeSkew(job.Name, stage, n)
	if p.skewN.Load() < maxSkewEntriesPerPlan {
		if _, loaded := p.skew.LoadOrStore(key, w); !loaded {
			p.skewN.Add(1)
		}
	}
	return w
}

// computeSkew draws the Pareto partition weights exactly as the naive
// path does (same hash, same stream, same normalization).
func computeSkew(jobName string, stage *Stage, n int) []float64 {
	w := make([]float64, n)
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d/%d", jobName, stage.ID, n)
	skewRNG := stat.NewRNG(int64(h.Sum64()))
	sum := 0.0
	for i := range w {
		w[i] = stat.Pareto(skewRNG, 1, stage.SkewAlpha)
		sum += w[i]
	}
	scale := float64(n) / sum
	for i := range w {
		w[i] *= scale
	}
	return w
}

// taskCount resolves a stage's task count from its partition source,
// using the plan's precomputed float input size.
func (p *jobPlan) taskCount(stage *Stage, conf *Conf) int {
	switch stage.Partitions {
	case FromInputSplits:
		inputF := float64(stage.InputBytes)
		if stage.ID < len(p.stages) {
			inputF = p.stages[stage.ID].inputBytesF
		}
		splits := int(math.Ceil(inputF / (float64(conf.MaxPartitionBytesMB) * mb)))
		return maxInt(splits, 1)
	case FromShufflePartitions:
		return maxInt(conf.ShufflePartitions, 1)
	default:
		return maxInt(conf.DefaultParallelism, 1)
	}
}

// Fingerprint returns a structural 64-bit FNV-1a digest of the job: its
// name, workload, driver needs, and every field of every stage. Jobs
// rebuilt from the same workload parameters fingerprint identically,
// which is what lets the plan registry (and the evaluation cache in
// internal/simcache) recognize them across fresh *Job allocations. The
// computation is allocation-free.
func (j *Job) Fingerprint() uint64 {
	h := newFNV()
	h.str(j.Name)
	h.str(j.Workload)
	h.u64(uint64(j.InputBytes))
	h.f64(j.DriverNeedMB)
	h.u64(uint64(len(j.Stages)))
	for i := range j.Stages {
		s := &j.Stages[i]
		h.u64(uint64(s.ID))
		h.str(s.Name)
		h.u64(uint64(len(s.Deps)))
		for _, d := range s.Deps {
			h.u64(uint64(d))
		}
		h.u64(uint64(s.Partitions))
		h.u64(uint64(s.InputBytes))
		h.u64(uint64(s.Records))
		h.f64(s.ComputePerRecord)
		h.f64(s.MemPerRecordBytes)
		h.f64(s.HardMemMB)
		h.f64(s.MaxRecordMB)
		h.u64(uint64(s.ShuffleWriteBytes))
		h.f64(s.SkewAlpha)
		h.bool(s.CacheOutput)
		h.u64(uint64(s.CacheBytes))
		h.u64(uint64(int64(s.ReadsCachedFrom)))
		h.f64(s.RecomputePerRecord)
		h.f64(s.BroadcastMB)
		h.f64(s.CollectMB)
	}
	return uint64(h)
}

// fnvHash is an inline FNV-1a accumulator (hash/fnv allocates its
// state; the fingerprint path must not).
type fnvHash uint64

func newFNV() fnvHash { return 14695981039346656037 }

func (h *fnvHash) byte(b byte) {
	*h = (*h ^ fnvHash(b)) * 1099511628211
}

func (h *fnvHash) str(s string) {
	h.u64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
}

func (h *fnvHash) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

func (h *fnvHash) f64(v float64) { h.u64(math.Float64bits(v)) }

func (h *fnvHash) bool(v bool) {
	if v {
		h.byte(1)
	} else {
		h.byte(0)
	}
}
