package spark

import (
	"container/heap"
	"math"
)

// codecProfile captures a compression codec's behaviour: the compressed
// size ratio and the CPU cost (seconds per uncompressed MB on a baseline
// core) for compress and decompress.
type codecProfile struct {
	ratio      float64
	compressS  float64
	decompress float64
}

// codecTable orders codecs by their real-world trade-off: snappy is the
// fastest with the weakest ratio; zstd compresses hardest at the highest
// CPU cost.
func codecTable(c Codec) codecProfile {
	switch c {
	case LZF:
		return codecProfile{ratio: 0.52, compressS: 0.0075, decompress: 0.0028}
	case Snappy:
		return codecProfile{ratio: 0.55, compressS: 0.0050, decompress: 0.0018}
	case Zstd:
		return codecProfile{ratio: 0.38, compressS: 0.0160, decompress: 0.0045}
	default: // LZ4
		return codecProfile{ratio: 0.50, compressS: 0.0060, decompress: 0.0020}
	}
}

// blockSizeFactor adjusts codec efficiency for the configured block size:
// small blocks compress worse and cost slightly more CPU per byte. The
// effect is mild (a real second-order knob).
func blockSizeFactor(blockKB int) (ratioMul, cpuMul float64) {
	if blockKB <= 0 {
		blockKB = 32
	}
	// 16 KB: ratio ×1.08, cpu ×1.10; 128 KB: ratio ×0.97, cpu ×0.97.
	f := math.Log2(float64(blockKB) / 32.0) // -1 .. +2
	return 1 - 0.035*f, 1 - 0.04*f
}

// serializerProfile returns CPU seconds per MB serialized/deserialized on
// a baseline core. Java serialization also inflates the byte volume.
func serializerProfile(s Serializer) (cpuPerMB, sizeMul float64) {
	if s == KryoSerializer {
		return 0.0045, 1.0
	}
	return 0.0105, 1.35
}

// gcFraction models JVM garbage-collection overhead as a fraction of
// compute time. It grows quadratically once heap utilization passes ~55%,
// scales with the number of mutator threads per heap and with absolute
// heap size (bigger heaps mean longer pauses), and is relieved by
// parallel GC threads.
func gcFraction(heapUtil, heapMB float64, concurrentTasks, gcThreads int) float64 {
	if heapUtil < 0 {
		heapUtil = 0
	}
	if heapUtil > 1.5 {
		heapUtil = 1.5
	}
	relief := 6.0 / (4.0 + float64(maxInt(gcThreads, 1)))
	// Pause-time term: scanning a big heap costs even at low utilization —
	// the documented reason Spark guides recommend moderate executor heaps.
	base := 0.015 + 0.022*math.Sqrt(math.Max(heapMB, 512)/1024)*relief
	pressure := math.Max(0, heapUtil-0.55)
	mutators := math.Sqrt(float64(maxInt(concurrentTasks, 1)) / 2.0)
	f := base + 0.9*pressure*pressure*mutators*relief
	if f > 0.9 {
		f = 0.9
	}
	return f
}

// inFlightFactor converts the reducer fetch knobs into a multiplier on
// effective fetch bandwidth: starved in-flight windows halve throughput,
// generous windows and extra connections add a little.
func inFlightFactor(maxInFlightMB, connsPerPeer int) float64 {
	if maxInFlightMB <= 0 {
		maxInFlightMB = 48
	}
	window := float64(maxInFlightMB) * math.Sqrt(float64(maxInt(connsPerPeer, 1)))
	f := 0.55 + 0.45*math.Min(1, window/48.0)
	if window > 96 {
		f += 0.05
	}
	return f
}

// fileBufferFactor converts the shuffle file buffer size into a disk-write
// efficiency multiplier: tiny buffers cause more syscalls/seeks.
func fileBufferFactor(bufferKB int) float64 {
	if bufferKB <= 0 {
		bufferKB = 32
	}
	return 0.80 + 0.20*math.Min(1, float64(bufferKB)/64.0)
}

// slotHeap is a min-heap of executor-slot free times for list scheduling.
type slotHeap []float64

func (h slotHeap) Len() int            { return len(h) }
func (h slotHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h slotHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *slotHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *slotHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// listSchedule assigns task durations to slots greedily (earliest-free
// slot first) and returns the makespan. This is exactly how a stage's
// task set drains through a fixed pool of executor slots.
func listSchedule(durations []float64, slots int) float64 {
	if len(durations) == 0 {
		return 0
	}
	if slots <= 0 {
		return math.Inf(1)
	}
	if slots > len(durations) {
		slots = len(durations)
	}
	h := make(slotHeap, slots)
	heap.Init(&h)
	for _, d := range durations {
		free := h[0]
		h[0] = free + d
		heap.Fix(&h, 0)
	}
	makespan := 0.0
	for _, t := range h {
		if t > makespan {
			makespan = t
		}
	}
	return makespan
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

const mb = float64(1 << 20)
