package confspace

import (
	"math/rand"
	"reflect"
	"testing"
)

func subspaceFixture(t *testing.T) (*Space, *Subspace) {
	t.Helper()
	parent := MustSpace(
		IntParam("a.int", 1, 64, 8),
		LogIntParam("b.logint", 1, 4096, 128),
		FloatParam("c.float", 0, 1, 0.6),
		FloatParam("d.logfloat", 0.001, 10, 0.1),
		BoolParam("e.bool", true),
		CatParam("f.cat", 1, "x", "y", "z"),
		IntParam("g.decoy", 0, 100, 50),
	)
	sub, err := NewSubspace(parent, []string{"c.float", "a.int", "f.cat"}, Config{"g.decoy": 75})
	if err != nil {
		t.Fatal(err)
	}
	return parent, sub
}

func TestSubspaceConstruction(t *testing.T) {
	parent, sub := subspaceFixture(t)
	if sub.Dim() != 3 {
		t.Fatalf("Dim() = %d, want 3", sub.Dim())
	}
	// Active dims follow parent declaration order regardless of the order
	// the caller listed them.
	want := []string{"a.int", "c.float", "f.cat"}
	if got := sub.ActiveNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ActiveNames() = %v, want %v", got, want)
	}
	wantPruned := []string{"b.logint", "d.logfloat", "e.bool", "g.decoy"}
	if got := sub.PrunedNames(); !reflect.DeepEqual(got, wantPruned) {
		t.Fatalf("PrunedNames() = %v, want %v", got, wantPruned)
	}
	pins := sub.Pins()
	if pins["g.decoy"] != 75 {
		t.Errorf("pin override g.decoy = %v, want 75", pins["g.decoy"])
	}
	if pins["b.logint"] != 128 {
		t.Errorf("unpinned pruned param b.logint = %v, want default 128", pins["b.logint"])
	}
	if sub.Parent() != parent {
		t.Error("Parent() lost the parent space")
	}

	// Invalid constructions are rejected.
	if _, err := NewSubspace(parent, nil, nil); err == nil {
		t.Error("empty active set accepted")
	}
	if _, err := NewSubspace(parent, []string{"nope"}, nil); err == nil {
		t.Error("unknown active name accepted")
	}
	if _, err := NewSubspace(parent, []string{"a.int"}, Config{"nope": 1}); err == nil {
		t.Error("unknown pin name accepted")
	}
	if _, err := NewSubspace(nil, []string{"a.int"}, nil); err == nil {
		t.Error("nil parent accepted")
	}
}

// TestSubspaceRoundTrip is the lossless-round-trip contract: for any
// valid full configuration, Lift(Project(cfg)) restores the active
// entries bit-for-bit and pins the rest; Decode(Encode(cfg)) is stable
// under a second round trip for every parameter kind.
func TestSubspaceRoundTrip(t *testing.T) {
	parent, sub := subspaceFixture(t)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		full := parent.Random(rng)
		lifted := sub.Lift(sub.Project(full))
		for _, name := range sub.ActiveNames() {
			if lifted[name] != full[name] {
				t.Fatalf("trial %d: active %s = %v after Lift∘Project, want %v", trial, name, lifted[name], full[name])
			}
		}
		for _, name := range sub.PrunedNames() {
			if lifted[name] != sub.Pins()[name] {
				t.Fatalf("trial %d: pruned %s = %v after Lift∘Project, want pin %v", trial, name, lifted[name], sub.Pins()[name])
			}
		}
		if err := parent.Validate(lifted); err != nil {
			t.Fatalf("trial %d: lifted config invalid: %v", trial, err)
		}

		// Encode/Decode: one round trip may clamp/discretize, but a second
		// must be the identity (and exact for discrete kinds immediately).
		once := sub.Decode(sub.Encode(full))
		twice := sub.Decode(sub.Encode(once))
		if !reflect.DeepEqual(once, twice) {
			t.Fatalf("trial %d: encode/decode not idempotent:\nonce  %v\ntwice %v", trial, once, twice)
		}
		for _, name := range []string{"a.int", "f.cat"} { // discrete active params decode exactly
			if once[name] != full[name] {
				t.Fatalf("trial %d: discrete %s = %v after round trip, want %v", trial, name, once[name], full[name])
			}
		}
		if err := parent.Validate(once); err != nil {
			t.Fatalf("trial %d: decoded config invalid: %v", trial, err)
		}
	}
}

func TestSubspaceEncodeMatchesParentDims(t *testing.T) {
	parent, sub := subspaceFixture(t)
	rng := rand.New(rand.NewSource(9))
	full := parent.Random(rng)
	enc := sub.Encode(full)
	if len(enc) != sub.Dim() {
		t.Fatalf("encoded length %d, want %d", len(enc), sub.Dim())
	}
	// The subspace encoding of an active param equals the parent's unit
	// encoding of the same value.
	fullEnc := parent.Encode(full)
	names := parent.Names()
	for j, name := range sub.ActiveNames() {
		for i, pn := range names {
			if pn == name && enc[j] != fullEnc[i] {
				t.Errorf("active %s: subspace unit %v != parent unit %v", name, enc[j], fullEnc[i])
			}
		}
	}
	// Short vectors leave trailing actives pinned.
	dec := sub.Decode(enc[:1])
	if dec["c.float"] != sub.Pins()["c.float"] {
		t.Errorf("short decode c.float = %v, want pin %v", dec["c.float"], sub.Pins()["c.float"])
	}
}

func TestSubspaceSamplersStayInside(t *testing.T) {
	_, sub := subspaceFixture(t)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		cfg := sub.Space().Random(rng)
		if err := sub.Space().Validate(cfg); err != nil {
			t.Fatalf("projected-space sample invalid: %v", err)
		}
		lifted := sub.Lift(cfg)
		if err := sub.Parent().Validate(lifted); err != nil {
			t.Fatalf("lifted sample invalid in parent: %v", err)
		}
	}
}

func TestSubspacePinsAreClamped(t *testing.T) {
	parent := MustSpace(
		IntParam("a", 0, 10, 5),
		FloatParam("b", 0, 1, 0.5),
	)
	sub, err := NewSubspace(parent, []string{"a"}, Config{"b": 7}) // out of domain
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.Pins()["b"]; got != 1 {
		t.Errorf("pin b = %v, want clamped 1", got)
	}
}
