package confspace

import (
	"math/rand"
	"reflect"
	"testing"
)

// propertySpace covers every parameter kind and encoding variant: linear
// and log integers, linear and log floats (including degenerate and
// negative ranges), booleans, and categoricals of several widths.
func propertySpace() *Space {
	return MustSpace(
		IntParam("int.lin", -20, 137, 0),
		IntParam("int.one", 4, 4, 4), // degenerate single-value domain
		LogIntParam("int.log", 1, 1<<20, 256),
		FloatParam("float.lin", -2.5, 7.5, 0),
		FloatParam("float.one", 3.25, 3.25, 3.25),
		Param{Name: "float.log", Kind: KindFloat, Min: 1e-4, Max: 1e3, Log: true, Def: 1},
		BoolParam("bool.t", true),
		BoolParam("bool.f", false),
		CatParam("cat.two", 0, "a", "b"),
		CatParam("cat.five", 3, "v", "w", "x", "y", "z"),
	)
}

// TestEncodeDecodeRoundTripProperty is the property test guarding
// Space.Encode/Decode (and, through the same Param.Unit/FromUnit pair,
// Subspace's projection): for randomly drawn valid configurations of
// every parameter kind,
//
//  1. discrete parameters (int, bool, categorical) survive one round trip
//     exactly;
//  2. one round trip always lands on a valid configuration;
//  3. a second round trip is the identity (the codec is idempotent) —
//     bit-for-bit, which is what the evaluation cache's canonical config
//     keys rely on;
//  4. the unit encoding is always inside [0, 1].
func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	space := propertySpace()
	rng := rand.New(rand.NewSource(31))
	discrete := map[string]bool{}
	for _, p := range space.Params() {
		if p.Kind != KindFloat {
			discrete[p.Name] = true
		}
	}
	for trial := 0; trial < 500; trial++ {
		cfg := space.Random(rng)
		if err := space.Validate(cfg); err != nil {
			t.Fatalf("trial %d: Random produced invalid config: %v", trial, err)
		}
		enc := space.Encode(cfg)
		if len(enc) != space.Dim() {
			t.Fatalf("trial %d: encoded length %d, want %d", trial, len(enc), space.Dim())
		}
		for i, u := range enc {
			if u < 0 || u > 1 {
				t.Fatalf("trial %d: unit coordinate %d = %v outside [0,1]", trial, i, u)
			}
		}
		once := space.Decode(enc)
		if err := space.Validate(once); err != nil {
			t.Fatalf("trial %d: decoded config invalid: %v", trial, err)
		}
		for name := range discrete {
			if once[name] != cfg[name] {
				t.Fatalf("trial %d: discrete %s = %v after round trip, want %v", trial, name, once[name], cfg[name])
			}
		}
		twice := space.Decode(space.Encode(once))
		if !reflect.DeepEqual(once, twice) {
			t.Fatalf("trial %d: round trip not idempotent:\nonce  %v\ntwice %v", trial, once, twice)
		}
	}
}

// TestParamUnitRoundTripProperty drills into the per-parameter codec:
// FromUnit(Unit(v)) is idempotent for every kind, and Unit is monotone
// over each parameter's domain (the ordering models learn on matches the
// parameter's natural ordering).
func TestParamUnitRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, p := range propertySpace().Params() {
		for trial := 0; trial < 200; trial++ {
			v := p.Random(rng)
			once := p.FromUnit(p.Unit(v))
			twice := p.FromUnit(p.Unit(once))
			if once != twice {
				t.Fatalf("%s: FromUnit∘Unit not idempotent: %v -> %v -> %v", p.Name, v, once, twice)
			}
			if p.Kind != KindFloat && once != v {
				t.Fatalf("%s: discrete value %v round-tripped to %v", p.Name, v, once)
			}
		}
		// Monotonicity of the unit map over a sweep of the domain.
		prevU := -1.0
		for i := 0; i <= 50; i++ {
			v := p.FromUnit(float64(i) / 50)
			u := p.Unit(v)
			if u < prevU-1e-12 {
				t.Fatalf("%s: Unit not monotone at %v (u=%v < prev %v)", p.Name, v, u, prevU)
			}
			if u > prevU {
				prevU = u
			}
		}
	}
}
