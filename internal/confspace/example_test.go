package confspace_test

import (
	"fmt"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/stat"
)

// Example declares a small search space, samples it, and encodes a
// configuration for a model.
func Example() {
	space := confspace.MustSpace(
		confspace.IntParam("spark.executor.cores", 1, 8, 1),
		confspace.LogIntParam("spark.executor.memoryMB", 1024, 32768, 1024),
		confspace.BoolParam("spark.shuffle.compress", true),
		confspace.CatParam("spark.io.compression.codec", 0, "lz4", "snappy", "zstd"),
	)
	fmt.Printf("dim=%d log10(size)=%.1f\n", space.Dim(), space.Log10Size())

	cfg := space.Default()
	fmt.Println("default:", space.FormatConfig(cfg))

	rng := stat.NewRNG(1)
	sample := space.Random(rng)
	fmt.Println("valid sample:", space.Validate(sample) == nil)

	x := space.Encode(cfg)
	fmt.Printf("unit encoding has %d coordinates\n", len(x))
	// Output:
	// dim=4 log10(size)=6.2
	// default: spark.executor.cores=1 spark.executor.memoryMB=1024 spark.io.compression.codec=lz4 spark.shuffle.compress=1
	// valid sample: true
	// unit encoding has 4 coordinates
}

// ExampleSparkSpace shows the full paper-scale Spark space.
func ExampleSparkSpace() {
	space := confspace.SparkSpace()
	fmt.Printf("parameters: %d\n", space.Dim())
	fmt.Printf("30-knob subspace exceeds 10^40 configs: %v\n",
		confspace.SparkSubspace(30).Log10Size() > 40)
	// Output:
	// parameters: 41
	// 30-knob subspace exceeds 10^40 configs: true
}
