package confspace

// Names of the Spark configuration parameters the tuners search over. The
// set has 41 knobs — the scale DAC tunes — spanning the execution aspects
// the paper enumerates in §III-B: processing, memory, networking and data
// shuffling. A number of knobs (heartbeats, timeouts, periodic GC) have
// little or no runtime effect; real spaces contain such decoys, and models
// must learn to ignore them.
const (
	ParamExecutorInstances     = "spark.executor.instances"
	ParamExecutorCores         = "spark.executor.cores"
	ParamExecutorMemoryMB      = "spark.executor.memoryMB"
	ParamMemoryOverheadFactor  = "spark.executor.memoryOverheadFactor"
	ParamDriverMemoryMB        = "spark.driver.memoryMB"
	ParamDriverCores           = "spark.driver.cores"
	ParamDefaultParallelism    = "spark.default.parallelism"
	ParamShufflePartitions     = "spark.sql.shuffle.partitions"
	ParamMemoryFraction        = "spark.memory.fraction"
	ParamStorageFraction       = "spark.memory.storageFraction"
	ParamShuffleCompress       = "spark.shuffle.compress"
	ParamShuffleSpillCompress  = "spark.shuffle.spill.compress"
	ParamRDDCompress           = "spark.rdd.compress"
	ParamBroadcastCompress     = "spark.broadcast.compress"
	ParamCompressionCodec      = "spark.io.compression.codec"
	ParamCompressionBlockKB    = "spark.io.compression.blockSizeKB"
	ParamSerializer            = "spark.serializer"
	ParamKryoBufferMaxMB       = "spark.kryoserializer.buffer.maxMB"
	ParamReducerMaxInFlightMB  = "spark.reducer.maxSizeInFlightMB"
	ParamShuffleFileBufferKB   = "spark.shuffle.file.bufferKB"
	ParamShuffleBypassMerge    = "spark.shuffle.sort.bypassMergeThreshold"
	ParamShuffleConnsPerPeer   = "spark.shuffle.io.numConnectionsPerPeer"
	ParamShuffleServiceEnabled = "spark.shuffle.service.enabled"
	ParamLocalityWait          = "spark.locality.wait"
	ParamSpeculation           = "spark.speculation"
	ParamSpeculationMultiplier = "spark.speculation.multiplier"
	ParamSpeculationQuantile   = "spark.speculation.quantile"
	ParamTaskCPUs              = "spark.task.cpus"
	ParamTaskMaxFailures       = "spark.task.maxFailures"
	ParamSchedulerMode         = "spark.scheduler.mode"
	ParamBroadcastBlockMB      = "spark.broadcast.blockSizeMB"
	ParamNetworkTimeout        = "spark.network.timeoutS"
	ParamHeartbeatInterval     = "spark.executor.heartbeatIntervalS"
	ParamMemoryMapThresholdMB  = "spark.storage.memoryMapThresholdMB"
	ParamDynAllocEnabled       = "spark.dynamicAllocation.enabled"
	ParamDynAllocMaxExecutors  = "spark.dynamicAllocation.maxExecutors"
	ParamMaxPartitionBytesMB   = "spark.files.maxPartitionBytesMB"
	ParamOffHeapEnabled        = "spark.memory.offHeap.enabled"
	ParamOffHeapSizeMB         = "spark.memory.offHeap.sizeMB"
	ParamPeriodicGCIntervalMin = "spark.cleaner.periodicGC.intervalMin"
	ParamGCThreads             = "spark.jvm.gcThreads"
)

// Codec choices for ParamCompressionCodec.
const (
	CodecLZ4    = "lz4"
	CodecLZF    = "lzf"
	CodecSnappy = "snappy"
	CodecZstd   = "zstd"
)

// Serializer choices for ParamSerializer.
const (
	SerializerJava = "java"
	SerializerKryo = "kryo"
)

// sparkParams is the full 41-knob declaration list. Defaults follow the
// Spark documentation where a default exists.
func sparkParams() []Param {
	return []Param{
		IntParam(ParamExecutorInstances, 1, 48, 2),
		IntParam(ParamExecutorCores, 1, 8, 1),
		LogIntParam(ParamExecutorMemoryMB, 1024, 32768, 1024),
		FloatParam(ParamMemoryOverheadFactor, 0.05, 0.30, 0.10),
		LogIntParam(ParamDriverMemoryMB, 1024, 16384, 1024),
		IntParam(ParamDriverCores, 1, 4, 1),
		LogIntParam(ParamDefaultParallelism, 8, 1024, 16),
		LogIntParam(ParamShufflePartitions, 8, 1024, 200),
		FloatParam(ParamMemoryFraction, 0.30, 0.90, 0.60),
		FloatParam(ParamStorageFraction, 0.10, 0.90, 0.50),
		BoolParam(ParamShuffleCompress, true),
		BoolParam(ParamShuffleSpillCompress, true),
		BoolParam(ParamRDDCompress, false),
		BoolParam(ParamBroadcastCompress, true),
		CatParam(ParamCompressionCodec, 0, CodecLZ4, CodecLZF, CodecSnappy, CodecZstd),
		LogIntParam(ParamCompressionBlockKB, 16, 128, 32),
		CatParam(ParamSerializer, 0, SerializerJava, SerializerKryo),
		LogIntParam(ParamKryoBufferMaxMB, 8, 128, 64),
		LogIntParam(ParamReducerMaxInFlightMB, 8, 128, 48),
		LogIntParam(ParamShuffleFileBufferKB, 16, 128, 32),
		IntParam(ParamShuffleBypassMerge, 50, 1000, 200),
		IntParam(ParamShuffleConnsPerPeer, 1, 5, 1),
		BoolParam(ParamShuffleServiceEnabled, false),
		FloatParam(ParamLocalityWait, 0, 10, 3),
		BoolParam(ParamSpeculation, false),
		FloatParam(ParamSpeculationMultiplier, 1.1, 5, 1.5),
		FloatParam(ParamSpeculationQuantile, 0.5, 0.95, 0.75),
		IntParam(ParamTaskCPUs, 1, 2, 1),
		IntParam(ParamTaskMaxFailures, 1, 8, 4),
		CatParam(ParamSchedulerMode, 0, "FIFO", "FAIR"),
		IntParam(ParamBroadcastBlockMB, 1, 16, 4),
		IntParam(ParamNetworkTimeout, 60, 600, 120),
		IntParam(ParamHeartbeatInterval, 5, 60, 10),
		IntParam(ParamMemoryMapThresholdMB, 1, 10, 2),
		BoolParam(ParamDynAllocEnabled, false),
		IntParam(ParamDynAllocMaxExecutors, 8, 64, 16),
		LogIntParam(ParamMaxPartitionBytesMB, 16, 512, 128),
		BoolParam(ParamOffHeapEnabled, false),
		IntParam(ParamOffHeapSizeMB, 0, 8192, 0),
		IntParam(ParamPeriodicGCIntervalMin, 10, 60, 30),
		IntParam(ParamGCThreads, 1, 8, 4),
	}
}

// SparkSpace returns the full 41-parameter Spark configuration space.
func SparkSpace() *Space { return MustSpace(sparkParams()...) }

// SparkSubspace returns the first n parameters of the Spark space — the
// dimensionality sweeps of experiment C3 ("30 params → >10^40 configs").
// n is clamped to [1, 41].
func SparkSubspace(n int) *Space {
	all := sparkParams()
	if n < 1 {
		n = 1
	}
	if n > len(all) {
		n = len(all)
	}
	return MustSpace(all[:n]...)
}
