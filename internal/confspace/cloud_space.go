package confspace

import (
	"fmt"

	"seamlesstune/internal/cloud"
)

// Names of the cloud configuration parameters (stage 1 of Fig. 1).
const (
	ParamInstanceType = "cloud.instanceType"
	ParamNodeCount    = "cloud.nodeCount"
)

// CloudSpace builds the cloud-configuration search space over a catalog:
// one categorical parameter per rentable instance type plus the cluster
// size. This is the space CherryPick and PARIS search.
func CloudSpace(cat *cloud.Catalog, minNodes, maxNodes int) (*Space, error) {
	if cat == nil || cat.Len() == 0 {
		return nil, fmt.Errorf("confspace: empty catalog")
	}
	if minNodes < 1 {
		minNodes = 1
	}
	if maxNodes < minNodes {
		maxNodes = minNodes
	}
	types := cat.Types()
	keys := make([]string, len(types))
	defIdx := 0
	for i, t := range types {
		keys[i] = t.String()
		// Default to a balanced general-purpose 4-vCPU box when present.
		if t.Family == cloud.General && t.VCPUs == 4 && defIdx == 0 {
			defIdx = i
		}
	}
	return NewSpace(
		CatParam(ParamInstanceType, defIdx, keys...),
		IntParam(ParamNodeCount, minNodes, maxNodes, minNodes+(maxNodes-minNodes)/4),
	)
}

// ClusterFromConfig resolves a cloud-space configuration into a concrete
// cluster specification.
func ClusterFromConfig(cat *cloud.Catalog, s *Space, cfg Config) (cloud.ClusterSpec, error) {
	key := s.ChoiceValue(cfg, ParamInstanceType)
	if key == "" {
		return cloud.ClusterSpec{}, fmt.Errorf("confspace: config has no %s", ParamInstanceType)
	}
	it, err := cat.Lookup(key)
	if err != nil {
		return cloud.ClusterSpec{}, err
	}
	spec := cloud.ClusterSpec{Instance: it, Count: cfg.Int(ParamNodeCount)}
	if err := spec.Validate(); err != nil {
		return cloud.ClusterSpec{}, err
	}
	return spec, nil
}
