package confspace

import (
	"errors"
	"math"
	"strings"
	"testing"

	"seamlesstune/internal/stat"
)

func testSpace(t *testing.T) *Space {
	t.Helper()
	s, err := NewSpace(
		IntParam("cores", 1, 8, 2),
		LogIntParam("memMB", 512, 8192, 1024),
		FloatParam("frac", 0.1, 0.9, 0.5),
		BoolParam("compress", true),
		CatParam("codec", 0, "lz4", "snappy", "zstd"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSpaceRejectsDuplicates(t *testing.T) {
	_, err := NewSpace(IntParam("a", 0, 1, 0), IntParam("a", 0, 2, 1))
	if err == nil {
		t.Fatal("duplicate names accepted")
	}
}

func TestSpaceDefaultValid(t *testing.T) {
	s := testSpace(t)
	if err := s.Validate(s.Default()); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if s.Default().Int("cores") != 2 {
		t.Error("default cores wrong")
	}
}

func TestSpaceRandomValid(t *testing.T) {
	s := testSpace(t)
	r := stat.NewRNG(1)
	for i := 0; i < 500; i++ {
		if err := s.Validate(s.Random(r)); err != nil {
			t.Fatalf("random config invalid: %v", err)
		}
	}
}

func TestSpaceValidateErrors(t *testing.T) {
	s := testSpace(t)
	cfg := s.Default()
	cfg["bogus"] = 1
	if err := s.Validate(cfg); !errors.Is(err, ErrUnknownParam) {
		t.Errorf("unknown param err = %v", err)
	}
	cfg = s.Default()
	cfg["cores"] = 99
	if err := s.Validate(cfg); !errors.Is(err, ErrInvalidValue) {
		t.Errorf("invalid value err = %v", err)
	}
	cfg = s.Default()
	delete(cfg, "frac")
	if err := s.Validate(cfg); err == nil {
		t.Error("missing param accepted")
	}
}

func TestSpaceClamp(t *testing.T) {
	s := testSpace(t)
	cfg := Config{"cores": 99, "bogus": 1}
	out := s.Clamp(cfg)
	if out.Int("cores") != 8 {
		t.Errorf("clamped cores = %d, want 8", out.Int("cores"))
	}
	if _, ok := out["bogus"]; ok {
		t.Error("undeclared entry kept")
	}
	if out.Float("frac") != 0.5 {
		t.Error("missing param did not take default")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testSpace(t)
	r := stat.NewRNG(2)
	for i := 0; i < 200; i++ {
		cfg := s.Random(r)
		x := s.Encode(cfg)
		if len(x) != s.Dim() {
			t.Fatalf("encoded length %d, want %d", len(x), s.Dim())
		}
		for _, u := range x {
			if u < 0 || u > 1 {
				t.Fatalf("encoded value %v outside unit cube", u)
			}
		}
		back := s.Decode(x)
		for _, p := range s.Params() {
			a, b := cfg[p.Name], back[p.Name]
			if p.Kind == KindFloat {
				if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
					t.Fatalf("%s: %v -> %v", p.Name, a, b)
				}
			} else if a != b {
				t.Fatalf("%s: %v -> %v", p.Name, a, b)
			}
		}
	}
}

func TestDecodeShortVector(t *testing.T) {
	s := testSpace(t)
	cfg := s.Decode([]float64{1})
	if cfg.Int("cores") != 8 {
		t.Errorf("first param not decoded: %v", cfg.Int("cores"))
	}
	if cfg.Float("frac") != 0.5 {
		t.Error("trailing params should default")
	}
}

func TestChoiceValue(t *testing.T) {
	s := testSpace(t)
	cfg := s.Default()
	cfg["codec"] = 2
	if got := s.ChoiceValue(cfg, "codec"); got != "zstd" {
		t.Errorf("ChoiceValue = %q, want zstd", got)
	}
	if got := s.ChoiceValue(cfg, "cores"); got != "" {
		t.Errorf("non-categorical ChoiceValue = %q, want empty", got)
	}
	cfg["codec"] = 99
	if got := s.ChoiceValue(cfg, "codec"); got != "" {
		t.Errorf("out-of-range ChoiceValue = %q, want empty", got)
	}
}

func TestNeighborAlwaysMutates(t *testing.T) {
	s := testSpace(t)
	r := stat.NewRNG(3)
	cfg := s.Default()
	for i := 0; i < 200; i++ {
		n := s.Neighbor(r, cfg, 0.2, 0.1)
		if err := s.Validate(n); err != nil {
			t.Fatalf("neighbor invalid: %v", err)
		}
		diff := 0
		for k := range cfg {
			if cfg[k] != n[k] {
				diff++
			}
		}
		if diff == 0 {
			t.Fatal("neighbor identical to origin")
		}
	}
}

func TestCrossoverGenesFromParents(t *testing.T) {
	s := testSpace(t)
	r := stat.NewRNG(4)
	a, b := s.Random(r), s.Random(r)
	for i := 0; i < 100; i++ {
		child := s.Crossover(r, a, b)
		if err := s.Validate(child); err != nil {
			t.Fatalf("child invalid: %v", err)
		}
		for k := range child {
			if child[k] != a[k] && child[k] != b[k] {
				t.Fatalf("gene %s = %v from neither parent (%v, %v)", k, child[k], a[k], b[k])
			}
		}
	}
}

func TestLatinHypercubeCoverage(t *testing.T) {
	s := testSpace(t)
	r := stat.NewRNG(5)
	const n = 10
	cfgs := s.LatinHypercube(r, n)
	if len(cfgs) != n {
		t.Fatalf("LHS returned %d configs, want %d", len(cfgs), n)
	}
	// The float parameter must have exactly one sample per stratum.
	p, _ := s.Param("frac")
	seen := make([]bool, n)
	for _, c := range cfgs {
		if err := s.Validate(c); err != nil {
			t.Fatal(err)
		}
		u := p.Unit(c["frac"])
		k := int(u * n)
		if k == n {
			k = n - 1
		}
		if seen[k] {
			t.Fatalf("stratum %d hit twice", k)
		}
		seen[k] = true
	}
	if got := s.LatinHypercube(r, 0); got != nil {
		t.Error("LHS(0) should be nil")
	}
}

func TestDivideAndDiverge(t *testing.T) {
	s := testSpace(t)
	r := stat.NewRNG(6)
	cfgs := s.DivideAndDiverge(r, 6, 3)
	if len(cfgs) != 18 {
		t.Fatalf("DDS returned %d configs, want 18", len(cfgs))
	}
	for _, c := range cfgs {
		if err := s.Validate(c); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.DivideAndDiverge(r, 0, 1); got != nil {
		t.Error("DDS with k=0 should be nil")
	}
}

func TestSubspaceAround(t *testing.T) {
	s := testSpace(t)
	r := stat.NewRNG(7)
	center := s.Random(r)
	sub := s.SubspaceAround(center, 0.25)
	if sub.Dim() != s.Dim() {
		t.Fatalf("subspace dim %d, want %d", sub.Dim(), s.Dim())
	}
	p, _ := sub.Param("frac")
	orig, _ := s.Param("frac")
	if p.Max-p.Min >= orig.Max-orig.Min {
		t.Errorf("subspace did not shrink: [%v, %v]", p.Min, p.Max)
	}
	// Centre stays inside the shrunk domain.
	if c := center["frac"]; c < p.Min-1e-9 || c > p.Max+1e-9 {
		t.Errorf("centre %v outside subspace [%v, %v]", c, p.Min, p.Max)
	}
	// Samples from the subspace validate in the parent space.
	for i := 0; i < 100; i++ {
		c := sub.Random(r)
		if err := s.Validate(c); err != nil {
			t.Fatalf("subspace sample invalid in parent: %v", err)
		}
	}
}

func TestLog10Size(t *testing.T) {
	// The §III-B claim: 30 Spark parameters exceed 10^40 configurations.
	s := SparkSubspace(30)
	if got := s.Log10Size(); got < 40 {
		t.Errorf("30-param space log10 size = %v, want > 40", got)
	}
}

func TestSparkSpace(t *testing.T) {
	s := SparkSpace()
	if s.Dim() != 41 {
		t.Fatalf("Spark space has %d params, want 41 (DAC scale)", s.Dim())
	}
	if err := s.Validate(s.Default()); err != nil {
		t.Fatalf("Spark default invalid: %v", err)
	}
	d := s.Default()
	if d.Int(ParamExecutorMemoryMB) != 1024 || !d.Bool(ParamShuffleCompress) {
		t.Error("Spark defaults don't match documentation values")
	}
	if got := s.ChoiceValue(d, ParamCompressionCodec); got != CodecLZ4 {
		t.Errorf("default codec = %q, want lz4", got)
	}
}

func TestSparkSubspaceBounds(t *testing.T) {
	if got := SparkSubspace(0).Dim(); got != 1 {
		t.Errorf("SparkSubspace(0) dim = %d, want 1", got)
	}
	if got := SparkSubspace(99).Dim(); got != 41 {
		t.Errorf("SparkSubspace(99) dim = %d, want 41", got)
	}
}

func TestFormatConfig(t *testing.T) {
	s := testSpace(t)
	cfg := s.Default()
	out := s.FormatConfig(cfg)
	if !strings.Contains(out, "codec=lz4") || !strings.Contains(out, "cores=2") {
		t.Errorf("FormatConfig = %q", out)
	}
	// Deterministic ordering.
	if out != s.FormatConfig(cfg.Clone()) {
		t.Error("FormatConfig not deterministic")
	}
}

func TestConfigClone(t *testing.T) {
	c := Config{"a": 1}
	d := c.Clone()
	d["a"] = 2
	if c["a"] != 1 {
		t.Error("Clone aliases the original")
	}
}

func TestConfigCanonical(t *testing.T) {
	c := Config{"b": 2, "a": 1.5, "c": 0}
	if got, want := c.Canonical(), c.Clone().Canonical(); got != want {
		t.Errorf("Canonical not stable: %q vs %q", got, want)
	}
	d := c.Clone()
	d["a"] = math.Nextafter(1.5, 2) // one ulp away must still differ
	if c.Canonical() == d.Canonical() {
		t.Error("Canonical lost float precision")
	}
	e := c.Clone()
	delete(e, "c")
	if c.Canonical() == e.Canonical() {
		t.Error("Canonical ignores missing keys")
	}
	// Sorted key order, independent of map iteration.
	if got := (Config{"z": 1, "a": 1}).Canonical(); got != (Config{"a": 1, "z": 1}).Canonical() {
		t.Errorf("Canonical order unstable: %q", got)
	}
}
