package confspace

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Config is one point in a search space: parameter name → value. Booleans
// are 0/1, categoricals are choice indices, integers are whole floats.
type Config map[string]float64

// Clone returns a deep copy.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Canonical renders the config as a deterministic string: names sorted,
// values in exact hexadecimal float notation, so two configs canonicalize
// equally iff they are bit-identical. It is the stable identity used for
// content-derived evaluation seeds (tuner.CandidateSeed) and therefore
// for simulator-cache hits on revisited points.
func (c Config) Canonical() string {
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(c[k], 'x', -1, 64))
	}
	return b.String()
}

// Int reads a parameter as an integer (rounding).
func (c Config) Int(name string) int { return int(math.Round(c[name])) }

// Float reads a parameter as a float.
func (c Config) Float(name string) float64 { return c[name] }

// Bool reads a parameter as a boolean.
func (c Config) Bool(name string) bool { return c[name] >= 0.5 }

// ErrUnknownParam is returned when a config carries a name the space does
// not declare, or a lookup misses.
var ErrUnknownParam = errors.New("confspace: unknown parameter")

// ErrInvalidValue is returned when a config value is outside its domain.
var ErrInvalidValue = errors.New("confspace: value outside parameter domain")

// Space is an ordered, immutable set of parameters.
type Space struct {
	params []Param
	index  map[string]int
}

// NewSpace builds a space from parameter declarations. Names must be
// unique and each declaration valid.
func NewSpace(params ...Param) (*Space, error) {
	s := &Space{
		params: append([]Param(nil), params...),
		index:  make(map[string]int, len(params)),
	}
	for i, p := range s.params {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if _, dup := s.index[p.Name]; dup {
			return nil, fmt.Errorf("confspace: duplicate parameter %q", p.Name)
		}
		s.index[p.Name] = i
	}
	return s, nil
}

// MustSpace is NewSpace that panics on invalid declarations; for use with
// static, test-covered space definitions only.
func MustSpace(params ...Param) *Space {
	s, err := NewSpace(params...)
	if err != nil {
		panic(err)
	}
	return s
}

// Params returns the declarations in order (copy).
func (s *Space) Params() []Param { return append([]Param(nil), s.params...) }

// Dim returns the number of parameters.
func (s *Space) Dim() int { return len(s.params) }

// Param looks up a declaration by name.
func (s *Space) Param(name string) (Param, error) {
	i, ok := s.index[name]
	if !ok {
		return Param{}, fmt.Errorf("%w: %q", ErrUnknownParam, name)
	}
	return s.params[i], nil
}

// Default returns the configuration of declared defaults.
func (s *Space) Default() Config {
	c := make(Config, len(s.params))
	for _, p := range s.params {
		c[p.Name] = p.Def
	}
	return c
}

// Random draws a uniform configuration.
func (s *Space) Random(r *rand.Rand) Config {
	c := make(Config, len(s.params))
	for _, p := range s.params {
		c[p.Name] = p.Random(r)
	}
	return c
}

// Validate checks that cfg assigns a valid value to every declared
// parameter and nothing else.
func (s *Space) Validate(cfg Config) error {
	for name, v := range cfg {
		i, ok := s.index[name]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownParam, name)
		}
		if s.params[i].Clamp(v) != v {
			return fmt.Errorf("%w: %s = %v", ErrInvalidValue, name, v)
		}
	}
	for _, p := range s.params {
		if _, ok := cfg[p.Name]; !ok {
			return fmt.Errorf("confspace: config missing parameter %q", p.Name)
		}
	}
	return nil
}

// Clamp returns a copy of cfg with every declared parameter snapped into
// its domain; missing parameters take their defaults, undeclared entries
// are dropped.
func (s *Space) Clamp(cfg Config) Config {
	out := make(Config, len(s.params))
	for _, p := range s.params {
		if v, ok := cfg[p.Name]; ok {
			out[p.Name] = p.Clamp(v)
		} else {
			out[p.Name] = p.Def
		}
	}
	return out
}

// Encode maps cfg to a unit-cube vector in declaration order.
func (s *Space) Encode(cfg Config) []float64 {
	return s.EncodeInto(cfg, make([]float64, len(s.params)))
}

// EncodeInto encodes cfg into dst, which must have length Dim(), and
// returns dst. Hot loops (acquisition pools encoding hundreds of
// candidates per step) use it to reuse one backing buffer across calls.
func (s *Space) EncodeInto(cfg Config, dst []float64) []float64 {
	for i, p := range s.params {
		dst[i] = p.Unit(cfg[p.Name])
	}
	return dst
}

// Decode maps a unit-cube vector back to a configuration. Short vectors
// leave trailing parameters at their defaults.
func (s *Space) Decode(x []float64) Config {
	c := s.Default()
	for i, p := range s.params {
		if i >= len(x) {
			break
		}
		c[p.Name] = p.FromUnit(x[i])
	}
	return c
}

// ChoiceValue returns the categorical label selected by cfg for name, or
// the empty string for non-categorical parameters.
func (s *Space) ChoiceValue(cfg Config, name string) string {
	p, err := s.Param(name)
	if err != nil || p.Kind != KindCategorical {
		return ""
	}
	i := int(math.Round(cfg[name]))
	if i < 0 || i >= len(p.Choices) {
		return ""
	}
	return p.Choices[i]
}

// Log10Size returns log10 of the (discretized) cardinality of the space.
// With the paper's 30-parameter Spark subset this exceeds 40 — the
// ">10^40 configurations" claim of §III-B.
func (s *Space) Log10Size() float64 {
	sum := 0.0
	for _, p := range s.params {
		sum += math.Log10(p.Levels())
	}
	return sum
}

// Neighbor perturbs cfg: each parameter mutates with probability rate; a
// mutated numeric parameter moves by a Gaussian step of the given scale in
// unit-cube coordinates, while booleans flip and categoricals resample.
// At least one parameter always mutates. Used by hill climbing and as the
// genetic-algorithm mutation operator.
func (s *Space) Neighbor(r *rand.Rand, cfg Config, rate, scale float64) Config {
	out := s.Clamp(cfg)
	mutated := false
	for _, p := range s.params {
		if r.Float64() >= rate {
			continue
		}
		out[p.Name] = s.mutateParam(r, p, out[p.Name], scale)
		mutated = true
	}
	if !mutated {
		p := s.params[r.Intn(len(s.params))]
		out[p.Name] = s.mutateParam(r, p, out[p.Name], scale)
	}
	return out
}

func (s *Space) mutateParam(r *rand.Rand, p Param, cur, scale float64) float64 {
	switch p.Kind {
	case KindBool:
		if cur >= 0.5 {
			return 0
		}
		return 1
	case KindCategorical:
		if len(p.Choices) == 1 {
			return 0
		}
		// Resample to a different choice.
		next := float64(r.Intn(len(p.Choices) - 1))
		if next >= cur {
			next++
		}
		return next
	default:
		u := p.Unit(cur) + scale*r.NormFloat64()
		v := p.FromUnit(u)
		if v == cur && p.Kind == KindInt {
			// Guarantee movement for coarse integer grids.
			if r.Float64() < 0.5 && cur > p.Min {
				v = cur - 1
			} else if cur < p.Max {
				v = cur + 1
			} else if cur > p.Min {
				v = cur - 1
			}
		}
		return v
	}
}

// Crossover mixes two parents uniformly (each gene from a random parent),
// the GA operator from DAC-style tuning.
func (s *Space) Crossover(r *rand.Rand, a, b Config) Config {
	out := make(Config, len(s.params))
	for _, p := range s.params {
		if r.Float64() < 0.5 {
			out[p.Name] = p.Clamp(a[p.Name])
		} else {
			out[p.Name] = p.Clamp(b[p.Name])
		}
	}
	return out
}

// LatinHypercube draws n configurations with stratified coverage: each
// parameter's unit interval is cut into n strata and every stratum is used
// exactly once across the sample.
func (s *Space) LatinHypercube(r *rand.Rand, n int) []Config {
	if n <= 0 {
		return nil
	}
	cols := make([][]float64, len(s.params))
	for j := range cols {
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = (float64(i) + r.Float64()) / float64(n)
		}
		r.Shuffle(n, func(a, b int) { col[a], col[b] = col[b], col[a] })
		cols[j] = col
	}
	out := make([]Config, n)
	for i := 0; i < n; i++ {
		c := make(Config, len(s.params))
		for j, p := range s.params {
			c[p.Name] = p.FromUnit(cols[j][i])
		}
		out[i] = c
	}
	return out
}

// DivideAndDiverge implements BestConfig's DDS sampling: each dimension is
// divided into k intervals, and samples are taken so that along every
// dimension all k intervals are represented ("divide"), with interval
// assignment permuted independently per dimension ("diverge"). With
// rounds > 1 the permutations are redrawn, yielding rounds×k samples.
func (s *Space) DivideAndDiverge(r *rand.Rand, k, rounds int) []Config {
	if k <= 0 || rounds <= 0 {
		return nil
	}
	var out []Config
	for round := 0; round < rounds; round++ {
		out = append(out, s.LatinHypercube(r, k)...)
	}
	return out
}

// SubspaceAround returns a space with the same parameters but numeric
// bounds shrunk to a fraction frac of their (unit) width centred on cfg —
// the "bound" step of BestConfig's recursive bound-and-search. Booleans
// and categoricals keep their full domains but default to cfg's values.
func (s *Space) SubspaceAround(cfg Config, frac float64) *Space {
	if frac <= 0 {
		frac = 0.01
	}
	if frac > 1 {
		frac = 1
	}
	params := make([]Param, len(s.params))
	for i, p := range s.params {
		np := p
		np.Def = p.Clamp(cfg[p.Name])
		switch p.Kind {
		case KindInt, KindFloat:
			u := p.Unit(cfg[p.Name])
			half := frac / 2
			loU, hiU := u-half, u+half
			if loU < 0 {
				hiU -= loU
				loU = 0
			}
			if hiU > 1 {
				loU -= hiU - 1
				hiU = 1
			}
			if loU < 0 {
				loU = 0
			}
			np.Min = p.FromUnit(loU)
			np.Max = p.FromUnit(hiU)
			if np.Max < np.Min {
				np.Min, np.Max = np.Max, np.Min
			}
			np.Def = np.Clamp(np.Def)
		}
		params[i] = np
	}
	// Parameter declarations derived from a valid space remain valid.
	sub, err := NewSpace(params...)
	if err != nil {
		return s
	}
	return sub
}

// Names returns the parameter names in declaration order.
func (s *Space) Names() []string {
	out := make([]string, len(s.params))
	for i, p := range s.params {
		out[i] = p.Name
	}
	return out
}

// FormatConfig renders cfg compactly and deterministically (sorted names),
// resolving categorical labels.
func (s *Space) FormatConfig(cfg Config) string {
	names := make([]string, 0, len(cfg))
	for name := range cfg {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, name := range names {
		if i > 0 {
			b.WriteString(" ")
		}
		if p, err := s.Param(name); err == nil && p.Kind == KindCategorical {
			fmt.Fprintf(&b, "%s=%s", name, s.ChoiceValue(cfg, name))
			continue
		}
		v := cfg[name]
		if v == math.Trunc(v) {
			fmt.Fprintf(&b, "%s=%d", name, int(v))
		} else {
			fmt.Fprintf(&b, "%s=%.3g", name, v)
		}
	}
	return b.String()
}
