package confspace

import (
	"math"
	"testing"
	"testing/quick"

	"seamlesstune/internal/stat"
)

func TestParamClamp(t *testing.T) {
	tests := []struct {
		name string
		p    Param
		in   float64
		want float64
	}{
		{"int rounds", IntParam("x", 0, 10, 5), 3.6, 4},
		{"int clamps high", IntParam("x", 0, 10, 5), 99, 10},
		{"int clamps low", IntParam("x", 0, 10, 5), -3, 0},
		{"float passes", FloatParam("x", 0, 1, 0.5), 0.25, 0.25},
		{"float clamps", FloatParam("x", 0, 1, 0.5), 7, 1},
		{"bool true", BoolParam("x", false), 0.7, 1},
		{"bool false", BoolParam("x", false), 0.3, 0},
		{"cat rounds", CatParam("x", 0, "a", "b", "c"), 1.4, 1},
		{"cat clamps", CatParam("x", 0, "a", "b", "c"), 9, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Clamp(tt.in); got != tt.want {
				t.Errorf("Clamp(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestParamUnitRoundTrip(t *testing.T) {
	params := []Param{
		IntParam("i", 2, 100, 10),
		LogIntParam("li", 8, 1024, 64),
		FloatParam("f", -5, 5, 0),
		Param{Name: "lf", Kind: KindFloat, Min: 0.01, Max: 100, Log: true, Def: 1},
		BoolParam("b", true),
		CatParam("c", 1, "x", "y", "z"),
	}
	r := stat.NewRNG(1)
	for _, p := range params {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for i := 0; i < 200; i++ {
			v := p.Random(r)
			if p.Clamp(v) != v {
				t.Fatalf("%s: Random produced invalid %v", p.Name, v)
			}
			u := p.Unit(v)
			if u < 0 || u > 1 {
				t.Fatalf("%s: Unit(%v) = %v outside [0,1]", p.Name, v, u)
			}
			back := p.FromUnit(u)
			// Round-trip must land on the same discrete value; floats may
			// differ by epsilon.
			switch p.Kind {
			case KindFloat:
				if math.Abs(back-v) > 1e-9*(1+math.Abs(v)) {
					t.Fatalf("%s: round trip %v -> %v", p.Name, v, back)
				}
			default:
				if back != v {
					t.Fatalf("%s: round trip %v -> %v", p.Name, v, back)
				}
			}
		}
	}
}

func TestLogSampling(t *testing.T) {
	// Log-scale sampling should place roughly half the mass below the
	// geometric midpoint.
	p := LogIntParam("x", 1, 1024, 32)
	r := stat.NewRNG(2)
	below := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if p.Random(r) < 32 { // geometric midpoint of [1, 1024]
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.42 || frac > 0.58 {
		t.Errorf("log sampling below geometric midpoint = %v, want ~0.5", frac)
	}
}

func TestParamValidate(t *testing.T) {
	tests := []struct {
		name string
		p    Param
		ok   bool
	}{
		{"valid int", IntParam("a", 0, 5, 2), true},
		{"empty name", IntParam("", 0, 5, 2), false},
		{"inverted bounds", IntParam("a", 5, 0, 2), false},
		{"log with zero min", Param{Name: "a", Kind: KindFloat, Min: 0, Max: 1, Log: true}, false},
		{"cat no choices", Param{Name: "a", Kind: KindCategorical}, false},
		{"default out of domain", IntParam("a", 0, 5, 9), false},
		{"unknown kind", Param{Name: "a", Kind: Kind(99)}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			if tt.ok && err != nil {
				t.Errorf("Validate = %v, want nil", err)
			}
			if !tt.ok && err == nil {
				t.Error("Validate = nil, want error")
			}
		})
	}
}

func TestParamLevels(t *testing.T) {
	if got := IntParam("a", 1, 10, 5).Levels(); got != 10 {
		t.Errorf("int levels = %v, want 10", got)
	}
	if got := BoolParam("a", false).Levels(); got != 2 {
		t.Errorf("bool levels = %v, want 2", got)
	}
	if got := CatParam("a", 0, "x", "y", "z").Levels(); got != 3 {
		t.Errorf("cat levels = %v, want 3", got)
	}
	if got := FloatParam("a", 0, 1, 0).Levels(); got != 100 {
		t.Errorf("float levels = %v, want 100", got)
	}
}

func TestKindString(t *testing.T) {
	if KindInt.String() != "int" || KindCategorical.String() != "categorical" {
		t.Error("Kind.String wrong")
	}
	if Kind(42).String() != "kind(42)" {
		t.Error("unknown Kind.String wrong")
	}
}

// Property: FromUnit(Unit(v)) is idempotent for any clamped value.
func TestUnitIdempotentProperty(t *testing.T) {
	p := LogIntParam("x", 2, 4096, 16)
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		v := p.Clamp(raw)
		once := p.FromUnit(p.Unit(v))
		twice := p.FromUnit(p.Unit(once))
		return once == twice
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
