package confspace

import "fmt"

// Subspace is a projection of a parent Space onto a subset of its
// parameters — the search-space view significance-aware pruning tunes
// inside (Tuneful's "tune only the knobs that matter"). The active
// parameters keep their full domains; every pruned parameter is pinned to
// a fixed value (its default, or the best-known value when the caller has
// one). Encoding and decoding run over only the active dims, so a model
// fitted through a Subspace sees a unit cube of dimension Dim() —
// directly shrinking the surrogate's input dimension — while Lift
// restores full parent-space configurations losslessly: pinned values
// round-trip bit-for-bit, and active values round-trip exactly like the
// parent Space's own Encode/Decode.
//
// A Subspace is immutable after construction and safe for concurrent use.
type Subspace struct {
	parent *Space
	proj   *Space // Space over the active params, in parent declaration order
	active []int  // indices of active params in the parent
	pins   Config // full-dim config; inactive entries are the pinned values
}

// NewSubspace builds the projection of parent onto the named active
// parameters. pins optionally overrides the pinned value of inactive
// parameters (clamped into domain); parameters absent from pins pin to
// their declared defaults. Unknown names — active or pinned — are
// rejected, as is an empty active set. Active-name order does not matter:
// dimensions always follow the parent's declaration order, so two
// subspaces over the same set encode identically.
func NewSubspace(parent *Space, activeNames []string, pins Config) (*Subspace, error) {
	if parent == nil {
		return nil, fmt.Errorf("confspace: nil parent space")
	}
	if len(activeNames) == 0 {
		return nil, fmt.Errorf("confspace: subspace needs at least one active parameter")
	}
	want := make(map[string]bool, len(activeNames))
	for _, name := range activeNames {
		if _, err := parent.Param(name); err != nil {
			return nil, err
		}
		want[name] = true
	}
	for name := range pins {
		if _, err := parent.Param(name); err != nil {
			return nil, err
		}
	}
	sub := &Subspace{parent: parent, pins: parent.Clamp(pins)}
	var activeParams []Param
	for i, p := range parent.params {
		if want[p.Name] {
			sub.active = append(sub.active, i)
			activeParams = append(activeParams, p)
		}
	}
	// Parameter declarations lifted from a valid space remain valid.
	proj, err := NewSpace(activeParams...)
	if err != nil {
		return nil, err
	}
	sub.proj = proj
	return sub, nil
}

// Parent returns the space the subspace projects.
func (s *Subspace) Parent() *Space { return s.parent }

// Space returns the projected Space over the active parameters only —
// what samplers and tuners operate on. Its declaration order is the
// parent's.
func (s *Subspace) Space() *Space { return s.proj }

// Dim returns the number of active dimensions.
func (s *Subspace) Dim() int { return len(s.active) }

// ActiveNames returns the active parameter names in parent declaration
// order.
func (s *Subspace) ActiveNames() []string { return s.proj.Names() }

// PrunedNames returns the pinned parameter names in parent declaration
// order.
func (s *Subspace) PrunedNames() []string {
	out := make([]string, 0, s.parent.Dim()-len(s.active))
	activeSet := make(map[int]bool, len(s.active))
	for _, i := range s.active {
		activeSet[i] = true
	}
	for i, p := range s.parent.params {
		if !activeSet[i] {
			out = append(out, p.Name)
		}
	}
	return out
}

// Pins returns the full pinned configuration: every parameter at its pin
// (inactive) or pin-default (active) value. Lift starts from a copy of it.
func (s *Subspace) Pins() Config { return s.pins.Clone() }

// Project restricts a full parent-space configuration to the active
// parameters — the Config shape the projected Space validates and
// encodes. Missing entries fall back to the pinned (clamped) defaults.
func (s *Subspace) Project(full Config) Config {
	out := make(Config, len(s.active))
	for _, i := range s.active {
		name := s.parent.params[i].Name
		if v, ok := full[name]; ok {
			out[name] = v
		} else {
			out[name] = s.pins[name]
		}
	}
	return out
}

// Lift merges an active-dims configuration with the pinned values into a
// full parent-space configuration. Active values pass through untouched
// (Lift∘Project is the identity on active entries); pruned parameters take
// their pinned values bit-for-bit.
func (s *Subspace) Lift(sub Config) Config {
	out := s.pins.Clone()
	for _, i := range s.active {
		name := s.parent.params[i].Name
		if v, ok := sub[name]; ok {
			out[name] = v
		}
	}
	return out
}

// Encode maps a configuration (full or already-projected — extra entries
// are ignored) to the active-dims unit-cube vector.
func (s *Subspace) Encode(cfg Config) []float64 {
	return s.EncodeInto(cfg, make([]float64, len(s.active)))
}

// EncodeInto encodes into dst, which must have length Dim(). It mirrors
// Space.EncodeInto for the acquisition hot path.
func (s *Subspace) EncodeInto(cfg Config, dst []float64) []float64 {
	for j, i := range s.active {
		p := s.parent.params[i]
		dst[j] = p.Unit(cfg[p.Name])
	}
	return dst
}

// Decode maps an active-dims unit vector back to a full parent-space
// configuration: active parameters from the vector, pruned parameters at
// their pins. Short vectors leave trailing active parameters pinned.
func (s *Subspace) Decode(x []float64) Config {
	out := s.pins.Clone()
	for j, i := range s.active {
		if j >= len(x) {
			break
		}
		p := s.parent.params[i]
		out[p.Name] = p.FromUnit(x[j])
	}
	return out
}

// Describe renders the subspace compactly for logs and events.
func (s *Subspace) Describe() string {
	return fmt.Sprintf("%d/%d dims active", len(s.active), s.parent.Dim())
}
