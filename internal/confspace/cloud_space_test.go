package confspace

import (
	"testing"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/stat"
)

func TestCloudSpace(t *testing.T) {
	cat := cloud.DefaultCatalog()
	s, err := CloudSpace(cat, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 2 {
		t.Fatalf("cloud space dim = %d, want 2", s.Dim())
	}
	p, err := s.Param(ParamInstanceType)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Choices) != cat.Len() {
		t.Errorf("instance choices = %d, want %d", len(p.Choices), cat.Len())
	}

	r := stat.NewRNG(1)
	for i := 0; i < 200; i++ {
		cfg := s.Random(r)
		spec, err := ClusterFromConfig(cat, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Count < 2 || spec.Count > 20 {
			t.Fatalf("node count %d outside [2, 20]", spec.Count)
		}
		if spec.Instance.VCPUs == 0 {
			t.Fatal("unresolved instance type")
		}
	}
}

func TestCloudSpaceDefaultsToGeneralPurpose(t *testing.T) {
	cat := cloud.DefaultCatalog()
	s, err := CloudSpace(cat, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ClusterFromConfig(cat, s, s.Default())
	if err != nil {
		t.Fatal(err)
	}
	if spec.Instance.Family != cloud.General || spec.Instance.VCPUs != 4 {
		t.Errorf("default instance = %+v, want general 4-vCPU", spec.Instance)
	}
}

func TestCloudSpaceErrors(t *testing.T) {
	if _, err := CloudSpace(nil, 1, 4); err == nil {
		t.Error("nil catalog accepted")
	}
	cat := cloud.DefaultCatalog()
	s, err := CloudSpace(cat, 5, 3) // inverted bounds get repaired
	if err != nil {
		t.Fatal(err)
	}
	p, _ := s.Param(ParamNodeCount)
	if p.Min != 5 || p.Max != 5 {
		t.Errorf("repaired node bounds = [%v, %v], want [5, 5]", p.Min, p.Max)
	}

	// Config lacking the instance parameter.
	sparkSpace := SparkSpace()
	if _, err := ClusterFromConfig(cat, sparkSpace, sparkSpace.Default()); err == nil {
		t.Error("ClusterFromConfig without instance param accepted")
	}
}
