// Package confspace defines typed configuration search spaces: parameter
// declarations (integer, float, boolean, categorical — optionally
// log-scaled), configuration values, validation, unit-cube encoding for
// models, and the samplers used by the tuning strategies (uniform random,
// Latin hypercube, and BestConfig-style divide-and-diverge).
//
// Two concrete spaces matter to the paper: the Spark space (41 tunable
// knobs, the scale DAC tunes) and the cloud space (provider, instance
// type, cluster size — what CherryPick and PARIS search).
package confspace

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Kind enumerates parameter types.
type Kind int

// Parameter kinds.
const (
	KindInt Kind = iota + 1
	KindFloat
	KindBool
	KindCategorical
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindCategorical:
		return "categorical"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Param declares one tunable parameter. All values are carried as float64
// inside a Config; Param defines how that float is interpreted, bounded
// and sampled.
type Param struct {
	Name    string
	Kind    Kind
	Min     float64  // inclusive lower bound (Int/Float)
	Max     float64  // inclusive upper bound (Int/Float)
	Log     bool     // sample and encode on a log scale (requires Min > 0)
	Choices []string // categorical labels; value is the choice index
	Def     float64  // default value
}

// IntParam declares an integer parameter in [min, max] with default def.
func IntParam(name string, min, max, def int) Param {
	return Param{Name: name, Kind: KindInt, Min: float64(min), Max: float64(max), Def: float64(def)}
}

// LogIntParam declares an integer parameter sampled on a log scale.
func LogIntParam(name string, min, max, def int) Param {
	p := IntParam(name, min, max, def)
	p.Log = true
	return p
}

// FloatParam declares a float parameter in [min, max] with default def.
func FloatParam(name string, min, max, def float64) Param {
	return Param{Name: name, Kind: KindFloat, Min: min, Max: max, Def: def}
}

// BoolParam declares a boolean parameter (stored as 0 or 1).
func BoolParam(name string, def bool) Param {
	d := 0.0
	if def {
		d = 1
	}
	return Param{Name: name, Kind: KindBool, Min: 0, Max: 1, Def: d}
}

// CatParam declares a categorical parameter over the given choices with
// default index def.
func CatParam(name string, def int, choices ...string) Param {
	return Param{
		Name: name, Kind: KindCategorical,
		Min: 0, Max: float64(len(choices) - 1),
		Choices: choices, Def: float64(def),
	}
}

// Clamp snaps v to a valid value for the parameter: bounded, and rounded
// for discrete kinds.
func (p Param) Clamp(v float64) float64 {
	switch p.Kind {
	case KindBool:
		if v >= 0.5 {
			return 1
		}
		return 0
	case KindInt, KindCategorical:
		v = math.Round(v)
	}
	if v < p.Min {
		v = p.Min
	}
	if v > p.Max {
		v = p.Max
	}
	return v
}

// Random draws a uniform (log-uniform when p.Log) valid value.
func (p Param) Random(r *rand.Rand) float64 {
	switch p.Kind {
	case KindBool:
		if r.Float64() < 0.5 {
			return 0
		}
		return 1
	case KindCategorical:
		return float64(r.Intn(len(p.Choices)))
	}
	return p.FromUnit(r.Float64())
}

// Unit maps a valid value into [0, 1] (log-aware), the encoding used by
// the regression and GP models.
func (p Param) Unit(v float64) float64 {
	v = p.Clamp(v)
	if p.Max == p.Min {
		return 0
	}
	if p.Log && p.Min > 0 {
		return (math.Log(v) - math.Log(p.Min)) / (math.Log(p.Max) - math.Log(p.Min))
	}
	return (v - p.Min) / (p.Max - p.Min)
}

// FromUnit maps u in [0, 1] back to a valid parameter value.
func (p Param) FromUnit(u float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	var v float64
	if p.Log && p.Min > 0 {
		v = math.Exp(math.Log(p.Min) + u*(math.Log(p.Max)-math.Log(p.Min)))
	} else {
		v = p.Min + u*(p.Max-p.Min)
	}
	return p.Clamp(v)
}

// Levels returns the number of distinct values the parameter can take;
// continuous parameters report the discretization used for cardinality
// accounting (100 levels, following BestConfig's discretized sampling).
func (p Param) Levels() float64 {
	switch p.Kind {
	case KindBool:
		return 2
	case KindCategorical:
		return float64(len(p.Choices))
	case KindInt:
		return p.Max - p.Min + 1
	default:
		return 100
	}
}

// Validate reports whether the declaration itself is well formed.
func (p Param) Validate() error {
	if p.Name == "" {
		return errors.New("confspace: parameter with empty name")
	}
	switch p.Kind {
	case KindInt, KindFloat:
		if p.Max < p.Min {
			return fmt.Errorf("confspace: %s: max %v < min %v", p.Name, p.Max, p.Min)
		}
		if p.Log && p.Min <= 0 {
			return fmt.Errorf("confspace: %s: log scale requires min > 0", p.Name)
		}
	case KindBool:
	case KindCategorical:
		if len(p.Choices) == 0 {
			return fmt.Errorf("confspace: %s: categorical with no choices", p.Name)
		}
	default:
		return fmt.Errorf("confspace: %s: unknown kind %v", p.Name, p.Kind)
	}
	if c := p.Clamp(p.Def); c != p.Def {
		return fmt.Errorf("confspace: %s: default %v outside domain", p.Name, p.Def)
	}
	return nil
}
