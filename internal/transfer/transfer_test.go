package transfer

import (
	"errors"
	"math"
	"testing"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/history"
	"seamlesstune/internal/stat"
)

func mkRecord(wl string, input int64, runtime float64, shuffle, spill int64, gc float64, stages int, failed bool) history.Record {
	return history.Record{
		Tenant: "t", Workload: wl, InputBytes: input,
		RuntimeS: runtime, Failed: failed,
		Config: confspace.Config{"spark.executor.cores": 4},
		Metrics: history.Metrics{
			ShuffleReadBytes:  shuffle / 2,
			ShuffleWriteBytes: shuffle / 2,
			SpillBytes:        spill,
			GCSeconds:         gc,
			Stages:            stages,
		},
	}
}

const gb = int64(1) << 30

// scanRecords mimics a map-heavy workload; iterRecords an iterative
// shuffle-heavy one.
func scanRecords(n int) []history.Record {
	var out []history.Record
	for i := 0; i < n; i++ {
		out = append(out, mkRecord("scanlike", 8*gb, 50+float64(i), gb/20, 0, 1, 2, false))
	}
	return out
}

func iterRecords(n int) []history.Record {
	var out []history.Record
	for i := 0; i < n; i++ {
		out = append(out, mkRecord("iterlike", 8*gb, 200+float64(i), 12*gb, 2*gb, 20, 11, false))
	}
	return out
}

func TestFingerprintOf(t *testing.T) {
	fp, err := FingerprintOf(scanRecords(5))
	if err != nil {
		t.Fatal(err)
	}
	if fp.ShufflePerInput <= 0 || fp.SecondsPerGB <= 0 || fp.StageDepth != 2 {
		t.Errorf("fingerprint = %+v", fp)
	}
	if fp.FailRate != 0 {
		t.Errorf("FailRate = %v", fp.FailRate)
	}
}

func TestFingerprintErrors(t *testing.T) {
	if _, err := FingerprintOf(nil); !errors.Is(err, ErrNoRecords) {
		t.Errorf("err = %v", err)
	}
	// All-failed history also errors.
	recs := []history.Record{mkRecord("w", gb, 10, 0, 0, 0, 1, true)}
	if _, err := FingerprintOf(recs); !errors.Is(err, ErrNoRecords) {
		t.Errorf("err = %v", err)
	}
}

func TestFingerprintFailRate(t *testing.T) {
	recs := scanRecords(3)
	recs = append(recs, mkRecord("scanlike", 8*gb, 10, 0, 0, 0, 2, true))
	fp, err := FingerprintOf(recs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fp.FailRate-0.25) > 1e-9 {
		t.Errorf("FailRate = %v, want 0.25", fp.FailRate)
	}
}

func TestSimilarityOrdering(t *testing.T) {
	scanA, _ := FingerprintOf(scanRecords(5))
	scanB, _ := FingerprintOf(scanRecords(8)) // same profile, more runs
	iter, _ := FingerprintOf(iterRecords(5))

	same := Similarity(scanA, scanB)
	diff := Similarity(scanA, iter)
	if same <= diff {
		t.Errorf("similar pair %v <= dissimilar pair %v", same, diff)
	}
	if same < DefaultSimilarityThreshold {
		t.Errorf("same-profile similarity %v below threshold", same)
	}
	if diff >= DefaultSimilarityThreshold {
		t.Errorf("cross-profile similarity %v above threshold", diff)
	}
	if s := Similarity(scanA, scanA); math.Abs(s-1) > 1e-9 {
		t.Errorf("self similarity = %v", s)
	}
}

func TestSelectSource(t *testing.T) {
	scan, _ := FingerprintOf(scanRecords(5))
	scan2, _ := FingerprintOf(scanRecords(9))
	iter, _ := FingerprintOf(iterRecords(5))
	candidates := map[history.WorkloadKey]Fingerprint{
		{Tenant: "a", Workload: "scanlike"}: scan2,
		{Tenant: "b", Workload: "iterlike"}: iter,
	}
	sel := SelectSource(scan, candidates, 0)
	if !sel.Accepted || sel.Source.Workload != "scanlike" {
		t.Errorf("selection = %+v", sel)
	}
	// Only a dissimilar candidate: must be rejected.
	sel = SelectSource(scan, map[history.WorkloadKey]Fingerprint{
		{Tenant: "b", Workload: "iterlike"}: iter,
	}, 0)
	if sel.Accepted {
		t.Errorf("negative transfer not guarded: %+v", sel)
	}
}

func TestClusterWorkloads(t *testing.T) {
	scan1, _ := FingerprintOf(scanRecords(5))
	scan2, _ := FingerprintOf(scanRecords(7))
	iter1, _ := FingerprintOf(iterRecords(5))
	iter2, _ := FingerprintOf(iterRecords(6))
	fps := map[history.WorkloadKey]Fingerprint{
		{Tenant: "a", Workload: "s1"}: scan1,
		{Tenant: "b", Workload: "s2"}: scan2,
		{Tenant: "c", Workload: "i1"}: iter1,
		{Tenant: "d", Workload: "i2"}: iter2,
	}
	c, err := ClusterWorkloads(fps, 2, stat.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Medoids) != 2 {
		t.Fatalf("medoids = %v", c.Medoids)
	}
	a1 := c.Assignment[history.WorkloadKey{Tenant: "a", Workload: "s1"}]
	a2 := c.Assignment[history.WorkloadKey{Tenant: "b", Workload: "s2"}]
	a3 := c.Assignment[history.WorkloadKey{Tenant: "c", Workload: "i1"}]
	a4 := c.Assignment[history.WorkloadKey{Tenant: "d", Workload: "i2"}]
	if a1 != a2 || a3 != a4 || a1 == a3 {
		t.Errorf("clustering wrong: %v %v %v %v", a1, a2, a3, a4)
	}
}

func TestClusterWorkloadsEmpty(t *testing.T) {
	if _, err := ClusterWorkloads(nil, 2, stat.NewRNG(1)); !errors.Is(err, ErrNoRecords) {
		t.Errorf("err = %v", err)
	}
}

func TestWarmStartTrials(t *testing.T) {
	space, err := confspace.NewSpace(confspace.IntParam("spark.executor.cores", 1, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	recs := []history.Record{
		mkRecord("w", gb, 30, 0, 0, 0, 1, false),
		mkRecord("w", gb, 10, 0, 0, 0, 1, false),
		mkRecord("w", gb, 20, 0, 0, 0, 1, false),
		mkRecord("w", gb, 5, 0, 0, 0, 1, true), // failed: skipped
	}
	trials := WarmStartTrials(recs, space, 2)
	if len(trials) != 2 {
		t.Fatalf("trials = %d, want 2", len(trials))
	}
	if trials[0].Runtime != 10 || trials[1].Runtime != 20 {
		t.Errorf("trials not fastest-first: %v, %v", trials[0].Runtime, trials[1].Runtime)
	}
	if err := space.Validate(trials[0].Config); err != nil {
		t.Errorf("warm-start config invalid: %v", err)
	}
	if got := WarmStartTrials(nil, space, 0); len(got) != 0 {
		t.Errorf("empty history trials = %v", got)
	}
}
