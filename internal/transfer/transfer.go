// Package transfer implements cross-workload knowledge transfer, the
// challenge the paper develops in §V-B: characterize workloads from
// provider-observable execution metrics, measure similarity, cluster
// similar workloads (AROMA-style, via k-medoids), warm-start a new
// workload's tuning from a similar workload's history — and guard
// against negative transfer from dissimilar sources.
package transfer

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/history"
	"seamlesstune/internal/learn"
	"seamlesstune/internal/tuner"
)

// Fingerprint characterizes a workload purely from observed execution
// metrics — no knowledge of the program, exactly the provider's vantage
// point. All components are scale-normalized so fingerprints compare
// across input sizes.
type Fingerprint struct {
	// ShufflePerInput is shuffle bytes moved per input byte.
	ShufflePerInput float64
	// SpillPerInput is spill bytes per input byte (memory pressure).
	SpillPerInput float64
	// GCFrac is GC seconds per runtime second.
	GCFrac float64
	// SecondsPerGB is runtime per input GB (compute intensity).
	SecondsPerGB float64
	// StageDepth is the number of stages (iterativeness proxy).
	StageDepth float64
	// FailRate is the fraction of failed executions.
	FailRate float64
}

// ErrNoRecords is returned when a fingerprint is requested for an empty
// history.
var ErrNoRecords = errors.New("transfer: no records to fingerprint")

// FingerprintOf aggregates a workload's execution records into a
// fingerprint, averaging over successful runs.
func FingerprintOf(recs []history.Record) (Fingerprint, error) {
	if len(recs) == 0 {
		return Fingerprint{}, ErrNoRecords
	}
	var fp Fingerprint
	var ok int
	for _, r := range recs {
		if r.Failed {
			continue
		}
		ok++
		in := float64(r.InputBytes)
		if in <= 0 {
			in = 1
		}
		fp.ShufflePerInput += float64(r.Metrics.ShuffleReadBytes+r.Metrics.ShuffleWriteBytes) / in
		fp.SpillPerInput += float64(r.Metrics.SpillBytes) / in
		if r.RuntimeS > 0 {
			fp.GCFrac += r.Metrics.GCSeconds / r.RuntimeS
		}
		fp.SecondsPerGB += r.RuntimeS / (in / (1 << 30))
		fp.StageDepth += float64(r.Metrics.Stages)
	}
	if ok == 0 {
		return Fingerprint{}, ErrNoRecords
	}
	n := float64(ok)
	fp.ShufflePerInput /= n
	fp.SpillPerInput /= n
	fp.GCFrac /= n
	fp.SecondsPerGB /= n
	fp.StageDepth /= n
	fp.FailRate = 1 - n/float64(len(recs))
	return fp, nil
}

// WellConfigured filters records to the successful runs at or below the
// median runtime. Tuning histories are dominated by deliberately bad
// configurations (spilling, crashing); a workload's profile should be
// read from its reasonably-configured executions, or two histories of the
// same workload under different tuners would look dissimilar.
func WellConfigured(recs []history.Record) []history.Record {
	var ok []history.Record
	for _, r := range recs {
		if !r.Failed {
			ok = append(ok, r)
		}
	}
	if len(ok) <= 2 {
		return ok
	}
	times := make([]float64, len(ok))
	for i, r := range ok {
		times[i] = r.RuntimeS
	}
	sort.Float64s(times)
	median := times[len(times)/2]
	var out []history.Record
	for _, r := range ok {
		if r.RuntimeS <= median {
			out = append(out, r)
		}
	}
	return out
}

// Vector encodes the fingerprint for distance computations, compressing
// heavy-tailed components with log1p.
func (f Fingerprint) Vector() []float64 {
	return []float64{
		math.Log1p(f.ShufflePerInput * 4),
		// Spill depends on the configuration as much as on the workload;
		// weigh it lightly so two histories of the same workload under
		// different configurations still match.
		math.Log1p(f.SpillPerInput),
		f.GCFrac * 5,
		math.Log1p(f.SecondsPerGB) / 2,
		math.Log1p(f.StageDepth) / 2,
		f.FailRate,
	}
}

// Similarity maps two fingerprints to (0, 1]: 1 means identical profiles.
func Similarity(a, b Fingerprint) float64 {
	return math.Exp(-learn.Euclidean(a.Vector(), b.Vector()))
}

// DefaultSimilarityThreshold is the gate below which transfer is refused
// (negative-transfer guard). Calibrated so that the suite's map-heavy and
// iterative workloads land on opposite sides.
const DefaultSimilarityThreshold = 0.55

// Cluster groups workload fingerprints with k-medoids (AROMA's
// clustering). Keys orders the result deterministically.
type Cluster struct {
	Keys       []history.WorkloadKey
	Assignment map[history.WorkloadKey]int
	Medoids    []history.WorkloadKey
}

// ClusterWorkloads clusters the given fingerprints into k groups.
func ClusterWorkloads(fps map[history.WorkloadKey]Fingerprint, k int, rng *rand.Rand) (Cluster, error) {
	if len(fps) == 0 {
		return Cluster{}, ErrNoRecords
	}
	keys := make([]history.WorkloadKey, 0, len(fps))
	for key := range fps {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	points := make([][]float64, len(keys))
	for i, key := range keys {
		points[i] = fps[key].Vector()
	}
	res, err := learn.KMedoids(points, k, rng, 0)
	if err != nil {
		return Cluster{}, err
	}
	c := Cluster{Keys: keys, Assignment: make(map[history.WorkloadKey]int, len(keys))}
	for i, key := range keys {
		c.Assignment[key] = res.Assignment[i]
	}
	for _, m := range res.Medoids {
		c.Medoids = append(c.Medoids, keys[m])
	}
	return c, nil
}

// SourceSelection is the outcome of looking for a transfer source.
type SourceSelection struct {
	Source     history.WorkloadKey
	Similarity float64
	// Accepted is false when the best candidate fell below the threshold
	// (transferring anyway would risk negative transfer).
	Accepted bool
}

// SelectSource picks the most similar source workload for target among
// candidates, applying the negative-transfer threshold (0 uses the
// default).
func SelectSource(target Fingerprint, candidates map[history.WorkloadKey]Fingerprint, threshold float64) SourceSelection {
	if threshold <= 0 {
		threshold = DefaultSimilarityThreshold
	}
	keys := make([]history.WorkloadKey, 0, len(candidates))
	for key := range candidates {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	best := SourceSelection{Similarity: -1}
	for _, key := range keys {
		if s := Similarity(target, candidates[key]); s > best.Similarity {
			best = SourceSelection{Source: key, Similarity: s}
		}
	}
	best.Accepted = best.Similarity >= threshold
	return best
}

// WarmStartTrials converts a source workload's history into trials that
// seed a tuner's model (§V-B's "pre-trained template"): the fastest
// maxN successful records, re-expressed as penalty-free observations.
func WarmStartTrials(recs []history.Record, space *confspace.Space, maxN int) []tuner.Trial {
	if maxN <= 0 {
		maxN = 20
	}
	var ok []history.Record
	for _, r := range recs {
		if !r.Failed && r.Config != nil {
			ok = append(ok, r)
		}
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i].RuntimeS < ok[j].RuntimeS })
	if len(ok) > maxN {
		ok = ok[:maxN]
	}
	out := make([]tuner.Trial, 0, len(ok))
	for i, r := range ok {
		cfg := space.Clamp(r.Config)
		out = append(out, tuner.Trial{
			Index:       i,
			Config:      cfg,
			Measurement: tuner.Measurement{Runtime: r.RuntimeS, Cost: r.CostUSD},
			Objective:   r.RuntimeS,
		})
	}
	return out
}
