package transfer

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/history"
	"seamlesstune/internal/learn"
	"seamlesstune/internal/tuner"
)

// Aroma reproduces Lama & Zhou's two-phase approach (paper §II-B, §V-B):
// offline, historical workloads are clustered by resource profile
// (k-medoids) and a one-vs-rest SVM bank learns the cluster boundaries;
// online, a new workload's fingerprint is classified into a cluster and
// the cluster's accumulated tuning knowledge (its best configurations)
// is reused directly.
type Aroma struct {
	k       int
	keys    []history.WorkloadKey
	assign  map[history.WorkloadKey]int
	svms    []*learn.SVM
	perClus map[int][]tuner.Trial
}

// ErrAromaUntrainable is returned when the history bank cannot support
// training (too few workloads or clusters).
var ErrAromaUntrainable = errors.New("transfer: aroma needs at least k workloads with history")

// TrainAroma builds the clustering, the classifier bank, and each
// cluster's best-configuration pool. records maps each workload to its
// execution history; space clamps reused configurations; perCluster
// bounds the reuse pool (default 10).
func TrainAroma(records map[history.WorkloadKey][]history.Record, k int, space *confspace.Space, perCluster int, rng *rand.Rand) (*Aroma, error) {
	if k < 2 {
		k = 2
	}
	if perCluster <= 0 {
		perCluster = 10
	}
	fps := make(map[history.WorkloadKey]Fingerprint, len(records))
	for key, recs := range records {
		fp, err := FingerprintOf(WellConfigured(recs))
		if err != nil {
			continue
		}
		fps[key] = fp
	}
	if len(fps) < k {
		return nil, fmt.Errorf("%w: %d usable workloads, k=%d", ErrAromaUntrainable, len(fps), k)
	}
	clus, err := ClusterWorkloads(fps, k, rng)
	if err != nil {
		return nil, err
	}
	a := &Aroma{
		k:       k,
		keys:    clus.Keys,
		assign:  clus.Assignment,
		perClus: make(map[int][]tuner.Trial, k),
	}

	// One-vs-rest SVM per cluster over fingerprint vectors.
	xs := make([][]float64, len(clus.Keys))
	for i, key := range clus.Keys {
		xs[i] = fps[key].Vector()
	}
	for c := 0; c < k; c++ {
		ys := make([]float64, len(clus.Keys))
		for i, key := range clus.Keys {
			if clus.Assignment[key] == c {
				ys[i] = 1
			} else {
				ys[i] = -1
			}
		}
		svm, err := learn.FitSVM(learn.SVMConfig{Epochs: 120}, xs, ys, rng)
		if err != nil {
			return nil, err
		}
		a.svms = append(a.svms, svm)
	}

	// Per-cluster reuse pool: the fastest successful configurations of
	// the cluster's member workloads, scale-normalized for ranking.
	for c := 0; c < k; c++ {
		var pool []tuner.Trial
		for _, key := range clus.Keys {
			if clus.Assignment[key] != c {
				continue
			}
			pool = append(pool, WarmStartTrials(records[key], space, perCluster)...)
		}
		sort.Slice(pool, func(i, j int) bool { return pool[i].Runtime < pool[j].Runtime })
		if len(pool) > perCluster {
			pool = pool[:perCluster]
		}
		a.perClus[c] = pool
	}
	return a, nil
}

// Classify assigns a fingerprint to a cluster by the highest SVM score.
func (a *Aroma) Classify(fp Fingerprint) int {
	x := fp.Vector()
	best, bestScore := 0, math.Inf(-1)
	for c, svm := range a.svms {
		if s := svm.Score(x); s > bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// Clusters returns the number of clusters.
func (a *Aroma) Clusters() int { return a.k }

// Members returns the workloads assigned to a cluster.
func (a *Aroma) Members(c int) []history.WorkloadKey {
	var out []history.WorkloadKey
	for _, key := range a.keys {
		if a.assign[key] == c {
			out = append(out, key)
		}
	}
	return out
}

// ReusePool returns the cluster's best configurations as warm-start
// trials (copies), fastest first.
func (a *Aroma) ReusePool(c int) []tuner.Trial {
	pool := a.perClus[c]
	out := make([]tuner.Trial, len(pool))
	for i, tr := range pool {
		out[i] = tr
		out[i].Config = tr.Config.Clone()
	}
	return out
}

// Recommend classifies the fingerprint and returns the matched cluster's
// best configuration, with ok=false when the cluster pool is empty.
func (a *Aroma) Recommend(fp Fingerprint) (confspace.Config, int, bool) {
	c := a.Classify(fp)
	pool := a.perClus[c]
	if len(pool) == 0 {
		return nil, c, false
	}
	return pool[0].Config.Clone(), c, true
}
