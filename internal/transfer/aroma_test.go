package transfer

import (
	"errors"
	"testing"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/history"
	"seamlesstune/internal/stat"
)

// aromaBank builds a history bank of two scan-like and two iterative
// workloads with distinguishable configs.
func aromaBank() map[history.WorkloadKey][]history.Record {
	bank := map[history.WorkloadKey][]history.Record{}
	mk := func(tenant, wl string, recs []history.Record, cores float64) {
		for i := range recs {
			recs[i].Config = confspace.Config{"spark.executor.cores": cores}
		}
		bank[history.WorkloadKey{Tenant: tenant, Workload: wl}] = recs
	}
	mk("a", "scan1", scanRecords(8), 2)
	mk("b", "scan2", scanRecords(6), 3)
	mk("c", "iter1", iterRecords(8), 7)
	mk("d", "iter2", iterRecords(6), 8)
	return bank
}

func aromaSpace(t *testing.T) *confspace.Space {
	t.Helper()
	s, err := confspace.NewSpace(confspace.IntParam("spark.executor.cores", 1, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTrainAromaClassifiesNewWorkloads(t *testing.T) {
	a, err := TrainAroma(aromaBank(), 2, aromaSpace(t), 5, stat.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Clusters() != 2 {
		t.Fatalf("clusters = %d", a.Clusters())
	}
	// Members split along profile lines.
	m0, m1 := a.Members(0), a.Members(1)
	if len(m0)+len(m1) != 4 || len(m0) == 0 || len(m1) == 0 {
		t.Fatalf("member split = %d/%d", len(m0), len(m1))
	}

	// A fresh scan-like workload classifies with the scan cluster.
	scanFP, _ := FingerprintOf(scanRecords(4))
	iterFP, _ := FingerprintOf(iterRecords(4))
	cs, ci := a.Classify(scanFP), a.Classify(iterFP)
	if cs == ci {
		t.Fatalf("scan and iter classified together (cluster %d)", cs)
	}
	// The scan cluster contains the scan workloads.
	names := map[string]bool{}
	for _, k := range a.Members(cs) {
		names[k.Workload] = true
	}
	if !names["scan1"] || !names["scan2"] {
		t.Errorf("scan cluster members = %v", a.Members(cs))
	}
}

func TestAromaRecommendReusesClusterConfig(t *testing.T) {
	a, err := TrainAroma(aromaBank(), 2, aromaSpace(t), 5, stat.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	iterFP, _ := FingerprintOf(iterRecords(4))
	cfg, c, ok := a.Recommend(iterFP)
	if !ok {
		t.Fatalf("no recommendation for cluster %d", c)
	}
	// Iterative workloads in the bank ran with 7-8 cores.
	if got := cfg.Int("spark.executor.cores"); got < 7 {
		t.Errorf("recommended cores = %d, want the iter cluster's 7-8", got)
	}
	// Pool is fastest-first and copies are independent.
	pool := a.ReusePool(c)
	if len(pool) == 0 {
		t.Fatal("empty reuse pool")
	}
	for i := 1; i < len(pool); i++ {
		if pool[i].Runtime < pool[i-1].Runtime {
			t.Fatal("reuse pool not sorted")
		}
	}
	pool[0].Config["spark.executor.cores"] = 99
	again := a.ReusePool(c)
	if again[0].Config.Int("spark.executor.cores") == 99 {
		t.Error("ReusePool aliases internal state")
	}
}

func TestTrainAromaErrors(t *testing.T) {
	space := aromaSpace(t)
	if _, err := TrainAroma(nil, 2, space, 0, stat.NewRNG(1)); !errors.Is(err, ErrAromaUntrainable) {
		t.Errorf("err = %v", err)
	}
	// One workload cannot form two clusters.
	bank := map[history.WorkloadKey][]history.Record{
		{Tenant: "a", Workload: "w"}: scanRecords(5),
	}
	if _, err := TrainAroma(bank, 2, space, 0, stat.NewRNG(1)); !errors.Is(err, ErrAromaUntrainable) {
		t.Errorf("err = %v", err)
	}
}
