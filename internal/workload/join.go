package workload

import (
	"fmt"

	"seamlesstune/internal/spark"
)

// Join is a SQL-style star join: scan a fact table and a dimension table
// (two independent stages the driver runs concurrently), join them, then
// aggregate. Like Spark SQL's planner, the physical plan depends on the
// dimension size: small dimensions are broadcast to every executor
// (map-side hash join, no fact shuffle); large ones force a sort-merge
// join that shuffles both sides. The plan flip moves the workload's
// bottleneck — and therefore its tuned configuration — as data grows.
type Join struct {
	// DimFraction is the dimension table's share of the input
	// (default 0.15).
	DimFraction float64
	// BroadcastLimitMB is the planner's broadcast-join threshold
	// (default 512, scaled-up analogue of spark.sql.autoBroadcastJoinThreshold).
	BroadcastLimitMB float64
}

var _ Workload = Join{}

// Name implements Workload.
func (Join) Name() string { return "join" }

// Job implements Workload.
func (j Join) Job(sizeBytes int64) *spark.Job {
	dimFrac := j.DimFraction
	if dimFrac <= 0 || dimFrac >= 1 {
		dimFrac = 0.15
	}
	limitMB := j.BroadcastLimitMB
	if limitMB <= 0 {
		limitMB = 512
	}
	factBytes := int64(float64(sizeBytes) * (1 - dimFrac))
	dimBytes := sizeBytes - factBytes
	factRows := factBytes / 120
	dimRows := dimBytes / 80
	dimMB := float64(dimBytes) / (1 << 20)
	broadcastPlan := dimMB <= limitMB

	stages := []spark.Stage{
		{
			ID: 0, Name: "scan-fact", Partitions: spark.FromInputSplits,
			InputBytes: factBytes, Records: factRows,
			ComputePerRecord: 1.0e-6, MemPerRecordBytes: 24,
			ReadsCachedFrom: -1, MaxRecordMB: 1,
		},
		{
			ID: 1, Name: "scan-dim", Partitions: spark.FromInputSplits,
			InputBytes: dimBytes, Records: dimRows,
			ComputePerRecord: 1.0e-6, MemPerRecordBytes: 24,
			ReadsCachedFrom: -1, MaxRecordMB: 1,
		},
	}
	if broadcastPlan {
		// Broadcast hash join: the dimension ships to every executor;
		// the fact side streams through without a shuffle. Executors must
		// hold the hash table — a per-task memory floor.
		stages[0].ShuffleWriteBytes = factBytes / 4 // pre-aggregated pairs
		stages = append(stages, spark.Stage{
			ID: 2, Name: "broadcast-hash-join", Deps: []int{0, 1},
			Partitions: spark.FromShufflePartitions,
			Records:    factRows,
			// Probe the broadcast hash table per fact row.
			ComputePerRecord: 1.4e-6, MemPerRecordBytes: 40,
			BroadcastMB:     dimMB * 1.4, // deserialized hash table
			HardMemMB:       dimMB * 1.4 / 8,
			ReadsCachedFrom: -1, MaxRecordMB: 2,
			SkewAlpha: 2.2,
		})
	} else {
		// Sort-merge join: both sides shuffle on the join key.
		stages[0].ShuffleWriteBytes = factBytes
		stages[1].ShuffleWriteBytes = dimBytes
		stages = append(stages, spark.Stage{
			ID: 2, Name: "sort-merge-join", Deps: []int{0, 1},
			Partitions: spark.FromShufflePartitions,
			Records:    factRows + dimRows,
			// Sort both sides and merge.
			ComputePerRecord: 2.2e-6, MemPerRecordBytes: 170,
			ReadsCachedFrom: -1, MaxRecordMB: 2,
			SkewAlpha: 1.8, // join-key skew
		})
	}
	stages = append(stages, spark.Stage{
		ID: 3, Name: "aggregate", Deps: []int{2}, Partitions: spark.FromShufflePartitions,
		Records:          factRows / 50,
		ComputePerRecord: 1.2e-6, MemPerRecordBytes: 96,
		ReadsCachedFrom: -1, MaxRecordMB: 1,
		CollectMB: 6,
	})
	// The join stage produced shuffle output consumed by the aggregate.
	stages[2].ShuffleWriteBytes = factBytes / 10

	return &spark.Job{
		Name:         fmt.Sprintf("join-%dMB", sizeBytes>>20),
		Workload:     "join",
		InputBytes:   sizeBytes,
		DriverNeedMB: 280,
		Stages:       stages,
	}
}
