package workload

import (
	"testing"
)

func TestJoinPlanSwitchesWithSize(t *testing.T) {
	// Small input: the dimension fits under the broadcast limit.
	small := Join{}.Job(2 * gb)
	if got := small.Stages[2].Name; got != "broadcast-hash-join" {
		t.Errorf("2GB plan = %q, want broadcast-hash-join", got)
	}
	if small.Stages[2].BroadcastMB <= 0 {
		t.Error("broadcast plan has no broadcast volume")
	}
	if small.Stages[1].ShuffleWriteBytes != 0 {
		t.Error("broadcast plan should not shuffle the dimension")
	}

	// Large input: the planner falls back to sort-merge.
	big := Join{}.Job(16 * gb)
	if got := big.Stages[2].Name; got != "sort-merge-join" {
		t.Errorf("16GB plan = %q, want sort-merge-join", got)
	}
	if big.Stages[1].ShuffleWriteBytes == 0 {
		t.Error("sort-merge plan must shuffle the dimension side")
	}
}

func TestJoinBranchesAreIndependent(t *testing.T) {
	job := Join{}.Job(4 * gb)
	if len(job.Stages[0].Deps) != 0 || len(job.Stages[1].Deps) != 0 {
		t.Error("scan stages should have no dependencies (parallel branches)")
	}
	if len(job.Stages[2].Deps) != 2 {
		t.Errorf("join deps = %v, want both scans", job.Stages[2].Deps)
	}
}

func TestJoinDefaults(t *testing.T) {
	j := Join{DimFraction: -1, BroadcastLimitMB: -1}
	job := j.Job(gb)
	if err := job.Validate(); err != nil {
		t.Fatal(err)
	}
	// Custom threshold flips the plan.
	forced := Join{BroadcastLimitMB: 1}.Job(2 * gb)
	if got := forced.Stages[2].Name; got != "sort-merge-join" {
		t.Errorf("tiny limit plan = %q, want sort-merge-join", got)
	}
}

func TestJoinRunsAndScales(t *testing.T) {
	res := runOn(t, Join{}, 8*gb, 5)
	if res.RuntimeS <= 0 {
		t.Fatalf("runtime = %v", res.RuntimeS)
	}
}
