package workload

import (
	"errors"
	"testing"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/spark"
	"seamlesstune/internal/stat"
)

const gb = int64(1) << 30

func TestAllJobsValidate(t *testing.T) {
	for _, w := range All() {
		for _, size := range []int64{gb, 8 * gb, 32 * gb} {
			job := w.Job(size)
			if err := job.Validate(); err != nil {
				t.Errorf("%s at %d: %v", w.Name(), size, err)
			}
			if job.Workload != w.Name() {
				t.Errorf("%s: job.Workload = %q", w.Name(), job.Workload)
			}
			if job.InputBytes != size {
				t.Errorf("%s: InputBytes = %d, want %d", w.Name(), job.InputBytes, size)
			}
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("pagerank")
	if err != nil || w.Name() != "pagerank" {
		t.Errorf("ByName(pagerank) = %v, %v", w, err)
	}
	if _, err := ByName("nope"); !errors.Is(err, ErrUnknownWorkload) {
		t.Errorf("ByName(nope) err = %v", err)
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("Names = %v, want 6 workloads", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatal("Names not sorted")
		}
	}
}

func TestStats(t *testing.T) {
	ts := NewTextStats(1000 * 100)
	if ts.Lines != 1000 || ts.Words != 15000 {
		t.Errorf("TextStats = %+v", ts)
	}
	if ts.Vocab <= 0 || ts.Vocab >= ts.Words {
		t.Errorf("vocab %d out of plausible range", ts.Vocab)
	}
	gs := NewGraphStats(4000)
	if gs.Edges != 100 || gs.Vertices != 10 {
		t.Errorf("GraphStats = %+v", gs)
	}
	ps := NewPointStats(10000)
	if ps.Points != 100 || ps.Dim != 20 {
		t.Errorf("PointStats = %+v", ps)
	}
	// Negative sizes are treated as empty.
	if NewTextStats(-5).Lines != 0 || NewGraphStats(-5).Edges != 0 || NewPointStats(-5).Points != 0 {
		t.Error("negative sizes should clamp to zero")
	}
}

func TestVocabSublinear(t *testing.T) {
	small := NewTextStats(gb).Vocab
	big := NewTextStats(16 * gb).Vocab
	if big <= small {
		t.Fatal("vocabulary should grow with corpus")
	}
	if big >= small*16 {
		t.Errorf("vocabulary grew linearly (%d -> %d); Heaps' law is sublinear", small, big)
	}
}

func TestPageRankStructure(t *testing.T) {
	job := PageRank{Iterations: 5}.Job(8 * gb)
	// parse + build + 5 iterations + collect.
	if len(job.Stages) != 8 {
		t.Fatalf("stages = %d, want 8", len(job.Stages))
	}
	if !job.Stages[1].CacheOutput {
		t.Error("adjacency stage should cache")
	}
	for i := 2; i < 7; i++ {
		if job.Stages[i].ReadsCachedFrom != 1 {
			t.Errorf("iteration stage %d does not read the cached graph", i)
		}
	}
	// Default iteration count.
	if got := len(PageRank{}.Job(gb).Stages); got != 11 {
		t.Errorf("default PageRank stages = %d, want 11 (8 iters)", got)
	}
}

func TestKMeansDefaultsAndOverrides(t *testing.T) {
	if got := len(KMeans{}.Job(gb).Stages); got != 7 {
		t.Errorf("default KMeans stages = %d, want 7", got)
	}
	if got := len(KMeans{Iterations: 2, K: 8}.Job(gb).Stages); got != 3 {
		t.Errorf("KMeans 2 iters stages = %d, want 3", got)
	}
}

// runOn executes a workload with a sensible config on the Table-I cluster.
func runOn(t *testing.T, w Workload, size int64, seed int64) spark.Result {
	t.Helper()
	it, err := cloud.DefaultCatalog().Lookup("nimbus/h1.4xlarge")
	if err != nil {
		t.Fatal(err)
	}
	cluster := cloud.ClusterSpec{Instance: it, Count: 4}
	conf := spark.DefaultConf()
	conf.ExecutorInstances = 8
	conf.ExecutorCores = 8
	conf.ExecutorMemoryMB = 24576
	conf.DriverMemoryMB = 8192
	conf.DefaultParallelism = 128
	conf.ShufflePartitions = 128
	res := spark.Run(w.Job(size), conf, cluster, cloud.Unit(), stat.NewRNG(seed))
	if res.Failed {
		t.Fatalf("%s failed: %s", w.Name(), res.Reason)
	}
	return res
}

func TestWorkloadsRunOnTableICluster(t *testing.T) {
	for _, w := range All() {
		res := runOn(t, w, 8*gb, 42)
		if res.RuntimeS < 10 || res.RuntimeS > 3600 {
			t.Errorf("%s: runtime %.1fs outside plausible range", w.Name(), res.RuntimeS)
		}
	}
}

func TestWorkloadProfilesDiffer(t *testing.T) {
	// Sort moves (shuffles) far more data than Wordcount per input byte.
	sortRes := runOn(t, Sort{}, 8*gb, 1)
	wcRes := runOn(t, Wordcount{}, 8*gb, 1)
	if sortRes.TotalShuffleWrite <= wcRes.TotalShuffleWrite*4 {
		t.Errorf("sort shuffle %d not clearly above wordcount %d",
			sortRes.TotalShuffleWrite, wcRes.TotalShuffleWrite)
	}
}

func TestScalingIsMonotone(t *testing.T) {
	for _, w := range All() {
		small := runOn(t, w, 4*gb, 3).RuntimeS
		big := runOn(t, w, 16*gb, 3).RuntimeS
		if big <= small {
			t.Errorf("%s: 4x input did not increase runtime (%.1f -> %.1f)", w.Name(), small, big)
		}
	}
}
