// Package workload implements the HiBench-like workload suite used in the
// paper's experiments (§IV-B used PageRank, Bayes and Wordcount; the
// prototype tested 5 workload types). Each workload deterministically
// compiles an input size into a spark.Job physical plan whose stage
// volumes follow the statistics of a synthetic dataset: Zipf-distributed
// text for Wordcount and Bayes (Heaps-law vocabulary growth), a power-law
// web graph for PageRank, uniform keyed records for Sort, and labelled
// feature vectors for K-means.
//
// The profiles are chosen so that the workloads differ in what Table I
// measures: Wordcount is a streaming map-heavy scan whose optimum barely
// moves with input size, Bayes is mixed, and PageRank is iterative and
// cache-bound, with a memory cliff that moves the optimum sharply as the
// graph grows.
package workload

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"seamlesstune/internal/spark"
)

// Workload builds physical plans for one workload type at any input size.
type Workload interface {
	// Name identifies the workload (lowercase, e.g. "pagerank").
	Name() string
	// Job compiles the workload over sizeBytes of input into a plan.
	Job(sizeBytes int64) *spark.Job
}

// ErrUnknownWorkload is returned by ByName for unregistered names.
var ErrUnknownWorkload = errors.New("workload: unknown workload")

// ByName resolves a workload by its name.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name() == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownWorkload, name)
}

// All returns the workload suite in a stable order: the five HiBench-like
// workloads plus the SQL join.
func All() []Workload {
	return []Workload{Wordcount{}, Sort{}, PageRank{}, Bayes{}, KMeans{}, Join{}}
}

// Names returns the workload names in the same order as All.
func Names() []string {
	var out []string
	for _, w := range All() {
		out = append(out, w.Name())
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Synthetic dataset statistics

// TextStats describes a synthetic Zipf-distributed text corpus.
type TextStats struct {
	Bytes int64
	Lines int64
	Words int64
	Vocab int64 // distinct words (Heaps' law)
}

// NewTextStats derives corpus statistics from a byte size: ~100-byte
// lines of ~15 words, vocabulary V = 30·W^0.5 (Heaps' law).
func NewTextStats(bytes int64) TextStats {
	if bytes < 0 {
		bytes = 0
	}
	lines := bytes / 100
	words := lines * 15
	vocab := int64(30 * math.Sqrt(float64(words)))
	return TextStats{Bytes: bytes, Lines: lines, Words: words, Vocab: vocab}
}

// GraphStats describes a synthetic power-law web graph stored as an edge
// list (~40 bytes per edge, average out-degree 10).
type GraphStats struct {
	Bytes    int64
	Edges    int64
	Vertices int64
}

// NewGraphStats derives graph statistics from a byte size.
func NewGraphStats(bytes int64) GraphStats {
	if bytes < 0 {
		bytes = 0
	}
	edges := bytes / 40
	return GraphStats{Bytes: bytes, Edges: edges, Vertices: edges / 10}
}

// PointStats describes a synthetic labelled-vector dataset (~100 bytes
// per point, 20 dimensions).
type PointStats struct {
	Bytes  int64
	Points int64
	Dim    int
}

// NewPointStats derives vector-dataset statistics from a byte size.
func NewPointStats(bytes int64) PointStats {
	if bytes < 0 {
		bytes = 0
	}
	return PointStats{Bytes: bytes, Points: bytes / 100, Dim: 20}
}

// ---------------------------------------------------------------------------
// Wordcount

// Wordcount is the classic streaming aggregation: tokenize, combine
// per-partition, reduce by key. Map-heavy, tiny shuffle, no caching — its
// tuned configuration is stable across input sizes (Table I: 0%/3%).
type Wordcount struct{}

// Name implements Workload.
func (Wordcount) Name() string { return "wordcount" }

// Job implements Workload.
func (Wordcount) Job(sizeBytes int64) *spark.Job {
	ts := NewTextStats(sizeBytes)
	// Map-side combine leaves one record per distinct word per partition;
	// the shuffle is a small fraction of the input.
	shuffleBytes := ts.Vocab * 24 * 16 // vocab × record size × typical partitions factor
	if shuffleBytes > sizeBytes/20 {
		shuffleBytes = sizeBytes / 20
	}
	return &spark.Job{
		Name:         fmt.Sprintf("wordcount-%dMB", sizeBytes>>20),
		Workload:     "wordcount",
		InputBytes:   sizeBytes,
		DriverNeedMB: 220,
		Stages: []spark.Stage{
			{
				ID: 0, Name: "tokenize+combine", Partitions: spark.FromInputSplits,
				InputBytes: sizeBytes, Records: ts.Lines,
				ComputePerRecord:  7e-6, // hash 15 words per line
				MemPerRecordBytes: 18,   // per-partition combiner map stays small
				ShuffleWriteBytes: shuffleBytes,
				ReadsCachedFrom:   -1, MaxRecordMB: 0.5,
			},
			{
				ID: 1, Name: "reduceByKey", Deps: []int{0}, Partitions: spark.FromParallelism,
				Records:          ts.Vocab,
				ComputePerRecord: 1.5e-6, MemPerRecordBytes: 48,
				ReadsCachedFrom: -1, MaxRecordMB: 0.5,
				CollectMB: 2,
			},
		},
	}
}

// ---------------------------------------------------------------------------
// Sort

// Sort is a TeraSort-style full-data shuffle: range-partition, sort within
// partitions. Shuffle- and spill-bound.
type Sort struct{}

// Name implements Workload.
func (Sort) Name() string { return "sort" }

// Job implements Workload.
func (Sort) Job(sizeBytes int64) *spark.Job {
	records := sizeBytes / 100
	return &spark.Job{
		Name:         fmt.Sprintf("sort-%dMB", sizeBytes>>20),
		Workload:     "sort",
		InputBytes:   sizeBytes,
		DriverNeedMB: 256,
		Stages: []spark.Stage{
			{
				ID: 0, Name: "range-partition", Partitions: spark.FromInputSplits,
				InputBytes: sizeBytes, Records: records,
				ComputePerRecord:  1.2e-6,
				MemPerRecordBytes: 40,
				ShuffleWriteBytes: sizeBytes, // the whole dataset moves
				ReadsCachedFrom:   -1, MaxRecordMB: 1,
			},
			{
				ID: 1, Name: "sort-within", Deps: []int{0}, Partitions: spark.FromParallelism,
				Records:          records,
				ComputePerRecord: 2.5e-6,
				// Sorting holds the partition in memory: spill cliff.
				MemPerRecordBytes: 140,
				ReadsCachedFrom:   -1, MaxRecordMB: 1,
				SkewAlpha: 2.5, // mild key skew
			},
		},
	}
}

// ---------------------------------------------------------------------------
// PageRank

// PageRank is the iterative graph workload of Table I: parse the edge
// list, cache the adjacency lists, then run rank-contribution shuffles per
// iteration, each re-reading the cached graph. Growing graphs outrun
// storage memory — re-tuning pays the most here (8%/56% in Table I).
type PageRank struct {
	// Iterations overrides the default of 8 when positive.
	Iterations int
}

// Name implements Workload.
func (PageRank) Name() string { return "pagerank" }

// Job implements Workload.
func (p PageRank) Job(sizeBytes int64) *spark.Job {
	iters := p.Iterations
	if iters <= 0 {
		iters = 8
	}
	gs := NewGraphStats(sizeBytes)
	// Deserialized adjacency lists inflate over the on-disk edge list.
	cacheBytes := int64(float64(sizeBytes) * 1.6)
	contribBytes := gs.Edges * 14 // (dst, contribution) pairs per iteration

	stages := []spark.Stage{
		{
			ID: 0, Name: "parse-edges", Partitions: spark.FromInputSplits,
			InputBytes: sizeBytes, Records: gs.Edges,
			ComputePerRecord:  0.9e-6,
			MemPerRecordBytes: 28,
			ShuffleWriteBytes: int64(float64(sizeBytes) * 1.1), // groupBy(src)
			ReadsCachedFrom:   -1, MaxRecordMB: 2,
		},
		{
			ID: 1, Name: "build-adjacency", Deps: []int{0}, Partitions: spark.FromParallelism,
			Records:          gs.Vertices,
			ComputePerRecord: 3e-6, MemPerRecordBytes: 420, // adjacency construction
			CacheOutput: true, CacheBytes: cacheBytes,
			ReadsCachedFrom: -1, MaxRecordMB: 4,
			SkewAlpha: 1.4, // power-law degree distribution
		},
	}
	for i := 0; i < iters; i++ {
		id := 2 + i
		stages = append(stages, spark.Stage{
			ID: id, Name: fmt.Sprintf("iteration-%d", i+1), Deps: []int{id - 1},
			Partitions: spark.FromParallelism,
			Records:    gs.Edges,
			// Join contributions against the cached adjacency.
			ComputePerRecord: 1.1e-6, MemPerRecordBytes: 34,
			ShuffleWriteBytes: contribBytes,
			ReadsCachedFrom:   1,
			// A cache miss replays parse+group for the partition.
			RecomputePerRecord: 5.5e-6,
			MaxRecordMB:        2,
			SkewAlpha:          1.4,
		})
	}
	last := len(stages)
	stages = append(stages, spark.Stage{
		ID: last, Name: "top-ranks", Deps: []int{last - 1}, Partitions: spark.FromParallelism,
		Records:          gs.Vertices,
		ComputePerRecord: 0.8e-6, MemPerRecordBytes: 24,
		ReadsCachedFrom: -1, MaxRecordMB: 1,
		CollectMB: 4,
	})
	return &spark.Job{
		Name:         fmt.Sprintf("pagerank-%dMB", sizeBytes>>20),
		Workload:     "pagerank",
		InputBytes:   sizeBytes,
		DriverNeedMB: 300,
		Stages:       stages,
	}
}

// ---------------------------------------------------------------------------
// Bayes

// Bayes trains a naive-Bayes text classifier: tokenize and weigh terms,
// aggregate term/class statistics, cache the TF vectors for the second
// (IDF) pass, and collect the model at the driver. Mixed CPU/shuffle/
// memory profile — moderate re-tuning gains (17%/25% in Table I).
type Bayes struct{}

// Name implements Workload.
func (Bayes) Name() string { return "bayes" }

// Job implements Workload.
func (Bayes) Job(sizeBytes int64) *spark.Job {
	ts := NewTextStats(sizeBytes)
	docs := sizeBytes / 500
	modelMB := math.Min(220, float64(ts.Vocab)*40/(1<<20)+20)
	tfBytes := int64(float64(sizeBytes) * 1.4) // TF vectors (deserialized), cached
	return &spark.Job{
		Name:         fmt.Sprintf("bayes-%dMB", sizeBytes>>20),
		Workload:     "bayes",
		InputBytes:   sizeBytes,
		DriverNeedMB: 280 + modelMB,
		Stages: []spark.Stage{
			{
				ID: 0, Name: "tokenize-tf", Partitions: spark.FromInputSplits,
				InputBytes: sizeBytes, Records: docs,
				ComputePerRecord:  35e-6, // tokenization + hashing TF is CPU-heavy
				MemPerRecordBytes: 900,
				ShuffleWriteBytes: int64(float64(sizeBytes) * 0.30),
				CacheOutput:       true, CacheBytes: tfBytes,
				ReadsCachedFrom: -1, MaxRecordMB: 4,
			},
			{
				ID: 1, Name: "term-class-agg", Deps: []int{0}, Partitions: spark.FromShufflePartitions,
				Records:          ts.Vocab * 20, // vocab × classes
				ComputePerRecord: 2e-6, MemPerRecordBytes: 160,
				ShuffleWriteBytes: int64(float64(sizeBytes) * 0.02),
				ReadsCachedFrom:   -1, MaxRecordMB: 2,
				SkewAlpha: 2.0,
			},
			{
				ID: 2, Name: "idf-pass", Deps: []int{1}, Partitions: spark.FromParallelism,
				Records:          docs,
				ComputePerRecord: 9e-6, MemPerRecordBytes: 380,
				ReadsCachedFrom: 0, RecomputePerRecord: 60e-6,
				BroadcastMB: modelMB * 0.4,
				MaxRecordMB: 4,
			},
			{
				ID: 3, Name: "model-collect", Deps: []int{2}, Partitions: spark.FromParallelism,
				Records:          ts.Vocab,
				ComputePerRecord: 1.5e-6, MemPerRecordBytes: 64,
				ReadsCachedFrom: -1, MaxRecordMB: 2,
				CollectMB: modelMB,
			},
		},
	}
}

// ---------------------------------------------------------------------------
// KMeans

// KMeans clusters feature vectors: parse and cache the points, then
// broadcast centroids and compute assignments each iteration. CPU- and
// cache-bound with negligible shuffle.
type KMeans struct {
	// Iterations overrides the default of 6 when positive.
	Iterations int
	// K overrides the default of 32 centroids when positive.
	K int
}

// Name implements Workload.
func (KMeans) Name() string { return "kmeans" }

// Job implements Workload.
func (k KMeans) Job(sizeBytes int64) *spark.Job {
	iters := k.Iterations
	if iters <= 0 {
		iters = 6
	}
	cents := k.K
	if cents <= 0 {
		cents = 32
	}
	ps := NewPointStats(sizeBytes)
	centroidMB := float64(cents*ps.Dim*8) / (1 << 20)
	cacheBytes := int64(float64(sizeBytes) * 1.3)

	stages := []spark.Stage{{
		ID: 0, Name: "parse-points", Partitions: spark.FromInputSplits,
		InputBytes: sizeBytes, Records: ps.Points,
		ComputePerRecord:  2.5e-6,
		MemPerRecordBytes: 130,
		CacheOutput:       true, CacheBytes: cacheBytes,
		ReadsCachedFrom: -1, MaxRecordMB: 1,
	}}
	for i := 0; i < iters; i++ {
		id := 1 + i
		stages = append(stages, spark.Stage{
			ID: id, Name: fmt.Sprintf("assign-%d", i+1), Deps: []int{id - 1},
			Partitions: spark.FromParallelism,
			Records:    ps.Points,
			// Distance to every centroid: K × dim multiply-adds.
			ComputePerRecord:  float64(cents) * float64(ps.Dim) * 6e-9,
			MemPerRecordBytes: 40,
			ShuffleWriteBytes: int64(float64(cents*ps.Dim) * 8 * 64), // partial sums
			ReadsCachedFrom:   0, RecomputePerRecord: 3.5e-6,
			BroadcastMB: math.Max(centroidMB, 0.5),
			MaxRecordMB: 1,
		})
	}
	return &spark.Job{
		Name:         fmt.Sprintf("kmeans-%dMB", sizeBytes>>20),
		Workload:     "kmeans",
		InputBytes:   sizeBytes,
		DriverNeedMB: 260,
		Stages:       stages,
	}
}
