package history

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/spark"
)

func rec(tenant, wl string, runtime float64, failed bool) Record {
	return Record{
		Tenant: tenant, Workload: wl, RuntimeS: runtime, Failed: failed,
		Config: confspace.Config{"a": 1},
	}
}

func TestAppendAssignsSeq(t *testing.T) {
	var s Store
	a := s.Append(rec("t1", "wc", 10, false))
	b := s.Append(rec("t1", "wc", 20, false))
	if a.Seq != 0 || b.Seq != 1 {
		t.Errorf("seqs = %d, %d", a.Seq, b.Seq)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestQueryFilters(t *testing.T) {
	var s Store
	s.Append(rec("t1", "wc", 10, false))
	s.Append(rec("t1", "pr", 20, false))
	s.Append(rec("t2", "wc", 30, true))
	s.Append(rec("t2", "wc", 40, false))

	if got := len(s.Query(Filter{})); got != 4 {
		t.Errorf("all = %d", got)
	}
	if got := len(s.Query(Filter{Tenant: "t1"})); got != 2 {
		t.Errorf("t1 = %d", got)
	}
	if got := len(s.Query(Filter{Workload: "wc"})); got != 3 {
		t.Errorf("wc = %d", got)
	}
	if got := len(s.Query(Filter{Workload: "wc", SucceededOnly: true})); got != 2 {
		t.Errorf("wc ok = %d", got)
	}
	if got := s.Query(Filter{MaxN: 2}); len(got) != 2 || got[0].RuntimeS != 30 {
		t.Errorf("MaxN window wrong: %+v", got)
	}
}

func TestQueryCopiesConfigs(t *testing.T) {
	var s Store
	s.Append(rec("t1", "wc", 10, false))
	out := s.Query(Filter{})
	out[0].Config["a"] = 99
	again := s.Query(Filter{})
	if again[0].Config["a"] != 1 {
		t.Error("Query aliases stored config")
	}
}

func TestBest(t *testing.T) {
	var s Store
	if _, ok := s.Best(Filter{}); ok {
		t.Error("Best on empty store")
	}
	s.Append(rec("t1", "wc", 30, false))
	s.Append(rec("t1", "wc", 10, true)) // failed: excluded
	s.Append(rec("t1", "wc", 20, false))
	best, ok := s.Best(Filter{Workload: "wc"})
	if !ok || best.RuntimeS != 20 {
		t.Errorf("Best = %+v, %v", best, ok)
	}
}

func TestWorkloads(t *testing.T) {
	var s Store
	s.Append(rec("t1", "wc", 1, false))
	s.Append(rec("t1", "wc", 2, false))
	s.Append(rec("t2", "pr", 3, false))
	keys := s.Workloads()
	if len(keys) != 2 {
		t.Fatalf("keys = %v", keys)
	}
	if keys[0].String() != "t1/wc" {
		t.Errorf("key string = %q", keys[0].String())
	}
}

func TestRoundTripJSON(t *testing.T) {
	var s Store
	s.Append(rec("t1", "wc", 10, false))
	s.Append(rec("t2", "pr", 20, true))
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var s2 Store
	if err := s2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("restored Len = %d", s2.Len())
	}
	// Sequence continues after the restored max.
	r := s2.Append(rec("t3", "x", 1, false))
	if r.Seq != 2 {
		t.Errorf("continued seq = %d, want 2", r.Seq)
	}
}

func TestReadFromBad(t *testing.T) {
	var s Store
	if err := s.Load(strings.NewReader("{nope")); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("err = %v", err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.json")
	var s Store
	s.Append(rec("t1", "wc", 10, false))
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	var s2 Store
	if err := s2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Errorf("loaded Len = %d", s2.Len())
	}
	if err := s2.LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file load succeeded")
	}
}

func TestConcurrentAppendQuery(t *testing.T) {
	var s Store
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Append(rec("t", "w", float64(j), false))
				s.Query(Filter{Workload: "w", MaxN: 5})
			}
		}()
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Errorf("Len = %d, want 800", s.Len())
	}
	// All seqs distinct.
	seen := make(map[int]bool)
	for _, r := range s.Query(Filter{}) {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
}

func TestConcurrentDistinctTenants(t *testing.T) {
	// Distinct tenants land on distinct shards (almost always) and must
	// proceed without corrupting each other's histories or the global
	// sequence order.
	var s Store
	var wg sync.WaitGroup
	const tenants, perTenant = 10, 50
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := string(rune('a' + i))
			for j := 0; j < perTenant; j++ {
				s.Append(rec(tenant, "wc", float64(j), false))
				s.Query(Filter{Tenant: tenant, Workload: "wc"})
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != tenants*perTenant {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := 0; i < tenants; i++ {
		tenant := string(rune('a' + i))
		recs := s.Query(Filter{Tenant: tenant, Workload: "wc"})
		if len(recs) != perTenant {
			t.Fatalf("tenant %s has %d records", tenant, len(recs))
		}
		// Per-tenant insertion order survives sharding.
		for j, r := range recs {
			if r.RuntimeS != float64(j) {
				t.Fatalf("tenant %s record %d out of order: %+v", tenant, j, r)
			}
		}
	}
	// The global view is ordered by sequence number.
	all := s.Query(Filter{})
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq {
			t.Fatalf("global order broken at %d: %d after %d", i, all[i].Seq, all[i-1].Seq)
		}
	}
}

func TestWorkloadsFirstAppearanceOrder(t *testing.T) {
	var s Store
	// Keys chosen to land on several different shards.
	for i := 0; i < 8; i++ {
		s.Append(rec(string(rune('z'-i)), "w", 1, false))
	}
	keys := s.Workloads()
	if len(keys) != 8 {
		t.Fatalf("keys = %v", keys)
	}
	for i, k := range keys {
		if k.Tenant != string(rune('z'-i)) {
			t.Fatalf("key %d = %v, want first-appearance order", i, keys)
		}
	}
}

func TestMetricsFromResult(t *testing.T) {
	res := spark.Result{
		TotalShuffleRead:  1,
		TotalShuffleWrite: 2,
		TotalSpillBytes:   3,
		TotalGCSeconds:    4,
		Executors:         5,
		Stages:            []spark.StageMetrics{{}, {}},
	}
	m := MetricsFromResult(res)
	if m.ShuffleReadBytes != 1 || m.ShuffleWriteBytes != 2 || m.SpillBytes != 3 ||
		m.GCSeconds != 4 || m.Executors != 5 || m.Stages != 2 {
		t.Errorf("metrics = %+v", m)
	}
}

// Property: Save/Load round-trips arbitrary records exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(tenants []uint8, runtimes []float64) bool {
		var s Store
		n := len(tenants)
		if len(runtimes) < n {
			n = len(runtimes)
		}
		for i := 0; i < n; i++ {
			rt := runtimes[i]
			if rt != rt || rt > 1e300 || rt < -1e300 { // NaN/Inf don't survive JSON
				rt = 1
			}
			s.Append(Record{
				Tenant:   string(rune('a' + tenants[i]%26)),
				Workload: "w",
				RuntimeS: rt,
				Config:   confspace.Config{"k": float64(i)},
			})
		}
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			return false
		}
		var s2 Store
		if err := s2.Load(&buf); err != nil {
			return false
		}
		a, b := s.Query(Filter{}), s2.Query(Filter{})
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Tenant != b[i].Tenant || a[i].RuntimeS != b[i].RuntimeS ||
				a[i].Seq != b[i].Seq || a[i].Config["k"] != b[i].Config["k"] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
