// Package history implements the provider-side execution-history store
// the paper's vision rests on (§IV-C): every workload execution — across
// tenants, cloud configurations and DISC configurations — is recorded
// with its observed metrics, so the tuning service can characterize
// workloads, transfer knowledge between them, and detect the need for
// re-tuning. The store is safe for concurrent use and serializes to JSON.
package history

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/spark"
)

// Metrics are the provider-observable facts of one execution — what a
// cloud can measure without understanding the workload.
type Metrics struct {
	ShuffleReadBytes  int64   `json:"shuffleReadBytes"`
	ShuffleWriteBytes int64   `json:"shuffleWriteBytes"`
	SpillBytes        int64   `json:"spillBytes"`
	GCSeconds         float64 `json:"gcSeconds"`
	Executors         int     `json:"executors"`
	Stages            int     `json:"stages"`
}

// MetricsFromResult extracts metrics from a simulated run.
func MetricsFromResult(res spark.Result) Metrics {
	return Metrics{
		ShuffleReadBytes:  res.TotalShuffleRead,
		ShuffleWriteBytes: res.TotalShuffleWrite,
		SpillBytes:        res.TotalSpillBytes,
		GCSeconds:         res.TotalGCSeconds,
		Executors:         res.Executors,
		Stages:            len(res.Stages),
	}
}

// Record is one execution history entry.
type Record struct {
	Seq        int              `json:"seq"`
	Tenant     string           `json:"tenant"`
	Workload   string           `json:"workload"`
	InputBytes int64            `json:"inputBytes"`
	Cluster    string           `json:"cluster"`
	Config     confspace.Config `json:"config"`
	RuntimeS   float64          `json:"runtimeS"`
	CostUSD    float64          `json:"costUSD"`
	Failed     bool             `json:"failed"`
	Reason     string           `json:"reason,omitempty"`
	Metrics    Metrics          `json:"metrics"`
}

// Filter selects records in queries. Zero fields match everything.
type Filter struct {
	Tenant        string
	Workload      string
	SucceededOnly bool
	// MaxN limits the result to the most recent N records (0 = all).
	MaxN int
}

func (f Filter) matches(r Record) bool {
	if f.Tenant != "" && r.Tenant != f.Tenant {
		return false
	}
	if f.Workload != "" && r.Workload != f.Workload {
		return false
	}
	if f.SucceededOnly && r.Failed {
		return false
	}
	return true
}

// numShards is the fixed shard count. Records are distributed by a hash
// of their workload key, so concurrent tuning sessions of distinct
// tenants almost never contend on the same lock, while the dominant
// query shape — "this tenant's runs of this workload" — touches exactly
// one shard.
const numShards = 16

// shard is one independently locked slice of the history. Records within
// a shard are in ascending Seq order (Append assigns the sequence number
// while holding the shard lock).
type shard struct {
	mu      sync.RWMutex
	records []Record
}

// Store is an append-only, concurrency-safe execution history, sharded by
// workload key. The zero value is ready to use.
type Store struct {
	nextSeq atomic.Int64
	count   atomic.Int64
	// persist, when set, observes every appended record (with its
	// assigned sequence number) — the storage tier's write-ahead hook.
	persist atomic.Pointer[func(Record)]
	shards  [numShards]shard
}

// SetPersist installs fn to be called after every Append with the
// appended record (sequence number assigned, config cloned). Passing nil
// removes the hook. The call happens outside the shard lock, so fn may
// block (e.g. on a group-committed fsync) without stalling other shards.
func (s *Store) SetPersist(fn func(Record)) {
	if fn == nil {
		s.persist.Store(nil)
		return
	}
	s.persist.Store(&fn)
}

// shardFor maps a (tenant, workload) pair to its shard.
func (s *Store) shardFor(tenant, workload string) *shard {
	h := fnv.New32a()
	h.Write([]byte(tenant))
	h.Write([]byte{0})
	h.Write([]byte(workload))
	return &s.shards[h.Sum32()%numShards]
}

// Append adds a record, assigning its sequence number, and returns it.
func (s *Store) Append(r Record) Record {
	if r.Config != nil {
		r.Config = r.Config.Clone()
	}
	sh := s.shardFor(r.Tenant, r.Workload)
	sh.mu.Lock()
	r.Seq = int(s.nextSeq.Add(1) - 1)
	sh.records = append(sh.records, r)
	sh.mu.Unlock()
	s.count.Add(1)
	if fn := s.persist.Load(); fn != nil {
		(*fn)(r)
	}
	return r
}

// Len returns the number of records.
func (s *Store) Len() int { return int(s.count.Load()) }

// Query returns matching records in insertion order (copies). Filters
// naming both a tenant and a workload read a single shard; broader
// filters merge all shards.
func (s *Store) Query(f Filter) []Record {
	var out []Record
	if f.Tenant != "" && f.Workload != "" {
		sh := s.shardFor(f.Tenant, f.Workload)
		sh.mu.RLock()
		for _, r := range sh.records {
			if f.matches(r) {
				out = append(out, r)
			}
		}
		sh.mu.RUnlock()
	} else {
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.RLock()
			for _, r := range sh.records {
				if f.matches(r) {
					out = append(out, r)
				}
			}
			sh.mu.RUnlock()
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	}
	if f.MaxN > 0 && len(out) > f.MaxN {
		out = out[len(out)-f.MaxN:]
	}
	for i := range out {
		if out[i].Config != nil {
			out[i].Config = out[i].Config.Clone()
		}
	}
	return out
}

// Workloads returns the distinct (tenant, workload) pairs present, in
// first-appearance order.
func (s *Store) Workloads() []WorkloadKey {
	first := make(map[WorkloadKey]int)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, r := range sh.records {
			k := WorkloadKey{Tenant: r.Tenant, Workload: r.Workload}
			if seq, ok := first[k]; !ok || r.Seq < seq {
				first[k] = r.Seq
			}
		}
		sh.mu.RUnlock()
	}
	out := make([]WorkloadKey, 0, len(first))
	for k := range first {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return first[out[i]] < first[out[j]] })
	return out
}

// WorkloadKey identifies one tenant's workload.
type WorkloadKey struct {
	Tenant   string `json:"tenant"`
	Workload string `json:"workload"`
}

// String renders "tenant/workload".
func (k WorkloadKey) String() string { return k.Tenant + "/" + k.Workload }

// Best returns the fastest successful record matching f and whether one
// exists.
func (s *Store) Best(f Filter) (Record, bool) {
	f.SucceededOnly = true
	recs := s.Query(f)
	if len(recs) == 0 {
		return Record{}, false
	}
	best := recs[0]
	for _, r := range recs[1:] {
		if r.RuntimeS < best.RuntimeS {
			best = r
		}
	}
	return best, true
}

// ErrBadSnapshot reports a malformed serialized store.
var ErrBadSnapshot = errors.New("history: malformed snapshot")

// lockAll write-locks every shard in index order (the consistent order
// prevents deadlock against concurrent whole-store operations) and
// returns the matching unlock.
func (s *Store) lockAll() func() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	return func() {
		for i := range s.shards {
			s.shards[i].mu.Unlock()
		}
	}
}

// Save serializes the store as one JSON array in insertion order.
func (s *Store) Save(w io.Writer) error {
	unlock := s.lockAll()
	var all []Record
	for i := range s.shards {
		all = append(all, s.shards[i].records...)
	}
	unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
	enc := json.NewEncoder(w)
	return enc.Encode(all)
}

// Load replaces the store's contents from JSON.
func (s *Store) Load(r io.Reader) error {
	var records []Record
	if err := json.NewDecoder(r).Decode(&records); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	s.Reset(records)
	return nil
}

// Reset replaces the store's contents with records — the recovery
// entry point. Records may arrive in any order; they land in each shard
// in ascending Seq order and the next sequence number continues past the
// highest seen. The persist hook is not called: these records were
// already persisted.
func (s *Store) Reset(records []Record) {
	records = append([]Record(nil), records...)
	sort.Slice(records, func(i, j int) bool { return records[i].Seq < records[j].Seq })
	unlock := s.lockAll()
	defer unlock()
	for i := range s.shards {
		s.shards[i].records = nil
	}
	nextSeq := int64(0)
	for _, rec := range records {
		sh := s.shardFor(rec.Tenant, rec.Workload)
		sh.records = append(sh.records, rec)
		if int64(rec.Seq) >= nextSeq {
			nextSeq = int64(rec.Seq) + 1
		}
	}
	s.nextSeq.Store(nextSeq)
	s.count.Store(int64(len(records)))
}

// SaveFile writes the store to path and fsyncs it: when SaveFile
// returns, the bytes are durable, not merely in the page cache — the
// half of crash safety the temp-and-rename idiom alone doesn't provide.
func (s *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.Save(f); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile replaces the store's contents from path.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Load(f)
}
