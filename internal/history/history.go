// Package history implements the provider-side execution-history store
// the paper's vision rests on (§IV-C): every workload execution — across
// tenants, cloud configurations and DISC configurations — is recorded
// with its observed metrics, so the tuning service can characterize
// workloads, transfer knowledge between them, and detect the need for
// re-tuning. The store is safe for concurrent use and serializes to JSON.
package history

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/spark"
)

// Metrics are the provider-observable facts of one execution — what a
// cloud can measure without understanding the workload.
type Metrics struct {
	ShuffleReadBytes  int64   `json:"shuffleReadBytes"`
	ShuffleWriteBytes int64   `json:"shuffleWriteBytes"`
	SpillBytes        int64   `json:"spillBytes"`
	GCSeconds         float64 `json:"gcSeconds"`
	Executors         int     `json:"executors"`
	Stages            int     `json:"stages"`
}

// MetricsFromResult extracts metrics from a simulated run.
func MetricsFromResult(res spark.Result) Metrics {
	return Metrics{
		ShuffleReadBytes:  res.TotalShuffleRead,
		ShuffleWriteBytes: res.TotalShuffleWrite,
		SpillBytes:        res.TotalSpillBytes,
		GCSeconds:         res.TotalGCSeconds,
		Executors:         res.Executors,
		Stages:            len(res.Stages),
	}
}

// Record is one execution history entry.
type Record struct {
	Seq        int              `json:"seq"`
	Tenant     string           `json:"tenant"`
	Workload   string           `json:"workload"`
	InputBytes int64            `json:"inputBytes"`
	Cluster    string           `json:"cluster"`
	Config     confspace.Config `json:"config"`
	RuntimeS   float64          `json:"runtimeS"`
	CostUSD    float64          `json:"costUSD"`
	Failed     bool             `json:"failed"`
	Reason     string           `json:"reason,omitempty"`
	Metrics    Metrics          `json:"metrics"`
}

// Filter selects records in queries. Zero fields match everything.
type Filter struct {
	Tenant        string
	Workload      string
	SucceededOnly bool
	// MaxN limits the result to the most recent N records (0 = all).
	MaxN int
}

func (f Filter) matches(r Record) bool {
	if f.Tenant != "" && r.Tenant != f.Tenant {
		return false
	}
	if f.Workload != "" && r.Workload != f.Workload {
		return false
	}
	if f.SucceededOnly && r.Failed {
		return false
	}
	return true
}

// Store is an append-only, concurrency-safe execution history. The zero
// value is ready to use.
type Store struct {
	mu      sync.RWMutex
	records []Record
	nextSeq int
}

// Append adds a record, assigning its sequence number, and returns it.
func (s *Store) Append(r Record) Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.Seq = s.nextSeq
	s.nextSeq++
	if r.Config != nil {
		r.Config = r.Config.Clone()
	}
	s.records = append(s.records, r)
	return r
}

// Len returns the number of records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// Query returns matching records in insertion order (copies).
func (s *Store) Query(f Filter) []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Record
	for _, r := range s.records {
		if f.matches(r) {
			out = append(out, r)
		}
	}
	if f.MaxN > 0 && len(out) > f.MaxN {
		out = out[len(out)-f.MaxN:]
	}
	for i := range out {
		if out[i].Config != nil {
			out[i].Config = out[i].Config.Clone()
		}
	}
	return out
}

// Workloads returns the distinct (tenant, workload) pairs present.
func (s *Store) Workloads() []WorkloadKey {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := make(map[WorkloadKey]bool)
	var out []WorkloadKey
	for _, r := range s.records {
		k := WorkloadKey{Tenant: r.Tenant, Workload: r.Workload}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// WorkloadKey identifies one tenant's workload.
type WorkloadKey struct {
	Tenant   string `json:"tenant"`
	Workload string `json:"workload"`
}

// String renders "tenant/workload".
func (k WorkloadKey) String() string { return k.Tenant + "/" + k.Workload }

// Best returns the fastest successful record matching f and whether one
// exists.
func (s *Store) Best(f Filter) (Record, bool) {
	f.SucceededOnly = true
	recs := s.Query(f)
	if len(recs) == 0 {
		return Record{}, false
	}
	best := recs[0]
	for _, r := range recs[1:] {
		if r.RuntimeS < best.RuntimeS {
			best = r
		}
	}
	return best, true
}

// ErrBadSnapshot reports a malformed serialized store.
var ErrBadSnapshot = errors.New("history: malformed snapshot")

// Save serializes the store as JSON.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	enc := json.NewEncoder(w)
	return enc.Encode(s.records)
}

// Load replaces the store's contents from JSON.
func (s *Store) Load(r io.Reader) error {
	var records []Record
	if err := json.NewDecoder(r).Decode(&records); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records = records
	s.nextSeq = 0
	for _, rec := range records {
		if rec.Seq >= s.nextSeq {
			s.nextSeq = rec.Seq + 1
		}
	}
	return nil
}

// SaveFile writes the store to path.
func (s *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile replaces the store's contents from path.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Load(f)
}
