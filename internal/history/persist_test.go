package history

import (
	"reflect"
	"sync"
	"testing"
)

// The persist hook observes every append with its assigned sequence
// number — the storage tier's contract.
func TestPersistHook(t *testing.T) {
	st := &Store{}
	var mu sync.Mutex
	var seen []Record
	st.SetPersist(func(r Record) {
		mu.Lock()
		seen = append(seen, r)
		mu.Unlock()
	})
	const n = 20
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st.Append(Record{Tenant: "t", Workload: "w", RuntimeS: float64(i)})
		}(i)
	}
	wg.Wait()
	if len(seen) != n {
		t.Fatalf("hook saw %d appends, want %d", len(seen), n)
	}
	seqs := map[int]bool{}
	for _, r := range seen {
		if r.Seq < 0 || r.Seq >= n || seqs[r.Seq] {
			t.Fatalf("hook saw bad or duplicate Seq %d", r.Seq)
		}
		seqs[r.Seq] = true
	}
	// Detaching stops the callbacks.
	st.SetPersist(nil)
	st.Append(Record{Tenant: "t", Workload: "w"})
	if len(seen) != n {
		t.Errorf("hook called after SetPersist(nil)")
	}
}

// Reset replaces contents without invoking the persist hook (recovered
// records are already persisted) and continues numbering past the
// highest recovered Seq.
func TestResetSkipsPersistHook(t *testing.T) {
	st := &Store{}
	calls := 0
	st.SetPersist(func(Record) { calls++ })
	recs := []Record{
		{Seq: 4, Tenant: "a", Workload: "w"},
		{Seq: 2, Tenant: "b", Workload: "w"},
	}
	st.Reset(recs)
	if calls != 0 {
		t.Errorf("Reset invoked the persist hook %d times", calls)
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d", st.Len())
	}
	got := st.Query(Filter{})
	if got[0].Seq != 2 || got[1].Seq != 4 {
		t.Fatalf("Reset order = %v", got)
	}
	next := st.Append(Record{Tenant: "c", Workload: "w"})
	if next.Seq != 5 {
		t.Errorf("post-Reset Seq = %d, want 5", next.Seq)
	}
	if calls != 1 {
		t.Errorf("Append after Reset: hook calls = %d, want 1", calls)
	}
}

// Reset must not alias the caller's slice.
func TestResetCopies(t *testing.T) {
	st := &Store{}
	recs := []Record{{Seq: 0, Tenant: "a", Workload: "w", RuntimeS: 1}}
	st.Reset(recs)
	recs[0].RuntimeS = 99
	if got := st.Query(Filter{}); got[0].RuntimeS != 1 {
		t.Errorf("Reset aliased caller slice: %v", got[0])
	}
	if !reflect.DeepEqual(st.Query(Filter{}), st.Query(Filter{})) {
		t.Error("Query not stable")
	}
}
