package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 2 || m.At(1, 0) != 3 {
		t.Errorf("unexpected matrix contents: %+v", m)
	}
	if _, err := FromRows([][]float64{{1}, {2, 3}}); !errors.Is(err, ErrShape) {
		t.Errorf("ragged rows: err = %v, want ErrShape", err)
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows() != 0 {
		t.Errorf("FromRows(nil) = (%v, %v)", empty, err)
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(NewMatrix(3, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("mismatched Mul err = %v, want ErrShape", err)
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got, err := a.MulVec([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 6 || got[1] != 15 {
		t.Errorf("MulVec = %v, want [6 15]", got)
	}
	if _, err := a.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("short vec err = %v, want ErrShape", err)
	}
}

func TestTranspose(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows() != 3 || at.Cols() != 2 || at.At(2, 1) != 6 {
		t.Errorf("transpose wrong: %+v", at)
	}
}

func TestIdentityMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	i2 := Identity(2)
	c, err := a.Mul(i2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != a.At(i, j) {
				t.Errorf("A·I != A at (%d,%d)", i, j)
			}
		}
	}
}

// randomSPD builds a random SPD matrix A = BᵀB + n·I.
func randomSPD(r *rand.Rand, n int) *Matrix {
	b := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, r.NormFloat64())
		}
	}
	bt := b.T()
	a, _ := bt.Mul(b)
	return AddDiagonal(a, float64(n))
}

func TestCholeskyReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 20} {
		a := randomSPD(r, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		l := ch.L()
		lt := l.T()
		rec, _ := l.Mul(lt)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(rec.At(i, j)-a.At(i, j)) > 1e-8*(1+math.Abs(a.At(i, j))) {
					t.Fatalf("n=%d: L·Lᵀ != A at (%d,%d): %v vs %v", n, i, j, rec.At(i, j), a.At(i, j))
				}
			}
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := randomSPD(r, 10)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := make([]float64, 10)
	for i := range xTrue {
		xTrue[i] = r.NormFloat64()
	}
	b, _ := a.MulVec(xTrue)
	x, err := ch.SolveVec(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-8 {
			t.Fatalf("solve mismatch at %d: %v vs %v", i, x[i], xTrue[i])
		}
	}
	if _, err := ch.SolveVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("short rhs err = %v, want ErrShape", err)
	}
}

func TestCholeskyForward(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randomSPD(r, 6)
	ch, _ := NewCholesky(a)
	b := make([]float64, 6)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	y, err := ch.SolveForward(b)
	if err != nil {
		t.Fatal(err)
	}
	// Verify L·y = b.
	got, _ := ch.L().MulVec(y)
	for i := range b {
		if math.Abs(got[i]-b[i]) > 1e-9 {
			t.Fatalf("L·y != b at %d", i)
		}
	}
}

func TestCholeskyNotSPD(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 0}, {0, -1}})
	if _, err := NewCholesky(a); !errors.Is(err, ErrNotSPD) {
		t.Errorf("err = %v, want ErrNotSPD", err)
	}
	if _, err := NewCholesky(NewMatrix(2, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("non-square err = %v, want ErrShape", err)
	}
}

func TestLogDet(t *testing.T) {
	// diag(4, 9) has det 36, logdet = log 36.
	a, _ := FromRows([][]float64{{4, 0}, {0, 9}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := ch.LogDet(); math.Abs(got-math.Log(36)) > 1e-12 {
		t.Errorf("LogDet = %v, want %v", got, math.Log(36))
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Error("Norm2 wrong")
	}
}

func TestDotMismatchedLengthsPanics(t *testing.T) {
	// Truncating to the shorter vector silently hid shape bugs in callers;
	// mismatched lengths are a programmer error.
	defer func() {
		if recover() == nil {
			t.Error("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float64{1, 2}, []float64{3})
}

// Property: solving A·x = b then multiplying back recovers b, for random
// SPD systems.
func TestCholeskyRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		a := randomSPD(r, n)
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64() * 10
		}
		x, err := ch.SolveVec(b)
		if err != nil {
			return false
		}
		back, _ := a.MulVec(x)
		for i := range b {
			if math.Abs(back[i]-b[i]) > 1e-6*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
