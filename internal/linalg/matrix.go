// Package linalg implements the dense linear algebra needed by the
// Gaussian-process and regression models: column-major-free dense matrices,
// Cholesky factorization of symmetric positive-definite systems,
// triangular solves and log-determinants.
//
// The package is deliberately small: it implements exactly what the tuning
// models need, with numerically careful but unoptimized kernels (the
// matrices involved are at most a few hundred rows — one per workload
// execution sample).
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned by Cholesky when the input matrix is not symmetric
// positive definite (within numerical tolerance).
var ErrNotSPD = errors.New("linalg: matrix is not symmetric positive definite")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("linalg: incompatible shapes")

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero rows×cols matrix. Non-positive dimensions yield
// an empty matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 {
		rows = 0
	}
	if cols < 0 {
		cols = 0
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrShape, i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add increments element (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RowView returns row i as a live slice into the matrix storage. Writes
// through the slice mutate the matrix; callers that need a stable copy
// should use Row. It exists so hot paths can fill or scan rows without a
// per-element At/Set round trip.
func (m *Matrix) RowView(i int) []float64 {
	return m.data[i*m.cols : (i+1)*m.cols : (i+1)*m.cols]
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// mulBlock is the cache-blocking tile edge for Mul: a kBlock×cols panel of
// the right operand is reused across every row of the left operand before
// the next panel is streamed in.
const mulBlock = 64

// Mul returns m·b, or ErrShape when inner dimensions differ. The kernel is
// cache-blocked over the inner dimension and operates on flat row slices;
// per-element accumulation order is unchanged (ascending k), so results are
// bit-identical to the naive triple loop.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("%w: (%dx%d)·(%dx%d)", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := NewMatrix(m.rows, b.cols)
	bc := b.cols
	for k0 := 0; k0 < m.cols; k0 += mulBlock {
		k1 := k0 + mulBlock
		if k1 > m.cols {
			k1 = m.cols
		}
		for i := 0; i < m.rows; i++ {
			arow := m.data[i*m.cols : (i+1)*m.cols]
			orow := out.data[i*bc : (i+1)*bc]
			for k := k0; k < k1; k++ {
				a := arow[k]
				if a == 0 {
					continue
				}
				brow := b.data[k*bc : (k+1)*bc]
				for j, v := range brow {
					orow[j] += a * v
				}
			}
		}
	}
	return out, nil
}

// MulVec returns m·x, or ErrShape when len(x) != Cols.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if m.cols != len(x) {
		return nil, fmt.Errorf("%w: (%dx%d)·vec(%d)", ErrShape, m.rows, m.cols, len(x))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		sum := 0.0
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			sum += v * x[j]
		}
		out[i] = sum
	}
	return out, nil
}

// Cholesky holds the lower-triangular factor L of an SPD matrix A = L·Lᵀ.
type Cholesky struct {
	l *Matrix
	n int
}

// NewCholesky factorizes the SPD matrix a. It returns ErrNotSPD when a is
// not square or a pivot is non-positive. The factorization proceeds row by
// row on flat slices — row i is derived from rows 0..i-1 exactly the way
// Extend appends a row, so growing a factor incrementally is bit-identical
// to refactorizing from scratch.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: %dx%d is not square", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		li := l.data[i*n : i*n+i+1]
		ai := a.data[i*n : i*n+i+1]
		for j := 0; j <= i; j++ {
			// Equal-length reslices let the compiler drop bounds checks in
			// the dot product; ascending k keeps the summation order (and
			// therefore the factor, bit for bit) of the reference loop.
			lj := l.data[j*n : j*n+j]
			lik := li[:j]
			sum := ai[j]
			for k, v := range lj {
				sum -= lik[k] * v
			}
			if j == i {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, fmt.Errorf("%w: pivot %d = %g", ErrNotSPD, j, sum)
				}
				li[j] = math.Sqrt(sum)
			} else {
				li[j] = sum / l.data[j*n+j]
			}
		}
	}
	return &Cholesky{l: l, n: n}, nil
}

// Extend grows the factorization by one row/column in O(n²) instead of the
// O(n³) full refactorization. col is the new column of the augmented SPD
// matrix: col[i] = A[i][n] for i < n and col[n] = A[n][n]. The arithmetic
// is exactly the last row of a full factorization, so the extended factor
// is bit-identical to NewCholesky on the augmented matrix. On error the
// factorization is left unchanged.
func (c *Cholesky) Extend(col []float64) error {
	if len(col) != c.n+1 {
		return fmt.Errorf("%w: column length %d, want %d", ErrShape, len(col), c.n+1)
	}
	n := c.n
	// New row r solves L·r = col[:n]; the new pivot is col[n] - r·r.
	r, err := c.SolveForward(col[:n])
	if err != nil {
		return err
	}
	sum := col[n]
	for _, v := range r {
		sum -= v * v
	}
	if sum <= 0 || math.IsNaN(sum) {
		return fmt.Errorf("%w: pivot %d = %g", ErrNotSPD, n, sum)
	}
	grown := NewMatrix(n+1, n+1)
	for i := 0; i < n; i++ {
		copy(grown.data[i*(n+1):i*(n+1)+i+1], c.l.data[i*n:i*n+i+1])
	}
	copy(grown.data[n*(n+1):n*(n+1)+n], r)
	grown.data[n*(n+1)+n] = math.Sqrt(sum)
	c.l = grown
	c.n = n + 1
	return nil
}

// N returns the dimension of the factorized system.
func (c *Cholesky) N() int { return c.n }

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Matrix { return c.l.Clone() }

// SolveVec solves A·x = b given the factorization, via forward and backward
// substitution.
func (c *Cholesky) SolveVec(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, fmt.Errorf("%w: rhs length %d, want %d", ErrShape, len(b), c.n)
	}
	n := c.n
	// Forward: L·y = b.
	y := make([]float64, n)
	c.solveForwardInto(y, b)
	// Backward: Lᵀ·x = y. L is accessed down column i, i.e. with stride n.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= c.l.data[k*n+i] * x[k]
		}
		x[i] = sum / c.l.data[i*n+i]
	}
	return x, nil
}

// SolveForward solves L·y = b (forward substitution only). The GP predictive
// variance needs this half-solve.
func (c *Cholesky) SolveForward(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, fmt.Errorf("%w: rhs length %d, want %d", ErrShape, len(b), c.n)
	}
	y := make([]float64, c.n)
	c.solveForwardInto(y, b)
	return y, nil
}

// solveForwardInto writes the solution of L·y = b into y (len(y) == len(b)
// == c.n, y and b may alias only if identical).
func (c *Cholesky) solveForwardInto(y, b []float64) {
	n := c.n
	for i := 0; i < n; i++ {
		li := c.l.data[i*n : i*n+i+1]
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= li[k] * y[k]
		}
		y[i] = sum / li[i]
	}
}

// SolveForwardBatch solves L·Y = B for an n×m right-hand-side matrix in one
// pass. Row i of Y is computed as a fused update over whole rows, which
// keeps the inner loops on contiguous memory — the batched half-solve the
// GP needs to score a whole candidate pool at once. Each column's result is
// bit-identical to SolveForward on that column.
func (c *Cholesky) SolveForwardBatch(b *Matrix) (*Matrix, error) {
	if b.rows != c.n {
		return nil, fmt.Errorf("%w: rhs has %d rows, want %d", ErrShape, b.rows, c.n)
	}
	n, m := c.n, b.cols
	y := NewMatrix(n, m)
	for i := 0; i < n; i++ {
		li := c.l.data[i*n : i*n+i+1]
		yi := y.data[i*m : (i+1)*m]
		copy(yi, b.data[i*m:(i+1)*m])
		for k := 0; k < i; k++ {
			f := li[k]
			yk := y.data[k*m : (k+1)*m]
			for j, v := range yk {
				yi[j] -= f * v
			}
		}
		d := li[i]
		for j := range yi {
			yi[j] /= d
		}
	}
	return y, nil
}

// LogDet returns log|A| = 2·Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	sum := 0.0
	for i := 0; i < c.n; i++ {
		sum += math.Log(c.l.At(i, i))
	}
	return 2 * sum
}

// Dot returns the inner product of equal-length vectors. Mismatched
// lengths are a programmer error and panic: silently truncating to the
// shorter vector turns shape bugs in callers into wrong numbers.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch: %d vs %d", len(a), len(b)))
	}
	sum := 0.0
	for i, v := range a {
		sum += v * b[i]
	}
	return sum
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// AddDiagonal returns a copy of a with v added to each diagonal element
// (jitter/nugget regularization).
func AddDiagonal(a *Matrix, v float64) *Matrix {
	out := a.Clone()
	n := a.rows
	if a.cols < n {
		n = a.cols
	}
	for i := 0; i < n; i++ {
		out.Add(i, i, v)
	}
	return out
}
