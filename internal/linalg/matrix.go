// Package linalg implements the dense linear algebra needed by the
// Gaussian-process and regression models: column-major-free dense matrices,
// Cholesky factorization of symmetric positive-definite systems,
// triangular solves and log-determinants.
//
// The package is deliberately small: it implements exactly what the tuning
// models need, with numerically careful but unoptimized kernels (the
// matrices involved are at most a few hundred rows — one per workload
// execution sample).
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned by Cholesky when the input matrix is not symmetric
// positive definite (within numerical tolerance).
var ErrNotSPD = errors.New("linalg: matrix is not symmetric positive definite")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("linalg: incompatible shapes")

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero rows×cols matrix. Non-positive dimensions yield
// an empty matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 {
		rows = 0
	}
	if cols < 0 {
		cols = 0
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrShape, i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add increments element (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m·b, or ErrShape when inner dimensions differ.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("%w: (%dx%d)·(%dx%d)", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				out.Add(i, j, a*b.At(k, j))
			}
		}
	}
	return out, nil
}

// MulVec returns m·x, or ErrShape when len(x) != Cols.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if m.cols != len(x) {
		return nil, fmt.Errorf("%w: (%dx%d)·vec(%d)", ErrShape, m.rows, m.cols, len(x))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		sum := 0.0
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			sum += v * x[j]
		}
		out[i] = sum
	}
	return out, nil
}

// Cholesky holds the lower-triangular factor L of an SPD matrix A = L·Lᵀ.
type Cholesky struct {
	l *Matrix
	n int
}

// NewCholesky factorizes the SPD matrix a. It returns ErrNotSPD when a is
// not square or a pivot is non-positive.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: %dx%d is not square", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		sum := a.At(j, j)
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			sum -= v * v
		}
		if sum <= 0 || math.IsNaN(sum) {
			return nil, fmt.Errorf("%w: pivot %d = %g", ErrNotSPD, j, sum)
		}
		d := math.Sqrt(sum)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, sum/d)
		}
	}
	return &Cholesky{l: l, n: n}, nil
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Matrix { return c.l.Clone() }

// SolveVec solves A·x = b given the factorization, via forward and backward
// substitution.
func (c *Cholesky) SolveVec(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, fmt.Errorf("%w: rhs length %d, want %d", ErrShape, len(b), c.n)
	}
	// Forward: L·y = b.
	y := make([]float64, c.n)
	for i := 0; i < c.n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= c.l.At(i, k) * y[k]
		}
		y[i] = sum / c.l.At(i, i)
	}
	// Backward: Lᵀ·x = y.
	x := make([]float64, c.n)
	for i := c.n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < c.n; k++ {
			sum -= c.l.At(k, i) * x[k]
		}
		x[i] = sum / c.l.At(i, i)
	}
	return x, nil
}

// SolveForward solves L·y = b (forward substitution only). The GP predictive
// variance needs this half-solve.
func (c *Cholesky) SolveForward(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, fmt.Errorf("%w: rhs length %d, want %d", ErrShape, len(b), c.n)
	}
	y := make([]float64, c.n)
	for i := 0; i < c.n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= c.l.At(i, k) * y[k]
		}
		y[i] = sum / c.l.At(i, i)
	}
	return y, nil
}

// LogDet returns log|A| = 2·Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	sum := 0.0
	for i := 0; i < c.n; i++ {
		sum += math.Log(c.l.At(i, i))
	}
	return 2 * sum
}

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += a[i] * b[i]
	}
	return sum
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// AddDiagonal returns a copy of a with v added to each diagonal element
// (jitter/nugget regularization).
func AddDiagonal(a *Matrix, v float64) *Matrix {
	out := a.Clone()
	n := a.rows
	if a.cols < n {
		n = a.cols
	}
	for i := 0; i < n; i++ {
		out.Add(i, i, v)
	}
	return out
}
