package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// leadingMinor returns the k×k leading principal submatrix of a.
func leadingMinor(a *Matrix, k int) *Matrix {
	out := NewMatrix(k, k)
	for i := 0; i < k; i++ {
		copy(out.RowView(i), a.data[i*a.cols:i*a.cols+k])
	}
	return out
}

// Property: factorizing a leading minor and extending row by row yields a
// factor identical to refactorizing the full matrix from scratch.
func TestCholeskyExtendEqualsFullRefactorization(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(14)
		start := 1 + r.Intn(n-1)
		a := randomSPD(r, n)

		full, err := NewCholesky(a)
		if err != nil {
			return false
		}
		inc, err := NewCholesky(leadingMinor(a, start))
		if err != nil {
			return false
		}
		for k := start; k < n; k++ {
			col := make([]float64, k+1)
			for i := 0; i <= k; i++ {
				col[i] = a.At(i, k)
			}
			if err := inc.Extend(col); err != nil {
				return false
			}
		}
		if inc.N() != full.N() {
			return false
		}
		lf, li := full.L(), inc.L()
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if lf.At(i, j) != li.At(i, j) {
					return false
				}
			}
		}
		return inc.LogDet() == full.LogDet()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyExtendErrors(t *testing.T) {
	a := randomSPD(rand.New(rand.NewSource(1)), 4)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Extend([]float64{1, 2}); err == nil {
		t.Error("short column did not error")
	}
	// A column whose diagonal entry is too small for positive definiteness
	// must be rejected and leave the factorization unchanged.
	before := ch.LogDet()
	bad := make([]float64, 5)
	copy(bad, a.Row(0))
	bad[4] = 0 // pivot = 0 - |r|^2 < 0
	if err := ch.Extend(bad); err == nil {
		t.Error("non-SPD extension did not error")
	}
	if ch.N() != 4 || ch.LogDet() != before {
		t.Error("failed Extend mutated the factorization")
	}
}

func TestSolveForwardBatchMatchesPerColumn(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 3, 9, 24} {
		a := randomSPD(r, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		m := 5
		b := NewMatrix(n, m)
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				b.Set(i, j, r.NormFloat64())
			}
		}
		y, err := ch.SolveForwardBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < m; j++ {
			col := make([]float64, n)
			for i := 0; i < n; i++ {
				col[i] = b.At(i, j)
			}
			want, err := ch.SolveForward(col)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if y.At(i, j) != want[i] {
					t.Fatalf("n=%d col %d row %d: batch %v != vec %v", n, j, i, y.At(i, j), want[i])
				}
			}
		}
	}
	if _, err := (&Cholesky{}).SolveForwardBatch(NewMatrix(2, 2)); err == nil {
		t.Error("mismatched batch rhs did not error")
	}
}

// mulNaive is the retained reference implementation the optimized
// cache-blocked Mul is checked against.
func mulNaive(a, b *Matrix) *Matrix {
	out := NewMatrix(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		for k := 0; k < a.cols; k++ {
			v := a.At(i, k)
			if v == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				out.Add(i, j, v*b.At(k, j))
			}
		}
	}
	return out
}

func TestMulBlockedMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	// Sizes straddling the block edge exercise partial tiles.
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 2}, {63, 64, 65}, {70, 130, 67}} {
		a := NewMatrix(dims[0], dims[1])
		b := NewMatrix(dims[1], dims[2])
		for i := range a.data {
			a.data[i] = r.NormFloat64()
		}
		for i := range b.data {
			b.data[i] = r.NormFloat64()
		}
		got, err := a.Mul(b)
		if err != nil {
			t.Fatal(err)
		}
		want := mulNaive(a, b)
		for i := range want.data {
			if got.data[i] != want.data[i] {
				t.Fatalf("dims %v: blocked Mul diverges from naive at flat index %d: %v vs %v",
					dims, i, got.data[i], want.data[i])
			}
		}
	}
}

func TestRowView(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	rv := m.RowView(1)
	rv[0] = 9
	if m.At(1, 0) != 9 {
		t.Error("RowView is not a live view")
	}
	cp := m.Row(1)
	cp[0] = -1
	if m.At(1, 0) != 9 {
		t.Error("Row copy aliases the matrix")
	}
	if math.IsNaN(m.At(1, 1)) {
		t.Error("unexpected NaN")
	}
}
