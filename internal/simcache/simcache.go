// Package simcache memoizes simulator executions. A tuning service
// re-evaluates the same configuration point constantly — random search
// revisits defaults, genetic populations carry elites forward, multiple
// tenants tune the same workload, experiment replicates sweep identical
// grids — and CherryPick's premise (PAPERS.md) is that runs are too
// expensive to repeat. The cache makes the second evaluation of any
// (job, configuration, cluster, interference, options, seed) point a
// map lookup.
//
// Correctness rests on the simulator's determinism contract: RunWith is
// a pure function of its inputs and the RNG stream, so a run started
// from a fresh seeded RNG is fully determined by the key. The cache
// therefore only applies where each execution owns a per-call seed
// (stat.NewRNG(seed) call sites); callers that thread one sequential
// RNG through many runs must not consult it, because skipping a run
// would perturb the stream of the runs that follow. Cached and uncached
// results are bit-identical — enforced by property tests here and in
// internal/spark.
package simcache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/obs"
	"seamlesstune/internal/spark"
	"seamlesstune/internal/stat"
)

// shardCount is the fixed number of independently locked shards. 16
// keeps contention negligible for the worker-pool sizes EvaluateBatch
// uses while keeping per-shard LRU lists long enough to be useful.
const shardCount = 16

// DefaultCapacity is the entry bound used when callers pass a
// non-positive capacity to New.
const DefaultCapacity = 65536

// key identifies one deterministic simulator execution. Every field is
// comparable; spark.Conf, cloud.ClusterSpec, cloud.Factors and
// spark.Ablate are flat value structs. The trace handle in RunOpts is
// deliberately excluded: tracing observes an execution, it does not
// change one.
type key struct {
	jobFP   uint64
	conf    spark.Conf
	cluster cloud.ClusterSpec
	factors cloud.Factors
	mtbf    float64
	ablate  spark.Ablate
	seed    int64
}

// entry is one resident result.
type entry struct {
	k   key
	res spark.Result
}

// shard is an LRU-bounded segment of the cache.
type shard struct {
	mu    sync.Mutex
	items map[key]*list.Element
	order *list.List // front = most recently used
	cap   int
}

// Cache is a sharded, LRU-bounded memoization cache over simulator
// executions. A nil *Cache is valid and disables memoization: every
// method is nil-safe, so callers wire one optionally without branching.
type Cache struct {
	shards [shardCount]shard

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
}

// HitRate returns hits / (hits+misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Process-wide counters (all caches aggregate into one family, matching
// how /metrics consumers alert on hit rate).
var (
	mHits      = obs.Default().Counter("simcache_hits_total", "Simulator cache hits.")
	mMisses    = obs.Default().Counter("simcache_misses_total", "Simulator cache misses (simulator executed).")
	mEvictions = obs.Default().Counter("simcache_evictions_total", "Simulator cache LRU evictions.")
)

// New returns a cache bounded to capacity entries (DefaultCapacity when
// capacity <= 0), spread across the shards.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	perShard := capacity / shardCount
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{}
	for i := range c.shards {
		c.shards[i] = shard{
			items: make(map[key]*list.Element),
			order: list.New(),
			cap:   perShard,
		}
	}
	return c
}

// Run executes (or recalls) one simulation of job under conf, drawing
// all randomness from a fresh stream seeded with seed. On a miss it
// runs spark.RunWith with stat.NewRNG(seed) and stores the Result; on a
// hit it returns a copy whose Stages slice is detached, so callers may
// mutate results freely. A nil cache always runs — bit-identical either
// way, which is the whole contract.
func (c *Cache) Run(job *spark.Job, conf spark.Conf, cluster cloud.ClusterSpec,
	factors cloud.Factors, opts spark.RunOpts, seed int64) spark.Result {
	if c == nil {
		return spark.RunWith(job, conf, cluster, factors, opts, stat.NewRNG(seed))
	}
	k := key{
		jobFP:   job.Fingerprint(),
		conf:    conf,
		cluster: cluster,
		factors: factors,
		mtbf:    opts.ExecutorMTBFHours,
		ablate:  opts.Ablate,
		seed:    seed,
	}
	sh := &c.shards[shardOf(k)]
	sh.mu.Lock()
	if el, ok := sh.items[k]; ok {
		sh.order.MoveToFront(el)
		res := el.Value.(*entry).res
		sh.mu.Unlock()
		c.hits.Add(1)
		mHits.Inc()
		return copyResult(res)
	}
	sh.mu.Unlock()

	c.misses.Add(1)
	mMisses.Inc()
	res := spark.RunWith(job, conf, cluster, factors, opts, stat.NewRNG(seed))

	sh.mu.Lock()
	if _, ok := sh.items[k]; !ok { // a racing miss may have stored it already
		sh.items[k] = sh.order.PushFront(&entry{k: k, res: copyResult(res)})
		if sh.order.Len() > sh.cap {
			oldest := sh.order.Back()
			sh.order.Remove(oldest)
			delete(sh.items, oldest.Value.(*entry).k)
			c.evictions.Add(1)
			mEvictions.Inc()
		}
	}
	sh.mu.Unlock()
	return res
}

// Stats snapshots the cache counters and occupancy. Nil-safe: a nil
// cache reports all zeros.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Entries += sh.order.Len()
		st.Capacity += sh.cap
		sh.mu.Unlock()
	}
	return st
}

// shardOf mixes the key's high-entropy fields into a shard index.
func shardOf(k key) int {
	h := k.jobFP
	h ^= uint64(k.seed) * 0x9e3779b97f4a7c15
	h ^= uint64(k.conf.ExecutorMemoryMB)<<32 | uint64(uint32(k.conf.ShufflePartitions))
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return int(h % shardCount)
}

// copyResult detaches the Stages slice so cached entries are immune to
// caller mutation (and vice versa).
func copyResult(r spark.Result) spark.Result {
	if len(r.Stages) > 0 {
		stages := make([]spark.StageMetrics, len(r.Stages))
		copy(stages, r.Stages)
		r.Stages = stages
	}
	return r
}
