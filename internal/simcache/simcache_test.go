package simcache

import (
	"reflect"
	"sync"
	"testing"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/confspace"
	"seamlesstune/internal/spark"
	"seamlesstune/internal/stat"
	"seamlesstune/internal/workload"
)

func testCluster(t *testing.T) cloud.ClusterSpec {
	t.Helper()
	it, err := cloud.DefaultCatalog().Lookup("nimbus/g5.2xlarge")
	if err != nil {
		t.Fatal(err)
	}
	return cloud.ClusterSpec{Instance: it, Count: 4}
}

// Property: cached, uncached-through-cache (miss), and direct RunWith
// results are bit-identical across randomized workloads, configurations
// and seeds — the cache's whole correctness contract.
func TestCachedMatchesUncachedProperty(t *testing.T) {
	space := confspace.SparkSpace()
	cluster := testCluster(t)
	workloads := workload.All()
	cache := New(1024)
	for seed := int64(0); seed < 120; seed++ {
		rng := stat.NewRNG(seed)
		cfg := space.Random(rng)
		conf := spark.FromConfig(space, cfg)
		w := workloads[rng.Intn(len(workloads))]
		job := w.Job(2 << 30)
		opts := spark.RunOpts{}
		if seed%3 == 1 {
			opts.ExecutorMTBFHours = 2
		}
		if seed%3 == 2 {
			opts.Ablate = spark.Ablate{NoNoise: true}
		}

		direct := spark.RunWith(job, conf, cluster, cloud.Unit(), opts, stat.NewRNG(seed))
		miss := cache.Run(job, conf, cluster, cloud.Unit(), opts, seed)
		// A rebuilt job with equal content must hit (fingerprint keying).
		hit := cache.Run(w.Job(2<<30), conf, cluster, cloud.Unit(), opts, seed)
		var nilCache *Cache
		nilRes := nilCache.Run(job, conf, cluster, cloud.Unit(), opts, seed)

		for name, got := range map[string]spark.Result{"miss": miss, "hit": hit, "nil": nilRes} {
			if !reflect.DeepEqual(got, direct) {
				t.Fatalf("seed %d: %s path diverged from direct RunWith\n got: %+v\nwant: %+v", seed, name, got, direct)
			}
		}
	}
	st := cache.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected both hits and misses, got %+v", st)
	}
}

// Distinct seeds, options and confs must never collide.
func TestKeyDiscriminates(t *testing.T) {
	cluster := testCluster(t)
	job := workload.Wordcount{}.Job(1 << 30)
	conf := spark.DefaultConf()
	cache := New(64)

	a := cache.Run(job, conf, cluster, cloud.Unit(), spark.RunOpts{}, 1)
	b := cache.Run(job, conf, cluster, cloud.Unit(), spark.RunOpts{}, 2)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds returned identical results (likely a key collision)")
	}
	if got := cache.Stats().Misses; got != 2 {
		t.Fatalf("expected 2 misses, got %d", got)
	}
	cache.Run(job, conf, cluster, cloud.Factors{CPU: 2, Net: 1, Disk: 1}, spark.RunOpts{}, 1)
	cache.Run(job, conf, cluster, cloud.Unit(), spark.RunOpts{ExecutorMTBFHours: 1}, 1)
	conf2 := conf
	conf2.ExecutorMemoryMB *= 2
	cache.Run(job, conf2, cluster, cloud.Unit(), spark.RunOpts{}, 1)
	if got := cache.Stats().Misses; got != 5 {
		t.Fatalf("expected 5 misses after varying factors/opts/conf, got %d", got)
	}
}

// Hits must hand back detached Stages: mutating a returned result must
// not corrupt the cached copy.
func TestHitReturnsDetachedCopy(t *testing.T) {
	cluster := testCluster(t)
	job := workload.Wordcount{}.Job(1 << 30)
	conf := spark.DefaultConf()
	cache := New(64)

	first := cache.Run(job, conf, cluster, cloud.Unit(), spark.RunOpts{}, 9)
	second := cache.Run(job, conf, cluster, cloud.Unit(), spark.RunOpts{}, 9)
	if len(second.Stages) == 0 {
		t.Fatal("expected stage metrics")
	}
	second.Stages[0].DurationS = -1
	third := cache.Run(job, conf, cluster, cloud.Unit(), spark.RunOpts{}, 9)
	if third.Stages[0].DurationS == -1 {
		t.Fatal("mutation of a returned result leaked into the cache")
	}
	if !reflect.DeepEqual(first, third) {
		t.Fatal("cached result drifted")
	}
}

// The LRU bound must hold and evictions must be counted.
func TestLRUEviction(t *testing.T) {
	cluster := testCluster(t)
	job := workload.Wordcount{}.Job(1 << 30)
	conf := spark.DefaultConf()
	cache := New(shardCount) // one entry per shard
	for seed := int64(0); seed < 200; seed++ {
		cache.Run(job, conf, cluster, cloud.Unit(), spark.RunOpts{}, seed)
	}
	st := cache.Stats()
	if st.Entries > st.Capacity {
		t.Fatalf("entries %d exceed capacity %d", st.Entries, st.Capacity)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions")
	}
	if st.Misses != 200 {
		t.Fatalf("expected 200 misses, got %d", st.Misses)
	}
}

// Concurrent mixed hit/miss traffic must be race-free and bit-identical
// to the single-threaded answer (run under -race in CI).
func TestConcurrentAccess(t *testing.T) {
	cluster := testCluster(t)
	job := workload.Wordcount{}.Job(1 << 30)
	conf := spark.DefaultConf()
	cache := New(256)

	want := make([]spark.Result, 16)
	for s := range want {
		want[s] = spark.RunWith(job, conf, cluster, cloud.Unit(), spark.RunOpts{}, stat.NewRNG(int64(s)))
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				seed := int64((g + i) % 16)
				got := cache.Run(job, conf, cluster, cloud.Unit(), spark.RunOpts{}, seed)
				if !reflect.DeepEqual(got, want[seed]) {
					errs <- "concurrent result diverged"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatalf("expected hits under concurrent reuse, got %+v", st)
	}
}

func TestHitRate(t *testing.T) {
	if got := (Stats{}).HitRate(); got != 0 {
		t.Fatalf("empty hit rate = %v", got)
	}
	if got := (Stats{Hits: 3, Misses: 1}).HitRate(); got != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", got)
	}
}
