package whatif

import (
	"errors"
	"math"
	"testing"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/confspace"
	"seamlesstune/internal/spark"
	"seamlesstune/internal/stat"
	"seamlesstune/internal/workload"
)

const gb = int64(1) << 30

func cluster4(t testing.TB) cloud.ClusterSpec {
	t.Helper()
	it, err := cloud.DefaultCatalog().Lookup("nimbus/h1.4xlarge")
	if err != nil {
		t.Fatal(err)
	}
	return cloud.ClusterSpec{Instance: it, Count: 4}
}

// baseConf is a sensible profiling configuration.
func baseConf() spark.Conf {
	c := spark.DefaultConf()
	c.ExecutorInstances = 8
	c.ExecutorCores = 8
	c.ExecutorMemoryMB = 16384
	c.DriverMemoryMB = 4096
	c.DefaultParallelism = 128
	c.ShufflePartitions = 128
	return c
}

// profileOf runs a workload and builds its profile.
func profileOf(t *testing.T, w workload.Workload, size int64, conf spark.Conf) Profile {
	t.Helper()
	cl := cluster4(t)
	res := spark.Run(w.Job(size), conf, cl, cloud.Unit(), stat.NewRNG(1))
	if res.Failed {
		t.Fatalf("profiling run failed: %s", res.Reason)
	}
	p, err := NewProfile(conf, cl, size, res)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewProfileErrors(t *testing.T) {
	cl := cluster4(t)
	if _, err := NewProfile(baseConf(), cl, gb, spark.Result{Failed: true}); !errors.Is(err, ErrBadProfile) {
		t.Errorf("failed run: err = %v", err)
	}
	if _, err := NewProfile(baseConf(), cl, 0, spark.Result{Stages: []spark.StageMetrics{{}}}); !errors.Is(err, ErrBadProfile) {
		t.Errorf("zero input: err = %v", err)
	}
}

func TestPredictSameQuestionMatchesObservation(t *testing.T) {
	// Asking the engine about the profiled configuration itself should
	// come close to the observed runtime.
	for _, w := range []workload.Workload{workload.Wordcount{}, workload.Sort{}} {
		conf := baseConf()
		cl := cluster4(t)
		res := spark.Run(w.Job(8*gb), conf, cl, cloud.Unit(), stat.NewRNG(1))
		p, err := NewProfile(conf, cl, 8*gb, res)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := p.Predict(Question{Conf: conf, Cluster: cl, InputBytes: 8 * gb})
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(ans.RuntimeS-res.RuntimeS) / res.RuntimeS
		if rel > 0.30 {
			t.Errorf("%s: self-prediction off by %.0f%% (%v vs %v)", w.Name(), rel*100, ans.RuntimeS, res.RuntimeS)
		}
	}
}

func TestPredictScalesWithData(t *testing.T) {
	p := profileOf(t, workload.Wordcount{}, 8*gb, baseConf())
	cl := cluster4(t)
	small, err := p.Predict(Question{Conf: baseConf(), Cluster: cl, InputBytes: 8 * gb})
	if err != nil {
		t.Fatal(err)
	}
	big, err := p.Predict(Question{Conf: baseConf(), Cluster: cl, InputBytes: 32 * gb})
	if err != nil {
		t.Fatal(err)
	}
	ratio := big.RuntimeS / small.RuntimeS
	if ratio < 2 || ratio > 6 {
		t.Errorf("4x data predicted ratio = %.2f, want roughly linear", ratio)
	}
}

func TestPredictAccuracyOrdering(t *testing.T) {
	// The §II-B claim: the engine is reasonably accurate for homogeneous
	// scan/shuffle workloads but degrades on iterative, cache-bound ones.
	cl := cluster4(t)
	mape := func(w workload.Workload) float64 {
		conf := baseConf()
		p := profileOf(t, w, 8*gb, conf)
		rng := stat.NewRNG(3)
		space := confspace.SparkSubspace(8)
		var errSum float64
		var n int
		for i := 0; i < 12; i++ {
			cfg := space.Random(rng)
			c2 := spark.FromConfig(space, cfg)
			actual := spark.Run(w.Job(8*gb), c2, cl, cloud.Unit(), stat.NewRNG(int64(100+i)))
			if actual.Failed {
				continue
			}
			ans, err := p.Predict(Question{Conf: c2, Cluster: cl, InputBytes: 8 * gb})
			if err != nil {
				continue
			}
			errSum += math.Abs(ans.RuntimeS-actual.RuntimeS) / actual.RuntimeS
			n++
		}
		if n == 0 {
			t.Fatalf("%s: no successful predictions", w.Name())
		}
		return errSum / float64(n)
	}
	wcErr := mape(workload.Wordcount{})
	prErr := mape(workload.PageRank{})
	if wcErr >= prErr {
		t.Errorf("wordcount MAPE %.2f not below pagerank MAPE %.2f (the Starfish limitation)", wcErr, prErr)
	}
	if wcErr > 0.6 {
		t.Errorf("wordcount MAPE %.2f implausibly bad for a homogeneous workload", wcErr)
	}
}

func TestPredictErrors(t *testing.T) {
	p := Profile{}
	if _, err := p.Predict(Question{}); !errors.Is(err, ErrBadProfile) {
		t.Errorf("empty profile: err = %v", err)
	}
	full := profileOf(t, workload.Wordcount{}, gb, baseConf())
	// Hypothetical config that cannot allocate.
	bad := baseConf()
	bad.ExecutorMemoryMB = 1 << 20 // 1 TB heap
	if _, err := full.Predict(Question{Conf: bad, Cluster: cluster4(t), InputBytes: gb}); err == nil {
		t.Error("unallocatable question accepted")
	}
}
