// Package whatif implements a Starfish-style What-If engine (Herodotou
// et al., cited in paper §II-B): from a *profile* of one observed
// execution, it answers questions of the form "given the profile of job
// A under configuration c1, what will its runtime be under configuration
// c2 with input y?" analytically, without running anything.
//
// The engine deliberately shares the limitations the paper attributes to
// Starfish: it treats the job as a sequence of stages whose work scales
// linearly with data, splits each stage's observed time into modelled CPU
// and IO components, and rescales them for the new configuration. It does
// not model RDD caching, cache-capacity cliffs, or plan changes — so its
// predictions degrade on heterogeneous/iterative workloads (§II-B:
// "showed less accuracy when tried with heterogeneous applications"),
// which experiment C9 quantifies.
package whatif

import (
	"errors"
	"fmt"
	"math"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/spark"
)

// StageProfile is the observable footprint of one executed stage.
type StageProfile struct {
	Tasks             int
	DurationS         float64
	InputBytes        int64
	ShuffleReadBytes  int64
	ShuffleWriteBytes int64
	SpillBytes        int64
}

// Profile captures one profiled execution: the configuration and cluster
// it ran on, the input size, and per-stage footprints. Everything here is
// provider-observable.
type Profile struct {
	Conf       spark.Conf
	Cluster    cloud.ClusterSpec
	InputBytes int64
	Stages     []StageProfile
	// JobOverheadS is the non-stage time (submit + executor launch).
	JobOverheadS float64
}

// ErrBadProfile reports an unusable profile.
var ErrBadProfile = errors.New("whatif: unusable profile")

// NewProfile builds a profile from a simulated run.
func NewProfile(conf spark.Conf, cluster cloud.ClusterSpec, inputBytes int64, res spark.Result) (Profile, error) {
	if res.Failed {
		return Profile{}, fmt.Errorf("%w: profiling run failed: %s", ErrBadProfile, res.Reason)
	}
	if len(res.Stages) == 0 || inputBytes <= 0 {
		return Profile{}, fmt.Errorf("%w: empty run", ErrBadProfile)
	}
	p := Profile{Conf: conf, Cluster: cluster, InputBytes: inputBytes}
	stageTime := 0.0
	for _, sm := range res.Stages {
		p.Stages = append(p.Stages, StageProfile{
			Tasks:             sm.Tasks,
			DurationS:         sm.DurationS,
			InputBytes:        sm.InputBytes,
			ShuffleReadBytes:  sm.ShuffleRead,
			ShuffleWriteBytes: sm.ShuffleWrite,
			SpillBytes:        sm.SpillBytes,
		})
		stageTime += sm.DurationS
	}
	p.JobOverheadS = math.Max(0, res.RuntimeS-stageTime)
	return p, nil
}

// Question is a what-if query: the hypothetical configuration, cluster
// and input size.
type Question struct {
	Conf       spark.Conf
	Cluster    cloud.ClusterSpec
	InputBytes int64
}

// Answer is the engine's prediction.
type Answer struct {
	RuntimeS float64
	Stages   []float64 // predicted per-stage seconds
}

// Predict answers the what-if question from the profile.
func (p Profile) Predict(q Question) (Answer, error) {
	if len(p.Stages) == 0 {
		return Answer{}, ErrBadProfile
	}
	if err := q.Cluster.Validate(); err != nil {
		return Answer{}, err
	}
	if q.InputBytes <= 0 {
		q.InputBytes = p.InputBytes
	}

	_, slots1, ok := spark.EstimateAllocation(p.Conf, p.Cluster)
	if !ok {
		return Answer{}, fmt.Errorf("%w: profiled configuration obtains no executors", ErrBadProfile)
	}
	execs2, slots2, ok := spark.EstimateAllocation(q.Conf, q.Cluster)
	if !ok || execs2 == 0 {
		return Answer{}, errors.New("whatif: hypothetical configuration obtains no executors")
	}

	dataRatio := float64(q.InputBytes) / float64(p.InputBytes)
	cpuRatio := p.Cluster.Instance.CPUFactor / q.Cluster.Instance.CPUFactor
	diskRatio := perTaskRate(p.Cluster, slots1, true) / perTaskRate(q.Cluster, slots2, true)
	netRatio := perTaskRate(p.Cluster, slots1, false) / perTaskRate(q.Cluster, slots2, false)

	ans := Answer{RuntimeS: p.JobOverheadS}
	for _, sp := range p.Stages {
		// Decompose the observed stage time: the IO component is modelled
		// from observed byte counts and the profiled cluster's rates; the
		// remainder is CPU.
		waves1 := math.Max(1, math.Ceil(float64(sp.Tasks)/float64(slots1)))
		ioPerTask := ioSecondsPerTask(sp, p.Cluster, slots1)
		cpuPerTask := math.Max(sp.DurationS/waves1-ioPerTask, 0.1*sp.DurationS/waves1)

		// Rescale for the hypothetical run. Data volumes scale linearly
		// (the Starfish assumption); task counts follow the configured
		// parallelism; the wave structure follows the new slot count.
		tasks2 := p.rescaleTasks(sp, q, dataRatio)
		waves2 := math.Max(1, math.Ceil(float64(tasks2)/float64(slots2)))
		perTaskData := dataRatio * float64(sp.Tasks) / float64(tasks2)

		cpu2 := cpuPerTask * perTaskData * cpuRatio
		io2 := ioPerTask * perTaskData
		// Apportion the IO between disk and network by observed bytes.
		diskBytes := float64(sp.InputBytes + sp.ShuffleWriteBytes + 2*sp.SpillBytes)
		netBytes := float64(sp.ShuffleReadBytes)
		total := diskBytes + netBytes
		if total > 0 {
			io2 *= (diskBytes*diskRatio + netBytes*netRatio) / total
		}
		stageS := (cpu2 + io2) * waves2
		// Dispatch overhead for the new task count.
		stageS += 0.08 + float64(tasks2)*0.002/float64(maxInt(q.Conf.DriverCores, 1))
		ans.Stages = append(ans.Stages, stageS)
		ans.RuntimeS += stageS
	}
	return ans, nil
}

// rescaleTasks guesses the hypothetical task count for a stage from the
// configured parallelism knobs (the engine cannot see the plan, only the
// profile).
func (p Profile) rescaleTasks(sp StageProfile, q Question, dataRatio float64) int {
	switch {
	case sp.InputBytes > 0:
		// Input stage: splits follow the split size and the data volume.
		ratio := float64(p.Conf.MaxPartitionBytesMB) / float64(maxInt(q.Conf.MaxPartitionBytesMB, 1))
		return maxInt(int(math.Ceil(float64(sp.Tasks)*dataRatio*ratio)), 1)
	case sp.Tasks == p.Conf.ShufflePartitions:
		return maxInt(q.Conf.ShufflePartitions, 1)
	default:
		return maxInt(q.Conf.DefaultParallelism, 1)
	}
}

// ioSecondsPerTask estimates one task's IO seconds in the profiled stage
// from its byte counters and the profiled cluster's per-task rates.
func ioSecondsPerTask(sp StageProfile, cluster cloud.ClusterSpec, slots int) float64 {
	disk := perTaskRate(cluster, slots, true)
	net := perTaskRate(cluster, slots, false)
	tasks := float64(maxInt(sp.Tasks, 1))
	const mb = float64(1 << 20)
	s := float64(sp.InputBytes+sp.ShuffleWriteBytes+2*sp.SpillBytes) / tasks / mb / disk
	s += float64(sp.ShuffleReadBytes) / tasks / mb / net
	return s
}

// perTaskRate returns the per-task MB/s for disk or network, assuming
// slots spread evenly over nodes.
func perTaskRate(cluster cloud.ClusterSpec, slots int, disk bool) float64 {
	perNodeTasks := math.Max(1, float64(slots)/float64(cluster.Count))
	if disk {
		return cluster.Instance.DiskMBps / perNodeTasks
	}
	return cluster.Instance.NetworkMBps / perNodeTasks
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
