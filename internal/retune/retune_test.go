package retune

import (
	"strings"
	"testing"

	"seamlesstune/internal/stat"
)

// stream builds a runtime stream with mean m1 for n1 runs then m2 for n2,
// with relative noise cv.
func stream(seed int64, n1, n2 int, m1, m2, cv float64) []float64 {
	r := stat.NewRNG(seed)
	out := make([]float64, 0, n1+n2)
	for i := 0; i < n1; i++ {
		out = append(out, m1*(1+cv*r.NormFloat64()))
	}
	for i := 0; i < n2; i++ {
		out = append(out, m2*(1+cv*r.NormFloat64()))
	}
	return out
}

func TestFixedThresholdFiresOnJump(t *testing.T) {
	d := NewFixedThreshold(0.2, 5)
	xs := stream(1, 20, 10, 100, 150, 0.02)
	out := Evaluate(d, xs, 20)
	if !out.Detected || out.FalseAlarm {
		t.Errorf("outcome = %+v", out)
	}
	if out.Delay > 3 {
		t.Errorf("delay = %d on a clean 50%% jump", out.Delay)
	}
}

func TestFixedThresholdTooEagerOnNoisyWorkload(t *testing.T) {
	// A workload with 25% runtime CV and NO drift: the fixed threshold
	// false-alarms, the adaptive detector stays quiet. This is §V-D's
	// core argument.
	noisy := stream(2, 120, 0, 100, 100, 0.25)
	fixed := Evaluate(NewFixedThreshold(0.2, 5), noisy, -1)
	if !fixed.FalseAlarm {
		t.Error("fixed threshold did not false-alarm on noisy stationary stream")
	}
	adaptive := Evaluate(NewAdaptive(), noisy, -1)
	if adaptive.FalseAlarm {
		t.Error("adaptive detector false-alarmed on noisy stationary stream")
	}
}

func TestFixedThresholdTooLateOnQuietWorkload(t *testing.T) {
	// A quiet workload (2% CV) degrading by 12%: below the fixed 20%
	// threshold forever, but a clear distribution change.
	quiet := stream(3, 30, 40, 100, 112, 0.02)
	fixed := Evaluate(NewFixedThreshold(0.2, 5), quiet, 30)
	if fixed.Detected {
		t.Errorf("fixed threshold detected a 12%% drift it should miss: %+v", fixed)
	}
	adaptive := Evaluate(NewAdaptive(), quiet, 30)
	if !adaptive.Detected || adaptive.FalseAlarm {
		t.Errorf("adaptive missed the quiet drift: %+v", adaptive)
	}
}

func TestAdaptiveCUSUMDetects(t *testing.T) {
	xs := stream(4, 30, 30, 100, 140, 0.05)
	out := Evaluate(NewAdaptiveCUSUM(), xs, 30)
	if !out.Detected || out.FalseAlarm {
		t.Errorf("outcome = %+v", out)
	}
}

func TestEvaluateResetsDetector(t *testing.T) {
	d := NewAdaptive()
	drift := stream(5, 20, 20, 100, 160, 0.05)
	Evaluate(d, drift, 20)
	// Second evaluation on a stationary stream must not inherit state.
	calm := stream(6, 60, 0, 100, 100, 0.05)
	out := Evaluate(d, calm, -1)
	if out.Detected {
		t.Errorf("state leaked across Evaluate: %+v", out)
	}
}

func TestScoreDetector(t *testing.T) {
	streams := [][]float64{
		stream(7, 25, 25, 100, 150, 0.05), // drift at 25
		stream(8, 60, 0, 100, 100, 0.05),  // no drift
		stream(9, 25, 25, 100, 70, 0.05),  // improvement drift at 25
	}
	changeAts := []int{25, -1, 25}
	s := ScoreDetector(NewAdaptive(), streams, changeAts)
	if s.Scenarios != 3 || s.Drifts != 2 {
		t.Fatalf("score = %+v", s)
	}
	if s.DetectionRate() < 0.5 {
		t.Errorf("detection rate = %v", s.DetectionRate())
	}
	if s.FalseAlarmRate() > 0.34 {
		t.Errorf("false alarm rate = %v", s.FalseAlarmRate())
	}
	if s.Detections > 0 && s.MeanDelay < 0 {
		t.Errorf("mean delay = %v", s.MeanDelay)
	}
}

func TestScoreEmpty(t *testing.T) {
	s := ScoreDetector(NewAdaptive(), nil, nil)
	if s.DetectionRate() != 1 || s.FalseAlarmRate() != 0 {
		t.Errorf("empty score = %+v", s)
	}
}

func TestDetectorNames(t *testing.T) {
	if got := NewFixedThreshold(0.2, 5).Name(); got != "fixed+20%" {
		t.Errorf("name = %q", got)
	}
	if !strings.HasPrefix(NewAdaptive().Name(), "adaptive") {
		t.Errorf("name = %q", NewAdaptive().Name())
	}
	if !strings.HasPrefix(NewAdaptiveCUSUM().Name(), "adaptive") {
		t.Errorf("name = %q", NewAdaptiveCUSUM().Name())
	}
}

func TestResetClearsFixedBaseline(t *testing.T) {
	d := NewFixedThreshold(0.1, 3)
	for _, v := range []float64{100, 100, 100, 200} {
		d.Observe(v)
	}
	d.Reset()
	// New baseline learns from scratch: first observations never fire.
	if d.Observe(500) {
		t.Error("fired during warmup after Reset")
	}
}
