// Package retune decides when a workload needs re-tuning (paper §V-D).
// It contrasts the strawman the paper criticizes — a fixed percentage
// threshold on runtime, which fires too often for noisy workloads and too
// late for quiet ones — with adaptive detectors that learn each
// workload's own runtime distribution, plus an evaluation harness that
// scores detectors on drift scenarios.
package retune

import (
	"fmt"

	"seamlesstune/internal/stat"
)

// Detector watches a workload's per-run runtimes and reports when the
// configuration should be re-tuned.
type Detector interface {
	// Name identifies the policy.
	Name() string
	// Observe folds in one run's runtime; true means "re-tune now".
	Observe(runtime float64) bool
	// Reset clears state after a re-tuning completes.
	Reset()
}

// FixedThreshold fires when a run exceeds the baseline mean (learned from
// the first Warmup runs) by more than Pct. This is the paper's example of
// a policy that cannot be right for every workload: what is a marginal
// change for one workload is dramatic for another.
type FixedThreshold struct {
	// Pct is the relative degradation trigger, e.g. 0.2 for +20%.
	Pct float64
	// Warmup is the number of runs used to fix the baseline (default 5).
	Warmup int

	baseline stat.Welford
}

var _ Detector = (*FixedThreshold)(nil)

// NewFixedThreshold returns a fixed-percentage detector.
func NewFixedThreshold(pct float64, warmup int) *FixedThreshold {
	if warmup <= 0 {
		warmup = 5
	}
	return &FixedThreshold{Pct: pct, Warmup: warmup}
}

// Name implements Detector.
func (d *FixedThreshold) Name() string { return fmt.Sprintf("fixed+%d%%", int(d.Pct*100)) }

// Observe implements Detector.
func (d *FixedThreshold) Observe(runtime float64) bool {
	if d.baseline.N() < d.Warmup {
		d.baseline.Add(runtime)
		return false
	}
	return runtime > d.baseline.Mean()*(1+d.Pct)
}

// Reset implements Detector.
func (d *FixedThreshold) Reset() { d.baseline = stat.Welford{} }

// Adaptive wraps a distribution-change detector: instead of a fixed
// percentage, it tests whether recent runtimes come from a different
// distribution than the reference window, so its sensitivity scales with
// each workload's own variance.
type Adaptive struct {
	inner stat.ChangeDetector
	label string
}

var _ Detector = (*Adaptive)(nil)

// NewAdaptive returns the default adaptive detector: a windowed
// Mann-Whitney test (reference 12 runs, recent 5, α = 0.002).
func NewAdaptive() *Adaptive {
	return &Adaptive{
		inner: stat.NewWindowedMannWhitney(12, 5, 0.002),
		label: "adaptive-mw",
	}
}

// NewAdaptiveCUSUM returns an adaptive detector built on a two-sided
// CUSUM chart (slack 0.75σ, threshold 6σ).
func NewAdaptiveCUSUM() *Adaptive {
	return &Adaptive{
		inner: stat.NewCUSUM(0.75, 6, 8),
		label: "adaptive-cusum",
	}
}

// Name implements Detector.
func (d *Adaptive) Name() string { return d.label }

// Observe implements Detector.
func (d *Adaptive) Observe(runtime float64) bool { return d.inner.Observe(runtime) }

// Reset implements Detector.
func (d *Adaptive) Reset() { d.inner.Reset() }

// Outcome scores a detector on one runtime stream.
type Outcome struct {
	// Detected reports whether the detector ever fired.
	Detected bool
	// FireIndex is the first firing position (-1 if never).
	FireIndex int
	// Delay is FireIndex - changeAt when the stream drifts and the
	// detector fired at or after the change (otherwise 0).
	Delay int
	// FalseAlarm marks firing before the change point (or at all, for
	// no-change streams).
	FalseAlarm bool
}

// Evaluate feeds a runtime stream to d and scores the result against the
// known change point (changeAt < 0 means the stream never drifts).
func Evaluate(d Detector, stream []float64, changeAt int) Outcome {
	d.Reset()
	out := Outcome{FireIndex: -1}
	for i, v := range stream {
		if d.Observe(v) {
			out.Detected = true
			out.FireIndex = i
			break
		}
	}
	if !out.Detected {
		return out
	}
	if changeAt < 0 || out.FireIndex < changeAt {
		out.FalseAlarm = true
		return out
	}
	out.Delay = out.FireIndex - changeAt
	return out
}

// Score aggregates outcomes across scenarios into the metrics the paper's
// SLO discussion needs: detection rate on true drifts, false-alarm rate,
// and mean detection delay.
type Score struct {
	Scenarios   int
	Drifts      int
	Detections  int
	FalseAlarms int
	MeanDelay   float64
}

// ScoreDetector evaluates d on each (stream, changeAt) scenario.
func ScoreDetector(d Detector, streams [][]float64, changeAts []int) Score {
	var s Score
	var delaySum float64
	for i, stream := range streams {
		changeAt := -1
		if i < len(changeAts) {
			changeAt = changeAts[i]
		}
		out := Evaluate(d, stream, changeAt)
		s.Scenarios++
		if changeAt >= 0 {
			s.Drifts++
			if out.Detected && !out.FalseAlarm {
				s.Detections++
				delaySum += float64(out.Delay)
			}
		}
		if out.FalseAlarm {
			s.FalseAlarms++
		}
	}
	if s.Detections > 0 {
		s.MeanDelay = delaySum / float64(s.Detections)
	}
	return s
}

// DetectionRate returns detections / drifting scenarios (1 if none).
func (s Score) DetectionRate() float64 {
	if s.Drifts == 0 {
		return 1
	}
	return float64(s.Detections) / float64(s.Drifts)
}

// FalseAlarmRate returns false alarms / all scenarios.
func (s Score) FalseAlarmRate() float64 {
	if s.Scenarios == 0 {
		return 0
	}
	return float64(s.FalseAlarms) / float64(s.Scenarios)
}
