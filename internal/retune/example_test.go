package retune_test

import (
	"fmt"

	"seamlesstune/internal/retune"
	"seamlesstune/internal/stat"
)

// Example contrasts the fixed-threshold strawman with the adaptive
// detector on a noisy workload whose runtime never actually drifts.
func Example() {
	r := stat.NewRNG(1)
	fixed := retune.NewFixedThreshold(0.10, 5) // "re-tune on +10%"
	adaptive := retune.NewAdaptive()

	fixedFired, adaptiveFired := false, false
	for i := 0; i < 60; i++ {
		// 20% run-to-run noise, stationary mean: nothing to re-tune.
		runtime := 100 * (1 + 0.2*r.NormFloat64())
		if fixed.Observe(runtime) {
			fixedFired = true
		}
		if adaptive.Observe(runtime) {
			adaptiveFired = true
		}
	}
	fmt.Printf("fixed threshold false-alarmed: %v\n", fixedFired)
	fmt.Printf("adaptive detector false-alarmed: %v\n", adaptiveFired)
	// Output:
	// fixed threshold false-alarmed: true
	// adaptive detector false-alarmed: false
}
