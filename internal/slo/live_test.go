package slo

import (
	"math"
	"strings"
	"testing"
)

func TestBurnRateAndProjectionAtTrialZeroAndOne(t *testing.T) {
	// Trial 0: no data, no burn rate, no projection, no breach.
	p := Progress{}
	if got := p.BurnRate(); got != 0 {
		t.Errorf("burn rate at trial 0 = %v, want 0", got)
	}
	if got := p.ProjectedSpend(30); got != 0 {
		t.Errorf("projection at trial 0 = %v, want 0", got)
	}
	lo := LiveObjective{TuningBudgetUSD: 0.01}
	if v := lo.LiveViolations(p, 30); len(v) != 0 {
		t.Errorf("trial-0 violations = %v, want none", v)
	}

	// Trial 1: projection is the first-trial cost times the budget —
	// deliberately aggressive so runaway spend is flagged immediately.
	p = Progress{Trials: 1, SpendUSD: 0.5}
	if got := p.BurnRate(); got != 0.5 {
		t.Errorf("burn rate at trial 1 = %v, want 0.5", got)
	}
	if got := p.ProjectedSpend(30); got != 15 {
		t.Errorf("projection at trial 1 = %v, want 15", got)
	}
	v := lo.LiveViolations(p, 30)
	if len(v) != 1 || !strings.Contains(v[0], "exceeds budget") {
		t.Errorf("trial-1 violations = %v, want one spend breach", v)
	}
}

func TestProjectedSpendBounds(t *testing.T) {
	p := Progress{Trials: 10, SpendUSD: 2}
	// Past the budget, projection equals actual spend (no extrapolation
	// backwards).
	if got := p.ProjectedSpend(5); got != 2 {
		t.Errorf("projection with totalTrials < trials = %v, want 2", got)
	}
	if got := p.ProjectedSpend(10); got != 2 {
		t.Errorf("projection at exactly totalTrials = %v, want 2", got)
	}
	if got := p.ProjectedSpend(0); got != 0 {
		t.Errorf("projection with zero budget = %v, want 0", got)
	}
	if got := p.ProjectedSpend(20); math.Abs(got-4) > 1e-12 {
		t.Errorf("projection at 2x trials = %v, want 4", got)
	}
}

func TestZeroBudgetObjectiveNeverViolates(t *testing.T) {
	// All-zero contract: unconstrained, no violations no matter the state.
	var lo LiveObjective
	states := []Progress{
		{},
		{Trials: 1, SpendUSD: 1e9},
		{Trials: 100, SpendUSD: 1e12, HasIncumbent: true, BestRuntimeS: 1e9, BestCostUSD: 1e9},
	}
	for _, p := range states {
		if v := lo.LiveViolations(p, 10); len(v) != 0 {
			t.Errorf("unconstrained contract violated at %+v: %v", p, v)
		}
	}
	// Attainment with no active clauses is trivially 1.
	if got := (Objective{}).Attainment(100, 100, 0); got != 1 {
		t.Errorf("attainment of empty objective = %v, want 1", got)
	}
}

func TestActualSpendBreachTakesPrecedenceOverProjection(t *testing.T) {
	lo := LiveObjective{TuningBudgetUSD: 1}
	p := Progress{Trials: 2, SpendUSD: 1.5}
	v := lo.LiveViolations(p, 30)
	if len(v) != 1 {
		t.Fatalf("violations = %v, want exactly one", v)
	}
	if !strings.Contains(v[0], "tuning spend $1.5") {
		t.Errorf("want the actual-spend breach, got %q", v[0])
	}
}

func TestIncumbentClauseViolations(t *testing.T) {
	lo := LiveObjective{
		Objective: Objective{DeadlineS: 60, BudgetUSDPerRun: 0.10},
	}
	// No incumbent yet: per-run clauses cannot fire.
	p := Progress{Trials: 3, SpendUSD: 0.01}
	if v := lo.LiveViolations(p, 30); len(v) != 0 {
		t.Errorf("no-incumbent violations = %v, want none", v)
	}
	p.HasIncumbent = true
	p.BestRuntimeS, p.BestCostUSD = 90, 0.25
	v := lo.LiveViolations(p, 30)
	if len(v) != 2 {
		t.Fatalf("violations = %v, want deadline + per-run cost", v)
	}
	if !strings.Contains(v[0], "deadline") || !strings.Contains(v[1], "per-run budget") {
		t.Errorf("unexpected violation text: %v", v)
	}
}

func TestAttainmentClauses(t *testing.T) {
	o := Objective{WithinPctOfOptimal: 0.10, DeadlineS: 60, BudgetUSDPerRun: 0.10}
	cases := []struct {
		name                       string
		runtime, cost, optimal, at float64
	}{
		{"all met", 55, 0.05, 52, 1},
		{"deadline only (optimal unknown)", 55, 0.50, 0, 0.5},
		{"none met", 90, 0.50, 10, 0},
		{"within-pct breached only", 55, 0.05, 10, 2.0 / 3.0},
	}
	for _, tc := range cases {
		if got := o.Attainment(tc.runtime, tc.cost, tc.optimal); math.Abs(got-tc.at) > 1e-12 {
			t.Errorf("%s: attainment = %v, want %v", tc.name, got, tc.at)
		}
	}
}

func TestNeverAmortizingLedger(t *testing.T) {
	cases := []struct {
		name string
		l    Ledger
	}{
		{"no saving", Ledger{TuningCostUSD: 10, OldRunCostUSD: 1, NewRunCostUSD: 1}},
		{"regression", Ledger{TuningCostUSD: 10, OldRunCostUSD: 1, NewRunCostUSD: 2}},
		{"zero costs", Ledger{}},
	}
	for _, tc := range cases {
		if _, err := tc.l.RunsToAmortize(); err != ErrNeverAmortizes {
			t.Errorf("%s: err = %v, want ErrNeverAmortizes", tc.name, err)
		}
		// Net saving must be monotone non-increasing in the never-amortizing
		// regime: more runs never dig the hole shallower.
		if tc.l.NetSavingAfter(100) > tc.l.NetSavingAfter(10) {
			t.Errorf("%s: net saving improved with more runs despite no per-run saving", tc.name)
		}
	}
	// Sanity: a free tuning session with zero saving amortizes never, not
	// instantly — the error is about per-run saving, not the bill.
	free := Ledger{TuningCostUSD: 0, OldRunCostUSD: 1, NewRunCostUSD: 1}
	if _, err := free.RunsToAmortize(); err != ErrNeverAmortizes {
		t.Errorf("free tuning with no saving: err = %v, want ErrNeverAmortizes", err)
	}
}
