package slo

import "fmt"

// Progress is a live snapshot of a running tuning session — the state
// the telemetry layer evaluates the session's Objective against after
// every trial.
type Progress struct {
	// Trials is how many budgeted executions (trials + probes + the
	// baseline) have completed.
	Trials int
	// SpendUSD is the cumulative tuning spend so far.
	SpendUSD float64
	// BestRuntimeS / BestCostUSD describe the incumbent (best successful
	// configuration found so far); meaningful only when HasIncumbent.
	BestRuntimeS float64
	BestCostUSD  float64
	HasIncumbent bool
}

// BurnRate is the average tuning spend per completed trial — the
// dollars-per-trial velocity a provider shows its tenants. Zero before
// the first trial.
func (p Progress) BurnRate() float64 {
	if p.Trials <= 0 {
		return 0
	}
	return p.SpendUSD / float64(p.Trials)
}

// ProjectedSpend linearly extrapolates the session bill at budget
// exhaustion: spend/trials · totalTrials. Before the first trial there
// is nothing to extrapolate from and it returns 0 — callers must not
// declare a budget breach at trial 0.
func (p Progress) ProjectedSpend(totalTrials int) float64 {
	if p.Trials <= 0 || totalTrials <= 0 {
		return 0
	}
	if totalTrials <= p.Trials {
		return p.SpendUSD
	}
	return p.BurnRate() * float64(totalTrials)
}

// Attainment returns the fraction of the objective's active clauses the
// achieved (runtime, cost) meets, in [0, 1]. A zero optimalS disables
// the within-X% clause (the live path usually has no optimum estimate).
// With no active clauses the objective is trivially attained (1).
func (o Objective) Attainment(runtimeS, costUSD, optimalS float64) float64 {
	active, met := 0, 0
	if o.WithinPctOfOptimal > 0 && optimalS > 0 {
		active++
		if Effectiveness(runtimeS, optimalS) <= o.WithinPctOfOptimal {
			met++
		}
	}
	if o.DeadlineS > 0 {
		active++
		if runtimeS <= o.DeadlineS {
			met++
		}
	}
	if o.BudgetUSDPerRun > 0 {
		active++
		if costUSD <= o.BudgetUSDPerRun {
			met++
		}
	}
	if active == 0 {
		return 1
	}
	return float64(met) / float64(active)
}

// LiveObjective pairs the per-run Objective with session-level tuning
// constraints — the contract a tenant attaches to a tuning job.
type LiveObjective struct {
	Objective
	// TuningBudgetUSD caps the total tuning spend for the session. Zero
	// means unconstrained.
	TuningBudgetUSD float64
}

// LiveViolations evaluates the live contract against in-flight progress
// and returns human-readable breaches: actual spend over the tuning
// budget, projected spend over the tuning budget (once at least one
// trial has landed), and the incumbent missing its per-run deadline or
// cost budget. An unconstrained contract never violates.
func (lo LiveObjective) LiveViolations(p Progress, totalTrials int) []string {
	var out []string
	if lo.TuningBudgetUSD > 0 {
		if p.SpendUSD > lo.TuningBudgetUSD {
			out = append(out, fmt.Sprintf("tuning spend $%.4f exceeds budget $%.4f", p.SpendUSD, lo.TuningBudgetUSD))
		} else if proj := p.ProjectedSpend(totalTrials); proj > lo.TuningBudgetUSD {
			out = append(out, fmt.Sprintf("projected tuning spend $%.4f (%d trials at $%.4f/trial) exceeds budget $%.4f",
				proj, totalTrials, p.BurnRate(), lo.TuningBudgetUSD))
		}
	}
	if p.HasIncumbent {
		if lo.DeadlineS > 0 && p.BestRuntimeS > lo.DeadlineS {
			out = append(out, fmt.Sprintf("incumbent runtime %.1fs exceeds deadline %.1fs", p.BestRuntimeS, lo.DeadlineS))
		}
		if lo.BudgetUSDPerRun > 0 && p.BestCostUSD > lo.BudgetUSDPerRun {
			out = append(out, fmt.Sprintf("incumbent cost $%.4f exceeds per-run budget $%.4f", p.BestCostUSD, lo.BudgetUSDPerRun))
		}
	}
	return out
}
