// Package slo implements the paper's fourth principle: augmenting
// service-level objectives with metrics for tuning effectiveness (§IV-D,
// §V-C). It provides the "within X% of optimal runtime" objective, the
// candidate effectiveness metrics §V-C enumerates, tuning-cost
// amortization accounting (§IV-C), and cost/runtime trade-off frontiers.
package slo

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Objective is a user-settable high-level goal. Zero fields are
// unconstrained.
type Objective struct {
	// WithinPctOfOptimal requires best-found runtime within X% of the
	// (estimated) optimum, e.g. 0.10 for 10%.
	WithinPctOfOptimal float64
	// DeadlineS caps acceptable runtime in seconds.
	DeadlineS float64
	// BudgetUSDPerRun caps acceptable per-run cost.
	BudgetUSDPerRun float64
}

// Violations returns human-readable violations of the objective by an
// achieved (runtime, cost) against a reference optimal runtime. A zero
// reference disables the within-X% clause.
func (o Objective) Violations(runtimeS, costUSD, optimalS float64) []string {
	var out []string
	if o.WithinPctOfOptimal > 0 && optimalS > 0 {
		if gap := Effectiveness(runtimeS, optimalS); gap > o.WithinPctOfOptimal {
			out = append(out, fmt.Sprintf("runtime %.1fs is %.0f%% above optimal %.1fs (allowed %.0f%%)",
				runtimeS, gap*100, optimalS, o.WithinPctOfOptimal*100))
		}
	}
	if o.DeadlineS > 0 && runtimeS > o.DeadlineS {
		out = append(out, fmt.Sprintf("runtime %.1fs exceeds deadline %.1fs", runtimeS, o.DeadlineS))
	}
	if o.BudgetUSDPerRun > 0 && costUSD > o.BudgetUSDPerRun {
		out = append(out, fmt.Sprintf("cost $%.4f exceeds budget $%.4f", costUSD, o.BudgetUSDPerRun))
	}
	return out
}

// Met reports whether the objective holds.
func (o Objective) Met(runtimeS, costUSD, optimalS float64) bool {
	return len(o.Violations(runtimeS, costUSD, optimalS)) == 0
}

// Effectiveness is the paper's headline tuning-efficiency metric: the
// relative gap to the optimal runtime ((achieved-optimal)/optimal). §IV-D
// concedes the true optimum is unknowable; callers substitute "the best
// runtime of similar workloads ever run in the cloud".
func Effectiveness(achievedS, optimalS float64) float64 {
	if optimalS <= 0 {
		return math.Inf(1)
	}
	g := (achievedS - optimalS) / optimalS
	if g < 0 {
		return 0
	}
	return g
}

// ImprovementOverDefault is the alternative metric §V-C discusses for
// spaces that have a default configuration: the relative runtime saving
// against it.
func ImprovementOverDefault(achievedS, defaultS float64) float64 {
	if defaultS <= 0 {
		return 0
	}
	imp := (defaultS - achievedS) / defaultS
	if imp < 0 {
		return 0
	}
	return imp
}

// ---------------------------------------------------------------------------
// Tuning-cost amortization (§IV-C)

// Ledger tracks what tuning cost and what it saves, per workload.
type Ledger struct {
	// TuningCostUSD is the total cost of tuning executions.
	TuningCostUSD float64
	// OldRunCostUSD is the per-run cost before tuning.
	OldRunCostUSD float64
	// NewRunCostUSD is the per-run cost after tuning.
	NewRunCostUSD float64
}

// ErrNeverAmortizes is returned when the tuned configuration is not
// cheaper per run than the old one.
var ErrNeverAmortizes = errors.New("slo: tuned configuration saves nothing per run")

// RunsToAmortize returns how many production runs are needed before the
// accumulated per-run savings repay the tuning bill — the quantity the
// paper compares against the workload's actual run count before the next
// re-tuning ("500 tuning runs vs 90 normal runs in 3 months").
func (l Ledger) RunsToAmortize() (int, error) {
	saving := l.OldRunCostUSD - l.NewRunCostUSD
	if saving <= 0 {
		return 0, ErrNeverAmortizes
	}
	return int(math.Ceil(l.TuningCostUSD / saving)), nil
}

// NetSavingAfter returns the net dollar position after n production runs
// (negative while tuning is still being paid off).
func (l Ledger) NetSavingAfter(n int) float64 {
	return float64(n)*(l.OldRunCostUSD-l.NewRunCostUSD) - l.TuningCostUSD
}

// ---------------------------------------------------------------------------
// Cost/runtime trade-off (§IV-D: "results quickly no matter the cost, or
// wait a long time?")

// Point is one configuration's achieved runtime and per-run cost.
type Point struct {
	Label    string
	RuntimeS float64
	CostUSD  float64
}

// ParetoFrontier returns the subset of points not dominated in both
// runtime and cost, sorted by runtime ascending.
func ParetoFrontier(points []Point) []Point {
	sorted := append([]Point(nil), points...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].RuntimeS != sorted[j].RuntimeS {
			return sorted[i].RuntimeS < sorted[j].RuntimeS
		}
		return sorted[i].CostUSD < sorted[j].CostUSD
	})
	var out []Point
	bestCost := math.Inf(1)
	for _, p := range sorted {
		if p.CostUSD < bestCost {
			out = append(out, p)
			bestCost = p.CostUSD
		}
	}
	return out
}

// PickForDeadline returns the cheapest frontier point meeting the
// deadline, or ok=false when none does.
func PickForDeadline(frontier []Point, deadlineS float64) (Point, bool) {
	best := Point{CostUSD: math.Inf(1)}
	ok := false
	for _, p := range frontier {
		if p.RuntimeS <= deadlineS && p.CostUSD < best.CostUSD {
			best, ok = p, true
		}
	}
	return best, ok
}

// PickForBudget returns the fastest frontier point within the per-run
// budget, or ok=false when none fits.
func PickForBudget(frontier []Point, budgetUSD float64) (Point, bool) {
	best := Point{RuntimeS: math.Inf(1)}
	ok := false
	for _, p := range frontier {
		if p.CostUSD <= budgetUSD && p.RuntimeS < best.RuntimeS {
			best, ok = p, true
		}
	}
	return best, ok
}
