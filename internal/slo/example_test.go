package slo_test

import (
	"fmt"

	"seamlesstune/internal/slo"
)

// ExampleLedger_RunsToAmortize answers the paper's §IV-C question: does a
// tuning investment pay for itself before re-tuning is needed?
func ExampleLedger_RunsToAmortize() {
	ledger := slo.Ledger{
		TuningCostUSD: 50,   // the provider's tuning bill
		OldRunCostUSD: 2.00, // per production run before tuning
		NewRunCostUSD: 0.75, // per production run after
	}
	n, err := ledger.RunsToAmortize()
	if err != nil {
		fmt.Println("never amortizes")
		return
	}
	fmt.Printf("amortizes after %d runs; net after 90 runs: $%.2f\n", n, ledger.NetSavingAfter(90))
	// Output:
	// amortizes after 40 runs; net after 90 runs: $62.50
}

// ExampleParetoFrontier picks cluster choices for two different SLOs.
func ExampleParetoFrontier() {
	candidates := []slo.Point{
		{Label: "2 small nodes", RuntimeS: 1800, CostUSD: 0.10},
		{Label: "8 medium nodes", RuntimeS: 240, CostUSD: 0.22},
		{Label: "16 big nodes", RuntimeS: 45, CostUSD: 0.55},
		{Label: "8 big nodes (dominated)", RuntimeS: 300, CostUSD: 0.60},
	}
	frontier := slo.ParetoFrontier(candidates)
	if p, ok := slo.PickForDeadline(frontier, 300); ok {
		fmt.Println("within 5 minutes:", p.Label)
	}
	if p, ok := slo.PickForBudget(frontier, 0.15); ok {
		fmt.Println("under $0.15/run: ", p.Label)
	}
	// Output:
	// within 5 minutes: 8 medium nodes
	// under $0.15/run:  2 small nodes
}
