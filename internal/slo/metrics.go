package slo

import "seamlesstune/internal/obs"

// Live-SLO instrumentation: the telemetry tier turns these counters into
// rate series, and the alert engine's burn-rate rules divide
// slo_violations_total by slo_checks_total to measure error-budget burn
// (see internal/telemetry.DefaultRules).
var (
	mChecks = obs.Default().Counter("slo_checks_total",
		"Live SLO evaluations performed (one per trial with active clauses).")
	mViolations = obs.Default().Counter("slo_violations_total",
		"Live SLO evaluations that found at least one violated clause.")
	mAttainment = obs.Default().Gauge("slo_attainment",
		"Fraction of active SLO clauses the current incumbent meets.")
)

// RecordCheck counts one live SLO evaluation and whether it violated.
func RecordCheck(violated bool) {
	mChecks.Inc()
	if violated {
		mViolations.Inc()
	}
}

// RecordAttainment publishes the incumbent's clause attainment.
func RecordAttainment(a float64) { mAttainment.Set(a) }
