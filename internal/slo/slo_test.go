package slo

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestEffectiveness(t *testing.T) {
	if got := Effectiveness(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Effectiveness = %v, want 0.1", got)
	}
	if got := Effectiveness(90, 100); got != 0 {
		t.Errorf("better-than-optimal clamps to 0, got %v", got)
	}
	if got := Effectiveness(100, 0); !math.IsInf(got, 1) {
		t.Errorf("unknown optimum = %v, want +Inf", got)
	}
}

func TestImprovementOverDefault(t *testing.T) {
	if got := ImprovementOverDefault(20, 100); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("improvement = %v, want 0.8", got)
	}
	if got := ImprovementOverDefault(120, 100); got != 0 {
		t.Errorf("regression clamps to 0, got %v", got)
	}
	if got := ImprovementOverDefault(10, 0); got != 0 {
		t.Errorf("no default = %v, want 0", got)
	}
}

func TestObjectiveViolations(t *testing.T) {
	o := Objective{WithinPctOfOptimal: 0.10, DeadlineS: 200, BudgetUSDPerRun: 1}
	// All good.
	if v := o.Violations(105, 0.5, 100); len(v) != 0 {
		t.Errorf("violations = %v", v)
	}
	if !o.Met(105, 0.5, 100) {
		t.Error("Met = false for compliant run")
	}
	// All three violated.
	v := o.Violations(250, 2, 100)
	if len(v) != 3 {
		t.Fatalf("violations = %v", v)
	}
	if !strings.Contains(v[0], "above optimal") {
		t.Errorf("first violation = %q", v[0])
	}
	// Unknown optimum disables the within-X% clause.
	if v := o.Violations(250, 0.5, 0); len(v) != 1 {
		t.Errorf("violations without optimum = %v", v)
	}
}

func TestLedgerAmortization(t *testing.T) {
	l := Ledger{TuningCostUSD: 100, OldRunCostUSD: 5, NewRunCostUSD: 3}
	n, err := l.RunsToAmortize()
	if err != nil || n != 50 {
		t.Errorf("RunsToAmortize = %d, %v; want 50", n, err)
	}
	if got := l.NetSavingAfter(50); got != 0 {
		t.Errorf("NetSavingAfter(50) = %v, want 0", got)
	}
	if got := l.NetSavingAfter(60); got != 20 {
		t.Errorf("NetSavingAfter(60) = %v, want 20", got)
	}
	bad := Ledger{TuningCostUSD: 100, OldRunCostUSD: 3, NewRunCostUSD: 5}
	if _, err := bad.RunsToAmortize(); !errors.Is(err, ErrNeverAmortizes) {
		t.Errorf("err = %v", err)
	}
}

func TestParetoFrontier(t *testing.T) {
	points := []Point{
		{"slow-cheap", 100, 1},
		{"fast-pricey", 10, 10},
		{"dominated", 100, 5},  // worse cost than slow-cheap at same runtime
		{"dominated2", 50, 12}, // slower and pricier than fast-pricey
		{"mid", 50, 4},
	}
	f := ParetoFrontier(points)
	if len(f) != 3 {
		t.Fatalf("frontier = %+v", f)
	}
	// Sorted by runtime ascending with strictly decreasing cost.
	for i := 1; i < len(f); i++ {
		if f[i].RuntimeS < f[i-1].RuntimeS || f[i].CostUSD >= f[i-1].CostUSD {
			t.Fatalf("frontier not monotone: %+v", f)
		}
	}
	for _, p := range f {
		if strings.HasPrefix(p.Label, "dominated") {
			t.Errorf("dominated point %q on frontier", p.Label)
		}
	}
}

func TestPickForDeadline(t *testing.T) {
	f := ParetoFrontier([]Point{{"a", 100, 1}, {"b", 50, 4}, {"c", 10, 10}})
	p, ok := PickForDeadline(f, 60)
	if !ok || p.Label != "b" {
		t.Errorf("PickForDeadline = %+v, %v", p, ok)
	}
	if _, ok := PickForDeadline(f, 5); ok {
		t.Error("impossible deadline satisfied")
	}
}

func TestPickForBudget(t *testing.T) {
	f := ParetoFrontier([]Point{{"a", 100, 1}, {"b", 50, 4}, {"c", 10, 10}})
	p, ok := PickForBudget(f, 5)
	if !ok || p.Label != "b" {
		t.Errorf("PickForBudget = %+v, %v", p, ok)
	}
	if _, ok := PickForBudget(f, 0.5); ok {
		t.Error("impossible budget satisfied")
	}
}
