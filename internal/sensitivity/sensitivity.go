// Package sensitivity implements incremental significance analysis of
// configuration knobs — the Tuneful-style front end of config-space
// pruning. A tuning session (or a workload class's accumulated history)
// streams (configuration, objective) observations into an Analyzer; every
// k observations the analyzer refits a random forest on the full-dimension
// unit encodings, reads off impurity-based feature importances with
// across-tree confidence, and proposes the small set of knobs that carry
// a target fraction of the total importance mass. The active set only
// shrinks once consecutive evaluations agree (a stability test over the
// proposed sets — importances must have converged before dimensions are
// dropped), and it re-expands immediately when a previously pruned knob's
// importance resurges into the significant set.
//
// Everything is a pure function of (seed, observation sequence): forest
// seeds derive from the analyzer seed and the sample size, ordering ties
// break on declaration index, and no goroutines are involved — so two
// replays of the same session propose identical active sets.
package sensitivity

import (
	"math"
	"sort"
	"strconv"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/learn"
	"seamlesstune/internal/stat"
)

// Config tunes the analyzer. The zero value selects the defaults noted on
// each field.
type Config struct {
	// Every is the re-evaluation cadence: the analysis reruns after this
	// many new observations (default 10).
	Every int
	// MinSamples gates the first analysis: no pruning before this many
	// observations have landed (default 2×dim, at least 20).
	MinSamples int
	// Mass is the cumulative importance mass the significant set must
	// carry (default 0.95). Knobs are admitted in decreasing importance
	// order until the running total reaches it or RelMin cuts them off.
	Mass float64
	// RelMin is the significance cutoff relative to the strongest knob:
	// a knob whose importance falls below RelMin × the maximum importance
	// never counts as significant (default 0.1). This keeps churning
	// noise knobs out of the proposal so the stability test can converge.
	RelMin float64
	// TopK caps the active set size (0 = no cap beyond Mass).
	TopK int
	// MinActive floors the active set size (default 4): pruning below a
	// handful of knobs saves nothing and risks pinning real signal.
	MinActive int
	// StableRounds is how many consecutive evaluations must agree (per
	// Overlap) before the active set is allowed to shrink (default 2).
	StableRounds int
	// Overlap is the minimum Jaccard overlap between consecutive proposed
	// sets that counts as agreement (default 0.6).
	Overlap float64
	// Trees sizes the importance forest (default 40).
	Trees int
	// Seed drives forest resampling. Derive it from the session seed so
	// sessions replay bit-for-bit.
	Seed int64
}

func (c Config) withDefaults(dim int) Config {
	if c.Every <= 0 {
		c.Every = 10
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 2 * dim
		if c.MinSamples < 20 {
			c.MinSamples = 20
		}
	}
	if c.Mass <= 0 || c.Mass > 1 {
		c.Mass = 0.95
	}
	if c.RelMin <= 0 || c.RelMin >= 1 {
		c.RelMin = 0.1
	}
	if c.MinActive <= 0 {
		c.MinActive = 4
	}
	if c.StableRounds <= 0 {
		c.StableRounds = 2
	}
	if c.Overlap <= 0 || c.Overlap > 1 {
		c.Overlap = 0.6
	}
	if c.Trees <= 0 {
		c.Trees = 40
	}
	return c
}

// Decision is the outcome of one analysis round.
type Decision struct {
	// Epoch counts adopted active-set changes (0 = still full space).
	Epoch int
	// Samples is the observation count the analysis ran on.
	Samples int
	// Active is the current active knob set in declaration order; nil
	// means the full space (no pruning adopted yet).
	Active []string
	// Dropped is the complement of Active in declaration order (empty
	// while unpruned).
	Dropped []string
	// Importance is the full-dimension importance vector in declaration
	// order (sums to 1 once the forest finds signal).
	Importance []float64
	// Confidence scores each importance in [0, 1]: mean/(mean+std) across
	// the forest's trees — 1 when every tree agrees, 0 for no signal.
	Confidence []float64
	// Stable reports that the latest proposed set agreed with its
	// predecessor (the stability test passed this round).
	Stable bool
	// Changed reports that this round adopted a new active set.
	Changed bool
	// Reason explains the round: "warmup", "unstable", "converged",
	// "resurgence", "steady".
	Reason string
}

// Analyzer accumulates observations and runs the incremental analysis.
// It is single-session state, like a Tuner: not safe for concurrent use.
type Analyzer struct {
	space *confspace.Space
	cfg   Config
	names []string

	xs        [][]float64 // full-dim unit encodings
	ys        []float64   // log-objective
	sinceEval int

	proposed    map[string]bool // last proposed significant set
	stableRuns  int
	active      []string // adopted active set; nil = full space
	activeSet   map[string]bool
	epoch       int
	lastDec     Decision
	hasDecision bool
}

// New returns an analyzer over the given full configuration space.
func New(space *confspace.Space, cfg Config) *Analyzer {
	return &Analyzer{
		space: space,
		cfg:   cfg.withDefaults(space.Dim()),
		names: space.Names(),
	}
}

// Observe appends one (configuration, objective) sample. Configurations
// are full-space; objectives are in scorer units (the analyzer works on
// log-objective internally, matching the tuners' runtime modeling).
func (a *Analyzer) Observe(cfg confspace.Config, objective float64) {
	a.xs = append(a.xs, a.space.Encode(cfg))
	a.ys = append(a.ys, math.Log(math.Max(objective, 1e-6)))
	a.sinceEval++
}

// Samples returns the number of observations absorbed.
func (a *Analyzer) Samples() int { return len(a.xs) }

// Active returns the adopted active set (nil while the full space is in
// play) in declaration order.
func (a *Analyzer) Active() []string { return a.active }

// Epoch counts adopted active-set changes.
func (a *Analyzer) Epoch() int { return a.epoch }

// LastDecision returns the most recent analysis outcome (ok=false before
// the first evaluation).
func (a *Analyzer) LastDecision() (Decision, bool) { return a.lastDec, a.hasDecision }

// Due reports whether enough new observations have accumulated for the
// next analysis round.
func (a *Analyzer) Due() bool {
	return len(a.xs) >= a.cfg.MinSamples && a.sinceEval >= a.cfg.Every
}

// Evaluate runs one analysis round: fit the importance forest, propose
// the significant set, apply the stability test, and adopt shrinks (when
// converged) or re-expansions (immediately, when a pruned knob resurges).
// The returned Decision reports the adopted state either way.
func (a *Analyzer) Evaluate() Decision {
	a.sinceEval = 0
	dec := Decision{Epoch: a.epoch, Samples: len(a.xs), Reason: "warmup"}
	if len(a.xs) < a.cfg.MinSamples {
		a.finish(&dec)
		return dec
	}

	imp, conf := a.importances()
	dec.Importance = imp
	dec.Confidence = conf

	order := rank(imp)
	sig := a.significant(order, imp)
	sigSet := a.nameSet(sig)

	// Stability test on the significant set: it must agree with its
	// predecessor for StableRounds consecutive evaluations before a shrink
	// is adopted. (The MinActive padding is deliberately excluded — filler
	// knobs near the noise floor churn between rounds and would otherwise
	// keep the gate from ever passing.)
	if a.proposed != nil && jaccard(sigSet, a.proposed) >= a.cfg.Overlap {
		a.stableRuns++
		dec.Stable = true
	} else {
		a.stableRuns = 1
	}
	a.proposed = sigSet

	switch {
	case a.active != nil && !subset(sigSet, a.activeSet):
		// A pruned knob's importance resurged into the significant set:
		// re-expand immediately — exploration safety beats dimension savings.
		a.adopt(union(a.activeSet, sigSet))
		dec.Reason = "resurgence"
		dec.Changed = true
	case a.stableRuns >= a.cfg.StableRounds:
		// Converged: adopt the significant set padded up to MinActive with
		// the next-ranked knobs, if that actually shrinks the space.
		cand := a.nameSet(pad(sig, order, a.minActive(len(imp))))
		if len(cand) < a.activeDim() {
			a.adopt(cand)
			dec.Reason = "converged"
			dec.Changed = true
		} else if a.active == nil {
			dec.Reason = "unstable"
		} else {
			dec.Reason = "steady"
		}
	case a.active == nil:
		dec.Reason = "unstable"
	default:
		dec.Reason = "steady"
	}
	a.finish(&dec)
	return dec
}

// finish stamps the adopted state onto dec and records it.
func (a *Analyzer) finish(dec *Decision) {
	dec.Epoch = a.epoch
	if a.active != nil {
		dec.Active = append([]string(nil), a.active...)
		dec.Dropped = a.dropped()
	}
	a.lastDec = *dec
	a.hasDecision = true
}

// importances fits the forest and reads mean/confidence vectors. The
// forest seed derives from (analyzer seed, sample size), so the analysis
// is a pure function of the observation sequence.
func (a *Analyzer) importances() (imp, conf []float64) {
	dim := a.space.Dim()
	imp = make([]float64, dim)
	conf = make([]float64, dim)
	rng := stat.NewRNG(stat.DeriveSeed(a.cfg.Seed, "sensitivity", strconv.Itoa(len(a.xs))))
	f, err := learn.FitForest(learn.ForestConfig{Trees: a.cfg.Trees, SampleCap: 1024}, a.xs, a.ys, rng)
	if err != nil {
		return imp, conf
	}
	mean, std := f.Importances()
	copy(imp, mean)
	for d := range conf {
		if d < len(std) && mean[d]+std[d] > 0 {
			conf[d] = mean[d] / (mean[d] + std[d])
		}
	}
	return imp, conf
}

// rank orders dimension indices by decreasing importance, declaration
// index breaking ties — fully deterministic.
func rank(imp []float64) []int {
	order := make([]int, len(imp))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		if imp[order[i]] != imp[order[j]] {
			return imp[order[i]] > imp[order[j]]
		}
		return order[i] < order[j]
	})
	return order
}

// significant walks the ranked dims admitting knobs until the cumulative
// mass target is met, the RelMin noise cutoff triggers, or TopK caps the
// set. Returns indices in rank order (a prefix of order).
func (a *Analyzer) significant(order []int, imp []float64) []int {
	limit := len(imp)
	if a.cfg.TopK > 0 && a.cfg.TopK < limit {
		limit = a.cfg.TopK
	}
	cut := 0.0
	if len(order) > 0 {
		cut = a.cfg.RelMin * imp[order[0]]
	}
	total := 0.0
	sig := make([]int, 0, limit)
	for _, idx := range order {
		if len(sig) >= limit || total >= a.cfg.Mass {
			break
		}
		if imp[idx] < cut || imp[idx] <= 0 {
			break
		}
		sig = append(sig, idx)
		total += imp[idx]
	}
	return sig
}

// pad extends a rank-order prefix with the next-ranked dims up to floor.
func pad(sig, order []int, floor int) []int {
	if len(sig) >= floor {
		return sig
	}
	out := append([]int(nil), sig...)
	for _, idx := range order[len(sig):] {
		if len(out) >= floor {
			break
		}
		out = append(out, idx)
	}
	return out
}

func (a *Analyzer) minActive(dim int) int {
	if a.cfg.MinActive > dim {
		return dim
	}
	return a.cfg.MinActive
}

// nameSet converts dimension indices to a knob-name set.
func (a *Analyzer) nameSet(idxs []int) map[string]bool {
	s := make(map[string]bool, len(idxs))
	for _, idx := range idxs {
		s[a.names[idx]] = true
	}
	return s
}

// adopt installs a new active set (given as a name set) in declaration
// order and advances the epoch.
func (a *Analyzer) adopt(set map[string]bool) {
	a.active = a.active[:0]
	for _, name := range a.names {
		if set[name] {
			a.active = append(a.active, name)
		}
	}
	a.activeSet = set
	a.epoch++
	a.stableRuns = 0
}

// activeDim returns the adopted active dimension (full dim while
// unpruned).
func (a *Analyzer) activeDim() int {
	if a.active == nil {
		return a.space.Dim()
	}
	return len(a.active)
}

// dropped returns the pruned knob names in declaration order.
func (a *Analyzer) dropped() []string {
	if a.active == nil {
		return nil
	}
	out := make([]string, 0, len(a.names)-len(a.active))
	for _, name := range a.names {
		if !a.activeSet[name] {
			out = append(out, name)
		}
	}
	return out
}

func toSet(names []string) map[string]bool {
	s := make(map[string]bool, len(names))
	for _, n := range names {
		s[n] = true
	}
	return s
}

func jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

func subset(a, b map[string]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func union(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}
