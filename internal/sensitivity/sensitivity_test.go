package sensitivity

import (
	"math/rand"
	"reflect"
	"testing"

	"seamlesstune/internal/confspace"
)

// benchSpace builds a dim-wide space where only the first nSignal knobs
// move the objective.
func benchSpace(dim int) *confspace.Space {
	params := make([]confspace.Param, dim)
	for i := range params {
		params[i] = confspace.FloatParam(name(i), 0, 1, 0.5)
	}
	return confspace.MustSpace(params...)
}

func name(i int) string {
	return string(rune('a'+i/10)) + string(rune('0'+i%10)) + ".knob"
}

// objective is dominated by knobs 0 and 1, with a weak contribution from
// knob 2 and pure noise elsewhere.
func objective(cfg confspace.Config, rng *rand.Rand) float64 {
	return 60 +
		40*cfg[name(0)] +
		25*cfg[name(1)]*cfg[name(1)] +
		6*cfg[name(2)] +
		0.5*rng.NormFloat64()
}

// feed streams n random observations into the analyzer, evaluating
// whenever it falls due, and returns every decision made.
func feed(a *Analyzer, space *confspace.Space, n int, seed int64) []Decision {
	rng := rand.New(rand.NewSource(seed))
	var decs []Decision
	for i := 0; i < n; i++ {
		cfg := space.Random(rng)
		a.Observe(cfg, objective(cfg, rng))
		if a.Due() {
			decs = append(decs, a.Evaluate())
		}
	}
	return decs
}

func TestAnalyzerConvergesToSignalKnobs(t *testing.T) {
	space := benchSpace(12)
	a := New(space, Config{Seed: 7, Every: 10, MinSamples: 24, MinActive: 3})
	decs := feed(a, space, 80, 3)
	if len(decs) == 0 {
		t.Fatal("no evaluations ran")
	}
	active := a.Active()
	if active == nil {
		t.Fatalf("analyzer never pruned; last decision %+v", decs[len(decs)-1])
	}
	if len(active) >= space.Dim() {
		t.Fatalf("active set %v did not shrink the space", active)
	}
	got := map[string]bool{}
	for _, n := range active {
		got[n] = true
	}
	for _, sig := range []string{name(0), name(1)} {
		if !got[sig] {
			t.Errorf("dominant knob %s pruned; active = %v", sig, active)
		}
	}
	// Declaration order.
	want := append([]string(nil), active...)
	idx := map[string]int{}
	for i, n := range space.Names() {
		idx[n] = i
	}
	for i := 1; i < len(want); i++ {
		if idx[want[i-1]] > idx[want[i]] {
			t.Fatalf("active set %v not in declaration order", want)
		}
	}
	// The final decision exposes the importance/confidence vectors.
	last := decs[len(decs)-1]
	if len(last.Importance) != space.Dim() || len(last.Confidence) != space.Dim() {
		t.Fatalf("decision vectors %d/%d, want %d", len(last.Importance), len(last.Confidence), space.Dim())
	}
	if last.Importance[0] <= last.Importance[5] {
		t.Errorf("signal knob importance %v not above decoy %v", last.Importance[0], last.Importance[5])
	}
}

// TestAnalyzerStabilityGate verifies no shrink is adopted on the very
// first evaluation: the stability test needs StableRounds consecutive
// agreeing proposals.
func TestAnalyzerStabilityGate(t *testing.T) {
	space := benchSpace(10)
	a := New(space, Config{Seed: 11, Every: 5, MinSamples: 20, StableRounds: 2, MinActive: 3})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		cfg := space.Random(rng)
		a.Observe(cfg, objective(cfg, rng))
	}
	dec := a.Evaluate()
	if dec.Changed || a.Active() != nil {
		t.Fatalf("first evaluation adopted a prune: %+v", dec)
	}
	if dec.Reason != "unstable" {
		t.Fatalf("first evaluation reason %q, want unstable", dec.Reason)
	}
	// Second agreeing evaluation may shrink.
	for i := 0; i < 5; i++ {
		cfg := space.Random(rng)
		a.Observe(cfg, objective(cfg, rng))
	}
	dec = a.Evaluate()
	if !dec.Stable {
		t.Fatalf("second evaluation on same signal not stable: %+v", dec)
	}
	if !dec.Changed || a.Active() == nil {
		t.Fatalf("stable second evaluation did not shrink: %+v", dec)
	}
	if dec.Reason != "converged" {
		t.Fatalf("shrink reason %q, want converged", dec.Reason)
	}
	if dec.Epoch != 1 || a.Epoch() != 1 {
		t.Fatalf("epoch %d/%d after first shrink, want 1", dec.Epoch, a.Epoch())
	}
	if len(dec.Active)+len(dec.Dropped) != space.Dim() {
		t.Fatalf("active %v + dropped %v do not partition the space", dec.Active, dec.Dropped)
	}
}

// TestAnalyzerResurgence drives a regime change — a knob that was noise
// during pruning starts dominating — and checks the active set re-expands.
func TestAnalyzerResurgence(t *testing.T) {
	space := benchSpace(10)
	a := New(space, Config{Seed: 5, Every: 8, MinSamples: 24, MinActive: 3, TopK: 4})
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 60; i++ {
		cfg := space.Random(rng)
		a.Observe(cfg, objective(cfg, rng))
		if a.Due() {
			a.Evaluate()
		}
	}
	if a.Active() == nil {
		t.Fatal("setup: analyzer never pruned")
	}
	pre := len(a.Active())
	dormant := name(7)
	if toSet(a.Active())[dormant] {
		t.Skipf("decoy %s landed in the active set; fixture needs reseeding", dormant)
	}
	// Regime change: the dormant knob now dominates the objective. Keep
	// feeding until re-expansion pulls it back into the active set.
	var resurged bool
	for i := 0; i < 400 && !toSet(a.Active())[dormant]; i++ {
		cfg := space.Random(rng)
		a.Observe(cfg, 60+120*cfg[dormant]+0.5*rng.NormFloat64())
		if a.Due() {
			dec := a.Evaluate()
			if dec.Reason == "resurgence" {
				resurged = true
				if !dec.Changed {
					t.Error("resurgence decision not marked Changed")
				}
			}
		}
	}
	if !resurged {
		t.Fatal("dominant dormant knob never triggered re-expansion")
	}
	if !toSet(a.Active())[dormant] {
		t.Fatalf("resurged knob %s absent from active set %v", dormant, a.Active())
	}
	if len(a.Active()) <= pre-1 {
		t.Fatalf("active set %v did not grow on resurgence (was %d)", a.Active(), pre)
	}
}

// TestAnalyzerDeterministic replays the same observation stream twice and
// requires identical decisions — the same contract the tuners keep.
func TestAnalyzerDeterministic(t *testing.T) {
	space := benchSpace(14)
	run := func() []Decision {
		a := New(space, Config{Seed: 13, Every: 7, MinSamples: 21})
		return feed(a, space, 70, 17)
	}
	first, second := run(), run()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("replay diverged:\nfirst  %+v\nsecond %+v", first, second)
	}
}

func TestAnalyzerTopKAndFloor(t *testing.T) {
	space := benchSpace(12)
	a := New(space, Config{Seed: 3, Every: 6, MinSamples: 24, TopK: 5, MinActive: 5})
	feed(a, space, 60, 29)
	if a.Active() == nil {
		t.Fatal("analyzer never pruned")
	}
	if got := len(a.Active()); got != 5 {
		t.Fatalf("active set size %d, want exactly TopK=MinActive=5", got)
	}
}

func TestAnalyzerWarmupAndDue(t *testing.T) {
	space := benchSpace(6)
	a := New(space, Config{Seed: 1, Every: 4, MinSamples: 10})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 9; i++ {
		cfg := space.Random(rng)
		a.Observe(cfg, objective(cfg, rng))
		if a.Due() {
			t.Fatalf("Due() before MinSamples at %d observations", a.Samples())
		}
	}
	if _, ok := a.LastDecision(); ok {
		t.Fatal("LastDecision reported before any evaluation")
	}
	dec := a.Evaluate() // forced early: must report warmup, adopt nothing
	if dec.Reason != "warmup" || dec.Changed || a.Active() != nil {
		t.Fatalf("forced early evaluation %+v, want warmup no-op", dec)
	}
	cfg := space.Random(rng)
	a.Observe(cfg, objective(cfg, rng))
	for i := 0; i < 3; i++ {
		if a.Due() {
			t.Fatalf("Due() only %d observations after an evaluation", i)
		}
		cfg := space.Random(rng)
		a.Observe(cfg, objective(cfg, rng))
	}
	if !a.Due() {
		t.Fatal("Due() false after Every new observations past MinSamples")
	}
}
