package learn

import (
	"fmt"
	"math"
	"math/rand"
)

// Euclidean returns the Euclidean distance between two vectors (over the
// common prefix when lengths differ).
func Euclidean(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// KMedoidsResult reports a clustering: medoid indices into the input
// sample and a cluster assignment per point.
type KMedoidsResult struct {
	Medoids    []int
	Assignment []int
	Cost       float64
}

// KMedoids clusters points into k groups with the PAM build+swap
// heuristic — AROMA's method for grouping workloads by resource profile.
// rng seeds the build phase; k is clamped to [1, len(points)].
func KMedoids(points [][]float64, k int, rng *rand.Rand, maxIter int) (KMedoidsResult, error) {
	n := len(points)
	if n == 0 {
		return KMedoidsResult{}, fmt.Errorf("%w: no points", ErrNoData)
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if maxIter <= 0 {
		maxIter = 50
	}

	// BUILD: greedy — first medoid minimizes total distance, then each
	// next medoid maximally reduces cost.
	medoids := make([]int, 0, k)
	inMedoid := make([]bool, n)
	best, bestCost := -1, math.Inf(1)
	for i := 0; i < n; i++ {
		c := 0.0
		for j := 0; j < n; j++ {
			c += Euclidean(points[i], points[j])
		}
		if c < bestCost {
			best, bestCost = i, c
		}
	}
	medoids = append(medoids, best)
	inMedoid[best] = true
	nearest := make([]float64, n)
	for j := 0; j < n; j++ {
		nearest[j] = Euclidean(points[best], points[j])
	}
	for len(medoids) < k {
		bestGain, bestIdx := math.Inf(-1), -1
		for i := 0; i < n; i++ {
			if inMedoid[i] {
				continue
			}
			gain := 0.0
			for j := 0; j < n; j++ {
				d := Euclidean(points[i], points[j])
				if d < nearest[j] {
					gain += nearest[j] - d
				}
			}
			if gain > bestGain {
				bestGain, bestIdx = gain, i
			}
		}
		if bestIdx < 0 {
			break
		}
		medoids = append(medoids, bestIdx)
		inMedoid[bestIdx] = true
		for j := 0; j < n; j++ {
			if d := Euclidean(points[bestIdx], points[j]); d < nearest[j] {
				nearest[j] = d
			}
		}
	}
	_ = rng // build phase is deterministic; rng reserved for tie-breaking extensions

	// SWAP: hill-climb medoid replacements until no improvement.
	assign := func() ([]int, float64) {
		a := make([]int, n)
		cost := 0.0
		for j := 0; j < n; j++ {
			bi, bd := 0, math.Inf(1)
			for mi, m := range medoids {
				if d := Euclidean(points[m], points[j]); d < bd {
					bi, bd = mi, d
				}
			}
			a[j] = bi
			cost += bd
		}
		return a, cost
	}
	assignment, cost := assign()
	for iter := 0; iter < maxIter; iter++ {
		improved := false
		for mi := range medoids {
			for cand := 0; cand < n; cand++ {
				if inMedoid[cand] {
					continue
				}
				old := medoids[mi]
				medoids[mi] = cand
				_, newCost := assign()
				if newCost < cost-1e-12 {
					inMedoid[old] = false
					inMedoid[cand] = true
					cost = newCost
					improved = true
				} else {
					medoids[mi] = old
				}
			}
		}
		if !improved {
			break
		}
	}
	assignment, cost = assign()
	return KMedoidsResult{Medoids: medoids, Assignment: assignment, Cost: cost}, nil
}

// Silhouette returns the mean silhouette coefficient of a clustering in
// [-1, 1]; higher means tighter, better-separated clusters. Single-cluster
// results score 0.
func Silhouette(points [][]float64, assignment []int) float64 {
	n := len(points)
	if n == 0 || len(assignment) != n {
		return 0
	}
	k := 0
	for _, a := range assignment {
		if a+1 > k {
			k = a + 1
		}
	}
	if k < 2 {
		return 0
	}
	total, counted := 0.0, 0
	for i := 0; i < n; i++ {
		sums := make([]float64, k)
		counts := make([]int, k)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sums[assignment[j]] += Euclidean(points[i], points[j])
			counts[assignment[j]]++
		}
		own := assignment[i]
		if counts[own] == 0 {
			continue
		}
		a := sums[own] / float64(counts[own])
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || counts[c] == 0 {
				continue
			}
			if m := sums[c] / float64(counts[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}
