package learn

import (
	"fmt"
	"math"
	"math/rand"
)

// SVM is a linear soft-margin classifier trained by stochastic
// sub-gradient descent (Pegasos-style). Labels are ±1.
type SVM struct {
	Weights []float64
	Bias    float64
}

// SVMConfig configures SVM training.
type SVMConfig struct {
	// Lambda is the regularization strength (default 0.01).
	Lambda float64
	// Epochs over the training set (default 50).
	Epochs int
}

// FitSVM trains a linear SVM on features xs with labels ys (±1).
func FitSVM(cfg SVMConfig, xs [][]float64, ys []float64, rng *rand.Rand) (*SVM, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("%w: %d xs, %d ys", ErrNoData, len(xs), len(ys))
	}
	if rng == nil {
		return nil, fmt.Errorf("learn: FitSVM requires an rng")
	}
	if cfg.Lambda <= 0 {
		cfg.Lambda = 0.01
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 50
	}
	dim := len(xs[0])
	m := &SVM{Weights: make([]float64, dim)}
	t := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		order := rng.Perm(len(xs))
		for _, i := range order {
			t++
			eta := 1 / (cfg.Lambda * float64(t))
			margin := ys[i] * (dot(m.Weights, xs[i]) + m.Bias)
			for d := range m.Weights {
				m.Weights[d] *= 1 - eta*cfg.Lambda
			}
			if margin < 1 {
				for d := 0; d < dim && d < len(xs[i]); d++ {
					m.Weights[d] += eta * ys[i] * xs[i][d]
				}
				m.Bias += eta * ys[i]
			}
		}
	}
	return m, nil
}

// Score returns the signed decision value at x.
func (m *SVM) Score(x []float64) float64 { return dot(m.Weights, x) + m.Bias }

// Predict returns the predicted label (±1) at x.
func (m *SVM) Predict(x []float64) float64 {
	if m.Score(x) >= 0 {
		return 1
	}
	return -1
}

func dot(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// NNLS solves min ‖A·w − y‖² subject to w ≥ 0 by projected coordinate
// descent. This is the solver behind Ernest's performance model, whose
// feature terms (serial, per-machine, log, linear) must have non-negative
// contributions to be physically meaningful.
func NNLS(a [][]float64, y []float64, iters int) ([]float64, error) {
	n := len(a)
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("%w: %d rows, %d targets", ErrNoData, n, len(y))
	}
	dim := len(a[0])
	if iters <= 0 {
		iters = 200
	}
	w := make([]float64, dim)
	// Precompute column norms.
	colSq := make([]float64, dim)
	for _, row := range a {
		for d := 0; d < dim && d < len(row); d++ {
			colSq[d] += row[d] * row[d]
		}
	}
	resid := make([]float64, n)
	copy(resid, y) // resid = y - A·w, w = 0 initially
	for it := 0; it < iters; it++ {
		maxDelta := 0.0
		for d := 0; d < dim; d++ {
			if colSq[d] == 0 {
				continue
			}
			// Optimal unconstrained update for coordinate d.
			grad := 0.0
			for i, row := range a {
				if d < len(row) {
					grad += row[d] * resid[i]
				}
			}
			nw := w[d] + grad/colSq[d]
			if nw < 0 {
				nw = 0
			}
			delta := nw - w[d]
			if delta == 0 {
				continue
			}
			for i, row := range a {
				if d < len(row) {
					resid[i] -= delta * row[d]
				}
			}
			w[d] = nw
			if math.Abs(delta) > maxDelta {
				maxDelta = math.Abs(delta)
			}
		}
		if maxDelta < 1e-12 {
			break
		}
	}
	return w, nil
}

// ErnestFeatures maps a (machines, dataFraction) pair into Ernest's model
// terms: [1, s/m, log(m), m] — fixed cost, parallelizable work,
// aggregation-tree depth, and per-machine overhead.
func ErnestFeatures(machines float64, scale float64) []float64 {
	if machines < 1 {
		machines = 1
	}
	if scale <= 0 {
		scale = 1e-9
	}
	return []float64{1, scale / machines, math.Log(machines + 1), machines}
}

// QLearner is a tabular Q-learning agent over discrete states and actions
// — the strategy of Bu et al. for online web-system configuration.
type QLearner struct {
	States  int
	Actions int
	Alpha   float64 // learning rate
	Gamma   float64 // discount
	Epsilon float64 // exploration probability

	q [][]float64
}

// NewQLearner returns an agent with the given table shape and standard
// defaults for unset hyperparameters.
func NewQLearner(states, actions int, alpha, gamma, epsilon float64) *QLearner {
	if states < 1 {
		states = 1
	}
	if actions < 1 {
		actions = 1
	}
	if alpha <= 0 {
		alpha = 0.3
	}
	if gamma < 0 {
		gamma = 0.8
	}
	if epsilon < 0 {
		epsilon = 0.1
	}
	q := make([][]float64, states)
	for s := range q {
		q[s] = make([]float64, actions)
	}
	return &QLearner{States: states, Actions: actions, Alpha: alpha, Gamma: gamma, Epsilon: epsilon, q: q}
}

// Choose picks an action for state s with ε-greedy exploration.
func (l *QLearner) Choose(s int, rng *rand.Rand) int {
	s = clampIdx(s, l.States)
	if rng.Float64() < l.Epsilon {
		return rng.Intn(l.Actions)
	}
	return l.BestAction(s)
}

// BestAction returns the greedy action for state s.
func (l *QLearner) BestAction(s int) int {
	s = clampIdx(s, l.States)
	best, bestQ := 0, math.Inf(-1)
	for a, q := range l.q[s] {
		if q > bestQ {
			best, bestQ = a, q
		}
	}
	return best
}

// Update applies the Q-learning backup for transition (s, a, reward, s').
func (l *QLearner) Update(s, a int, reward float64, next int) {
	s, next = clampIdx(s, l.States), clampIdx(next, l.States)
	a = clampIdx(a, l.Actions)
	bestNext := math.Inf(-1)
	for _, q := range l.q[next] {
		if q > bestNext {
			bestNext = q
		}
	}
	l.q[s][a] += l.Alpha * (reward + l.Gamma*bestNext - l.q[s][a])
}

// Q returns the current value estimate for (s, a).
func (l *QLearner) Q(s, a int) float64 {
	return l.q[clampIdx(s, l.States)][clampIdx(a, l.Actions)]
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
