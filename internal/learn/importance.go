package learn

import "math"

// Feature importances — the significance signal Tuneful-style config-space
// pruning runs on. Importance here is impurity-based: every split node
// credits its feature with the sum-of-squares decrease the split achieved,
// weighted naturally by the node's sample mass (the decrease is computed
// in absolute, unnormalized terms). Per-tree vectors are normalized to sum
// to one, so forests average comparable quantities across trees and the
// across-tree standard deviation doubles as a convergence/confidence
// signal: a feature whose importance varies wildly between bootstrap
// resamples has not been pinned down by the data yet.
//
// Everything below is a pure, sequential function of the fitted trees —
// no randomness, no goroutines — so importances are bit-identical across
// reruns and GOMAXPROCS settings whenever the forest itself is (FitForest
// is a pure function of (cfg, data, rng stream)).

// Dim returns the feature dimensionality the tree was grown on.
func (t *Tree) Dim() int { return t.dim }

// Importances returns the tree's normalized impurity-based feature
// importances (length Dim(), summing to 1; all zeros for a stump or a
// tree whose splits achieved no impurity decrease).
func (t *Tree) Importances() []float64 {
	imp := make([]float64, t.dim)
	accumGains(t.root, imp)
	normalize(imp)
	return imp
}

// accumGains walks the tree crediting each split feature with its
// impurity decrease.
func accumGains(n *node, imp []float64) {
	if n == nil || n.leaf() {
		return
	}
	if n.feature >= 0 && n.feature < len(imp) {
		imp[n.feature] += n.gain
	}
	accumGains(n.left, imp)
	accumGains(n.right, imp)
}

// normalize scales v to sum to 1 in place (no-op for an all-zero vector).
func normalize(v []float64) {
	total := 0.0
	for _, x := range v {
		total += x
	}
	if total <= 0 {
		return
	}
	for i := range v {
		v[i] /= total
	}
}

// Dim returns the feature dimensionality the forest was trained on (0 for
// an empty forest).
func (f *Forest) Dim() int {
	if len(f.trees) == 0 {
		return 0
	}
	return f.trees[0].dim
}

// Importances returns the forest's feature importances: the mean of the
// per-tree normalized impurity importances, and the across-tree standard
// deviation of each feature's importance. The mean vector sums to 1 when
// at least one tree found informative splits; the std vector is the
// confidence signal sensitivity analysis uses — importances have
// "converged" when they are large relative to their spread.
func (f *Forest) Importances() (mean, std []float64) {
	dim := f.Dim()
	mean = make([]float64, dim)
	std = make([]float64, dim)
	if dim == 0 {
		return mean, std
	}
	perTree := make([][]float64, len(f.trees))
	for i, t := range f.trees {
		perTree[i] = t.Importances()
		for d := 0; d < dim && d < len(perTree[i]); d++ {
			mean[d] += perTree[i][d]
		}
	}
	nT := float64(len(f.trees))
	for d := range mean {
		mean[d] /= nT
	}
	for _, imp := range perTree {
		for d := 0; d < dim && d < len(imp); d++ {
			diff := imp[d] - mean[d]
			std[d] += diff * diff
		}
	}
	for d := range std {
		std[d] = math.Sqrt(std[d] / nT)
	}
	// Trees whose splits found no impurity decrease contribute zero
	// vectors; rescale so the reported mean still sums to one.
	normalize(mean)
	return mean, std
}
