// Package learn implements the classical machine-learning substrates the
// surveyed tuning systems rely on: CART regression trees and random
// forests (PARIS, Wang et al.), k-medoids clustering (AROMA's workload
// grouping), a linear SVM trained by SGD (AROMA's per-cluster tuning
// classifier), non-negative least squares (Ernest's performance model),
// and tabular Q-learning (Bu et al.'s reinforcement-learning tuner).
package learn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ErrNoData is returned when a learner is given an empty or mismatched
// training set.
var ErrNoData = errors.New("learn: empty or mismatched training data")

// TreeConfig bounds regression-tree growth.
type TreeConfig struct {
	// MaxDepth limits tree depth (default 8).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 3).
	MinLeaf int
	// FeatureFrac is the fraction of features considered per split
	// (default 1.0; random forests use less).
	FeatureFrac float64
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 3
	}
	if c.FeatureFrac <= 0 || c.FeatureFrac > 1 {
		c.FeatureFrac = 1
	}
	return c
}

// Tree is a CART regression tree.
type Tree struct {
	root *node
	dim  int
}

type node struct {
	feature  int
	thresh   float64
	value    float64
	left     *node
	right    *node
	nSamples int
	// gain is the impurity decrease the split achieved: the node's sum of
	// squares about its mean minus the children's (split nodes only). It
	// feeds the feature-importance accounting in importance.go.
	gain float64
}

func (n *node) leaf() bool { return n.left == nil }

// FitTree grows a regression tree on (xs, ys) with variance-reduction
// splits. rng drives feature subsampling; pass nil for deterministic
// all-feature splits.
func FitTree(cfg TreeConfig, xs [][]float64, ys []float64, rng *rand.Rand) (*Tree, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("%w: %d xs, %d ys", ErrNoData, len(xs), len(ys))
	}
	cfg = cfg.withDefaults()
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{dim: len(xs[0])}
	t.root = grow(cfg, xs, ys, idx, 0, rng)
	return t, nil
}

func grow(cfg TreeConfig, xs [][]float64, ys []float64, idx []int, depth int, rng *rand.Rand) *node {
	n := &node{nSamples: len(idx)}
	sum, sq := 0.0, 0.0
	for _, i := range idx {
		sum += ys[i]
		sq += ys[i] * ys[i]
	}
	n.value = sum / float64(len(idx))
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf {
		return n
	}

	dim := len(xs[idx[0]])
	features := featureSubset(dim, cfg.FeatureFrac, rng)

	bestFeat, bestThresh, bestScore := -1, 0.0, math.Inf(1)
	vals := make([]float64, 0, len(idx))
	for _, f := range features {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, xs[i][f])
		}
		sort.Float64s(vals)
		// Candidate thresholds at value midpoints (deduplicated).
		for v := 1; v < len(vals); v++ {
			if vals[v] == vals[v-1] {
				continue
			}
			thresh := (vals[v] + vals[v-1]) / 2
			score := splitScore(xs, ys, idx, f, thresh, cfg.MinLeaf)
			if score < bestScore {
				bestFeat, bestThresh, bestScore = f, thresh, score
			}
		}
	}
	if bestFeat < 0 {
		return n
	}
	var li, ri []int
	for _, i := range idx {
		if xs[i][bestFeat] <= bestThresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) < cfg.MinLeaf || len(ri) < cfg.MinLeaf {
		return n
	}
	n.feature, n.thresh = bestFeat, bestThresh
	// Impurity decrease: node sum-of-squares about the mean minus the
	// children's. Clamped at zero against floating-point cancellation.
	if g := (sq - sum*sum/float64(len(idx))) - bestScore; g > 0 {
		n.gain = g
	}
	n.left = grow(cfg, xs, ys, li, depth+1, rng)
	n.right = grow(cfg, xs, ys, ri, depth+1, rng)
	return n
}

func featureSubset(dim int, frac float64, rng *rand.Rand) []int {
	all := make([]int, dim)
	for i := range all {
		all[i] = i
	}
	if frac >= 1 || rng == nil {
		return all
	}
	k := int(math.Ceil(frac * float64(dim)))
	if k < 1 {
		k = 1
	}
	rng.Shuffle(dim, func(a, b int) { all[a], all[b] = all[b], all[a] })
	return all[:k]
}

// splitScore is the weighted sum of child variances (lower is better),
// +Inf for splits violating the leaf minimum.
func splitScore(xs [][]float64, ys []float64, idx []int, f int, thresh float64, minLeaf int) float64 {
	var ln, rn int
	var lsum, rsum, lsq, rsq float64
	for _, i := range idx {
		y := ys[i]
		if xs[i][f] <= thresh {
			ln++
			lsum += y
			lsq += y * y
		} else {
			rn++
			rsum += y
			rsq += y * y
		}
	}
	if ln < minLeaf || rn < minLeaf {
		return math.Inf(1)
	}
	lvar := lsq - lsum*lsum/float64(ln)
	rvar := rsq - rsum*rsum/float64(rn)
	return lvar + rvar
}

// Predict returns the tree's estimate at x.
func (t *Tree) Predict(x []float64) float64 {
	n := t.root
	for !n.leaf() {
		if n.feature < len(x) && x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Depth returns the tree's depth (0 for a stump).
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(n *node) int {
	if n == nil || n.leaf() {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Forest is a random forest of regression trees (bagging + feature
// subsampling), PARIS-style.
type Forest struct {
	trees []*Tree
}

// ForestConfig configures random-forest training.
type ForestConfig struct {
	Trees int // default 40
	Tree  TreeConfig
	// SampleCap bounds each tree's bootstrap sample (0 = len(xs), the
	// classical n-of-n bootstrap). CART split search is quadratic in the
	// node sample, so callers fitting forests over large histories (the
	// surrogate tier) cap per-tree samples to keep fits near-linear in n.
	SampleCap int
}

// FitForest trains a random forest. rng drives bootstrap resampling and
// feature subsampling and must not be nil.
func FitForest(cfg ForestConfig, xs [][]float64, ys []float64, rng *rand.Rand) (*Forest, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("%w: %d xs, %d ys", ErrNoData, len(xs), len(ys))
	}
	if rng == nil {
		return nil, errors.New("learn: FitForest requires an rng")
	}
	if cfg.Trees <= 0 {
		cfg.Trees = 40
	}
	if cfg.Tree.FeatureFrac <= 0 || cfg.Tree.FeatureFrac >= 1 {
		cfg.Tree.FeatureFrac = 0.7
	}
	f := &Forest{}
	n := len(xs)
	boot := n
	if cfg.SampleCap > 0 && cfg.SampleCap < n {
		boot = cfg.SampleCap
	}
	for t := 0; t < cfg.Trees; t++ {
		bx := make([][]float64, boot)
		by := make([]float64, boot)
		for i := 0; i < boot; i++ {
			j := rng.Intn(n)
			bx[i], by[i] = xs[j], ys[j]
		}
		tree, err := FitTree(cfg.Tree, bx, by, rng)
		if err != nil {
			return nil, err
		}
		f.trees = append(f.trees, tree)
	}
	return f, nil
}

// Predict returns the forest mean at x.
func (f *Forest) Predict(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range f.trees {
		sum += t.Predict(x)
	}
	return sum / float64(len(f.trees))
}

// PredictWithSpread returns the forest mean and the standard deviation
// across trees (a cheap uncertainty proxy).
func (f *Forest) PredictWithSpread(x []float64) (mean, spread float64) {
	if len(f.trees) == 0 {
		return 0, 0
	}
	preds := make([]float64, len(f.trees))
	sum := 0.0
	for i, t := range f.trees {
		preds[i] = t.Predict(x)
		sum += preds[i]
	}
	mean = sum / float64(len(f.trees))
	ss := 0.0
	for _, p := range preds {
		d := p - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(f.trees)))
}

// Size returns the number of trees.
func (f *Forest) Size() int { return len(f.trees) }
