package learn

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// importanceData draws n samples of a function dominated by features 0
// and 2 with pure-noise decoys elsewhere.
func importanceData(n, dim int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := make([]float64, dim)
		for d := range x {
			x[d] = rng.Float64()
		}
		xs[i] = x
		ys[i] = 12*x[0] + 6*x[2]*x[2] + 0.2*rng.NormFloat64()
	}
	return xs, ys
}

func TestTreeImportancesRankSignal(t *testing.T) {
	xs, ys := importanceData(300, 6, 1)
	tree, err := FitTree(TreeConfig{}, xs, ys, nil)
	if err != nil {
		t.Fatal(err)
	}
	imp := tree.Importances()
	if len(imp) != 6 {
		t.Fatalf("importances length %d, want 6", len(imp))
	}
	sum := 0.0
	for d, v := range imp {
		if v < 0 {
			t.Fatalf("negative importance %v at dim %d", v, d)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("importances sum to %v, want 1", sum)
	}
	for _, decoy := range []int{1, 3, 4, 5} {
		if imp[decoy] >= imp[0] {
			t.Errorf("decoy dim %d importance %v >= signal dim 0 importance %v", decoy, imp[decoy], imp[0])
		}
	}
	if imp[0] < imp[2] {
		t.Errorf("dominant dim 0 (%v) ranked below dim 2 (%v)", imp[0], imp[2])
	}
}

func TestForestImportancesSignalAndConfidence(t *testing.T) {
	xs, ys := importanceData(400, 8, 3)
	f, err := FitForest(ForestConfig{Trees: 30}, xs, ys, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	mean, std := f.Importances()
	if len(mean) != 8 || len(std) != 8 {
		t.Fatalf("importance lengths %d/%d, want 8/8", len(mean), len(std))
	}
	sum := 0.0
	for _, v := range mean {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("mean importances sum to %v, want 1", sum)
	}
	// The two signal dims should dominate every decoy, and clearly so:
	// their importances should exceed the decoys by more than the
	// across-tree spread (the confidence criterion sensitivity analysis
	// applies).
	for _, sig := range []int{0, 2} {
		for _, decoy := range []int{1, 3, 4, 5, 6, 7} {
			if mean[sig]-std[sig] <= mean[decoy]+std[decoy] {
				t.Errorf("signal dim %d (%.4f±%.4f) not separated from decoy %d (%.4f±%.4f)",
					sig, mean[sig], std[sig], decoy, mean[decoy], std[decoy])
			}
		}
	}
}

// TestForestImportancesDeterministic is the reproducibility contract the
// pruning tier depends on: the same seed and the same samples produce a
// bit-identical importance vector no matter how many CPUs the process
// runs on. The forest fit and the importance walk are sequential pure
// functions, so the test pins GOMAXPROCS to several values — including
// 1 and many — and requires exact float equality.
func TestForestImportancesDeterministic(t *testing.T) {
	xs, ys := importanceData(250, 10, 11)
	fit := func() ([]float64, []float64) {
		f, err := FitForest(ForestConfig{Trees: 25}, xs, ys, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		return f.Importances()
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var refMean, refStd []float64
	for _, procs := range []int{1, 2, prev, 16} {
		runtime.GOMAXPROCS(procs)
		for rep := 0; rep < 2; rep++ {
			mean, std := fit()
			if refMean == nil {
				refMean, refStd = mean, std
				continue
			}
			for d := range refMean {
				if mean[d] != refMean[d] || std[d] != refStd[d] {
					t.Fatalf("GOMAXPROCS=%d rep=%d: importance[%d] = (%v, %v), want bit-identical (%v, %v)",
						procs, rep, d, mean[d], std[d], refMean[d], refStd[d])
				}
			}
		}
	}
}

func TestImportancesEdgeCases(t *testing.T) {
	// A stump (constant target) has zero importances everywhere.
	xs := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0.5, 0.5}, {0.2, 0.8}}
	ys := []float64{3, 3, 3, 3, 3, 3}
	tree, err := FitTree(TreeConfig{}, xs, ys, nil)
	if err != nil {
		t.Fatal(err)
	}
	for d, v := range tree.Importances() {
		if v != 0 {
			t.Errorf("constant-target tree importance[%d] = %v, want 0", d, v)
		}
	}
	var empty Forest
	mean, std := empty.Importances()
	if len(mean) != 0 || len(std) != 0 {
		t.Errorf("empty forest importances %v/%v, want empty", mean, std)
	}
	if empty.Dim() != 0 {
		t.Errorf("empty forest Dim() = %d, want 0", empty.Dim())
	}
}
