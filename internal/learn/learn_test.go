package learn

import (
	"errors"
	"math"
	"testing"

	"seamlesstune/internal/stat"
)

func TestFitTreeRecoversStep(t *testing.T) {
	// y = 10 for x<0.5, 30 for x>=0.5 — one split suffices.
	var xs [][]float64
	var ys []float64
	for i := 0; i < 60; i++ {
		x := float64(i) / 60
		xs = append(xs, []float64{x})
		if x < 0.5 {
			ys = append(ys, 10)
		} else {
			ys = append(ys, 30)
		}
	}
	tree, err := FitTree(TreeConfig{}, xs, ys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{0.2}); math.Abs(got-10) > 0.5 {
		t.Errorf("Predict(0.2) = %v, want ~10", got)
	}
	if got := tree.Predict([]float64{0.8}); math.Abs(got-30) > 0.5 {
		t.Errorf("Predict(0.8) = %v, want ~30", got)
	}
	if tree.Depth() < 1 {
		t.Error("tree did not split")
	}
}

func TestFitTreeErrors(t *testing.T) {
	if _, err := FitTree(TreeConfig{}, nil, nil, nil); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v", err)
	}
	if _, err := FitTree(TreeConfig{}, [][]float64{{1}}, []float64{1, 2}, nil); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v", err)
	}
}

func TestTreeMinLeafRespected(t *testing.T) {
	xs := [][]float64{{0}, {1}}
	ys := []float64{0, 10}
	tree, err := FitTree(TreeConfig{MinLeaf: 3}, xs, ys, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Too few samples to split: prediction is the global mean.
	if got := tree.Predict([]float64{0}); got != 5 {
		t.Errorf("Predict = %v, want mean 5", got)
	}
}

func TestForestBeatsMeanOnNonlinear(t *testing.T) {
	r := stat.NewRNG(1)
	f := func(x []float64) float64 { return 50*math.Sin(5*x[0]) + 20*x[1] }
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		x := []float64{r.Float64(), r.Float64()}
		xs = append(xs, x)
		ys = append(ys, f(x)+r.NormFloat64())
	}
	forest, err := FitForest(ForestConfig{Trees: 30}, xs, ys, r)
	if err != nil {
		t.Fatal(err)
	}
	if forest.Size() != 30 {
		t.Fatalf("Size = %d", forest.Size())
	}
	var se, base float64
	mean := stat.Mean(ys)
	for i := 0; i < 100; i++ {
		x := []float64{r.Float64(), r.Float64()}
		p := forest.Predict(x)
		se += (p - f(x)) * (p - f(x))
		base += (mean - f(x)) * (mean - f(x))
	}
	if se >= base*0.4 {
		t.Errorf("forest MSE %v not clearly below baseline %v", se/100, base/100)
	}
}

func TestForestSpread(t *testing.T) {
	r := stat.NewRNG(2)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 50; i++ {
		x := r.Float64() * 0.5 // train only on [0, 0.5]
		xs = append(xs, []float64{x})
		ys = append(ys, 10*x+r.NormFloat64()*0.1)
	}
	forest, err := FitForest(ForestConfig{Trees: 25}, xs, ys, r)
	if err != nil {
		t.Fatal(err)
	}
	mean, spread := forest.PredictWithSpread([]float64{0.25})
	if spread < 0 || math.IsNaN(mean) {
		t.Errorf("PredictWithSpread = (%v, %v)", mean, spread)
	}
	// Empty forest degenerates gracefully.
	var empty Forest
	if m, s := empty.PredictWithSpread([]float64{0}); m != 0 || s != 0 {
		t.Error("empty forest should predict (0, 0)")
	}
}

func TestForestRequiresRNG(t *testing.T) {
	if _, err := FitForest(ForestConfig{}, [][]float64{{1}}, []float64{1}, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestKMedoidsSeparatesBlobs(t *testing.T) {
	r := stat.NewRNG(3)
	var points [][]float64
	// Two well-separated blobs of 20 points.
	for i := 0; i < 20; i++ {
		points = append(points, []float64{r.NormFloat64() * 0.2, r.NormFloat64() * 0.2})
	}
	for i := 0; i < 20; i++ {
		points = append(points, []float64{10 + r.NormFloat64()*0.2, 10 + r.NormFloat64()*0.2})
	}
	res, err := KMedoids(points, 2, r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Medoids) != 2 {
		t.Fatalf("medoids = %v", res.Medoids)
	}
	// All of the first blob in one cluster, all of the second in the other.
	first := res.Assignment[0]
	for i := 1; i < 20; i++ {
		if res.Assignment[i] != first {
			t.Fatalf("blob 1 split at %d", i)
		}
	}
	second := res.Assignment[20]
	if second == first {
		t.Fatal("blobs merged")
	}
	for i := 21; i < 40; i++ {
		if res.Assignment[i] != second {
			t.Fatalf("blob 2 split at %d", i)
		}
	}
	if s := Silhouette(points, res.Assignment); s < 0.8 {
		t.Errorf("silhouette = %v, want > 0.8 for separated blobs", s)
	}
}

func TestKMedoidsEdgeCases(t *testing.T) {
	r := stat.NewRNG(4)
	if _, err := KMedoids(nil, 2, r, 0); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v", err)
	}
	// k > n clamps.
	res, err := KMedoids([][]float64{{1}, {2}}, 5, r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Medoids) != 2 {
		t.Errorf("medoids = %d, want 2", len(res.Medoids))
	}
	// k < 1 clamps to 1.
	res, err = KMedoids([][]float64{{1}, {2}, {3}}, 0, r, 0)
	if err != nil || len(res.Medoids) != 1 {
		t.Errorf("k=0: %v, %v", res.Medoids, err)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	if s := Silhouette(nil, nil); s != 0 {
		t.Errorf("empty silhouette = %v", s)
	}
	pts := [][]float64{{1}, {2}}
	if s := Silhouette(pts, []int{0, 0}); s != 0 {
		t.Errorf("single-cluster silhouette = %v", s)
	}
}

func TestSVMSeparable(t *testing.T) {
	r := stat.NewRNG(5)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 100; i++ {
		x := []float64{r.NormFloat64(), r.NormFloat64()}
		xs = append(xs, x)
		if x[0]+x[1] > 0 {
			ys = append(ys, 1)
		} else {
			ys = append(ys, -1)
		}
	}
	m, err := FitSVM(SVMConfig{}, xs, ys, r)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range xs {
		if m.Predict(xs[i]) == ys[i] {
			correct++
		}
	}
	if correct < 92 {
		t.Errorf("SVM training accuracy %d/100, want >= 92", correct)
	}
}

func TestSVMErrors(t *testing.T) {
	r := stat.NewRNG(6)
	if _, err := FitSVM(SVMConfig{}, nil, nil, r); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v", err)
	}
	if _, err := FitSVM(SVMConfig{}, [][]float64{{1}}, []float64{1}, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestNNLSRecoversNonNegative(t *testing.T) {
	// y = 2·a + 0·b + 5·c with noise; weights must stay >= 0.
	r := stat.NewRNG(7)
	var a [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		row := []float64{r.Float64(), r.Float64(), r.Float64()}
		a = append(a, row)
		y = append(y, 2*row[0]+5*row[2]+0.01*r.NormFloat64())
	}
	w, err := NNLS(a, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-2) > 0.1 || math.Abs(w[2]-5) > 0.1 {
		t.Errorf("weights = %v, want ~[2 0 5]", w)
	}
	for _, v := range w {
		if v < 0 {
			t.Errorf("negative weight %v", v)
		}
	}
}

func TestNNLSNegativeTruth(t *testing.T) {
	// True weight is negative; NNLS must clamp at zero, not go negative.
	a := [][]float64{{1}, {1}, {1}}
	y := []float64{-1, -2, -3}
	w, err := NNLS(a, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != 0 {
		t.Errorf("w = %v, want [0]", w)
	}
}

func TestNNLSErrors(t *testing.T) {
	if _, err := NNLS(nil, nil, 0); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v", err)
	}
}

func TestErnestFeatures(t *testing.T) {
	f := ErnestFeatures(4, 1)
	if len(f) != 4 || f[0] != 1 {
		t.Fatalf("features = %v", f)
	}
	if f[1] != 0.25 || f[3] != 4 {
		t.Errorf("features = %v", f)
	}
	// Degenerate inputs clamp.
	f = ErnestFeatures(0, 0)
	if f[3] != 1 {
		t.Errorf("clamped machines = %v", f[3])
	}
}

func TestQLearnerConvergesToBestAction(t *testing.T) {
	// One state, three actions with rewards 1, 5, 3.
	r := stat.NewRNG(8)
	l := NewQLearner(1, 3, 0.2, 0, 0.2)
	rewards := []float64{1, 5, 3}
	for i := 0; i < 500; i++ {
		a := l.Choose(0, r)
		l.Update(0, a, rewards[a]+0.1*r.NormFloat64(), 0)
	}
	if got := l.BestAction(0); got != 1 {
		t.Errorf("BestAction = %d, want 1 (Q: %v %v %v)", got, l.Q(0, 0), l.Q(0, 1), l.Q(0, 2))
	}
}

func TestQLearnerBootstrapsAcrossStates(t *testing.T) {
	// Two states: action 0 in state 0 leads to state 1 where reward is
	// high; gamma > 0 must propagate value back.
	r := stat.NewRNG(9)
	l := NewQLearner(2, 2, 0.3, 0.9, 0.3)
	for i := 0; i < 2000; i++ {
		s := i % 2
		a := l.Choose(s, r)
		if s == 0 {
			// action 0 → state 1 (no direct reward); action 1 → stay, tiny reward.
			if a == 0 {
				l.Update(0, 0, 0, 1)
			} else {
				l.Update(0, 1, 0.1, 0)
			}
		} else {
			l.Update(1, a, 10, 0)
		}
	}
	if l.Q(0, 0) <= l.Q(0, 1) {
		t.Errorf("bootstrapped Q(0,0)=%v not above myopic Q(0,1)=%v", l.Q(0, 0), l.Q(0, 1))
	}
}

func TestQLearnerClamping(t *testing.T) {
	l := NewQLearner(2, 2, 0, 0, 0)
	l.Update(-5, 99, 1, 99) // out-of-range indices clamp, no panic
	if q := l.Q(0, 1); q == 0 {
		t.Errorf("clamped update did not land: %v", q)
	}
}

func TestEuclidean(t *testing.T) {
	if d := Euclidean([]float64{0, 0}, []float64{3, 4}); d != 5 {
		t.Errorf("Euclidean = %v, want 5", d)
	}
	if d := Euclidean([]float64{1}, []float64{1, 9}); d != 0 {
		t.Errorf("prefix Euclidean = %v, want 0", d)
	}
}

// SampleCap bounds each bootstrap without changing the uncapped path:
// a cap at (or above) n consumes exactly the draws of the classical
// n-of-n bootstrap, so predictions are bit-identical, while a binding
// cap still yields a usable forest.
func TestForestSampleCap(t *testing.T) {
	var xs [][]float64
	var ys []float64
	r := stat.NewRNG(3)
	for i := 0; i < 120; i++ {
		x := []float64{r.Float64(), r.Float64()}
		xs = append(xs, x)
		ys = append(ys, 5*x[0]-3*x[1]+0.1*r.NormFloat64())
	}
	uncapped, err := FitForest(ForestConfig{Trees: 10}, xs, ys, stat.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	atN, err := FitForest(ForestConfig{Trees: 10, SampleCap: len(xs)}, xs, ys, stat.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		q := []float64{r.Float64(), r.Float64()}
		if uncapped.Predict(q) != atN.Predict(q) {
			t.Fatal("SampleCap=n diverges from the uncapped bootstrap")
		}
	}
	capped, err := FitForest(ForestConfig{Trees: 10, SampleCap: 32}, xs, ys, stat.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	var se, base float64
	mean := stat.Mean(ys)
	for i := 0; i < 50; i++ {
		q := []float64{r.Float64(), r.Float64()}
		want := 5*q[0] - 3*q[1]
		p := capped.Predict(q)
		se += (p - want) * (p - want)
		base += (mean - want) * (mean - want)
	}
	if se >= base*0.5 {
		t.Errorf("capped forest MSE %v not clearly below baseline %v", se/50, base/50)
	}
}
