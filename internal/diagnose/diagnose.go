// Package diagnose scores a tuner's surrogate model online and watches
// the search for convergence or stall. It closes the loop the decision
// records open: every modelled proposal carries a posterior prediction
// for the chosen configuration, and when that trial completes the
// Monitor compares prediction to outcome — standardized residuals,
// z-score coverage of the 1σ/2σ intervals, and rolling negative log
// predictive density — while an EI trace and a best-so-far plateau
// counter track whether the search is still making progress.
//
// The package is deliberately decoupled from the tuner: a Monitor
// consumes plain numbers (posterior mean/std, max EI, observed model
// target) so it can diagnose any Bayesian tuner, and it only ever
// observes — it holds no reference back into the search and cannot
// steer it.
package diagnose

import (
	"fmt"
	"math"
	"sync"

	"seamlesstune/internal/obs"
)

// Severity grades a diagnostic verdict.
type Severity string

const (
	SeverityOK       Severity = "ok"
	SeverityWarn     Severity = "warn"
	SeverityCritical Severity = "critical"
)

// rank orders severities for transition bookkeeping.
func (s Severity) rank() int {
	switch s {
	case SeverityWarn:
		return 1
	case SeverityCritical:
		return 2
	}
	return 0
}

// Config tunes a Monitor. The zero value selects the defaults.
type Config struct {
	// Window is the rolling residual window for coverage and RMSE
	// (default 25 scores).
	Window int
	// MinScores is how many scored predictions calibration verdicts
	// need before they grade anything but ok (default 5 — coverage over
	// two residuals means nothing).
	MinScores int
	// HealthEvery re-emits an unchanged health verdict every this many
	// scores, so stream consumers see liveness (default 5).
	HealthEvery int
	// PlateauWarn / PlateauCritical are the best-so-far plateau lengths
	// (trials without improvement) that grade a stall (defaults 8 / 16).
	PlateauWarn     int
	PlateauCritical int
	// EIDecayFloor is the fraction of peak max-EI below which a plateau
	// reads as convergence rather than a struggling model (default 0.05).
	EIDecayFloor float64
}

func (c Config) window() int {
	if c.Window > 0 {
		return c.Window
	}
	return 25
}

func (c Config) minScores() int {
	if c.MinScores > 0 {
		return c.MinScores
	}
	return 5
}

func (c Config) healthEvery() int {
	if c.HealthEvery > 0 {
		return c.HealthEvery
	}
	return 5
}

func (c Config) plateauWarn() int {
	if c.PlateauWarn > 0 {
		return c.PlateauWarn
	}
	return 8
}

func (c Config) plateauCritical() int {
	if c.PlateauCritical > 0 {
		return c.PlateauCritical
	}
	return 16
}

func (c Config) eiDecayFloor() float64 {
	if c.EIDecayFloor > 0 {
		return c.EIDecayFloor
	}
	return 0.05
}

// Health is a calibration snapshot: how well the surrogate's predictive
// distribution matches what the trials actually delivered. All values
// are in model-target (log-objective) units.
type Health struct {
	// Scores is how many predictions have been graded so far.
	Scores int
	// Coverage1 / Coverage2 are the windowed fractions of observations
	// inside the predicted 1σ / 2σ intervals (a calibrated Gaussian
	// posterior gives 0.683 / 0.954).
	Coverage1 float64
	Coverage2 float64
	// RMSE is the windowed root-mean-square residual.
	RMSE float64
	// NLPD is the running median negative log predictive density
	// (lower is better; tracked on a quantile sketch).
	NLPD     float64
	Severity Severity
	Reason   string
}

// Stall is a search-progress snapshot.
type Stall struct {
	// Plateau is the number of completed trials since the best-so-far
	// last improved.
	Plateau int
	// EIMax / EIPeak are the latest and the largest max-EI the
	// acquisition reported; EIDecay is their ratio (1 = at peak).
	EIMax    float64
	EIPeak   float64
	EIDecay  float64
	Severity Severity
	Reason   string
}

// Monitor scores one tuning stage. It is safe for concurrent use,
// though sessions drive it from a single goroutine (decision hook and
// trial hook both run on the session loop).
type Monitor struct {
	cfg Config

	mu sync.Mutex
	// Pending prediction for the in-flight trial. The session loop is
	// strictly propose → execute → observe, so at most one prediction is
	// outstanding and it pairs with the next completed trial.
	hasPending         bool
	predMean, predStd  float64
	resid              []float64 // standardized-residual ring
	residN             int       // valid entries in resid
	residAt            int       // next write position
	scores             int       // lifetime scored predictions
	sumSq              float64   // Σ residual² over the window (raw residuals)
	rawResid           []float64 // raw-residual ring, parallel to resid
	nlpd               *obs.Sketch
	trials             int
	plateau            int
	best               float64
	hasBest            bool
	eiPeak, eiLast     float64
	eiSeen             bool
	lastHealthSeverity Severity
	healthEmitted      bool
	scoresAtHealth     int
	lastStallSeverity  Severity
	stallEmitted       bool
}

// New returns a Monitor with cfg (zero value = defaults).
func New(cfg Config) *Monitor {
	return &Monitor{
		cfg:      cfg,
		resid:    make([]float64, cfg.window()),
		rawResid: make([]float64, cfg.window()),
		nlpd:     obs.NewSketch(0),
	}
}

// OnDecision notes a modelled proposal: the chosen candidate's posterior
// (model-target units) becomes the pending prediction scored when the
// trial lands, and maxEI feeds the convergence trace.
func (m *Monitor) OnDecision(predMean, predStd, maxEI float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if isFinite(predMean) && isFinite(predStd) {
		m.hasPending = true
		m.predMean, m.predStd = predMean, predStd
	}
	if isFinite(maxEI) && maxEI >= 0 {
		m.eiLast, m.eiSeen = maxEI, true
		if maxEI > m.eiPeak {
			m.eiPeak = maxEI
		}
	}
}

// OnTrial scores the completed trial against the pending prediction (if
// any) and advances the plateau counter. target is the observed model
// target — tuner.ModelTarget(objective) — and failed marks trials whose
// objective is a penalty, which clear the pending prediction unscored
// (the surrogate trains on the penalty, but grading calibration against
// synthetic values would poison the verdict).
//
// The returned pointers are non-nil when a model_health / stall event is
// due: on any severity change, and for health additionally every
// HealthEvery scores.
func (m *Monitor) OnTrial(target float64, failed bool) (*Health, *Stall) {
	if m == nil {
		return nil, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	m.trials++
	if !failed && isFinite(target) {
		if !m.hasBest || target < m.best {
			m.best, m.hasBest = target, true
			m.plateau = 0
		} else {
			m.plateau++
		}
	} else if m.hasBest {
		// A failed trial is a trial that didn't improve anything.
		m.plateau++
	}

	if m.hasPending {
		m.hasPending = false
		if !failed && isFinite(target) {
			m.scoreLocked(target)
		}
	}

	return m.maybeHealthLocked(), m.maybeStallLocked()
}

// scoreLocked grades one (prediction, outcome) pair.
func (m *Monitor) scoreLocked(target float64) {
	r := target - m.predMean
	z := math.Inf(1)
	if m.predStd > 0 {
		z = r / m.predStd
	} else if r == 0 {
		z = 0
	}
	// Ring update: retire the evicted raw residual from the running Σr².
	if m.residN == len(m.resid) {
		old := m.rawResid[m.residAt]
		m.sumSq -= old * old
	} else {
		m.residN++
	}
	m.resid[m.residAt] = z
	m.rawResid[m.residAt] = r
	m.sumSq += r * r
	m.residAt = (m.residAt + 1) % len(m.resid)
	m.scores++

	if m.predStd > 0 {
		nlpd := 0.5*math.Log(2*math.Pi*m.predStd*m.predStd) + r*r/(2*m.predStd*m.predStd)
		m.nlpd.Add(nlpd) // Add ignores non-finite values
		mNLPD.Observe(nlpd)
	}
	if isFinite(z) {
		mAbsZ.Observe(math.Abs(z))
	}
}

// healthLocked computes the current calibration snapshot.
func (m *Monitor) healthLocked() Health {
	h := Health{Scores: m.scores, Severity: SeverityOK, Reason: "calibration nominal"}
	if m.residN > 0 {
		in1, in2 := 0, 0
		for i := 0; i < m.residN; i++ {
			az := math.Abs(m.resid[i])
			if az <= 1 {
				in1++
			}
			if az <= 2 {
				in2++
			}
		}
		n := float64(m.residN)
		h.Coverage1 = float64(in1) / n
		h.Coverage2 = float64(in2) / n
		h.RMSE = math.Sqrt(math.Max(m.sumSq, 0) / n)
	}
	if m.nlpd.Count() > 0 {
		h.NLPD = m.nlpd.Quantile(0.5)
	}
	if m.scores < m.cfg.minScores() {
		h.Reason = fmt.Sprintf("warming up (%d/%d scored predictions)", m.scores, m.cfg.minScores())
		return h
	}
	switch {
	case h.Coverage2 < 0.5:
		h.Severity = SeverityCritical
		h.Reason = fmt.Sprintf("surrogate badly overconfident: only %.0f%% of outcomes inside 2σ (ideal 95%%)", h.Coverage2*100)
	case h.Coverage1 < 0.35 || h.Coverage2 < 0.75:
		h.Severity = SeverityWarn
		h.Reason = fmt.Sprintf("surrogate overconfident: %.0f%% inside 1σ / %.0f%% inside 2σ (ideal 68%%/95%%)", h.Coverage1*100, h.Coverage2*100)
	case h.Coverage1 > 0.95 && h.Coverage2 > 0.99 && m.residN >= m.cfg.window():
		h.Severity = SeverityWarn
		h.Reason = fmt.Sprintf("surrogate underconfident: %.0f%% inside 1σ (ideal 68%%) — predicted uncertainty looks inflated", h.Coverage1*100)
	}
	return h
}

// stallLocked computes the current progress snapshot.
func (m *Monitor) stallLocked() Stall {
	s := Stall{Plateau: m.plateau, Severity: SeverityOK, Reason: "search progressing"}
	if m.eiSeen {
		s.EIMax, s.EIPeak = m.eiLast, m.eiPeak
		if m.eiPeak > 0 {
			s.EIDecay = m.eiLast / m.eiPeak
		}
	}
	warn, crit := m.cfg.plateauWarn(), m.cfg.plateauCritical()
	if m.plateau < warn {
		return s
	}
	if m.plateau >= crit {
		s.Severity = SeverityCritical
	} else {
		s.Severity = SeverityWarn
	}
	if m.eiSeen && m.eiPeak > 0 && s.EIDecay <= m.cfg.eiDecayFloor() {
		s.Reason = fmt.Sprintf("no improvement for %d trials and EI decayed to %.1f%% of peak — likely converged", m.plateau, s.EIDecay*100)
	} else if m.eiSeen {
		s.Reason = fmt.Sprintf("no improvement for %d trials but EI still at %.0f%% of peak — model expects gains it isn't delivering", m.plateau, s.EIDecay*100)
	} else {
		s.Reason = fmt.Sprintf("no improvement for %d trials", m.plateau)
	}
	return s
}

// maybeHealthLocked applies the emission policy: emit on severity
// change, and re-emit every HealthEvery scores once enough predictions
// are graded.
func (m *Monitor) maybeHealthLocked() *Health {
	if m.scores < m.cfg.minScores() {
		return nil
	}
	h := m.healthLocked()
	due := !m.healthEmitted ||
		h.Severity != m.lastHealthSeverity ||
		m.scores-m.scoresAtHealth >= m.cfg.healthEvery()
	if !due {
		return nil
	}
	m.healthEmitted = true
	m.lastHealthSeverity = h.Severity
	m.scoresAtHealth = m.scores
	mHealth.With(string(h.Severity)).Inc()
	return &h
}

// maybeStallLocked emits on severity transitions only — including the
// recovery back to ok, so consumers can clear alerts.
func (m *Monitor) maybeStallLocked() *Stall {
	s := m.stallLocked()
	if s.Severity == SeverityOK && !m.stallEmitted {
		return nil
	}
	if m.stallEmitted && s.Severity == m.lastStallSeverity {
		return nil
	}
	if s.Severity == SeverityOK {
		s.Reason = fmt.Sprintf("search progressing again after a %s stall", m.lastStallSeverity)
	}
	m.stallEmitted = true
	m.lastStallSeverity = s.Severity
	mStalls.With(string(s.Severity)).Inc()
	return &s
}

// Health returns the current calibration snapshot (for explain
// endpoints; emission bookkeeping is untouched).
func (m *Monitor) Health() Health {
	if m == nil {
		return Health{Severity: SeverityOK}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.healthLocked()
}

// Stall returns the current progress snapshot.
func (m *Monitor) Stall() Stall {
	if m == nil {
		return Stall{Severity: SeverityOK}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stallLocked()
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Diagnostics-layer metric families, fed by every Monitor in the
// process (sessions are the natural aggregation for the /metrics view;
// per-job slicing lives on the event stream).
var (
	mAbsZ = obs.Default().HistogramSketched("tuner_calibration_abs_z",
		"Absolute standardized residual |observed-predicted|/σ per scored prediction (calibrated ≈ half-normal).",
		obs.ExpBuckets(0.0625, 2, 10))
	mNLPD = obs.Default().HistogramSketched("tuner_calibration_nlpd",
		"Negative log predictive density per scored prediction (lower is better).",
		obs.ExpBuckets(0.0625, 2, 10))
	mHealth = obs.Default().CounterVec("tuner_model_health_total",
		"model_health verdicts emitted, by severity.", "severity")
	mStalls = obs.Default().CounterVec("tuner_stall_transitions_total",
		"stall severity transitions emitted, by severity.", "severity")
)
