package diagnose

import (
	"math"
	"strings"
	"testing"
)

// drive feeds n (prediction, outcome) pairs with the given standardized
// residual pattern: outcome = predMean + z·predStd, each a new best so
// the plateau never trips.
func drive(m *Monitor, zs []float64) (healths []*Health, stalls []*Stall) {
	target := 100.0
	for _, z := range zs {
		target -= 1 // strictly improving
		m.OnDecision(target-z*0.5, 0.5, 0.1)
		h, s := m.OnTrial(target, false)
		if h != nil {
			healths = append(healths, h)
		}
		if s != nil {
			stalls = append(stalls, s)
		}
		// shift so the realized standardized residual is exactly z:
		// observed target vs predicted mean target-z*0.5 gives r = z*0.5.
	}
	return
}

func TestCalibrationCoverage(t *testing.T) {
	m := New(Config{Window: 50})
	// 10 perfectly-predicted trials: residual 0, full coverage.
	drive(m, make([]float64, 10))
	h := m.Health()
	if h.Scores != 10 {
		t.Fatalf("scores = %d, want 10", h.Scores)
	}
	if h.Coverage1 != 1 || h.Coverage2 != 1 {
		t.Errorf("perfect predictions: coverage (%g, %g), want (1, 1)", h.Coverage1, h.Coverage2)
	}
	if h.RMSE != 0 {
		t.Errorf("perfect predictions: RMSE %g, want 0", h.RMSE)
	}
}

func TestOverconfidentSurrogateGradesCritical(t *testing.T) {
	m := New(Config{MinScores: 5})
	// Residuals at 3σ — far outside the 2σ interval, every time.
	zs := []float64{3, 3, -3, 3, -3, 3, 3, -3}
	_, _ = drive(m, zs)
	h := m.Health()
	if h.Severity != SeverityCritical {
		t.Fatalf("severity = %s, want critical (coverage2 = %g)", h.Severity, h.Coverage2)
	}
	if !strings.Contains(h.Reason, "overconfident") {
		t.Errorf("reason %q should name overconfidence", h.Reason)
	}
}

func TestUnderconfidentSurrogateWarns(t *testing.T) {
	// Needs a full window of tiny residuals.
	m := New(Config{Window: 10, MinScores: 5})
	zs := make([]float64, 12)
	for i := range zs {
		zs[i] = 0.01
	}
	drive(m, zs)
	h := m.Health()
	if h.Severity != SeverityWarn || !strings.Contains(h.Reason, "underconfident") {
		t.Fatalf("severity = %s (%q), want warn/underconfident", h.Severity, h.Reason)
	}
}

func TestWarmupStaysOK(t *testing.T) {
	m := New(Config{MinScores: 5})
	drive(m, []float64{5, -5}) // terrible, but only 2 scores
	h := m.Health()
	if h.Severity != SeverityOK || !strings.Contains(h.Reason, "warming up") {
		t.Fatalf("warm-up verdict = %s (%q), want ok/warming up", h.Severity, h.Reason)
	}
}

func TestFailedTrialsClearPendingUnscored(t *testing.T) {
	m := New(Config{})
	m.OnDecision(4.0, 0.5, 0.1)
	m.OnTrial(99, true) // penalty objective: must not grade calibration
	if h := m.Health(); h.Scores != 0 {
		t.Fatalf("failed trial was scored: %d scores", h.Scores)
	}
	// The next success pairs with its own prediction only.
	m.OnDecision(4.0, 0.5, 0.1)
	m.OnTrial(4.0, false)
	if h := m.Health(); h.Scores != 1 {
		t.Fatalf("scores = %d, want 1", h.Scores)
	}
}

func TestUnpredictedTrialsNotScored(t *testing.T) {
	m := New(Config{})
	// Init-phase trials arrive with no decision record.
	m.OnTrial(5.0, false)
	m.OnTrial(4.0, false)
	if h := m.Health(); h.Scores != 0 {
		t.Fatalf("unpredicted trials scored: %d", h.Scores)
	}
}

func TestRollingWindowEvictsOldResiduals(t *testing.T) {
	m := New(Config{Window: 4, MinScores: 1})
	// 4 bad scores fill the window, then 4 perfect ones push them out.
	drive(m, []float64{4, 4, 4, 4})
	if h := m.Health(); h.Coverage2 != 0 {
		t.Fatalf("after bad scores coverage2 = %g, want 0", h.Coverage2)
	}
	drive(m, []float64{0, 0, 0, 0})
	h := m.Health()
	if h.Coverage1 != 1 || h.RMSE != 0 {
		t.Fatalf("window did not evict: coverage1 %g RMSE %g, want 1 and 0", h.Coverage1, h.RMSE)
	}
	if h.Scores != 8 {
		t.Fatalf("lifetime scores = %d, want 8", h.Scores)
	}
}

func TestStallDetection(t *testing.T) {
	m := New(Config{PlateauWarn: 3, PlateauCritical: 6})
	var stalls []*Stall
	m.OnTrial(10, false) // establishes the incumbent
	for i := 0; i < 7; i++ {
		m.OnDecision(10, 0.5, 0.001) // EI never recovers
		_, s := m.OnTrial(11, false) // never improves
		if s != nil {
			stalls = append(stalls, s)
		}
	}
	if len(stalls) != 2 {
		t.Fatalf("got %d stall transitions, want 2 (warn then critical): %+v", len(stalls), stalls)
	}
	if stalls[0].Severity != SeverityWarn || stalls[0].Plateau != 3 {
		t.Errorf("first transition = %+v, want warn at plateau 3", stalls[0])
	}
	if stalls[1].Severity != SeverityCritical || stalls[1].Plateau != 6 {
		t.Errorf("second transition = %+v, want critical at plateau 6", stalls[1])
	}
	// Recovery: a new best emits the all-clear exactly once.
	m.OnDecision(9, 0.5, 0.2)
	_, s := m.OnTrial(9, false)
	if s == nil || s.Severity != SeverityOK || !strings.Contains(s.Reason, "progressing again") {
		t.Fatalf("recovery transition = %+v, want ok with recovery reason", s)
	}
	_, s = m.OnTrial(8, false)
	if s != nil {
		t.Fatalf("steady progress re-emitted a stall verdict: %+v", s)
	}
}

func TestStallReasonDistinguishesConvergenceFromStruggle(t *testing.T) {
	// EI decayed to nothing: the plateau reads as convergence.
	m := New(Config{PlateauWarn: 2})
	m.OnTrial(10, false)
	m.OnDecision(10, 0.5, 1.0) // peak EI
	m.OnTrial(11, false)
	m.OnDecision(10, 0.5, 0.001) // 0.1% of peak
	_, s := m.OnTrial(11, false)
	if s == nil || !strings.Contains(s.Reason, "likely converged") {
		t.Fatalf("decayed-EI stall = %+v, want convergence reason", s)
	}

	// EI still high: the model expects gains it isn't delivering.
	m2 := New(Config{PlateauWarn: 2})
	m2.OnTrial(10, false)
	for i := 0; i < 2; i++ {
		m2.OnDecision(10, 0.5, 1.0)
	}
	m2.OnTrial(11, false)
	_, s2 := m2.OnTrial(11, false)
	if s2 == nil || !strings.Contains(s2.Reason, "isn't delivering") {
		t.Fatalf("high-EI stall = %+v, want struggling-model reason", s2)
	}
}

func TestFailedTrialsExtendPlateau(t *testing.T) {
	m := New(Config{PlateauWarn: 3})
	m.OnTrial(10, false)
	var got *Stall
	for i := 0; i < 3; i++ {
		_, s := m.OnTrial(0, true)
		if s != nil {
			got = s
		}
	}
	if got == nil || got.Severity != SeverityWarn {
		t.Fatalf("3 failures after an incumbent should warn, got %+v", got)
	}
	// Failures before any incumbent don't count as a plateau.
	m2 := New(Config{PlateauWarn: 2})
	for i := 0; i < 5; i++ {
		if _, s := m2.OnTrial(0, true); s != nil {
			t.Fatalf("plateau without an incumbent: %+v", s)
		}
	}
}

func TestHealthEmissionPolicy(t *testing.T) {
	m := New(Config{MinScores: 3, HealthEvery: 4, Window: 50})
	var emitted []*Health
	hs, _ := drive(m, make([]float64, 12))
	emitted = append(emitted, hs...)
	// First verdict at score 3 (min reached), then every 4 scores: 3, 7, 11.
	if len(emitted) != 3 {
		t.Fatalf("got %d health emissions over 12 scores, want 3", len(emitted))
	}
	for i, want := range []int{3, 7, 11} {
		if emitted[i].Scores != want {
			t.Errorf("emission %d at %d scores, want %d", i, emitted[i].Scores, want)
		}
	}
}

func TestNonFiniteInputsIgnored(t *testing.T) {
	m := New(Config{})
	m.OnDecision(math.NaN(), 0.5, math.Inf(1))
	if m.hasPending {
		t.Fatal("NaN prediction accepted as pending")
	}
	m.OnDecision(4, 0.5, -1) // negative EI ignored for the trace
	if m.eiSeen {
		t.Fatal("negative EI accepted into the trace")
	}
	m.OnTrial(math.Inf(1), false)
	if h := m.Health(); h.Scores != 0 {
		t.Fatalf("non-finite target scored: %d", h.Scores)
	}
	// Zero predicted std with a nonzero residual: infinite z lands
	// outside both intervals but must not poison RMSE or NLPD.
	m.OnDecision(4, 0, 0.1)
	m.OnTrial(5, false)
	h := m.Health()
	if h.Scores != 1 || h.Coverage2 != 0 {
		t.Fatalf("degenerate-std score: %+v, want 1 score outside 2σ", h)
	}
	if !isFinite(h.RMSE) || !isFinite(h.NLPD) {
		t.Fatalf("degenerate-std score produced non-finite summary: %+v", h)
	}
}

func TestNilMonitorIsInert(t *testing.T) {
	var m *Monitor
	m.OnDecision(1, 1, 1)
	if h, s := m.OnTrial(1, false); h != nil || s != nil {
		t.Fatal("nil monitor emitted verdicts")
	}
	if h := m.Health(); h.Severity != SeverityOK {
		t.Fatal("nil monitor unhealthy")
	}
	if s := m.Stall(); s.Severity != SeverityOK {
		t.Fatal("nil monitor stalled")
	}
}

func TestNLPDTracksSharpness(t *testing.T) {
	// Same residuals, tighter predicted std → the penalty term r²/2σ²
	// dominates and NLPD is worse for the overconfident model.
	tight := New(Config{})
	wide := New(Config{})
	for i := 0; i < 10; i++ {
		tight.OnDecision(4, 0.1, 0.1)
		tight.OnTrial(4.5, false)
		wide.OnDecision(4, 0.5, 0.1)
		wide.OnTrial(4.5, false)
	}
	ht, hw := tight.Health(), wide.Health()
	if ht.NLPD <= hw.NLPD {
		t.Fatalf("overconfident NLPD %g should exceed calibrated %g", ht.NLPD, hw.NLPD)
	}
}
