package cloud

import (
	"errors"
	"math"
	"testing"

	"seamlesstune/internal/stat"
)

func TestDefaultCatalog(t *testing.T) {
	c := DefaultCatalog()
	if c.Len() != 3*4*4 {
		t.Fatalf("catalog size = %d, want 48", c.Len())
	}
	if got := len(c.Providers()); got != 3 {
		t.Errorf("providers = %d, want 3", got)
	}
	// The h1.4xlarge analogue used in Table I must exist with
	// storage-optimized ratios: 16 vCPU, 256 GB, high disk bandwidth.
	it, err := c.Lookup("nimbus/h1.4xlarge")
	if err != nil {
		t.Fatal(err)
	}
	if it.VCPUs != 16 || it.MemoryGB != 256 || it.Family != Storage {
		t.Errorf("h1.4xlarge = %+v, want 16 vCPU / 256 GB storage family", it)
	}
	if it.DiskMBps <= 4*20*16 {
		t.Errorf("storage family disk bandwidth %v not clearly above general family", it.DiskMBps)
	}
}

func TestCatalogLookupUnknown(t *testing.T) {
	c := DefaultCatalog()
	if _, err := c.Lookup("nope/zz.large"); !errors.Is(err, ErrUnknownInstance) {
		t.Errorf("err = %v, want ErrUnknownInstance", err)
	}
}

func TestCatalogByProviderSorted(t *testing.T) {
	c := DefaultCatalog()
	ts := c.ByProvider(Nimbus)
	if len(ts) != 16 {
		t.Fatalf("nimbus types = %d, want 16", len(ts))
	}
	for i := 1; i < len(ts); i++ {
		if ts[i].PricePerHour < ts[i-1].PricePerHour {
			t.Fatalf("ByProvider not price-sorted at %d", i)
		}
		if ts[i].Provider != Nimbus {
			t.Fatalf("foreign provider in ByProvider result")
		}
	}
}

func TestTypesSorted(t *testing.T) {
	c := DefaultCatalog()
	ts := c.Types()
	for i := 1; i < len(ts); i++ {
		if ts[i].Provider < ts[i-1].Provider {
			t.Fatal("Types not provider-sorted")
		}
		if ts[i].Provider == ts[i-1].Provider && ts[i].PricePerHour < ts[i-1].PricePerHour {
			t.Fatal("Types not price-sorted within provider")
		}
	}
}

func TestMemoryPerCore(t *testing.T) {
	it := InstanceType{VCPUs: 4, MemoryGB: 32}
	if got := it.MemoryPerCore(); got != 8 {
		t.Errorf("MemoryPerCore = %v, want 8", got)
	}
	if got := (InstanceType{}).MemoryPerCore(); got != 0 {
		t.Errorf("zero-value MemoryPerCore = %v, want 0", got)
	}
}

func TestClusterSpec(t *testing.T) {
	c := DefaultCatalog()
	it, _ := c.Lookup("nimbus/g5.xlarge")
	spec := ClusterSpec{Instance: it, Count: 4}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if spec.TotalCores() != 16 {
		t.Errorf("TotalCores = %d, want 16", spec.TotalCores())
	}
	if spec.TotalMemoryGB() != 64 {
		t.Errorf("TotalMemoryGB = %v, want 64", spec.TotalMemoryGB())
	}
	wantHourly := it.PricePerHour * 4
	if math.Abs(spec.CostPerHour()-wantHourly) > 1e-12 {
		t.Errorf("CostPerHour = %v, want %v", spec.CostPerHour(), wantHourly)
	}
	if math.Abs(spec.CostOf(1800)-wantHourly/2) > 1e-12 {
		t.Errorf("CostOf(1800s) = %v, want %v", spec.CostOf(1800), wantHourly/2)
	}
	if spec.CostOf(-5) != 0 {
		t.Error("negative duration should cost 0")
	}
}

func TestClusterSpecValidate(t *testing.T) {
	tests := []struct {
		name string
		spec ClusterSpec
		ok   bool
	}{
		{"zero count", ClusterSpec{Instance: InstanceType{VCPUs: 2, MemoryGB: 8}}, false},
		{"zero instance", ClusterSpec{Count: 3}, false},
		{"valid", ClusterSpec{Instance: InstanceType{VCPUs: 2, MemoryGB: 8}, Count: 3}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.spec.Validate()
			if tt.ok && err != nil {
				t.Errorf("Validate = %v, want nil", err)
			}
			if !tt.ok && !errors.Is(err, ErrInvalidCluster) {
				t.Errorf("Validate = %v, want ErrInvalidCluster", err)
			}
		})
	}
}

func TestResize(t *testing.T) {
	spec := ClusterSpec{Instance: InstanceType{VCPUs: 2, MemoryGB: 8}, Count: 3}
	grown := spec.Resize(10)
	if grown.Count != 10 || spec.Count != 3 {
		t.Errorf("Resize mutated original or failed: %d/%d", grown.Count, spec.Count)
	}
}

func TestInterferenceLevels(t *testing.T) {
	r := stat.NewRNG(1)
	for _, level := range []InterferenceLevel{InterferenceNone, InterferenceLow, InterferenceMedium, InterferenceHigh} {
		in := NewInterference(level)
		mean, _ := level.params()
		var w stat.Welford
		for i := 0; i < 2000; i++ {
			f := in.Step(r)
			if f.CPU < 1 || f.Net < 1 || f.Disk < 1 {
				t.Fatalf("level %v: factor below 1: %+v", level, f)
			}
			w.Add(f.CPU)
		}
		if math.Abs(w.Mean()-mean) > 0.06 {
			t.Errorf("level %v: mean CPU factor %v, want ~%v", level, w.Mean(), mean)
		}
	}
}

func TestInterferenceNoneIsUnit(t *testing.T) {
	r := stat.NewRNG(2)
	in := NewInterference(InterferenceNone)
	for i := 0; i < 10; i++ {
		f := in.Step(r)
		if f != Unit() {
			t.Fatalf("none-level factors = %+v, want unit", f)
		}
	}
}

func TestEnvironment(t *testing.T) {
	e := NewEnvironment(InterferenceMedium, 7)
	f1 := e.Next()
	if f1.CPU < 1 {
		t.Errorf("environment factor %v < 1", f1.CPU)
	}
	// Same seed reproduces the same stream.
	e2 := NewEnvironment(InterferenceMedium, 7)
	if e2.Next() != f1 {
		t.Error("environment stream not reproducible for equal seeds")
	}
	// Level change takes effect.
	e.SetLevel(InterferenceHigh)
	var w stat.Welford
	for i := 0; i < 500; i++ {
		w.Add(e.Next().CPU)
	}
	if w.Mean() < 1.2 {
		t.Errorf("after SetLevel(high), mean CPU factor %v, want > 1.2", w.Mean())
	}
}

func TestEnvironmentNilInterference(t *testing.T) {
	e := &Environment{}
	if e.Next() != Unit() {
		t.Error("nil interference should yield unit factors")
	}
	e.SetLevel(InterferenceLow)
	if e.Interference == nil {
		t.Error("SetLevel on nil interference should install one")
	}
}

func TestInterferenceLevelString(t *testing.T) {
	if InterferenceHigh.String() != "high" || InterferenceLevel(42).String() != "level(42)" {
		t.Error("InterferenceLevel.String wrong")
	}
}

func TestClusterSpecString(t *testing.T) {
	c := DefaultCatalog()
	it, _ := c.Lookup("cumulus/r5.2xlarge")
	spec := ClusterSpec{Instance: it, Count: 6}
	if got := spec.String(); got != "6x cumulus/r5.2xlarge" {
		t.Errorf("String = %q", got)
	}
}
