// Package cloud simulates the infrastructure layer the paper's tuning
// service runs against: multiple cloud providers, their instance catalogs
// (vCPU, memory, disk and network bandwidth, hourly price), provisioned
// virtual clusters, and the co-location interference that makes cloud
// measurements noisy.
//
// The paper's experiments ran on Amazon EMR and Google Cloud; we model
// three synthetic providers whose catalogs mirror the real families
// (general/compute/memory/storage-optimized at several sizes), including a
// storage-optimized 16-vCPU type with the resource ratios of the
// h1.4xlarge instances used for Table I.
package cloud

import (
	"errors"
	"fmt"
	"sort"
)

// Provider identifies a cloud provider in the simulation.
type Provider string

// The three synthetic providers. Their catalogs differ slightly in pricing
// and per-core speed so that cloud-configuration tuning has a real choice
// to make.
const (
	Nimbus  Provider = "nimbus"  // AWS-like
	Stratus Provider = "stratus" // Azure-like
	Cumulus Provider = "cumulus" // GCP-like
)

// Family groups instance types by the resource they are provisioned for.
type Family string

// Instance families mirroring the major providers' lineups.
const (
	General Family = "general" // balanced vCPU:memory
	Compute Family = "compute" // high clock, low memory per core
	Memory  Family = "memory"  // high memory per core
	Storage Family = "storage" // high local-disk bandwidth
)

// InstanceType describes one rentable VM shape.
type InstanceType struct {
	Name         string
	Provider     Provider
	Family       Family
	VCPUs        int
	MemoryGB     float64
	DiskMBps     float64 // aggregate local disk bandwidth
	NetworkMBps  float64 // instance network bandwidth
	CPUFactor    float64 // relative per-core speed (1.0 = baseline)
	PricePerHour float64 // USD per hour
}

// MemoryPerCore returns GB of memory per vCPU.
func (t InstanceType) MemoryPerCore() float64 {
	if t.VCPUs == 0 {
		return 0
	}
	return t.MemoryGB / float64(t.VCPUs)
}

// String renders "provider/name".
func (t InstanceType) String() string {
	return fmt.Sprintf("%s/%s", t.Provider, t.Name)
}

// ErrUnknownInstance is returned when a catalog lookup fails.
var ErrUnknownInstance = errors.New("cloud: unknown instance type")

// Catalog is an immutable set of instance types across providers.
type Catalog struct {
	types  []InstanceType
	byName map[string]InstanceType
}

// NewCatalog builds a catalog from the given types. Duplicate
// provider/name pairs keep the last entry.
func NewCatalog(types []InstanceType) *Catalog {
	c := &Catalog{
		types:  append([]InstanceType(nil), types...),
		byName: make(map[string]InstanceType, len(types)),
	}
	for _, t := range c.types {
		c.byName[t.String()] = t
	}
	return c
}

// Types returns all instance types, sorted by provider then price.
func (c *Catalog) Types() []InstanceType {
	out := append([]InstanceType(nil), c.types...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Provider != out[j].Provider {
			return out[i].Provider < out[j].Provider
		}
		return out[i].PricePerHour < out[j].PricePerHour
	})
	return out
}

// Lookup finds a type by its "provider/name" key.
func (c *Catalog) Lookup(key string) (InstanceType, error) {
	t, ok := c.byName[key]
	if !ok {
		return InstanceType{}, fmt.Errorf("%w: %q", ErrUnknownInstance, key)
	}
	return t, nil
}

// ByProvider returns the types offered by one provider.
func (c *Catalog) ByProvider(p Provider) []InstanceType {
	var out []InstanceType
	for _, t := range c.types {
		if t.Provider == p {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PricePerHour < out[j].PricePerHour })
	return out
}

// Providers returns the distinct providers present in the catalog.
func (c *Catalog) Providers() []Provider {
	seen := make(map[Provider]bool)
	var out []Provider
	for _, t := range c.types {
		if !seen[t.Provider] {
			seen[t.Provider] = true
			out = append(out, t.Provider)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of instance types.
func (c *Catalog) Len() int { return len(c.types) }

// DefaultCatalog returns the standard three-provider catalog used by the
// experiments. Shapes follow real-world ratios: general 4 GB/vCPU,
// compute 2 GB/vCPU with faster cores, memory 8 GB/vCPU, storage 16 GB/vCPU
// with high disk bandwidth (h1-like).
func DefaultCatalog() *Catalog {
	var types []InstanceType
	// Per-provider tweaks: relative price and core speed.
	providers := []struct {
		p         Provider
		priceMul  float64
		cpuFactor float64
	}{
		{Nimbus, 1.00, 1.00},
		{Stratus, 1.06, 0.97},
		{Cumulus, 0.95, 1.02},
	}
	sizes := []struct {
		suffix string
		vcpus  int
	}{
		{"large", 2},
		{"xlarge", 4},
		{"2xlarge", 8},
		{"4xlarge", 16},
	}
	families := []struct {
		fam       Family
		prefix    string
		memPerCPU float64
		diskMBps  float64 // per vCPU
		netMBps   float64 // per vCPU
		cpuBonus  float64
		pricePer  float64 // USD per vCPU-hour baseline
	}{
		{General, "g5", 4, 20, 80, 1.00, 0.048},
		{Compute, "c5", 2, 20, 90, 1.18, 0.043},
		{Memory, "r5", 8, 20, 80, 1.00, 0.063},
		{Storage, "h1", 16, 160, 100, 0.95, 0.110},
	}
	for _, pv := range providers {
		for _, f := range families {
			for _, s := range sizes {
				types = append(types, InstanceType{
					Name:         f.prefix + "." + s.suffix,
					Provider:     pv.p,
					Family:       f.fam,
					VCPUs:        s.vcpus,
					MemoryGB:     f.memPerCPU * float64(s.vcpus),
					DiskMBps:     f.diskMBps * float64(s.vcpus),
					NetworkMBps:  f.netMBps * float64(s.vcpus),
					CPUFactor:    pv.cpuFactor * f.cpuBonus,
					PricePerHour: pv.priceMul * f.pricePer * float64(s.vcpus),
				})
			}
		}
	}
	return NewCatalog(types)
}
