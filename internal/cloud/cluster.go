package cloud

import (
	"errors"
	"fmt"
	"math/rand"

	"seamlesstune/internal/stat"
)

// ErrInvalidCluster is returned for non-positive node counts or zero-value
// instance types.
var ErrInvalidCluster = errors.New("cloud: invalid cluster specification")

// ClusterSpec is the cloud half of a configuration: which instance type
// and how many of them. In the paper's framing this is what stage 1 of
// Fig. 1 selects.
type ClusterSpec struct {
	Instance InstanceType
	Count    int
}

// Validate reports whether the spec is usable.
func (s ClusterSpec) Validate() error {
	if s.Count <= 0 {
		return fmt.Errorf("%w: count %d", ErrInvalidCluster, s.Count)
	}
	if s.Instance.VCPUs <= 0 || s.Instance.MemoryGB <= 0 {
		return fmt.Errorf("%w: instance %q has no resources", ErrInvalidCluster, s.Instance.Name)
	}
	return nil
}

// TotalCores returns the cluster's total vCPU count.
func (s ClusterSpec) TotalCores() int { return s.Instance.VCPUs * s.Count }

// TotalMemoryGB returns the cluster's total memory.
func (s ClusterSpec) TotalMemoryGB() float64 { return s.Instance.MemoryGB * float64(s.Count) }

// CostPerHour returns the hourly rental cost in USD.
func (s ClusterSpec) CostPerHour() float64 {
	return s.Instance.PricePerHour * float64(s.Count)
}

// CostOf returns the cost of running for the given number of seconds,
// billed per-second (modern cloud billing).
func (s ClusterSpec) CostOf(seconds float64) float64 {
	if seconds < 0 {
		seconds = 0
	}
	return s.CostPerHour() * seconds / 3600
}

// String renders "3x nimbus/g5.xlarge".
func (s ClusterSpec) String() string {
	return fmt.Sprintf("%dx %s", s.Count, s.Instance)
}

// Resize returns a copy of the spec with a new node count (elasticity).
func (s ClusterSpec) Resize(count int) ClusterSpec {
	s.Count = count
	return s
}

// InterferenceLevel describes how contended the underlying hosts are.
type InterferenceLevel int

// Interference levels from dedicated hosts to heavily oversubscribed ones.
const (
	InterferenceNone InterferenceLevel = iota
	InterferenceLow
	InterferenceMedium
	InterferenceHigh
)

// String implements fmt.Stringer.
func (l InterferenceLevel) String() string {
	switch l {
	case InterferenceNone:
		return "none"
	case InterferenceLow:
		return "low"
	case InterferenceMedium:
		return "medium"
	case InterferenceHigh:
		return "high"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// interferenceParams returns the mean slowdown and volatility for a level.
func (l InterferenceLevel) params() (mean, vol float64) {
	switch l {
	case InterferenceLow:
		return 1.05, 0.03
	case InterferenceMedium:
		return 1.15, 0.08
	case InterferenceHigh:
		return 1.35, 0.15
	default:
		return 1.0, 0.0
	}
}

// Interference models co-location noise as a mean-reverting (AR(1))
// multiplicative slowdown on CPU, network and disk. Cloud providers can
// observe this state directly (a core argument of the paper); end users
// only see its effect on runtimes.
type Interference struct {
	Level InterferenceLevel

	cpu, net, disk float64
	init           bool
}

// NewInterference returns a process at the given level.
func NewInterference(level InterferenceLevel) *Interference {
	return &Interference{Level: level}
}

// Factors holds multiplicative slowdowns (>= 1 on average) applied to the
// respective resource speeds during one workload execution.
type Factors struct {
	CPU  float64
	Net  float64
	Disk float64
}

// Unit is the no-interference factor set.
func Unit() Factors { return Factors{CPU: 1, Net: 1, Disk: 1} }

// Step advances the process and returns the factors in effect for the next
// execution. The process is AR(1) with reversion 0.6 toward the level mean,
// so consecutive runs see correlated conditions — exactly what makes
// one-shot cloud benchmarking misleading (paper §II-A).
func (in *Interference) Step(r *rand.Rand) Factors {
	mean, vol := in.Level.params()
	if !in.init {
		in.cpu, in.net, in.disk = mean, mean, mean
		in.init = true
	}
	const revert = 0.6
	next := func(cur float64) float64 {
		v := cur + revert*(mean-cur) + vol*r.NormFloat64()
		return stat.Clamp(v, 1.0, mean+4*vol+0.5)
	}
	in.cpu = next(in.cpu)
	in.net = next(in.net)
	in.disk = next(in.disk)
	return Factors{CPU: in.cpu, Net: in.net, Disk: in.disk}
}

// Environment bundles the dynamic execution conditions for one tenant's
// runs: the interference process and its RNG stream. It is the provider-
// side state the paper argues only the cloud can see.
type Environment struct {
	Interference *Interference
	rng          *rand.Rand
}

// NewEnvironment returns an environment with the given interference level
// and a deterministic randomness stream derived from seed.
func NewEnvironment(level InterferenceLevel, seed int64) *Environment {
	return &Environment{
		Interference: NewInterference(level),
		rng:          stat.NewRNG(seed),
	}
}

// Next returns the interference factors for the next execution.
func (e *Environment) Next() Factors {
	if e.Interference == nil {
		return Unit()
	}
	return e.Interference.Step(e.rng)
}

// SetLevel changes the interference level mid-stream, modelling a change
// in co-located tenants (used by the re-tuning experiments).
func (e *Environment) SetLevel(level InterferenceLevel) {
	if e.Interference == nil {
		e.Interference = NewInterference(level)
		return
	}
	e.Interference.Level = level
	e.Interference.init = false
}
