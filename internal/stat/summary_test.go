package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want Summary
	}{
		{
			name: "empty",
			xs:   nil,
			want: Summary{},
		},
		{
			name: "single",
			xs:   []float64{5},
			want: Summary{N: 1, Mean: 5, Min: 5, Max: 5, Median: 5, P25: 5, P75: 5, P95: 5},
		},
		{
			name: "ordered",
			xs:   []float64{1, 2, 3, 4, 5},
			want: Summary{N: 5, Mean: 3, Std: math.Sqrt(2.5), Min: 1, Max: 5, Median: 3, P25: 2, P75: 4, P95: 4.8},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Summarize(tt.xs)
			if got.N != tt.want.N || !almostEq(got.Mean, tt.want.Mean, 1e-12) ||
				!almostEq(got.Std, tt.want.Std, 1e-12) ||
				!almostEq(got.Median, tt.want.Median, 1e-12) ||
				!almostEq(got.P95, tt.want.P95, 1e-12) {
				t.Errorf("Summarize(%v) = %+v, want %+v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestQuantileBounds(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("Quantile(q=0) = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 3 {
		t.Errorf("Quantile(q=1) = %v, want 3", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %v, want 0", got)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	r := NewRNG(1)
	xs := make([]float64, 200)
	var w Welford
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 7
		w.Add(xs[i])
	}
	if !almostEq(w.Mean(), Mean(xs), 1e-9) {
		t.Errorf("Welford mean = %v, batch mean = %v", w.Mean(), Mean(xs))
	}
	if !almostEq(w.Variance(), Variance(xs), 1e-9) {
		t.Errorf("Welford variance = %v, batch variance = %v", w.Variance(), Variance(xs))
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Fatal("EWMA initialized before any observation")
	}
	if got := e.Observe(10); got != 10 {
		t.Errorf("first Observe = %v, want 10", got)
	}
	if got := e.Observe(20); got != 15 {
		t.Errorf("second Observe = %v, want 15", got)
	}
}

func TestMinMaxOf(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if v, i := MinOf(xs); v != 1 || i != 1 {
		t.Errorf("MinOf = (%v, %d), want (1, 1)", v, i)
	}
	if v, i := MaxOf(xs); v != 5 || i != 4 {
		t.Errorf("MaxOf = (%v, %d), want (5, 4)", v, i)
	}
	if _, i := MinOf(nil); i != -1 {
		t.Errorf("MinOf(nil) index = %d, want -1", i)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		s := Summarize(xs)
		return Quantile(xs, 0) >= s.Min-1e-9 && Quantile(xs, 1) <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Welford mean is always within [min, max] of the sample.
func TestWelfordBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var w Welford
		lo, hi := math.Inf(1), math.Inf(-1)
		n := 0
		for _, v := range raw {
			// Restrict to a range where intermediate sums of squares
			// cannot overflow float64.
			if math.IsNaN(v) || math.Abs(v) > 1e100 {
				continue
			}
			w.Add(v)
			n++
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if n == 0 {
			return true
		}
		return w.Mean() >= lo-1e-9 && w.Mean() <= hi+1e-9 && w.Variance() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBootstrapCIContainsMean(t *testing.T) {
	r := NewRNG(42)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 10 + r.NormFloat64()
	}
	lo, hi := BootstrapCI(r, xs, 500, 0.05)
	m := Mean(xs)
	if !(lo <= m && m <= hi) {
		t.Errorf("CI [%v, %v] does not contain sample mean %v", lo, hi, m)
	}
	if hi-lo <= 0 {
		t.Errorf("CI width = %v, want > 0", hi-lo)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 3); got != 3 {
		t.Errorf("Clamp(5,0,3) = %v", got)
	}
	if got := Clamp(-1, 0, 3); got != 0 {
		t.Errorf("Clamp(-1,0,3) = %v", got)
	}
	if got := ClampInt(2, 0, 3); got != 2 {
		t.Errorf("ClampInt(2,0,3) = %v", got)
	}
}
