package stat

import (
	"math"
	"sort"
)

// ChangeDetector consumes a stream of observations (e.g. per-run workload
// runtimes) and reports when the underlying distribution appears to have
// shifted. Implementations are the statistical core of re-tuning detection
// (paper §V-D).
type ChangeDetector interface {
	// Observe folds in one observation and reports whether a change was
	// detected at this point.
	Observe(x float64) bool
	// Reset clears all state, e.g. after re-tuning completes.
	Reset()
}

// PageHinkley implements the Page-Hinkley test for detecting an increase
// in the mean of a stream. Delta is the magnitude of allowed fluctuation
// (drift tolerance) and Lambda the detection threshold; larger Lambda
// trades detection latency for fewer false alarms.
type PageHinkley struct {
	Delta  float64
	Lambda float64

	n    int
	mean float64
	mt   float64 // cumulative deviation
	mMin float64 // running minimum of mt
}

var _ ChangeDetector = (*PageHinkley)(nil)

// NewPageHinkley returns a detector with the given drift tolerance and
// threshold.
func NewPageHinkley(delta, lambda float64) *PageHinkley {
	return &PageHinkley{Delta: delta, Lambda: lambda}
}

// Observe implements ChangeDetector.
func (p *PageHinkley) Observe(x float64) bool {
	p.n++
	p.mean += (x - p.mean) / float64(p.n)
	p.mt += x - p.mean - p.Delta
	if p.mt < p.mMin {
		p.mMin = p.mt
	}
	return p.mt-p.mMin > p.Lambda
}

// Reset implements ChangeDetector.
func (p *PageHinkley) Reset() {
	p.n, p.mean, p.mt, p.mMin = 0, 0, 0, 0
}

// CUSUM is a two-sided cumulative-sum detector around a reference mean
// learned from the first Warmup observations. K is the slack (in standard
// deviations) and H the decision threshold (in standard deviations).
type CUSUM struct {
	K      float64
	H      float64
	Warmup int

	ref    Welford
	hi, lo float64
}

var _ ChangeDetector = (*CUSUM)(nil)

// NewCUSUM returns a two-sided CUSUM detector. warmup observations are used
// to estimate the in-control mean and deviation before testing begins.
func NewCUSUM(k, h float64, warmup int) *CUSUM {
	if warmup < 2 {
		warmup = 2
	}
	return &CUSUM{K: k, H: h, Warmup: warmup}
}

// Observe implements ChangeDetector.
func (c *CUSUM) Observe(x float64) bool {
	if c.ref.N() < c.Warmup {
		c.ref.Add(x)
		return false
	}
	std := c.ref.Std()
	if std == 0 {
		std = math.Abs(c.ref.Mean())*0.01 + 1e-9
	}
	z := (x - c.ref.Mean()) / std
	c.hi = math.Max(0, c.hi+z-c.K)
	c.lo = math.Max(0, c.lo-z-c.K)
	return c.hi > c.H || c.lo > c.H
}

// Reset implements ChangeDetector.
func (c *CUSUM) Reset() {
	c.ref = Welford{}
	c.hi, c.lo = 0, 0
}

// MannWhitneyU performs the Mann-Whitney U test (two-sided, normal
// approximation) on samples a and b. It returns the U statistic and the
// approximate p-value. Samples shorter than 2 yield p = 1.
func MannWhitneyU(a, b []float64) (u float64, p float64) {
	n1, n2 := len(a), len(b)
	if n1 < 2 || n2 < 2 {
		return 0, 1
	}
	type obs struct {
		v     float64
		group int
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range a {
		all = append(all, obs{v, 0})
	}
	for _, v := range b {
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign mid-ranks to ties and accumulate the tie correction term.
	ranks := make([]float64, len(all))
	tieCorrection := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieCorrection += t*t*t - t
		i = j
	}
	r1 := 0.0
	for i, o := range all {
		if o.group == 0 {
			r1 += ranks[i]
		}
	}
	u1 := r1 - float64(n1*(n1+1))/2
	u2 := float64(n1*n2) - u1
	u = math.Min(u1, u2)

	n := float64(n1 + n2)
	mu := float64(n1*n2) / 2
	sigma2 := float64(n1*n2) / 12 * (n + 1 - tieCorrection/(n*(n-1)))
	if sigma2 <= 0 {
		return u, 1
	}
	z := (u - mu + 0.5) / math.Sqrt(sigma2) // continuity correction
	p = 2 * normalCDF(-math.Abs(z))
	if p > 1 {
		p = 1
	}
	return u, p
}

// normalCDF is the standard normal cumulative distribution function.
func normalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalCDF exposes the standard normal CDF for packages that need it
// (e.g. expected-improvement acquisition in gp).
func NormalCDF(x float64) float64 { return normalCDF(x) }

// NormalPDF is the standard normal density.
func NormalPDF(x float64) float64 {
	return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
}

// WindowedMannWhitney detects change by comparing a sliding reference
// window against a recent window with the Mann-Whitney U test. It adapts
// to each workload's own runtime variance, which is exactly the property
// fixed percentage thresholds lack (§V-D).
type WindowedMannWhitney struct {
	RefSize    int
	RecentSize int
	Alpha      float64

	ref, recent []float64
}

var _ ChangeDetector = (*WindowedMannWhitney)(nil)

// NewWindowedMannWhitney returns a detector with the given window sizes and
// significance level alpha.
func NewWindowedMannWhitney(refSize, recentSize int, alpha float64) *WindowedMannWhitney {
	if refSize < 2 {
		refSize = 2
	}
	if recentSize < 2 {
		recentSize = 2
	}
	return &WindowedMannWhitney{RefSize: refSize, RecentSize: recentSize, Alpha: alpha}
}

// Observe implements ChangeDetector.
func (w *WindowedMannWhitney) Observe(x float64) bool {
	if len(w.ref) < w.RefSize {
		w.ref = append(w.ref, x)
		return false
	}
	w.recent = append(w.recent, x)
	if len(w.recent) > w.RecentSize {
		w.recent = w.recent[1:]
	}
	if len(w.recent) < w.RecentSize {
		return false
	}
	_, p := MannWhitneyU(w.ref, w.recent)
	return p < w.Alpha
}

// Reset implements ChangeDetector.
func (w *WindowedMannWhitney) Reset() {
	w.ref = w.ref[:0]
	w.recent = w.recent[:0]
}
