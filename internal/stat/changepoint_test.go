package stat

import (
	"math"
	"testing"
)

// driftStream produces n1 observations around mean m1 then n2 around m2.
func driftStream(seed int64, n1, n2 int, m1, m2, sigma float64) []float64 {
	r := NewRNG(seed)
	xs := make([]float64, 0, n1+n2)
	for i := 0; i < n1; i++ {
		xs = append(xs, m1+sigma*r.NormFloat64())
	}
	for i := 0; i < n2; i++ {
		xs = append(xs, m2+sigma*r.NormFloat64())
	}
	return xs
}

// firstDetection feeds xs into d and returns the index of the first
// detection, or -1.
func firstDetection(d ChangeDetector, xs []float64) int {
	for i, x := range xs {
		if d.Observe(x) {
			return i
		}
	}
	return -1
}

func TestPageHinkleyDetectsShift(t *testing.T) {
	xs := driftStream(1, 50, 50, 100, 130, 5)
	d := NewPageHinkley(2, 30)
	got := firstDetection(d, xs)
	if got < 50 || got > 70 {
		t.Errorf("detection at %d, want within [50, 70]", got)
	}
}

func TestPageHinkleyNoFalseAlarm(t *testing.T) {
	xs := driftStream(2, 200, 0, 100, 100, 5)
	d := NewPageHinkley(2, 50)
	if got := firstDetection(d, xs); got != -1 {
		t.Errorf("false alarm at %d on a stationary stream", got)
	}
}

func TestPageHinkleyReset(t *testing.T) {
	d := NewPageHinkley(0.1, 5)
	for i := 0; i < 20; i++ {
		d.Observe(float64(i * 10))
	}
	d.Reset()
	if d.Observe(1) {
		t.Error("detection immediately after Reset")
	}
}

func TestCUSUMDetectsShiftBothDirections(t *testing.T) {
	tests := []struct {
		name   string
		m2     float64
		within int
	}{
		{"upward", 130, 75},
		{"downward", 70, 75},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			xs := driftStream(3, 50, 50, 100, tt.m2, 5)
			d := NewCUSUM(0.5, 5, 20)
			got := firstDetection(d, xs)
			if got < 50 || got > tt.within {
				t.Errorf("detection at %d, want within [50, %d]", got, tt.within)
			}
		})
	}
}

func TestCUSUMStationaryQuiet(t *testing.T) {
	xs := driftStream(4, 300, 0, 100, 100, 5)
	d := NewCUSUM(0.5, 8, 20)
	if got := firstDetection(d, xs); got != -1 {
		t.Errorf("false alarm at %d", got)
	}
}

func TestCUSUMZeroVarianceReference(t *testing.T) {
	d := NewCUSUM(0.5, 4, 3)
	for i := 0; i < 3; i++ {
		d.Observe(100) // constant warmup: zero variance
	}
	// A clear jump should still eventually be detected despite the
	// degenerate reference deviation.
	detected := false
	for i := 0; i < 10; i++ {
		if d.Observe(150) {
			detected = true
			break
		}
	}
	if !detected {
		t.Error("no detection after jump with zero-variance reference")
	}
}

func TestMannWhitneyU(t *testing.T) {
	tests := []struct {
		name      string
		a, b      []float64
		wantPLow  bool // p < 0.05
		wantPHigh bool // p > 0.3
	}{
		{
			name:     "clearly different",
			a:        []float64{1, 2, 3, 4, 5, 6, 7, 8},
			b:        []float64{101, 102, 103, 104, 105, 106, 107, 108},
			wantPLow: true,
		},
		{
			name:      "identical distributions",
			a:         []float64{1, 2, 3, 4, 5, 6, 7, 8},
			b:         []float64{1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5, 8.5},
			wantPHigh: true,
		},
		{
			name:      "too short",
			a:         []float64{1},
			b:         []float64{2, 3},
			wantPHigh: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, p := MannWhitneyU(tt.a, tt.b)
			if tt.wantPLow && p >= 0.05 {
				t.Errorf("p = %v, want < 0.05", p)
			}
			if tt.wantPHigh && p <= 0.3 {
				t.Errorf("p = %v, want > 0.3", p)
			}
		})
	}
}

func TestMannWhitneyTies(t *testing.T) {
	a := []float64{5, 5, 5, 5}
	b := []float64{5, 5, 5, 5}
	_, p := MannWhitneyU(a, b)
	if p < 0.99 {
		t.Errorf("all-tie samples p = %v, want ~1", p)
	}
}

func TestWindowedMannWhitneyDetects(t *testing.T) {
	xs := driftStream(5, 30, 30, 100, 140, 5)
	d := NewWindowedMannWhitney(20, 8, 0.01)
	got := firstDetection(d, xs)
	if got < 30 || got > 45 {
		t.Errorf("detection at %d, want within [30, 45]", got)
	}
}

func TestWindowedMannWhitneyQuietOnStationary(t *testing.T) {
	xs := driftStream(6, 200, 0, 100, 100, 10)
	d := NewWindowedMannWhitney(30, 10, 0.001)
	if got := firstDetection(d, xs); got != -1 {
		t.Errorf("false alarm at %d", got)
	}
}

func TestWindowedMannWhitneyReset(t *testing.T) {
	d := NewWindowedMannWhitney(5, 3, 0.05)
	for i := 0; i < 20; i++ {
		d.Observe(float64(i))
	}
	d.Reset()
	if d.Observe(0) {
		t.Error("detection right after Reset")
	}
}

func TestNormalCDFValues(t *testing.T) {
	tests := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1.959964, 0.975},
		{-1.959964, 0.025},
	}
	for _, tt := range tests {
		if got := NormalCDF(tt.x); math.Abs(got-tt.want) > 1e-4 {
			t.Errorf("NormalCDF(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestNormalPDFSymmetric(t *testing.T) {
	if math.Abs(NormalPDF(1.3)-NormalPDF(-1.3)) > 1e-12 {
		t.Error("NormalPDF not symmetric")
	}
	if math.Abs(NormalPDF(0)-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Error("NormalPDF(0) wrong")
	}
}
