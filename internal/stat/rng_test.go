package stat

import (
	"math"
	"testing"
)

func TestNewRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := Fork(parent)
	// The child must be deterministic given the parent state at fork time.
	parent2 := NewRNG(7)
	child2 := Fork(parent2)
	for i := 0; i < 50; i++ {
		if child.Float64() != child2.Float64() {
			t.Fatalf("forked generators not reproducible at draw %d", i)
		}
	}
}

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(42, "tenant-a", "wordcount", "0")
	b := DeriveSeed(42, "tenant-a", "wordcount", "0")
	if a != b {
		t.Fatalf("same inputs derived %d and %d", a, b)
	}
	r1, r2 := DeriveRNG(42, "x"), DeriveRNG(42, "x")
	for i := 0; i < 50; i++ {
		if r1.Float64() != r2.Float64() {
			t.Fatalf("derived generators diverged at draw %d", i)
		}
	}
}

func TestDeriveSeedDistinguishesInputs(t *testing.T) {
	base := DeriveSeed(1, "t", "w", "0")
	for name, other := range map[string]int64{
		"different base":       DeriveSeed(2, "t", "w", "0"),
		"different tenant":     DeriveSeed(1, "u", "w", "0"),
		"different submission": DeriveSeed(1, "t", "w", "1"),
		"shifted boundary":     DeriveSeed(1, "tw", "", "0"),
		"fewer labels":         DeriveSeed(1, "t", "w"),
	} {
		if other == base {
			t.Errorf("%s derived the same seed %d", name, base)
		}
	}
}

func TestDeriveSeedStateless(t *testing.T) {
	// Consuming randomness from one derived stream must not affect another
	// derivation — the property Fork does not have.
	r := DeriveRNG(9, "a")
	for i := 0; i < 100; i++ {
		r.Float64()
	}
	if DeriveSeed(9, "b") != DeriveSeed(9, "b") {
		t.Error("derivation depends on hidden state")
	}
}

func TestLognormalMean(t *testing.T) {
	r := NewRNG(3)
	const mu, sigma = 1.0, 0.5
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(Lognormal(r, mu, sigma))
	}
	want := LognormalMean(mu, sigma)
	if math.Abs(w.Mean()-want)/want > 0.02 {
		t.Errorf("empirical lognormal mean = %v, want ~%v", w.Mean(), want)
	}
}

func TestParetoSupport(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := Pareto(r, 2.0, 1.5)
		if v < 2.0 {
			t.Fatalf("Pareto draw %v below xm", v)
		}
	}
}

func TestZipfDistribution(t *testing.T) {
	const n = 100
	z := NewZipf(n, 1.0)
	if z.N() != n {
		t.Fatalf("N = %d, want %d", z.N(), n)
	}
	r := NewRNG(11)
	counts := make([]int, n+1)
	const draws = 100000
	for i := 0; i < draws; i++ {
		k := z.Draw(r)
		if k < 1 || k > n {
			t.Fatalf("draw %d out of range", k)
		}
		counts[k]++
	}
	// Rank 1 should be the most frequent, and empirical frequency should
	// track the analytic mass within a loose tolerance.
	if counts[1] < counts[2] {
		t.Errorf("rank 1 count %d < rank 2 count %d", counts[1], counts[2])
	}
	emp := float64(counts[1]) / draws
	if math.Abs(emp-z.Prob(1)) > 0.02 {
		t.Errorf("rank-1 empirical freq %v vs analytic %v", emp, z.Prob(1))
	}
	// Probability masses sum to 1.
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += z.Prob(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Zipf masses sum to %v, want 1", sum)
	}
}

func TestZipfDegenerate(t *testing.T) {
	z := NewZipf(0, 1.2)
	r := NewRNG(1)
	if k := z.Draw(r); k != 1 {
		t.Errorf("degenerate Zipf draw = %d, want 1", k)
	}
	if p := z.Prob(2); p != 0 {
		t.Errorf("out-of-range Prob = %v, want 0", p)
	}
}
