package stat

import (
	"math"
	"testing"
)

func TestNewRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := Fork(parent)
	// The child must be deterministic given the parent state at fork time.
	parent2 := NewRNG(7)
	child2 := Fork(parent2)
	for i := 0; i < 50; i++ {
		if child.Float64() != child2.Float64() {
			t.Fatalf("forked generators not reproducible at draw %d", i)
		}
	}
}

func TestLognormalMean(t *testing.T) {
	r := NewRNG(3)
	const mu, sigma = 1.0, 0.5
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(Lognormal(r, mu, sigma))
	}
	want := LognormalMean(mu, sigma)
	if math.Abs(w.Mean()-want)/want > 0.02 {
		t.Errorf("empirical lognormal mean = %v, want ~%v", w.Mean(), want)
	}
}

func TestParetoSupport(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := Pareto(r, 2.0, 1.5)
		if v < 2.0 {
			t.Fatalf("Pareto draw %v below xm", v)
		}
	}
}

func TestZipfDistribution(t *testing.T) {
	const n = 100
	z := NewZipf(n, 1.0)
	if z.N() != n {
		t.Fatalf("N = %d, want %d", z.N(), n)
	}
	r := NewRNG(11)
	counts := make([]int, n+1)
	const draws = 100000
	for i := 0; i < draws; i++ {
		k := z.Draw(r)
		if k < 1 || k > n {
			t.Fatalf("draw %d out of range", k)
		}
		counts[k]++
	}
	// Rank 1 should be the most frequent, and empirical frequency should
	// track the analytic mass within a loose tolerance.
	if counts[1] < counts[2] {
		t.Errorf("rank 1 count %d < rank 2 count %d", counts[1], counts[2])
	}
	emp := float64(counts[1]) / draws
	if math.Abs(emp-z.Prob(1)) > 0.02 {
		t.Errorf("rank-1 empirical freq %v vs analytic %v", emp, z.Prob(1))
	}
	// Probability masses sum to 1.
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += z.Prob(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Zipf masses sum to %v, want 1", sum)
	}
}

func TestZipfDegenerate(t *testing.T) {
	z := NewZipf(0, 1.2)
	r := NewRNG(1)
	if k := z.Draw(r); k != 1 {
		t.Errorf("degenerate Zipf draw = %d, want 1", k)
	}
	if p := z.Prob(2); p != 0 {
		t.Errorf("out-of-range Prob = %v, want 0", p)
	}
}
