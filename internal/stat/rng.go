// Package stat provides the statistical substrate used throughout
// seamlesstune: seeded random-number plumbing, heavy-tailed distributions
// for workload and interference modelling, summary statistics, and the
// change-point detectors that drive re-tuning decisions.
//
// Everything in this package is deterministic given a seed: no function
// reads global randomness or wall-clock time. Components that need
// randomness accept an explicit *rand.Rand (see RNG helpers below), which
// keeps simulation runs reproducible end to end.
package stat

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand"
)

// NewRNG returns a rand.Rand seeded with the given seed. It exists so that
// call sites never reach for the global rand functions, which would break
// reproducibility.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Fork derives an independent generator from r. Forking lets concurrent or
// per-entity components (one stream per executor, per tenant, ...) consume
// randomness without perturbing each other's sequences.
func Fork(r *rand.Rand) *rand.Rand {
	return rand.New(rand.NewSource(r.Int63()))
}

// DeriveSeed deterministically mixes a base seed with string labels into a
// new seed. Unlike Fork, derivation is stateless: the result depends only
// on (base, labels), never on how much randomness anyone else consumed.
// That property is what makes concurrent tuning sessions replayable — each
// session seeds itself from (service seed, tenant, workload, submission #)
// and gets the same stream no matter how sessions interleave.
//
// Labels are length-prefixed before hashing, so ("ab", "c") and
// ("a", "bc") derive different seeds.
func DeriveSeed(base int64, labels ...string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(base))
	h.Write(buf[:])
	for _, l := range labels {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(l)))
		h.Write(buf[:])
		h.Write([]byte(l))
	}
	x := h.Sum64()
	// SplitMix64 finalizer: FNV's low bits correlate for short inputs, and
	// rand.NewSource keys off the full word, so scatter before returning.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// DeriveRNG returns a generator seeded with DeriveSeed(base, labels...).
func DeriveRNG(base int64, labels ...string) *rand.Rand {
	return NewRNG(DeriveSeed(base, labels...))
}

// Lognormal draws from a lognormal distribution parameterized by the
// location mu and scale sigma of the underlying normal. It is the
// canonical straggler model: most task durations cluster near exp(mu)
// while a heavy right tail produces occasional slow outliers.
func Lognormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// LognormalMean returns the mean of Lognormal(mu, sigma), useful when a
// model needs the expected value of a noisy quantity.
func LognormalMean(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*sigma/2)
}

// Pareto draws from a Pareto(xm, alpha) distribution: support [xm, inf),
// shape alpha. Used for skewed partition sizes (data skew).
func Pareto(r *rand.Rand, xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Zipf ranks items 1..n with exponent s and returns a draw in [1, n].
// It backs the synthetic text generators (word frequencies) and the
// power-law degree distribution of web graphs.
type Zipf struct {
	n   int
	cum []float64 // cumulative normalized weights
}

// NewZipf builds a Zipf sampler over ranks 1..n with exponent s > 0.
// n must be >= 1; otherwise a single-rank sampler is returned.
func NewZipf(n int, s float64) *Zipf {
	if n < 1 {
		n = 1
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 1; i <= n; i++ {
		total += 1 / math.Pow(float64(i), s)
		cum[i-1] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{n: n, cum: cum}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return z.n }

// Draw returns a rank in [1, z.N()].
func (z *Zipf) Draw(r *rand.Rand) int {
	u := r.Float64()
	// Binary search for the first cumulative weight >= u.
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Prob returns the probability mass of rank k (1-based).
func (z *Zipf) Prob(k int) float64 {
	if k < 1 || k > z.n {
		return 0
	}
	if k == 1 {
		return z.cum[0]
	}
	return z.cum[k-1] - z.cum[k-2]
}

// Clamp bounds v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampInt bounds v to [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
