package stat

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
	P25    float64
	P75    float64
	P95    float64
}

// Summarize computes descriptive statistics for xs. An empty sample yields
// a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Min:  math.Inf(1),
		Max:  math.Inf(-1),
	}
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Std = Std(xs)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = quantileSorted(sorted, 0.5)
	s.P25 = quantileSorted(sorted, 0.25)
	s.P75 = quantileSorted(sorted, 0.75)
	s.P95 = quantileSorted(sorted, 0.95)
	return s
}

// String renders the summary compactly for experiment logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f p50=%.3f p95=%.3f max=%.3f",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.P95, s.Max)
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (n-1), or 0 for samples
// shorter than 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// Std returns the sample standard deviation.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It copies and sorts xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MinOf returns the minimum of xs and its index, or (+Inf, -1) when empty.
func MinOf(xs []float64) (float64, int) {
	best, idx := math.Inf(1), -1
	for i, x := range xs {
		if x < best {
			best, idx = x, i
		}
	}
	return best, idx
}

// MaxOf returns the maximum of xs and its index, or (-Inf, -1) when empty.
func MaxOf(xs []float64) (float64, int) {
	best, idx := math.Inf(-1), -1
	for i, x := range xs {
		if x > best {
			best, idx = x, i
		}
	}
	return best, idx
}

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha in (0, 1]. The zero value is not usable; construct with NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor. alpha is clamped
// to (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 {
		alpha = 1e-3
	}
	if alpha > 1 {
		alpha = 1
	}
	return &EWMA{alpha: alpha}
}

// Observe folds x into the average and returns the updated value.
func (e *EWMA) Observe(x float64) float64 {
	if !e.init {
		e.value, e.init = x, true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one observation has been folded in.
func (e *EWMA) Initialized() bool { return e.init }

// Welford accumulates running mean/variance without storing the sample.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased running variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the running standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// BootstrapCI estimates a (1-alpha) confidence interval for the mean of xs
// by resampling nboot times with the supplied generator. It returns the
// (lo, hi) bounds; for empty samples it returns zeros.
func BootstrapCI(r interface{ Intn(int) int }, xs []float64, nboot int, alpha float64) (lo, hi float64) {
	if len(xs) == 0 || nboot <= 0 {
		return 0, 0
	}
	means := make([]float64, nboot)
	for b := 0; b < nboot; b++ {
		sum := 0.0
		for i := 0; i < len(xs); i++ {
			sum += xs[r.Intn(len(xs))]
		}
		means[b] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	return quantileSorted(means, alpha/2), quantileSorted(means, 1-alpha/2)
}
