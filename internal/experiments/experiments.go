// Package experiments regenerates every table and figure of the paper,
// plus its in-text quantitative claims, as typed experiment constructors.
// Each experiment builds its own workloads and clusters, runs fully
// deterministic simulations from a seed, and returns rows that
// cmd/experiments prints and the root benchmarks report. The experiment
// ids (T1, F1, F2, C1..C8) are indexed in DESIGN.md and EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/confspace"
	"seamlesstune/internal/spark"
	"seamlesstune/internal/workload"
)

// GB is one gibibyte.
const GB = int64(1) << 30

// Table is a rendered experiment artifact: a titled, aligned text table
// with optional footnotes comparing against the paper's reported values.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// TableICluster returns the Table-I experimental setup: four
// h1.4xlarge-like storage-optimized instances.
func TableICluster() (cloud.ClusterSpec, error) {
	it, err := cloud.DefaultCatalog().Lookup("nimbus/h1.4xlarge")
	if err != nil {
		return cloud.ClusterSpec{}, err
	}
	return cloud.ClusterSpec{Instance: it, Count: 4}, nil
}

// runConfig executes one (workload, size, config) triple on a cluster
// without interference, deterministically from the given seed.
func runConfig(w workload.Workload, size int64, space *confspace.Space, cfg confspace.Config, cluster cloud.ClusterSpec, seed int64) spark.Result {
	job := w.Job(size)
	conf := spark.FromConfig(space, cfg)
	return runSeeded(job, conf, cluster, cloud.Unit(), spark.RunOpts{}, seed)
}

// pct formats a fraction as a percentage string.
func pct(f float64) string { return fmt.Sprintf("%.0f%%", f*100) }

// secs formats seconds.
func secs(v float64) string { return fmt.Sprintf("%.1fs", v) }
