package experiments

import (
	"context"
	"fmt"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/confspace"
	"seamlesstune/internal/core"
	"seamlesstune/internal/slo"
	"seamlesstune/internal/spark"
	"seamlesstune/internal/workload"
)

// Fig1Row reports one workload's pass through the two-stage pipeline.
type Fig1Row struct {
	Workload        string
	Cluster         cloud.ClusterSpec
	CloudRuns       int
	DISCRuns        int
	DefaultRuntimeS float64
	TunedRuntimeS   float64
	Improvement     float64
	TuningCostUSD   float64
	WarmStarted     bool
}

// Fig1Result exercises the workflow of Fig. 1 end to end: stage 1 picks
// the virtual cluster, stage 2 the DISC configuration, for two workloads
// of one tenant — demonstrating principle 1 (tuning with minimal user
// intervention).
type Fig1Result struct {
	Rows []Fig1Row
}

// Fig1Pipeline runs the pipeline for wordcount and pagerank.
func Fig1Pipeline(seed int64) (Fig1Result, error) {
	svc, err := core.NewService(
		core.WithSeed(seed),
		core.WithSparkSpace(confspace.SparkSubspace(12)),
		core.WithBudgets(10, 25),
		core.WithNodeRange(2, 10),
	)
	if err != nil {
		return Fig1Result{}, err
	}
	var out Fig1Result
	for _, w := range []workload.Workload{workload.Wordcount{}, workload.PageRank{}} {
		reg := core.Registration{
			Tenant:     "tenant-1",
			Workload:   w,
			InputBytes: 8 * GB,
			Objective:  slo.Objective{WithinPctOfOptimal: 0.25},
		}
		res, err := svc.TunePipeline(context.Background(), reg)
		if err != nil {
			return Fig1Result{}, fmt.Errorf("pipeline for %s: %w", w.Name(), err)
		}
		out.Rows = append(out.Rows, Fig1Row{
			Workload:        w.Name(),
			Cluster:         res.Cloud.Cluster,
			CloudRuns:       len(res.Cloud.Session.Trials),
			DISCRuns:        len(res.DISC.Session.Trials),
			DefaultRuntimeS: res.DefaultRuntimeS,
			TunedRuntimeS:   res.TunedRuntimeS,
			Improvement:     res.Improvement(),
			TuningCostUSD:   res.TuningCostUSD,
			WarmStarted:     res.DISC.WarmStarted,
		})
	}
	return out, nil
}

// Render formats the pipeline outcomes.
func (r Fig1Result) Render() Table {
	t := Table{
		ID:     "F1",
		Title:  "Two-stage tuning pipeline (Fig. 1): cloud config, then DISC config",
		Header: []string{"workload", "stage1: cluster", "runs(s1+s2)", "default", "tuned", "improvement", "tuning cost"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Workload,
			row.Cluster.String(),
			fmt.Sprintf("%d+%d", row.CloudRuns, row.DISCRuns),
			secs(row.DefaultRuntimeS),
			secs(row.TunedRuntimeS),
			pct(row.Improvement),
			fmt.Sprintf("$%.2f", row.TuningCostUSD),
		})
	}
	t.Notes = append(t.Notes, "the end user supplies only the workload and an SLO; both stages run provider-side")
	return t
}

// Fig2StageRow describes one stage of the physical plan as executed.
type Fig2StageRow struct {
	Stage        int
	Name         string
	Deps         []int
	Tasks        int
	DurationS    float64
	ShuffleMB    int64
	CacheHitFrac float64
}

// Fig2Result is the structural reproduction of Fig. 2: a PageRank program
// submitted to the driver becomes a DAG of stages, each stage a task set
// scheduled onto executors.
type Fig2Result struct {
	Workload  string
	Stages    []Fig2StageRow
	Executors int
	Slots     int
	RuntimeS  float64
}

// Fig2Architecture traces one PageRank execution through the simulator.
func Fig2Architecture(seed int64) (Fig2Result, error) {
	cluster, err := TableICluster()
	if err != nil {
		return Fig2Result{}, err
	}
	space := confspace.SparkSpace()
	cfg := space.Default()
	cfg[confspace.ParamExecutorInstances] = 8
	cfg[confspace.ParamExecutorCores] = 8
	cfg[confspace.ParamExecutorMemoryMB] = 16384
	cfg[confspace.ParamDriverMemoryMB] = 4096
	cfg[confspace.ParamDefaultParallelism] = 128

	w := workload.PageRank{Iterations: 4}
	job := w.Job(4 * GB)
	res := runSeeded(job, spark.FromConfig(space, cfg), cluster, cloud.Unit(), spark.RunOpts{}, seed)
	if res.Failed {
		return Fig2Result{}, fmt.Errorf("fig2 trace failed: %s", res.Reason)
	}
	out := Fig2Result{
		Workload:  w.Name(),
		Executors: res.Executors,
		Slots:     res.SlotsTotal,
		RuntimeS:  res.RuntimeS,
	}
	for i, sm := range res.Stages {
		out.Stages = append(out.Stages, Fig2StageRow{
			Stage:        sm.ID,
			Name:         sm.Name,
			Deps:         append([]int(nil), job.Stages[i].Deps...),
			Tasks:        sm.Tasks,
			DurationS:    sm.DurationS,
			ShuffleMB:    (sm.ShuffleRead + sm.ShuffleWrite) >> 20,
			CacheHitFrac: sm.CacheHitFrac,
		})
	}
	return out, nil
}

// Render formats the execution trace.
func (r Fig2Result) Render() Table {
	t := Table{
		ID:     "F2",
		Title:  "Spark internal architecture (Fig. 2): job DAG, stages, task sets, executors",
		Header: []string{"stage", "name", "deps", "tasks", "duration", "shuffle MB", "cache hit"},
	}
	for _, s := range r.Stages {
		deps := "-"
		if len(s.Deps) > 0 {
			deps = fmt.Sprint(s.Deps)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(s.Stage), s.Name, deps, fmt.Sprint(s.Tasks),
			secs(s.DurationS), fmt.Sprint(s.ShuffleMB), pct(s.CacheHitFrac),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%s on %d executors (%d slots), makespan %.1fs", r.Workload, r.Executors, r.Slots, r.RuntimeS),
		"driver splits the job at shuffle boundaries; iteration stages re-read the cached adjacency RDD")
	return t
}
