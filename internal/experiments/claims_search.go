package experiments

import (
	"fmt"
	"math"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/stat"
	"seamlesstune/internal/tuner"
	"seamlesstune/internal/workload"
)

// ---------------------------------------------------------------------------
// C3 — search-space growth (§III-B: tuning just 30 of Spark's parameters
// exceeds 10^40 possible configurations).

// C3Row reports one dimensionality's search difficulty.
type C3Row struct {
	Dims      int
	Log10Size float64
	// ReferenceBest is the best runtime of a deep (5x budget) search in
	// this subspace — its achievable optimum.
	ReferenceBest float64
	// RandomGap and BayesGap are the relative gaps to ReferenceBest
	// reached at the fixed budget by uniform random search and Bayesian
	// optimization. Gaps growing with dimension quantify the search-space
	// explosion.
	RandomGap float64
	BayesGap  float64
}

// C3Result shows how space growth hurts naive search more than
// model-based search.
type C3Result struct {
	Workload string
	Budget   int
	Rows     []C3Row
}

// C3SearchSpaceGrowth sweeps subspace dimensionality.
func C3SearchSpaceGrowth(seed int64, budget int) (C3Result, error) {
	if budget <= 0 {
		budget = 40
	}
	cluster, err := TableICluster()
	if err != nil {
		return C3Result{}, err
	}
	w := workload.Sort{}
	size := 8 * GB
	out := C3Result{Workload: w.Name(), Budget: budget}
	for _, dims := range []int{4, 8, 16, 30, 41} {
		space := confspace.SparkSubspace(dims)
		run := func(tn tuner.Tuner, salt int64) (float64, error) {
			i := 0
			obj := func(cfg confspace.Config) tuner.Measurement {
				i++
				res := runConfig(w, size, space, cfg, cluster, seed+int64(i)*17+salt)
				return tuner.Measurement{Runtime: res.RuntimeS, Cost: res.CostUSD, Failed: res.Failed}
			}
			res, err := tuner.Run(tn, obj, budget, stat.NewRNG(seed+salt))
			if err != nil {
				return 0, err
			}
			if !res.Found {
				return math.Inf(1), nil
			}
			return res.Best.Runtime, nil
		}
		// Average over repetitions: a single 40-run search is dominated by
		// sampling luck. The 2·reps searches take disjoint salts (no shared
		// RNG), so they fan out across workers; accumulating in rep order
		// keeps both averages bit-identical to the old sequential loop.
		const reps = 3
		type searchOut struct {
			v   float64
			err error
		}
		runs := parallelMap(2*reps, func(k int) searchOut {
			rep := int64(k / 2)
			var v float64
			var err error
			if k%2 == 0 {
				v, err = run(tuner.NewRandomSearch(space), 100+rep*11)
			} else {
				v, err = run(newBayesOpt(space, seed+200+rep*11), 200+rep*11)
			}
			return searchOut{v, err}
		})
		var randBest, boBest float64
		for rep := 0; rep < reps; rep++ {
			rb, bb := runs[2*rep], runs[2*rep+1]
			if rb.err != nil {
				return C3Result{}, rb.err
			}
			if bb.err != nil {
				return C3Result{}, bb.err
			}
			randBest += rb.v / reps
			boBest += bb.v / reps
		}
		// Deep reference search approximates the subspace optimum.
		deep := tuner.NewRandomSearch(space)
		i := 0
		deepObj := func(cfg confspace.Config) tuner.Measurement {
			i++
			res := runConfig(w, size, space, cfg, cluster, seed+int64(i)*17+3)
			return tuner.Measurement{Runtime: res.RuntimeS, Cost: res.CostUSD, Failed: res.Failed}
		}
		ref, err := tuner.Run(deep, deepObj, budget*5, stat.NewRNG(seed+4))
		if err != nil {
			return C3Result{}, err
		}
		refBest := math.Min(ref.Best.Runtime, math.Min(randBest, boBest))
		gap := func(v float64) float64 {
			if refBest <= 0 || math.IsInf(v, 1) {
				return math.Inf(1)
			}
			return (v - refBest) / refBest
		}
		out.Rows = append(out.Rows, C3Row{
			Dims:          dims,
			Log10Size:     space.Log10Size(),
			ReferenceBest: refBest,
			RandomGap:     gap(randBest),
			BayesGap:      gap(boBest),
		})
	}
	return out, nil
}

// Render formats the dimensionality sweep.
func (r C3Result) Render() Table {
	t := Table{
		ID:     "C3",
		Title:  fmt.Sprintf("Search-space growth on %s (budget %d executions)", r.Workload, r.Budget),
		Header: []string{"params", "log10(|space|)", "subspace best", "random gap", "bayesopt gap"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(row.Dims),
			fmt.Sprintf("%.1f", row.Log10Size),
			secs(row.ReferenceBest),
			pct(row.RandomGap),
			pct(row.BayesGap),
		})
	}
	t.Notes = append(t.Notes,
		"paper §III-B: 30 parameters already exceed 10^40 configurations (see log10 column)",
		"model-based search holds a near-zero gap at fixed budget; random search leaves ~10% on the table at every dimensionality")
	return t
}

// ---------------------------------------------------------------------------
// C7 — "jobs should run within X% of the optimal runtime" (§IV-D).

// C7Row is one workload's achieved gap-to-optimal versus tuning budget.
type C7Row struct {
	Workload string
	Budgets  []int
	// GapAt[i] is the effectiveness metric (relative gap to the reference
	// optimum) achieved within Budgets[i] executions.
	GapAt []float64
}

// C7Result traces the SLO effectiveness metric as the tuning budget grows.
type C7Result struct {
	Rows []C7Row
}

// C7SLOEfficiency measures X(t) for three workloads.
func C7SLOEfficiency(seed int64) (C7Result, error) {
	cluster, err := TableICluster()
	if err != nil {
		return C7Result{}, err
	}
	space := confspace.SparkSpace()
	budgets := []int{10, 20, 40, 80}
	var out C7Result
	for _, name := range []string{"wordcount", "sort", "pagerank"} {
		w, err := workload.ByName(name)
		if err != nil {
			return C7Result{}, err
		}
		size := 8 * GB
		i := 0
		obj := func(cfg confspace.Config) tuner.Measurement {
			i++
			res := runConfig(w, size, space, cfg, cluster, seed+int64(i)*7)
			return tuner.Measurement{Runtime: res.RuntimeS, Cost: res.CostUSD, Failed: res.Failed}
		}
		// Reference optimum from a deep search.
		ref, err := tuner.Run(tuner.NewRandomSearch(space), obj, 300, stat.NewRNG(seed+101))
		if err != nil {
			return C7Result{}, err
		}
		// Tuned trajectory.
		session, err := tuner.Run(newBayesOpt(space, seed+202), obj, budgets[len(budgets)-1], stat.NewRNG(seed+202))
		if err != nil {
			return C7Result{}, err
		}
		row := C7Row{Workload: name, Budgets: budgets}
		for _, b := range budgets {
			idx := b - 1
			if idx >= len(session.BestSoFar) {
				idx = len(session.BestSoFar) - 1
			}
			best := session.BestSoFar[idx]
			gap := math.Inf(1)
			if !math.IsInf(best, 1) && ref.Best.Runtime > 0 {
				gap = (best - ref.Best.Runtime) / ref.Best.Runtime
				if gap < 0 {
					gap = 0
				}
			}
			row.GapAt = append(row.GapAt, gap)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render formats X(t).
func (r C7Result) Render() Table {
	t := Table{
		ID:    "C7",
		Title: "SLO effectiveness: gap to reference optimum vs tuning budget (§IV-D)",
	}
	t.Header = []string{"workload"}
	if len(r.Rows) > 0 {
		for _, b := range r.Rows[0].Budgets {
			t.Header = append(t.Header, fmt.Sprintf("X after %d", b))
		}
	}
	for _, row := range r.Rows {
		cells := []string{row.Workload}
		for _, g := range row.GapAt {
			if math.IsInf(g, 1) {
				cells = append(cells, "-")
			} else {
				cells = append(cells, pct(g))
			}
		}
		t.Rows = append(t.Rows, cells)
	}
	t.Notes = append(t.Notes,
		"X is the paper's proposed SLO metric: relative gap between achieved and optimal runtime",
		"the reference optimum is the best of a 300-run offline search (the paper's practical substitute)")
	return t
}
