package experiments

import (
	"fmt"
	"strings"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/stat"
	"seamlesstune/internal/surrogate"
	"seamlesstune/internal/tuner"
)

// surrogateKind selects the model backend for every BayesOpt session the
// experiment suite builds. Empty means the exact GP, keeping every table
// bit-identical to the published baselines. Like the evaluation cache,
// it is not safe to change concurrently with running experiments;
// cmd/experiments sets it once at startup.
var surrogateKind string

// SetSurrogate installs the suite-wide surrogate backend. Empty restores
// the default exact GP; unknown names are rejected.
func SetSurrogate(kind string) error {
	if kind != "" && !surrogate.Valid(kind) {
		return fmt.Errorf("unknown surrogate %q (accepted: %s)", kind, strings.Join(surrogate.Names(), ", "))
	}
	surrogateKind = kind
	return nil
}

// Surrogate reports the backend BayesOpt sessions will fit ("gp" when
// none was installed) — surfaced on the per-experiment timing lines.
func Surrogate() string {
	if surrogateKind == "" {
		return surrogate.KindGP
	}
	return surrogateKind
}

// newBayesOpt builds a BayesOpt over space honoring the installed
// surrogate selection. The surrogate's own randomness derives from the
// session seed, so stochastic backends replay deterministically without
// perturbing the session's proposal stream.
func newBayesOpt(space *confspace.Space, seed int64) *tuner.BayesOpt {
	bo := tuner.NewBayesOpt(space)
	bo.Surrogate = surrogateKind
	bo.SurrogateSeed = stat.DeriveSeed(seed, "surrogate")
	return bo
}
