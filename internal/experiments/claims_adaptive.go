package experiments

import (
	"fmt"
	"math"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/confspace"
	"seamlesstune/internal/gp"
	"seamlesstune/internal/retune"
	"seamlesstune/internal/spark"
	"seamlesstune/internal/stat"
	"seamlesstune/internal/tuner"
	"seamlesstune/internal/workload"
)

// ---------------------------------------------------------------------------
// C5 — re-tuning detection (§V-D: fixed percentage thresholds re-tune too
// frequently or too late; adaptive detectors track each workload's own
// distribution).

// C5Row is one detector's score over the scenario set.
type C5Row struct {
	Detector      string
	DetectionRate float64
	FalseAlarms   float64
	MeanDelay     float64
}

// C5Result scores detectors on simulator-generated runtime streams.
type C5Result struct {
	Scenarios int
	Rows      []C5Row
}

// C5RetuneDetection builds drift scenarios by actually running workloads
// through the simulator — a stable phase, then (for drifting scenarios)
// either input growth or an interference jump — and scores each detection
// policy on the resulting runtime streams.
func C5RetuneDetection(seed int64) (C5Result, error) {
	cluster, err := TableICluster()
	if err != nil {
		return C5Result{}, err
	}
	space := confspace.SparkSpace()

	type scenario struct {
		stream   []float64
		changeAt int
	}
	var scenarios []scenario

	mkStream := func(w workload.Workload, preRuns, postRuns int, preSize, postSize int64, preLevel, postLevel cloud.InterferenceLevel, salt int64) scenario {
		env := cloud.NewEnvironment(preLevel, seed+salt)
		rng := stat.NewRNG(seed + salt + 1)
		cfg := scaledConf(space, cluster)
		conf := spark.FromConfig(space, cfg)
		var stream []float64
		for i := 0; i < preRuns; i++ {
			res := spark.Run(w.Job(preSize), conf, cluster, env.Next(), rng)
			stream = append(stream, res.RuntimeS)
		}
		env.SetLevel(postLevel)
		for i := 0; i < postRuns; i++ {
			res := spark.Run(w.Job(postSize), conf, cluster, env.Next(), rng)
			stream = append(stream, res.RuntimeS)
		}
		changeAt := preRuns
		if preSize == postSize && preLevel == postLevel {
			changeAt = -1
		}
		return scenario{stream: stream, changeAt: changeAt}
	}

	wc, pr, srt := workload.Wordcount{}, workload.PageRank{}, workload.Sort{}
	// Stable scenarios (one per workload), under noisy medium interference.
	scenarios = append(scenarios,
		mkStream(wc, 40, 0, 8*GB, 8*GB, cloud.InterferenceMedium, cloud.InterferenceMedium, 11),
		mkStream(pr, 40, 0, 8*GB, 8*GB, cloud.InterferenceMedium, cloud.InterferenceMedium, 22),
		mkStream(srt, 40, 0, 8*GB, 8*GB, cloud.InterferenceMedium, cloud.InterferenceMedium, 33),
	)
	// Input-growth drifts (the Table-I evolution).
	scenarios = append(scenarios,
		mkStream(pr, 25, 20, 8*GB, 14*GB, cloud.InterferenceLow, cloud.InterferenceLow, 44),
		mkStream(srt, 25, 20, 8*GB, 12*GB, cloud.InterferenceLow, cloud.InterferenceLow, 55),
	)
	// Interference jump (only the provider can see the cause).
	scenarios = append(scenarios,
		mkStream(wc, 25, 20, 8*GB, 8*GB, cloud.InterferenceNone, cloud.InterferenceHigh, 66),
	)

	streams := make([][]float64, len(scenarios))
	changeAts := make([]int, len(scenarios))
	for i, sc := range scenarios {
		streams[i] = sc.stream
		changeAts[i] = sc.changeAt
	}
	detectors := []retune.Detector{
		retune.NewFixedThreshold(0.05, 5),
		retune.NewFixedThreshold(0.20, 5),
		retune.NewFixedThreshold(0.50, 5),
		retune.NewAdaptive(),
		retune.NewAdaptiveCUSUM(),
	}
	out := C5Result{Scenarios: len(scenarios)}
	for _, d := range detectors {
		s := retune.ScoreDetector(d, streams, changeAts)
		out.Rows = append(out.Rows, C5Row{
			Detector:      d.Name(),
			DetectionRate: s.DetectionRate(),
			FalseAlarms:   s.FalseAlarmRate(),
			MeanDelay:     s.MeanDelay,
		})
	}
	return out, nil
}

// Render formats detector scores.
func (r C5Result) Render() Table {
	t := Table{
		ID:     "C5",
		Title:  fmt.Sprintf("Re-tuning detection across %d simulated scenarios (§V-D)", r.Scenarios),
		Header: []string{"detector", "detection rate", "false-alarm rate", "mean delay (runs)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Detector, pct(row.DetectionRate), pct(row.FalseAlarms), fmt.Sprintf("%.1f", row.MeanDelay),
		})
	}
	t.Notes = append(t.Notes,
		"tight fixed thresholds false-alarm on noisy workloads; loose ones miss quiet drifts",
		"adaptive detectors normalize by each workload's own runtime distribution")
	return t
}

// ---------------------------------------------------------------------------
// C6 — transfer learning across workloads (§V-B).

// C6Row compares cold-start and warm-start tuning for one target.
type C6Row struct {
	Target string
	Source string
	// ColdBest / WarmBest: best runtime at the (small) budget.
	ColdBest float64
	WarmBest float64
	// ColdTo15 / WarmTo15: executions to get within 15% of the reference.
	ColdTo15 int
	WarmTo15 int
}

// C6Result quantifies transfer gains and negative transfer.
type C6Result struct {
	Budget int
	Rows   []C6Row
}

// C6TransferLearning warm-starts tuning from a similar source (another
// "tenant" running the same workload type at a different size) and from a
// dissimilar one, against a cold-start baseline.
func C6TransferLearning(seed int64, budget int) (C6Result, error) {
	if budget <= 0 {
		budget = 25
	}
	cluster, err := TableICluster()
	if err != nil {
		return C6Result{}, err
	}
	space := confspace.SparkSubspace(12)

	// Source histories: collect trials by running a source workload.
	collect := func(w workload.Workload, size int64, n int, salt int64) []tuner.Trial {
		var trials []tuner.Trial
		rng := stat.NewRNG(seed + salt)
		for i := 0; i < n; i++ {
			cfg := space.Random(rng)
			res := runConfig(w, size, space, cfg, cluster, seed+salt+int64(i))
			if res.Failed {
				continue
			}
			trials = append(trials, tuner.Trial{
				Config:      cfg,
				Measurement: tuner.Measurement{Runtime: res.RuntimeS, Cost: res.CostUSD},
				Objective:   res.RuntimeS,
			})
		}
		return trials
	}

	type pairing struct {
		target workload.Workload
		source workload.Workload
		srcSz  int64
		label  string
	}
	pairs := []pairing{
		{workload.Sort{}, workload.Sort{}, 6 * GB, "sort<-sort@6GB (similar)"},
		{workload.Sort{}, workload.Wordcount{}, 8 * GB, "sort<-wordcount (dissimilar)"},
		{workload.PageRank{}, workload.PageRank{}, 6 * GB, "pagerank<-pagerank@6GB (similar)"},
	}
	out := C6Result{Budget: budget}
	for pi, p := range pairs {
		size := 8 * GB
		mkObj := func(salt int64) tuner.Objective {
			i := 0
			return func(cfg confspace.Config) tuner.Measurement {
				i++
				res := runConfig(p.target, size, space, cfg, cluster, seed+salt+int64(i)*3)
				return tuner.Measurement{Runtime: res.RuntimeS, Cost: res.CostUSD, Failed: res.Failed}
			}
		}
		// Reference from a deep search for the within-15% criterion.
		ref, err := tuner.Run(tuner.NewRandomSearch(space), mkObj(900), 150, stat.NewRNG(seed+int64(pi)*7+3))
		if err != nil {
			return C6Result{}, err
		}
		target := ref.Best.Runtime * 1.15

		cold, err := tuner.Run(newBayesOpt(space, seed+int64(pi)*7+1), mkObj(100), budget, stat.NewRNG(seed+int64(pi)*7+1))
		if err != nil {
			return C6Result{}, err
		}
		warmTrials := collect(p.source, p.srcSz, 30, int64(pi)*1000+500)
		bo := newBayesOpt(space, seed+int64(pi)*7+1)
		bo.WarmStart = warmTrials
		bo.InitSamples = 2
		warm, err := tuner.Run(bo, mkObj(100), budget, stat.NewRNG(seed+int64(pi)*7+1))
		if err != nil {
			return C6Result{}, err
		}
		out.Rows = append(out.Rows, C6Row{
			Target:   p.target.Name(),
			Source:   p.label,
			ColdBest: cold.Best.Runtime,
			WarmBest: warm.Best.Runtime,
			ColdTo15: cold.ExecutionsToReach(target),
			WarmTo15: warm.ExecutionsToReach(target),
		})
	}
	return out, nil
}

// Render formats the transfer comparison.
func (r C6Result) Render() Table {
	t := Table{
		ID:     "C6",
		Title:  fmt.Sprintf("Transfer learning across workloads at budget %d (§V-B)", r.Budget),
		Header: []string{"target", "source", "cold best", "warm best", "cold→15%", "warm→15%"},
	}
	fmtN := func(n int) string {
		if n < 0 {
			return "-"
		}
		return fmt.Sprint(n)
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Target, row.Source, secs(row.ColdBest), secs(row.WarmBest),
			fmtN(row.ColdTo15), fmtN(row.WarmTo15),
		})
	}
	t.Notes = append(t.Notes,
		"similar sources accelerate convergence sharply; dissimilar sources give little or no gain and risk negative transfer",
		"the service's similarity gate (transfer.SelectSource) refuses dissimilar sources")
	return t
}

// ---------------------------------------------------------------------------
// C8 — additive GP interpretability (§V-A, Duvenaud et al.).

// C8Result compares the additive GP's learned per-parameter sensitivities
// against ground truth measured by one-at-a-time parameter sweeps on the
// simulator.
type C8Result struct {
	Params      []string
	Learned     []float64
	GroundTruth []float64
	// Top3Overlap counts how many of the learned top-3 parameters are in
	// the ground-truth top-3.
	Top3Overlap int
}

// C8AdditiveGPInterpret fits an additive GP on samples of an 8-parameter
// subspace and checks whether the fitted per-dimension variances rank the
// truly influential parameters first.
func C8AdditiveGPInterpret(seed int64, samples int) (C8Result, error) {
	if samples <= 0 {
		samples = 80
	}
	cluster, err := TableICluster()
	if err != nil {
		return C8Result{}, err
	}
	space := confspace.SparkSubspace(8)
	w := workload.Sort{}
	size := 8 * GB
	rng := stat.NewRNG(seed)

	var xs [][]float64
	var ys []float64
	for i := 0; i < samples; i++ {
		cfg := space.Random(rng)
		res := runConfig(w, size, space, cfg, cluster, seed+int64(i))
		if res.Failed {
			continue
		}
		xs = append(xs, space.Encode(cfg))
		ys = append(ys, math.Log(res.RuntimeS))
	}
	model, err := gp.FitAdditiveModel(xs, ys, 3)
	if err != nil {
		return C8Result{}, err
	}
	learned := model.Sensitivity()

	// Ground truth: Sobol-style main-effect shares estimated on a larger
	// independent sample — for each dimension, the variance of binned
	// conditional means of log-runtime. This is the same quantity a
	// first-order additive decomposition represents, measured directly
	// from the simulator.
	params := space.Params()
	truth := mainEffectShares(space, func(cfg confspace.Config, i int64) (float64, bool) {
		res := runConfig(w, size, space, cfg, cluster, seed+9000+i)
		if res.Failed {
			return 0, false
		}
		return math.Log(res.RuntimeS), true
	}, 400, seed+77)

	out := C8Result{Learned: learned, GroundTruth: truth}
	for _, p := range params {
		out.Params = append(out.Params, p.Name)
	}
	out.Top3Overlap = topKOverlap(learned, truth, 3)
	return out, nil
}

// mainEffectShares estimates first-order (main-effect) variance shares of
// a response over a space: bin a random sample along each dimension and
// measure the variance of the bin means.
func mainEffectShares(space *confspace.Space, eval func(confspace.Config, int64) (float64, bool), n int, seed int64) []float64 {
	rng := stat.NewRNG(seed)
	var xs [][]float64
	var ys []float64
	for i := 0; i < n; i++ {
		cfg := space.Random(rng)
		if y, ok := eval(cfg, int64(i)); ok {
			xs = append(xs, space.Encode(cfg))
			ys = append(ys, y)
		}
	}
	dim := space.Dim()
	shares := make([]float64, dim)
	if len(ys) < 10 {
		return shares
	}
	const bins = 5
	grand := stat.Mean(ys)
	total := 0.0
	for d := 0; d < dim; d++ {
		sums := make([]float64, bins)
		counts := make([]int, bins)
		for i, x := range xs {
			b := int(x[d] * bins)
			if b >= bins {
				b = bins - 1
			}
			sums[b] += ys[i]
			counts[b]++
		}
		v := 0.0
		for b := 0; b < bins; b++ {
			if counts[b] == 0 {
				continue
			}
			m := sums[b] / float64(counts[b])
			v += float64(counts[b]) / float64(len(ys)) * (m - grand) * (m - grand)
		}
		shares[d] = v
		total += v
	}
	if total > 0 {
		for d := range shares {
			shares[d] /= total
		}
	}
	return shares
}

// topKOverlap counts shared indices among the top-k of two score vectors.
func topKOverlap(a, b []float64, k int) int {
	top := func(v []float64) map[int]bool {
		idx := make([]int, len(v))
		for i := range idx {
			idx[i] = i
		}
		// Selection of top-k by value.
		for i := 0; i < k && i < len(idx); i++ {
			maxJ := i
			for j := i + 1; j < len(idx); j++ {
				if v[idx[j]] > v[idx[maxJ]] {
					maxJ = j
				}
			}
			idx[i], idx[maxJ] = idx[maxJ], idx[i]
		}
		out := make(map[int]bool, k)
		for i := 0; i < k && i < len(idx); i++ {
			out[idx[i]] = true
		}
		return out
	}
	ta, tb := top(a), top(b)
	n := 0
	for i := range ta {
		if tb[i] {
			n++
		}
	}
	return n
}

// Render formats the sensitivity comparison.
func (r C8Result) Render() Table {
	t := Table{
		ID:     "C8",
		Title:  "Additive-GP interpretability: learned vs ground-truth parameter influence (§V-A)",
		Header: []string{"parameter", "learned share", "ground truth share"},
	}
	for i, name := range r.Params {
		t.Rows = append(t.Rows, []string{
			name, pct(r.Learned[i]), pct(r.GroundTruth[i]),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("top-3 overlap between learned and ground-truth rankings: %d/3", r.Top3Overlap),
		"a backfit first-order additive model (Duvenaud-style decomposition) exposes per-knob influence a black-box GP hides")
	return t
}

// ---------------------------------------------------------------------------
// C12 — tuning under co-location noise (§II-A: one-shot measurements
// "could be biased due to transient co-location of test workload runs
// with other resource-intensive workloads").

// C12Row is one interference level's effect on tuning.
type C12Row struct {
	Level string
	// BestTrue is the tuned configuration's *clean* runtime (re-measured
	// without interference): what the tenant actually gets later.
	BestTrue float64
	// ObservedBest is what the tuner believed it achieved under noise.
	ObservedBest float64
	// RegretPct is the relative gap between BestTrue and the clean-tuned
	// reference.
	RegretPct float64
}

// C12Result quantifies how co-location noise during tuning degrades the
// chosen configuration.
type C12Result struct {
	Workload string
	Budget   int
	CleanRef float64
	Rows     []C12Row
}

// C12TuningUnderInterference tunes under each interference level, then
// re-measures every winner under clean conditions.
func C12TuningUnderInterference(seed int64, budget int) (C12Result, error) {
	if budget <= 0 {
		budget = 30
	}
	cluster, err := TableICluster()
	if err != nil {
		return C12Result{}, err
	}
	space := confspace.SparkSubspace(12)
	w := workload.Sort{}
	size := 8 * GB

	cleanRuntime := func(cfg confspace.Config, salt int64) float64 {
		// Average of three clean runs: the tenant's steady-state truth.
		// Reps take independent arithmetic seeds, so they run in parallel;
		// summing in rep order keeps the average bit-identical.
		runs := parallelMap(3, func(rep int) float64 {
			res := runSeeded(w.Job(size), spark.FromConfig(space, cfg), cluster, cloud.Unit(), spark.RunOpts{}, seed+salt+int64(rep))
			if res.Failed {
				return math.Inf(1)
			}
			return res.RuntimeS
		})
		sum := 0.0
		for _, v := range runs {
			if math.IsInf(v, 1) {
				return math.Inf(1)
			}
			sum += v
		}
		return sum / 3
	}

	levels := []cloud.InterferenceLevel{
		cloud.InterferenceNone, cloud.InterferenceLow, cloud.InterferenceMedium, cloud.InterferenceHigh,
	}
	out := C12Result{Workload: w.Name(), Budget: budget}
	for li, level := range levels {
		env := cloud.NewEnvironment(level, seed+int64(li)*31)
		i := 0
		obj := func(cfg confspace.Config) tuner.Measurement {
			i++
			res := runSeeded(w.Job(size), spark.FromConfig(space, cfg), cluster, env.Next(), spark.RunOpts{}, seed+int64(li)*1000+int64(i))
			return tuner.Measurement{Runtime: res.RuntimeS, Cost: res.CostUSD, Failed: res.Failed}
		}
		res, err := tuner.Run(newBayesOpt(space, seed+int64(li)*7), obj, budget, stat.NewRNG(seed+int64(li)*7))
		if err != nil {
			return C12Result{}, err
		}
		if !res.Found {
			continue
		}
		row := C12Row{Level: level.String(), ObservedBest: res.Best.Runtime}
		row.BestTrue = cleanRuntime(res.Best.Config, int64(li)*97)
		if level == cloud.InterferenceNone {
			out.CleanRef = row.BestTrue
		}
		out.Rows = append(out.Rows, row)
	}
	for i := range out.Rows {
		if out.CleanRef > 0 && !math.IsInf(out.Rows[i].BestTrue, 1) {
			g := (out.Rows[i].BestTrue - out.CleanRef) / out.CleanRef
			if g < 0 {
				g = 0
			}
			out.Rows[i].RegretPct = g
		}
	}
	return out, nil
}

// Render formats the interference sweep.
func (r C12Result) Render() Table {
	t := Table{
		ID:     "C12",
		Title:  fmt.Sprintf("Tuning %s under co-location noise (budget %d, §II-A bias claim)", r.Workload, r.Budget),
		Header: []string{"interference during tuning", "tuner believed", "true clean runtime", "regret vs clean-tuned"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Level, secs(row.ObservedBest), secs(row.BestTrue), pct(row.RegretPct),
		})
	}
	t.Notes = append(t.Notes,
		"noisy observations bias the model and the winner selection; the chosen config's clean runtime degrades with the noise level",
		"the provider-side fix: the cloud sees interference directly and can discount or re-measure affected samples")
	return t
}
