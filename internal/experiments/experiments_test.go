package experiments

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tbl := Table{
		ID:     "X",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n1"},
	}
	out := tbl.String()
	for _, want := range []string{"== X: demo ==", "333", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestTableICluster(t *testing.T) {
	c, err := TableICluster()
	if err != nil {
		t.Fatal(err)
	}
	if c.Count != 4 || c.Instance.VCPUs != 16 {
		t.Errorf("cluster = %+v, want 4x 16-vCPU", c)
	}
}

func TestTable1ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Fewer configs than the paper's 100 keeps the test quick; the shape
	// is robust at 60.
	res, err := Table1(1, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !res.ShapeHolds() {
		for _, r := range res.Rows {
			t.Logf("%s: DS2 %.0f%% DS3 %.0f%%", r.Workload, r.SavingDS2*100, r.SavingDS3*100)
		}
		t.Error("Table I shape criteria violated")
	}
	tbl := res.Render()
	if len(tbl.Rows) != 4 {
		t.Errorf("rendered rows = %d, want 4", len(tbl.Rows))
	}
}

func TestFig1Pipeline(t *testing.T) {
	res, err := Fig1Pipeline(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.TunedRuntimeS <= 0 || row.Cluster.Count == 0 {
			t.Errorf("degenerate pipeline row: %+v", row)
		}
		if row.TunedRuntimeS > row.DefaultRuntimeS*1.1 {
			t.Errorf("%s: tuned %.1f worse than default %.1f", row.Workload, row.TunedRuntimeS, row.DefaultRuntimeS)
		}
	}
}

func TestFig2Architecture(t *testing.T) {
	res, err := Fig2Architecture(3)
	if err != nil {
		t.Fatal(err)
	}
	// parse + build + 4 iterations + collect = 7 stages.
	if len(res.Stages) != 7 {
		t.Fatalf("stages = %d, want 7", len(res.Stages))
	}
	// Iterations must show cache hits and declare dependencies.
	for _, s := range res.Stages[2:6] {
		if s.CacheHitFrac <= 0 {
			t.Errorf("stage %d cache hit = %v", s.Stage, s.CacheHitFrac)
		}
		if len(s.Deps) == 0 {
			t.Errorf("stage %d has no deps", s.Stage)
		}
	}
	if res.Executors <= 0 || res.Slots <= 0 {
		t.Errorf("executors/slots = %d/%d", res.Executors, res.Slots)
	}
}

func TestC1MisconfigCost(t *testing.T) {
	res, err := C1MisconfigCost(4, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.ConfDegradation < 3 {
			t.Errorf("%s: conf degradation %.1fx implausibly low", row.Workload, row.ConfDegradation)
		}
		if row.ClusterDegradation < 2 {
			t.Errorf("%s: cluster degradation %.1fx implausibly low", row.Workload, row.ClusterDegradation)
		}
	}
	// The order-of-magnitude claims: some workload shows >8x cluster
	// degradation and >30x config degradation.
	maxConf, maxCluster := 0.0, 0.0
	for _, row := range res.Rows {
		if row.ConfDegradation > maxConf {
			maxConf = row.ConfDegradation
		}
		if row.ClusterDegradation > maxCluster {
			maxCluster = row.ClusterDegradation
		}
	}
	// At the full 80-config budget this reaches 40-90x; at the test's 40
	// configs the extremes are milder but still an order of magnitude.
	if maxConf < 15 {
		t.Errorf("max conf degradation %.1fx, want order-of-magnitude (>15x)", maxConf)
	}
	if maxCluster < 8 {
		t.Errorf("max cluster degradation %.1fx, want ~12x-scale (>8x)", maxCluster)
	}
}

func TestC2TunerComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := C2TunerComparison(5, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("tuners = %d", len(res.Rows))
	}
	// Every tuner achieves the BestConfig-style >=80% improvement over
	// the default on this workload.
	for _, row := range res.Rows {
		if row.Improvement < 0.8 {
			t.Errorf("%s improvement = %.0f%%, want >= 80%%", row.Tuner, row.Improvement*100)
		}
	}
}

func TestC3SearchSpaceGrowth(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := C3SearchSpaceGrowth(6, 25)
	if err != nil {
		t.Fatal(err)
	}
	var at30 float64
	for _, row := range res.Rows {
		if row.Dims == 30 {
			at30 = row.Log10Size
		}
	}
	if at30 < 40 {
		t.Errorf("30-param log10 size = %.1f, want > 40 (the paper's claim)", at30)
	}
}

func TestC4CostAmortization(t *testing.T) {
	res, err := C4CostAmortization(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Larger budgets cost more.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].TuningCostUSD <= res.Rows[i-1].TuningCostUSD {
			t.Errorf("tuning bill not increasing with budget: %+v", res.Rows)
		}
	}
	// The 500-run bill must exceed the cost of 90 tuned production runs
	// (the §IV-C comparison).
	last := res.Rows[len(res.Rows)-1]
	if last.TuningCostUSD <= 90*last.TunedRunCostUSD {
		t.Errorf("500-run bill $%.2f does not exceed 90 tuned runs $%.2f",
			last.TuningCostUSD, 90*last.TunedRunCostUSD)
	}
}

func TestC5RetuneDetection(t *testing.T) {
	res, err := C5RetuneDetection(8)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]C5Row{}
	for _, row := range res.Rows {
		byName[row.Detector] = row
	}
	tight := byName["fixed+5%"]
	adaptive := byName["adaptive-mw"]
	// §V-D's argument: the tight fixed threshold false-alarms more than
	// the adaptive detector, which detects at least as much.
	if tight.FalseAlarms <= adaptive.FalseAlarms {
		t.Errorf("fixed+5%% false alarms %.2f <= adaptive %.2f", tight.FalseAlarms, adaptive.FalseAlarms)
	}
	if adaptive.DetectionRate < 0.5 {
		t.Errorf("adaptive detection rate %.2f too low", adaptive.DetectionRate)
	}
}

func TestC6TransferLearning(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := C6TransferLearning(9, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Similar-source warm start converges no slower than cold start on at
	// least one similar pairing.
	gained := false
	for _, row := range res.Rows {
		if !strings.Contains(row.Source, "similar") || strings.Contains(row.Source, "dissimilar") {
			continue
		}
		if row.WarmTo15 >= 0 && (row.ColdTo15 < 0 || row.WarmTo15 <= row.ColdTo15) {
			gained = true
		}
	}
	if !gained {
		t.Errorf("no similar-source pairing showed transfer gains: %+v", res.Rows)
	}
}

func TestC8AdditiveGPInterpret(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := C8AdditiveGPInterpret(10, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Params) != 8 || len(res.Learned) != 8 || len(res.GroundTruth) != 8 {
		t.Fatalf("dims = %d/%d/%d", len(res.Params), len(res.Learned), len(res.GroundTruth))
	}
	if res.Top3Overlap < 1 {
		t.Errorf("top-3 overlap = %d, want >= 1", res.Top3Overlap)
	}
}

func TestRegistry(t *testing.T) {
	specs := All()
	if len(specs) != 19 {
		t.Fatalf("specs = %d, want 19", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.ID] {
			t.Errorf("duplicate id %s", s.ID)
		}
		seen[s.ID] = true
		if s.Run == nil || s.Title == "" {
			t.Errorf("incomplete spec %+v", s)
		}
	}
	if _, err := ByID("T1"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestRegistryRunsFast(t *testing.T) {
	// The cheap experiments run end to end through the registry.
	for _, id := range []string{"F2", "C5"} {
		spec, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := spec.Run(1)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
	}
}

func TestC9WhatIfAccuracy(t *testing.T) {
	res, err := C9WhatIfAccuracy(11, 10)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]C9Row{}
	for _, row := range res.Rows {
		byName[row.Workload] = row
		if row.Predictions == 0 {
			t.Errorf("%s: no predictions", row.Workload)
		}
	}
	// The Starfish limitation: the scan workload predicts better than the
	// iterative cache-bound one.
	if byName["wordcount"].MAPE >= byName["pagerank"].MAPE {
		t.Errorf("wordcount MAPE %.2f not below pagerank %.2f",
			byName["wordcount"].MAPE, byName["pagerank"].MAPE)
	}
}

func TestC10ParisVMSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := C10ParisVMSelection(12)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.ParisRuns != 2 {
			t.Errorf("%s: paris online runs = %d, want 2", row.Workload, row.ParisRuns)
		}
		// PARIS's pick should be within 2.5x of the exhaustive best.
		if row.ParisRuntime > row.BestRuntime*2.5 {
			t.Errorf("%s: paris pick %.1f s/GB vs best %.1f", row.Workload, row.ParisRuntime, row.BestRuntime)
		}
	}
}

func TestA1AblationAttributesCacheCliff(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := A1TableIAblation(1, 40)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, row := range res.Rows {
		byName[row.Ablation] = row.SavingDS3
	}
	full, noCache := byName["full simulator"], byName["no cache limit"]
	if full < 0.3 {
		t.Fatalf("full-simulator saving %.2f too small to ablate", full)
	}
	if noCache > full*0.6 {
		t.Errorf("removing the cache limit left %.2f of %.2f saving; expected collapse", noCache, full)
	}
}

func TestC11DACComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := C11DACComparison(13)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var dac, genetic C11Row
	for _, row := range res.Rows {
		if strings.HasPrefix(row.Strategy, "dac") {
			dac = row
		}
		if strings.HasPrefix(row.Strategy, "genetic") {
			genetic = row
		}
	}
	// DAC's small-size training must make it the cheaper session at equal
	// execution count.
	if dac.CostUSD >= genetic.CostUSD {
		t.Errorf("DAC bill $%.2f not below direct GA $%.2f", dac.CostUSD, genetic.CostUSD)
	}
	if dac.Best <= 0 {
		t.Error("DAC found nothing")
	}
}

func TestT1XExtensionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Table1Extension(1, 40)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table1Row{}
	for _, row := range res.Rows {
		byName[row.Workload] = row
	}
	// The join's plan flip between DS1 and DS2 must produce clear
	// re-tuning savings; sort's optimum is scale-stable.
	if byName["join"].SavingDS2 < 0.1 {
		t.Errorf("join DS2 saving %.2f, want the plan-flip effect (>10%%)", byName["join"].SavingDS2)
	}
	if byName["sort"].SavingDS3 > 0.15 {
		t.Errorf("sort DS3 saving %.2f, want scale-stability (<15%%)", byName["sort"].SavingDS3)
	}
}

func TestC12TuningUnderInterference(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := C12TuningUnderInterference(14, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byLevel := map[string]C12Row{}
	for _, row := range res.Rows {
		byLevel[row.Level] = row
	}
	// High interference must cost more regret than none.
	if byLevel["high"].RegretPct < byLevel["none"].RegretPct {
		t.Errorf("high-noise regret %.2f below clean %.2f", byLevel["high"].RegretPct, byLevel["none"].RegretPct)
	}
}

func TestC13PrunedVsFull(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := C13PrunedVsFull(1, 70)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	prunedSomewhere := false
	for _, row := range res.Rows {
		// The claim: pruning never costs more than a small tolerance of the
		// full-space optimum at equal budget.
		if row.PrunedBest > row.FullBest*1.10 {
			t.Errorf("%s: pruned best %.1fs worse than full-space %.1fs (+%.0f%%)",
				row.Workload, row.PrunedBest, row.FullBest, row.Delta*100)
		}
		if row.TotalDims != 30 {
			t.Errorf("%s: total dims = %d, want 30", row.Workload, row.TotalDims)
		}
		if row.ActiveDims < row.TotalDims {
			prunedSomewhere = true
		}
	}
	if !prunedSomewhere {
		t.Error("no workload's session adopted a subspace within the budget")
	}
}

func TestF3SeamlessLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := F3SeamlessLifecycle(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 4 {
		t.Fatalf("phases = %d", len(res.Phases))
	}
	totalRetunes := 0
	for _, ph := range res.Phases {
		totalRetunes += ph.Retunes
	}
	if totalRetunes == 0 {
		t.Error("managed lifecycle never re-tuned despite input growth and interference")
	}
	// The seamless service must beat the static baseline overall.
	if res.TotalManagedS >= res.TotalStaticS {
		t.Errorf("managed total %.0fs not below static %.0fs", res.TotalManagedS, res.TotalStaticS)
	}
	if res.TuningCostUSD <= 0 {
		t.Error("provider bill not accounted")
	}
}

func TestEveryRegisteredExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Smoke-run the complete registry — the same entry points
	// cmd/experiments and the benchmarks use. Catches any experiment
	// whose default parameters break.
	for _, spec := range All() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			tbl, err := spec.Run(3)
			if err != nil {
				t.Fatalf("%s: %v", spec.ID, err)
			}
			if len(tbl.Rows) == 0 {
				t.Errorf("%s produced no rows", spec.ID)
			}
			if tbl.ID == "" || tbl.Title == "" {
				t.Errorf("%s rendered without id/title", spec.ID)
			}
		})
	}
}
