package experiments

import (
	"fmt"
	"math"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/confspace"
	"seamlesstune/internal/spark"
	"seamlesstune/internal/stat"
	"seamlesstune/internal/tuner"
	"seamlesstune/internal/whatif"
	"seamlesstune/internal/workload"
)

// ---------------------------------------------------------------------------
// C9 — Starfish What-If accuracy (§II-B: "it showed less accuracy when
// tried with heterogeneous applications and cloud workloads").

// C9Row is one workload's prediction accuracy.
type C9Row struct {
	Workload string
	// MAPE is the mean absolute percentage error of the what-if engine's
	// runtime predictions across random configurations.
	MAPE float64
	// RankAccuracy is the fraction of config pairs the engine orders
	// correctly (what a tuner actually needs from a model).
	RankAccuracy float64
	Predictions  int
}

// C9Result quantifies the Starfish-style engine's accuracy profile.
type C9Result struct {
	Rows []C9Row
}

// C9WhatIfAccuracy profiles each workload once, then compares the
// engine's predictions against ground truth for random configurations.
func C9WhatIfAccuracy(seed int64, nConfigs int) (C9Result, error) {
	if nConfigs <= 0 {
		nConfigs = 15
	}
	cluster, err := TableICluster()
	if err != nil {
		return C9Result{}, err
	}
	space := confspace.SparkSpace()
	sub := confspace.SparkSubspace(8)

	var out C9Result
	for _, name := range []string{"wordcount", "sort", "bayes", "pagerank", "kmeans"} {
		w, err := workload.ByName(name)
		if err != nil {
			return C9Result{}, err
		}
		size := 8 * GB
		profConf := spark.FromConfig(space, scaledConf(space, cluster))
		profRun := runSeeded(w.Job(size), profConf, cluster, cloud.Unit(), spark.RunOpts{}, seed)
		profile, err := whatif.NewProfile(profConf, cluster, size, profRun)
		if err != nil {
			return C9Result{}, fmt.Errorf("%s: %w", name, err)
		}

		rng := stat.NewRNG(seed + 1)
		var preds, actuals []float64
		var errSum float64
		for i := 0; i < nConfigs; i++ {
			cfg := sub.Random(rng)
			conf2 := spark.FromConfig(sub, cfg)
			actual := runSeeded(w.Job(size), conf2, cluster, cloud.Unit(), spark.RunOpts{}, seed+int64(10+i))
			if actual.Failed {
				continue
			}
			ans, err := profile.Predict(whatif.Question{Conf: conf2, Cluster: cluster, InputBytes: size})
			if err != nil {
				continue
			}
			preds = append(preds, ans.RuntimeS)
			actuals = append(actuals, actual.RuntimeS)
			errSum += math.Abs(ans.RuntimeS-actual.RuntimeS) / actual.RuntimeS
		}
		row := C9Row{Workload: name, Predictions: len(preds)}
		if len(preds) > 0 {
			row.MAPE = errSum / float64(len(preds))
			row.RankAccuracy = rankAccuracy(preds, actuals)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// rankAccuracy is the fraction of pairs ordered identically by both
// score vectors (Kendall-style concordance).
func rankAccuracy(a, b []float64) float64 {
	n := len(a)
	if n < 2 {
		return 1
	}
	agree, total := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if a[i] == a[j] || b[i] == b[j] {
				continue
			}
			total++
			if (a[i] < a[j]) == (b[i] < b[j]) {
				agree++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(agree) / float64(total)
}

// Render formats the accuracy table.
func (r C9Result) Render() Table {
	t := Table{
		ID:     "C9",
		Title:  "Starfish-style What-If engine accuracy (§II-B: limited accuracy on heterogeneous workloads)",
		Header: []string{"workload", "MAPE", "rank accuracy", "predictions"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Workload, pct(row.MAPE), pct(row.RankAccuracy), fmt.Sprint(row.Predictions),
		})
	}
	t.Notes = append(t.Notes,
		"the engine scales a single profile linearly and models no caching — accurate for scans, degraded for iterative/cache-bound workloads",
		"each workload: one profiling run, then predictions for random 8-knob configurations")
	return t
}

// ---------------------------------------------------------------------------
// C10 — PARIS VM selection vs online search (§II-A).

// C10Row is one target workload's VM-selection outcome.
type C10Row struct {
	Workload string
	// ParisVM and ParisRuntime: the offline-model pick and its actual
	// runtime; ParisRuns is the online execution count (2 reference runs).
	ParisVM      string
	ParisRuntime float64
	ParisRuns    int
	// BOVM / BORuntime / BORuns: CherryPick-style online search.
	BOVM      string
	BORuntime float64
	BORuns    int
	// BestVM / BestRuntime: exhaustive ground truth.
	BestVM      string
	BestRuntime float64
}

// C10Result compares the two cloud-configuration strategies the paper
// surveys: offline-model VM selection (PARIS) against online Bayesian
// search (CherryPick).
type C10Result struct {
	Rows []C10Row
}

// C10ParisVMSelection trains PARIS on four benchmark workloads and
// evaluates on two held-out ones.
func C10ParisVMSelection(seed int64) (C10Result, error) {
	catalog := cloud.DefaultCatalog()
	types := catalog.ByProvider(cloud.Nimbus)
	space := confspace.SparkSpace()
	const nodes = 4
	size := 4 * GB

	refSmall, refLarge, err := tuner.ReferenceVMs(types)
	if err != nil {
		return C10Result{}, err
	}

	// secPerGB measures a workload on one VM type (scaled reference conf).
	secPerGB := func(w workload.Workload, it cloud.InstanceType, salt int64) (float64, spark.Result) {
		spec := cloud.ClusterSpec{Instance: it, Count: nodes}
		conf := spark.FromConfig(space, scaledConf(space, spec))
		res := runSeeded(w.Job(size), conf, spec, cloud.Unit(), spark.RunOpts{}, seed+salt)
		if res.Failed {
			return math.Inf(1), res
		}
		return res.RuntimeS / (float64(size) / float64(GB)), res
	}

	fingerprint := func(w workload.Workload, salt int64) tuner.ParisFingerprint {
		sgSmall, resSmall := secPerGB(w, refSmall, salt)
		sgLarge, _ := secPerGB(w, refLarge, salt+1)
		in := float64(size)
		return tuner.ParisFingerprint{
			SecPerGBSmall:   sgSmall,
			SecPerGBLarge:   sgLarge,
			ShufflePerInput: float64(resSmall.TotalShuffleRead+resSmall.TotalShuffleWrite) / in,
			SpillPerInput:   float64(resSmall.TotalSpillBytes) / in,
			GCFrac:          resSmall.TotalGCSeconds / math.Max(resSmall.RuntimeS, 1),
		}
	}

	// Offline bank: four benchmark workloads on every nimbus type.
	var bank []tuner.ParisSample
	trainers := []workload.Workload{workload.Wordcount{}, workload.Sort{}, workload.Bayes{}, workload.KMeans{}}
	for wi, w := range trainers {
		fp := fingerprint(w, int64(wi)*100)
		for ti, it := range types {
			sg, _ := secPerGB(w, it, int64(wi)*100+int64(ti))
			if math.IsInf(sg, 1) {
				continue
			}
			bank = append(bank, tuner.ParisSample{Fingerprint: fp, VM: it, SecPerGB: sg})
		}
	}
	model, err := tuner.TrainParis(bank, stat.NewRNG(seed))
	if err != nil {
		return C10Result{}, err
	}

	var out C10Result
	for wi, w := range []workload.Workload{workload.Join{}, workload.PageRank{}} {
		salt := int64(9000 + wi*500)
		fp := fingerprint(w, salt)
		choice, err := model.BestVM(fp, types)
		if err != nil {
			return C10Result{}, err
		}
		parisSG, _ := secPerGB(w, choice.VM, salt+7)

		// Ground truth by exhaustive sweep.
		bestVM, bestSG := types[0], math.Inf(1)
		for ti, it := range types {
			sg, _ := secPerGB(w, it, salt+20+int64(ti))
			if sg < bestSG {
				bestVM, bestSG = it, sg
			}
		}

		// CherryPick-style online BO over the same VM-type space.
		vmSpace, err := vmOnlySpace(types)
		if err != nil {
			return C10Result{}, err
		}
		bo := newBayesOpt(vmSpace, seed)
		bo.InitSamples = 3
		i := 0
		obj := func(cfg confspace.Config) tuner.Measurement {
			i++
			key := vmSpace.ChoiceValue(cfg, "vm")
			it, err := catalog.Lookup(key)
			if err != nil {
				return tuner.Measurement{Failed: true}
			}
			sg, res := secPerGB(w, it, salt+100+int64(i))
			return tuner.Measurement{Runtime: sg, Cost: res.CostUSD, Failed: math.IsInf(sg, 1)}
		}
		boRes, err := tuner.Run(bo, obj, 10, stat.NewRNG(seed+salt))
		if err != nil {
			return C10Result{}, err
		}
		boVM := vmSpace.ChoiceValue(boRes.Best.Config, "vm")

		out.Rows = append(out.Rows, C10Row{
			Workload:     w.Name(),
			ParisVM:      choice.VM.String(),
			ParisRuntime: parisSG,
			ParisRuns:    2,
			BOVM:         boVM,
			BORuntime:    boRes.Best.Runtime,
			BORuns:       len(boRes.Trials),
			BestVM:       bestVM.String(),
			BestRuntime:  bestSG,
		})
	}
	return out, nil
}

// vmOnlySpace is a one-categorical space over VM types.
func vmOnlySpace(types []cloud.InstanceType) (*confspace.Space, error) {
	keys := make([]string, len(types))
	for i, t := range types {
		keys[i] = t.String()
	}
	return confspace.NewSpace(confspace.CatParam("vm", 0, keys...))
}

// Render formats the comparison.
func (r C10Result) Render() Table {
	t := Table{
		ID:     "C10",
		Title:  "Cloud configuration: PARIS offline model vs CherryPick-style online search",
		Header: []string{"workload", "paris pick (2 runs)", "s/GB", "BO pick (10 runs)", "s/GB", "true best", "s/GB"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Workload,
			row.ParisVM, fmt.Sprintf("%.1f", row.ParisRuntime),
			row.BOVM, fmt.Sprintf("%.1f", row.BORuntime),
			row.BestVM, fmt.Sprintf("%.1f", row.BestRuntime),
		})
	}
	t.Notes = append(t.Notes,
		"PARIS amortizes an offline benchmarking bank into 2-run online selection; CherryPick needs ~10 online runs but no offline investment",
		"training bank: wordcount/sort/bayes/kmeans on all 16 nimbus types; targets held out")
	return t
}

// ---------------------------------------------------------------------------
// A1 — mechanism ablation for Table I.

// A1Row reports the PageRank DS1→DS3 re-tuning saving with one simulator
// mechanism disabled.
type A1Row struct {
	Ablation  string
	SavingDS3 float64
}

// A1Result attributes the Table-I result to simulator mechanisms.
type A1Result struct {
	Rows    []A1Row
	Configs int
}

// A1TableIAblation reruns the PageRank column of Table I under each
// ablation. If the cache-capacity mechanism drives the result (as
// DESIGN.md claims), removing it should collapse the saving.
func A1TableIAblation(seed int64, nConfigs int) (A1Result, error) {
	if nConfigs <= 0 {
		nConfigs = 60
	}
	cluster, err := TableICluster()
	if err != nil {
		return A1Result{}, err
	}
	space := confspace.SparkSpace()
	w := workload.PageRank{}
	ds1, ds3 := 8*GB, 32*GB

	ablations := []struct {
		name string
		ab   spark.Ablate
	}{
		{"full simulator", spark.Ablate{}},
		{"no cache limit", spark.Ablate{NoCacheLimit: true}},
		{"no spill", spark.Ablate{NoSpill: true}},
		{"no GC", spark.Ablate{NoGC: true}},
		{"no skew", spark.Ablate{NoSkew: true}},
	}

	rng := stat.NewRNG(seed)
	configs := make([]confspace.Config, nConfigs)
	for i := range configs {
		configs[i] = space.Random(rng)
	}

	var out A1Result
	out.Configs = nConfigs
	for _, abl := range ablations {
		measure := func(size int64, ci int) float64 {
			const reps = 3
			sum := 0.0
			for rep := 0; rep < reps; rep++ {
				res := runSeeded(w.Job(size), spark.FromConfig(space, configs[ci]), cluster,
					cloud.Unit(), spark.RunOpts{Ablate: abl.ab}, seed+int64(1000+ci*reps+rep))
				if res.Failed {
					return math.Inf(1)
				}
				sum += res.RuntimeS
			}
			return sum / reps
		}
		// Configurations are independent (per-rep arithmetic seeds, no
		// shared RNG), so measuring fans out across workers; the sequential
		// argmin below keeps the first-minimum tie-break bit-identical.
		vals1 := parallelMap(len(configs), func(ci int) float64 { return measure(ds1, ci) })
		best1, bi1 := math.Inf(1), -1
		for ci, v := range vals1 {
			if v < best1 {
				best1, bi1 = v, ci
			}
		}
		vals3 := parallelMap(len(configs), func(ci int) float64 { return measure(ds3, ci) })
		best3 := math.Inf(1)
		for _, v := range vals3 {
			if v < best3 {
				best3 = v
			}
		}
		reused := measure(ds3, bi1)
		out.Rows = append(out.Rows, A1Row{Ablation: abl.name, SavingDS3: saving(reused, best3)})
		_ = best1
	}
	return out, nil
}

// Render formats the ablation.
func (r A1Result) Render() Table {
	t := Table{
		ID:     "A1",
		Title:  "Ablation: which simulator mechanism produces PageRank's Table-I saving?",
		Header: []string{"ablation", "DS1->DS3 re-tuning saving"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Ablation, pct(row.SavingDS3)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d random configurations, PageRank at 8GB vs 32GB", r.Configs),
		"the cache-capacity cliff should carry most of the effect; GC/skew/spill are second-order")
	return t
}

// ---------------------------------------------------------------------------
// C11 — DAC's datasize-aware model-based tuning (§II-B: "30-89X ...
// tunes 41 configuration parameters", with model-build cost as the
// criticism).

// C11Row compares one tuning strategy's outcome at equal execution count.
type C11Row struct {
	Strategy string
	Best     float64
	Runs     int
	CostUSD  float64
}

// C11Result compares DAC (model-based GA, trained mostly on reduced input
// sizes) against direct genetic search and Bayesian optimization at the
// same execution budget.
type C11Result struct {
	Workload  string
	ModelMAPE float64
	Rows      []C11Row
}

// C11DACComparison runs all three on Sort over the full 41-knob space.
func C11DACComparison(seed int64) (C11Result, error) {
	cluster, err := TableICluster()
	if err != nil {
		return C11Result{}, err
	}
	space := confspace.SparkSpace()
	w := workload.Sort{}
	target := 8 * GB
	const budget = 35 // 30 training + 5 validation for DAC

	sized := func(cfg confspace.Config, size int64) tuner.Measurement {
		res := runConfig(w, size, space, cfg, cluster, seed+size%97)
		return tuner.Measurement{Runtime: res.RuntimeS, Cost: res.CostUSD, Failed: res.Failed}
	}
	dac, err := tuner.RunDAC(tuner.DACConfig{
		Space: space, TargetSize: target, TrainRuns: 30, ValidateRuns: 5,
	}, sized, stat.NewRNG(seed))
	if err != nil {
		return C11Result{}, err
	}

	out := C11Result{Workload: w.Name(), ModelMAPE: dac.ModelMAPE}
	out.Rows = append(out.Rows, C11Row{
		Strategy: "dac (model-based GA)",
		Best:     dac.Best.Runtime,
		Runs:     dac.TrainRuns + dac.ValidateRuns,
		CostUSD:  dac.TotalCost,
	})
	for _, tn := range []tuner.Tuner{tuner.NewGenetic(space), newBayesOpt(space, seed)} {
		i := 0
		obj := func(cfg confspace.Config) tuner.Measurement {
			i++
			return sized(cfg, target)
		}
		res, err := tuner.Run(tn, obj, budget, stat.NewRNG(seed+int64(len(tn.Name()))))
		if err != nil {
			return C11Result{}, err
		}
		out.Rows = append(out.Rows, C11Row{
			Strategy: tn.Name() + " (direct)",
			Best:     res.Best.Runtime,
			Runs:     len(res.Trials),
			CostUSD:  res.TotalCost,
		})
	}
	return out, nil
}

// Render formats the comparison.
func (r C11Result) Render() Table {
	t := Table{
		ID:     "C11",
		Title:  fmt.Sprintf("DAC model-based tuning vs direct search on %s (41 knobs)", r.Workload),
		Header: []string{"strategy", "best runtime", "executions", "execution bill"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Strategy, secs(row.Best), fmt.Sprint(row.Runs), fmt.Sprintf("$%.2f", row.CostUSD),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("DAC trains mostly at 1/4 and 1/2 input sizes (model MAPE %.0f%% on its validations), so its bill is lower at equal run count", r.ModelMAPE*100),
		"the paper's criticism (§II-B): the model-build cost is hard to amortize before re-tuning is needed")
	return t
}
