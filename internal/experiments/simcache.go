package experiments

import (
	"seamlesstune/internal/cloud"
	"seamlesstune/internal/simcache"
	"seamlesstune/internal/spark"
)

// simCache, when installed, memoizes the per-call-seeded simulator
// executions the experiments perform through runSeeded. It is safe to
// cache exactly these sites — each draws from a fresh stat.NewRNG(seed)
// stream, so skipping the execution cannot perturb any other draw — and
// the cached results are bit-identical to uncached ones, so every table
// renders identically with the cache on or off. Sites that thread one
// sequential RNG through many runs (the lifecycle and drift-window
// experiments) deliberately bypass the cache.
var simCache *simcache.Cache

// SetSimCache installs (or, with nil, removes) the shared evaluation
// cache used by the experiment suite. Not safe to call concurrently
// with running experiments; cmd/experiments sets it once at startup.
func SetSimCache(c *simcache.Cache) { simCache = c }

// CacheStats snapshots the installed cache (zero Stats when none).
func CacheStats() simcache.Stats { return simCache.Stats() }

// runSeeded executes one simulation whose randomness is wholly derived
// from seed, through the evaluation cache when one is installed.
func runSeeded(job *spark.Job, conf spark.Conf, cluster cloud.ClusterSpec,
	factors cloud.Factors, opts spark.RunOpts, seed int64) spark.Result {
	return simCache.Run(job, conf, cluster, factors, opts, seed)
}
