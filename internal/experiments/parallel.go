package experiments

import (
	"runtime"
	"strconv"
	"sync"

	"seamlesstune/internal/stat"
)

// expWorkers bounds every experiment-level worker pool (per-configuration
// fan-out inside protocols, replicated runs in Replicate). It defaults to
// GOMAXPROCS and is a variable so tests can pin it to 1 and prove the
// parallel paths bit-identical to sequential execution.
var expWorkers = runtime.GOMAXPROCS(0)

// parallelMap applies fn to every index of a length-n domain across a
// bounded worker pool and returns the results in index order. Each fn call
// must be independent: it receives the index and derives any randomness
// from it (the callers pass stat.DeriveSeed- or arithmetic-seeded RNGs),
// so the output is identical to a sequential loop regardless of worker
// count or scheduling.
func parallelMap[R any](n int, fn func(i int) R) []R {
	out := make([]R, n)
	workers := expWorkers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// Replication is one repetition of an experiment at a derived seed.
type Replication struct {
	Rep   int
	Seed  int64
	Table Table
	Err   error
}

// Replicate runs spec reps times in parallel, each repetition at
// stat.DeriveSeed(seed, spec.ID, rep). Derived seeds are a pure function
// of (seed, experiment, rep) — no shared RNG is consumed — so the result
// slice is bit-identical to running the repetitions sequentially, in rep
// order.
func Replicate(spec Spec, seed int64, reps int) []Replication {
	if reps < 1 {
		reps = 1
	}
	return parallelMap(reps, func(rep int) Replication {
		s := stat.DeriveSeed(seed, spec.ID, strconv.Itoa(rep))
		tbl, err := spec.Run(s)
		return Replication{Rep: rep, Seed: s, Table: tbl, Err: err}
	})
}
