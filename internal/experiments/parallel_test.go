package experiments

import (
	"fmt"
	"reflect"
	"testing"
)

// Fanned-out protocols must be bit-identical to sequential execution:
// pin the worker pool to 1, rerun with many workers, compare everything.
func TestTable1ParallelMatchesSequential(t *testing.T) {
	orig := expWorkers
	defer func() { expWorkers = orig }()

	expWorkers = 1
	seq, err := Table1(1, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, 13} {
		expWorkers = w
		par, err := Table1(1, 12)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: parallel Table1 diverges from sequential:\n%+v\nvs\n%+v", w, par, seq)
		}
	}
}

func TestParallelMapOrderAndCoverage(t *testing.T) {
	orig := expWorkers
	defer func() { expWorkers = orig }()
	for _, w := range []int{1, 3, 16} {
		expWorkers = w
		got := parallelMap(37, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: index %d holds %d", w, i, v)
			}
		}
	}
	if out := parallelMap(0, func(i int) int { return i }); len(out) != 0 {
		t.Errorf("empty domain returned %v", out)
	}
}

func TestReplicateDerivedSeedsDeterministic(t *testing.T) {
	orig := expWorkers
	defer func() { expWorkers = orig }()

	spec := Spec{
		ID: "FAKE",
		Run: func(seed int64) (Table, error) {
			return Table{ID: "FAKE", Title: fmt.Sprintf("seed=%d", seed)}, nil
		},
	}
	expWorkers = 1
	seq := Replicate(spec, 42, 5)
	expWorkers = 8
	par := Replicate(spec, 42, 5)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel Replicate diverges:\n%+v\nvs\n%+v", par, seq)
	}
	seen := map[int64]bool{}
	for rep, r := range seq {
		if r.Rep != rep || r.Err != nil {
			t.Errorf("rep %d: %+v", rep, r)
		}
		if seen[r.Seed] {
			t.Errorf("derived seed %d repeated", r.Seed)
		}
		seen[r.Seed] = true
	}
	// Different base seeds and different experiment IDs derive different
	// rep seeds.
	other := Replicate(Spec{ID: "OTHER", Run: spec.Run}, 42, 1)
	if other[0].Seed == seq[0].Seed {
		t.Error("experiment ID does not enter seed derivation")
	}
}
