package experiments

import (
	"context"
	"fmt"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/confspace"
	"seamlesstune/internal/core"
	"seamlesstune/internal/history"
	"seamlesstune/internal/spark"
	"seamlesstune/internal/stat"
	"seamlesstune/internal/workload"
)

// F3PhaseRow summarizes one phase of the managed lifecycle.
type F3PhaseRow struct {
	Phase string
	Runs  int
	// ManagedMean and StaticMean are the phase's mean successful runtimes
	// under the managed service and under the never-re-tuned baseline.
	ManagedMean float64
	StaticMean  float64
	// Retunes triggered during the phase (managed side).
	Retunes int
}

// F3Result is the end-to-end "seamless" demonstration: a tenant's
// workload lives through input growth and an interference shift; the
// managed service re-tunes automatically while a statically-tuned
// baseline keeps its day-one configuration. User interventions: zero.
type F3Result struct {
	Workload string
	Phases   []F3PhaseRow
	// TotalManaged and TotalStatic are the summed production hours.
	TotalManagedS float64
	TotalStaticS  float64
	// TuningCostUSD is everything the provider spent tuning and
	// re-tuning on the tenant's behalf.
	TuningCostUSD float64
}

// F3SeamlessLifecycle runs the full story on PageRank.
func F3SeamlessLifecycle(seed int64) (F3Result, error) {
	svc, err := core.NewService(
		core.WithSeed(seed),
		core.WithSparkSpace(confspace.SparkSubspace(12)),
		core.WithBudgets(8, 20),
	)
	if err != nil {
		return F3Result{}, err
	}
	cluster, err := TableICluster()
	if err != nil {
		return F3Result{}, err
	}
	reg := core.Registration{Tenant: "tenant", Workload: workload.PageRank{}, InputBytes: 8 * GB}

	// Day 0: the only tuning the tenant ever "asks" for.
	dc, err := svc.TuneDISC(context.Background(), reg, cluster)
	if err != nil {
		return F3Result{}, err
	}
	day0 := dc.Config
	managed := svc.Manage(reg, cluster, day0, core.WithRetuneBudget(12))

	// The static baseline runs the same schedule with the day-0 config,
	// on its own environment stream with the same seeds.
	staticEnv := cloud.NewEnvironment(cloud.InterferenceNone, seed+500)
	staticRNG := stat.NewRNG(seed + 501)
	staticSize := reg.InputBytes
	staticLevel := cloud.InterferenceNone
	staticConf := spark.FromConfig(svc.SparkSpace(), day0)
	staticRun := func() spark.Result {
		staticEnv.SetLevel(staticLevel)
		return spark.Run(reg.Workload.Job(staticSize), staticConf, cluster, staticEnv.Next(), staticRNG)
	}

	out := F3Result{Workload: reg.Workload.Name()}
	var prodCost float64
	phases := []struct {
		name  string
		runs  int
		size  int64
		level cloud.InterferenceLevel
	}{
		{"DS1 (8GB), quiet", 12, 8 * GB, cloud.InterferenceNone},
		{"DS2 (11GB)", 15, 11 * GB, cloud.InterferenceNone},
		{"DS3 (32GB)", 20, 32 * GB, cloud.InterferenceNone},
		{"DS3 + high co-location", 20, 32 * GB, cloud.InterferenceHigh},
	}
	for _, ph := range phases {
		managed.SetInput(ph.size)
		managed.SetInterference(ph.level)
		staticSize, staticLevel = ph.size, ph.level

		row := F3PhaseRow{Phase: ph.name, Runs: ph.runs}
		retunesBefore := managed.Retunes()
		var mSum, sSum float64
		var mN, sN int
		for i := 0; i < ph.runs; i++ {
			rep := managed.RunOnce()
			prodCost += rep.Record.CostUSD
			if !rep.Record.Failed {
				mSum += rep.Record.RuntimeS
				mN++
			}
			sres := staticRun()
			if !sres.Failed {
				sSum += sres.RuntimeS
				sN++
			}
			out.TotalStaticS += sres.RuntimeS
		}
		row.Retunes = managed.Retunes() - retunesBefore
		if mN > 0 {
			row.ManagedMean = mSum / float64(mN)
		}
		if sN > 0 {
			row.StaticMean = sSum / float64(sN)
		}
		out.Phases = append(out.Phases, row)
	}

	// Accounting: production time from the phase sums. The provider-side
	// tuning bill is everything recorded for the tenant (probes, initial
	// tuning, automatic re-tuning sessions) minus the production runs'
	// own cost.
	for _, ph := range out.Phases {
		out.TotalManagedS += ph.ManagedMean * float64(ph.Runs)
	}
	var allCost float64
	for _, r := range svc.Store().Query(history.Filter{Tenant: reg.Tenant, Workload: reg.Workload.Name()}) {
		allCost += r.CostUSD
	}
	out.TuningCostUSD = allCost - prodCost
	return out, nil
}

// Render formats the lifecycle.
func (r F3Result) Render() Table {
	t := Table{
		ID:     "F3",
		Title:  "Seamless lifecycle: managed service vs statically-tuned baseline (the paper's vision, end to end)",
		Header: []string{"phase", "runs", "managed mean", "static mean", "retunes"},
	}
	for _, ph := range r.Phases {
		t.Rows = append(t.Rows, []string{
			ph.Phase, fmt.Sprint(ph.Runs), secs(ph.ManagedMean), secs(ph.StaticMean), fmt.Sprint(ph.Retunes),
		})
	}
	saved := r.TotalStaticS - r.TotalManagedS
	t.Notes = append(t.Notes,
		fmt.Sprintf("production time: managed %.0fs vs static %.0fs (saved %.0fs); provider tuning bill $%.2f; tenant interventions: 0",
			r.TotalManagedS, r.TotalStaticS, saved, r.TuningCostUSD),
		"the managed workload is re-tuned automatically when its runtime distribution shifts (input growth, co-location)")
	return t
}
