package experiments

import (
	"fmt"
	"math"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/sensitivity"
	"seamlesstune/internal/stat"
	"seamlesstune/internal/tuner"
	"seamlesstune/internal/workload"
)

// ---------------------------------------------------------------------------
// C13 — significance-aware config-space pruning (the Tuneful approach,
// arXiv 2001.08002) on the Table-I workloads: a session that collapses
// onto the significant knobs mid-search must end no worse than the
// full-space session, while the acquisition runs at a fraction of the
// dimension.

// C13Row compares one workload's full-space and pruned sessions at equal
// execution budget.
type C13Row struct {
	Workload   string
	FullBest   float64
	PrunedBest float64
	// ActiveDims/TotalDims is the pruned session's final search view.
	ActiveDims int
	TotalDims  int
	// Delta is (pruned - full) / full: near zero (or negative) means the
	// pruned session matched the full-space optimum from a far smaller
	// space.
	Delta float64
}

// C13Result holds the pruned-vs-full sweep.
type C13Result struct {
	Budget int
	Rows   []C13Row
}

// C13PrunedVsFull runs both sessions per workload over the 30-parameter
// Spark subspace — the dimensionality at which §III-B's explosion bites.
func C13PrunedVsFull(seed int64, budget int) (C13Result, error) {
	if budget <= 0 {
		budget = 80
	}
	cluster, err := TableICluster()
	if err != nil {
		return C13Result{}, err
	}
	space := confspace.SparkSubspace(30)
	size := 8 * GB
	names := []string{"wordcount", "sort", "pagerank"}
	out := C13Result{Budget: budget}

	type sessionOut struct {
		best   float64
		active int
		total  int
		err    error
	}
	run := func(wi int, prune bool) sessionOut {
		w, err := workload.ByName(names[wi])
		if err != nil {
			return sessionOut{err: err}
		}
		salt := int64(wi)*31 + 5
		i := 0
		obj := func(cfg confspace.Config) tuner.Measurement {
			i++
			res := runConfig(w, size, space, cfg, cluster, seed+int64(i)*13+salt)
			return tuner.Measurement{Runtime: res.RuntimeS, Cost: res.CostUSD, Failed: res.Failed}
		}
		var tn tuner.Tuner
		var pb *tuner.PrunedBayesOpt
		if prune {
			pb = tuner.NewPrunedBayesOpt(space)
			pb.Surrogate = surrogateKind
			pb.SurrogateSeed = stat.DeriveSeed(seed+salt, "surrogate")
			// Re-analyze every 10 trials once 30 samples exist, so the
			// session can adopt a subspace within the Table-I-scale budget.
			pb.Prune = sensitivity.Config{
				Seed:       stat.DeriveSeed(seed+salt, "prune"),
				Every:      10,
				MinSamples: 30,
			}
			tn = pb
		} else {
			tn = newBayesOpt(space, seed+salt)
		}
		res, err := tuner.Run(tn, obj, budget, stat.NewRNG(seed+salt))
		if err != nil {
			return sessionOut{err: err}
		}
		o := sessionOut{best: math.Inf(1), active: space.Dim(), total: space.Dim()}
		if res.Found {
			o.best = res.Best.Runtime
		}
		if pb != nil {
			o.active, o.total = pb.ActiveDims()
		}
		return o
	}

	// Both sessions of every workload are independent; fan them out.
	runs := parallelMap(2*len(names), func(k int) sessionOut {
		return run(k/2, k%2 == 1)
	})
	for wi := range names {
		full, pruned := runs[2*wi], runs[2*wi+1]
		if full.err != nil {
			return C13Result{}, full.err
		}
		if pruned.err != nil {
			return C13Result{}, pruned.err
		}
		delta := math.Inf(1)
		if full.best > 0 && !math.IsInf(full.best, 1) && !math.IsInf(pruned.best, 1) {
			delta = (pruned.best - full.best) / full.best
		}
		out.Rows = append(out.Rows, C13Row{
			Workload:   names[wi],
			FullBest:   full.best,
			PrunedBest: pruned.best,
			ActiveDims: pruned.active,
			TotalDims:  pruned.total,
			Delta:      delta,
		})
	}
	return out, nil
}

// Render formats the pruned-vs-full comparison.
func (r C13Result) Render() Table {
	t := Table{
		ID:     "C13",
		Title:  fmt.Sprintf("Significance-aware pruning vs full-space tuning (budget %d executions, 30 params)", r.Budget),
		Header: []string{"workload", "full best", "pruned best", "delta", "active dims"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Workload,
			secs(row.FullBest),
			secs(row.PrunedBest),
			pct(row.Delta),
			fmt.Sprintf("%d/%d", row.ActiveDims, row.TotalDims),
		})
	}
	t.Notes = append(t.Notes,
		"pruning follows Tuneful (arXiv 2001.08002): forest importances over the session's own samples collapse the search onto the significant knobs",
		"claim: the pruned session's final objective is no worse than full-space search while the acquisition runs at a fraction of the dimension")
	return t
}
