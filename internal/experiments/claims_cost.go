package experiments

import (
	"fmt"
	"math"
	"sort"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/confspace"
	"seamlesstune/internal/slo"
	"seamlesstune/internal/stat"
	"seamlesstune/internal/tuner"
	"seamlesstune/internal/workload"
)

// ---------------------------------------------------------------------------
// C1 — misconfiguration cost (§I: "under-provisioned cluster setups can
// slow the analytics pipelines by up to 12X, suboptimal framework
// configurations can lead to 89X performance degradation").

// C1Row reports one workload's degradation factors.
type C1Row struct {
	Workload string
	// ConfDegradation is worst-successful / best runtime across random
	// DISC configurations on the Table-I cluster (the 89X-style claim).
	ConfDegradation float64
	// DefaultDegradation is default-config / best runtime.
	DefaultDegradation float64
	// FailFrac is the fraction of random configurations that crashed.
	FailFrac float64
	// ClusterDegradation is the best-achievable runtime on the worst
	// cluster choice over the best cluster choice, with a scaled
	// reference config (the 12X-style claim).
	ClusterDegradation float64
}

// C1Result reproduces the misconfiguration-cost claims.
type C1Result struct {
	Rows    []C1Row
	Configs int
}

// C1MisconfigCost measures both degradation factors.
func C1MisconfigCost(seed int64, nConfigs int) (C1Result, error) {
	if nConfigs <= 0 {
		nConfigs = 80
	}
	cluster, err := TableICluster()
	if err != nil {
		return C1Result{}, err
	}
	space := confspace.SparkSpace()
	rng := stat.NewRNG(seed)
	catalog := cloud.DefaultCatalog()

	var out C1Result
	out.Configs = nConfigs
	for _, name := range []string{"wordcount", "sort", "pagerank"} {
		w, err := workload.ByName(name)
		if err != nil {
			return C1Result{}, err
		}
		size := 8 * GB
		best, worst := math.Inf(1), 0.0
		fails := 0
		var defRT float64
		for ci := 0; ci < nConfigs; ci++ {
			cfg := space.Random(rng)
			res := runConfig(w, size, space, cfg, cluster, seed+int64(ci))
			if res.Failed {
				fails++
				continue
			}
			if res.RuntimeS < best {
				best = res.RuntimeS
			}
			if res.RuntimeS > worst {
				worst = res.RuntimeS
			}
		}
		defRes := runConfig(w, size, space, space.Default(), cluster, seed+7777)
		if !defRes.Failed {
			defRT = defRes.RuntimeS
		}

		// Cluster misconfiguration: same workload, scaled reference conf,
		// across cluster choices from 2 small general nodes to 8 storage
		// nodes.
		clusterRatio := clusterDegradation(w, size, space, catalog, seed)

		row := C1Row{
			Workload:           name,
			ConfDegradation:    worst / best,
			FailFrac:           float64(fails) / float64(nConfigs),
			ClusterDegradation: clusterRatio,
		}
		if defRT > 0 {
			row.DefaultDegradation = defRT / best
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// clusterDegradation compares plausible cluster choices under a sensibly
// scaled Spark configuration, returning worst/best runtime.
func clusterDegradation(w workload.Workload, size int64, space *confspace.Space, catalog *cloud.Catalog, seed int64) float64 {
	choices := []struct {
		key   string
		count int
	}{
		{"nimbus/g5.large", 2}, // plausible but underprovisioned
		{"nimbus/c5.xlarge", 4},
		{"nimbus/g5.2xlarge", 4},
		{"nimbus/r5.2xlarge", 6},
		{"nimbus/h1.4xlarge", 8},
	}
	best, worst := math.Inf(1), 0.0
	for i, c := range choices {
		it, err := catalog.Lookup(c.key)
		if err != nil {
			continue
		}
		spec := cloud.ClusterSpec{Instance: it, Count: c.count}
		cfg := scaledConf(space, spec)
		res := runConfig(w, size, space, cfg, spec, seed+int64(100+i))
		if res.Failed {
			continue
		}
		if res.RuntimeS < best {
			best = res.RuntimeS
		}
		if res.RuntimeS > worst {
			worst = res.RuntimeS
		}
	}
	if math.IsInf(best, 1) || best <= 0 {
		return 0
	}
	return worst / best
}

// scaledConf sizes Spark defaults to a cluster the way a careful operator
// would (executors by cores, parallelism 2x cores).
func scaledConf(space *confspace.Space, spec cloud.ClusterSpec) confspace.Config {
	cfg := space.Default()
	coresPer := 4
	if spec.Instance.VCPUs < 4 {
		coresPer = spec.Instance.VCPUs
	}
	cfg[confspace.ParamExecutorCores] = float64(coresPer)
	cfg[confspace.ParamExecutorInstances] = float64(spec.TotalCores() / coresPer)
	memMB := spec.Instance.MemoryGB * 1024 / float64(maxIntC(spec.Instance.VCPUs/coresPer, 1)) * 0.55
	p, _ := space.Param(confspace.ParamExecutorMemoryMB)
	cfg[confspace.ParamExecutorMemoryMB] = p.Clamp(memMB)
	cfg[confspace.ParamDriverMemoryMB] = 4096
	pp, _ := space.Param(confspace.ParamDefaultParallelism)
	cfg[confspace.ParamDefaultParallelism] = pp.Clamp(float64(2 * spec.TotalCores()))
	cfg[confspace.ParamShufflePartitions] = pp.Clamp(float64(2 * spec.TotalCores()))
	return cfg
}

func maxIntC(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Render formats the degradation factors.
func (r C1Result) Render() Table {
	t := Table{
		ID:     "C1",
		Title:  "Misconfiguration cost (paper §I: up to 12x from cluster setup, up to 89x from DISC config)",
		Header: []string{"workload", "worst/best conf", "default/best", "crash frac", "worst/best cluster"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Workload,
			fmt.Sprintf("%.0fx", row.ConfDegradation),
			fmt.Sprintf("%.1fx", row.DefaultDegradation),
			pct(row.FailFrac),
			fmt.Sprintf("%.1fx", row.ClusterDegradation),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d random DISC configurations at 8GB input; cluster sweep over 5 plausible setups", r.Configs))
	return t
}

// ---------------------------------------------------------------------------
// C2 — tuner sample-efficiency (§II-B/§IV-C: BestConfig needs ~500
// samples for ~80% improvement; CherryPick finds near-optimal configs
// with a small number of samples; Bu et al. tune 8 parameters in ~25
// runs).

// C2Row is one tuner's trajectory on one workload.
type C2Row struct {
	Tuner       string
	Checkpoints []int
	// BestAt[i] is the best runtime found within Checkpoints[i]
	// executions.
	BestAt []float64
	// Improvement is vs the default configuration at the final budget.
	Improvement float64
	// ToWithin10 is executions needed to get within 10% of the reference
	// optimum (-1 if never).
	ToWithin10 int
}

// C2Result compares the surveyed tuning strategies at equal budget.
type C2Result struct {
	Workload    string
	Budget      int
	DefaultRT   float64
	ReferenceRT float64 // best known from an offline deep search
	Rows        []C2Row
	// QLearn8Improvement validates Bu et al.'s own operating point:
	// Q-learning over an 8-parameter space with 25 executions.
	QLearn8Improvement float64
}

// C2TunerComparison runs every tuner on the same workload and budget.
func C2TunerComparison(seed int64, budget int) (C2Result, error) {
	if budget <= 0 {
		budget = 120
	}
	cluster, err := TableICluster()
	if err != nil {
		return C2Result{}, err
	}
	space := confspace.SparkSpace()
	w := workload.Sort{}
	size := 8 * GB

	makeObjective := func() tuner.Objective {
		i := 0
		return func(cfg confspace.Config) tuner.Measurement {
			i++
			res := runConfig(w, size, space, cfg, cluster, seed+int64(i)*31)
			return tuner.Measurement{Runtime: res.RuntimeS, Cost: res.CostUSD, Failed: res.Failed}
		}
	}

	// Reference optimum: a deep random search (3x budget).
	refRng := stat.NewRNG(seed + 9999)
	refObj := makeObjective()
	ref, err := tuner.Run(tuner.NewRandomSearch(space), refObj, budget*3, refRng)
	if err != nil {
		return C2Result{}, err
	}
	defRes := runConfig(w, size, space, space.Default(), cluster, seed+5555)

	out := C2Result{
		Workload:    w.Name(),
		Budget:      budget,
		DefaultRT:   defRes.RuntimeS,
		ReferenceRT: ref.Best.Runtime,
	}
	checkpoints := []int{10, 25, 50, budget}
	sort.Ints(checkpoints)

	tuners := []tuner.Tuner{
		tuner.NewRandomSearch(space),
		tuner.NewHillClimb(space),
		newBayesOpt(space, seed),
		tuner.NewGenetic(space),
		tuner.NewBestConfig(space),
		tuner.NewTreeSearch(space),
		tuner.NewQLearn(space),
	}
	for _, tn := range tuners {
		res, err := tuner.Run(tn, makeObjective(), budget, stat.NewRNG(seed+int64(len(tn.Name()))))
		if err != nil {
			return C2Result{}, err
		}
		row := C2Row{Tuner: tn.Name(), Checkpoints: checkpoints, ToWithin10: res.ExecutionsToReach(out.ReferenceRT * 1.1)}
		for _, cp := range checkpoints {
			idx := cp - 1
			if idx >= len(res.BestSoFar) {
				idx = len(res.BestSoFar) - 1
			}
			row.BestAt = append(row.BestAt, res.BestSoFar[idx])
		}
		if res.Found && out.DefaultRT > 0 {
			row.Improvement = slo.ImprovementOverDefault(res.Best.Runtime, out.DefaultRT)
		}
		out.Rows = append(out.Rows, row)
	}

	// Bu et al.'s own operating point: Q-learning on an 8-parameter space
	// with 25 executions — where the approach was designed to work.
	sub := confspace.SparkSubspace(8)
	i := 0
	subObj := func(cfg confspace.Config) tuner.Measurement {
		i++
		res := runConfig(w, size, sub, cfg, cluster, seed+int64(i)*41)
		return tuner.Measurement{Runtime: res.RuntimeS, Cost: res.CostUSD, Failed: res.Failed}
	}
	q8, err := tuner.Run(tuner.NewQLearn(sub), subObj, 25, stat.NewRNG(seed+55))
	if err != nil {
		return C2Result{}, err
	}
	if q8.Found && out.DefaultRT > 0 {
		out.QLearn8Improvement = slo.ImprovementOverDefault(q8.Best.Runtime, out.DefaultRT)
	}
	return out, nil
}

// Render formats the comparison.
func (r C2Result) Render() Table {
	t := Table{
		ID:    "C2",
		Title: fmt.Sprintf("Tuner sample-efficiency on %s (default %.0fs, reference best %.0fs)", r.Workload, r.DefaultRT, r.ReferenceRT),
	}
	t.Header = []string{"tuner"}
	for _, cp := range r.Rows[0].Checkpoints {
		t.Header = append(t.Header, fmt.Sprintf("best@%d", cp))
	}
	t.Header = append(t.Header, "improvement", "execs to ref+10%")
	for _, row := range r.Rows {
		cells := []string{row.Tuner}
		for _, b := range row.BestAt {
			if math.IsInf(b, 1) {
				cells = append(cells, "-")
			} else {
				cells = append(cells, secs(b))
			}
		}
		within := "-"
		if row.ToWithin10 >= 0 {
			within = fmt.Sprint(row.ToWithin10)
		}
		cells = append(cells, pct(row.Improvement), within)
		t.Rows = append(t.Rows, cells)
	}
	t.Notes = append(t.Notes,
		"paper context: BestConfig used ~500 executions for ~80% improvement; model-based search is expected to reach good configs in tens of runs",
		"qlearn walks single knobs and scales poorly to the 41-dim space",
		fmt.Sprintf("at Bu et al.'s own operating point (8 params, 25 executions) qlearn improves %s over the default", pct(r.QLearn8Improvement)))
	return t
}

// ---------------------------------------------------------------------------
// C4 — tuning-cost amortization (§IV-C: 500 tuning executions cost more
// than 90 normal runs in 3 months).

// C4Row is one tuning budget's amortization account.
type C4Row struct {
	Budget          int
	TuningCostUSD   float64
	TunedRunCostUSD float64
	RunsToAmortize  int // -1 when tuning never pays off
	NetAfter90Runs  float64
}

// C4Result reproduces the amortization argument.
type C4Result struct {
	Workload       string
	DefaultRunCost float64
	ProductionRuns int
	Rows           []C4Row
}

// C4CostAmortization tunes at several budgets and accounts the bill.
func C4CostAmortization(seed int64) (C4Result, error) {
	cluster, err := TableICluster()
	if err != nil {
		return C4Result{}, err
	}
	space := confspace.SparkSpace()
	w := workload.Bayes{}
	size := 8 * GB

	defRes := runConfig(w, size, space, space.Default(), cluster, seed+1)
	out := C4Result{
		Workload:       w.Name(),
		DefaultRunCost: defRes.CostUSD,
		ProductionRuns: 90, // the paper's 3-month exemplar
	}
	for _, budget := range []int{30, 100, 500} {
		i := 0
		obj := func(cfg confspace.Config) tuner.Measurement {
			i++
			res := runConfig(w, size, space, cfg, cluster, seed+int64(i)*13)
			return tuner.Measurement{Runtime: res.RuntimeS, Cost: res.CostUSD, Failed: res.Failed}
		}
		res, err := tuner.Run(tuner.NewBestConfig(space), obj, budget, stat.NewRNG(seed+int64(budget)))
		if err != nil {
			return C4Result{}, err
		}
		ledger := slo.Ledger{
			TuningCostUSD: res.TotalCost,
			OldRunCostUSD: defRes.CostUSD,
			NewRunCostUSD: res.Best.Cost,
		}
		row := C4Row{Budget: budget, TuningCostUSD: res.TotalCost, TunedRunCostUSD: res.Best.Cost}
		if n, err := ledger.RunsToAmortize(); err == nil {
			row.RunsToAmortize = n
		} else {
			row.RunsToAmortize = -1
		}
		row.NetAfter90Runs = ledger.NetSavingAfter(out.ProductionRuns)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render formats the ledger.
func (r C4Result) Render() Table {
	t := Table{
		ID:     "C4",
		Title:  fmt.Sprintf("Tuning-cost amortization on %s (default run costs $%.3f)", r.Workload, r.DefaultRunCost),
		Header: []string{"tuning budget", "tuning bill", "tuned run cost", "runs to amortize", "net after 90 runs"},
	}
	for _, row := range r.Rows {
		amort := "never"
		if row.RunsToAmortize >= 0 {
			amort = fmt.Sprint(row.RunsToAmortize)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(row.Budget),
			fmt.Sprintf("$%.2f", row.TuningCostUSD),
			fmt.Sprintf("$%.3f", row.TunedRunCostUSD),
			amort,
			fmt.Sprintf("$%.2f", row.NetAfter90Runs),
		})
	}
	if n := len(r.Rows); n > 0 {
		last := r.Rows[n-1]
		t.Notes = append(t.Notes, fmt.Sprintf(
			"the %d-run tuning bill ($%.2f) vs 90 tuned production runs ($%.2f): the paper's §IV-C point",
			last.Budget, last.TuningCostUSD, float64(r.ProductionRuns)*last.TunedRunCostUSD))
	}
	t.Notes = append(t.Notes,
		"paper §IV-C: a 500-execution tuning (BestConfig) consumes more than 90 'normal' runs over 3 months",
		"bounded budgets amortize faster; larger budgets buy little further improvement")
	return t
}
