package experiments

import (
	"fmt"
	"sort"
)

// Spec describes one runnable experiment.
type Spec struct {
	ID    string
	Title string
	// Run executes the experiment at the given seed and returns the
	// rendered table.
	Run func(seed int64) (Table, error)
}

// All returns every experiment, ordered by id. Budgets are the defaults
// recorded in EXPERIMENTS.md; pass nConfig-style overrides by calling the
// typed constructors directly.
func All() []Spec {
	specs := []Spec{
		{
			ID:    "T1",
			Title: "Table I: re-tuning savings over evolving input sizes",
			Run: func(seed int64) (Table, error) {
				r, err := Table1(seed, 100)
				if err != nil {
					return Table{}, err
				}
				return r.Render(), nil
			},
		},
		{
			ID:    "T1X",
			Title: "Table-I protocol on the extension workloads (join/kmeans/sort)",
			Run: func(seed int64) (Table, error) {
				r, err := Table1Extension(seed, 60)
				if err != nil {
					return Table{}, err
				}
				return r.RenderGeneric("T1X", "Re-tuning savings: extension workloads (Table-I protocol)"), nil
			},
		},
		{
			ID:    "C9",
			Title: "what-if engine accuracy (Starfish limitation)",
			Run: func(seed int64) (Table, error) {
				r, err := C9WhatIfAccuracy(seed, 15)
				if err != nil {
					return Table{}, err
				}
				return r.Render(), nil
			},
		},
		{
			ID:    "C10",
			Title: "PARIS VM selection vs online search",
			Run: func(seed int64) (Table, error) {
				r, err := C10ParisVMSelection(seed)
				if err != nil {
					return Table{}, err
				}
				return r.Render(), nil
			},
		},
		{
			ID:    "C11",
			Title: "DAC model-based tuning vs direct search",
			Run: func(seed int64) (Table, error) {
				r, err := C11DACComparison(seed)
				if err != nil {
					return Table{}, err
				}
				return r.Render(), nil
			},
		},
		{
			ID:    "C12",
			Title: "tuning under co-location interference",
			Run: func(seed int64) (Table, error) {
				r, err := C12TuningUnderInterference(seed, 30)
				if err != nil {
					return Table{}, err
				}
				return r.Render(), nil
			},
		},
		{
			ID:    "A1",
			Title: "Table-I mechanism ablation",
			Run: func(seed int64) (Table, error) {
				r, err := A1TableIAblation(seed, 60)
				if err != nil {
					return Table{}, err
				}
				return r.Render(), nil
			},
		},
		{
			ID:    "F1",
			Title: "Fig. 1: two-stage tuning pipeline",
			Run: func(seed int64) (Table, error) {
				r, err := Fig1Pipeline(seed)
				if err != nil {
					return Table{}, err
				}
				return r.Render(), nil
			},
		},
		{
			ID:    "F3",
			Title: "seamless lifecycle: managed vs static, end to end",
			Run: func(seed int64) (Table, error) {
				r, err := F3SeamlessLifecycle(seed)
				if err != nil {
					return Table{}, err
				}
				return r.Render(), nil
			},
		},
		{
			ID:    "F2",
			Title: "Fig. 2: Spark internal architecture trace",
			Run: func(seed int64) (Table, error) {
				r, err := Fig2Architecture(seed)
				if err != nil {
					return Table{}, err
				}
				return r.Render(), nil
			},
		},
		{
			ID:    "C1",
			Title: "misconfiguration cost (12x cluster / 89x config)",
			Run: func(seed int64) (Table, error) {
				r, err := C1MisconfigCost(seed, 80)
				if err != nil {
					return Table{}, err
				}
				return r.Render(), nil
			},
		},
		{
			ID:    "C2",
			Title: "tuner sample-efficiency comparison",
			Run: func(seed int64) (Table, error) {
				r, err := C2TunerComparison(seed, 120)
				if err != nil {
					return Table{}, err
				}
				return r.Render(), nil
			},
		},
		{
			ID:    "C3",
			Title: "search-space growth with dimensionality",
			Run: func(seed int64) (Table, error) {
				r, err := C3SearchSpaceGrowth(seed, 40)
				if err != nil {
					return Table{}, err
				}
				return r.Render(), nil
			},
		},
		{
			ID:    "C4",
			Title: "tuning-cost amortization",
			Run: func(seed int64) (Table, error) {
				r, err := C4CostAmortization(seed)
				if err != nil {
					return Table{}, err
				}
				return r.Render(), nil
			},
		},
		{
			ID:    "C5",
			Title: "re-tuning detection policies",
			Run: func(seed int64) (Table, error) {
				r, err := C5RetuneDetection(seed)
				if err != nil {
					return Table{}, err
				}
				return r.Render(), nil
			},
		},
		{
			ID:    "C6",
			Title: "transfer learning across workloads",
			Run: func(seed int64) (Table, error) {
				r, err := C6TransferLearning(seed, 25)
				if err != nil {
					return Table{}, err
				}
				return r.Render(), nil
			},
		},
		{
			ID:    "C7",
			Title: "SLO effectiveness vs tuning budget",
			Run: func(seed int64) (Table, error) {
				r, err := C7SLOEfficiency(seed)
				if err != nil {
					return Table{}, err
				}
				return r.Render(), nil
			},
		},
		{
			ID:    "C13",
			Title: "significance-aware pruning vs full-space tuning",
			Run: func(seed int64) (Table, error) {
				r, err := C13PrunedVsFull(seed, 80)
				if err != nil {
					return Table{}, err
				}
				return r.Render(), nil
			},
		},
		{
			ID:    "C8",
			Title: "additive-GP interpretability",
			Run: func(seed int64) (Table, error) {
				r, err := C8AdditiveGPInterpret(seed, 80)
				if err != nil {
					return Table{}, err
				}
				return r.Render(), nil
			},
		},
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].ID < specs[j].ID })
	return specs
}

// ByID resolves one experiment.
func ByID(id string) (Spec, error) {
	for _, s := range All() {
		if s.ID == id {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
