package experiments

import (
	"fmt"
	"math"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/stat"
	"seamlesstune/internal/workload"
)

// Table1Row is one workload's potential execution-time saving from
// re-tuning as its input evolves DS1 → DS2 → DS3 (paper Table I).
type Table1Row struct {
	Workload string
	// Sizes are the DS1/DS2/DS3 input sizes in bytes.
	Sizes [3]int64
	// BestRuntime[k] is the best runtime among the sampled configurations
	// at DSk+1.
	BestRuntime [3]float64
	// ReusedRuntime[k] (k=1,2) is DS1's best configuration re-run at DSk+1.
	ReusedRuntime [3]float64
	// SavingDS2 and SavingDS3 are the relative savings of re-tuning:
	// (reused - best) / reused.
	SavingDS2 float64
	SavingDS3 float64
}

// Table1Result reproduces Table I.
type Table1Result struct {
	Rows    []Table1Row
	Configs int
}

// PaperTable1 holds the paper's reported savings for comparison.
var PaperTable1 = map[string][2]float64{
	"pagerank":  {0.08, 0.56},
	"bayes":     {0.17, 0.25},
	"wordcount": {0.00, 0.03},
}

// table1Sizes returns the evolving input sizes per workload. The paper
// does not publish its DS1/DS2/DS3 sizes; these are calibrated so the
// simulated cluster shows the same qualitative regimes (PageRank's cache
// cliff between DS2 and DS3, Bayes's between DS1 and DS3, none for
// Wordcount).
func table1Sizes() map[string][3]int64 {
	return map[string][3]int64{
		"pagerank":  {8 * GB, 11 * GB, 32 * GB},
		"bayes":     {8 * GB, 28 * GB, 44 * GB},
		"wordcount": {8 * GB, 16 * GB, 32 * GB},
	}
}

// Table1 reruns the paper's protocol: for each workload and input size,
// execute the same nConfigs random configurations (nConfigs <= 0 uses the
// paper's 100) on the 4×h1.4xlarge cluster; compare the best runtime at
// DS2/DS3 against DS1's best configuration re-used at those sizes.
func Table1(seed int64, nConfigs int) (Table1Result, error) {
	return table1Protocol(seed, nConfigs, []string{"pagerank", "bayes", "wordcount"}, table1Sizes())
}

// Table1Extension runs the same protocol on the suite's extension
// workloads: the SQL join (whose physical plan flips from broadcast to
// sort-merge as the dimension table outgrows the planner threshold),
// K-means (cache-bound like PageRank) and Sort (spill-bound).
func Table1Extension(seed int64, nConfigs int) (Table1Result, error) {
	sizes := map[string][3]int64{
		"join":   {3 * GB, 8 * GB, 24 * GB}, // plan flips between DS1 and DS2
		"kmeans": {8 * GB, 16 * GB, 48 * GB},
		"sort":   {8 * GB, 16 * GB, 48 * GB},
	}
	return table1Protocol(seed, nConfigs, []string{"join", "kmeans", "sort"}, sizes)
}

func table1Protocol(seed int64, nConfigs int, names []string, sizesOf map[string][3]int64) (Table1Result, error) {
	if nConfigs <= 0 {
		nConfigs = 100
	}
	cluster, err := TableICluster()
	if err != nil {
		return Table1Result{}, err
	}
	space := confspace.SparkSpace()
	rng := stat.NewRNG(seed)
	configs := make([]confspace.Config, nConfigs)
	for i := range configs {
		configs[i] = space.Random(rng)
	}

	var out Table1Result
	out.Configs = nConfigs
	for _, name := range names {
		w, err := workload.ByName(name)
		if err != nil {
			return Table1Result{}, err
		}
		sizes := sizesOf[name]
		row := Table1Row{Workload: name, Sizes: sizes}
		bestIdx := [3]int{}
		times := make([][]float64, 3)
		for si, size := range sizes {
			// Configurations are independent — each rep's RNG is seeded by
			// the arithmetic formula below, never a shared stream — so the
			// fan-out is bit-identical to the old sequential loop.
			times[si] = parallelMap(nConfigs, func(ci int) float64 {
				// Average over repetitions so best-of-N reflects the
				// configuration, not one lucky straggler draw.
				const reps = 7
				sum, failed := 0.0, false
				for rep := 0; rep < reps; rep++ {
					res := runConfig(w, size, space, configs[ci], cluster, seed+int64(1000+ci*reps+rep))
					if res.Failed {
						failed = true
						break
					}
					sum += res.RuntimeS
				}
				tm := sum / reps
				if failed {
					tm = math.Inf(1)
				}
				return tm
			})
			// Sequential argmin keeps the first-minimum tie-break.
			best, bi := math.Inf(1), -1
			for ci, tm := range times[si] {
				if tm < best {
					best, bi = tm, ci
				}
			}
			row.BestRuntime[si] = best
			bestIdx[si] = bi
		}
		row.ReusedRuntime[1] = times[1][bestIdx[0]]
		row.ReusedRuntime[2] = times[2][bestIdx[0]]
		row.SavingDS2 = saving(row.ReusedRuntime[1], row.BestRuntime[1])
		row.SavingDS3 = saving(row.ReusedRuntime[2], row.BestRuntime[2])
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func saving(reused, best float64) float64 {
	if reused <= 0 || math.IsInf(reused, 1) {
		return 0
	}
	s := (reused - best) / reused
	if s < 0 {
		return 0
	}
	return s
}

// Render formats the result next to the paper's reported numbers.
func (r Table1Result) Render() Table {
	t := Table{
		ID:     "T1",
		Title:  "Potential execution time saving of re-tuning over evolving input sizes",
		Header: []string{"Potential savings", "Pagerank", "Bayes", "Wordcount"},
	}
	byName := map[string]Table1Row{}
	for _, row := range r.Rows {
		byName[row.Workload] = row
	}
	t.Rows = append(t.Rows, []string{
		"DS1_best - DS2_best (ours)",
		pct(byName["pagerank"].SavingDS2), pct(byName["bayes"].SavingDS2), pct(byName["wordcount"].SavingDS2),
	})
	t.Rows = append(t.Rows, []string{
		"DS1_best - DS2_best (paper)",
		pct(PaperTable1["pagerank"][0]), pct(PaperTable1["bayes"][0]), pct(PaperTable1["wordcount"][0]),
	})
	t.Rows = append(t.Rows, []string{
		"DS1_best - DS3_best (ours)",
		pct(byName["pagerank"].SavingDS3), pct(byName["bayes"].SavingDS3), pct(byName["wordcount"].SavingDS3),
	})
	t.Rows = append(t.Rows, []string{
		"DS1_best - DS3_best (paper)",
		pct(PaperTable1["pagerank"][1]), pct(PaperTable1["bayes"][1]), pct(PaperTable1["wordcount"][1]),
	})
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d random configurations per (workload, size) on 4x h1.4xlarge-like nodes", r.Configs),
		"shape criteria: savings grow with the input gap; PageRank largest at DS3; Wordcount ~0")
	return t
}

// RenderGeneric formats any Table-I-protocol result without the paper
// comparison rows (used by the extension experiment).
func (r Table1Result) RenderGeneric(id, title string) Table {
	t := Table{
		ID:     id,
		Title:  title,
		Header: []string{"workload", "DS1/DS2/DS3", "best DS1", "saving DS2", "saving DS3"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Workload,
			fmt.Sprintf("%d/%d/%dGB", row.Sizes[0]>>30, row.Sizes[1]>>30, row.Sizes[2]>>30),
			secs(row.BestRuntime[0]),
			pct(row.SavingDS2),
			pct(row.SavingDS3),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d random configurations per (workload, size), Table-I protocol", r.Configs))
	return t
}

// ShapeHolds checks the acceptance criteria from DESIGN.md: per-workload
// DS3 savings >= DS2 savings, PageRank(DS3) is the largest DS3 saving,
// PageRank(DS3) is substantial (> 30%), and Wordcount savings are
// negligible (< 5%).
func (r Table1Result) ShapeHolds() bool {
	byName := map[string]Table1Row{}
	for _, row := range r.Rows {
		byName[row.Workload] = row
	}
	pr, by, wc := byName["pagerank"], byName["bayes"], byName["wordcount"]
	if pr.SavingDS3 < pr.SavingDS2 || by.SavingDS3 < by.SavingDS2 {
		return false
	}
	if pr.SavingDS3 < 0.30 {
		return false
	}
	if pr.SavingDS3 < by.SavingDS3 || pr.SavingDS3 < wc.SavingDS3 {
		return false
	}
	// Wordcount's savings are "marginal or no savings" (§IV-B): well
	// below the iterative workloads'.
	return wc.SavingDS2 < 0.10 && wc.SavingDS3 < 0.10 && wc.SavingDS3 < by.SavingDS3/2
}
