package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// rankError reports |estimated rank − true rank| / n for value v against
// the sorted reference data.
func rankError(sorted []float64, v float64, q float64) float64 {
	rank := sort.SearchFloat64s(sorted, v)
	return math.Abs(float64(rank)/float64(len(sorted)) - q)
}

func TestSketchExactSmall(t *testing.T) {
	s := NewSketch(64)
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	if got := s.Count(); got != 10 {
		t.Fatalf("count = %d, want 10", got)
	}
	// Below k, nothing has compacted: quantiles are exact ranks.
	if got := s.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := s.Quantile(1); got != 10 {
		t.Errorf("q1 = %v, want 10", got)
	}
	if got := s.Quantile(0.5); got != 5 {
		t.Errorf("q0.5 = %v, want 5", got)
	}
}

func TestSketchAccuracyUniform(t *testing.T) {
	const n = 100_000
	rng := rand.New(rand.NewSource(7))
	s := NewSketch(0)
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.Float64() * 1000
		s.Add(data[i])
	}
	sort.Float64s(data)
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		est := s.Quantile(q)
		if err := rankError(data, est, q); err > 0.03 {
			t.Errorf("q%.2f: estimate %.2f has rank error %.4f, want ≤ 0.03", q, est, err)
		}
	}
	if s.Quantile(0) != data[0] || s.Quantile(1) != data[n-1] {
		t.Error("extremes are tracked exactly and must be returned exactly")
	}
}

func TestSketchAccuracySkewed(t *testing.T) {
	// Heavy-tailed data — the regime where fixed buckets go blind and the
	// sketch must not.
	const n = 50_000
	rng := rand.New(rand.NewSource(11))
	s := NewSketch(0)
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Exp(rng.NormFloat64() * 3)
		s.Add(data[i])
	}
	sort.Float64s(data)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		est := s.Quantile(q)
		if err := rankError(data, est, q); err > 0.03 {
			t.Errorf("q%.2f: estimate %.4g has rank error %.4f, want ≤ 0.03", q, est, err)
		}
	}
}

// TestSketchWeightConservation: compaction parks odd elements rather
// than discarding, so the summed item weights always equal the count.
func TestSketchWeightConservation(t *testing.T) {
	s := NewSketch(16)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10_000; i++ {
		s.Add(rng.Float64())
		if i%997 == 0 {
			var w uint64
			s.mu.Lock()
			for lvl, lv := range s.levels {
				w += uint64(len(lv)) << uint(lvl)
			}
			count := s.count
			s.mu.Unlock()
			if w != count {
				t.Fatalf("after %d adds: total weight %d != count %d", i+1, w, count)
			}
		}
	}
}

func TestSketchMerge(t *testing.T) {
	const n = 40_000
	rng := rand.New(rand.NewSource(19))
	whole := NewSketch(0)
	parts := []*Sketch{NewSketch(0), NewSketch(0), NewSketch(0), NewSketch(0)}
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.NormFloat64()*10 + 50
		whole.Add(data[i])
		parts[i%len(parts)].Add(data[i])
	}
	merged := NewSketch(0)
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != n {
		t.Fatalf("merged count = %d, want %d", merged.Count(), n)
	}
	sort.Float64s(data)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		est := merged.Quantile(q)
		if err := rankError(data, est, q); err > 0.03 {
			t.Errorf("merged q%.2f: estimate %.3f has rank error %.4f, want ≤ 0.03", q, est, err)
		}
	}
	// Merge must leave the source untouched.
	if parts[0].Count() != n/4 {
		t.Errorf("source sketch mutated by merge: count %d", parts[0].Count())
	}
	// Merging an empty or nil sketch is a no-op.
	before := merged.Count()
	merged.Merge(NewSketch(0))
	merged.Merge(nil)
	if merged.Count() != before {
		t.Errorf("no-op merges changed count: %d → %d", before, merged.Count())
	}
}

func TestSketchEdgeCases(t *testing.T) {
	var nilS *Sketch
	nilS.Add(1)
	nilS.Merge(NewSketch(0))
	if nilS.Quantile(0.5) != 0 || nilS.Count() != 0 {
		t.Error("nil sketch must behave as empty")
	}
	s := NewSketch(0)
	if s.Quantile(0.5) != 0 {
		t.Error("empty sketch quantile should be 0")
	}
	s.Add(math.NaN())
	if s.Count() != 0 {
		t.Error("NaN must be ignored")
	}
	s.Add(42)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := s.Quantile(q); got != 42 {
			t.Errorf("single-value sketch q%v = %v, want 42", q, got)
		}
	}
	qs := s.Quantiles(0.5, 0.9, 0.99)
	if len(qs) != 3 || qs[0] != 42 || qs[1] != 42 || qs[2] != 42 {
		t.Errorf("Quantiles = %v, want [42 42 42]", qs)
	}
}

// TestSketchConcurrency exercises concurrent Add/Merge/Quantile for the
// -race build, including the Merge(a,b) vs Merge(b,a) lock ordering.
func TestSketchConcurrency(t *testing.T) {
	a, b := NewSketch(64), NewSketch(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				a.Add(rng.Float64())
				b.Add(rng.Float64())
			}
		}(int64(g))
	}
	wg.Add(2)
	go func() { defer wg.Done(); a.Merge(b) }()
	go func() { defer wg.Done(); b.Merge(a) }()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			a.Quantile(0.5)
			b.Quantiles(0.9, 0.99)
		}
	}()
	wg.Wait()
}

func TestRegistrySketchedHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramSketched("lat_seconds", "", DefBuckets)
	plain := r.Histogram("plain_seconds", "", DefBuckets)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
		plain.Observe(float64(i))
	}
	var sketched, plainSnap *SeriesSnapshot
	snap := r.Gather()
	for fi := range snap.Families {
		fam := &snap.Families[fi]
		for i := range fam.Series {
			switch fam.Name {
			case "lat_seconds":
				sketched = &fam.Series[i]
			case "plain_seconds":
				plainSnap = &fam.Series[i]
			}
		}
	}
	if sketched == nil || plainSnap == nil {
		t.Fatal("families missing from Gather")
	}
	if plainSnap.Quantiles != nil {
		t.Errorf("plain histogram gained quantiles: %v", plainSnap.Quantiles)
	}
	q := sketched.Quantiles
	if q == nil {
		t.Fatal("sketched histogram has no quantiles")
	}
	for key, want := range map[string]float64{"p50": 500, "p90": 900, "p99": 990} {
		got, ok := q[key]
		if !ok {
			t.Fatalf("quantiles missing %s: %v", key, q)
		}
		if math.Abs(got-want) > 30 { // 3% of 1000 ranks
			t.Errorf("%s = %v, want ≈ %v", key, got, want)
		}
	}
	// Vec variant: each child gets its own sketch.
	hv := r.HistogramVecSketched("vec_seconds", "", DefBuckets, "phase")
	hv.With("cloud").Observe(1)
	hv.With("disc").Observe(100)
	for _, fam := range r.Gather().Families {
		if fam.Name != "vec_seconds" {
			continue
		}
		if len(fam.Series) != 2 {
			t.Fatalf("vec series = %d, want 2", len(fam.Series))
		}
		for _, s := range fam.Series {
			if s.Quantiles == nil {
				t.Errorf("vec child %v missing quantiles", s.LabelValues)
			}
		}
	}
}
