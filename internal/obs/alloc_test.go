package obs

import (
	"testing"
)

// TestHotPathAllocFree is the guard behind the PR's "leave it on"
// promise: the per-event cost of every metric and span operation must be
// zero heap allocations, so observability cannot silently regress the
// tuned hot paths (BenchmarkBayesOptStep and friends).
func TestHotPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", DefBuckets)
	vc := r.CounterVec("v_total", "", "route").With("/v1/jobs")
	tracer := NewTracer(1024)
	tr := Trace{T: tracer, ID: tracer.NewTraceID()}

	cases := []struct {
		name string
		op   func()
	}{
		{"counter-add", func() { c.Add(1) }},
		{"gauge-set", func() { g.Set(3.5) }},
		{"histogram-observe", func() { h.Observe(0.042) }},
		{"vec-child-add", func() { vc.Inc() }},
		{"span", func() {
			sp := tr.Start("trial", "tuner")
			sp.Num("best", 12.5)
			sp.Str("state", "ok")
			sp.End()
		}},
		{"event", func() { tr.Event("tick", "tuner") }},
		{"nop-span", func() {
			var off Trace
			sp := off.Start("trial", "tuner")
			sp.Num("best", 12.5)
			sp.End()
		}},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(200, tc.op); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

// BenchmarkObsOverhead measures the instrumented hot-path cost against
// the no-op (zero-value handle) baseline — the numbers recorded in
// BENCH_obs.json by `make bench-obs`. ReportAllocs makes any future
// allocation regression visible in the committed record.
func BenchmarkObsOverhead(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	h := r.Histogram("bench_seconds", "", DefBuckets)
	tracer := NewTracer(4096)
	tr := Trace{T: tracer, ID: tracer.NewTraceID()}

	b.Run("counter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Add(1)
		}
	})
	b.Run("histogram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i&1023) * 0.001)
		}
	})
	b.Run("span", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := tr.Start("trial", "tuner")
			sp.Num("best", 1)
			sp.End()
		}
	})
	var nopC Counter
	b.Run("counter-nop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nopC.Add(1)
		}
	})
	var nopT Trace
	b.Run("span-nop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := nopT.Start("trial", "tuner")
			sp.Num("best", 1)
			sp.End()
		}
	})
}
