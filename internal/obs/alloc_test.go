package obs

import (
	"testing"
)

// TestHotPathAllocFree is the guard behind the PR's "leave it on"
// promise: the per-event cost of every metric and span operation must be
// zero heap allocations, so observability cannot silently regress the
// tuned hot paths (BenchmarkBayesOptStep and friends).
func TestHotPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", DefBuckets)
	vc := r.CounterVec("v_total", "", "route").With("/v1/jobs")
	tracer := NewTracer(1024)
	tr := Trace{T: tracer, ID: tracer.NewTraceID()}
	elogNoSub := NewEventLog(1024)
	emNoSub := Emitter{Log: elogNoSub, Session: "s", Tenant: "t", Workload: "w"}
	elog := NewEventLog(1024)
	em := Emitter{Log: elog, Session: "s", Tenant: "t", Workload: "w"}
	_, sub := elog.SubscribeFrom(0, 4) // stays full after 4 publishes: drop path
	defer sub.Close()

	cases := []struct {
		name string
		op   func()
	}{
		{"counter-add", func() { c.Add(1) }},
		{"gauge-set", func() { g.Set(3.5) }},
		{"histogram-observe", func() { h.Observe(0.042) }},
		{"vec-child-add", func() { vc.Inc() }},
		{"span", func() {
			sp := tr.Start("trial", "tuner")
			sp.Num("best", 12.5)
			sp.Str("state", "ok")
			sp.End()
		}},
		{"event", func() { tr.Event("tick", "tuner") }},
		{"eventlog-publish-nosub", func() {
			emNoSub.Emit(Event{Type: EventTrial, Trial: 1, Objective: 12.5, CostUSD: 0.01})
		}},
		{"eventlog-publish-sub", func() {
			em.Emit(Event{Type: EventTrial, Trial: 1, Objective: 12.5, CostUSD: 0.01})
		}},
		{"eventlog-publish-nil", func() {
			var off Emitter
			off.Emit(Event{Type: EventTrial, Trial: 1})
		}},
		{"nop-span", func() {
			var off Trace
			sp := off.Start("trial", "tuner")
			sp.Num("best", 12.5)
			sp.End()
		}},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(200, tc.op); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

// BenchmarkObsOverhead measures the instrumented hot-path cost against
// the no-op (zero-value handle) baseline — the numbers recorded in
// BENCH_obs.json by `make bench-obs`. ReportAllocs makes any future
// allocation regression visible in the committed record.
func BenchmarkObsOverhead(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	h := r.Histogram("bench_seconds", "", DefBuckets)
	tracer := NewTracer(4096)
	tr := Trace{T: tracer, ID: tracer.NewTraceID()}

	b.Run("counter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Add(1)
		}
	})
	b.Run("histogram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i&1023) * 0.001)
		}
	})
	b.Run("span", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := tr.Start("trial", "tuner")
			sp.Num("best", 1)
			sp.End()
		}
	})
	var nopC Counter
	b.Run("counter-nop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nopC.Add(1)
		}
	})
	var nopT Trace
	b.Run("span-nop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := nopT.Start("trial", "tuner")
			sp.Num("best", 1)
			sp.End()
		}
	})
	// Event bus: the no-subscriber path is what every trial pays when
	// nobody is streaming; the drained-subscriber path adds one channel
	// send. Both must stay 0 allocs/op.
	elog := NewEventLog(8192)
	em := Emitter{Log: elog, Session: "job", Tenant: "acme", Workload: "pagerank"}
	b.Run("event-nosub", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			em.Emit(Event{Type: EventTrial, Trial: i, Objective: 12.5, BestSoFar: 10, CostUSD: 0.01, SpendUSD: 1})
		}
	})
	b.Run("event-sub", func(b *testing.B) {
		_, sub := elog.SubscribeFrom(0, 1024)
		defer sub.Close()
		done := make(chan struct{})
		go func() {
			defer close(done)
			for range sub.C() {
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			em.Emit(Event{Type: EventTrial, Trial: i, Objective: 12.5, BestSoFar: 10, CostUSD: 0.01, SpendUSD: 1})
		}
		b.StopTimer()
		sub.Close()
		<-done
	})
	var nopEm Emitter
	b.Run("event-nop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nopEm.Emit(Event{Type: EventTrial, Trial: i})
		}
	})
	b.Run("event-jsonl", func(b *testing.B) {
		buf := make([]byte, 0, 512)
		e := Event{Seq: 9, TimeNS: 1, Type: EventTrial, Session: "job", Trial: 3,
			Cluster: "4x nimbus/h1.4xlarge", RuntimeS: 82.5, Objective: 82.5, CostUSD: 0.31}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = e.AppendJSONL(buf[:0])
		}
	})
}
