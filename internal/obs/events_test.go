package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestEventLogPublishAssignsSeq(t *testing.T) {
	l := NewEventLog(16)
	for i := 0; i < 5; i++ {
		l.Publish(Event{Type: EventTrial, Trial: i + 1})
	}
	got := l.Snapshot(0)
	if len(got) != 5 {
		t.Fatalf("snapshot len = %d, want 5", len(got))
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d: seq = %d, want %d", i, e.Seq, i+1)
		}
		if e.TimeNS == 0 {
			t.Errorf("event %d: timestamp not stamped", i)
		}
		if e.Trial != i+1 {
			t.Errorf("event %d: trial = %d, want %d", i, e.Trial, i+1)
		}
	}
}

func TestEventLogRingEviction(t *testing.T) {
	l := NewEventLog(4)
	for i := 1; i <= 10; i++ {
		l.Publish(Event{Type: EventTrial, Trial: i})
	}
	got := l.Snapshot(0)
	if len(got) != 4 {
		t.Fatalf("snapshot len = %d, want 4 (ring capacity)", len(got))
	}
	for i, e := range got {
		if want := uint64(7 + i); e.Seq != want {
			t.Errorf("event %d: seq = %d, want %d", i, e.Seq, want)
		}
	}
	// fromSeq past the end yields nothing.
	if rest := l.Snapshot(10); len(rest) != 0 {
		t.Errorf("snapshot(10) = %d events, want 0", len(rest))
	}
	// fromSeq mid-ring yields the tail only.
	if rest := l.Snapshot(8); len(rest) != 2 {
		t.Errorf("snapshot(8) = %d events, want 2", len(rest))
	}
}

func TestEventLogFanOut(t *testing.T) {
	l := NewEventLog(64)
	_, a := l.SubscribeFrom(0, 8)
	_, b := l.SubscribeFrom(0, 8)
	defer a.Close()
	defer b.Close()
	l.Publish(Event{Type: EventTrial})
	ea, eb := <-a.C(), <-b.C()
	if ea.Seq != 1 || eb.Seq != 1 {
		t.Fatalf("fan-out seqs = %d, %d, want 1, 1", ea.Seq, eb.Seq)
	}
}

func TestEventLogDropNotBlock(t *testing.T) {
	l := NewEventLog(64)
	_, slow := l.SubscribeFrom(0, 2)
	defer slow.Close()
	// Publish more than the channel buffer without draining: must not
	// block and must count the overflow.
	for i := 0; i < 10; i++ {
		l.Publish(Event{Type: EventTrial, Trial: i + 1})
	}
	if got := slow.Dropped(); got != 8 {
		t.Errorf("dropped = %d, want 8", got)
	}
	if st := l.Stats(); st.Dropped != 8 || st.Published != 10 || st.Subscribers != 1 {
		t.Errorf("stats = %+v, want dropped 8, published 10, subscribers 1", st)
	}
	// The ring still has everything: a late reader replays in full.
	if replay := l.Snapshot(0); len(replay) != 10 {
		t.Errorf("replay len = %d, want 10", len(replay))
	}
}

// TestEventLogReplayTailNoGap drives a publisher concurrently with
// subscribers joining mid-stream and checks every subscriber sees a
// gapless, duplicate-free suffix of the sequence — the property the SSE
// handler's replay-then-tail depends on.
func TestEventLogReplayTailNoGap(t *testing.T) {
	const total = 2000
	l := NewEventLog(total) // ring holds everything so replay is complete
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			l.Publish(Event{Type: EventTrial, Trial: i + 1})
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			replay, sub := l.SubscribeFrom(0, total)
			defer sub.Close()
			next := uint64(1)
			for _, e := range replay {
				if e.Seq != next {
					t.Errorf("replay gap: seq %d, want %d", e.Seq, next)
					return
				}
				next++
			}
			for next <= total {
				e, ok := <-sub.C()
				if !ok {
					t.Errorf("channel closed at seq %d", next)
					return
				}
				if e.Seq != next {
					t.Errorf("tail gap: seq %d, want %d", e.Seq, next)
					return
				}
				next++
			}
		}()
	}
	wg.Wait()
	if st := l.Stats(); st.Dropped != 0 {
		t.Errorf("dropped = %d, want 0 (buffers were large enough)", st.Dropped)
	}
}

func TestEventLogClose(t *testing.T) {
	l := NewEventLog(16)
	l.Publish(Event{Type: EventSessionStart})
	_, sub := l.SubscribeFrom(0, 4)
	l.Close()
	l.Close() // idempotent
	if _, ok := <-sub.C(); ok {
		t.Error("subscriber channel not closed by log Close")
	}
	sub.Close() // safe after log close
	l.Publish(Event{Type: EventTrial})
	if st := l.Stats(); st.Published != 1 {
		t.Errorf("published after close = %d, want 1", st.Published)
	}
	// Ring stays readable for the shutdown flush.
	if got := l.Snapshot(0); len(got) != 1 || got[0].Type != EventSessionStart {
		t.Errorf("post-close snapshot = %+v, want the one session_start", got)
	}
	// Subscribing after close: replay served, channel already closed.
	replay, late := l.SubscribeFrom(0, 4)
	if len(replay) != 1 {
		t.Errorf("post-close replay len = %d, want 1", len(replay))
	}
	if _, ok := <-late.C(); ok {
		t.Error("post-close subscription channel should be closed")
	}
}

func TestNilEventLogIsNoOp(t *testing.T) {
	var l *EventLog
	l.Publish(Event{Type: EventTrial})
	l.Close()
	if got := l.Snapshot(0); got != nil {
		t.Errorf("nil snapshot = %v, want nil", got)
	}
	if st := l.Stats(); st != (EventStats{}) {
		t.Errorf("nil stats = %+v, want zero", st)
	}
	var em Emitter
	if em.Enabled() {
		t.Error("zero emitter reports enabled")
	}
	em.Emit(Event{Type: EventTrial}) // must not panic
}

func TestEmitterStampsIdentity(t *testing.T) {
	l := NewEventLog(8)
	em := Emitter{Log: l, Session: "job-1", Tenant: "acme", Workload: "pagerank"}
	ctx := NewEmitterContext(context.Background(), em)
	got := EmitterFrom(ctx)
	if got != em {
		t.Fatalf("EmitterFrom = %+v, want %+v", got, em)
	}
	if EmitterFrom(context.Background()).Enabled() {
		t.Error("emitter from empty context should be disabled")
	}
	got.Emit(Event{Type: EventTrial, Trial: 3})
	events := l.Snapshot(0)
	if len(events) != 1 {
		t.Fatalf("published %d events, want 1", len(events))
	}
	e := events[0]
	if e.Session != "job-1" || e.Tenant != "acme" || e.Workload != "pagerank" {
		t.Errorf("identity not stamped: %+v", e)
	}
}

// TestEventJSONLRoundTrip checks the hand-rolled encoder against
// encoding/json: decoding its output must reproduce the event exactly,
// for both sparse and fully-populated events.
func TestEventJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{Seq: 1, TimeNS: 123, Type: EventSessionStart, Session: "j1", Tenant: "t", Workload: "wordcount", BudgetTrials: 30},
		{Seq: 2, TimeNS: 456, Type: EventTrial, Session: "j1", Phase: "cloud", Trial: 1,
			Cluster: "4x nimbus/h1.4xlarge", RuntimeS: 82.5, Objective: 82.5, BestSoFar: 82.5,
			CostUSD: 0.31, SpendUSD: 0.31, Attainment: 0.5, BurnRate: 0.31, ProjectedSpendUSD: 9.3},
		{Seq: 3, TimeNS: 789, Type: EventTrial, Trial: 2, RuntimeS: 10, Failed: true, Objective: 100, RegretS: 17.5},
		{Seq: 4, TimeNS: 1011, Type: EventSLOViolation, Detail: `projected spend $9.30 > budget "tiny" \ limit`},
		{Seq: 5, TimeNS: 1213, Type: EventSessionEnd, Detail: "ok\nline2\ttab"},
	}
	var buf bytes.Buffer
	if err := WriteEventsJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(events) {
		t.Fatalf("got %d lines, want %d", len(lines), len(events))
	}
	for i, line := range lines {
		var got Event
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d: invalid JSON %q: %v", i, line, err)
		}
		if !reflect.DeepEqual(got, events[i]) {
			t.Errorf("line %d: round-trip mismatch\n got %+v\nwant %+v", i, got, events[i])
		}
	}
}

func TestEventJSONLOmitsNonFinite(t *testing.T) {
	e := Event{Seq: 1, TimeNS: 1, Type: EventTrial, Objective: 1.5}
	e.RegretS = math.Inf(1)
	line := string(e.AppendJSONL(nil))
	if strings.Contains(line, "regretS") {
		t.Errorf("non-finite field not omitted: %s", line)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("invalid JSON %q: %v", line, err)
	}
}

// TestEventLogConcurrency exercises publish/subscribe/close races for
// the -race build.
func TestEventLogConcurrency(t *testing.T) {
	l := NewEventLog(128)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Publish(Event{Type: EventTrial, Trial: i})
			}
		}()
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sub := l.SubscribeFrom(0, 16)
			for i := 0; i < 100; i++ {
				select {
				case _, ok := <-sub.C():
					if !ok {
						return
					}
				default:
				}
			}
			sub.Dropped()
			sub.Close()
		}()
	}
	wg.Wait()
	l.Close()
	if st := l.Stats(); st.Published != 2000 {
		t.Errorf("published = %d, want 2000", st.Published)
	}
}
