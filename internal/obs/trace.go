package obs

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpanArgs is the fixed per-span argument capacity. Keeping the
// argument array inline in the Span value is what makes span start/end
// allocation-free; arguments beyond the capacity are dropped.
const maxSpanArgs = 6

// Arg is one span argument: a key plus either a number or a string.
type Arg struct {
	Key string
	Num float64
	Str string
	// IsStr selects between Num and Str.
	IsStr bool
}

// Span is one completed (or in-flight) operation. Spans are recorded by
// value into the tracer's ring buffer, so producing one costs no
// allocation.
type Span struct {
	// TraceID groups the spans of one logical request (e.g. one tuning
	// job). 0 means untraced.
	TraceID uint64
	// Name is the operation ("pipeline", "trial", "stage"...); Cat is the
	// emitting layer ("core", "tuner", "spark"...).
	Name string
	Cat  string
	// Start and Dur are wall-clock; Dur is 0 for instant events.
	Start time.Time
	Dur   time.Duration
	// Instant marks point events (rendered as Chrome instant events).
	Instant bool
	NArgs   int
	Args    [maxSpanArgs]Arg
}

// Tracer records completed spans into a fixed-capacity ring buffer: old
// spans are overwritten, never freed, so tracing cannot grow memory under
// sustained load. Construct with NewTracer. Safe for concurrent use.
type Tracer struct {
	mu  sync.Mutex
	buf []Span
	n   uint64 // total spans ever recorded

	lastID atomic.Uint64
}

// DefaultTraceCapacity is the ring size NewTracer(0) uses (~16k spans,
// a few MB).
const DefaultTraceCapacity = 1 << 14

// NewTracer returns a tracer with the given ring capacity (0 uses
// DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Span, capacity)}
}

// NewTraceID returns a process-unique non-zero trace ID.
func (t *Tracer) NewTraceID() uint64 { return t.lastID.Add(1) }

// record copies one completed span into the ring. Span is passed by
// value so the caller's handle never escapes to the heap.
func (t *Tracer) record(s Span) {
	t.mu.Lock()
	t.buf[t.n%uint64(len(t.buf))] = s
	t.n++
	t.mu.Unlock()
}

// Len returns the number of spans currently retained.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n < uint64(len(t.buf)) {
		return int(t.n)
	}
	return len(t.buf)
}

// Spans returns the retained spans for one trace (0 = all traces),
// ordered by start time.
func (t *Tracer) Spans(traceID uint64) []Span {
	t.mu.Lock()
	retained := t.n
	if retained > uint64(len(t.buf)) {
		retained = uint64(len(t.buf))
	}
	out := make([]Span, 0, retained)
	for i := uint64(0); i < retained; i++ {
		s := &t.buf[i]
		if traceID == 0 || s.TraceID == traceID {
			out = append(out, *s)
		}
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Trace is a tracer plus the trace ID spans are recorded under — the
// value that flows through contexts. The zero value is disabled: spans
// started from it are no-ops.
type Trace struct {
	T  *Tracer
	ID uint64
}

// Enabled reports whether spans recorded through this trace are kept.
func (tr Trace) Enabled() bool { return tr.T != nil }

// Start begins a span. End the returned handle to record it; on a
// disabled trace the handle is inert. The handle must stay on the
// caller's stack (do not store it) — that is what keeps span recording
// allocation-free.
func (tr Trace) Start(name, cat string) SpanHandle {
	h := SpanHandle{t: tr.T}
	if tr.T != nil {
		h.span.TraceID = tr.ID
		h.span.Name = name
		h.span.Cat = cat
		h.span.Start = time.Now()
	}
	return h
}

// Event records an instant event.
func (tr Trace) Event(name, cat string) {
	if tr.T == nil {
		return
	}
	tr.T.record(Span{TraceID: tr.ID, Name: name, Cat: cat, Start: time.Now(), Instant: true})
}

// SpanHandle is an in-flight span. Add arguments with Num/Str, then call
// End exactly once.
type SpanHandle struct {
	t    *Tracer
	span Span
}

// Num attaches a numeric argument (dropped beyond the fixed capacity).
func (h *SpanHandle) Num(key string, v float64) {
	if h.t == nil || h.span.NArgs >= maxSpanArgs {
		return
	}
	h.span.Args[h.span.NArgs] = Arg{Key: key, Num: v}
	h.span.NArgs++
}

// Str attaches a string argument (dropped beyond the fixed capacity).
func (h *SpanHandle) Str(key, v string) {
	if h.t == nil || h.span.NArgs >= maxSpanArgs {
		return
	}
	h.span.Args[h.span.NArgs] = Arg{Key: key, Str: v, IsStr: true}
	h.span.NArgs++
}

// End completes the span and records it.
func (h *SpanHandle) End() {
	if h.t == nil {
		return
	}
	h.span.Dur = time.Since(h.span.Start)
	h.t.record(h.span)
}

type traceCtxKey struct{}

// NewContext returns ctx carrying the trace; instrumented layers below
// (core pipeline, tuner sessions, spark runs) pick it up with
// FromContext.
func NewContext(ctx context.Context, tr Trace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tr)
}

// FromContext returns the trace carried by ctx, falling back to the
// process-wide ambient trace (see SetAmbient). The result is the
// disabled zero Trace when neither is set.
func FromContext(ctx context.Context) Trace {
	if tr, ok := ctx.Value(traceCtxKey{}).(Trace); ok {
		return tr
	}
	return Ambient()
}

// ambient holds the process-wide fallback Trace. CLIs that cannot thread
// a context through every call path (cmd/experiments -trace-out) install
// one here; request-scoped traces in ctx always win.
var ambient atomic.Value // of Trace

// SetAmbient installs tr as the process-wide fallback trace.
func SetAmbient(tr Trace) { ambient.Store(tr) }

// Ambient returns the process-wide fallback trace (disabled if unset).
func Ambient() Trace {
	if v := ambient.Load(); v != nil {
		return v.(Trace)
	}
	return Trace{}
}
