package obs

import (
	"bufio"
	"strings"
	"testing"
)

// promParseLine decodes one sample line of the Prometheus text format
// ("name{k="v",...} value"), undoing the exposition escaping — a strict
// round-trip parser for the escaping audit below. It returns the metric
// name, decoded label map, and the raw value string.
func promParseLine(t *testing.T, line string) (string, map[string]string, string) {
	t.Helper()
	name := line
	labels := map[string]string{}
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		rest := line[i+1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				t.Fatalf("malformed label pair in %q", line)
			}
			key := rest[:eq]
			if rest[eq+1] != '"' {
				t.Fatalf("unquoted label value in %q", line)
			}
			rest = rest[eq+2:]
			// Scan the quoted value, decoding \\ \" \n — the only
			// escapes the format defines for label values.
			var val strings.Builder
			j := 0
			for ; j < len(rest); j++ {
				c := rest[j]
				if c == '\\' {
					j++
					if j >= len(rest) {
						t.Fatalf("dangling backslash in %q", line)
					}
					switch rest[j] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						t.Fatalf("undefined escape \\%c in %q", rest[j], line)
					}
					continue
				}
				if c == '"' {
					break
				}
				if c == '\n' {
					t.Fatalf("raw newline inside label value in %q", line)
				}
				val.WriteByte(c)
			}
			if j >= len(rest) {
				t.Fatalf("unterminated label value in %q", line)
			}
			labels[key] = val.String()
			rest = rest[j+1:]
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			t.Fatalf("expected , or } after label value in %q", line)
		}
		sp := strings.TrimLeft(rest, " ")
		return name, labels, sp
	}
	sp := strings.IndexByte(line, ' ')
	if sp < 0 {
		t.Fatalf("no value in %q", line)
	}
	return line[:sp], labels, line[sp+1:]
}

// TestPrometheusEscapingRoundTrip feeds hostile label values and help
// strings through the exposition writer and re-parses the output with a
// strict decoder: every value must round-trip byte for byte, every line
// must stay a single line, and no undefined escapes may appear.
func TestPrometheusEscapingRoundTrip(t *testing.T) {
	nasty := []string{
		`plain`,
		`with "quotes"`,
		`back\slash`,
		"new\nline",
		`trailing backslash\`,
		"\\n literal-backslash-n",
		`mixed "q\uote"` + "\nand newline",
		`comma,equals=brace}`,
		"unicode — ünïcodé ✓",
	}
	r := NewRegistry()
	vec := r.CounterVec("escape_test_total", "help with \"quotes\", back\\slash and\nnewline", "tenant")
	for _, v := range nasty {
		vec.With(v).Inc()
	}

	var sb strings.Builder
	if err := r.Gather().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	seen := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# HELP ") {
			// Help escaping: decoding \\ and \n must reproduce the help.
			decoded := strings.NewReplacer(`\\`, "\x00", `\n`, "\n").Replace(
				strings.TrimPrefix(line, "# HELP escape_test_total "))
			decoded = strings.ReplaceAll(decoded, "\x00", `\`)
			want := "help with \"quotes\", back\\slash and\nnewline"
			if decoded != want {
				t.Errorf("help round-trip = %q, want %q", decoded, want)
			}
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		name, labels, value := promParseLine(t, line)
		if name != "escape_test_total" {
			t.Errorf("unexpected metric %q", name)
		}
		if value != "1" {
			t.Errorf("value = %q, want 1", value)
		}
		seen[labels["tenant"]] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, v := range nasty {
		if !seen[v] {
			t.Errorf("label value %q did not round-trip; exposition:\n%s", v, out)
		}
	}
	if len(seen) != len(nasty) {
		t.Errorf("parsed %d distinct values, want %d (a collision means lossy escaping)", len(seen), len(nasty))
	}
}

// TestPrometheusHelpSingleLine guards the HELP line against embedded
// newlines breaking the line-oriented format.
func TestPrometheusHelpSingleLine(t *testing.T) {
	r := NewRegistry()
	r.Counter("multi_total", "line one\nline two").Inc()
	var sb strings.Builder
	if err := r.Gather().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		ok := strings.HasPrefix(line, "#") || strings.HasPrefix(line, "multi_total")
		if !ok {
			t.Errorf("stray continuation line %q — HELP newline not escaped", line)
		}
	}
}

// TestPrometheusHistogramSeriesWellFormed re-parses a labeled histogram
// exposition, checking the bucket/sum/count family stays parseable with
// escaped label values present.
func TestPrometheusHistogramSeriesWellFormed(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("lat_seconds", "h", []float64{0.1, 1}, "route")
	hv.With(`/v1/"q"`).Observe(0.5)
	var sb strings.Builder
	if err := r.Gather().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	var buckets, sums, counts int
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, _ := promParseLine(t, line)
		if labels["route"] != `/v1/"q"` {
			t.Errorf("route label corrupted: %q in %q", labels["route"], line)
		}
		switch {
		case name == "lat_seconds_bucket":
			buckets++
			if labels["le"] == "" {
				t.Errorf("bucket line without le: %q", line)
			}
		case name == "lat_seconds_sum":
			sums++
		case name == "lat_seconds_count":
			counts++
		default:
			t.Errorf("unexpected series %q", name)
		}
	}
	if buckets != 3 || sums != 1 || counts != 1 {
		t.Errorf("series counts: %d buckets %d sum %d count, want 3/1/1\n%s", buckets, sums, counts, sb.String())
	}
}
