package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

func TestZeroValueHandlesNoOp(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	c.Inc()
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("zero-value handles must be inert")
	}
	var tr Trace
	sp := tr.Start("x", "y")
	sp.Num("k", 1)
	sp.End()
	tr.Event("e", "y")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	snap := r.Gather()
	if len(snap.Families) != 1 {
		t.Fatalf("families = %d", len(snap.Families))
	}
	ss := snap.Families[0].Series[0]
	want := []uint64{2, 3, 4} // cumulative at 1, 2, 4
	for i, b := range ss.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket le=%v count = %d, want %d", b.LE, b.Count, want[i])
		}
	}
	if ss.Count != 5 {
		t.Errorf("count = %d, want 5", ss.Count)
	}
	if ss.Sum != 106 {
		t.Errorf("sum = %v, want 106", ss.Sum)
	}
}

func TestVecChildrenAndReregistration(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "", "route", "status")
	v.With("/a", "200").Add(2)
	v.With("/a", "500").Inc()
	v.With("/a", "200").Inc() // same child
	snap := r.Gather()
	if n := len(snap.Families[0].Series); n != 2 {
		t.Fatalf("series = %d, want 2", n)
	}
	// Re-registration with an identical schema returns the same family.
	v2 := r.CounterVec("req_total", "", "route", "status")
	if got := v2.With("/a", "200").Value(); got != 3 {
		t.Fatalf("re-registered child = %v, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("req_total", "")
}

func TestPrometheusEncoding(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total", "total runs").Add(7)
	r.GaugeVec("depth", "queue depth", "tenant").With(`a"b\c`).Set(3)
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)

	var b bytes.Buffer
	if err := r.Gather().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE runs_total counter",
		"runs_total 7",
		"# TYPE depth gauge",
		`depth{tenant="a\"b\\c"} 3`,
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 1`,
		`lat_seconds_bucket{le="+Inf"} 2`,
		"lat_seconds_sum 5.05",
		"lat_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestJSONEncoding(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Inc()
	g := r.Gauge("inf_gauge", "")
	g.Set(math.Inf(1)) // must not break the JSON document
	var b bytes.Buffer
	if err := r.Gather().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(b.Bytes(), &snap); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(snap.Families) != 2 {
		t.Fatalf("families = %d, want 2", len(snap.Families))
	}
}

func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h_seconds", "", []float64{1, 10})
	v := r.CounterVec("v_total", "", "k")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := string(rune('a' + w%4))
			for i := 0; i < per; i++ {
				c.Add(1)
				h.Observe(float64(i % 20))
				v.With(key).Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %v, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	var sum float64
	for _, ss := range r.Gather().Families {
		if ss.Name != "v_total" {
			continue
		}
		for _, s := range ss.Series {
			sum += s.Value
		}
	}
	if sum != workers*per {
		t.Errorf("vec sum = %v, want %d", sum, workers*per)
	}
}

func TestTracerRecordsAndFilters(t *testing.T) {
	tr := NewTracer(64)
	t1, t2 := tr.NewTraceID(), tr.NewTraceID()
	a := Trace{T: tr, ID: t1}
	b := Trace{T: tr, ID: t2}

	sp := a.Start("outer", "test")
	sp.Num("n", 42)
	sp.Str("s", "hello")
	inner := a.Start("inner", "test")
	inner.End()
	sp.End()
	b.Event("tick", "test")

	if got := tr.Len(); got != 3 {
		t.Fatalf("len = %d, want 3", got)
	}
	spans := tr.Spans(t1)
	if len(spans) != 2 {
		t.Fatalf("trace-1 spans = %d, want 2", len(spans))
	}
	// Ordered by start: outer first.
	if spans[0].Name != "outer" || spans[1].Name != "inner" {
		t.Fatalf("order = %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].NArgs != 2 || spans[0].Args[0].Num != 42 || spans[0].Args[1].Str != "hello" {
		t.Fatalf("args not preserved: %+v", spans[0].Args[:spans[0].NArgs])
	}
	all := tr.Spans(0)
	if len(all) != 3 {
		t.Fatalf("all spans = %d, want 3", len(all))
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(8)
	a := Trace{T: tr, ID: tr.NewTraceID()}
	for i := 0; i < 20; i++ {
		sp := a.Start("s", "test")
		sp.End()
	}
	if got := tr.Len(); got != 8 {
		t.Fatalf("len = %d, want ring capacity 8", got)
	}
	if got := len(tr.Spans(0)); got != 8 {
		t.Fatalf("spans = %d, want 8", got)
	}
}

func TestContextPropagationAndAmbient(t *testing.T) {
	tr := NewTracer(16)
	trace := Trace{T: tr, ID: tr.NewTraceID()}
	ctx := NewContext(context.Background(), trace)
	got := FromContext(ctx)
	if got.T != tr || got.ID != trace.ID {
		t.Fatal("context did not carry the trace")
	}
	if FromContext(context.Background()).Enabled() {
		t.Fatal("background context must yield a disabled trace")
	}
	amb := NewTracer(16)
	SetAmbient(Trace{T: amb, ID: 7})
	defer SetAmbient(Trace{})
	if got := FromContext(context.Background()); got.T != amb || got.ID != 7 {
		t.Fatal("ambient fallback not used")
	}
	// An explicit context trace wins over ambient.
	if got := FromContext(ctx); got.T != tr {
		t.Fatal("context trace must win over ambient")
	}
}

func TestChromeTraceLoadable(t *testing.T) {
	tr := NewTracer(16)
	a := Trace{T: tr, ID: tr.NewTraceID()}
	sp := a.Start("pipeline", "core")
	sp.Num("improvement", 0.25)
	sp.Num("bad", math.Inf(1)) // must be dropped, not break JSON
	sp.Str("tenant", "acme")
	time.Sleep(time.Millisecond)
	sp.End()
	a.Event("marker", "core")

	var b bytes.Buffer
	if err := WriteChromeTrace(&b, tr.Spans(0)); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Phase != "X" || ev.Dur <= 0 {
		t.Fatalf("span event = %+v", ev)
	}
	if _, ok := ev.Args["bad"]; ok {
		t.Fatal("non-finite arg must be dropped")
	}
	if ev.Args["tenant"] != "acme" {
		t.Fatalf("args = %v", ev.Args)
	}
	if doc.TraceEvents[1].Phase != "i" {
		t.Fatalf("instant event phase = %q", doc.TraceEvents[1].Phase)
	}
}

func TestSpanArgOverflowDropped(t *testing.T) {
	tr := NewTracer(4)
	a := Trace{T: tr, ID: 1}
	sp := a.Start("s", "test")
	for i := 0; i < maxSpanArgs+3; i++ {
		sp.Num("k", float64(i))
	}
	sp.End()
	if got := tr.Spans(0)[0].NArgs; got != maxSpanArgs {
		t.Fatalf("NArgs = %d, want %d", got, maxSpanArgs)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", b, want)
		}
	}
}
