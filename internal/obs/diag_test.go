package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

// The diagnostics event families (decide, model_health, stall) must
// survive the hand-rolled JSONL encoder bit-for-bit: the tunectl -json
// relay and the shutdown flush both depend on encoder/stdlib parity.
func TestEventJSONLRoundTripDiagnostics(t *testing.T) {
	events := []Event{
		{Seq: 1, TimeNS: 10, Type: EventDecide, Session: "j1", Phase: "disc", Trial: 7,
			Surrogate: "rffgp", Candidates: 120, Rank: 1, PredMean: 4.31, PredStd: 0.22,
			EI: 0.018, EIExploit: 0.011, EIExplore: 0.007,
			TopK: "1:0.018(0.011+0.007),2:0.017(0.002+0.015)"},
		{Seq: 2, TimeNS: 20, Type: EventModelHealth, Session: "j1", Phase: "disc", Trial: 8,
			Scores: 12, Coverage1: 0.583, Coverage2: 0.917, RMSE: 0.31, NLPD: -0.42,
			Severity: "ok", Detail: "calibration nominal"},
		{Seq: 3, TimeNS: 30, Type: EventStall, Session: "j1", Phase: "disc", Trial: 20,
			Plateau: 9, EI: 0.0004, EIPeak: 0.08, EIDecay: 0.005, Severity: "warn",
			Detail: "no improvement for 9 trials and EI decayed to 0.5% of peak — likely converged"},
		// Negative NLPD and a zero severity must encode/omit consistently.
		{Seq: 4, TimeNS: 40, Type: EventModelHealth, Session: "j1", Phase: "cloud",
			Scores: 5, Coverage1: 1, Coverage2: 1, NLPD: -1.2, Severity: "ok"},
	}
	var buf bytes.Buffer
	if err := WriteEventsJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	for i, line := range lines {
		var got Event
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d: invalid JSON %q: %v", i, line, err)
		}
		if !reflect.DeepEqual(got, events[i]) {
			t.Errorf("line %d: round-trip mismatch\n got %+v\nwant %+v", i, got, events[i])
		}
		// Parity with encoding/json: same document modulo key order.
		std, err := json.Marshal(events[i])
		if err != nil {
			t.Fatal(err)
		}
		var a, b map[string]any
		if err := json.Unmarshal([]byte(line), &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(std, &b); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("line %d: encoder disagrees with encoding/json\n hand %s\n std  %s", i, line, std)
		}
	}
}

// Non-finite values in the diagnostics float fields must be omitted,
// never emitted as bare NaN/Inf tokens that would corrupt the stream.
func TestEventJSONLOmitsNonFiniteDiagnosticFields(t *testing.T) {
	e := Event{Seq: 1, TimeNS: 1, Type: EventDecide, Surrogate: "gp"}
	e.PredMean = math.NaN()
	e.PredStd = math.Inf(1)
	e.EI = math.Inf(-1)
	e.EIExploit = math.NaN()
	e.EIExplore = math.Inf(1)
	e.EIPeak = math.NaN()
	e.EIDecay = math.Inf(1)
	e.NLPD = math.NaN()
	e.RMSE = math.Inf(1)
	e.Coverage1 = math.NaN()
	e.Coverage2 = math.Inf(-1)
	line := string(e.AppendJSONL(nil))
	for _, field := range []string{"predMean", "predStd", `"ei"`, "eiExploit", "eiExplore",
		"eiPeak", "eiDecay", "nlpd", "rmse", "coverage1", "coverage2", "NaN", "Inf"} {
		if strings.Contains(line, field) {
			t.Errorf("non-finite field %s leaked into %s", field, line)
		}
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("invalid JSON %q: %v", line, err)
	}
}

// Sketch.Add must ignore non-finite samples entirely — one Inf would
// otherwise pin the max centroid and poison every upper quantile.
func TestSketchAddIgnoresNonFinite(t *testing.T) {
	s := NewSketch(0)
	s.Add(math.Inf(1))
	s.Add(math.Inf(-1))
	s.Add(math.NaN())
	if s.Count() != 0 {
		t.Fatalf("count = %d after non-finite adds, want 0", s.Count())
	}
	s.Add(5)
	s.Add(math.Inf(1))
	if s.Count() != 1 {
		t.Fatalf("count = %d, want 1", s.Count())
	}
	if got := s.Quantile(0.99); got != 5 {
		t.Errorf("q99 = %g, want 5 (Inf must not become the max)", got)
	}
}

// Merging empty and single-sample sketches in either direction must
// preserve counts and quantiles exactly.
func TestSketchMergeEmptyAndSingleSample(t *testing.T) {
	single := NewSketch(0)
	single.Add(7)

	into := NewSketch(0) // empty ← single
	into.Merge(single)
	if into.Count() != 1 || into.Quantile(0.5) != 7 {
		t.Errorf("empty←single: count %d q50 %g, want 1 and 7", into.Count(), into.Quantile(0.5))
	}

	single.Merge(NewSketch(0)) // single ← empty
	if single.Count() != 1 || single.Quantile(0.5) != 7 {
		t.Errorf("single←empty: count %d q50 %g, want 1 and 7", single.Count(), single.Quantile(0.5))
	}

	other := NewSketch(0) // single ← single
	other.Add(9)
	single.Merge(other)
	if single.Count() != 2 {
		t.Errorf("single←single: count %d, want 2", single.Count())
	}
	if lo, hi := single.Quantile(0), single.Quantile(1); lo != 7 || hi != 9 {
		t.Errorf("single←single: extremes (%g, %g), want (7, 9)", lo, hi)
	}
}

// The JSON metrics mirror must sanitize non-finite values everywhere,
// including sketch quantiles, so the document always parses.
func TestWriteJSONSanitizesNonFinite(t *testing.T) {
	s := Snapshot{Families: []FamilySnapshot{{
		Name: "f", Kind: "histogram",
		Series: []SeriesSnapshot{{
			Value: math.Inf(1),
			Sum:   math.NaN(),
			Quantiles: map[string]float64{
				"p50": math.Inf(-1),
				"p99": math.NaN(),
				"p90": 4.5,
			},
		}},
	}}}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("sanitized document does not parse: %v\n%s", err, buf.String())
	}
	ss := got.Families[0].Series[0]
	if ss.Value != 0 || ss.Sum != 0 || ss.Quantiles["p50"] != 0 || ss.Quantiles["p99"] != 0 {
		t.Errorf("non-finite values not zeroed: %+v", ss)
	}
	if ss.Quantiles["p90"] != 4.5 {
		t.Errorf("finite quantile mangled: %+v", ss.Quantiles)
	}
}

// A slow subscriber that overflowed can recover by resubscribing from
// the last sequence number it processed: the ring replays the dropped
// suffix, so overflow costs latency, not data.
func TestEventLogOverflowRecoveryViaResubscribe(t *testing.T) {
	l := NewEventLog(64)
	defer l.Close()
	_, slow := l.SubscribeFrom(0, 2)
	for i := 0; i < 20; i++ {
		l.Publish(Event{Type: EventTrial, Trial: i + 1})
	}
	// Drain what the starved channel managed to hold.
	var last uint64
	for {
		select {
		case e := <-slow.C():
			last = e.Seq
			continue
		default:
		}
		break
	}
	if slow.Dropped() == 0 {
		t.Fatal("expected overflow drops")
	}
	slow.Close()
	replay, sub := l.SubscribeFrom(last, 64)
	defer sub.Close()
	next := last + 1
	for _, e := range replay {
		if e.Seq != next {
			t.Fatalf("recovery gap: seq %d, want %d", e.Seq, next)
		}
		next++
	}
	if next != 21 {
		t.Fatalf("recovered through seq %d, want 20", next-1)
	}
}
