package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus encodes a snapshot in the Prometheus text exposition
// format (version 0.0.4), the wire format of GET /metrics.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, f := range s.Families {
		b.Reset()
		if f.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, ss := range f.Series {
			if f.Kind == KindHistogram.String() {
				writePromHistogram(&b, f, ss)
				continue
			}
			b.WriteString(f.Name)
			writeLabels(&b, f.Labels, ss.LabelValues, "")
			b.WriteByte(' ')
			b.WriteString(formatValue(ss.Value))
			b.WriteByte('\n')
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(b *strings.Builder, f FamilySnapshot, ss SeriesSnapshot) {
	for _, bk := range ss.Buckets {
		b.WriteString(f.Name)
		b.WriteString("_bucket")
		writeLabels(b, f.Labels, ss.LabelValues, formatValue(bk.LE))
		fmt.Fprintf(b, " %d\n", bk.Count)
	}
	b.WriteString(f.Name)
	b.WriteString("_bucket")
	writeLabels(b, f.Labels, ss.LabelValues, "+Inf")
	fmt.Fprintf(b, " %d\n", ss.Count)
	b.WriteString(f.Name)
	b.WriteString("_sum")
	writeLabels(b, f.Labels, ss.LabelValues, "")
	fmt.Fprintf(b, " %s\n", formatValue(ss.Sum))
	b.WriteString(f.Name)
	b.WriteString("_count")
	writeLabels(b, f.Labels, ss.LabelValues, "")
	fmt.Fprintf(b, " %d\n", ss.Count)
}

// writeLabels renders {k="v",...}; le, when non-empty, is appended as the
// histogram bucket bound label.
func writeLabels(b *strings.Builder, names, vals []string, le string) {
	if len(names) == 0 && le == "" {
		return
	}
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// WriteJSON encodes the snapshot as indented JSON, the machine-readable
// sibling of the Prometheus text format (GET /metrics?format=json).
// Non-finite values are sanitized to keep the document valid JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	for fi := range s.Families {
		for si := range s.Families[fi].Series {
			ss := &s.Families[fi].Series[si]
			ss.Value = finite(ss.Value)
			ss.Sum = finite(ss.Sum)
			for q, v := range ss.Quantiles {
				if math.IsInf(v, 0) || math.IsNaN(v) {
					ss.Quantiles[q] = 0
				}
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

func finite(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return 0
	}
	return v
}
