package obs

import (
	"encoding/json"
	"testing"
)

// The sink observes every published event after sequence assignment —
// the storage tier's tap on the telemetry stream.
func TestEventSink(t *testing.T) {
	l := NewEventLog(8)
	var seen []Event
	l.SetSink(func(e Event) { seen = append(seen, e) })
	l.Publish(Event{Type: EventTrial, Trial: 1})
	l.Publish(Event{Type: EventTrial, Trial: 2})
	if len(seen) != 2 {
		t.Fatalf("sink saw %d events, want 2", len(seen))
	}
	if seen[0].Seq != 1 || seen[1].Seq != 2 {
		t.Errorf("sink saw seqs %d, %d — want 1, 2", seen[0].Seq, seen[1].Seq)
	}
	if seen[0].TimeNS == 0 {
		t.Error("sink saw unstamped event")
	}
	l.SetSink(nil)
	l.Publish(Event{Type: EventTrial, Trial: 3})
	if len(seen) != 2 {
		t.Error("sink called after SetSink(nil)")
	}
	// A nil log ignores SetSink.
	var nilLog *EventLog
	nilLog.SetSink(func(Event) {})
}

// Events encoded by the hot-path JSONL encoder round-trip through
// encoding/json — the WAL backend's recovery path.
func TestEventJSONLRoundTripForStorage(t *testing.T) {
	want := Event{
		Seq: 7, TimeNS: 123456789, Type: EventTrial, Session: "job-000001",
		Tenant: "acme", Workload: "wordcount", Trial: 3, RuntimeS: 12.5,
		Objective: 12.5, BestSoFar: 11.1, CostUSD: 0.25,
	}
	var got Event
	if err := json.Unmarshal(want.AppendJSONL(nil), &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip = %+v, want %+v", got, want)
	}
}
