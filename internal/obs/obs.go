// Package obs is the zero-dependency observability substrate of the
// tuning service: a concurrent metrics registry (atomic counters, gauges
// and fixed-bucket histograms with Prometheus-text and JSON encoders) and
// a lightweight span tracer (context-propagated trace IDs, a ring buffer
// of completed spans, Chrome trace_event export).
//
// Both halves are built to be left on in production and in benchmarks:
// every hot-path operation — Counter.Add, Gauge.Set, Histogram.Observe,
// span start/end — is allocation-free and lock-free (spans take one
// short mutex on End). A zero-value handle (Counter{}, Trace{}) is a
// no-op, so instrumented code needs no nil checks and disabling
// observability costs a predictable branch.
//
// Metric handles are resolved once (typically in a package-level var
// against the Default registry) and then used forever; resolving a
// labeled child via With is a read-locked map lookup, so per-event child
// resolution is cheap but pre-resolving children off the hot path is
// still preferred.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind enumerates the metric family types.
type Kind int

// Metric family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families. The zero value is not usable; construct
// with NewRegistry or use Default. All methods are safe for concurrent
// use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that package-level
// instrumentation registers into and tuneserve's /metrics endpoint
// serves.
func Default() *Registry { return defaultRegistry }

// family is one named metric family: a kind, a label schema, and the
// series (children) materialized so far.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histogram upper bounds, strictly increasing
	// sketched histogram families feed a mergeable quantile sketch per
	// series alongside the fixed buckets (see HistogramSketched).
	sketched bool

	mu       sync.RWMutex
	children map[string]*series
}

// series is one (family, label values) time series. Counter and gauge
// values live in bits as IEEE-754 float bits; histograms in hist.
type series struct {
	labelVals []string
	bits      atomic.Uint64
	hist      *hist
}

// hist is the histogram state: cumulative-free per-bucket counts (the
// last slot counts observations above every bound), plus sum and count.
// sketch, when non-nil, additionally receives every observation for
// quantile estimation (sketched families only).
type hist struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Uint64   // float bits
	count  atomic.Uint64
	sketch *Sketch
}

// addFloat atomically adds v to the float bits in a.
func addFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if a.CompareAndSwap(old, new) {
			return
		}
	}
}

// family returns (creating if needed) the named family, enforcing that
// re-registrations agree on kind and label schema — the same contract as
// Prometheus client libraries, so independent packages can safely share
// the Default registry.
func (r *Registry) family(name, help string, kind Kind, labels []string, buckets []float64, sketched bool) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind or label schema", name))
		}
		// The first registration's sketched choice wins; disagreeing
		// re-registrations are tolerated (sketches are an additive view).
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		sketched: sketched,
		children: make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// child returns (creating if needed) the series for the label values.
func (f *family) child(vals []string) *series {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := ""
	switch len(vals) {
	case 0:
	case 1:
		key = vals[0]
	default:
		key = strings.Join(vals, "\x00")
	}
	f.mu.RLock()
	s, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok = f.children[key]; ok {
		return s
	}
	s = &series{labelVals: append([]string(nil), vals...)}
	if f.kind == KindHistogram {
		s.hist = &hist{bounds: f.buckets, counts: make([]atomic.Uint64, len(f.buckets)+1)}
		if f.sketched {
			s.hist.sketch = NewSketch(0)
		}
	}
	f.children[key] = s
	return s
}

// Counter is a monotonically increasing value. The zero value is a valid
// no-op counter.
type Counter struct{ s *series }

// Add increases the counter by v (negative v is ignored).
func (c Counter) Add(v float64) {
	if c.s == nil || v < 0 {
		return
	}
	addFloat(&c.s.bits, v)
}

// Inc increases the counter by 1.
func (c Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c Counter) Value() float64 {
	if c.s == nil {
		return 0
	}
	return math.Float64frombits(c.s.bits.Load())
}

// Gauge is a value that can go up and down. The zero value is a valid
// no-op gauge.
type Gauge struct{ s *series }

// Set replaces the gauge value.
func (g Gauge) Set(v float64) {
	if g.s == nil {
		return
	}
	g.s.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by v (negative to decrease).
func (g Gauge) Add(v float64) {
	if g.s == nil {
		return
	}
	addFloat(&g.s.bits, v)
}

// Value returns the current gauge value.
func (g Gauge) Value() float64 {
	if g.s == nil {
		return 0
	}
	return math.Float64frombits(g.s.bits.Load())
}

// Histogram counts observations into fixed buckets. The zero value is a
// valid no-op histogram.
type Histogram struct{ h *hist }

// Observe records one observation.
func (h Histogram) Observe(v float64) {
	hh := h.h
	if hh == nil {
		return
	}
	i := 0
	for i < len(hh.bounds) && v > hh.bounds[i] {
		i++
	}
	hh.counts[i].Add(1)
	addFloat(&hh.sum, v)
	hh.count.Add(1)
	if hh.sketch != nil {
		hh.sketch.Add(v)
	}
}

// Count returns the number of observations.
func (h Histogram) Count() uint64 {
	if h.h == nil {
		return 0
	}
	return h.h.count.Load()
}

// Sum returns the sum of all observations.
func (h Histogram) Sum() float64 {
	if h.h == nil {
		return 0
	}
	return math.Float64frombits(h.h.sum.Load())
}

// Counter registers (or finds) an unlabeled counter family and returns
// its single series.
func (r *Registry) Counter(name, help string) Counter {
	return Counter{r.family(name, help, KindCounter, nil, nil, false).child(nil)}
}

// Gauge registers (or finds) an unlabeled gauge family and returns its
// single series.
func (r *Registry) Gauge(name, help string) Gauge {
	return Gauge{r.family(name, help, KindGauge, nil, nil, false).child(nil)}
}

// Histogram registers (or finds) an unlabeled histogram family with the
// given bucket upper bounds and returns its single series.
func (r *Registry) Histogram(name, help string, buckets []float64) Histogram {
	return Histogram{r.family(name, help, KindHistogram, nil, buckets, false).child(nil).hist}
}

// HistogramSketched is Histogram with a mergeable quantile sketch
// attached: every observation also feeds a Sketch, and snapshots carry
// p50/p90/p99 estimates (JSON exposition only). Observe pays one short
// mutex acquisition on top of the lock-free bucket update, so reserve it
// for families observed at per-request or per-trial rate, not per-task
// inner loops.
func (r *Registry) HistogramSketched(name, help string, buckets []float64) Histogram {
	return Histogram{r.family(name, help, KindHistogram, nil, buckets, true).child(nil).hist}
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, KindCounter, labels, nil, false)}
}

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(vals ...string) Counter { return Counter{v.f.child(vals)} }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, KindGauge, labels, nil, false)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(vals ...string) Gauge { return Gauge{v.f.child(vals)} }

// HistogramVec is a histogram family with labels; all children share the
// family's bucket layout.
type HistogramVec struct{ f *family }

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, KindHistogram, labels, buckets, false)}
}

// HistogramVecSketched is HistogramVec with a per-series quantile sketch
// (see HistogramSketched for the trade-off).
func (r *Registry) HistogramVecSketched(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, KindHistogram, labels, buckets, true)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(vals ...string) Histogram { return Histogram{v.f.child(vals).hist} }

// DefBuckets is the default latency layout (seconds), matching the
// Prometheus client default.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// Snapshot is a point-in-time copy of a registry's state, the input to
// the encoders. Families and series are sorted for stable output.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one family's state.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Kind   string           `json:"kind"`
	Labels []string         `json:"labels,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// SeriesSnapshot is one series' state. Value is set for counters and
// gauges; Count, Sum and Buckets for histograms.
type SeriesSnapshot struct {
	LabelValues []string `json:"labelValues,omitempty"`
	Value       float64  `json:"value"`
	Count       uint64   `json:"count,omitempty"`
	Sum         float64  `json:"sum,omitempty"`
	// Buckets holds cumulative counts at each finite upper bound; the
	// implicit +Inf bucket equals Count.
	Buckets []Bucket `json:"buckets,omitempty"`
	// Quantiles holds sketch-estimated quantiles (keys p50, p90, p99) for
	// histogram series of sketched families; nil otherwise. They appear
	// in the JSON exposition only — the Prometheus text format stays pure
	// cumulative-bucket histograms.
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// Bucket is one cumulative histogram bucket.
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Gather snapshots every family and series in the registry.
func (r *Registry) Gather() Snapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var snap Snapshot
	for _, f := range fams {
		fs := FamilySnapshot{
			Name:   f.name,
			Help:   f.help,
			Kind:   f.kind.String(),
			Labels: f.labels,
		}
		f.mu.RLock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.children[k]
			ss := SeriesSnapshot{LabelValues: s.labelVals}
			if s.hist != nil {
				cum := uint64(0)
				for i, bound := range s.hist.bounds {
					cum += s.hist.counts[i].Load()
					ss.Buckets = append(ss.Buckets, Bucket{LE: bound, Count: cum})
				}
				// Count is derived from the bucket slots (not the count
				// field) so the +Inf bucket always equals _count even when a
				// concurrent Observe is mid-flight.
				ss.Count = cum + s.hist.counts[len(s.hist.bounds)].Load()
				ss.Sum = math.Float64frombits(s.hist.sum.Load())
				if sk := s.hist.sketch; sk != nil && sk.Count() > 0 {
					q := sk.Quantiles(0.5, 0.9, 0.99)
					ss.Quantiles = map[string]float64{"p50": q[0], "p90": q[1], "p99": q[2]}
				}
			} else {
				ss.Value = math.Float64frombits(s.bits.Load())
			}
			fs.Series = append(fs.Series, ss)
		}
		f.mu.RUnlock()
		snap.Families = append(snap.Families, fs)
	}
	return snap
}
