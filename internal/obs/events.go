package obs

import (
	"context"
	"io"
	"math"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"
)

// EventType classifies a telemetry event.
type EventType string

// Event types emitted by the tuning service. A session covers one tuning
// entry point (typically a full pipeline job); trials are the tuner's
// evaluations; executions are the budgeted runs outside the tuning loops
// (probes, the baseline measurement).
const (
	EventSessionStart EventType = "session_start"
	EventTrial        EventType = "trial"
	EventExecution    EventType = "execution"
	EventSLOViolation EventType = "slo_violation"
	EventSessionEnd   EventType = "session_end"
	// EventPrune reports a significance-analysis round of a pruning
	// session: the active search dimension, the knobs dropped (or
	// restored), and the leading knob importances.
	EventPrune EventType = "prune"
	// EventDecide explains one EI-guided proposal: the chosen candidate's
	// posterior and expected improvement decomposed into exploitation and
	// exploration, its rank, the pool size, and the surrogate backend.
	EventDecide EventType = "decide"
	// EventModelHealth reports online surrogate calibration: z-score
	// coverage of the 1σ/2σ predictive intervals, windowed residual RMSE,
	// and rolling median NLPD, graded by severity.
	EventModelHealth EventType = "model_health"
	// EventStall reports convergence/stall detection transitions: the
	// best-so-far plateau length with EI-decay context, graded by
	// severity (emitted again on recovery, so consumers can clear).
	EventStall EventType = "stall"
	// EventAlert reports an alert-engine state transition: the rule name
	// in Alert, the new state (firing, resolved) in State, the observed
	// value that drove the decision in Value, graded by Severity.
	EventAlert EventType = "alert"
)

// Event is one structured telemetry record. Every field is a value type
// so publishing copies the event into the ring and subscriber channels
// without allocating. Zero-valued optional fields are omitted from the
// JSONL encoding; json tags keep encoding/json round-trips (tests,
// tunectl) aligned with the hand-rolled encoder.
type Event struct {
	// Seq is the log-assigned sequence number (1-based, strictly
	// increasing). It doubles as the SSE event ID for resumption.
	Seq uint64 `json:"seq"`
	// TimeNS is the publish wall-clock time in Unix nanoseconds.
	TimeNS int64     `json:"ts"`
	Type   EventType `json:"type"`

	// Session identifies the tuning session (the job ID under tuneserve);
	// Tenant and Workload identify whose work it is.
	Session  string `json:"session,omitempty"`
	Tenant   string `json:"tenant,omitempty"`
	Workload string `json:"workload,omitempty"`

	// Phase is the pipeline phase that produced the event: cloud, probe,
	// disc, baseline.
	Phase string `json:"phase,omitempty"`
	// Trial is the session-wide 1-based trial number (trial events only).
	Trial int `json:"trial,omitempty"`
	// BudgetTrials is the session's total trial budget (session_start).
	BudgetTrials int `json:"budgetTrials,omitempty"`

	// Cluster is the executing cluster ("4x nimbus/h1.4xlarge") and
	// RuntimeS the observed runtime, for trial/execution events.
	Cluster  string  `json:"cluster,omitempty"`
	RuntimeS float64 `json:"runtimeS,omitempty"`
	Failed   bool    `json:"failed,omitempty"`

	// Objective is the penalized objective value of the trial; BestSoFar
	// the best successful objective seen in the session so far (absent
	// until the first success); RegretS the trial's simple regret against
	// the incumbent (Objective - BestSoFar).
	Objective float64 `json:"objective,omitempty"`
	BestSoFar float64 `json:"bestSoFar,omitempty"`
	RegretS   float64 `json:"regretS,omitempty"`

	// CostUSD is the dollar cost of this trial/execution
	// (cloud.ClusterSpec.CostOf of its runtime); SpendUSD the session's
	// cumulative tuning spend including probes and the baseline.
	CostUSD  float64 `json:"costUSD,omitempty"`
	SpendUSD float64 `json:"spendUSD,omitempty"`

	// Attainment is the fraction of the session's active SLO clauses the
	// incumbent meets; BurnRate the average spend per trial; and
	// ProjectedSpendUSD the linear projection of the session bill at
	// budget exhaustion.
	Attainment        float64 `json:"attainment,omitempty"`
	BurnRate          float64 `json:"burnRate,omitempty"`
	ProjectedSpendUSD float64 `json:"projectedSpendUSD,omitempty"`

	// ActiveDims and TotalDims report a pruning session's current search
	// dimension against the full space (prune events; ActiveDims also
	// rides on trial events of pruning sessions once the space shrank).
	ActiveDims int `json:"activeDims,omitempty"`
	TotalDims  int `json:"totalDims,omitempty"`
	// Dropped lists the pruned knob names, comma-separated; Importance the
	// leading knob importances as "name=share" pairs, comma-separated.
	// Both are prune-event fields, pre-rendered to keep Event value-only.
	Dropped    string `json:"dropped,omitempty"`
	Importance string `json:"importance,omitempty"`

	// Surrogate names the posterior backend behind a decide event
	// ("gp", "rffgp", "forest").
	Surrogate string `json:"surrogate,omitempty"`
	// Candidates is the acquisition pool size scored for a decide event;
	// Rank the chosen candidate's EI rank within it (1 = best).
	Candidates int `json:"candidates,omitempty"`
	Rank       int `json:"rank,omitempty"`
	// PredMean/PredStd are the chosen candidate's posterior in
	// model-target (log-objective) units; EI its expected improvement,
	// decomposed exactly as EI = EIExploit + EIExplore.
	PredMean  float64 `json:"predMean,omitempty"`
	PredStd   float64 `json:"predStd,omitempty"`
	EI        float64 `json:"ei,omitempty"`
	EIExploit float64 `json:"eiExploit,omitempty"`
	EIExplore float64 `json:"eiExplore,omitempty"`
	// TopK renders the leading candidates as "rank:ei(exploit+explore)"
	// pairs, comma-separated — pre-rendered to keep Event value-only.
	TopK string `json:"topK,omitempty"`

	// Calibration fields (model_health events): Scores is the number of
	// graded predictions; Coverage1/Coverage2 the windowed fractions of
	// outcomes inside the predicted 1σ/2σ intervals (ideal 0.683/0.954);
	// RMSE the windowed root-mean-square residual; NLPD the rolling
	// median negative log predictive density.
	Scores    int     `json:"scores,omitempty"`
	Coverage1 float64 `json:"coverage1,omitempty"`
	Coverage2 float64 `json:"coverage2,omitempty"`
	RMSE      float64 `json:"rmse,omitempty"`
	NLPD      float64 `json:"nlpd,omitempty"`

	// Stall fields: Plateau is the best-so-far plateau length (trials
	// without improvement); EIPeak the largest max-EI seen; EIDecay the
	// latest max-EI as a fraction of that peak (the latest max-EI itself
	// rides in EI).
	Plateau int     `json:"plateau,omitempty"`
	EIPeak  float64 `json:"eiPeak,omitempty"`
	EIDecay float64 `json:"eiDecay,omitempty"`
	// Severity grades model_health, stall and alert events: ok, warn,
	// critical.
	Severity string `json:"severity,omitempty"`

	// Alert fields: Alert is the rule name, State the new lifecycle state
	// ("firing", "resolved"), and Value the observed metric or burn-rate
	// value at the transition.
	Alert string  `json:"alert,omitempty"`
	State string  `json:"state,omitempty"`
	Value float64 `json:"value,omitempty"`

	// Detail carries human-readable context (violation text, session
	// outcome, prune-round reason, diagnostic verdicts).
	Detail string `json:"detail,omitempty"`
}

// Event-log loss is itself telemetry: the alert engine watches these to
// page on observability-pipeline degradation (see internal/telemetry).
var (
	mEventsPublished = Default().Counter("events_published_total",
		"Telemetry events accepted by the event log.")
	mEventsDropped = Default().Counter("events_dropped_total",
		"Telemetry events lost to full subscriber buffers (slow readers).")
)

// EventLog is a bounded, subscribable log of telemetry events: a ring
// buffer of the most recent events plus non-blocking fan-out to live
// subscribers. Publishing never blocks and never allocates — a slow
// subscriber loses events (counted, per subscriber) instead of stalling
// the tuning hot path. Construct with NewEventLog; safe for concurrent
// use. A nil *EventLog is a valid no-op sink.
type EventLog struct {
	mu        sync.Mutex
	buf       []Event
	n         uint64 // total events ever published; Seq of the newest
	subs      map[*EventSub]struct{}
	closed    bool
	dropTotal uint64
	// sink, when set, observes every published event after its sequence
	// number is assigned — the storage tier's append hook. It runs under
	// the publish lock, so it must not block (WAL appends go through a
	// bounded asynchronous queue).
	sink func(Event)
}

// SetSink installs fn to observe every published event (with Seq and
// TimeNS assigned), or removes it when nil. The callback runs under the
// publish lock and must not block; drop rather than stall.
func (l *EventLog) SetSink(fn func(Event)) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.sink = fn
	l.mu.Unlock()
}

// DefaultEventCapacity is the ring size NewEventLog(0) uses.
const DefaultEventCapacity = 1 << 13

// NewEventLog returns an event log retaining the last capacity events
// (0 uses DefaultEventCapacity).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &EventLog{
		buf:  make([]Event, capacity),
		subs: make(map[*EventSub]struct{}),
	}
}

// Publish assigns the event's sequence number and timestamp, appends it
// to the ring, and offers it to every live subscriber without blocking:
// subscribers with full channels drop the event and their drop counter
// advances. Publishing to a nil or closed log is a no-op.
func (l *EventLog) Publish(e Event) {
	if l == nil {
		return
	}
	now := time.Now().UnixNano()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.n++
	e.Seq = l.n
	if e.TimeNS == 0 {
		e.TimeNS = now
	}
	l.buf[(l.n-1)%uint64(len(l.buf))] = e
	if l.sink != nil {
		l.sink(e)
	}
	for sub := range l.subs {
		select {
		case sub.ch <- e:
		default:
			sub.dropped++
			l.dropTotal++
			mEventsDropped.Inc()
		}
	}
	l.mu.Unlock()
	mEventsPublished.Inc()
}

// EventSub is one live subscription. Receive from C; Close when done.
type EventSub struct {
	log     *EventLog
	ch      chan Event
	dropped uint64
	closed  bool
}

// C is the subscription's event channel. It is closed when either the
// subscriber or the log closes.
func (s *EventSub) C() <-chan Event { return s.ch }

// Dropped returns how many events this subscriber lost to a full buffer.
func (s *EventSub) Dropped() uint64 {
	s.log.mu.Lock()
	defer s.log.mu.Unlock()
	return s.dropped
}

// Close detaches the subscription and closes its channel. Safe to call
// more than once and after the log itself has closed.
func (s *EventSub) Close() {
	s.log.mu.Lock()
	if !s.closed {
		s.closed = true
		delete(s.log.subs, s)
		close(s.ch)
	}
	s.log.mu.Unlock()
}

// SubscribeFrom atomically snapshots the retained events with Seq >
// fromSeq (the replay) and registers a live subscription with the given
// channel buffer (0 uses 256): every event published after the snapshot
// is delivered to the channel, so replay + tail covers the stream with
// no gap and no duplicate. On a closed log the subscription's channel is
// already closed; the replay is still served.
func (l *EventLog) SubscribeFrom(fromSeq uint64, buf int) ([]Event, *EventSub) {
	if buf <= 0 {
		buf = 256
	}
	l.mu.Lock()
	replay := l.snapshotLocked(fromSeq)
	sub := &EventSub{log: l, ch: make(chan Event, buf)}
	if l.closed {
		sub.closed = true
		close(sub.ch)
	} else {
		l.subs[sub] = struct{}{}
	}
	l.mu.Unlock()
	return replay, sub
}

// Snapshot returns the retained events with Seq > fromSeq, oldest first.
func (l *EventLog) Snapshot(fromSeq uint64) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapshotLocked(fromSeq)
}

func (l *EventLog) snapshotLocked(fromSeq uint64) []Event {
	first := uint64(1)
	if l.n > uint64(len(l.buf)) {
		first = l.n - uint64(len(l.buf)) + 1
	}
	if fromSeq+1 > first {
		first = fromSeq + 1
	}
	if first > l.n {
		return nil
	}
	out := make([]Event, 0, l.n-first+1)
	for seq := first; seq <= l.n; seq++ {
		out = append(out, l.buf[(seq-1)%uint64(len(l.buf))])
	}
	return out
}

// EventStats is a point-in-time summary of the log.
type EventStats struct {
	// Published counts every event ever accepted.
	Published uint64 `json:"published"`
	// Dropped counts events lost across all subscribers (slow readers).
	Dropped uint64 `json:"dropped"`
	// Subscribers is the number of live subscriptions.
	Subscribers int `json:"subscribers"`
	// Capacity is the ring size.
	Capacity int `json:"capacity"`
}

// Stats summarizes the log. A nil log reports zeros.
func (l *EventLog) Stats() EventStats {
	if l == nil {
		return EventStats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return EventStats{
		Published:   l.n,
		Dropped:     l.dropTotal,
		Subscribers: len(l.subs),
		Capacity:    len(l.buf),
	}
}

// Close rejects further publishes and closes every subscriber channel,
// releasing SSE handlers and tailers blocked on C(). The ring stays
// readable via Snapshot (the shutdown flush reads it). Idempotent.
func (l *EventLog) Close() {
	if l == nil {
		return
	}
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		for sub := range l.subs {
			sub.closed = true
			close(sub.ch)
			delete(l.subs, sub)
		}
	}
	l.mu.Unlock()
}

// WriteEventsJSONL encodes events one JSON object per line — the flush
// format of tuneserve's -events-out and tunectl events --json.
func WriteEventsJSONL(w io.Writer, events []Event) error {
	buf := make([]byte, 0, 256)
	for _, e := range events {
		buf = e.AppendJSONL(buf[:0])
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// AppendJSONL appends the event as a single-line JSON object to b and
// returns the extended slice. Optional zero-valued fields are omitted;
// non-finite numbers are skipped to keep the document valid JSON. The
// field set and names match the struct's json tags, so encoding/json can
// decode the output.
func (e Event) AppendJSONL(b []byte) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, e.Seq, 10)
	b = append(b, `,"ts":`...)
	b = strconv.AppendInt(b, e.TimeNS, 10)
	b = append(b, `,"type":`...)
	b = appendJSONString(b, string(e.Type))
	b = appendStrField(b, "session", e.Session)
	b = appendStrField(b, "tenant", e.Tenant)
	b = appendStrField(b, "workload", e.Workload)
	b = appendStrField(b, "phase", e.Phase)
	b = appendIntField(b, "trial", e.Trial)
	b = appendIntField(b, "budgetTrials", e.BudgetTrials)
	b = appendStrField(b, "cluster", e.Cluster)
	b = appendNumField(b, "runtimeS", e.RuntimeS)
	if e.Failed {
		b = append(b, `,"failed":true`...)
	}
	b = appendNumField(b, "objective", e.Objective)
	b = appendNumField(b, "bestSoFar", e.BestSoFar)
	b = appendNumField(b, "regretS", e.RegretS)
	b = appendNumField(b, "costUSD", e.CostUSD)
	b = appendNumField(b, "spendUSD", e.SpendUSD)
	b = appendNumField(b, "attainment", e.Attainment)
	b = appendNumField(b, "burnRate", e.BurnRate)
	b = appendNumField(b, "projectedSpendUSD", e.ProjectedSpendUSD)
	b = appendIntField(b, "activeDims", e.ActiveDims)
	b = appendIntField(b, "totalDims", e.TotalDims)
	b = appendStrField(b, "dropped", e.Dropped)
	b = appendStrField(b, "importance", e.Importance)
	b = appendStrField(b, "surrogate", e.Surrogate)
	b = appendIntField(b, "candidates", e.Candidates)
	b = appendIntField(b, "rank", e.Rank)
	b = appendNumField(b, "predMean", e.PredMean)
	b = appendNumField(b, "predStd", e.PredStd)
	b = appendNumField(b, "ei", e.EI)
	b = appendNumField(b, "eiExploit", e.EIExploit)
	b = appendNumField(b, "eiExplore", e.EIExplore)
	b = appendStrField(b, "topK", e.TopK)
	b = appendIntField(b, "scores", e.Scores)
	b = appendNumField(b, "coverage1", e.Coverage1)
	b = appendNumField(b, "coverage2", e.Coverage2)
	b = appendNumField(b, "rmse", e.RMSE)
	b = appendNumField(b, "nlpd", e.NLPD)
	b = appendIntField(b, "plateau", e.Plateau)
	b = appendNumField(b, "eiPeak", e.EIPeak)
	b = appendNumField(b, "eiDecay", e.EIDecay)
	b = appendStrField(b, "severity", e.Severity)
	b = appendStrField(b, "alert", e.Alert)
	b = appendStrField(b, "state", e.State)
	b = appendNumField(b, "value", e.Value)
	b = appendStrField(b, "detail", e.Detail)
	return append(b, '}')
}

func appendStrField(b []byte, key, v string) []byte {
	if v == "" {
		return b
	}
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return appendJSONString(b, v)
}

func appendIntField(b []byte, key string, v int) []byte {
	if v == 0 {
		return b
	}
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendInt(b, int64(v), 10)
}

func appendNumField(b []byte, key string, v float64) []byte {
	if v == 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		return b
	}
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendJSONString appends v as a quoted, escaped JSON string.
func appendJSONString(b []byte, v string) []byte {
	b = append(b, '"')
	for i := 0; i < len(v); {
		c := v[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
			i++
		case c == '\n':
			b = append(b, '\\', 'n')
			i++
		case c == '\r':
			b = append(b, '\\', 'r')
			i++
		case c == '\t':
			b = append(b, '\\', 't')
			i++
		case c < 0x20:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
			i++
		case c < utf8.RuneSelf:
			b = append(b, c)
			i++
		default:
			_, size := utf8.DecodeRuneInString(v[i:])
			b = append(b, v[i:i+size]...)
			i += size
		}
	}
	return append(b, '"')
}

// Emitter binds an event log to one session's identity. The zero value
// is disabled: Emit is then a no-op, so instrumented code needs no nil
// checks. Emitters flow through contexts like traces do.
type Emitter struct {
	Log                       *EventLog
	Session, Tenant, Workload string
}

// Enabled reports whether emitted events are kept.
func (em Emitter) Enabled() bool { return em.Log != nil }

// Emit stamps the event with the emitter's session identity and
// publishes it.
func (em Emitter) Emit(e Event) {
	if em.Log == nil {
		return
	}
	e.Session = em.Session
	e.Tenant = em.Tenant
	e.Workload = em.Workload
	em.Log.Publish(e)
}

type emitterCtxKey struct{}

// NewEmitterContext returns ctx carrying the emitter; layers below
// (core's session telemetry) pick it up with EmitterFrom.
func NewEmitterContext(ctx context.Context, em Emitter) context.Context {
	return context.WithValue(ctx, emitterCtxKey{}, em)
}

// EmitterFrom returns the emitter carried by ctx (the disabled zero
// Emitter when none is set).
func EmitterFrom(ctx context.Context) Emitter {
	if em, ok := ctx.Value(emitterCtxKey{}).(Emitter); ok {
		return em
	}
	return Emitter{}
}
