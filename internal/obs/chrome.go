package obs

import (
	"encoding/json"
	"io"
	"math"
)

// chromeEvent is one entry of the Chrome trace_event format (the JSON
// the chrome://tracing and Perfetto UIs load).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds
	Dur   float64        `json:"dur,omitempty"` // microseconds
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant-event scope
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level document.
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace encodes spans as a Chrome-loadable trace_event JSON
// document (open with chrome://tracing or https://ui.perfetto.dev).
// Spans of one trace share a tid, so concurrent jobs render as separate
// rows. Timestamps are microseconds since the earliest span.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	doc := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(spans))}
	var epoch int64
	if len(spans) > 0 {
		epoch = spans[0].Start.UnixNano()
		for _, s := range spans {
			if ns := s.Start.UnixNano(); ns < epoch {
				epoch = ns
			}
		}
	}
	for _, s := range spans {
		ev := chromeEvent{
			Name:  s.Name,
			Cat:   s.Cat,
			Phase: "X",
			TS:    float64(s.Start.UnixNano()-epoch) / 1e3,
			Dur:   float64(s.Dur.Nanoseconds()) / 1e3,
			PID:   1,
			TID:   s.TraceID,
		}
		if s.Instant {
			ev.Phase = "i"
			ev.Scope = "t"
			ev.Dur = 0
		}
		if s.NArgs > 0 {
			ev.Args = make(map[string]any, s.NArgs)
			for _, a := range s.Args[:s.NArgs] {
				if a.IsStr {
					ev.Args[a.Key] = a.Str
				} else if !math.IsInf(a.Num, 0) && !math.IsNaN(a.Num) {
					ev.Args[a.Key] = a.Num
				}
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
