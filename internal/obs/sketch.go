package obs

import (
	"math"
	"sort"
	"sync"
)

// Sketch is a mergeable streaming quantile sketch in the KLL family: a
// stack of levels where level i holds samples of weight 2^i. When a
// level fills it is sorted and every other item (random offset) is
// promoted with doubled weight, so total weight is preserved exactly and
// memory stays O(k · log(n/k)) regardless of stream length. It
// complements the registry's fixed-bucket histograms: buckets give exact
// counts at fixed bounds, the sketch gives quantiles (p50/p90/p99) with
// rank error shrinking in k and no bucket-layout choice to get wrong.
//
// Construct with NewSketch. All methods are safe for concurrent use; Add
// is a short critical section (amortized O(1), an occasional sort).
type Sketch struct {
	mu     sync.Mutex
	k      int // per-level capacity
	levels [][]float64
	count  uint64
	min    float64
	max    float64
	rng    uint64 // xorshift64 state for compaction offsets
}

// DefaultSketchK is the per-level capacity NewSketch(0) uses; rank error
// is roughly 1/k·√levels, well under 1% for typical series lengths.
const DefaultSketchK = 256

// NewSketch returns an empty sketch with per-level capacity k (0 uses
// DefaultSketchK).
func NewSketch(k int) *Sketch {
	if k <= 0 {
		k = DefaultSketchK
	}
	if k < 8 {
		k = 8
	}
	return &Sketch{
		k:      k,
		levels: [][]float64{make([]float64, 0, k)},
		min:    math.Inf(1),
		max:    math.Inf(-1),
		rng:    uint64(k)*0x9e3779b97f4a7c15 + 1,
	}
}

// Add inserts one observation. Non-finite values (NaN, ±Inf) are
// ignored: an infinity would pin min/max and poison every quantile, and
// the JSON exposition requires finite numbers.
func (s *Sketch) Add(v float64) {
	if s == nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	s.mu.Lock()
	s.count++
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.levels[0] = append(s.levels[0], v)
	if len(s.levels[0]) >= s.k {
		s.compact(0)
	}
	s.mu.Unlock()
}

// compact halves level i by promoting every other sorted item (random
// parity) to level i+1 with doubled weight, cascading upward as needed.
// An odd element stays behind at its level, so Σ weight == count always.
func (s *Sketch) compact(i int) {
	lv := s.levels[i]
	sort.Float64s(lv)
	var parked float64
	hasParked := false
	if len(lv)%2 == 1 {
		// Park one random-end element at this level to make the count
		// even; alternating ends avoids always retaining one extreme.
		idx := len(lv) - 1
		if s.nextRand()&1 == 0 {
			idx = 0
		}
		parked, hasParked = lv[idx], true
		copy(lv[idx:], lv[idx+1:])
		lv = lv[:len(lv)-1]
	}
	off := int(s.nextRand() & 1)
	if i+1 >= len(s.levels) {
		s.levels = append(s.levels, make([]float64, 0, s.k))
	}
	for j := off; j < len(lv); j += 2 {
		s.levels[i+1] = append(s.levels[i+1], lv[j])
	}
	s.levels[i] = s.levels[i][:0]
	if hasParked {
		s.levels[i] = append(s.levels[i], parked)
	}
	if len(s.levels[i+1]) >= s.k {
		s.compact(i + 1)
	}
}

func (s *Sketch) nextRand() uint64 {
	x := s.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rng = x
	return x
}

// Count returns the number of observations.
func (s *Sketch) Count() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Merge folds o into s (o is left unchanged). Sketches of partitioned
// streams merge into the sketch of the union with the same error
// guarantees — the property that lets per-shard or per-process sketches
// aggregate.
func (s *Sketch) Merge(o *Sketch) {
	if s == nil || o == nil {
		return
	}
	// Copy o's state first so the two locks are never held together
	// (Merge(a,b) racing Merge(b,a) must not deadlock).
	o.mu.Lock()
	olevels := make([][]float64, len(o.levels))
	for i, lv := range o.levels {
		olevels[i] = append([]float64(nil), lv...)
	}
	ocount, omin, omax := o.count, o.min, o.max
	o.mu.Unlock()

	s.mu.Lock()
	s.count += ocount
	if omin < s.min {
		s.min = omin
	}
	if omax > s.max {
		s.max = omax
	}
	for i, lv := range olevels {
		for i >= len(s.levels) {
			s.levels = append(s.levels, make([]float64, 0, s.k))
		}
		s.levels[i] = append(s.levels[i], lv...)
		if len(s.levels[i]) >= s.k {
			s.compact(i)
		}
	}
	s.mu.Unlock()
}

// Quantile returns the estimated q-quantile (q clamped to [0, 1]); 0
// and 1 return the exact min and max. An empty sketch returns 0.
func (s *Sketch) Quantile(q float64) float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	type wv struct {
		v float64
		w uint64
	}
	items := make([]wv, 0, s.k*2)
	for i, lv := range s.levels {
		w := uint64(1) << uint(i)
		for _, v := range lv {
			items = append(items, wv{v, w})
		}
	}
	sort.Slice(items, func(a, b int) bool { return items[a].v < items[b].v })
	target := q * float64(s.count)
	cum := 0.0
	for _, it := range items {
		cum += float64(it.w)
		if cum >= target {
			return it.v
		}
	}
	return s.max
}

// Quantiles returns estimates for several ranks in one lock acquisition
// order (each via Quantile; the sketch is small, repeated sorts are
// cheap relative to snapshot encoding).
func (s *Sketch) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = s.Quantile(q)
	}
	return out
}
